// Package coevo is the public facade of the joint source and schema
// evolution study toolkit — a from-scratch reproduction of "Joint Source
// and Schema Evolution: Insights from a Study of 195 FOSS Projects"
// (EDBT 2023).
//
// The toolkit measures, for a software project carrying a single-file SQL
// schema, how the schema's evolution relates to the evolution of the
// surrounding source code:
//
//   - θ-synchronicity: how often the two cumulative progressions move
//     hand-in-hand (RQ1);
//   - life percentage of schema advance over time and over source (RQ2);
//   - α-attainment fractional timepoints: how early the schema collects a
//     given share of its lifetime evolution (RQ3).
//
// The typical flow is:
//
//	projects, _ := coevo.GenerateCorpus(coevo.DefaultCorpusConfig(seed))
//	dataset, _ := coevo.AnalyzeCorpus(projects, coevo.DefaultOptions())
//	hist := dataset.SynchronicityHistogram(0.10, 5)   // Figure 4
//	table := dataset.AdvanceBreakdown()               // Figure 6
//	stats, _ := dataset.Statistics(seed)              // Section 7
//
// or, for a single repository (including ones reconstructed from real
// `git log --name-status` output via the gitlog ingestion path):
//
//	result, _ := coevo.AnalyzeRepository(repo, "db/schema.sql", coevo.DefaultOptions())
//	fmt.Println(result.Measures.Sync10)
package coevo

import (
	"context"
	"io"
	"net/http"

	"coevo/internal/cache"
	"coevo/internal/coevolution"
	"coevo/internal/corpus"
	"coevo/internal/engine"
	"coevo/internal/jobs"
	"coevo/internal/obs"
	"coevo/internal/report"
	"coevo/internal/runlog"
	"coevo/internal/study"
	"coevo/internal/vcs"
)

// Aliases of the core result and configuration types, so downstream code
// can consume the toolkit through this single import.
type (
	// Dataset is the per-project result collection of one study run.
	Dataset = study.Dataset
	// ProjectResult carries every measured quantity for one project.
	ProjectResult = study.ProjectResult
	// Options configures history extraction and taxon classification.
	Options = study.Options
	// CorpusConfig parameterizes synthetic corpus generation.
	CorpusConfig = corpus.Config
	// CorpusProject is one synthesized repository with its intended taxon.
	CorpusProject = corpus.Project
	// Repository is the in-memory git-like repository substrate.
	Repository = vcs.Repository
	// Signature names a commit author at a point in time.
	Signature = vcs.Signature
	// StatsReport is the Section 7 statistical analysis.
	StatsReport = study.StatsReport
	// Failure records one project a study run could not measure.
	Failure = study.Failure
	// ExecOptions configures the execution engine (worker count, failure
	// policy, event observer) — the Exec field of Options.
	ExecOptions = engine.Options
	// ExecEvent is one entry of the engine's task event stream.
	ExecEvent = engine.Event
	// ExecMetrics aggregates an event stream into latency/throughput
	// metrics; see NewExecMetrics.
	ExecMetrics = engine.Metrics
	// Cache is the content-addressed result cache memoizing the
	// pipeline's hot stages; set it on Options.Cache and
	// CorpusConfig.Cache. Output is byte-identical with or without one.
	Cache = cache.Cache
	// CacheOptions configures a Cache; see NewCache.
	CacheOptions = cache.Options
	// CacheStats is a point-in-time snapshot of a cache's counters.
	CacheStats = cache.Stats
	// Observer is the unified observability handle (spans with a Chrome
	// trace exporter, a metrics registry with Prometheus-style exposition,
	// structured logging); set it on Options.Obs and CorpusConfig.Obs. A
	// nil *Observer is a valid zero-cost no-op, and study output is
	// byte-identical with observability on or off.
	Observer = obs.Observer
	// ObserverOptions configures an Observer; see NewObserver.
	ObserverOptions = obs.Options
	// MetricsRegistry is an Observer's registry of counters, gauges and
	// histograms.
	MetricsRegistry = obs.Registry
	// TelemetryServer is the embedded HTTP observability server: /metrics
	// (Prometheus text exposition), /healthz, /readyz, /debug/pprof and
	// the /progress SSE stream. A nil *TelemetryServer is a valid no-op.
	TelemetryServer = obs.Server
	// TelemetryOptions configures ServeTelemetry.
	TelemetryOptions = obs.ServeOptions
	// RunManifest is one entry of the persistent run ledger: a recorded
	// run's options, provenance, durations, cache counters and final
	// metrics snapshot.
	RunManifest = runlog.Manifest
	// RunDiffReport compares two run manifests metric by metric; see
	// DiffRuns.
	RunDiffReport = runlog.DiffReport
)

// The job service: a durable, crash-recoverable, multi-tenant queue that
// runs study and ingest submissions through the streaming pipeline —
// what `coevo serve` mounts at /jobs. Open a JobQueue over a directory,
// point it at a JobExecutor, and mount JobsHandler on any mux.
type (
	// JobQueue schedules, persists and recovers jobs; see OpenJobQueue.
	JobQueue = jobs.Queue
	// JobQueueOptions configures OpenJobQueue (directory, executor,
	// concurrency bounds, per-tenant quotas).
	JobQueueOptions = jobs.QueueOptions
	// Job is one submission's persisted record and status document.
	Job = jobs.Job
	// JobSpec is the submitted work: a synthetic study or an ingest
	// payload (git log plus dated DDL versions).
	JobSpec = jobs.Spec
	// JobResult is a finished job's rendered sections.
	JobResult = jobs.Result
	// JobExecutor runs jobs on the streaming pipeline with shared-cache
	// dedup and run-ledger sealing; wire its Run into JobQueueOptions.Exec.
	JobExecutor = jobs.Executor
	// JobEvent is one entry of a job's live event stream.
	JobEvent = jobs.Event
	// JobState is a stop of the queued → running → done|failed|canceled
	// state machine.
	JobState = jobs.State
)

// OpenJobQueue loads (or creates) a durable job directory, re-queues any
// jobs a previous process left running, and starts the scheduler.
func OpenJobQueue(opts JobQueueOptions) (*JobQueue, error) { return jobs.Open(opts) }

// SubmitJob validates, persists and enqueues a submission for tenant.
// The context carries trace correlation only (a W3C trace context, if
// present, stamps the job); it does not bound the job's execution.
func SubmitJob(ctx context.Context, q *JobQueue, tenant string, spec JobSpec) (*Job, error) {
	return q.Submit(ctx, tenant, spec)
}

// JobStatus returns a snapshot of one job.
func JobStatus(q *JobQueue, id string) (*Job, error) { return q.Get(id) }

// CancelJob requests cancellation of a queued or running job.
func CancelJob(q *JobQueue, id string) (*Job, error) { return q.Cancel(id) }

// WaitJob blocks until the job reaches a terminal state or ctx fires.
func WaitJob(ctx context.Context, q *JobQueue, id string) (*Job, error) {
	return q.Wait(ctx, id)
}

// JobsHandler serves a queue's multi-tenant HTTP API (mount at /jobs
// and /jobs/).
func JobsHandler(q *JobQueue) http.Handler { return jobs.Handler(q) }

// Execution-engine re-exports: the policies an ExecOptions can select.
const (
	// CollectErrors records per-project failures and keeps going (default).
	CollectErrors = engine.CollectErrors
	// FailFast aborts the run at the first per-project failure.
	FailFast = engine.FailFast
)

// NewExecMetrics returns a metrics collector; wire its Observe method
// into ExecOptions.OnEvent (via TeeEvents when combining observers).
func NewExecMetrics() *ExecMetrics { return engine.NewMetrics() }

// NewObserver builds an observability handle from opts; thread it through
// Options.Obs (and CorpusConfig.Obs) and harvest with Observer.WriteTrace
// and Observer.Metrics().WritePrometheus after the run.
func NewObserver(opts ObserverOptions) *Observer { return obs.New(opts) }

// ServeTelemetry binds the embedded observability server. The listener
// is bound synchronously: a non-nil return means the endpoints are
// reachable at TelemetryServer.URL. Stop it with Shutdown.
func ServeTelemetry(opts TelemetryOptions) (*TelemetryServer, error) { return obs.Serve(opts) }

// ListRuns reads every manifest of a run-ledger directory, oldest first.
func ListRuns(dir string) ([]*RunManifest, error) { return runlog.List(dir) }

// LoadRun resolves one ledger entry by exact id, unique id prefix, or
// the special names "latest" and "previous".
func LoadRun(dir, id string) (*RunManifest, error) { return runlog.Load(dir, id) }

// DiffRuns compares two run manifests and flags metrics that moved in
// their bad direction by more than threshold (<= 0 uses the default 10%).
func DiffRuns(oldRun, newRun *RunManifest, threshold float64) *RunDiffReport {
	return runlog.Diff(oldRun, newRun, runlog.DiffOptions{Threshold: threshold})
}

// NewCache opens a layered result cache (in-memory LRU front, optional
// on-disk store under opts.Dir). A nil *Cache is valid and always
// misses, so callers can thread an optional cache unconditionally.
func NewCache(opts CacheOptions) (*Cache, error) { return cache.New(opts) }

// NewMemoryCache returns a memory-only result cache with default bounds.
func NewMemoryCache() *Cache { return cache.NewMemory() }

// NewExecProgress returns a progress reporter writing per-decile progress
// lines and failures to w; wire its Observe method into
// ExecOptions.OnEvent.
func NewExecProgress(w io.Writer) *engine.Progress { return engine.NewProgress(w) }

// TeeEvents fans an engine event stream out to several observers.
func TeeEvents(observers ...func(ExecEvent)) func(ExecEvent) { return engine.Tee(observers...) }

// DefaultOptions returns the paper's analysis configuration (month
// chronon, birth counting, published taxon thresholds).
func DefaultOptions() Options { return study.DefaultOptions() }

// DefaultCorpusConfig returns the 195-project corpus configuration with
// the given deterministic seed.
func DefaultCorpusConfig(seed int64) CorpusConfig { return corpus.DefaultConfig(seed) }

// NewRepository creates an empty in-memory repository.
func NewRepository(name string) *Repository { return vcs.NewRepository(name) }

// GenerateCorpus synthesizes a study corpus.
func GenerateCorpus(cfg CorpusConfig) ([]*CorpusProject, error) {
	return GenerateCorpusContext(context.Background(), cfg)
}

// GenerateCorpusContext is GenerateCorpus with a caller context: a
// cancelled context stops materialization and returns the cause.
func GenerateCorpusContext(ctx context.Context, cfg CorpusConfig) ([]*CorpusProject, error) {
	return corpus.GenerateContext(ctx, cfg)
}

// AnalyzeCorpus measures every project of a corpus.
func AnalyzeCorpus(projects []*CorpusProject, opts Options) (*Dataset, error) {
	return AnalyzeCorpusContext(context.Background(), projects, opts)
}

// AnalyzeCorpusContext is AnalyzeCorpus with a caller context. When the
// context is cancelled mid-run, the dataset accumulated so far is
// returned alongside the context's error, so callers can still report
// partial results.
func AnalyzeCorpusContext(ctx context.Context, projects []*CorpusProject, opts Options) (*Dataset, error) {
	return study.AnalyzeCorpusContext(ctx, projects, opts)
}

// AnalyzeRepository measures one repository; pass an empty ddlPath to
// locate the schema file automatically.
func AnalyzeRepository(repo *Repository, ddlPath string, opts Options) (*ProjectResult, error) {
	return AnalyzeRepositoryContext(context.Background(), repo, ddlPath, opts)
}

// AnalyzeRepositoryContext is AnalyzeRepository with a caller context.
func AnalyzeRepositoryContext(ctx context.Context, repo *Repository, ddlPath string, opts Options) (*ProjectResult, error) {
	return study.AnalyzeRepositoryContext(ctx, repo, ddlPath, opts)
}

// RunStudy generates the default 195-project corpus and analyzes it — the
// one-call reproduction of the paper's full pipeline.
func RunStudy(seed int64) (*Dataset, error) {
	return RunStudyContext(context.Background(), seed, DefaultOptions())
}

// RunStudyContext is RunStudy with full control: context cancellation and
// the execution-engine configuration carried by opts.Exec (worker count,
// failure policy, progress/metrics observers). On cancellation the
// partial dataset analyzed so far is returned alongside the context's
// error.
func RunStudyContext(ctx context.Context, seed int64, opts Options) (*Dataset, error) {
	return study.Run(ctx, seed, opts)
}

// Streaming: the fused generate→analyze pipeline. A CorpusSource hands
// projects out lazily, StreamStudy pushes each analyzed result through a
// StudySink in corpus order and releases it, and Figures accumulates
// every published figure and statistic online — the whole study in
// O(workers) memory, byte-identical to the batch path.
type (
	// CorpusSource generates a corpus lazily, one project per Next call.
	CorpusSource = corpus.Source
	// StudySink consumes per-project results in corpus order.
	StudySink = study.Sink
	// StreamSummary reports a streaming run's coverage and failures.
	StreamSummary = study.StreamSummary
	// Figures bundles online accumulators for every figure and the
	// Section 7 statistics; it is a StudySink.
	Figures = study.Figures
)

// NewCorpusSource prepares a lazy generator for cfg.
func NewCorpusSource(cfg CorpusConfig) *CorpusSource { return corpus.NewSource(cfg) }

// NewFigures returns online accumulators for the paper's figures.
func NewFigures() *Figures { return study.NewFigures() }

// MultiSink fans each result out to every non-nil sink in order,
// stopping at the first error.
func MultiSink(sinks ...StudySink) StudySink { return study.MultiSink(sinks...) }

// StreamCorpus generates and analyzes src's corpus as one fused stream,
// feeding sink in corpus order. See study.StreamCorpus.
func StreamCorpus(ctx context.Context, src *CorpusSource, sink StudySink, opts Options) (*StreamSummary, error) {
	return study.StreamCorpus(ctx, src, sink, opts)
}

// StreamStudy is the streaming RunStudyContext: it generates the default
// corpus for seed and streams every analyzed project into sink without
// ever materializing the corpus or a Dataset.
func StreamStudy(ctx context.Context, seed int64, opts Options, sink StudySink) (*StreamSummary, error) {
	return study.RunStream(ctx, seed, opts, sink)
}

// PartialFigures is a Figures accumulator viewed as a mergeable,
// serializable partial fold: a shard streams its partition into one,
// seals it with EncodePartial, and a coordinator folds sealed partials
// with Merge. Any partition of the corpus and any merge order reproduce
// the sequential fold exactly.
type PartialFigures = study.PartialFigures

// DecodePartialFigures reconstructs a sealed partial from EncodePartial
// bytes, rejecting truncated, oversized or version-skewed payloads.
func DecodePartialFigures(data []byte) (*PartialFigures, error) {
	return study.DecodePartialFigures(data)
}

// PartitionCorpus returns the residue-class partition of src for shard
// k of n: exactly the projects whose global corpus index ≡ k (mod n),
// generated with the same per-index seeding as the full corpus. Feeding
// every partition through StreamCorpus into PartialFigures and merging
// them reproduces the whole-corpus run byte-for-byte.
func PartitionCorpus(src *CorpusSource, shard, of int) (*CorpusSource, error) {
	return src.Partition(shard, of)
}

// Rendering: every figure and export of the study is produced through one
// entry point, Render, which dispatches an artifact and a format to the
// matching encoder. The eleven Write* helpers below predate it and remain
// as one-line wrappers for compatibility.

// Rendering types re-exported from the report package.
type (
	// Format selects a Render encoding: Text, SVG or CSV.
	Format = report.Format
	// Figure is a renderable study artifact; Render also accepts the raw
	// artifact types (JointProgress, SyncHistogram, Dataset, ...) directly.
	Figure = report.Figure
	// JointProgressFigure is a titled joint progress diagram (text, svg).
	JointProgressFigure = report.JointProgressFigure
	// SyncHistogramFigure is the Figure 4 histogram (text, svg).
	SyncHistogramFigure = report.SyncHistogramFigure
	// ScatterFigure is the Figure 5 scatter plot (text, svg).
	ScatterFigure = report.ScatterFigure
	// AdvanceTableFigure is the Figure 6 advance table (text).
	AdvanceTableFigure = report.AdvanceTableFigure
	// AlwaysAdvanceFigure is the Figure 7 per-taxon counts (text).
	AlwaysAdvanceFigure = report.AlwaysAdvanceFigure
	// AttainmentFigure is the Figure 8 attainment breakdown (text).
	AttainmentFigure = report.AttainmentFigure
	// StatsFigure is the Section 7 statistics report (text).
	StatsFigure = report.StatsFigure
	// DatasetFigure is the per-project measurement export (csv).
	DatasetFigure = report.DatasetFigure
)

// The render formats.
const (
	// Text is the terminal-friendly fixed-width encoding.
	Text = report.Text
	// SVG is the vector-graphics encoding of the chart figures.
	SVG = report.SVG
	// CSV is the machine-readable dataset export.
	CSV = report.CSV
)

// ErrUnsupportedFormat reports a figure/format combination with no
// encoder; test with errors.Is.
var ErrUnsupportedFormat = report.ErrUnsupportedFormat

// Render encodes a study artifact to w in the given format. The artifact
// may be a Figure (e.g. JointProgressFigure{Title: ..., Progress: j}) or
// one of the raw artifact types produced by a Dataset, which Render wraps
// itself: *coevolution.JointProgress, *study.SyncHistogram,
// []study.ScatterPoint, *study.AdvanceTable, *study.AlwaysAdvanceSummary,
// *study.AttainmentBreakdown, *StatsReport and *Dataset.
func Render(w io.Writer, artifact any, format Format) error {
	return report.Render(w, artifact, format)
}

// WriteJointProgress renders a Figure 1/3-style joint cumulative progress
// diagram.
//
// Deprecated: use Render(w, JointProgressFigure{Title: title, Progress: j}, Text).
func WriteJointProgress(w io.Writer, title string, j *coevolution.JointProgress) error {
	return Render(w, JointProgressFigure{Title: title, Progress: j}, Text)
}

// WriteSyncHistogram renders the Figure 4 synchronicity histogram.
//
// Deprecated: use Render(w, h, Text).
func WriteSyncHistogram(w io.Writer, h *study.SyncHistogram) error {
	return Render(w, h, Text)
}

// WriteScatter renders the Figure 5 duration-vs-synchronicity plot.
//
// Deprecated: use Render(w, points, Text).
func WriteScatter(w io.Writer, points []study.ScatterPoint) error {
	return Render(w, points, Text)
}

// WriteAdvanceTable renders the Figure 6 advance table.
//
// Deprecated: use Render(w, t, Text).
func WriteAdvanceTable(w io.Writer, t *study.AdvanceTable) error {
	return Render(w, t, Text)
}

// WriteAlwaysAdvance renders the Figure 7 per-taxon counts.
//
// Deprecated: use Render(w, s, Text).
func WriteAlwaysAdvance(w io.Writer, s *study.AlwaysAdvanceSummary) error {
	return Render(w, s, Text)
}

// WriteAttainment renders the Figure 8 attainment breakdown.
//
// Deprecated: use Render(w, b, Text).
func WriteAttainment(w io.Writer, b *study.AttainmentBreakdown) error {
	return Render(w, b, Text)
}

// WriteStatsReport renders the Section 7 statistics.
//
// Deprecated: use Render(w, r, Text).
func WriteStatsReport(w io.Writer, r *StatsReport) error {
	return Render(w, r, Text)
}

// WriteDatasetCSV exports the per-project measurements as CSV.
//
// Deprecated: use Render(w, d, CSV).
func WriteDatasetCSV(w io.Writer, d *Dataset) error {
	return Render(w, d, CSV)
}

// DatasetCSVWriter streams the CSV export row by row; its Add method is
// a StudySink, so a streaming study can emit the data set live.
type DatasetCSVWriter = report.DatasetCSVWriter

// NewDatasetCSVWriter writes the CSV header and returns the row writer.
func NewDatasetCSVWriter(w io.Writer) *DatasetCSVWriter { return report.NewDatasetCSVWriter(w) }

// WriteJointProgressSVG renders a joint progress diagram as SVG.
//
// Deprecated: use Render(w, JointProgressFigure{Title: title, Progress: j}, SVG).
func WriteJointProgressSVG(w io.Writer, title string, j *coevolution.JointProgress) error {
	return Render(w, JointProgressFigure{Title: title, Progress: j}, SVG)
}

// WriteScatterSVG renders the Figure 5 scatter as SVG.
//
// Deprecated: use Render(w, points, SVG).
func WriteScatterSVG(w io.Writer, points []study.ScatterPoint) error {
	return Render(w, points, SVG)
}

// WriteSyncHistogramSVG renders the Figure 4 histogram as SVG.
//
// Deprecated: use Render(w, h, SVG).
func WriteSyncHistogramSVG(w io.Writer, h *study.SyncHistogram) error {
	return Render(w, h, SVG)
}
