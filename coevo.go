// Package coevo is the public facade of the joint source and schema
// evolution study toolkit — a from-scratch reproduction of "Joint Source
// and Schema Evolution: Insights from a Study of 195 FOSS Projects"
// (EDBT 2023).
//
// The toolkit measures, for a software project carrying a single-file SQL
// schema, how the schema's evolution relates to the evolution of the
// surrounding source code:
//
//   - θ-synchronicity: how often the two cumulative progressions move
//     hand-in-hand (RQ1);
//   - life percentage of schema advance over time and over source (RQ2);
//   - α-attainment fractional timepoints: how early the schema collects a
//     given share of its lifetime evolution (RQ3).
//
// The typical flow is:
//
//	projects, _ := coevo.GenerateCorpus(coevo.DefaultCorpusConfig(seed))
//	dataset, _ := coevo.AnalyzeCorpus(projects, coevo.DefaultOptions())
//	hist := dataset.SynchronicityHistogram(0.10, 5)   // Figure 4
//	table := dataset.AdvanceBreakdown()               // Figure 6
//	stats, _ := dataset.Statistics(seed)              // Section 7
//
// or, for a single repository (including ones reconstructed from real
// `git log --name-status` output via the gitlog ingestion path):
//
//	result, _ := coevo.AnalyzeRepository(repo, "db/schema.sql", coevo.DefaultOptions())
//	fmt.Println(result.Measures.Sync10)
package coevo

import (
	"context"
	"io"

	"coevo/internal/cache"
	"coevo/internal/coevolution"
	"coevo/internal/corpus"
	"coevo/internal/engine"
	"coevo/internal/report"
	"coevo/internal/study"
	"coevo/internal/vcs"
)

// Aliases of the core result and configuration types, so downstream code
// can consume the toolkit through this single import.
type (
	// Dataset is the per-project result collection of one study run.
	Dataset = study.Dataset
	// ProjectResult carries every measured quantity for one project.
	ProjectResult = study.ProjectResult
	// Options configures history extraction and taxon classification.
	Options = study.Options
	// CorpusConfig parameterizes synthetic corpus generation.
	CorpusConfig = corpus.Config
	// CorpusProject is one synthesized repository with its intended taxon.
	CorpusProject = corpus.Project
	// Repository is the in-memory git-like repository substrate.
	Repository = vcs.Repository
	// Signature names a commit author at a point in time.
	Signature = vcs.Signature
	// StatsReport is the Section 7 statistical analysis.
	StatsReport = study.StatsReport
	// Failure records one project a study run could not measure.
	Failure = study.Failure
	// ExecOptions configures the execution engine (worker count, failure
	// policy, event observer) — the Exec field of Options.
	ExecOptions = engine.Options
	// ExecEvent is one entry of the engine's task event stream.
	ExecEvent = engine.Event
	// ExecMetrics aggregates an event stream into latency/throughput
	// metrics; see NewExecMetrics.
	ExecMetrics = engine.Metrics
	// Cache is the content-addressed result cache memoizing the
	// pipeline's hot stages; set it on Options.Cache and
	// CorpusConfig.Cache. Output is byte-identical with or without one.
	Cache = cache.Cache
	// CacheOptions configures a Cache; see NewCache.
	CacheOptions = cache.Options
	// CacheStats is a point-in-time snapshot of a cache's counters.
	CacheStats = cache.Stats
)

// Execution-engine re-exports: the policies an ExecOptions can select.
const (
	// CollectErrors records per-project failures and keeps going (default).
	CollectErrors = engine.CollectErrors
	// FailFast aborts the run at the first per-project failure.
	FailFast = engine.FailFast
)

// NewExecMetrics returns a metrics collector; wire its Observe method
// into ExecOptions.OnEvent (via TeeEvents when combining observers).
func NewExecMetrics() *ExecMetrics { return engine.NewMetrics() }

// NewCache opens a layered result cache (in-memory LRU front, optional
// on-disk store under opts.Dir). A nil *Cache is valid and always
// misses, so callers can thread an optional cache unconditionally.
func NewCache(opts CacheOptions) (*Cache, error) { return cache.New(opts) }

// NewMemoryCache returns a memory-only result cache with default bounds.
func NewMemoryCache() *Cache { return cache.NewMemory() }

// NewExecProgress returns a progress reporter writing per-decile progress
// lines and failures to w; wire its Observe method into
// ExecOptions.OnEvent.
func NewExecProgress(w io.Writer) *engine.Progress { return engine.NewProgress(w) }

// TeeEvents fans an engine event stream out to several observers.
func TeeEvents(observers ...func(ExecEvent)) func(ExecEvent) { return engine.Tee(observers...) }

// DefaultOptions returns the paper's analysis configuration (month
// chronon, birth counting, published taxon thresholds).
func DefaultOptions() Options { return study.DefaultOptions() }

// DefaultCorpusConfig returns the 195-project corpus configuration with
// the given deterministic seed.
func DefaultCorpusConfig(seed int64) CorpusConfig { return corpus.DefaultConfig(seed) }

// NewRepository creates an empty in-memory repository.
func NewRepository(name string) *Repository { return vcs.NewRepository(name) }

// GenerateCorpus synthesizes a study corpus.
func GenerateCorpus(cfg CorpusConfig) ([]*CorpusProject, error) { return corpus.Generate(cfg) }

// AnalyzeCorpus measures every project of a corpus.
func AnalyzeCorpus(projects []*CorpusProject, opts Options) (*Dataset, error) {
	return study.AnalyzeCorpus(projects, opts)
}

// AnalyzeRepository measures one repository; pass an empty ddlPath to
// locate the schema file automatically.
func AnalyzeRepository(repo *Repository, ddlPath string, opts Options) (*ProjectResult, error) {
	return study.AnalyzeRepository(repo, ddlPath, opts)
}

// RunStudy generates the default 195-project corpus and analyzes it — the
// one-call reproduction of the paper's full pipeline.
func RunStudy(seed int64) (*Dataset, error) { return study.RunDefault(seed) }

// RunStudyContext is RunStudy with full control: context cancellation and
// the execution-engine configuration carried by opts.Exec (worker count,
// failure policy, progress/metrics observers).
func RunStudyContext(ctx context.Context, seed int64, opts Options) (*Dataset, error) {
	return study.Run(ctx, seed, opts)
}

// Rendering helpers re-exported from the report package, so examples and
// downstream tools can produce the paper's figures through the facade.

// WriteJointProgress renders a Figure 1/3-style joint cumulative progress
// diagram.
func WriteJointProgress(w io.Writer, title string, j *coevolution.JointProgress) error {
	return report.WriteJointProgress(w, title, j)
}

// WriteSyncHistogram renders the Figure 4 synchronicity histogram.
func WriteSyncHistogram(w io.Writer, h *study.SyncHistogram) error {
	return report.WriteSyncHistogram(w, h)
}

// WriteScatter renders the Figure 5 duration-vs-synchronicity plot.
func WriteScatter(w io.Writer, points []study.ScatterPoint) error {
	return report.WriteScatter(w, points)
}

// WriteAdvanceTable renders the Figure 6 advance table.
func WriteAdvanceTable(w io.Writer, t *study.AdvanceTable) error {
	return report.WriteAdvanceTable(w, t)
}

// WriteAlwaysAdvance renders the Figure 7 per-taxon counts.
func WriteAlwaysAdvance(w io.Writer, s *study.AlwaysAdvanceSummary) error {
	return report.WriteAlwaysAdvance(w, s)
}

// WriteAttainment renders the Figure 8 attainment breakdown.
func WriteAttainment(w io.Writer, b *study.AttainmentBreakdown) error {
	return report.WriteAttainment(w, b)
}

// WriteStatsReport renders the Section 7 statistics.
func WriteStatsReport(w io.Writer, r *StatsReport) error {
	return report.WriteStatsReport(w, r)
}

// WriteDatasetCSV exports the per-project measurements as CSV.
func WriteDatasetCSV(w io.Writer, d *Dataset) error {
	return report.WriteDatasetCSV(w, d)
}

// WriteJointProgressSVG renders a joint progress diagram as SVG.
func WriteJointProgressSVG(w io.Writer, title string, j *coevolution.JointProgress) error {
	return report.WriteJointProgressSVG(w, title, j)
}

// WriteScatterSVG renders the Figure 5 scatter as SVG.
func WriteScatterSVG(w io.Writer, points []study.ScatterPoint) error {
	return report.WriteScatterSVG(w, points)
}

// WriteSyncHistogramSVG renders the Figure 4 histogram as SVG.
func WriteSyncHistogramSVG(w io.Writer, h *study.SyncHistogram) error {
	return report.WriteSyncHistogramSVG(w, h)
}
