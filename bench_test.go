// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark measures the aggregation that produces one
// artifact over the full 195-project corpus (built once and cached), and
// reports the reproduced headline numbers as custom metrics so a bench run
// doubles as a reproduction record:
//
//	go test -bench=. -benchmem
//
// The ablation benchmarks exercise the design choices DESIGN.md calls out:
// the month chronon, the θ acceptance band, the files-updated change unit,
// and birth counting.
package coevo_test

import (
	"context"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"coevo"
	"coevo/internal/coevolution"
	"coevo/internal/corpus"
	"coevo/internal/engine"
	"coevo/internal/heartbeat"
	"coevo/internal/history"
	"coevo/internal/obs"
	"coevo/internal/stats"
	"coevo/internal/study"
	"coevo/internal/taxa"
)

const benchSeed = 2023

var (
	benchOnce    sync.Once
	benchDataset *coevo.Dataset
	benchCorpus  []*coevo.CorpusProject
)

// dataset builds (once) and returns the full study dataset.
func dataset(b *testing.B) *coevo.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		projects, err := coevo.GenerateCorpus(coevo.DefaultCorpusConfig(benchSeed))
		if err != nil {
			panic(err)
		}
		benchCorpus = projects
		d, err := coevo.AnalyzeCorpus(projects, coevo.DefaultOptions())
		if err != nil {
			panic(err)
		}
		benchDataset = d
	})
	return benchDataset
}

// BenchmarkFig3JointDiagrams renders one joint progress diagram per taxon
// (the Figure 1/3 views).
func BenchmarkFig3JointDiagrams(b *testing.B) {
	d := dataset(b)
	exemplars := map[taxa.Taxon]*coevo.ProjectResult{}
	for _, p := range d.Projects {
		if _, ok := exemplars[p.Taxon]; !ok {
			exemplars[p.Taxon] = p
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range exemplars {
			if err := coevo.WriteJointProgress(io.Discard, p.Name, p.Joint); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(exemplars)), "taxa_rendered")
}

// BenchmarkFig4SynchronicityHistogram regenerates the Figure 4 breakdown
// of projects per 10%-synchronicity range.
func BenchmarkFig4SynchronicityHistogram(b *testing.B) {
	d := dataset(b)
	var h *study.SyncHistogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = d.SynchronicityHistogram(0.10, 5)
	}
	b.ReportMetric(float64(h.Buckets[4]), "projects_in_80_100") // paper: "only ~20% hand-in-hand"
	b.ReportMetric(float64(h.Buckets[0]), "projects_in_0_20")
}

// BenchmarkFig5DurationScatter regenerates the Figure 5 scatter and its
// headline finding: projects older than 60 months gravitate away from
// extreme synchronicities.
func BenchmarkFig5DurationScatter(b *testing.B) {
	d := dataset(b)
	var inside, outside int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.DurationSynchronicityScatter()
		inside, outside = d.LongProjectSyncBand(60, 0.2, 0.8)
	}
	b.ReportMetric(float64(inside), "long_projects_mid_band")
	b.ReportMetric(float64(outside), "long_projects_extremes")
}

// BenchmarkFig6AdvanceTable regenerates the Figure 6 life-percentage-of-
// advance table. Paper: 41% (source) / 51% (time) in the [0.9-1.0] range;
// 71% / 78% cumulative at 0.5.
func BenchmarkFig6AdvanceTable(b *testing.B) {
	d := dataset(b)
	var t *study.AdvanceTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = d.AdvanceBreakdown()
	}
	b.ReportMetric(100*t.Rows[0].SourcePct, "pct_source_top_range")
	b.ReportMetric(100*t.Rows[0].TimePct, "pct_time_top_range")
	b.ReportMetric(100*t.Rows[4].SourceCum, "pct_source_cum_at_0.5")
	b.ReportMetric(100*t.Rows[4].TimeCum, "pct_time_cum_at_0.5")
}

// BenchmarkFig7AlwaysAdvance regenerates the Figure 7 always-in-advance
// counts. Paper: time 80 (41%), source 57 (29%), both 55 (28%).
func BenchmarkFig7AlwaysAdvance(b *testing.B) {
	d := dataset(b)
	var s *study.AlwaysAdvanceSummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = d.AlwaysAdvance()
	}
	b.ReportMetric(float64(s.Time), "always_ahead_of_time")
	b.ReportMetric(float64(s.Source), "always_ahead_of_source")
	b.ReportMetric(float64(s.Both), "always_ahead_of_both")
}

// BenchmarkFig8Attainment regenerates the Figure 8 attainment breakdown.
// Paper: 98 projects attain 75% within the first 20% of life; 94 attain
// 80%; 60 attain 100%; 62 attain 100% only after 80% of life.
func BenchmarkFig8Attainment(b *testing.B) {
	d := dataset(b)
	var att *study.AttainmentBreakdown
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		att = d.Attainment()
	}
	b.ReportMetric(float64(att.Counts[1][0]), "attain75_first20pct")
	b.ReportMetric(float64(att.Counts[2][0]), "attain80_first20pct")
	b.ReportMetric(float64(att.Counts[3][0]), "attain100_first20pct")
	b.ReportMetric(float64(att.Counts[3][3]), "attain100_after80pct")
}

// BenchmarkSec7Normality runs the Shapiro-Wilk battery. Paper: every
// attribute rejects normality with p < 0.007.
func BenchmarkSec7Normality(b *testing.B) {
	d := dataset(b)
	xs := make([]float64, 0, d.Size())
	for _, p := range d.Projects {
		xs = append(xs, p.Measures.Sync10)
	}
	var res stats.ShapiroWilkResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = stats.ShapiroWilk(xs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.P, "shapiro_p_sync10")
}

// BenchmarkSec7KruskalSynchronicity tests taxon over 10%-synchronicity.
// Paper: p = 0.003 with the focused-shot taxa at the highest medians.
func BenchmarkSec7KruskalSynchronicity(b *testing.B) {
	d := dataset(b)
	groups := kwGroups(d, func(p *coevo.ProjectResult) float64 { return p.Measures.Sync10 })
	var res stats.KruskalWallisResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = stats.KruskalWallis(groups...)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.P, "kw_sync_p")
	b.ReportMetric(res.GroupMedians[int(taxa.FocusedShotFrozen)], "median_sync_fsf")
}

// BenchmarkSec7KruskalAttainment tests taxon over 75%-attainment. Paper:
// p = 0.006, frozen taxa attain earliest, ACTIVE latest (median 0.47).
func BenchmarkSec7KruskalAttainment(b *testing.B) {
	d := dataset(b)
	groups := kwGroups(d, func(p *coevo.ProjectResult) float64 { return p.Measures.Attain75 })
	var res stats.KruskalWallisResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = stats.KruskalWallis(groups...)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.P, "kw_attain_p")
	b.ReportMetric(res.GroupMedians[int(taxa.Active)], "median_attain_active")
}

func kwGroups(d *coevo.Dataset, pick func(*coevo.ProjectResult) float64) [][]float64 {
	byTaxon := d.ByTaxon()
	groups := make([][]float64, 0, taxa.Count)
	for _, taxon := range taxa.All() {
		var g []float64
		for _, p := range byTaxon[taxon] {
			g = append(g, pick(p))
		}
		groups = append(groups, g)
	}
	return groups
}

// BenchmarkSec7LagTests runs the taxon × always-in-advance contingency
// tests. Paper: time lag n.s. (p ≈ 0.07); source and both significant.
func BenchmarkSec7LagTests(b *testing.B) {
	d := dataset(b)
	var rep *coevo.StatsReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = d.Statistics(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.TimeLagFisher.P, "fisher_time_p")
	b.ReportMetric(rep.SourceLagFisher.P, "fisher_source_p")
	b.ReportMetric(rep.BothLagFisher.P, "fisher_both_p")
}

// BenchmarkSec7Correlations computes the two Kendall correlations the
// paper quotes: τ(5%-sync, 10%-sync) = 0.67 and τ(advance-over-time,
// advance-over-source) = 0.75.
func BenchmarkSec7Correlations(b *testing.B) {
	d := dataset(b)
	var s5, s10, at, as []float64
	for _, p := range d.Projects {
		s5 = append(s5, p.Measures.Sync5)
		s10 = append(s10, p.Measures.Sync10)
		if p.Measures.AdvanceDefined {
			at = append(at, p.Measures.AdvanceTime)
			as = append(as, p.Measures.AdvanceSource)
		}
	}
	var sync, adv stats.KendallResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sync, err = stats.KendallTau(s5, s10)
		if err != nil {
			b.Fatal(err)
		}
		adv, err = stats.KendallTau(at, as)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sync.Tau, "tau_sync5_vs_sync10")
	b.ReportMetric(adv.Tau, "tau_advtime_vs_advsource")
}

// BenchmarkAblationTheta sweeps the θ acceptance band, the design choice
// behind RQ1's definition of "hand-in-hand".
func BenchmarkAblationTheta(b *testing.B) {
	d := dataset(b)
	thetas := []float64{0.02, 0.05, 0.10, 0.20}
	var last *study.SyncHistogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, theta := range thetas {
			last = d.SynchronicityHistogram(theta, 5)
		}
	}
	b.ReportMetric(float64(last.Buckets[4]), "projects_top_bucket_theta20")
}

// BenchmarkAblationChronon re-buckets one project's histories at week,
// month and quarter granularity and compares the synchronicity measure —
// the paper argues the month is the right common chronon.
func BenchmarkAblationChronon(b *testing.B) {
	d := dataset(b)
	// Use the longest project for a meaningful re-bucketing.
	target := d.Projects[0]
	for _, p := range d.Projects {
		if p.DurationMonths > target.DurationMonths {
			target = p
		}
	}
	var repo *coevo.CorpusProject
	for _, p := range benchCorpus {
		if p.Name == target.Name {
			repo = p
		}
	}
	if repo == nil {
		b.Fatal("corpus project not found")
	}
	sh, err := history.ExtractSchemaHistory(repo.Repo, repo.DDLPath, history.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ph, err := history.ExtractProjectHistory(repo.Repo)
	if err != nil {
		b.Fatal(err)
	}
	chronons := []int{7, 30, 90} // days per bucket
	syncs := make([]float64, len(chronons))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci, days := range chronons {
			j, err := jointWithChronon(sh, ph, days)
			if err != nil {
				b.Fatal(err)
			}
			s, err := j.Synchronicity(0.10)
			if err != nil {
				b.Fatal(err)
			}
			syncs[ci] = s
		}
	}
	b.ReportMetric(syncs[0], "sync10_week")
	b.ReportMetric(syncs[1], "sync10_month")
	b.ReportMetric(syncs[2], "sync10_quarter")
}

// jointWithChronon rebuilds the joint progress with an arbitrary chronon
// of `days` by mapping event times onto synthetic month indices.
func jointWithChronon(sh *history.SchemaHistory, ph *history.ProjectHistory, days int) (*coevolution.JointProgress, error) {
	rescale := func(events []heartbeat.Event) []heartbeat.Event {
		out := make([]heartbeat.Event, len(events))
		epoch := events[0].When
		for i, e := range events {
			bucket := int(e.When.Sub(epoch).Hours() / 24 / float64(days))
			out[i] = heartbeat.Event{When: heartbeat.Month(bucket).Time(), Amount: e.Amount}
		}
		return out
	}
	shb, err := heartbeat.FromEvents(rescale(sh.Events()))
	if err != nil {
		return nil, err
	}
	phb, err := heartbeat.FromEvents(rescale(ph.Events()))
	if err != nil {
		return nil, err
	}
	return coevolution.New(phb, shb)
}

// BenchmarkAblationChangeUnit compares the files-updated unit of source
// change against a commit-count unit and a line-churn unit — the
// construct-validity concern the paper's threats section discusses and the
// "more precise unit of change" its future work asks for.
func BenchmarkAblationChangeUnit(b *testing.B) {
	d := dataset(b)
	var tauCommits, tauLines stats.KendallResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var fileSync, commitSync, lineSync []float64
		for _, pr := range d.Projects {
			fileSync = append(fileSync, pr.Measures.Sync10)
		}
		for _, cp := range benchCorpus {
			sc, err := syncWithUnit(cp, unitCommits)
			if err != nil {
				b.Fatal(err)
			}
			commitSync = append(commitSync, sc)
			sl, err := syncWithUnit(cp, unitLines)
			if err != nil {
				b.Fatal(err)
			}
			lineSync = append(lineSync, sl)
		}
		var err error
		tauCommits, err = stats.KendallTau(fileSync, commitSync)
		if err != nil {
			b.Fatal(err)
		}
		tauLines, err = stats.KendallTau(fileSync, lineSync)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tauCommits.Tau, "tau_files_vs_commits_unit")
	b.ReportMetric(tauLines.Tau, "tau_files_vs_lines_unit")
}

// changeUnit selects the project-activity unit for syncWithUnit.
type changeUnit int

const (
	unitCommits changeUnit = iota
	unitLines
)

// syncWithUnit measures 10%-synchronicity with the project heartbeat
// expressed in the chosen unit: one per commit, or the commit's line
// churn.
func syncWithUnit(cp *coevo.CorpusProject, unit changeUnit) (float64, error) {
	sh, err := history.ExtractSchemaHistory(cp.Repo, cp.DDLPath, history.DefaultOptions())
	if err != nil {
		return 0, err
	}
	var phb *heartbeat.Heartbeat
	switch unit {
	case unitLines:
		ph, err := history.ExtractProjectHistoryWithLines(cp.Repo)
		if err != nil {
			return 0, err
		}
		phb, err = ph.LineHeartbeat()
		if err != nil {
			return 0, err
		}
	default:
		ph, err := history.ExtractProjectHistory(cp.Repo)
		if err != nil {
			return 0, err
		}
		events := make([]heartbeat.Event, 0, ph.CommitCount())
		for _, c := range ph.Commits {
			events = append(events, heartbeat.Event{When: c.When, Amount: 1})
		}
		phb, err = heartbeat.FromEvents(events)
		if err != nil {
			return 0, err
		}
	}
	shb, err := sh.Heartbeat()
	if err != nil {
		return 0, err
	}
	j, err := coevolution.New(phb, shb)
	if err != nil {
		return 0, err
	}
	return j.Synchronicity(0.10)
}

// BenchmarkAblationBirthCounting compares the study's birth-counting
// convention against the raw pairwise heartbeat (birth excluded).
func BenchmarkAblationBirthCounting(b *testing.B) {
	dataset(b) // ensure corpus exists
	var withBirth, withoutBirth int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withBirth, withoutBirth = 0, 0
		for _, cp := range benchCorpus {
			on, err := history.ExtractSchemaHistory(cp.Repo, cp.DDLPath, history.Options{CountBirth: true})
			if err != nil {
				b.Fatal(err)
			}
			off, err := history.ExtractSchemaHistory(cp.Repo, cp.DDLPath, history.Options{CountBirth: false})
			if err != nil {
				b.Fatal(err)
			}
			withBirth += on.TotalActivity()
			withoutBirth += off.TotalActivity()
		}
	}
	b.ReportMetric(float64(withBirth), "total_activity_with_birth")
	b.ReportMetric(float64(withoutBirth), "total_activity_without_birth")
}

// BenchmarkPipelineSmallCorpus measures the full generate-and-analyze
// pipeline end to end on a reduced corpus.
func BenchmarkPipelineSmallCorpus(b *testing.B) {
	cfg := coevo.DefaultCorpusConfig(benchSeed)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 2
		if profiles[i].DurationMonths[1] > 36 {
			profiles[i].DurationMonths[1] = 36
		}
	}
	cfg.Profiles = profiles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		projects, err := coevo.GenerateCorpus(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := coevo.AnalyzeCorpus(projects, coevo.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyWarmCache measures the content-addressed cache's payoff on
// the full 195-project analysis. The cold sub-benchmark analyzes into a
// fresh store every iteration; the warm sub-benchmark re-analyzes over a
// pre-populated store through a fresh Cache instance (so disk reads and
// decode are on the clock, exactly like a second run of the tool). The
// warm case also reports cold_over_warm_x, the headline speedup.
func BenchmarkStudyWarmCache(b *testing.B) {
	dataset(b) // build benchCorpus once
	analyze := func(b *testing.B, c *coevo.Cache) {
		opts := coevo.DefaultOptions()
		opts.Cache = c
		d, err := coevo.AnalyzeCorpus(benchCorpus, opts)
		if err != nil {
			b.Fatal(err)
		}
		if d.Size() != 195 {
			b.Fatalf("Size = %d, want 195", d.Size())
		}
	}
	newCache := func(b *testing.B, dir string) *coevo.Cache {
		c, err := coevo.NewCache(coevo.CacheOptions{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := newCache(b, b.TempDir())
			b.StartTimer()
			analyze(b, c)
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		start := time.Now()
		analyze(b, newCache(b, dir)) // populate the store; doubles as the cold reference
		coldDur := time.Since(start)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := newCache(b, dir)
			b.StartTimer()
			analyze(b, c)
		}
		warmNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(coldDur.Nanoseconds())/warmNs, "cold_over_warm_x")
	})
}

// BenchmarkStudyStreaming measures the fused generate→analyze stream over
// the full 195-project corpus with online figure aggregation, against the
// batch collect-all pipeline doing the same work. Each sub-benchmark
// reports its sampled live-heap high-water mark (peak_heap_mib, watermark
// reset after a forced GC each iteration); run with -benchmem for the
// allocation totals. The pair quantifies the streaming memory win.
func BenchmarkStudyStreaming(b *testing.B) {
	measure := func(b *testing.B, run func(opts coevo.Options) int) uint64 {
		b.Helper()
		proc := &obs.ProcStats{}
		opts := coevo.DefaultOptions()
		opts.Exec.OnEvent = func(e coevo.ExecEvent) {
			if e.Type == engine.TaskFinished || e.Type == engine.TaskFailed {
				proc.Sample()
			}
		}
		runtime.GC()
		proc.Reset()
		if n := run(opts); n != 195 {
			b.Fatalf("analyzed %d projects, want 195", n)
		}
		proc.Sample()
		return proc.Peak()
	}
	b.Run("stream", func(b *testing.B) {
		var peak uint64
		for i := 0; i < b.N; i++ {
			peak = measure(b, func(opts coevo.Options) int {
				sum, err := coevo.StreamStudy(context.Background(), benchSeed, opts, coevo.NewFigures())
				if err != nil {
					b.Fatal(err)
				}
				return sum.Projects
			})
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak_heap_mib")
	})
	b.Run("batch", func(b *testing.B) {
		var peak uint64
		for i := 0; i < b.N; i++ {
			peak = measure(b, func(opts coevo.Options) int {
				d, err := coevo.RunStudyContext(context.Background(), benchSeed, opts)
				if err != nil {
					b.Fatal(err)
				}
				return d.Size()
			})
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak_heap_mib")
	})
}

// BenchmarkLocalityFinding computes the related-work locality numbers over
// the corpus: prior work reports 60-90% of changes in 20% of tables and
// ~40% of tables never changing.
func BenchmarkLocalityFinding(b *testing.B) {
	d := dataset(b)
	var loc *study.LocalitySummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc = d.ChangeLocality(5)
	}
	b.ReportMetric(100*loc.MedianTopShare, "pct_changes_in_top20pct_tables")
	b.ReportMetric(100*loc.MedianUnchangedShare, "pct_tables_never_changed")
	b.ReportMetric(float64(loc.Projects), "projects_measured")
}
