module coevo

go 1.22
