// Streaming acceptance test: the fused generate→analyze stream with
// online figure aggregation must reproduce the serial implementation's
// golden artifact hashes — at one worker and at NumCPU, with a cold and
// a warm cache — while never materializing the corpus or a Dataset.
package coevo_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"runtime"
	"testing"

	"coevo"
	"coevo/internal/study"
)

// streamArtifacts renders every golden-checked artifact from the online
// accumulators plus the live CSV capture.
func streamArtifacts(f *coevo.Figures, csv []byte) map[string]func(io.Writer) error {
	return map[string]func(io.Writer) error{
		"figure4": func(w io.Writer) error { return coevo.WriteSyncHistogram(w, f.Sync.Histogram()) },
		"figure5": func(w io.Writer) error { return coevo.WriteScatter(w, f.Scatter.Points()) },
		"figure6": func(w io.Writer) error { return coevo.WriteAdvanceTable(w, f.Advance.Table()) },
		"figure7": func(w io.Writer) error { return coevo.WriteAlwaysAdvance(w, f.Always.Summary()) },
		"figure8": func(w io.Writer) error { return coevo.WriteAttainment(w, f.Attainment.Breakdown()) },
		"csv":     func(w io.Writer) error { _, err := w.Write(csv); return err },
	}
}

// runStreamOnce executes one full streaming study and returns the
// accumulators and the CSV bytes captured row by row.
func runStreamOnce(t *testing.T, workers int, c *coevo.Cache) (*coevo.Figures, []byte) {
	t.Helper()
	figs := coevo.NewFigures()
	var csvBuf bytes.Buffer
	csvW := coevo.NewDatasetCSVWriter(&csvBuf)
	opts := coevo.DefaultOptions()
	opts.Exec.Workers = workers
	opts.Cache = c
	sum, err := coevo.StreamStudy(context.Background(), 2023, opts,
		study.MultiSink(figs, csvW))
	if err != nil {
		t.Fatalf("StreamStudy(workers=%d): %v", workers, err)
	}
	if err := csvW.Close(); err != nil {
		t.Fatalf("csv close: %v", err)
	}
	if sum.Projects != 195 || len(sum.Failures) != 0 {
		t.Fatalf("summary = %d projects, %d failures; want 195, 0", sum.Projects, len(sum.Failures))
	}
	if figs.Count() != 195 {
		t.Fatalf("figures saw %d projects, want 195", figs.Count())
	}
	return figs, csvBuf.Bytes()
}

// checkStreamGolden verifies one streaming run against the serial hashes.
func checkStreamGolden(t *testing.T, label string, figs *coevo.Figures, csv []byte) {
	t.Helper()
	for name, write := range streamArtifacts(figs, csv) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s/%s: %v", label, name, err)
		}
		got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
		if got != serialGolden[name] {
			t.Errorf("%s/%s: hash %s differs from serial golden %s", label, name, got, serialGolden[name])
		}
	}
}

// TestStreamingMatchesSerialGolden pins the equivalence guarantee: the
// streaming pipeline's figures and CSV export hash identically to the
// serial goldens at workers=1 and workers=NumCPU, over a cold and then a
// warm content-addressed cache.
func TestStreamingMatchesSerialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus study in -short mode")
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		c := coevo.NewMemoryCache()
		for _, phase := range []string{"cold", "warm"} {
			label := fmt.Sprintf("workers=%d/%s", workers, phase)
			figs, csv := runStreamOnce(t, workers, c)
			checkStreamGolden(t, label, figs, csv)
			if stats := c.Stats(); phase == "cold" && stats.Misses == 0 {
				t.Errorf("%s: cold cache recorded no misses", label)
			}
		}
		if stats := c.Stats(); stats.Hits == 0 {
			t.Errorf("workers=%d: warm replay recorded no cache hits", workers)
		}
	}
}

// TestStreamingStatisticsMatchBatch checks that the online statistics
// accumulator reproduces the batch Section 7 report for the same seed.
func TestStreamingStatisticsMatchBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus study in -short mode")
	}
	figs, _ := runStreamOnce(t, runtime.NumCPU(), nil)
	streamed, err := figs.Stats.Report(2023)
	if err != nil {
		t.Fatalf("streamed Statistics: %v", err)
	}
	d, err := coevo.RunStudy(2023)
	if err != nil {
		t.Fatalf("batch RunStudy: %v", err)
	}
	batch, err := d.Statistics(2023)
	if err != nil {
		t.Fatalf("batch Statistics: %v", err)
	}
	var sb, ss bytes.Buffer
	if err := coevo.WriteStatsReport(&sb, batch); err != nil {
		t.Fatal(err)
	}
	if err := coevo.WriteStatsReport(&ss, streamed); err != nil {
		t.Fatal(err)
	}
	if sb.String() != ss.String() {
		t.Errorf("streamed Section 7 report differs from batch:\n--- batch ---\n%s\n--- streamed ---\n%s", sb.String(), ss.String())
	}
}
