// Facade-redesign acceptance test: the deprecated Write* helpers, the
// explicit Figure wrappers and Render over raw artifacts are three routes
// to the same encoder, and must produce byte-identical output for every
// figure and format.
package coevo_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"coevo"
	"coevo/internal/corpus"
)

// renderDataset builds a reduced corpus dataset for render comparisons.
func renderDataset(t *testing.T) *coevo.Dataset {
	t.Helper()
	cfg := coevo.DefaultCorpusConfig(31)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 2
		if profiles[i].DurationMonths[1] > 30 {
			profiles[i].DurationMonths[1] = 30
		}
	}
	cfg.Profiles = profiles
	projects, err := coevo.GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := coevo.AnalyzeCorpus(projects, coevo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRenderMatchesDeprecatedWriters(t *testing.T) {
	d := renderDataset(t)
	stats, err := d.Statistics(1)
	if err != nil {
		t.Fatal(err)
	}
	joint := d.Projects[0].Joint
	hist := d.SynchronicityHistogram(0.10, 5)
	scatter := d.DurationSynchronicityScatter()
	table := d.AdvanceBreakdown()
	always := d.AlwaysAdvance()
	attain := d.Attainment()

	cases := []struct {
		name     string
		format   coevo.Format
		writer   func(io.Writer) error // deprecated entry point
		artifact any                   // raw artifact Render wraps itself
		figure   coevo.Figure          // explicit Figure wrapper
	}{
		{"joint/text", coevo.Text,
			func(w io.Writer) error { return coevo.WriteJointProgress(w, "demo", joint) },
			coevo.JointProgressFigure{Title: "demo", Progress: joint},
			coevo.JointProgressFigure{Title: "demo", Progress: joint}},
		{"joint/svg", coevo.SVG,
			func(w io.Writer) error { return coevo.WriteJointProgressSVG(w, "demo", joint) },
			coevo.JointProgressFigure{Title: "demo", Progress: joint},
			coevo.JointProgressFigure{Title: "demo", Progress: joint}},
		{"histogram/text", coevo.Text,
			func(w io.Writer) error { return coevo.WriteSyncHistogram(w, hist) },
			hist, coevo.SyncHistogramFigure{Histogram: hist}},
		{"histogram/svg", coevo.SVG,
			func(w io.Writer) error { return coevo.WriteSyncHistogramSVG(w, hist) },
			hist, coevo.SyncHistogramFigure{Histogram: hist}},
		{"scatter/text", coevo.Text,
			func(w io.Writer) error { return coevo.WriteScatter(w, scatter) },
			scatter, coevo.ScatterFigure{Points: scatter}},
		{"scatter/svg", coevo.SVG,
			func(w io.Writer) error { return coevo.WriteScatterSVG(w, scatter) },
			scatter, coevo.ScatterFigure{Points: scatter}},
		{"advance/text", coevo.Text,
			func(w io.Writer) error { return coevo.WriteAdvanceTable(w, table) },
			table, coevo.AdvanceTableFigure{Table: table}},
		{"always/text", coevo.Text,
			func(w io.Writer) error { return coevo.WriteAlwaysAdvance(w, always) },
			always, coevo.AlwaysAdvanceFigure{Summary: always}},
		{"attainment/text", coevo.Text,
			func(w io.Writer) error { return coevo.WriteAttainment(w, attain) },
			attain, coevo.AttainmentFigure{Breakdown: attain}},
		{"stats/text", coevo.Text,
			func(w io.Writer) error { return coevo.WriteStatsReport(w, stats) },
			stats, coevo.StatsFigure{Report: stats}},
		{"dataset/csv", coevo.CSV,
			func(w io.Writer) error { return coevo.WriteDatasetCSV(w, d) },
			d, coevo.DatasetFigure{Dataset: d}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var deprecated, viaRaw, viaFigure bytes.Buffer
			if err := tc.writer(&deprecated); err != nil {
				t.Fatalf("deprecated writer: %v", err)
			}
			if err := coevo.Render(&viaRaw, tc.artifact, tc.format); err != nil {
				t.Fatalf("Render(raw artifact): %v", err)
			}
			if err := coevo.Render(&viaFigure, tc.figure, tc.format); err != nil {
				t.Fatalf("Render(figure): %v", err)
			}
			if deprecated.Len() == 0 {
				t.Fatal("empty rendering")
			}
			if !bytes.Equal(deprecated.Bytes(), viaRaw.Bytes()) {
				t.Error("Render over the raw artifact differs from the deprecated writer")
			}
			if !bytes.Equal(deprecated.Bytes(), viaFigure.Bytes()) {
				t.Error("Render over the explicit figure differs from the deprecated writer")
			}
		})
	}
}

func TestRenderUnsupportedFormat(t *testing.T) {
	d := renderDataset(t)
	unsupported := []struct {
		name     string
		artifact any
		format   coevo.Format
	}{
		{"advance/svg", d.AdvanceBreakdown(), coevo.SVG},
		{"always/csv", d.AlwaysAdvance(), coevo.CSV},
		{"attainment/svg", d.Attainment(), coevo.SVG},
		{"dataset/text", d, coevo.Text},
		{"histogram/csv", d.SynchronicityHistogram(0.10, 5), coevo.CSV},
		{"joint/csv", coevo.JointProgressFigure{Progress: d.Projects[0].Joint}, coevo.CSV},
	}
	for _, tc := range unsupported {
		t.Run(tc.name, func(t *testing.T) {
			err := coevo.Render(io.Discard, tc.artifact, tc.format)
			if !errors.Is(err, coevo.ErrUnsupportedFormat) {
				t.Errorf("want ErrUnsupportedFormat, got %v", err)
			}
		})
	}

	// An artifact with no figure encoding at all is a plain error, not an
	// unsupported format.
	err := coevo.Render(io.Discard, 42, coevo.Text)
	if err == nil || errors.Is(err, coevo.ErrUnsupportedFormat) {
		t.Errorf("unknown artifact: got %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "no figure encoding") {
		t.Errorf("unknown artifact error unhelpful: %v", err)
	}
}
