// Quickstart: build a small project history through the public API,
// measure its schema/source co-evolution and print the full measure suite.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"coevo"
)

func main() {
	// A project with a schema declared at birth, grown twice, while the
	// source code churns steadily for a year.
	repo := coevo.NewRepository("example/notes-app")
	dev := func(monthOffset int) coevo.Signature {
		return coevo.Signature{
			Name:  "dev",
			Email: "dev@example.org",
			When:  time.Date(2020, time.January, 15, 10, 0, 0, 0, time.UTC).AddDate(0, monthOffset, 0),
		}
	}
	commit := func(msg string, sig coevo.Signature) {
		if _, err := repo.Commit(msg, sig); err != nil {
			log.Fatalf("commit %q: %v", msg, err)
		}
	}

	repo.StageString("schema.sql", `
		CREATE TABLE notes (
			id INT NOT NULL AUTO_INCREMENT,
			body TEXT,
			PRIMARY KEY (id)
		);`)
	repo.StageString("app/main.go", "package main // v1")
	commit("initial import", dev(0))

	repo.StageString("app/main.go", "package main // v2")
	repo.StageString("app/handlers.go", "package main")
	commit("add handlers", dev(1))

	repo.StageString("schema.sql", `
		CREATE TABLE notes (
			id INT NOT NULL AUTO_INCREMENT,
			body TEXT,
			created_at TIMESTAMP,
			PRIMARY KEY (id)
		);
		CREATE TABLE tags (id INT, name VARCHAR(64), PRIMARY KEY (id));`)
	repo.StageString("app/handlers.go", "package main // now with tags")
	commit("tags feature: schema + code", dev(2))

	for m := 3; m <= 12; m++ {
		repo.StageString("app/main.go", fmt.Sprintf("package main // v%d", m))
		commit(fmt.Sprintf("routine work %d", m), dev(m))
	}

	// Analyze: locate the DDL file, extract both histories, align the
	// heartbeats and compute every measure of the paper.
	result, err := coevo.AnalyzeRepository(repo, "", coevo.DefaultOptions())
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Printf("project %s — taxon %s, %d months\n",
		result.Name, result.Taxon, result.DurationMonths)
	fmt.Printf("schema: %d commits, %d change units; project: %d commits, %d file updates\n\n",
		result.SchemaCommits, result.TotalSchemaActivity, result.ProjectCommits, result.FileUpdates)

	if err := coevo.WriteJointProgress(os.Stdout, "joint cumulative fractional progress", result.Joint); err != nil {
		log.Fatalf("render: %v", err)
	}

	m := result.Measures
	fmt.Printf("\n10%%-synchronicity        %.2f\n", m.Sync10)
	fmt.Printf("advance over time        %.2f (always ahead: %v)\n", m.AdvanceTime, m.AlwaysAheadOfTime)
	fmt.Printf("advance over source      %.2f (always ahead: %v)\n", m.AdvanceSource, m.AlwaysAheadOfSource)
	fmt.Printf("75%% of evolution reached at %.0f%% of the project's life\n", m.Attain75*100)
}
