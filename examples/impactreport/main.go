// Impactreport demonstrates the co-change and blast-radius analyses: the
// automated version of the manual commit-window inspection the paper
// performs in its case study, and the "which code does this schema change
// affect" tooling its implications section calls for.
//
// Run with:
//
//	go run ./examples/impactreport
package main

import (
	"fmt"
	"log"
	"time"

	"coevo"
	"coevo/internal/history"
	"coevo/internal/impact"
	"coevo/internal/schemadiff"
)

func main() {
	repo := buildShop()

	sh, err := history.ExtractSchemaHistory(repo, "db/schema.sql", history.DefaultOptions())
	if err != nil {
		log.Fatalf("schema history: %v", err)
	}

	// 1. Blast radius: which source files reference the schema elements a
	// given change touches?
	index, err := impact.ScanRepository(repo, "db/schema.sql", sh.FinalSchema(), impact.DefaultOptions())
	if err != nil {
		log.Fatalf("scan: %v", err)
	}
	fmt.Println("schema-element references at HEAD:")
	for _, element := range []string{"orders", "customers", "discount"} {
		fmt.Printf("  %-10s -> %v\n", element, index.FilesReferencing(element))
	}

	fmt.Println("\nper-version blast radius (files referencing changed elements):")
	for i, d := range sh.Deltas {
		if d.TotalActivity() == 0 {
			continue
		}
		fmt.Printf("  version %d (%s): %v\n", i, d, index.AffectedFiles(d))
	}

	// 2. Windowed co-change: how much source churn lands around each kind
	// of schema change?
	stats, err := impact.CoChange(repo, sh, 1)
	if err != nil {
		log.Fatalf("co-change: %v", err)
	}
	fmt.Printf("\nco-change within ±%d commits of schema commits:\n", stats.WindowCommits)
	for _, kind := range []schemadiff.ChangeKind{
		schemadiff.AttrBornWithTable, schemadiff.AttrInjected,
		schemadiff.AttrEjected, schemadiff.AttrTypeChanged,
	} {
		if ki, ok := stats.PerKind[kind]; ok {
			fmt.Printf("  %-20s %d changes, avg %.1f source files each\n", kind, ki.Changes, ki.Avg())
		}
	}
	fmt.Printf("schema commits also touching source in the same revision: %.0f%%\n",
		100*stats.SameCommitShare)
}

// buildShop materializes a small web-shop project whose code references
// its schema elements by name.
func buildShop() *coevo.Repository {
	repo := coevo.NewRepository("example/webshop")
	seq := 0
	commit := func(month int, msg string) {
		seq++
		sig := coevo.Signature{
			Name: "dev", Email: "dev@example.org",
			When: time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC).AddDate(0, month, 0).Add(time.Duration(seq) * time.Minute),
		}
		if _, err := repo.Commit(msg, sig); err != nil {
			log.Fatalf("commit: %v", err)
		}
	}

	repo.StageString("db/schema.sql", `
		CREATE TABLE orders (id INT PRIMARY KEY, total DECIMAL(10,2), placed_at TIMESTAMP);
		CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(255));`)
	repo.StageString("app/orders.go", `package app
// Order persistence: INSERT INTO orders (total, placed_at) VALUES (?, ?)
func SaveOrder() { query("orders", "total", "placed_at") }`)
	repo.StageString("app/customers.go", `package app
// SELECT email FROM customers WHERE id = ?
func LoadCustomer() { query("customers", "email") }`)
	repo.StageString("app/router.go", "package app\n// no database access here\n")
	commit(0, "initial import")

	repo.StageString("app/router.go", "package app\n// v2: more routes\n")
	commit(1, "routing work")

	repo.StageString("db/schema.sql", `
		CREATE TABLE orders (id INT PRIMARY KEY, total DECIMAL(10,2), placed_at TIMESTAMP, discount DECIMAL(10,2));
		CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(255));`)
	repo.StageString("app/orders.go", `package app
// Order persistence now with discount:
// INSERT INTO orders (total, placed_at, discount) VALUES (?, ?, ?)
func SaveOrder() { query("orders", "total", "placed_at", "discount") }`)
	commit(2, "discounts: schema + adaptation")

	repo.StageString("app/orders.go", `package app
// follow-up: validate discount against orders total
func SaveOrder() { query("orders", "total", "placed_at", "discount") }`)
	commit(2, "discount validation follow-up")

	repo.StageString("db/schema.sql", `
		CREATE TABLE orders (id INT PRIMARY KEY, total DECIMAL(10,2), placed_at TIMESTAMP, discount DECIMAL(10,2));
		CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(255), phone VARCHAR(32));`)
	commit(4, "customer phone numbers (no code yet)")

	repo.StageString("app/customers.go", `package app
// late adaptation: SELECT email, phone FROM customers
func LoadCustomer() { query("customers", "email", "phone") }`)
	commit(5, "use customer phone in code")

	return repo
}
