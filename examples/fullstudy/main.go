// Fullstudy regenerates the paper's entire evaluation in one run: the
// 195-project corpus, Figures 4 through 8, and the Section 7 statistics,
// all through the public API.
//
// Run with:
//
//	go run ./examples/fullstudy [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"coevo"
)

func main() {
	seed := flag.Int64("seed", 2023, "corpus seed")
	flag.Parse()

	dataset, err := coevo.RunStudy(*seed)
	if err != nil {
		log.Fatalf("study: %v", err)
	}
	fmt.Printf("analyzed %d projects (seed %d)\n\n", dataset.Size(), *seed)

	must := func(err error) {
		if err != nil {
			log.Fatalf("render: %v", err)
		}
	}
	must(coevo.WriteSyncHistogram(os.Stdout, dataset.SynchronicityHistogram(0.10, 5)))
	fmt.Println()

	must(coevo.WriteScatter(os.Stdout, dataset.DurationSynchronicityScatter()))
	in, out := dataset.LongProjectSyncBand(60, 0.2, 0.8)
	fmt.Printf("projects over 60 months: %d inside the (0.2, 0.8) band, %d outside\n\n", in, out)

	must(coevo.WriteAdvanceTable(os.Stdout, dataset.AdvanceBreakdown()))
	fmt.Println()

	must(coevo.WriteAlwaysAdvance(os.Stdout, dataset.AlwaysAdvance()))
	fmt.Println()

	must(coevo.WriteAttainment(os.Stdout, dataset.Attainment()))
	fmt.Println()

	stats, err := dataset.Statistics(*seed)
	if err != nil {
		log.Fatalf("statistics: %v", err)
	}
	must(coevo.WriteStatsReport(os.Stdout, stats))
}
