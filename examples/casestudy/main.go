// Casestudy reproduces Section 3.3 of the paper: the deep dive into a
// project shaped like mapbox/osm-comments-parser — a JavaScript tool that
// parses OSM Notes and Changeset XML into Postgres.
//
// The published facts this replica is built to match:
//
//   - ~2 years of activity (Project Update Period 22 months, Schema
//     Update Period 20 months);
//   - 119 commits and 259 file updates; 13 schema commits, 9 active;
//   - the schema starts with 48% of its change at start-up, stabilizes
//     until ~50% of the project's life, then attains the rest;
//   - 50% of schema change is attained at ~55% of life, 80% at ~68%.
//
// Run with:
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"coevo"
)

// schemaVersions are the DDL file's states, one per (month, content) pair.
// The attribute arithmetic mirrors the paper's heartbeat: the birth
// declares 12 attributes (48% of the lifetime total of 25 change units).
var schemaVersions = []struct {
	month   int
	comment string
	ddl     string
}{
	{0, "initial schema: notes + changesets", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    lat DOUBLE PRECISION,
    lon DOUBLE PRECISION,
    status VARCHAR(16),
    body TEXT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    username VARCHAR(255),
    comment TEXT
);`},
	{3, "cosmetic: header comment only", ""},  // inactive commit
	{6, "cosmetic: reformat whitespace", ""},  // inactive commit
	{9, "cosmetic: clarify column notes", ""}, // inactive commit
	{11, "track when notes close (+1 attr)", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    closed_at TIMESTAMP WITH TIME ZONE,
    lat DOUBLE PRECISION,
    lon DOUBLE PRECISION,
    status VARCHAR(16),
    body TEXT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    username VARCHAR(255),
    comment TEXT
);`},
	{13, "changeset discussion support (+2 attrs)", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    closed_at TIMESTAMP WITH TIME ZONE,
    lat DOUBLE PRECISION,
    lon DOUBLE PRECISION,
    status VARCHAR(16),
    body TEXT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    username VARCHAR(255),
    comment TEXT,
    comments_count INT,
    discussion TEXT
);`},
	{14, "users table (+2 attrs born with table)", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    closed_at TIMESTAMP WITH TIME ZONE,
    lat DOUBLE PRECISION,
    lon DOUBLE PRECISION,
    status VARCHAR(16),
    body TEXT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    username VARCHAR(255),
    comment TEXT,
    comments_count INT,
    discussion TEXT
);
CREATE TABLE users (
    id SERIAL PRIMARY KEY,
    name VARCHAR(255)
);`},
	{14, "user ids on notes (+1 attr, same month)", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    closed_at TIMESTAMP WITH TIME ZONE,
    lat DOUBLE PRECISION,
    lon DOUBLE PRECISION,
    status VARCHAR(16),
    body TEXT,
    user_id INT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    username VARCHAR(255),
    comment TEXT,
    comments_count INT,
    discussion TEXT
);
CREATE TABLE users (
    id SERIAL PRIMARY KEY,
    name VARCHAR(255)
);`},
	{15, "coordinate types to NUMERIC (2 type changes)", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    closed_at TIMESTAMP WITH TIME ZONE,
    lat NUMERIC(10,7),
    lon NUMERIC(10,7),
    status VARCHAR(16),
    body TEXT,
    user_id INT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    username VARCHAR(255),
    comment TEXT,
    comments_count INT,
    discussion TEXT
);
CREATE TABLE users (
    id SERIAL PRIMARY KEY,
    name VARCHAR(255)
);`},
	{16, "cosmetic: note about numeric precision", ""}, // inactive commit
	{17, "denormalize: usernames live on users (-2 attrs)", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    closed_at TIMESTAMP WITH TIME ZONE,
    lat NUMERIC(10,7),
    lon NUMERIC(10,7),
    status VARCHAR(16),
    user_id INT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    comment TEXT,
    comments_count INT,
    discussion TEXT
);
CREATE TABLE users (
    id SERIAL PRIMARY KEY,
    name VARCHAR(255)
);`},
	{19, "bounding boxes on changesets (+2 attrs)", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    closed_at TIMESTAMP WITH TIME ZONE,
    lat NUMERIC(10,7),
    lon NUMERIC(10,7),
    status VARCHAR(16),
    user_id INT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    comment TEXT,
    comments_count INT,
    discussion TEXT,
    min_lat NUMERIC(10,7),
    min_lon NUMERIC(10,7)
);
CREATE TABLE users (
    id SERIAL PRIMARY KEY,
    name VARCHAR(255)
);`},
	{20, "wider usernames (1 type change)", `
CREATE TABLE notes (
    id SERIAL PRIMARY KEY,
    note_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    closed_at TIMESTAMP WITH TIME ZONE,
    lat NUMERIC(10,7),
    lon NUMERIC(10,7),
    status VARCHAR(16),
    user_id INT
);
CREATE TABLE changesets (
    id SERIAL PRIMARY KEY,
    changeset_id BIGINT NOT NULL,
    created_at TIMESTAMP WITH TIME ZONE,
    comment TEXT,
    comments_count INT,
    discussion TEXT,
    min_lat NUMERIC(10,7),
    min_lon NUMERIC(10,7)
);
CREATE TABLE users (
    id SERIAL PRIMARY KEY,
    name TEXT
);`},
}

func main() {
	repo := buildReplica()
	result, err := coevo.AnalyzeRepository(repo, "sql/schema.sql", coevo.DefaultOptions())
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Println("Case study replica of mapbox/osm-comments-parser (paper §3.3)")
	fmt.Println()
	if err := coevo.WriteJointProgress(os.Stdout, "joint cumulative fractional progress", result.Joint); err != nil {
		log.Fatal(err)
	}

	m := result.Measures
	fmt.Println()
	fmt.Println("                         published   measured")
	row := func(label, published string, measured string) {
		fmt.Printf("%-24s %-11s %s\n", label, published, measured)
	}
	row("project commits", "119", fmt.Sprint(result.ProjectCommits))
	row("file updates", "259", fmt.Sprint(result.FileUpdates))
	row("schema commits", "13", fmt.Sprint(result.SchemaCommits))
	row("active schema commits", "9", fmt.Sprint(result.ActiveSchemaCommits))
	row("duration (months)", "22", fmt.Sprint(result.DurationMonths))
	row("schema change at birth", "48%", fmt.Sprintf("%.0f%%", 100*result.Joint.Schema[0]))
	row("50% attained at", "55% of life", fmt.Sprintf("%.0f%% of life", 100*m.Attain50))
	row("80% attained at", "68% of life", fmt.Sprintf("%.0f%% of life", 100*m.Attain80))
	row("10%-synchronicity", "~43%", fmt.Sprintf("%.0f%%", 100*m.Sync10))
	fmt.Printf("\ntaxon: %s\n", result.Taxon)
}

// buildReplica materializes the repository: 13 schema commits interleaved
// with source churn totalling 119 commits and 259 file updates over a
// 22-month lifetime.
func buildReplica() *coevo.Repository {
	repo := coevo.NewRepository("mapbox/osm-comments-parser")
	start := time.Date(2015, time.March, 2, 9, 0, 0, 0, time.UTC)
	seq := 0
	commit := func(month int, msg string) {
		seq++
		sig := coevo.Signature{
			Name:  "parser-dev",
			Email: "dev@mapbox.example",
			When:  start.AddDate(0, month, 0).Add(time.Duration(seq) * time.Minute),
		}
		if _, err := repo.Commit(msg, sig); err != nil {
			log.Fatalf("month %d commit %q: %v", month, msg, err)
		}
	}

	// Source files of the project.
	files := []string{
		"parsers/notes.js", "parsers/changesets.js", "lib/db.js",
		"lib/xml.js", "index.js", "package.json", "test/notes.test.js",
		"test/changesets.test.js", "README.md", "bin/ingest.js",
	}
	rev := 0
	touch := func(names ...string) {
		for _, n := range names {
			rev++
			repo.StageString(n, fmt.Sprintf("// %s revision %d\n", n, rev))
		}
	}

	// Interleave: schema versions at their months; source commits fill the
	// remaining budget with a front-and-tail-heavy pattern like the
	// paper's description ("changes distributed over the beginning and the
	// second part of the project's life").
	const totalCommits = 119
	const totalFileUpdates = 259
	schemaIdx := 0
	lastDDL := ""
	cosmetic := 0
	// Front-loaded source churn with a second wave — the paper observes
	// "changes distributed over time at the beginning and the second part
	// of the project's life". 106 source commits + 13 schema commits = 119.
	sourceCommitsPerMonth := []int{24, 20, 16, 8, 5, 3, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1}

	fileUpdates, commits := 0, 0
	for month := 0; month <= 22; month++ {
		for schemaIdx < len(schemaVersions) && schemaVersions[schemaIdx].month == month {
			v := schemaVersions[schemaIdx]
			if v.ddl != "" {
				lastDDL = v.ddl
			} else {
				cosmetic++
			}
			content := fmt.Sprintf("-- osm-comments schema (edit %d)\n%s", cosmetic, lastDDL)
			repo.StageString("sql/schema.sql", content)
			// Schema commits ship with adjacent parser changes.
			touch(files[schemaIdx%3])
			commit(month, v.comment)
			fileUpdates += 2
			commits++
			schemaIdx++
		}
		for c := 0; c < sourceCommitsPerMonth[month] && commits < totalCommits; c++ {
			// 233 source-file updates over 106 commits: every fifth commit
			// touches three files, the rest two.
			n := 2
			if (commits%5 == 0 || commits == totalCommits-1) && fileUpdates+3 <= totalFileUpdates {
				n = 3
			}
			picked := make([]string, 0, n)
			for k := 0; k < n; k++ {
				picked = append(picked, files[(commits+c+3*k)%len(files)])
			}
			touch(picked...)
			commit(month, fmt.Sprintf("work %d", commits))
			fileUpdates += n
			commits++
		}
	}
	return repo
}
