// Taxonomy generates the study corpus, classifies every project into the
// six schema-evolution taxa, and renders one Figure-3-style joint progress
// diagram per taxon — the exemplar views the paper uses to illustrate
// synchronous and out-of-sync co-evolution.
//
// Run with:
//
//	go run ./examples/taxonomy [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"coevo"
	"coevo/internal/taxa"
)

func main() {
	seed := flag.Int64("seed", 2023, "corpus seed")
	flag.Parse()

	projects, err := coevo.GenerateCorpus(coevo.DefaultCorpusConfig(*seed))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	dataset, err := coevo.AnalyzeCorpus(projects, coevo.DefaultOptions())
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	// Distribution of measured taxa (vs the generator's intent).
	fmt.Println("taxon distribution (measured, with generator intent in parentheses):")
	measured := map[taxa.Taxon]int{}
	intended := map[taxa.Taxon]int{}
	for _, p := range dataset.Projects {
		measured[p.Taxon]++
		if p.IntendedTaxon != nil {
			intended[*p.IntendedTaxon]++
		}
	}
	for _, taxon := range taxa.All() {
		fmt.Printf("  %-24s %3d (%d intended)\n", taxon, measured[taxon], intended[taxon])
	}
	fmt.Println()

	// One exemplar per taxon: pick the project whose 10%-synchronicity is
	// the taxon's median, the most representative individual.
	for _, taxon := range taxa.All() {
		exemplar := medianProject(dataset, taxon)
		if exemplar == nil {
			continue
		}
		title := fmt.Sprintf("%s — %s (duration %d months, sync %.0f%%)",
			taxon, exemplar.Name, exemplar.DurationMonths, 100*exemplar.Measures.Sync10)
		if err := coevo.WriteJointProgress(os.Stdout, title, exemplar.Joint); err != nil {
			log.Fatalf("render: %v", err)
		}
		fmt.Println()
	}
}

// medianProject returns the project of the taxon with the median
// 10%-synchronicity.
func medianProject(d *coevo.Dataset, taxon taxa.Taxon) *coevo.ProjectResult {
	var members []*coevo.ProjectResult
	for _, p := range d.Projects {
		if p.Taxon == taxon {
			members = append(members, p)
		}
	}
	if len(members) == 0 {
		return nil
	}
	// Selection by rank, O(n²) is irrelevant at this scale.
	best := members[0]
	bestScore := -1
	for _, cand := range members {
		below := 0
		for _, other := range members {
			if other.Measures.Sync10 <= cand.Measures.Sync10 {
				below++
			}
		}
		// The median has ~half the members at or below it.
		score := len(members)/2 + 1 - abs(below-(len(members)/2+1))
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
