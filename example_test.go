package coevo_test

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"coevo"
)

// Example demonstrates the README's minimal flow: build a repository,
// analyze it, read the co-evolution measures.
func Example() {
	repo := coevo.NewRepository("example/app")
	at := func(m int) coevo.Signature {
		return coevo.Signature{Name: "dev", Email: "dev@example.org",
			When: time.Date(2021, 1, 10, 0, 0, 0, 0, time.UTC).AddDate(0, m, 0)}
	}
	repo.StageString("schema.sql", "CREATE TABLE notes (id INT PRIMARY KEY, body TEXT);")
	repo.StageString("app.go", "package app")
	if _, err := repo.Commit("init", at(0)); err != nil {
		panic(err)
	}
	repo.StageString("schema.sql", "CREATE TABLE notes (id INT PRIMARY KEY, body TEXT, created_at TIMESTAMP);")
	if _, err := repo.Commit("track creation time", at(2)); err != nil {
		panic(err)
	}
	repo.StageString("app.go", "package app // v2")
	if _, err := repo.Commit("late feature work", at(8)); err != nil {
		panic(err)
	}

	result, err := coevo.AnalyzeRepository(repo, "", coevo.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("taxon: %s\n", result.Taxon)
	fmt.Printf("duration: %d months, schema activity: %d units\n",
		result.DurationMonths, result.TotalSchemaActivity)
	fmt.Printf("75%% of schema evolution attained at %.0f%% of life\n",
		100*result.Measures.Attain75)
	// Output:
	// taxon: ALMOST FROZEN
	// duration: 8 months, schema activity: 3 units
	// 75% of schema evolution attained at 25% of life
}

// ExampleRender shows the consolidated rendering entry point. The
// per-figure Write* helpers are deprecated one-line wrappers around it:
//
//	coevo.WriteJointProgress(w, "app", j)    →  coevo.Render(w, coevo.JointProgressFigure{Title: "app", Progress: j}, coevo.Text)
//	coevo.WriteSyncHistogramSVG(w, h)        →  coevo.Render(w, h, coevo.SVG)
//	coevo.WriteDatasetCSV(w, d)              →  coevo.Render(w, d, coevo.CSV)
//
// Render accepts either a raw artifact (histogram, scatter points,
// dataset, ...) or an explicit figure wrapper, plus a format; a
// combination with no encoder fails with coevo.ErrUnsupportedFormat.
func ExampleRender() {
	repo := coevo.NewRepository("example/render")
	at := func(m int) coevo.Signature {
		return coevo.Signature{Name: "dev", Email: "dev@example.org",
			When: time.Date(2021, 1, 10, 0, 0, 0, 0, time.UTC).AddDate(0, m, 0)}
	}
	repo.StageString("schema.sql", "CREATE TABLE notes (id INT PRIMARY KEY);")
	repo.StageString("app.go", "package app")
	if _, err := repo.Commit("init", at(0)); err != nil {
		panic(err)
	}
	repo.StageString("app.go", "package app // v2")
	if _, err := repo.Commit("feature work", at(6)); err != nil {
		panic(err)
	}
	result, err := coevo.AnalyzeRepository(repo, "", coevo.DefaultOptions())
	if err != nil {
		panic(err)
	}

	fig := coevo.JointProgressFigure{Title: "example/render", Progress: result.Joint}
	var text, svg bytes.Buffer
	if err := coevo.Render(&text, fig, coevo.Text); err != nil {
		panic(err)
	}
	if err := coevo.Render(&svg, fig, coevo.SVG); err != nil {
		panic(err)
	}
	fmt.Printf("text diagram has a legend: %v\n", strings.Contains(text.String(), "S=schema"))
	fmt.Printf("svg document: %v\n", strings.HasPrefix(svg.String(), "<svg"))
	fmt.Printf("unsupported combination: %v\n", coevo.Render(&text, fig, coevo.CSV) != nil)
	// Output:
	// text diagram has a legend: true
	// svg document: true
	// unsupported combination: true
}
