package coevo_test

import (
	"fmt"
	"time"

	"coevo"
)

// Example demonstrates the README's minimal flow: build a repository,
// analyze it, read the co-evolution measures.
func Example() {
	repo := coevo.NewRepository("example/app")
	at := func(m int) coevo.Signature {
		return coevo.Signature{Name: "dev", Email: "dev@example.org",
			When: time.Date(2021, 1, 10, 0, 0, 0, 0, time.UTC).AddDate(0, m, 0)}
	}
	repo.StageString("schema.sql", "CREATE TABLE notes (id INT PRIMARY KEY, body TEXT);")
	repo.StageString("app.go", "package app")
	if _, err := repo.Commit("init", at(0)); err != nil {
		panic(err)
	}
	repo.StageString("schema.sql", "CREATE TABLE notes (id INT PRIMARY KEY, body TEXT, created_at TIMESTAMP);")
	if _, err := repo.Commit("track creation time", at(2)); err != nil {
		panic(err)
	}
	repo.StageString("app.go", "package app // v2")
	if _, err := repo.Commit("late feature work", at(8)); err != nil {
		panic(err)
	}

	result, err := coevo.AnalyzeRepository(repo, "", coevo.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("taxon: %s\n", result.Taxon)
	fmt.Printf("duration: %d months, schema activity: %d units\n",
		result.DurationMonths, result.TotalSchemaActivity)
	fmt.Printf("75%% of schema evolution attained at %.0f%% of life\n",
		100*result.Measures.Attain75)
	// Output:
	// taxon: ALMOST FROZEN
	// duration: 8 months, schema activity: 3 units
	// 75% of schema evolution attained at 25% of life
}
