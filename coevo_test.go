package coevo_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"coevo"
	"coevo/internal/corpus"
)

// TestPublicAPIEndToEnd walks the facade exactly as the README shows:
// build a repository, analyze it, render the diagram.
func TestPublicAPIEndToEnd(t *testing.T) {
	repo := coevo.NewRepository("api/demo")
	sig := func(m int) coevo.Signature {
		return coevo.Signature{Name: "dev", Email: "d@e.f",
			When: time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC).AddDate(0, m, 0)}
	}
	repo.StageString("schema.sql", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT);")
	repo.StageString("main.go", "package main")
	if _, err := repo.Commit("init", sig(0)); err != nil {
		t.Fatal(err)
	}
	repo.StageString("schema.sql", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT, w INT);")
	if _, err := repo.Commit("grow", sig(4)); err != nil {
		t.Fatal(err)
	}
	repo.StageString("main.go", "package main // v2")
	if _, err := repo.Commit("work", sig(8)); err != nil {
		t.Fatal(err)
	}

	res, err := coevo.AnalyzeRepository(repo, "", coevo.DefaultOptions())
	if err != nil {
		t.Fatalf("AnalyzeRepository: %v", err)
	}
	if res.DurationMonths != 8 || res.TotalSchemaActivity != 3 {
		t.Errorf("result = %+v", res)
	}
	var buf bytes.Buffer
	if err := coevo.WriteJointProgress(&buf, "demo", res.Joint); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S=schema") {
		t.Error("diagram legend missing")
	}
}

// TestPublicAPICorpusFlow exercises the corpus path through the facade
// with a reduced population, including every figure writer.
func TestPublicAPICorpusFlow(t *testing.T) {
	cfg := coevo.DefaultCorpusConfig(31)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 2
		if profiles[i].DurationMonths[1] > 30 {
			profiles[i].DurationMonths[1] = 30
		}
	}
	cfg.Profiles = profiles

	projects, err := coevo.GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := coevo.AnalyzeCorpus(projects, coevo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 12 {
		t.Fatalf("Size = %d", d.Size())
	}

	var buf bytes.Buffer
	writers := []func() error{
		func() error { return coevo.WriteSyncHistogram(&buf, d.SynchronicityHistogram(0.10, 5)) },
		func() error { return coevo.WriteScatter(&buf, d.DurationSynchronicityScatter()) },
		func() error { return coevo.WriteAdvanceTable(&buf, d.AdvanceBreakdown()) },
		func() error { return coevo.WriteAlwaysAdvance(&buf, d.AlwaysAdvance()) },
		func() error { return coevo.WriteAttainment(&buf, d.Attainment()) },
		func() error { return coevo.WriteDatasetCSV(&buf, d) },
	}
	for i, w := range writers {
		if err := w(); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	st, err := d.Statistics(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := coevo.WriteStatsReport(&buf, st); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no rendered output")
	}
}
