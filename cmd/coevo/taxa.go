package main

import (
	"context"
	"fmt"
	"os"

	"coevo/internal/engine"
	"coevo/internal/report"
	"coevo/internal/study"
	"coevo/internal/taxa"
)

// runTaxa breaks the corpus down per taxon: the measured distribution,
// per-taxon synchronicity histograms (the "within the different taxa" view
// of RQ1) and the change-locality summary.
func runTaxa(args []string) error {
	fs := newFlagSet("taxa")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	theta := fs.Float64("theta", 0.10, "synchronicity acceptance band")
	buildExec := engineFlags(fs)
	buildCache := cacheFlags(fs)
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}

	opts := study.DefaultOptions()
	var metrics *engine.Metrics
	opts.Exec, metrics = buildExec()
	c, err := buildCache()
	if err != nil {
		return err
	}
	opts.Cache = c
	attachCacheMetrics(metrics, c)
	d, err := study.Run(context.Background(), *seed, opts)
	if err != nil {
		return err
	}
	reportMetrics(metrics)
	if err := reportFailures(d); err != nil {
		return err
	}

	groups := d.ByTaxon()
	perTaxon := d.SynchronicityHistogramByTaxon(*theta, 5)
	for _, taxon := range taxa.All() {
		h := perTaxon[taxon]
		chart := &report.BarChart{
			Title:  fmt.Sprintf("%s (%d projects) — %.0f%%-synchronicity", taxon, len(groups[taxon]), *theta*100),
			Labels: h.Labels,
		}
		for _, c := range h.Buckets {
			chart.Values = append(chart.Values, float64(c))
		}
		if err := chart.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	loc := d.ChangeLocality(5)
	fmt.Printf("change locality (projects with >= 5 tables, n=%d):\n", loc.Projects)
	fmt.Printf("  median share of changes in the top-20%% most-changed tables: %.0f%%\n", 100*loc.MedianTopShare)
	fmt.Printf("  median share of tables that never changed after birth:      %.0f%%\n", 100*loc.MedianUnchangedShare)
	return nil
}
