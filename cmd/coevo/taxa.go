package main

import (
	"context"
	"fmt"
	"os"

	"coevo/internal/report"
	"coevo/internal/study"
	"coevo/internal/taxa"
)

// runTaxa breaks the corpus down per taxon: the measured distribution,
// per-taxon synchronicity histograms (the "within the different taxa" view
// of RQ1) and the change-locality summary.
func runTaxa(ctx context.Context, args []string) error {
	fs := newFlagSet("taxa")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	theta := fs.Float64("theta", 0.10, "synchronicity acceptance band")
	dialect := dialectFlag(fs)
	buildPipeline := pipelineFlags(fs)
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	dial, err := resolveDialect(*dialect)
	if err != nil {
		return err
	}
	p, err := buildPipeline()
	if err != nil {
		return err
	}

	opts := study.DefaultOptions()
	opts.Exec = p.exec
	opts.Cache = p.cache
	opts.Obs = p.obs
	opts.History.Dialect = dial
	d, err := study.Run(ctx, *seed, opts)
	p.recordDataset(d)
	ferr := p.finish(ctx, err)
	if err != nil {
		reportInterrupted(d, err)
		return err
	}
	if ferr != nil {
		return ferr
	}
	if err := reportFailures(d); err != nil {
		return err
	}

	groups := d.ByTaxon()
	perTaxon := d.SynchronicityHistogramByTaxon(*theta, 5)
	for _, taxon := range taxa.All() {
		h := perTaxon[taxon]
		chart := &report.BarChart{
			Title:  fmt.Sprintf("%s (%d projects) — %.0f%%-synchronicity", taxon, len(groups[taxon]), *theta*100),
			Labels: h.Labels,
		}
		for _, c := range h.Buckets {
			chart.Values = append(chart.Values, float64(c))
		}
		if err := chart.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	loc := d.ChangeLocality(5)
	fmt.Printf("change locality (projects with >= 5 tables, n=%d):\n", loc.Projects)
	fmt.Printf("  median share of changes in the top-20%% most-changed tables: %.0f%%\n", 100*loc.MedianTopShare)
	fmt.Printf("  median share of tables that never changed after birth:      %.0f%%\n", 100*loc.MedianUnchangedShare)
	return nil
}
