package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"coevo/internal/corpus"
	"coevo/internal/report"
	"coevo/internal/study"
)

// runAnalyze deep-dives one project of the corpus: the Section 3.3
// case-study view with the joint progress diagram and the full measure
// suite.
func runAnalyze(ctx context.Context, args []string) error {
	fs := newFlagSet("analyze")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	which := fs.String("project", "0", "project index (0-194) or name substring")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}

	projects, err := corpus.GenerateContext(ctx, corpus.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	target, err := pickProject(projects, *which)
	if err != nil {
		return err
	}
	res, err := study.AnalyzeRepositoryContext(ctx, target.Repo, target.DDLPath, study.DefaultOptions())
	if err != nil {
		return err
	}
	return printCaseStudy(os.Stdout, res)
}

func pickProject(projects []*corpus.Project, which string) (*corpus.Project, error) {
	if idx, err := strconv.Atoi(which); err == nil {
		if idx < 0 || idx >= len(projects) {
			return nil, fmt.Errorf("project index %d out of range [0, %d)", idx, len(projects))
		}
		return projects[idx], nil
	}
	for _, p := range projects {
		if strings.Contains(p.Name, which) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("no project matches %q", which)
}

// printCaseStudy delegates to the shared report.CaseStudy renderer, the
// same path ingest jobs use for their fetchable result.
func printCaseStudy(w *os.File, res *study.ProjectResult) error {
	return report.CaseStudy(w, res)
}
