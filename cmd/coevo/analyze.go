package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"coevo/internal/corpus"
	"coevo/internal/report"
	"coevo/internal/study"
)

// runAnalyze deep-dives one project of the corpus: the Section 3.3
// case-study view with the joint progress diagram and the full measure
// suite.
func runAnalyze(ctx context.Context, args []string) error {
	fs := newFlagSet("analyze")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	which := fs.String("project", "0", "project index (0-194) or name substring")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}

	projects, err := corpus.GenerateContext(ctx, corpus.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	target, err := pickProject(projects, *which)
	if err != nil {
		return err
	}
	res, err := study.AnalyzeRepositoryContext(ctx, target.Repo, target.DDLPath, study.DefaultOptions())
	if err != nil {
		return err
	}
	return printCaseStudy(os.Stdout, res)
}

func pickProject(projects []*corpus.Project, which string) (*corpus.Project, error) {
	if idx, err := strconv.Atoi(which); err == nil {
		if idx < 0 || idx >= len(projects) {
			return nil, fmt.Errorf("project index %d out of range [0, %d)", idx, len(projects))
		}
		return projects[idx], nil
	}
	for _, p := range projects {
		if strings.Contains(p.Name, which) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("no project matches %q", which)
}

func printCaseStudy(w *os.File, res *study.ProjectResult) error {
	m := res.Measures
	fmt.Fprintf(w, "project   %s (ddl: %s)\n", res.Name, res.DDLPath)
	fmt.Fprintf(w, "taxon     %s\n", res.Taxon)
	fmt.Fprintf(w, "duration  %d months\n", res.DurationMonths)
	fmt.Fprintf(w, "commits   %d total, %d touching the schema (%d active)\n",
		res.ProjectCommits, res.SchemaCommits, res.ActiveSchemaCommits)
	fmt.Fprintf(w, "activity  %d file updates, %d schema change units\n\n",
		res.FileUpdates, res.TotalSchemaActivity)

	fig := report.JointProgressFigure{Title: "joint cumulative fractional progress", Progress: res.Joint}
	if err := report.Render(w, fig, report.Text); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nmeasures:\n")
	fmt.Fprintf(w, "  5%%-synchronicity   %.2f\n", m.Sync5)
	fmt.Fprintf(w, "  10%%-synchronicity  %.2f\n", m.Sync10)
	if m.AdvanceDefined {
		fmt.Fprintf(w, "  advance over time    %.2f  (always: %v)\n", m.AdvanceTime, m.AlwaysAheadOfTime)
		fmt.Fprintf(w, "  advance over source  %.2f  (always: %v)\n", m.AdvanceSource, m.AlwaysAheadOfSource)
	} else {
		fmt.Fprintf(w, "  advance measures undefined (single-month project)\n")
	}
	fmt.Fprintf(w, "  attainment: 50%% @ %.2f of life, 75%% @ %.2f, 80%% @ %.2f, 100%% @ %.2f\n",
		m.Attain50, m.Attain75, m.Attain80, m.Attain100)
	if v, month, err := res.Joint.MaxDivergence(); err == nil {
		fmt.Fprintf(w, "  max divergence %.2f at month %d of %d\n", v, month, res.DurationMonths)
	}
	return nil
}
