package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"coevo/internal/cache"
	"coevo/internal/jobs"
	"coevo/internal/obs"
	"coevo/internal/runlog"
)

// runServe runs the analysis service: the observability server (metrics
// registry seeded with process and run-ledger gauges, pprof handlers,
// the ledger browser at /runs) plus the durable multi-tenant job queue
// at /jobs. Submitted studies execute on the streaming pipeline, share
// one content-addressed cache across jobs and tenants, seal into the
// run ledger, and — because the queue directory is durable — survive a
// server crash: interrupted jobs re-queue on the next start. This is
// the long-lived deployment shape.
//
// Every request is observed request-scoped: a W3C traceparent is
// accepted or minted per request and its trace id threads through the
// job record, SSE events, access log, run manifest and (with -trace)
// the exported span timeline; per-route/per-tenant RED metrics and the
// /status summary serve dashboards; the flight recorder keeps the
// recent-event black box that failed jobs dump for postmortems.
func runServe(ctx context.Context, args []string) error {
	fs := newFlagSet("serve")
	listen := fs.String("listen", "127.0.0.1:8080", "serve telemetry on this address (:0 picks a free port)")
	runlogDir := fs.String("runlog-dir", "runs", "run-ledger directory served at /runs; job runs seal into it")
	logLevel := fs.String("log-level", "info", "log level on stderr (debug, info, warn, error)")
	jobsDir := fs.String("jobs-dir", "jobs", "durable job-queue directory (interrupted jobs re-queue from it on restart)")
	jobsWorkers := fs.Int("jobs-workers", 2, "jobs executing concurrently")
	workers := fs.Int("workers", 0, "analysis workers inside each job (0 = GOMAXPROCS)")
	tenantRunning := fs.Int("tenant-running", 1, "per-tenant concurrently running job limit")
	tenantQuota := fs.Int("tenant-quota", 8, "per-tenant live (queued + running) job quota; submissions beyond it get 429")
	cacheDir := fs.String("cache-dir", "", "content-addressed cache directory shared by every job (empty: in-memory only)")
	tracePath := fs.String("trace", "", "record spans and write the Chrome trace-event JSON here on shutdown")
	flightEvents := fs.Int("flight-events", obs.DefaultFlightEvents,
		"flight-recorder ring size (recent events kept for failure dumps; 0 disables)")
	tenantLabels := fs.Int("tenant-labels", obs.DefaultTenantLabelCap,
		"distinct tenant label values admitted in metrics before collapsing to \"other\"")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	o := obs.New(obs.Options{Logger: logger, Trace: *tracePath != "", FlightEvents: *flightEvents})
	reg := o.Metrics()
	// The standalone server wants the same process gauges a study run
	// registers: heap, GC and goroutine visibility for a long-lived service.
	obs.RegisterProcMetrics(reg)
	runlog.RegisterMetrics(reg, *runlogDir)

	// One guard bounds the tenant label across every per-tenant series —
	// HTTP RED, queue wait, execution time — so a hostile client can mint
	// at most the cap, once, service-wide.
	guard := obs.NewLabelGuard(*tenantLabels)
	red := obs.NewRED(reg, guard)

	// One cache serves every job: the cross-job, cross-tenant dedup plane.
	var c *cache.Cache
	if *cacheDir != "" {
		c, err = cache.New(cache.Options{Dir: *cacheDir, Obs: o})
		if err != nil {
			return err
		}
	} else {
		c = cache.NewMemory()
		c.RegisterMetrics(reg)
	}

	exec := &jobs.Executor{Cache: c, Obs: o, Workers: *workers, LedgerDir: *runlogDir}
	queue, err := jobs.Open(jobs.QueueOptions{
		Dir:              *jobsDir,
		Exec:             exec.Run,
		Workers:          *jobsWorkers,
		TenantMaxRunning: *tenantRunning,
		TenantMaxQueued:  *tenantQuota,
		Obs:              o,
		TenantGuard:      guard,
	})
	if err != nil {
		return err
	}
	queue.RegisterMetrics(reg)

	ledger := runlog.Handler(*runlogDir)
	jobAPI := jobs.Handler(queue)
	status := jobs.NewStatusHandler(jobs.StatusOptions{
		Queue: queue, Cache: c, RED: red, Flight: o.Flight(), Start: time.Now(),
	})
	srv, err := obs.Serve(obs.ServeOptions{
		Addr:     *listen,
		Registry: reg,
		Logger:   logger,
		Handlers: map[string]http.Handler{
			"/runs": ledger, "/runs/": ledger,
			"/jobs": jobAPI, "/jobs/": jobAPI,
			"/status": status,
		},
		Tenant: jobs.TenantFromRequest,
		RED:    red,
		Flight: o.Flight(),
	})
	if err != nil {
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		queue.Close(cctx) //nolint:errcheck // already failing; queue state is durable
		return err
	}
	// The service is ready as soon as it listens: jobs arrive over HTTP.
	srv.SetReady(true)
	fmt.Printf("serving analysis jobs and telemetry at %s (jobs %s, ledger %s); ctrl-c to stop\n",
		srv.URL(), queue.Dir(), *runlogDir)
	<-ctx.Done()
	// Drain first — /readyz flips to 503 the moment shutdown begins, so
	// load balancers stop routing while the listener still answers — then
	// stop the queue (interrupted jobs stay durable and re-queue on the
	// next start), then the HTTP server.
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	qerr := queue.Close(sctx)
	serr := srv.Shutdown(sctx)
	if *tracePath != "" {
		if terr := writeFile(*tracePath, func(w io.Writer) error { return o.WriteTrace(w) }); terr != nil {
			logger.Warn("serve: trace not written", "path", *tracePath, "err", terr)
		} else {
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *tracePath)
		}
	}
	if qerr != nil {
		return qerr
	}
	return serr
}
