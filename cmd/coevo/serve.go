package main

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"coevo/internal/obs"
	"coevo/internal/runlog"
)

// runServe runs the observability server standalone: no study attached,
// just the metrics registry (seeded with run-ledger freshness gauges),
// the pprof handlers and the ledger browser at /runs. This is the
// long-lived deployment shape — scrape it with Prometheus, browse past
// runs, pull profiles — while study runs elsewhere record into the same
// -runlog-dir.
func runServe(ctx context.Context, args []string) error {
	fs := newFlagSet("serve")
	listen := fs.String("listen", "127.0.0.1:8080", "serve telemetry on this address (:0 picks a free port)")
	runlogDir := fs.String("runlog-dir", "runs", "run-ledger directory served at /runs")
	logLevel := fs.String("log-level", "info", "log level on stderr (debug, info, warn, error)")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	reg := obs.NewRegistry()
	runlog.RegisterMetrics(reg, *runlogDir)
	ledger := runlog.Handler(*runlogDir)
	srv, err := obs.Serve(obs.ServeOptions{
		Addr:     *listen,
		Registry: reg,
		Logger:   logger,
		Handlers: map[string]http.Handler{"/runs": ledger, "/runs/": ledger},
	})
	if err != nil {
		return err
	}
	// A standalone server has no corpus to load: it is ready as soon as it
	// listens.
	srv.SetReady(true)
	fmt.Printf("serving telemetry at %s (ledger %s); ctrl-c to stop\n", srv.URL(), *runlogDir)
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}
