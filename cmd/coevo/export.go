package main

import (
	"fmt"
	"io"
	"os"

	"coevo/internal/corpus"
	"coevo/internal/dataset"
	"coevo/internal/history"
	"coevo/internal/taxa"
)

// runExport writes the per-history aggregate statistics (the reproduction's
// analogue of the published Schema_Evo data set files) as JSON.
func runExport(args []string) error {
	fs := newFlagSet("export")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	out := fs.String("out", "", "output file (default: stdout)")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}

	projects, err := corpus.Generate(corpus.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	records := make([]*dataset.HistoryStats, 0, len(projects))
	for _, p := range projects {
		st, err := dataset.CollectRepository(p.Repo, p.DDLPath, history.DefaultOptions(), taxa.DefaultConfig())
		if err != nil {
			return err
		}
		records = append(records, st)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteJSON(w, records); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(records), *out)
	}
	return nil
}
