package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"coevo/internal/jobs"
)

// runJobs is the client side of the job service: submit work to a
// running `coevo serve`, watch it, fetch its rendered result.
func runJobs(ctx context.Context, args []string) error {
	fs := newFlagSet("jobs")
	server := fs.String("server", "http://127.0.0.1:8080", "base URL of the coevo serve instance")
	tenant := fs.String("tenant", "", "tenant identity sent as X-Coevo-Tenant (default: the server's \"anonymous\")")
	jsonOut := fs.Bool("json", false, "print raw JSON documents instead of the human summary")
	seed := fs.Int64("seed", 2023, "study submission: corpus generation seed")
	perTaxon := fs.Int("per-taxon", 0, "study submission: per-taxon project count override (0 = the paper's corpus)")
	csv := fs.Bool("csv", false, "study submission: include the per-project CSV data set in the result")
	dialect := dialectFlag(fs)
	specPath := fs.String("spec", "", "submit this spec file (JSON) instead of building a study spec from flags")
	wait := fs.Bool("wait", false, "after submitting, block until the job reaches a terminal state")
	outDir := fs.String("out", "", "result: write each section to a file in this directory instead of stdout")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: coevo jobs [flags] <operation>

operations:
  submit               submit a job (a study built from -seed/-per-taxon/-csv,
                       or the spec file named by -spec)
  status <id>          print one job's status
  result <id>          fetch a finished job's rendered sections
  cancel <id>          request cancellation
  wait <id>            block until the job reaches a terminal state
  flight <id>          fetch a failed job's flight-recorder dump
  list                 list jobs (all tenants; -tenant filters)

flags:
`)
		fs.PrintDefaults()
	}
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	cl := &jobClient{base: strings.TrimRight(*server, "/"), tenant: *tenant}
	op, id := fs.Arg(0), fs.Arg(1)
	needID := func() error {
		if id == "" {
			return fmt.Errorf("jobs: %s needs a job id", op)
		}
		return nil
	}
	switch op {
	case "submit":
		spec, err := buildSpec(*specPath, *seed, *perTaxon, *csv, *dialect)
		if err != nil {
			return err
		}
		j, err := cl.submit(ctx, spec)
		if err != nil {
			return err
		}
		if !*wait {
			return printJob(j, *jsonOut)
		}
		if j, err = cl.wait(ctx, j.ID); err != nil {
			return err
		}
		return printJob(j, *jsonOut)
	case "status":
		if err := needID(); err != nil {
			return err
		}
		j, err := cl.job(ctx, id)
		if err != nil {
			return err
		}
		return printJob(j, *jsonOut)
	case "result":
		if err := needID(); err != nil {
			return err
		}
		var res jobs.Result
		if err := cl.get(ctx, "/jobs/"+id+"/result", &res); err != nil {
			return err
		}
		return printResult(&res, *outDir, *jsonOut)
	case "cancel":
		if err := needID(); err != nil {
			return err
		}
		var j jobs.Job
		if err := cl.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, &j); err != nil {
			return err
		}
		return printJob(&j, *jsonOut)
	case "wait":
		if err := needID(); err != nil {
			return err
		}
		j, err := cl.wait(ctx, id)
		if err != nil {
			return err
		}
		return printJob(j, *jsonOut)
	case "flight":
		if err := needID(); err != nil {
			return err
		}
		var d jobs.FlightDump
		if err := cl.get(ctx, "/jobs/"+id+"/flight", &d); err != nil {
			return err
		}
		return printFlight(&d, *jsonOut)
	case "list":
		path := "/jobs"
		if *tenant != "" {
			path += "?tenant=" + *tenant
		}
		var list []*jobs.Job
		if err := cl.get(ctx, path, &list); err != nil {
			return err
		}
		return printJobList(list, *jsonOut)
	case "":
		fs.Usage()
		return fmt.Errorf("jobs: missing operation (submit, status, result, cancel, wait, flight or list)")
	default:
		return fmt.Errorf("jobs: unknown operation %q (want submit, status, result, cancel, wait, flight or list)", op)
	}
}

// buildSpec assembles the submission: a spec file (with -dialect as an
// override of the payload's dialect), or a study spec from the flags.
func buildSpec(specPath string, seed int64, perTaxon int, csv bool, dialect string) (*jobs.Spec, error) {
	if _, err := resolveDialect(dialect); err != nil {
		return nil, err
	}
	if specPath != "" {
		raw, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		var spec jobs.Spec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return nil, fmt.Errorf("jobs: %s: %w", specPath, err)
		}
		if dialect != "" {
			switch {
			case spec.Study != nil:
				spec.Study.Dialect = dialect
			case spec.Ingest != nil:
				spec.Ingest.Dialect = dialect
			}
		}
		return &spec, nil
	}
	return &jobs.Spec{
		Kind:  jobs.KindStudy,
		Study: &jobs.StudySpec{Seed: seed, PerTaxon: perTaxon, CSV: csv, Dialect: dialect},
	}, nil
}

// jobClient talks to the /jobs API.
type jobClient struct {
	base   string
	tenant string
}

// do issues one request and decodes the JSON response into out. A
// non-2xx response becomes an error carrying the server's message.
func (c *jobClient) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set("X-Coevo-Tenant", c.tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("jobs: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *jobClient) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

func (c *jobClient) job(ctx context.Context, id string) (*jobs.Job, error) {
	var j jobs.Job
	if err := c.get(ctx, "/jobs/"+id, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

func (c *jobClient) submit(ctx context.Context, spec *jobs.Spec) (*jobs.Job, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var j jobs.Job
	if err := c.do(ctx, http.MethodPost, "/jobs", bytes.NewReader(raw), &j); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "submitted %s (%s)\n", j.ID, j.Spec.Label())
	return &j, nil
}

// wait polls the job until it reaches a terminal state.
func (c *jobClient) wait(ctx context.Context, id string) (*jobs.Job, error) {
	for {
		j, err := c.job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(300 * time.Millisecond):
		}
	}
}

// printJob renders one status document.
func printJob(j *jobs.Job, jsonOut bool) error {
	if jsonOut {
		return writeIndentedJSON(os.Stdout, j)
	}
	fmt.Printf("job       %s\n", j.ID)
	fmt.Printf("tenant    %s\n", j.Tenant)
	fmt.Printf("spec      %s (fingerprint %.12s)\n", j.Spec.Label(), j.Fingerprint)
	fmt.Printf("state     %s\n", j.State)
	if j.Total > 0 {
		fmt.Printf("progress  %d/%d projects\n", j.Done, j.Total)
	}
	if j.CacheHit {
		fmt.Printf("dedup     served from the shared result cache\n")
	}
	if j.RunID != "" {
		fmt.Printf("run       %s (coevo runs show %s)\n", j.RunID, j.RunID)
	}
	if j.Error != "" {
		fmt.Printf("error     %s\n", j.Error)
	}
	return nil
}

// printFlight renders a failed job's black-box dump: the job's final
// diagnostics, then the correlated event slice in sequence order.
func printFlight(d *jobs.FlightDump, jsonOut bool) error {
	if jsonOut {
		return writeIndentedJSON(os.Stdout, d)
	}
	fmt.Printf("flight    %s\n", d.JobID)
	if d.TraceID != "" {
		fmt.Printf("trace     %s\n", d.TraceID)
	}
	fmt.Printf("dumped    %s\n", d.DumpedAt.Format(time.RFC3339))
	if j := d.Job; j != nil {
		fmt.Printf("state     %s\n", j.State)
		if j.Error != "" {
			fmt.Printf("error     %s\n", j.Error)
		}
	}
	fmt.Printf("events    %d correlated\n", len(d.Events))
	for _, e := range d.Events {
		detail := e.Detail
		if i := strings.IndexByte(detail, '\n'); i >= 0 {
			detail = detail[:i] + " ..."
		}
		fmt.Printf("  %6d %s %s/%s %s %s\n",
			e.Seq, e.When.Format("15:04:05.000"), e.Source, e.Kind, e.Name, detail)
	}
	return nil
}

// printJobList renders the listing.
func printJobList(list []*jobs.Job, jsonOut bool) error {
	if jsonOut {
		return writeIndentedJSON(os.Stdout, list)
	}
	if len(list) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-28s %-12s %-10s %-8s %s\n", "ID", "TENANT", "STATE", "KIND", "SUBMITTED")
	for _, j := range list {
		fmt.Printf("%-28s %-12s %-10s %-8s %s\n",
			j.ID, j.Tenant, j.State, j.Spec.Kind, j.Submitted.Format(time.RFC3339))
	}
	return nil
}

// printResult writes the fetched sections: into outDir as one file per
// section, or to stdout (text sections only, SVG and CSV skipped).
func printResult(res *jobs.Result, outDir string, jsonOut bool) error {
	if jsonOut {
		return writeIndentedJSON(os.Stdout, res)
	}
	if outDir != "" {
		names := sectionNames(res)
		for _, name := range names {
			path := filepath.Join(outDir, name)
			if err := writeFile(path, func(w io.Writer) error {
				_, err := io.WriteString(w, res.Sections[name])
				return err
			}); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d sections of %s to %s\n", len(names), res.JobID, outDir)
		return nil
	}
	for _, name := range sectionNames(res) {
		if strings.HasSuffix(name, ".svg") || strings.HasSuffix(name, ".csv") {
			continue
		}
		fmt.Print(res.Sections[name])
		fmt.Println()
	}
	return nil
}

// sectionNames lists a result's sections deterministically.
func sectionNames(res *jobs.Result) []string {
	names := make([]string, 0, len(res.Sections))
	for name := range res.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// writeIndentedJSON renders v as indented JSON — the -json output shape
// shared by `jobs status|list|result` and `runs list`.
func writeIndentedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
