package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"coevo/internal/cache"
	"coevo/internal/obs"
	"coevo/internal/report"
	"coevo/internal/runlog"
	"coevo/internal/shard"
)

// runShard dispatches the shard worker subcommands. Today that is only
// `shard serve` — the long-lived (or spawned-per-study) worker process a
// sharded study fans out to.
func runShard(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: coevo shard serve [flags]")
	}
	switch args[0] {
	case "serve":
		return runShardServe(ctx, args[1:])
	default:
		return fmt.Errorf("unknown shard subcommand %q (want serve)", args[0])
	}
}

// runShardServe runs one shard worker: an obs.Serve server whose
// /shard/run route executes study partitions. The first stdout line is
// the worker's base URL — the contract shard.SpawnWorkers scrapes — and
// everything else goes to stderr.
func runShardServe(ctx context.Context, args []string) error {
	fs := newFlagSet("shard serve")
	listen := fs.String("listen", "127.0.0.1:0", "serve the worker protocol and telemetry on this address (:0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent analysis workers per run (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "worker-local content-addressed cache directory (empty: in-memory only)")
	runlogDir := fs.String("runlog-dir", "", "seal one shard manifest per run into this ledger directory")
	logLevel := fs.String("log-level", "", "structured logs on stderr at this level (debug, info, warn, error)")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	oopts := obs.Options{}
	if *logLevel != "" {
		level, err := parseLogLevel(*logLevel)
		if err != nil {
			return err
		}
		oopts.LogWriter = os.Stderr
		oopts.LogLevel = level
	}
	o := obs.New(oopts)
	reg := o.Metrics()
	obs.RegisterProcMetrics(reg)

	var c *cache.Cache
	var err error
	if *cacheDir != "" {
		c, err = cache.New(cache.Options{Dir: *cacheDir, Obs: o})
		if err != nil {
			return err
		}
	} else {
		c = cache.NewMemory()
		c.RegisterMetrics(reg)
	}

	worker := &shard.Worker{Cache: c, Obs: o, Workers: *workers, LedgerDir: *runlogDir}
	handlers := map[string]http.Handler{"/shard/run": worker.Handler()}
	if *runlogDir != "" {
		h := runlog.Handler(*runlogDir)
		handlers["/runs"] = h
		handlers["/runs/"] = h
	}
	srv, err := obs.Serve(obs.ServeOptions{
		Addr:     *listen,
		Registry: reg,
		Logger:   o.Logger(),
		Handlers: handlers,
	})
	if err != nil {
		return err
	}
	srv.SetReady(true)
	// The base URL is the worker's one-line stdout banner; the spawner
	// (and scripts) scrape it verbatim.
	fmt.Println(srv.URL())
	fmt.Fprintf(os.Stderr, "shard worker serving at %s (%s); ctrl-c to stop\n",
		srv.URL(), workersLabel(*workers))
	<-ctx.Done()
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}

// runStudySharded coordinates a scaled-out study: spawn (or address)
// one worker per shard, serve this run's cache to them as a remote
// tier, fan the partition requests out, fold the partial figures in
// shard order and render the combined artifacts — byte-identical to the
// single-process run.
func runStudySharded(ctx context.Context, p *pipeline, seed int64, perTaxon int, dialect string, shards int, addrsFlag, csvPath, outDir string) error {
	// One trace spans the coordinator and every worker: each shard
	// request carries a child traceparent, so shard manifests and access
	// logs all join this id.
	tc, ok := obs.TraceContextFrom(ctx)
	if !ok || !tc.Valid() {
		tc = obs.NewTraceContext()
		ctx = obs.WithTraceContext(ctx, tc)
	}

	var addrs []string
	if addrsFlag != "" {
		for _, a := range strings.Split(addrsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) != shards {
			return fmt.Errorf("-shards %d but %d worker addresses", shards, len(addrs))
		}
	} else {
		extra := []string{"-workers", fmt.Sprint(p.exec.Workers)}
		if p.ledger != "" {
			extra = append(extra, "-runlog-dir", p.ledger)
		}
		spawned, stop, err := shard.SpawnWorkers(ctx, shards, extra, os.Stderr)
		if err != nil {
			return err
		}
		defer stop()
		addrs = spawned
	}

	// Serve this run's cache to the workers as their remote tier. The
	// telemetry server (when listening) already mounts /cache; otherwise
	// a loopback-only tier server exists for the run's duration.
	var cacheURL string
	if p.cache != nil {
		if p.server != nil {
			cacheURL = p.server.URL() + "/cache"
		} else {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			tierSrv := &http.Server{Handler: cache.TierHandler(p.cache)}
			go tierSrv.Serve(ln) //nolint:errcheck // closed on return
			defer tierSrv.Close()
			cacheURL = "http://" + ln.Addr().String() + "/cache"
		}
	}

	req := shard.RunRequest{
		Seed: seed, PerTaxon: perTaxon, Dialect: dialect,
		Of: shards, CSV: csvPath != "", CacheURL: cacheURL,
	}
	rctx, span := p.obs.StartSpan(ctx, "run")
	span.SetArg("shards", fmt.Sprint(shards))
	res, err := shard.Run(rctx, addrs, req)
	span.End()
	p.recordSharded(res, shards)
	ferr := p.finish(ctx, err)
	if err != nil {
		return err
	}
	if ferr != nil {
		return ferr
	}
	if err := reportFailureList(res.Projects, res.Failures); err != nil {
		return err
	}
	fmt.Printf("analyzed %d projects across %d shards\n\n", res.Projects, shards)

	if err := renderStudySections(report.FiguresArtifacts(res.Figures, seed), outDir); err != nil {
		return err
	}
	if csvPath != "" {
		if err := writeFile(csvPath, res.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("wrote data set to %s\n", csvPath)
	}
	return nil
}
