package main

import (
	"fmt"
	"io"
	"os"

	"coevo/internal/schema"
	"coevo/internal/sqlddl"
)

// runParse is the parser's debug surface: run one DDL file (or stdin)
// through the recovering parser and print the resolved dialect, the
// statement-level stats, every surviving statement and every categorized
// diagnostic — the same report shape the dialect fixture goldens store.
// The command fails when nothing parsed or a diagnostic escaped the code
// taxonomy, so scripts (see scripts/parse-health-smoke.sh) can gate on
// its exit code; -strict fails on any diagnostic at all.
func runParse(args []string) error {
	fs := newFlagSet("parse")
	dialect := dialectFlag(fs)
	strict := fs.Bool("strict", false, "exit nonzero when the parse produced any diagnostic")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: coevo parse [flags] [file.sql]

Parse a DDL file (stdin when no file or "-" is given) with the
recovering parser and print the parse-health report: dialect, statement
stats, each statement and each diagnostic with line:col, code and
category. Exits nonzero if no statements parsed or a diagnostic is
uncategorized.

flags:
`)
		fs.PrintDefaults()
	}
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	d, err := resolveDialect(*dialect)
	if err != nil {
		return err
	}
	src, label, err := readParseInput(fs.Arg(0))
	if err != nil {
		return err
	}

	script, diags := sqlddl.ParseWithDiagnostics(src, d)
	sch, semDiags := schema.BuildDialect(script)
	diags = append(diags, semDiags...)

	fmt.Printf("source: %s\n", label)
	fmt.Printf("dialect: %s\n", script.Dialect)
	st := script.Stats
	fmt.Printf("stats: attempted=%d parsed=%d recovered=%d dropped=%d\n",
		st.Attempted, st.Parsed, st.Recovered, st.Dropped)
	for _, stmt := range script.Statements {
		fmt.Printf("stmt: line=%d %s\n", stmt.StartLine(), describeStatement(stmt))
	}
	for _, diag := range diags {
		fmt.Printf("diag: %s\n", diag)
	}
	fmt.Printf("schema: %d tables, %d attributes\n", sch.TableCount(), sch.AttributeCount())

	uncategorized := 0
	for _, diag := range diags {
		if diag.Category == "" || sqlddl.CategoryOf(diag.Code) == "" {
			uncategorized++
		}
	}
	switch {
	case len(script.Statements) == 0:
		return fmt.Errorf("parse: no statements survived (%d attempted, %d diagnostics)", st.Attempted, len(diags))
	case uncategorized > 0:
		return fmt.Errorf("parse: %d diagnostic(s) outside the code taxonomy", uncategorized)
	case *strict && len(diags) > 0:
		return fmt.Errorf("parse: -strict and %d diagnostic(s) recorded", len(diags))
	}
	return nil
}

// readParseInput loads the DDL source: a file path, or stdin for ""/"-".
func readParseInput(path string) (src, label string, err error) {
	if path == "" || path == "-" {
		raw, err := io.ReadAll(os.Stdin)
		return string(raw), "stdin", err
	}
	raw, err := os.ReadFile(path)
	return string(raw), path, err
}

// describeStatement names a parsed statement for the report.
func describeStatement(stmt sqlddl.Statement) string {
	switch s := stmt.(type) {
	case *sqlddl.CreateTable:
		return "CREATE TABLE " + s.Name.String()
	case *sqlddl.AlterTable:
		return "ALTER TABLE " + s.Name.String()
	case *sqlddl.DropTable:
		return "DROP TABLE"
	case *sqlddl.RenameTable:
		return "RENAME TABLE"
	case *sqlddl.SkippedStatement:
		if s.Keyword == "" {
			return "skipped"
		}
		return "skipped " + s.Keyword
	default:
		return fmt.Sprintf("%T", stmt)
	}
}
