package main

import (
	"fmt"
	"os"

	"coevo/internal/corpus"
	"coevo/internal/history"
	"coevo/internal/smo"
)

// runSMO derives the Schema Modification Operation sequence between two
// versions of a corpus project's DDL file and prints it both as algebra
// and as an executable migration script.
func runSMO(args []string) error {
	fs := newFlagSet("smo")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	project := fs.String("project", "0", "project index or name substring")
	from := fs.Int("from", 0, "older version index")
	to := fs.Int("to", -1, "newer version index (default: last)")
	invert := fs.Bool("invert", false, "also print the inverse (rollback) sequence")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}

	projects, err := corpus.Generate(corpus.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	p, err := pickProject(projects, *project)
	if err != nil {
		return err
	}
	sh, err := history.ExtractSchemaHistory(p.Repo, p.DDLPath, history.DefaultOptions())
	if err != nil {
		return err
	}
	if *to < 0 {
		*to = sh.CommitCount() - 1
	}
	if *from < 0 || *from >= sh.CommitCount() || *to < 0 || *to >= sh.CommitCount() {
		return fmt.Errorf("smo: version indices out of range [0, %d)", sh.CommitCount())
	}

	seq := smo.Derive(sh.Versions[*from].Schema, sh.Versions[*to].Schema)
	fmt.Printf("%s: %s, versions %d -> %d (%d ops, %d activity units)\n\n",
		p.Name, p.DDLPath, *from, *to, len(seq), seq.Activity())
	if len(seq) == 0 {
		fmt.Println("(no logical change between the versions)")
		return nil
	}
	fmt.Println("operation sequence:")
	fmt.Println(seq)
	fmt.Println("\nmigration script:")
	fmt.Println(seq.SQL())
	if *invert {
		fmt.Fprintln(os.Stdout, "\nrollback script:")
		fmt.Println(seq.Invert().SQL())
	}
	return nil
}
