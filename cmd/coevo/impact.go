package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"

	"coevo/internal/corpus"
	"coevo/internal/history"
	"coevo/internal/impact"
	"coevo/internal/report"
	"coevo/internal/schemadiff"
)

// runImpact performs the windowed co-change analysis on the corpus: per
// change kind, the average amount of source churn landing around schema
// commits — the automated version of the paper's §3.3 manual inspection.
func runImpact(args []string) error {
	fs := newFlagSet("impact")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	window := fs.Int("window", 2, "co-change window (commits on each side)")
	project := fs.String("project", "", "restrict to one project (index or name substring)")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}

	projects, err := corpus.Generate(corpus.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	if *project != "" {
		p, err := pickProject(projects, *project)
		if err != nil {
			return err
		}
		projects = []*corpus.Project{p}
	}

	perKind := map[schemadiff.ChangeKind]*impact.KindImpact{}
	activeCommits, sameCommit := 0, 0.0
	for _, p := range projects {
		sh, err := history.ExtractSchemaHistory(p.Repo, p.DDLPath, history.DefaultOptions())
		if err != nil {
			return err
		}
		stats, err := impact.CoChange(p.Repo, sh, *window)
		if err != nil {
			return err
		}
		for kind, ki := range stats.PerKind {
			agg := perKind[kind]
			if agg == nil {
				agg = &impact.KindImpact{}
				perKind[kind] = agg
			}
			agg.Changes += ki.Changes
			agg.SourceFileUpdates += ki.SourceFileUpdates
		}
		activeCommits += stats.ActiveSchemaCommits
		sameCommit += stats.SameCommitShare * float64(stats.ActiveSchemaCommits)
	}

	tbl := &report.Table{
		Title: fmt.Sprintf("Co-change around schema commits (%d projects, window ±%d commits)",
			len(projects), *window),
		Header: []string{"Change kind", "Changes", "Source churn", "Avg churn/change"},
	}
	kinds := make([]schemadiff.ChangeKind, 0, len(perKind))
	for kind := range perKind {
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, kind := range kinds {
		ki := perKind[kind]
		tbl.AddRow(kind.String(), strconv.Itoa(ki.Changes), strconv.Itoa(ki.SourceFileUpdates),
			fmt.Sprintf("%.1f", ki.Avg()))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if activeCommits > 0 {
		fmt.Printf("\nactive schema commits: %d; share also touching source in the same revision: %.0f%%\n",
			activeCommits, 100*sameCommit/float64(activeCommits))
	}
	return nil
}
