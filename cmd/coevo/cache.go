package main

import (
	"encoding/json"
	"fmt"
	"os"

	"coevo/internal/cache"
	"coevo/internal/engine"
)

// attachCacheMetrics wires the cache's counters into the metrics
// collector so -metrics reports hit/miss/byte counts alongside the
// latency summary. Either argument may be nil.
func attachCacheMetrics(m *engine.Metrics, c *cache.Cache) {
	if m == nil || c == nil {
		return
	}
	m.SetCacheSource(func() engine.CacheStats { return engine.CacheStats(c.Stats()) })
}

// runCache administers an on-disk cache directory: stats (footprint),
// clear (drop every entry), verify (integrity walk, removing corrupt
// entries).
func runCache(args []string) error {
	fs := newFlagSet("cache")
	dir := fs.String("cache-dir", "", "cache directory to administer (required)")
	jsonOut := fs.Bool("json", false, "print 'cache stats' as a JSON document instead of the one-line summary")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: coevo cache -cache-dir DIR <stats|clear|verify>

  stats   report the store's entry count and payload volume
  clear   drop every entry (the directory itself is kept)
  verify  walk every entry, validate framing and checksums, and remove
          corrupt entries (the pipeline recomputes them on the next run)
`)
		fs.PrintDefaults()
	}
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cache: -cache-dir is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cache: exactly one operation (stats, clear or verify) expected")
	}
	// Administer the disk store only: the memory layer is process-local
	// and always starts empty here.
	c, err := cache.New(cache.Options{Dir: *dir, MemoryBytes: -1})
	if err != nil {
		return err
	}
	switch op := fs.Arg(0); op {
	case "stats":
		rep, err := c.Size()
		if err != nil {
			return err
		}
		if *jsonOut {
			doc := struct {
				Dir     string `json:"dir"`
				Entries int    `json:"entries"`
				Bytes   int64  `json:"bytes"`
			}{Dir: c.Dir(), Entries: rep.Entries, Bytes: rep.Bytes}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		}
		fmt.Printf("cache %s: %d entries, %d payload bytes\n", c.Dir(), rep.Entries, rep.Bytes)
		return nil
	case "clear":
		if err := c.Clear(); err != nil {
			return err
		}
		fmt.Printf("cache %s: cleared\n", c.Dir())
		return nil
	case "verify":
		rep, err := c.Verify()
		if err != nil {
			return err
		}
		fmt.Printf("cache %s: %d intact entries (%d payload bytes), %d corrupt removed, %d foreign files skipped\n",
			c.Dir(), rep.Entries, rep.Bytes, rep.Corrupt, rep.Foreign)
		if rep.Corrupt > 0 {
			fmt.Println("corrupt entries were removed; the next run recomputes them")
		}
		return nil
	default:
		return fmt.Errorf("cache: unknown operation %q (want stats, clear or verify)", op)
	}
}
