package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"coevo/internal/cache"
	"coevo/internal/corpus"
	"coevo/internal/engine"
	"coevo/internal/obs"
	"coevo/internal/runlog"
	"coevo/internal/shard"
	"coevo/internal/study"
)

// benchCase is one timed study run of the benchmark matrix.
type benchCase struct {
	Name string `json:"name"`
	// Mode is "batch" (materialize the corpus, then analyze), "stream"
	// (fused generate→analyze with online aggregation) or "shard"
	// (residue-class partitions folded separately, then merged through
	// the sealed partial-figures codec — the scale-out data path minus
	// the network).
	Mode     string  `json:"mode"`
	Cache    string  `json:"cache"` // "cold" or "warm"
	Workers  int     `json:"workers"`
	Shards   int     `json:"shards,omitempty"`
	Projects int     `json:"projects"`
	Seconds  float64 `json:"seconds"`
	// CacheHits and CacheMisses are the result-cache deltas of this case
	// alone: a cold phase is dominated by misses, a warm phase replays
	// entirely from cache.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// PeakHeapBytes is the sampled live-heap high-water mark of this case
	// (watermark reset after a forced GC at case start) — the number the
	// streaming mode exists to keep flat as the corpus grows.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// AllocsPerProject and AllocBytesPerProject normalize the case's heap
	// allocation count and volume (runtime.MemStats deltas) per analyzed
	// project — the machine-independent signal the allocation-budget work
	// moves and the perf gate watches.
	AllocsPerProject     float64 `json:"allocs_per_project"`
	AllocBytesPerProject float64 `json:"alloc_bytes_per_project"`
}

// benchReport is the JSON document runBench writes. The provenance block
// pins what produced the numbers, so two archived reports are comparable
// (same commit? same machine?) before their timings are.
type benchReport struct {
	Timestamp     string      `json:"timestamp"`
	GoVersion     string      `json:"go_version"`
	ModuleVersion string      `json:"module_version,omitempty"`
	VCSRevision   string      `json:"vcs_revision,omitempty"`
	VCSModified   bool        `json:"vcs_modified,omitempty"`
	NumCPU        int         `json:"num_cpu"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	CPUModel      string      `json:"cpu_model,omitempty"`
	Seed          int64       `json:"seed"`
	Results       []benchCase `json:"results"`
	// Runlog embeds the run's sealed ledger manifest, per-case wall times
	// and allocation metrics included — 'coevo runs import' lifts it into
	// a ledger so scripts/perf-gate.sh can diff a fresh bench run against
	// a committed baseline report with 'coevo runs diff'.
	Runlog *runlog.Manifest `json:"runlog,omitempty"`
}

// runBench times full study runs — cold and warm cache, serial and
// parallel, batch and streaming — and writes a machine-readable JSON
// report, so CI can archive the toolkit's performance envelope alongside
// every build. Each case records its peak sampled heap next to its wall
// time, making the streaming mode's memory bound measurable. With
// -runlog-dir the run also lands in the persistent ledger (each case's
// wall time as a stage), where 'coevo runs diff' flags timing
// regressions between bench runs.
func runBench(ctx context.Context, args []string) error {
	fs := newFlagSet("bench")
	out := fs.String("out", "BENCH_pr7.json", "write the benchmark report JSON to this path")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	perTaxon := fs.Int("per-taxon", 0, "shrink the corpus to N projects per taxon (0 = the full 195-project corpus)")
	workers := fs.Int("workers", 0, "pin the matrix to exactly this worker count (0 = 1 plus NumCPU); the perf gate pins 1 so stage keys match across machines")
	benchShards := fs.Int("shards", 0, "also time the sharded data path partitioned this many ways (0 = skip; the perf gate omits it so the matrix shape — total duration, cache totals — stays comparable to pre-shard baselines)")
	runlogDir := fs.String("runlog-dir", "", "also record the bench run as a manifest in this ledger directory")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	// The manifest doubles as the provenance source for the JSON report,
	// whether or not it ends up in a ledger.
	manifest := runlog.NewManifest("bench", time.Now())
	manifest.Options = map[string]string{}
	fs.Visit(func(f *flag.Flag) { manifest.Options[f.Name] = f.Value.String() })

	profiles := corpus.DefaultProfiles()
	if *perTaxon > 0 {
		for i := range profiles {
			profiles[i].Count = *perTaxon
		}
	}
	proc := &obs.ProcStats{}
	sample := func(e engine.Event) {
		if e.Type == engine.TaskFinished || e.Type == engine.TaskFailed {
			proc.Sample()
		}
	}
	runOnce := func(mode string, workers int, c *cache.Cache) (caseRun, error) {
		cfg := corpus.DefaultConfig(*seed)
		cfg.Profiles = profiles
		cfg.Exec.Workers = workers
		cfg.Exec.OnEvent = sample
		cfg.Cache = c
		opts := study.DefaultOptions()
		opts.Exec.Workers = workers
		opts.Exec.OnEvent = sample
		opts.Cache = c
		// Isolate this case's heap watermark from the previous case's
		// garbage before timing starts.
		runtime.GC()
		proc.Reset()
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		var n int
		if mode == "shard" {
			// The full sharded data path, in process: each residue-class
			// partition streams through its own fused pipeline, and the
			// sealed partials round-trip the codec before merging — what
			// a coordinator pays per shard, minus the network hop.
			combined := study.NewFigures()
			for k := 0; k < *benchShards; k++ {
				w := &shard.Worker{Cache: c, Workers: workers}
				resp, err := w.Run(ctx, &shard.RunRequest{Seed: *seed, PerTaxon: *perTaxon, Shard: k, Of: *benchShards})
				if err != nil {
					return caseRun{}, err
				}
				part, err := study.DecodePartialFigures(resp.Figures)
				if err != nil {
					return caseRun{}, err
				}
				if err := combined.Merge(part); err != nil {
					return caseRun{}, err
				}
				n += resp.Projects
				proc.Sample()
			}
		} else if mode == "stream" {
			sum, err := study.StreamCorpus(ctx, corpus.NewSource(cfg), study.NewFigures(), opts)
			if err != nil {
				return caseRun{}, err
			}
			n = sum.Projects
		} else {
			projects, err := corpus.GenerateContext(ctx, cfg)
			if err != nil {
				return caseRun{}, err
			}
			d, err := study.AnalyzeCorpusContext(ctx, projects, opts)
			if err != nil {
				return caseRun{}, err
			}
			n = d.Size()
		}
		secs := time.Since(start).Seconds()
		proc.Sample()
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		return caseRun{
			projects:   n,
			seconds:    secs,
			peakHeap:   proc.Peak(),
			allocs:     msAfter.Mallocs - msBefore.Mallocs,
			allocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
		}, nil
	}

	workerSettings := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerSettings = append(workerSettings, n)
	}
	if *workers > 0 {
		workerSettings = []int{*workers}
	}
	rep := benchReport{
		Timestamp:     manifest.Start.Format(time.RFC3339),
		GoVersion:     manifest.GoVersion,
		ModuleVersion: manifest.ModuleVersion,
		VCSRevision:   manifest.VCSRevision,
		VCSModified:   manifest.VCSModified,
		NumCPU:        manifest.NumCPU,
		GOMAXPROCS:    manifest.GOMAXPROCS,
		CPUModel:      manifest.CPUModel,
		Seed:          *seed,
	}
	var totalHits, totalMisses int64
	var peakHeap uint64
	for _, workers := range workerSettings {
		modes := []string{"batch", "stream"}
		if *benchShards > 0 {
			modes = append(modes, "shard")
		}
		for _, mode := range modes {
			// One shared in-memory cache per (mode, worker) cell: the first
			// run is the cold measurement, the second replays it warm. The
			// shard cell shares one cache across its in-process workers, as
			// the remote tier does across real ones.
			c := cache.NewMemory()
			prefix := "study"
			switch mode {
			case "stream":
				prefix = "study-stream"
			case "shard":
				prefix = fmt.Sprintf("study-shard%d", *benchShards)
			}
			for _, phase := range []string{"cold", "warm"} {
				before := c.Stats()
				run, err := runOnce(mode, workers, c)
				if err != nil {
					return err
				}
				after := c.Stats()
				bc := benchCase{
					Name: fmt.Sprintf("%s/%s/workers=%d", prefix, phase, workers),
					Mode: mode, Cache: phase, Workers: workers, Projects: run.projects, Seconds: run.seconds,
					CacheHits:     after.Hits - before.Hits,
					CacheMisses:   after.Misses - before.Misses,
					PeakHeapBytes: run.peakHeap,
				}
				if mode == "shard" {
					bc.Shards = *benchShards
				}
				if run.projects > 0 {
					bc.AllocsPerProject = float64(run.allocs) / float64(run.projects)
					bc.AllocBytesPerProject = float64(run.allocBytes) / float64(run.projects)
				}
				rep.Results = append(rep.Results, bc)
				totalHits += bc.CacheHits
				totalMisses += bc.CacheMisses
				if run.peakHeap > peakHeap {
					peakHeap = run.peakHeap
				}
				manifest.Projects = run.projects
				manifest.StageSeconds = appendStage(manifest.StageSeconds, bc.Name, run.seconds)
				// Per-case metrics ride in the manifest so 'coevo runs diff'
				// (and the perf gate built on it) watches allocation budgets
				// and heap ceilings, not just wall time.
				manifest.Metrics = appendStage(manifest.Metrics, "bench/"+bc.Name+"/allocs_per_project", bc.AllocsPerProject)
				manifest.Metrics = appendStage(manifest.Metrics, "bench/"+bc.Name+"/alloc_bytes_per_project", bc.AllocBytesPerProject)
				manifest.Metrics = appendStage(manifest.Metrics, "bench/"+bc.Name+"/heap_peak_bytes", float64(bc.PeakHeapBytes))
				fmt.Fprintf(os.Stderr, "bench %-34s %8.3fs  (%d projects, %d cache hits / %d misses, peak heap %.1f MiB, %.0f allocs/project)\n",
					bc.Name, bc.Seconds, bc.Projects, bc.CacheHits, bc.CacheMisses, float64(bc.PeakHeapBytes)/(1<<20), bc.AllocsPerProject)
			}
		}
	}

	// Seal the manifest before writing the report: the report embeds it, so
	// a committed BENCH_*.json is a complete, importable baseline for the
	// perf gate even when no -runlog-dir was given at record time.
	if total := totalHits + totalMisses; total > 0 {
		manifest.Cache = &runlog.CacheStats{
			Hits: totalHits, Misses: totalMisses,
			HitRate: float64(totalHits) / float64(total),
		}
	}
	manifest.PeakHeapBytes = peakHeap
	manifest.Finish(time.Now(), nil)
	rep.Runlog = manifest

	if err := writeFile(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		return err
	}
	fmt.Printf("wrote benchmark report to %s\n", *out)

	if *runlogDir != "" {
		path, err := runlog.Write(*runlogDir, manifest)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "recorded bench run %s in %s\n", manifest.ID, path)
	}
	return nil
}

// caseRun is one timed measurement of a bench matrix cell.
type caseRun struct {
	projects   int
	seconds    float64
	peakHeap   uint64
	allocs     uint64
	allocBytes uint64
}

// appendStage inserts into a possibly-nil stage map.
func appendStage(m map[string]float64, name string, secs float64) map[string]float64 {
	if m == nil {
		m = map[string]float64{}
	}
	m[name] = secs
	return m
}
