package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"coevo/internal/cache"
	"coevo/internal/corpus"
	"coevo/internal/study"
)

// benchCase is one timed study run of the benchmark matrix.
type benchCase struct {
	Name     string  `json:"name"`
	Cache    string  `json:"cache"` // "cold" or "warm"
	Workers  int     `json:"workers"`
	Projects int     `json:"projects"`
	Seconds  float64 `json:"seconds"`
}

// benchReport is the JSON document runBench writes.
type benchReport struct {
	Timestamp string      `json:"timestamp"`
	GoVersion string      `json:"go_version"`
	NumCPU    int         `json:"num_cpu"`
	Seed      int64       `json:"seed"`
	Results   []benchCase `json:"results"`
}

// runBench times full study runs — cold and warm cache, serial and
// parallel — and writes a machine-readable JSON report, so CI can archive
// the toolkit's performance envelope alongside every build.
func runBench(ctx context.Context, args []string) error {
	fs := newFlagSet("bench")
	out := fs.String("out", "BENCH_pr3.json", "write the benchmark report JSON to this path")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	perTaxon := fs.Int("per-taxon", 0, "shrink the corpus to N projects per taxon (0 = the full 195-project corpus)")
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}

	profiles := corpus.DefaultProfiles()
	if *perTaxon > 0 {
		for i := range profiles {
			profiles[i].Count = *perTaxon
		}
	}
	runOnce := func(workers int, c *cache.Cache) (int, float64, error) {
		cfg := corpus.DefaultConfig(*seed)
		cfg.Profiles = profiles
		cfg.Exec.Workers = workers
		cfg.Cache = c
		opts := study.DefaultOptions()
		opts.Exec.Workers = workers
		opts.Cache = c
		start := time.Now()
		projects, err := corpus.GenerateContext(ctx, cfg)
		if err != nil {
			return 0, 0, err
		}
		d, err := study.AnalyzeCorpusContext(ctx, projects, opts)
		if err != nil {
			return 0, 0, err
		}
		return d.Size(), time.Since(start).Seconds(), nil
	}

	workerSettings := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerSettings = append(workerSettings, n)
	}
	rep := benchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Seed:      *seed,
	}
	for _, workers := range workerSettings {
		// One shared in-memory cache per worker setting: the first run is
		// the cold measurement, the second replays it warm.
		c := cache.NewMemory()
		for _, phase := range []string{"cold", "warm"} {
			n, secs, err := runOnce(workers, c)
			if err != nil {
				return err
			}
			bc := benchCase{
				Name:     fmt.Sprintf("study/%s/workers=%d", phase, workers),
				Cache:    phase, Workers: workers, Projects: n, Seconds: secs,
			}
			rep.Results = append(rep.Results, bc)
			fmt.Fprintf(os.Stderr, "bench %-28s %8.3fs  (%d projects)\n", bc.Name, bc.Seconds, bc.Projects)
		}
	}

	if err := writeFile(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		return err
	}
	fmt.Printf("wrote benchmark report to %s\n", *out)
	return nil
}
