package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coevo/internal/cache"
	"coevo/internal/corpus"
	"coevo/internal/dataset"
	"coevo/internal/history"
	"coevo/internal/runlog"
	"coevo/internal/study"
	"coevo/internal/taxa"
)

// smallProjects generates a few corpus projects for CLI helpers.
func smallProjects(t *testing.T) []*corpus.Project {
	t.Helper()
	cfg := corpus.DefaultConfig(3)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 1
		if profiles[i].DurationMonths[1] > 24 {
			profiles[i].DurationMonths[1] = 24
		}
	}
	cfg.Profiles = profiles
	projects, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return projects
}

// withCtx adapts a context-first subcommand to the plain run signature.
func withCtx(f func(context.Context, []string) error) func([]string) error {
	return func(args []string) error { return f(context.Background(), args) }
}

// TestFlagErrorsReturnInsteadOfExiting exercises the ContinueOnError flag
// sets: a bad flag must come back through the error path of every
// subcommand, and -h must be a clean no-op (usage printed, nil error).
func TestFlagErrorsReturnInsteadOfExiting(t *testing.T) {
	subcommands := map[string]func([]string) error{
		"study": withCtx(runStudy), "gen": withCtx(runGen),
		"analyze": withCtx(runAnalyze), "taxa": withCtx(runTaxa),
		"bench":  withCtx(runBench),
		"ingest": runIngest, "impact": runImpact, "smo": runSMO,
		"export": runExport, "cache": runCache,
		"serve": withCtx(runServe), "runs": runRuns,
	}
	for name, run := range subcommands {
		if err := run([]string{"-definitely-not-a-flag"}); err == nil {
			t.Errorf("%s: bad flag should return an error", name)
		}
		if err := run([]string{"-h"}); err != nil {
			t.Errorf("%s: -h should be a clean exit, got %v", name, err)
		}
	}
}

// TestPipelineFlags drives the shared flag kit through its observability
// surfaces without running a study.
func TestPipelineFlags(t *testing.T) {
	build := func(t *testing.T, args ...string) (*pipeline, error) {
		t.Helper()
		fs := newFlagSet("test")
		builder := pipelineFlags(fs)
		if ok, err := parseFlags(fs, args); !ok {
			t.Fatalf("parse %v: %v", args, err)
		}
		return builder()
	}

	p, err := build(t)
	if err != nil || p.obs != nil || p.cache != nil || p.metrics != nil || p.server != nil {
		t.Errorf("bare pipeline should have no observer/cache/metrics/server: %+v, %v", p, err)
	}
	if err := p.finish(context.Background(), nil); err != nil {
		t.Errorf("bare finish: %v", err)
	}

	if _, err := build(t, "-log-level", "loud"); err == nil {
		t.Error("invalid -log-level should fail")
	}

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "heap.pprof")
	p, err = build(t, "-trace", tracePath, "-log-level", "warn",
		"-cpuprofile", cpuPath, "-memprofile", memPath,
		"-cache-dir", filepath.Join(dir, "cache"), "-metrics", "-workers", "2")
	if err != nil {
		t.Fatalf("full pipeline: %v", err)
	}
	if p.obs == nil || !p.obs.Tracing() || p.cache == nil || p.metrics == nil {
		t.Fatal("full pipeline missing a component")
	}
	if p.exec.Workers != 2 || p.exec.Obs != p.obs {
		t.Errorf("exec options not threaded: %+v", p.exec)
	}
	if err := p.finish(context.Background(), nil); err != nil {
		t.Fatalf("finish: %v", err)
	}
	for _, path := range []string{tracePath, cpuPath, memPath} {
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Errorf("%s not written: %v", path, err)
		}
	}
	var trace struct {
		TraceEvents []any `json:"traceEvents"`
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil || json.Unmarshal(raw, &trace) != nil {
		t.Errorf("trace file unreadable: %v", err)
	}
}

// TestBenchSubcommand runs the benchmark matrix on a tiny corpus and
// checks the report shape.
func TestBenchSubcommand(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	ledger := filepath.Join(dir, "runs")
	if err := runBench(context.Background(), []string{"-out", out, "-per-taxon", "1", "-seed", "7",
		"-runlog-dir", ledger}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		GoVersion  string `json:"go_version"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		NumCPU     int    `json:"num_cpu"`
		Results    []struct {
			Name        string  `json:"name"`
			Cache       string  `json:"cache"`
			Projects    int     `json:"projects"`
			Seconds     float64 `json:"seconds"`
			CacheHits   int64   `json:"cache_hits"`
			CacheMisses int64   `json:"cache_misses"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.GoVersion == "" || rep.GOMAXPROCS < 1 || rep.NumCPU < 1 {
		t.Errorf("provenance not stamped: %+v", rep)
	}
	if len(rep.Results) < 2 {
		t.Fatalf("expected at least cold+warm results, got %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Projects != 6 || r.Seconds <= 0 {
			t.Errorf("bad case %+v", r)
		}
	}
	if rep.Results[0].Cache != "cold" || rep.Results[1].Cache != "warm" {
		t.Errorf("cold/warm ordering wrong: %+v", rep.Results[:2])
	}
	if rep.Results[0].CacheMisses == 0 {
		t.Errorf("cold case should miss the cache: %+v", rep.Results[0])
	}
	if rep.Results[1].CacheHits == 0 || rep.Results[1].CacheMisses != 0 {
		t.Errorf("warm case should replay entirely from cache: %+v", rep.Results[1])
	}

	// The bench run also landed in the ledger, each case as a stage.
	runs, err := runlog.List(ledger)
	if err != nil || len(runs) != 1 {
		t.Fatalf("bench ledger = %v, %v; want 1 run", runs, err)
	}
	m := runs[0]
	if m.Command != "bench" || m.Outcome != "ok" || m.Projects != 6 {
		t.Errorf("bench manifest = %+v", m)
	}
	if m.StageSeconds["study/cold/workers=1"] <= 0 || m.StageSeconds["study/warm/workers=1"] <= 0 {
		t.Errorf("bench stages = %v", m.StageSeconds)
	}
	if m.Cache == nil || m.Cache.Hits == 0 {
		t.Errorf("bench cache stats = %+v", m.Cache)
	}
	if m.Options["per-taxon"] != "1" || m.Options["seed"] != "7" {
		t.Errorf("bench options = %v", m.Options)
	}
}

// TestCacheSubcommand drives coevo cache through its three operations
// against a real store.
func TestCacheSubcommand(t *testing.T) {
	if err := runCache([]string{"stats"}); err == nil {
		t.Error("missing -cache-dir should fail")
	}
	dir := filepath.Join(t.TempDir(), "cache")
	if err := runCache([]string{"-cache-dir", dir, "frobnicate"}); err == nil {
		t.Error("unknown operation should fail")
	}
	if err := runCache([]string{"-cache-dir", dir}); err == nil {
		t.Error("missing operation should fail")
	}

	c, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(cache.NewKey("test/v1", []byte("a")), []byte("payload-a"))
	c.Put(cache.NewKey("test/v1", []byte("b")), []byte("payload-b"))

	for _, op := range []string{"stats", "verify", "clear", "stats"} {
		if err := runCache([]string{"-cache-dir", dir, op}); err != nil {
			t.Errorf("cache %s: %v", op, err)
		}
	}
	rep, err := c.Size()
	if err != nil || rep.Entries != 0 {
		t.Errorf("after clear: %+v, %v", rep, err)
	}
}

func TestReportFailures(t *testing.T) {
	if err := reportFailures(&study.Dataset{}); err != nil {
		t.Errorf("no failures should be silent: %v", err)
	}
	partial := &study.Dataset{
		Projects: []*study.ProjectResult{{Name: "ok"}},
		Failures: []study.Failure{{Name: "bad", Err: io.ErrUnexpectedEOF}},
	}
	if err := reportFailures(partial); err != nil {
		t.Errorf("partial failure must not be fatal: %v", err)
	}
	allFailed := &study.Dataset{
		Failures: []study.Failure{{Name: "bad", Err: io.ErrUnexpectedEOF}},
	}
	if err := reportFailures(allFailed); err == nil {
		t.Error("a study where every project failed must error")
	}
}

func TestWorkersLabel(t *testing.T) {
	if got := workersLabel(0); got != "workers=GOMAXPROCS" {
		t.Errorf("workersLabel(0) = %q", got)
	}
	if got := workersLabel(8); got != "workers=8" {
		t.Errorf("workersLabel(8) = %q", got)
	}
}

func TestPickProject(t *testing.T) {
	projects := smallProjects(t)

	byIndex, err := pickProject(projects, "2")
	if err != nil || byIndex != projects[2] {
		t.Errorf("pick by index: %v, %v", byIndex, err)
	}
	byName, err := pickProject(projects, projects[3].Name)
	if err != nil || byName != projects[3] {
		t.Errorf("pick by name: %v, %v", byName, err)
	}
	if _, err := pickProject(projects, "999"); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := pickProject(projects, "no-such-project"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestWriteFileCreatesDirectories(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deeper", "out.txt")
	err := writeFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "content")
		return err
	})
	if err != nil {
		t.Fatalf("writeFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "content" {
		t.Errorf("read back %q, %v", got, err)
	}
}

func TestLoadDatedDDLVersions(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"2016-01-05.sql":   "CREATE TABLE a (x INT);",
		"2016-03-10.sql":   "CREATE TABLE a (x INT, y INT);",
		"2016-03-10.2.sql": "CREATE TABLE a (x INT, y INT, z INT);",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	versions, err := loadDatedDDLVersions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 3 {
		t.Fatalf("versions = %d", len(versions))
	}
	for i := 1; i < len(versions); i++ {
		if !versions[i].When.After(versions[i-1].When) {
			t.Errorf("versions not strictly ordered: %v", versions[i].When)
		}
	}
	if !strings.Contains(string(versions[2].Content), "z INT") {
		t.Errorf("intra-day ordering wrong: %q", versions[2].Content)
	}

	if _, err := loadDatedDDLVersions(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "not-a-date.sql"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadDatedDDLVersions(bad); err == nil {
		t.Error("undated file name should fail")
	}
}

func TestCollectRepositoryForExport(t *testing.T) {
	// The export path must work for every generated taxon.
	for _, p := range smallProjects(t) {
		st, err := dataset.CollectRepository(p.Repo, p.DDLPath, history.DefaultOptions(), taxa.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if st.Project != p.Repo.Name() {
			t.Errorf("project name mismatch: %s", st.Project)
		}
	}
}

func TestPrintCaseStudyRuns(t *testing.T) {
	projects := smallProjects(t)
	res, err := analyzeForTest(projects[1])
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := os.CreateTemp(t.TempDir(), "case-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := printCaseStudy(tmp, res); err != nil {
		t.Fatalf("printCaseStudy: %v", err)
	}
	if st, _ := tmp.Stat(); st.Size() == 0 {
		t.Error("case study output empty")
	}
}

// analyzeForTest runs the study analysis on a corpus project.
func analyzeForTest(p *corpus.Project) (*study.ProjectResult, error) {
	return study.AnalyzeRepository(p.Repo, p.DDLPath, study.DefaultOptions())
}
