package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"coevo/internal/corpus"
	"coevo/internal/report"
	"coevo/internal/study"
)

// workersLabel names the effective pool size for the startup banner.
func workersLabel(workers int) string {
	if workers <= 0 {
		return "workers=GOMAXPROCS"
	}
	return fmt.Sprintf("workers=%d", workers)
}

// renderStudySections prints the text sections to stdout and optionally
// writes every section (text and SVG) into outDir. The sections
// themselves come from the shared report.StudySections path, so the CLI
// and the job service render byte-identical figures.
func renderStudySections(a *report.StudyArtifacts, outDir string) error {
	for _, s := range report.StudySections(a) {
		if !strings.HasSuffix(s.Name, ".svg") {
			if err := s.Write(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if outDir != "" {
			if err := writeFile(filepath.Join(outDir, s.Name), s.Write); err != nil {
				return err
			}
		}
	}
	return nil
}

// studyCorpusConfig assembles the generation config shared by the batch
// and streaming paths: the paper's corpus (optionally rescaled per taxon
// for memory experiments), the run's cache and observer.
func studyCorpusConfig(p *pipeline, seed int64, perTaxon int) corpus.Config {
	cfg := corpus.DefaultConfig(seed)
	if perTaxon > 0 {
		for i := range cfg.Profiles {
			cfg.Profiles[i].Count = perTaxon
		}
	}
	cfg.Exec.Workers = p.exec.Workers
	cfg.Cache = p.cache
	cfg.Obs = p.obs
	return cfg
}

// runStudy executes the full pipeline and renders every evaluation
// artifact, optionally writing the per-project CSV data set. The default
// streaming mode fuses generation and analysis so peak memory stays
// O(workers) projects; -stream=false materializes the corpus first and
// analyzes it as a batch. Both modes produce byte-identical output.
func runStudy(ctx context.Context, args []string) error {
	fs := newFlagSet("study")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	csvPath := fs.String("csv", "", "write the per-project data set to this CSV file")
	outDir := fs.String("out", "", "also write each figure to a file in this directory")
	streamMode := fs.Bool("stream", true, "fuse generation and analysis into one bounded-memory stream (false: materialize the whole corpus, then analyze)")
	perTaxon := fs.Int("per-taxon", 0, "override the per-taxon project count (0 = the paper's 195-project corpus)")
	shards := fs.Int("shards", 0, "scale the study across this many worker processes (0 = single process); output is byte-identical to the unsharded run")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated base URLs of running `coevo shard serve` workers, one per shard (default: spawn local workers)")
	dialect := dialectFlag(fs)
	buildPipeline := pipelineFlags(fs)
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	dial, err := resolveDialect(*dialect)
	if err != nil {
		return err
	}
	if *shardAddrs != "" && *shards == 0 {
		*shards = strings.Count(*shardAddrs, ",") + 1
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d: want a positive shard count", *shards)
	}
	p, err := buildPipeline()
	if err != nil {
		return err
	}

	if *shards > 0 {
		fmt.Fprintf(os.Stderr, "generating and analyzing the corpus (seed %d, %s, %d shards)...\n",
			*seed, workersLabel(p.exec.Workers), *shards)
		return runStudySharded(ctx, p, *seed, *perTaxon, *dialect, *shards, *shardAddrs, *csvPath, *outDir)
	}

	opts := study.DefaultOptions()
	opts.Exec = p.exec
	opts.Cache = p.cache
	opts.Obs = p.obs
	opts.History.Dialect = dial
	cfg := studyCorpusConfig(p, *seed, *perTaxon)
	src := corpus.NewSource(cfg)
	mode := "batch"
	if *streamMode {
		mode = "streaming"
	}
	fmt.Fprintf(os.Stderr, "generating and analyzing the %d-project corpus (seed %d, %s, %s)...\n",
		src.Len(), *seed, workersLabel(opts.Exec.Workers), mode)

	if *streamMode {
		return runStudyStreaming(ctx, p, src, opts, *seed, *csvPath, *outDir)
	}

	rctx, span := p.obs.StartSpan(ctx, "run")
	projects, err := corpus.GenerateContext(rctx, cfg)
	var d *study.Dataset
	if err == nil {
		d, err = study.AnalyzeCorpusContext(rctx, projects, opts)
	}
	span.End()
	p.recordDataset(d)
	ferr := p.finish(ctx, err)
	if err != nil {
		reportInterrupted(d, err)
		return err
	}
	if ferr != nil {
		return ferr
	}
	if err := reportFailures(d); err != nil {
		return err
	}
	fmt.Printf("analyzed %d projects\n\n", d.Size())

	if err := renderStudySections(report.DatasetArtifacts(d, *seed), *outDir); err != nil {
		return err
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return report.Render(w, d, report.CSV)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote data set to %s\n", *csvPath)
	}
	return nil
}

// runStudyStreaming runs the fused generate→analyze stream: figures
// accumulate online and the CSV (when requested) is written row by row,
// so no per-project result outlives its turn through the sinks.
func runStudyStreaming(ctx context.Context, p *pipeline, src *corpus.Source, opts study.Options, seed int64, csvPath, outDir string) error {
	figs := study.NewFigures()
	sinks := []study.Sink{figs}
	var csvFile *os.File
	var csvW *report.DatasetCSVWriter
	if csvPath != "" {
		if err := os.MkdirAll(filepath.Dir(csvPath), 0o755); err != nil {
			return err
		}
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		csvFile = f
		csvW = report.NewDatasetCSVWriter(f)
		sinks = append(sinks, csvW)
	}
	closeCSV := func() error {
		if csvFile == nil {
			return nil
		}
		err := csvW.Close()
		if cerr := csvFile.Close(); err == nil {
			err = cerr
		}
		csvFile = nil
		return err
	}
	defer closeCSV() //nolint:errcheck // re-checked on the success path

	rctx, span := opts.Obs.StartSpan(ctx, "run")
	sum, err := study.StreamCorpus(rctx, src, study.MultiSink(sinks...), opts)
	span.End()
	p.recordStream(sum)
	ferr := p.finish(ctx, err)
	if err != nil {
		if sum != nil {
			reportInterruptedCounts(sum.Projects, len(sum.Failures), err)
		}
		return err
	}
	if ferr != nil {
		return ferr
	}
	if err := reportFailureList(sum.Projects, sum.Failures); err != nil {
		return err
	}
	fmt.Printf("analyzed %d projects\n\n", sum.Projects)

	if err := renderStudySections(report.FiguresArtifacts(figs, seed), outDir); err != nil {
		return err
	}
	if csvPath != "" {
		if err := closeCSV(); err != nil {
			return err
		}
		fmt.Printf("wrote data set to %s\n", csvPath)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
