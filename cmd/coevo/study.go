package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"coevo/internal/report"
	"coevo/internal/study"
)

// workersLabel names the effective pool size for the startup banner.
func workersLabel(workers int) string {
	if workers <= 0 {
		return "workers=GOMAXPROCS"
	}
	return fmt.Sprintf("workers=%d", workers)
}

// runStudy executes the full pipeline and renders every evaluation
// artifact, optionally writing the per-project CSV data set.
func runStudy(ctx context.Context, args []string) error {
	fs := newFlagSet("study")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	csvPath := fs.String("csv", "", "write the per-project data set to this CSV file")
	outDir := fs.String("out", "", "also write each figure to a file in this directory")
	buildPipeline := pipelineFlags(fs)
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	p, err := buildPipeline()
	if err != nil {
		return err
	}

	opts := study.DefaultOptions()
	opts.Exec = p.exec
	opts.Cache = p.cache
	opts.Obs = p.obs
	fmt.Fprintf(os.Stderr, "generating and analyzing the 195-project corpus (seed %d, %s)...\n",
		*seed, workersLabel(opts.Exec.Workers))
	d, err := study.Run(ctx, *seed, opts)
	p.recordDataset(d)
	ferr := p.finish(ctx, err)
	if err != nil {
		reportInterrupted(d, err)
		return err
	}
	if ferr != nil {
		return ferr
	}
	if err := reportFailures(d); err != nil {
		return err
	}
	fmt.Printf("analyzed %d projects\n\n", d.Size())

	sections := []struct {
		name  string
		write func(io.Writer) error
	}{
		{"figure4.txt", func(w io.Writer) error {
			return report.Render(w, d.SynchronicityHistogram(0.10, 5), report.Text)
		}},
		{"figure4.svg", func(w io.Writer) error {
			return report.Render(w, d.SynchronicityHistogram(0.10, 5), report.SVG)
		}},
		{"figure5.svg", func(w io.Writer) error {
			return report.Render(w, d.DurationSynchronicityScatter(), report.SVG)
		}},
		{"figure5.txt", func(w io.Writer) error {
			if err := report.Render(w, d.DurationSynchronicityScatter(), report.Text); err != nil {
				return err
			}
			in, out := d.LongProjectSyncBand(60, 0.2, 0.8)
			_, err := fmt.Fprintf(w, "projects older than 60 months: %d in the (0.2, 0.8) band, %d outside\n", in, out)
			return err
		}},
		{"figure6.txt", func(w io.Writer) error {
			return report.Render(w, d.AdvanceBreakdown(), report.Text)
		}},
		{"figure7.txt", func(w io.Writer) error {
			return report.Render(w, d.AlwaysAdvance(), report.Text)
		}},
		{"figure8.txt", func(w io.Writer) error {
			return report.Render(w, d.Attainment(), report.Text)
		}},
		{"section7.txt", func(w io.Writer) error {
			st, err := d.Statistics(*seed)
			if err != nil {
				return err
			}
			return report.Render(w, st, report.Text)
		}},
	}
	for _, s := range sections {
		if !strings.HasSuffix(s.name, ".svg") {
			if err := s.write(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if *outDir != "" {
			if err := writeFile(filepath.Join(*outDir, s.name), s.write); err != nil {
				return err
			}
		}
	}

	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return report.Render(w, d, report.CSV)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote data set to %s\n", *csvPath)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
