package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"coevo/internal/report"
	"coevo/internal/study"
)

// runStudy executes the full pipeline and renders every evaluation
// artifact, optionally writing the per-project CSV data set.
func runStudy(args []string) error {
	fs := newFlagSet("study")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	csvPath := fs.String("csv", "", "write the per-project data set to this CSV file")
	outDir := fs.String("out", "", "also write each figure to a file in this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "generating and analyzing the 195-project corpus (seed %d)...\n", *seed)
	d, err := study.RunDefault(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("analyzed %d projects\n\n", d.Size())

	sections := []struct {
		name  string
		write func(io.Writer) error
	}{
		{"figure4.txt", func(w io.Writer) error {
			return report.WriteSyncHistogram(w, d.SynchronicityHistogram(0.10, 5))
		}},
		{"figure4.svg", func(w io.Writer) error {
			return report.WriteSyncHistogramSVG(w, d.SynchronicityHistogram(0.10, 5))
		}},
		{"figure5.svg", func(w io.Writer) error {
			return report.WriteScatterSVG(w, d.DurationSynchronicityScatter())
		}},
		{"figure5.txt", func(w io.Writer) error {
			if err := report.WriteScatter(w, d.DurationSynchronicityScatter()); err != nil {
				return err
			}
			in, out := d.LongProjectSyncBand(60, 0.2, 0.8)
			_, err := fmt.Fprintf(w, "projects older than 60 months: %d in the (0.2, 0.8) band, %d outside\n", in, out)
			return err
		}},
		{"figure6.txt", func(w io.Writer) error {
			return report.WriteAdvanceTable(w, d.AdvanceBreakdown())
		}},
		{"figure7.txt", func(w io.Writer) error {
			return report.WriteAlwaysAdvance(w, d.AlwaysAdvance())
		}},
		{"figure8.txt", func(w io.Writer) error {
			return report.WriteAttainment(w, d.Attainment())
		}},
		{"section7.txt", func(w io.Writer) error {
			st, err := d.Statistics(*seed)
			if err != nil {
				return err
			}
			return report.WriteStatsReport(w, st)
		}},
	}
	for _, s := range sections {
		if !strings.HasSuffix(s.name, ".svg") {
			if err := s.write(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if *outDir != "" {
			if err := writeFile(filepath.Join(*outDir, s.name), s.write); err != nil {
				return err
			}
		}
	}

	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return report.WriteDatasetCSV(w, d)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote data set to %s\n", *csvPath)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
