package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"coevo/internal/corpus"
	"coevo/internal/report"
	"coevo/internal/study"
)

// workersLabel names the effective pool size for the startup banner.
func workersLabel(workers int) string {
	if workers <= 0 {
		return "workers=GOMAXPROCS"
	}
	return fmt.Sprintf("workers=%d", workers)
}

// studyArtifacts holds every evaluation figure's input, computed either
// by folding a batch Dataset or live by the streaming Figures sink — one
// rendering path for both modes guarantees their output is identical.
type studyArtifacts struct {
	hist       *study.SyncHistogram
	scatter    []study.ScatterPoint
	bandIn     int
	bandOut    int
	advance    *study.AdvanceTable
	always     *study.AlwaysAdvanceSummary
	attainment *study.AttainmentBreakdown
	stats      func() (*study.StatsReport, error)
}

// datasetArtifacts folds a batch dataset into the figure inputs.
func datasetArtifacts(d *study.Dataset, seed int64) *studyArtifacts {
	in, out := d.LongProjectSyncBand(60, 0.2, 0.8)
	return &studyArtifacts{
		hist:       d.SynchronicityHistogram(0.10, 5),
		scatter:    d.DurationSynchronicityScatter(),
		bandIn:     in,
		bandOut:    out,
		advance:    d.AdvanceBreakdown(),
		always:     d.AlwaysAdvance(),
		attainment: d.Attainment(),
		stats:      func() (*study.StatsReport, error) { return d.Statistics(seed) },
	}
}

// figuresArtifacts reads the finished online accumulators.
func figuresArtifacts(f *study.Figures, seed int64) *studyArtifacts {
	in, out := f.Band.Band()
	return &studyArtifacts{
		hist:       f.Sync.Histogram(),
		scatter:    f.Scatter.Points(),
		bandIn:     in,
		bandOut:    out,
		advance:    f.Advance.Table(),
		always:     f.Always.Summary(),
		attainment: f.Attainment.Breakdown(),
		stats:      func() (*study.StatsReport, error) { return f.Stats.Report(seed) },
	}
}

// studySection is one named output of the study run.
type studySection struct {
	name  string
	write func(io.Writer) error
}

// studySections lists the evaluation artifacts in presentation order.
func studySections(a *studyArtifacts) []studySection {
	return []studySection{
		{"figure4.txt", func(w io.Writer) error {
			return report.Render(w, a.hist, report.Text)
		}},
		{"figure4.svg", func(w io.Writer) error {
			return report.Render(w, a.hist, report.SVG)
		}},
		{"figure5.svg", func(w io.Writer) error {
			return report.Render(w, a.scatter, report.SVG)
		}},
		{"figure5.txt", func(w io.Writer) error {
			if err := report.Render(w, a.scatter, report.Text); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "projects older than 60 months: %d in the (0.2, 0.8) band, %d outside\n", a.bandIn, a.bandOut)
			return err
		}},
		{"figure6.txt", func(w io.Writer) error {
			return report.Render(w, a.advance, report.Text)
		}},
		{"figure7.txt", func(w io.Writer) error {
			return report.Render(w, a.always, report.Text)
		}},
		{"figure8.txt", func(w io.Writer) error {
			return report.Render(w, a.attainment, report.Text)
		}},
		{"section7.txt", func(w io.Writer) error {
			st, err := a.stats()
			if err != nil {
				return err
			}
			return report.Render(w, st, report.Text)
		}},
	}
}

// renderStudySections prints the text sections to stdout and optionally
// writes every section (text and SVG) into outDir.
func renderStudySections(a *studyArtifacts, outDir string) error {
	for _, s := range studySections(a) {
		if !strings.HasSuffix(s.name, ".svg") {
			if err := s.write(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if outDir != "" {
			if err := writeFile(filepath.Join(outDir, s.name), s.write); err != nil {
				return err
			}
		}
	}
	return nil
}

// studyCorpusConfig assembles the generation config shared by the batch
// and streaming paths: the paper's corpus (optionally rescaled per taxon
// for memory experiments), the run's cache and observer.
func studyCorpusConfig(p *pipeline, seed int64, perTaxon int) corpus.Config {
	cfg := corpus.DefaultConfig(seed)
	if perTaxon > 0 {
		for i := range cfg.Profiles {
			cfg.Profiles[i].Count = perTaxon
		}
	}
	cfg.Exec.Workers = p.exec.Workers
	cfg.Cache = p.cache
	cfg.Obs = p.obs
	return cfg
}

// runStudy executes the full pipeline and renders every evaluation
// artifact, optionally writing the per-project CSV data set. The default
// streaming mode fuses generation and analysis so peak memory stays
// O(workers) projects; -stream=false materializes the corpus first and
// analyzes it as a batch. Both modes produce byte-identical output.
func runStudy(ctx context.Context, args []string) error {
	fs := newFlagSet("study")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	csvPath := fs.String("csv", "", "write the per-project data set to this CSV file")
	outDir := fs.String("out", "", "also write each figure to a file in this directory")
	streamMode := fs.Bool("stream", true, "fuse generation and analysis into one bounded-memory stream (false: materialize the whole corpus, then analyze)")
	perTaxon := fs.Int("per-taxon", 0, "override the per-taxon project count (0 = the paper's 195-project corpus)")
	buildPipeline := pipelineFlags(fs)
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	p, err := buildPipeline()
	if err != nil {
		return err
	}

	opts := study.DefaultOptions()
	opts.Exec = p.exec
	opts.Cache = p.cache
	opts.Obs = p.obs
	cfg := studyCorpusConfig(p, *seed, *perTaxon)
	src := corpus.NewSource(cfg)
	mode := "batch"
	if *streamMode {
		mode = "streaming"
	}
	fmt.Fprintf(os.Stderr, "generating and analyzing the %d-project corpus (seed %d, %s, %s)...\n",
		src.Len(), *seed, workersLabel(opts.Exec.Workers), mode)

	if *streamMode {
		return runStudyStreaming(ctx, p, src, opts, *seed, *csvPath, *outDir)
	}

	rctx, span := p.obs.StartSpan(ctx, "run")
	projects, err := corpus.GenerateContext(rctx, cfg)
	var d *study.Dataset
	if err == nil {
		d, err = study.AnalyzeCorpusContext(rctx, projects, opts)
	}
	span.End()
	p.recordDataset(d)
	ferr := p.finish(ctx, err)
	if err != nil {
		reportInterrupted(d, err)
		return err
	}
	if ferr != nil {
		return ferr
	}
	if err := reportFailures(d); err != nil {
		return err
	}
	fmt.Printf("analyzed %d projects\n\n", d.Size())

	if err := renderStudySections(datasetArtifacts(d, *seed), *outDir); err != nil {
		return err
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return report.Render(w, d, report.CSV)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote data set to %s\n", *csvPath)
	}
	return nil
}

// runStudyStreaming runs the fused generate→analyze stream: figures
// accumulate online and the CSV (when requested) is written row by row,
// so no per-project result outlives its turn through the sinks.
func runStudyStreaming(ctx context.Context, p *pipeline, src *corpus.Source, opts study.Options, seed int64, csvPath, outDir string) error {
	figs := study.NewFigures()
	sinks := []study.Sink{figs}
	var csvFile *os.File
	var csvW *report.DatasetCSVWriter
	if csvPath != "" {
		if err := os.MkdirAll(filepath.Dir(csvPath), 0o755); err != nil {
			return err
		}
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		csvFile = f
		csvW = report.NewDatasetCSVWriter(f)
		sinks = append(sinks, csvW)
	}
	closeCSV := func() error {
		if csvFile == nil {
			return nil
		}
		err := csvW.Close()
		if cerr := csvFile.Close(); err == nil {
			err = cerr
		}
		csvFile = nil
		return err
	}
	defer closeCSV() //nolint:errcheck // re-checked on the success path

	rctx, span := opts.Obs.StartSpan(ctx, "run")
	sum, err := study.StreamCorpus(rctx, src, study.MultiSink(sinks...), opts)
	span.End()
	p.recordStream(sum)
	ferr := p.finish(ctx, err)
	if err != nil {
		if sum != nil {
			reportInterruptedCounts(sum.Projects, len(sum.Failures), err)
		}
		return err
	}
	if ferr != nil {
		return ferr
	}
	if err := reportFailureList(sum.Projects, sum.Failures); err != nil {
		return err
	}
	fmt.Printf("analyzed %d projects\n\n", sum.Projects)

	if err := renderStudySections(figuresArtifacts(figs, seed), outDir); err != nil {
		return err
	}
	if csvPath != "" {
		if err := closeCSV(); err != nil {
			return err
		}
		fmt.Printf("wrote data set to %s\n", csvPath)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
