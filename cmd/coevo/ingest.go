package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"coevo/internal/gitlog"
	"coevo/internal/history"
	"coevo/internal/study"
)

// runIngest analyzes a real project from its textual git log — produced by
//
//	git log --name-status --no-merges --date=iso > project.log
//
// and, when -ddl-dir points at a directory of dated DDL version files
// (YYYY-MM-DD.sql, exported with `git show <commit>:<path>`), computes the
// full co-evolution measure suite.
func runIngest(args []string) error {
	fs := newFlagSet("ingest")
	logPath := fs.String("log", "", "path to the git log file (required)")
	ddlDir := fs.String("ddl-dir", "", "directory of dated DDL versions (YYYY-MM-DD[.n].sql)")
	name := fs.String("name", "", "project name for the report (default: log file name)")
	dialect := dialectFlag(fs)
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	d, err := resolveDialect(*dialect)
	if err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("ingest: -log is required")
	}
	if *name == "" {
		*name = strings.TrimSuffix(filepath.Base(*logPath), filepath.Ext(*logPath))
	}

	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := gitlog.Parse(f)
	if err != nil {
		return err
	}
	ph, err := history.ProjectHistoryFromLog(entries)
	if err != nil {
		return err
	}

	if *ddlDir == "" {
		return printProjectOnly(*name, ph, entries)
	}

	versions, err := loadDatedDDLVersions(*ddlDir)
	if err != nil {
		return err
	}
	// The dialect goes to both option sets: the history options drive the
	// actual extraction, the study options keep the measure-cache
	// fingerprint truthful about what parsed the DDL.
	hopts := history.DefaultOptions()
	hopts.Dialect = d
	sh, err := history.SchemaHistoryFromContents("schema.sql", versions, hopts)
	if err != nil {
		return err
	}
	sopts := study.DefaultOptions()
	sopts.History.Dialect = d
	res, err := study.AnalyzeHistories(*name, "schema.sql", sh, ph, sopts)
	if err != nil {
		return err
	}
	return printCaseStudy(os.Stdout, res)
}

// printProjectOnly reports project-activity statistics when no schema
// versions are available.
func printProjectOnly(name string, ph *history.ProjectHistory, entries []gitlog.Entry) error {
	first, last := ph.Span()
	fmt.Printf("project   %s\n", name)
	fmt.Printf("commits   %d (non-merge)\n", ph.CommitCount())
	fmt.Printf("files     %d updates\n", ph.TotalFileUpdates())
	fmt.Printf("span      %s .. %s (%d months)\n\n",
		first.Format("2006-01-02"), last.Format("2006-01-02"), ph.DurationMonths())

	counts := gitlog.MonthlyFileUpdates(entries)
	fmt.Println("monthly file updates (the Project Heartbeat):")
	for _, month := range gitlog.SortedMonths(counts) {
		fmt.Printf("  %s  %d\n", month, counts[month])
	}
	fmt.Println("\nprovide -ddl-dir with dated schema versions for the full co-evolution measures")
	return nil
}

// loadDatedDDLVersions reads *.sql files named by ISO date from dir.
func loadDatedDDLVersions(dir string) ([]history.DatedContent, error) {
	glob, err := filepath.Glob(filepath.Join(dir, "*.sql"))
	if err != nil {
		return nil, err
	}
	if len(glob) == 0 {
		return nil, fmt.Errorf("ingest: no .sql files in %s", dir)
	}
	type datedFile struct {
		path string
		when time.Time
		seq  int
	}
	files := make([]datedFile, 0, len(glob))
	for _, path := range glob {
		stem := strings.TrimSuffix(filepath.Base(path), ".sql")
		// Allow a .N disambiguator for multiple versions on one day; the
		// plain file is sequence 0.
		datePart, seq := stem, 0
		if dot := strings.IndexByte(stem, '.'); dot > 0 {
			datePart = stem[:dot]
			n, err := strconv.Atoi(stem[dot+1:])
			if err != nil {
				return nil, fmt.Errorf("ingest: %s: disambiguator must be numeric (YYYY-MM-DD.N.sql)", path)
			}
			seq = n
		}
		when, err := time.Parse("2006-01-02", datePart)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: file name must start with YYYY-MM-DD: %w", path, err)
		}
		files = append(files, datedFile{path: path, when: when, seq: seq})
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].when.Equal(files[j].when) {
			return files[i].when.Before(files[j].when)
		}
		return files[i].seq < files[j].seq
	})
	versions := make([]history.DatedContent, 0, len(files))
	for i, f := range files {
		content, err := os.ReadFile(f.path)
		if err != nil {
			return nil, err
		}
		versions = append(versions, history.DatedContent{
			When:    f.when.Add(time.Duration(i) * time.Minute),
			Content: content,
		})
	}
	return versions, nil
}
