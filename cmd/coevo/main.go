// Command coevo runs the joint source and schema evolution study toolkit.
//
// Subcommands:
//
//	study      generate the 195-project corpus and regenerate every figure
//	           and table of the paper's evaluation (Figures 4-8, Section 7)
//	impact     windowed co-change analysis around schema commits
//	smo        derive an invertible SMO migration between schema versions
//	export     write Schema_Evo-style per-history statistics as JSON
//	gen        generate the corpus and summarize it per taxon
//	analyze    deep-dive one project of the corpus (joint progress diagram,
//	           full measure suite) — the Section 3.3 case-study view
//	ingest     compute project-activity statistics from a real
//	           `git log --name-status --no-merges --date=iso` file, and,
//	           when a directory of dated DDL versions is given, the full
//	           co-evolution measures
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "study":
		err = runStudy(os.Args[2:])
	case "gen":
		err = runGen(os.Args[2:])
	case "analyze":
		err = runAnalyze(os.Args[2:])
	case "ingest":
		err = runIngest(os.Args[2:])
	case "impact":
		err = runImpact(os.Args[2:])
	case "smo":
		err = runSMO(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	case "taxa":
		err = runTaxa(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "coevo: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "coevo: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: coevo <subcommand> [flags]

subcommands:
  study    regenerate the paper's full evaluation (figures 4-8, section 7)
  gen      generate the synthetic corpus and summarize it
  analyze  deep-dive a single corpus project
  ingest   analyze a real git log (+ optional DDL version directory)
  impact   windowed co-change analysis around schema commits
  smo      derive a schema-modification-operation migration between versions
  export   write the Schema_Evo-style per-history statistics as JSON
  taxa     per-taxon synchronicity breakdown and change locality

run 'coevo <subcommand> -h' for flags.
`)
}

// newFlagSet builds a flag set that prints its own usage on error.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return fs
}
