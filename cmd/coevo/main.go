// Command coevo runs the joint source and schema evolution study toolkit.
//
// Subcommands:
//
//	study      generate the 195-project corpus and regenerate every figure
//	           and table of the paper's evaluation (Figures 4-8, Section 7)
//	impact     windowed co-change analysis around schema commits
//	smo        derive an invertible SMO migration between schema versions
//	export     write Schema_Evo-style per-history statistics as JSON
//	gen        generate the corpus and summarize it per taxon
//	analyze    deep-dive one project of the corpus (joint progress diagram,
//	           full measure suite) — the Section 3.3 case-study view
//	ingest     compute project-activity statistics from a real
//	           `git log --name-status --no-merges --date=iso` file, and,
//	           when a directory of dated DDL versions is given, the full
//	           co-evolution measures
//	parse      debug the recovering DDL parser: print dialect, statement
//	           stats and categorized diagnostics for one DDL file
//	taxa       per-taxon synchronicity breakdown and change locality
//	cache      administer an on-disk result cache (stats, clear, verify)
//	serve      run the analysis service: the durable multi-tenant job
//	           queue at /jobs plus Prometheus /metrics, /debug/pprof and
//	           the run-ledger browser at /runs
//	jobs       client for the job service: submit studies or ingest
//	           payloads to a running `coevo serve`, watch and fetch them
//	runs       browse the persistent run ledger (list, show, diff with
//	           metric-regression flagging)
//
// The corpus-wide subcommands (study, gen, taxa) run on the concurrent
// execution engine (internal/engine) and share the -workers, -progress
// and -metrics flags; output is deterministic at any worker count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"coevo/internal/study"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancel the run's context: in-flight projects drain,
	// the partial dataset is summarized, and observability artifacts
	// (trace, profiles) are still flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "study":
		err = runStudy(ctx, os.Args[2:])
	case "gen":
		err = runGen(ctx, os.Args[2:])
	case "analyze":
		err = runAnalyze(ctx, os.Args[2:])
	case "bench":
		err = runBench(ctx, os.Args[2:])
	case "ingest":
		err = runIngest(os.Args[2:])
	case "parse":
		err = runParse(os.Args[2:])
	case "impact":
		err = runImpact(os.Args[2:])
	case "smo":
		err = runSMO(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	case "taxa":
		err = runTaxa(ctx, os.Args[2:])
	case "cache":
		err = runCache(os.Args[2:])
	case "serve":
		err = runServe(ctx, os.Args[2:])
	case "jobs":
		err = runJobs(ctx, os.Args[2:])
	case "runs":
		err = runRuns(os.Args[2:])
	case "shard":
		err = runShard(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "coevo: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "coevo: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: coevo <subcommand> [flags]

subcommands:
  study    regenerate the paper's full evaluation (figures 4-8, section 7)
  gen      generate the synthetic corpus and summarize it
  analyze  deep-dive a single corpus project
  ingest   analyze a real git log (+ optional DDL version directory)
  impact   windowed co-change analysis around schema commits
  smo      derive a schema-modification-operation migration between versions
  export   write the Schema_Evo-style per-history statistics as JSON
  parse    print the parse-health report for one DDL file (-dialect selects
           the adapter; exits nonzero on uncategorized diagnostics)
  taxa     per-taxon synchronicity breakdown and change locality
  cache    administer a result-cache directory (stats, clear, verify)
  bench    time study runs (cold/warm cache, serial/parallel) into a JSON report
  serve    run the analysis service (job queue at /jobs, metrics, pprof, /runs)
  jobs     submit, watch and fetch jobs on a running serve instance
  runs     browse the run ledger (list, show, diff with regression flags)
  shard    run a shard worker for scaled-out studies (see study -shards)

run 'coevo <subcommand> -h' for flags. The corpus-wide subcommands
(study, gen, taxa) run on a concurrent execution engine and share the
flags -workers N (pool size, default GOMAXPROCS), -progress (report
progress on stderr), -metrics (print the unified metrics report:
latency/throughput, stage totals and cache counters), -cache-dir DIR
(persist and reuse stage results across runs), -trace FILE (Chrome
trace-event JSON of the run), -log-level LEVEL (structured logs on
stderr), -cpuprofile/-memprofile FILE (pprof profiles), -listen ADDR
(serve /metrics, /healthz, /readyz, /progress SSE, /debug/pprof and
/runs live during the run; -linger D keeps it up after) and
-runlog-dir DIR (record the run's manifest into a persistent ledger,
compared later with 'coevo runs diff'). Output is byte-identical no
matter which observability, telemetry or cache flags are set.
`)
}

// newFlagSet builds a flag set whose parse errors return through the
// normal error path (ContinueOnError) instead of exiting the process, so
// flag handling is testable and main owns the exit code.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// parseFlags parses args into fs. It reports whether the subcommand
// should run: -h/-help prints the usage (done by the flag package) and
// returns (false, nil) — a clean exit, not an error.
func parseFlags(fs *flag.FlagSet, args []string) (run bool, err error) {
	switch err := fs.Parse(args); {
	case err == nil:
		return true, nil
	case errors.Is(err, flag.ErrHelp):
		return false, nil
	default:
		return false, err
	}
}

// reportInterrupted summarizes a cancelled corpus run on stderr: what the
// engine finished before the context fired is still a (partial) dataset.
func reportInterrupted(d *study.Dataset, err error) {
	if d == nil {
		return
	}
	reportInterruptedCounts(d.Size(), len(d.Failures), err)
}

func reportInterruptedCounts(analyzed, failed int, err error) {
	fmt.Fprintf(os.Stderr, "interrupted (%v): %d projects analyzed, %d failed before cancellation\n",
		err, analyzed, failed)
}

// reportFailures summarizes a partial study on stderr and decides the
// run's fate: per-project failures are tolerated (the paper's population
// figures degrade gracefully), but a study where every project failed
// returns an error.
func reportFailures(d *study.Dataset) error {
	return reportFailureList(d.Size(), d.Failures)
}

// reportFailureList is reportFailures over the streaming run's summary
// shape: analyzed is the count of successfully delivered projects.
func reportFailureList(analyzed int, failures []study.Failure) error {
	if len(failures) == 0 {
		return nil
	}
	fmt.Fprintf(os.Stderr, "%d of %d projects failed:\n", len(failures), analyzed+len(failures))
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "  %s: %v\n", f.Name, f.Err)
	}
	if analyzed == 0 {
		return fmt.Errorf("all %d projects failed", len(failures))
	}
	return nil
}
