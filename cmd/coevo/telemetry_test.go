package main

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coevo/internal/runlog"
	"coevo/internal/study"
)

// getBody fetches url and returns status code and body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// sseCapture is what a /progress client saw before the stream closed.
type sseCapture struct {
	projects  int
	snapshots int
	sample    string // one project event's data payload
}

// watchProgress subscribes to /progress and drains the stream until the
// server closes it (end of run), reporting what arrived.
func watchProgress(t *testing.T, url string) <-chan sseCapture {
	t.Helper()
	resp, err := http.Get(url + "/progress")
	if err != nil {
		t.Fatalf("GET /progress: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/progress Content-Type = %q", ct)
	}
	out := make(chan sseCapture, 1)
	go func() {
		defer resp.Body.Close()
		var cap sseCapture
		var event string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				switch event {
				case "project":
					cap.projects++
					if cap.sample == "" {
						cap.sample = strings.TrimPrefix(line, "data: ")
					}
				case "snapshot", "done":
					cap.snapshots++
				}
			}
		}
		out <- cap
	}()
	return out
}

// TestTelemetryDuringStudy drives the full -listen/-runlog-dir surface
// around a small corpus study: liveness before readiness, the readiness
// flip once analysis starts, live /metrics and /runs, SSE progress
// events, and the sealed ledger entry after finish.
func TestTelemetryDuringStudy(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "runs")
	fs := newFlagSet("study")
	builder := pipelineFlags(fs)
	if ok, err := parseFlags(fs, []string{
		"-listen", "127.0.0.1:0", "-runlog-dir", ledger, "-workers", "2"}); !ok {
		t.Fatalf("parse: %v", err)
	}
	p, err := builder()
	if err != nil {
		t.Fatalf("build pipeline: %v", err)
	}
	if p.server == nil || p.manifest == nil || p.metrics == nil {
		t.Fatalf("telemetry pipeline incomplete: %+v", p)
	}
	url := p.server.URL()

	if code, body := getBody(t, url+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := getBody(t, url+"/readyz"); code != 503 || !strings.Contains(body, "not ready") {
		t.Errorf("/readyz before run = %d %q, want 503", code, body)
	}
	if code, body := getBody(t, url+"/runs"); code != 200 || strings.TrimSpace(body) != "[]" {
		t.Errorf("/runs before any run = %d %q, want empty list", code, body)
	}

	captured := watchProgress(t, url)

	opts := study.DefaultOptions()
	opts.Exec = p.exec
	opts.Cache = p.cache
	opts.Obs = p.obs
	d, err := study.AnalyzeCorpusContext(context.Background(), smallProjects(t), opts)
	if err != nil {
		t.Fatalf("study: %v", err)
	}

	if code, body := getBody(t, url+"/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz after run = %d %q, want ready", code, body)
	}
	code, metrics := getBody(t, url+"/metrics")
	if code != 200 || !strings.Contains(metrics, `coevo_engine_tasks_total{run="analyze"}`) {
		t.Errorf("/metrics = %d, missing engine series:\n%.400s", code, metrics)
	}
	if !strings.Contains(metrics, "coevo_obs_sse_clients 1") {
		t.Errorf("/metrics does not count the connected SSE client:\n%.400s", metrics)
	}
	if code, body := getBody(t, url+"/"); code != 200 || !strings.Contains(body, "/runs") {
		t.Errorf("index = %d %q, want endpoint listing with /runs", code, body)
	}

	p.recordDataset(d)
	if err := p.finish(context.Background(), nil); err != nil {
		t.Fatalf("finish: %v", err)
	}

	// Shutdown closed the SSE stream; the client must have seen the run.
	select {
	case cap := <-captured:
		if cap.projects < d.Size() {
			t.Errorf("SSE client saw %d project events, want >= %d", cap.projects, d.Size())
		}
		if cap.snapshots == 0 {
			t.Error("SSE client saw no snapshot/done events")
		}
		for _, want := range []string{`"scope":"analyze"`, `"name"`, `"done"`} {
			if !strings.Contains(cap.sample, want) {
				t.Errorf("project event payload missing %s: %s", want, cap.sample)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not close on shutdown")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still reachable after finish")
	}

	// The ledger holds exactly this run, sealed with outcome and metrics.
	runs, err := runlog.List(ledger)
	if err != nil || len(runs) != 1 {
		t.Fatalf("ledger = %v, %v; want 1 run", runs, err)
	}
	m := runs[0]
	if m.Command != "study" || m.Outcome != "ok" || m.Projects != d.Size() {
		t.Errorf("manifest = %+v", m)
	}
	if m.Options["listen"] != "127.0.0.1:0" || m.Options["workers"] != "2" {
		t.Errorf("manifest options = %v", m.Options)
	}
	if m.Workers != 2 || m.P95Seconds <= 0 || len(m.StageSeconds) == 0 || len(m.Metrics) == 0 {
		t.Errorf("manifest summary not filled: %+v", m)
	}
}

// TestLingerKeepsServerUp checks -linger: after the run, the telemetry
// server stays scrapeable for the linger window and /runs already serves
// the sealed manifest.
func TestLingerKeepsServerUp(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "runs")
	fs := newFlagSet("gen")
	builder := pipelineFlags(fs)
	if ok, err := parseFlags(fs, []string{
		"-listen", "127.0.0.1:0", "-runlog-dir", ledger, "-linger", "30s"}); !ok {
		t.Fatalf("parse: %v", err)
	}
	p, err := builder()
	if err != nil {
		t.Fatalf("build pipeline: %v", err)
	}
	url := p.server.URL()
	p.recordProjects(6)

	ctx, cancel := context.WithCancel(context.Background())
	finished := make(chan error, 1)
	go func() { finished <- p.finish(ctx, nil) }()

	// While lingering, the ledger entry is already served.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := getBody(t, url+"/runs")
		if code == 200 && strings.Contains(body, `"projects": 6`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/runs never served the sealed manifest: %d %q", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-finished:
		t.Fatalf("finish returned during linger: %v", err)
	default:
	}
	cancel() // ctrl-c equivalent: cut the linger short
	select {
	case err := <-finished:
		if err != nil {
			t.Fatalf("finish after cancelled linger: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("finish did not return after cancellation")
	}
}

// ledgerPair writes two manifests into dir, the second carrying an
// injected latency and cache regression, and returns their ids.
func ledgerPair(t *testing.T, dir string) (string, string) {
	t.Helper()
	base := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	mk := func(id string, start time.Time, p95, hitRate float64) *runlog.Manifest {
		m := runlog.NewManifest("study", start)
		m.ID = id
		m.Finish(start.Add(2*time.Second), nil)
		m.Projects = 195
		m.P95Seconds = p95
		m.Cache = &runlog.CacheStats{Hits: int64(1000 * hitRate), Misses: int64(1000 * (1 - hitRate)), HitRate: hitRate}
		return m
	}
	a := mk("20260805T090000-aaaa", base, 0.050, 0.90)
	b := mk("20260805T100000-bbbb", base.Add(time.Hour), 0.150, 0.40)
	for _, m := range []*runlog.Manifest{a, b} {
		if _, err := runlog.Write(dir, m); err != nil {
			t.Fatal(err)
		}
	}
	return a.ID, b.ID
}

// TestRunsSubcommand drives coevo runs list/show/diff against a ledger
// with an injected regression.
func TestRunsSubcommand(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runs")
	oldID, newID := ledgerPair(t, dir)

	for _, args := range [][]string{
		{"-runlog-dir", dir, "list"},
		{"-runlog-dir", dir, "show"},
		{"-runlog-dir", dir, "show", oldID},
	} {
		if err := runRuns(args); err != nil {
			t.Errorf("runs %v: %v", args, err)
		}
	}

	// The injected p95 and hit-rate regressions must fail the diff.
	err := runRuns([]string{"-runlog-dir", dir, "diff", oldID, newID})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("diff with injected regression = %v, want regression error", err)
	}
	// Same pair via the previous/latest defaults.
	if err := runRuns([]string{"-runlog-dir", dir, "diff"}); err == nil {
		t.Error("default diff (previous vs latest) missed the regression")
	}
	// Reversed, the movement is an improvement: no error.
	if err := runRuns([]string{"-runlog-dir", dir, "diff", newID, oldID}); err != nil {
		t.Errorf("improvement flagged as regression: %v", err)
	}

	if err := runRuns([]string{"-runlog-dir", dir}); err == nil {
		t.Error("missing operation should fail")
	}
	if err := runRuns([]string{"-runlog-dir", dir, "frobnicate"}); err == nil {
		t.Error("unknown operation should fail")
	}
	if err := runRuns([]string{"-runlog-dir", dir, "show", "no-such-run"}); err == nil {
		t.Error("unknown run id should fail")
	}
}

// TestServeSubcommand checks the standalone server starts and shuts down
// cleanly on context cancellation.
func TestServeSubcommand(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, []string{"-listen", "127.0.0.1:0",
			"-runlog-dir", filepath.Join(t.TempDir(), "runs"), "-log-level", "error"})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not stop on cancellation")
	}

	if err := runServe(ctx, []string{"-log-level", "loud"}); err == nil {
		t.Error("invalid -log-level should fail")
	}
	if err := runServe(ctx, []string{"-listen", "256.0.0.1:bad"}); err == nil {
		t.Error("unbindable address should fail")
	}
}

// TestTelemetryFlagKitErrors covers the flag kit's new failure paths.
func TestTelemetryFlagKitErrors(t *testing.T) {
	fs := newFlagSet("study")
	builder := pipelineFlags(fs)
	if ok, err := parseFlags(fs, []string{"-listen", "256.0.0.1:bad"}); !ok {
		t.Fatalf("parse: %v", err)
	}
	if _, err := builder(); err == nil {
		t.Error("unbindable -listen should fail the build")
	}
}

// TestConcurrentMetricsScrapeDuringStudy hammers /metrics from several
// scrapers while a study is live, the way a Prometheus pair plus an
// impatient operator would. Every scrape must serve a complete, valid
// exposition; run under -race by make verify, this also proves the
// registry and the engine's metric writes don't tear.
func TestConcurrentMetricsScrapeDuringStudy(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "runs")
	fs := newFlagSet("study")
	builder := pipelineFlags(fs)
	if ok, err := parseFlags(fs, []string{
		"-listen", "127.0.0.1:0", "-runlog-dir", ledger, "-workers", "2"}); !ok {
		t.Fatalf("parse: %v", err)
	}
	p, err := builder()
	if err != nil {
		t.Fatalf("build pipeline: %v", err)
	}
	url := p.server.URL()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := getBody(t, url+"/metrics")
				if code != 200 {
					t.Errorf("/metrics mid-study = %d", code)
					return
				}
				// A torn write would show as a truncated exposition; every
				// scrape must end in a newline and carry the process gauges.
				if !strings.HasSuffix(body, "\n") || !strings.Contains(body, "coevo_proc_heap_alloc_bytes") {
					t.Errorf("scrape looks torn:\n%.200s", body)
					return
				}
				scrapes.Add(1)
			}
		}()
	}

	opts := study.DefaultOptions()
	opts.Exec = p.exec
	opts.Cache = p.cache
	opts.Obs = p.obs
	d, err := study.AnalyzeCorpusContext(context.Background(), smallProjects(t), opts)
	if err != nil {
		t.Fatalf("study: %v", err)
	}
	close(stop)
	wg.Wait()
	if scrapes.Load() == 0 {
		t.Fatal("no scrape completed during the study")
	}

	// The post-run scrape serves the engine's final counters.
	if _, body := getBody(t, url+"/metrics"); !strings.Contains(body, `coevo_engine_tasks_total{run="analyze"}`) {
		t.Errorf("final scrape missing engine series:\n%.300s", body)
	}
	p.recordDataset(d)
	if err := p.finish(context.Background(), nil); err != nil {
		t.Fatalf("finish: %v", err)
	}
}
