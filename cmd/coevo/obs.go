package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"coevo/internal/cache"
	"coevo/internal/engine"
	"coevo/internal/obs"
	"coevo/internal/runlog"
	"coevo/internal/shard"
	"coevo/internal/study"
)

// pipeline bundles everything the corpus-wide subcommands (study, gen,
// taxa) thread through a run: the engine options, the optional result
// cache, the optional observer behind -trace/-log-level/-metrics, the
// optional live telemetry server behind -listen, the optional run-ledger
// manifest behind -runlog-dir, the profiling hooks, and the end-of-run
// flushing of all of it.
type pipeline struct {
	exec    engine.Options
	cache   *cache.Cache
	obs     *obs.Observer
	metrics *engine.Metrics
	proc    *obs.ProcStats
	server  *obs.Server

	showMetrics        bool
	tracePath, memPath string
	stopCPU            func() error

	linger   time.Duration
	ledger   string
	manifest *runlog.Manifest
}

// progressEvent is the JSON payload of one "project" SSE event on
// /progress: a per-project completion or failure.
type progressEvent struct {
	Scope   string  `json:"scope"`
	Name    string  `json:"name"`
	Done    int     `json:"done"`
	Total   int     `json:"total"`
	Seconds float64 `json:"seconds"`
	Failed  bool    `json:"failed,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// snapshotEvent is the JSON payload of a "snapshot" SSE event: the
// run's rolling latency summary, published every snapshotEvery
// completions and at the end of each engine scope.
type snapshotEvent struct {
	Scope            string  `json:"scope"`
	Done             int     `json:"done"`
	Total            int     `json:"total"`
	Failed           int     `json:"failed"`
	P50Seconds       float64 `json:"p50_seconds"`
	P95Seconds       float64 `json:"p95_seconds"`
	MaxSeconds       float64 `json:"max_seconds"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
}

// snapshotEvery is the completion stride between "snapshot" SSE events.
const snapshotEvery = 25

// pipelineFlags registers the shared execution and observability flags on
// fs and returns a builder that assembles the pipeline after parsing.
func pipelineFlags(fs *flag.FlagSet) func() (*pipeline, error) {
	workers := fs.Int("workers", 0, "concurrent analysis workers (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report per-decile progress and failures on stderr")
	metrics := fs.Bool("metrics", false, "print the unified metrics report (engine latency/throughput, stage totals, cache counters) on stderr")
	cacheDir := fs.String("cache-dir", "", "persist and reuse stage results in this content-addressed cache directory")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto) to this path")
	logLevel := fs.String("log-level", "", "enable structured logs on stderr at this level (debug, info, warn, error)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile to this path at the end of the run")
	listen := fs.String("listen", "", "serve live telemetry (/metrics, /healthz, /readyz, /progress, /debug/pprof, /runs) on this address while the run executes (e.g. 127.0.0.1:8080, :0 picks a port)")
	linger := fs.Duration("linger", 0, "keep the -listen telemetry server up this long after the run finishes (ctrl-c stops it early)")
	runlogDir := fs.String("runlog-dir", "", "record the run's manifest (options, provenance, durations, cache and metrics snapshot) in this ledger directory")
	return func() (*pipeline, error) {
		p := &pipeline{showMetrics: *metrics, tracePath: *tracePath, memPath: *memProfile,
			linger: *linger, ledger: *runlogDir}
		// Any observability surface — trace, logs, the unified metrics
		// report, profiles, the telemetry server — wants the one Observer;
		// without them the pipeline runs with a nil (zero-cost) one.
		if *tracePath != "" || *logLevel != "" || *metrics || *memProfile != "" || *cpuProfile != "" || *listen != "" {
			oopts := obs.Options{Trace: *tracePath != ""}
			if *logLevel != "" {
				level, err := parseLogLevel(*logLevel)
				if err != nil {
					return nil, err
				}
				oopts.LogWriter = os.Stderr
				oopts.LogLevel = level
			}
			p.obs = obs.New(oopts)
		}
		// Process-memory gauges live in the registry (visible in /metrics
		// and the manifest's metrics snapshot); a ledger-only run still
		// tracks the peak so the manifest can record it.
		p.proc = obs.RegisterProcMetrics(p.obs.Metrics())
		if *runlogDir != "" {
			if p.proc == nil {
				p.proc = &obs.ProcStats{}
				p.proc.Sample()
			}
			p.manifest = runlog.NewManifest(fs.Name(), time.Now())
			p.manifest.Options = map[string]string{}
			fs.Visit(func(f *flag.Flag) {
				p.manifest.Options[f.Name] = f.Value.String()
			})
		}
		// The cache opens before the telemetry server so the server can
		// mount the remote tier route over it.
		if *cacheDir != "" {
			c, err := cache.New(cache.Options{Dir: *cacheDir, Obs: p.obs})
			if err != nil {
				return nil, err
			}
			p.cache = c
		}
		if *listen != "" {
			handlers := map[string]http.Handler{}
			if *runlogDir != "" {
				h := runlog.Handler(*runlogDir)
				handlers["/runs"] = h
				handlers["/runs/"] = h
				runlog.RegisterMetrics(p.obs.Metrics(), *runlogDir)
			}
			if p.cache != nil {
				// The remote cache tier: shard workers read and write this
				// run's cache at /cache/{key}, so a sharded study dedups
				// parse/diff/measure work across every worker process.
				handlers["/cache/"] = cache.TierHandler(p.cache)
			}
			srv, err := obs.Serve(obs.ServeOptions{
				Addr:     *listen,
				Registry: p.obs.Metrics(),
				Logger:   p.obs.Logger(),
				Handlers: handlers,
			})
			if err != nil {
				return nil, err
			}
			p.server = srv
			fmt.Fprintf(os.Stderr, "telemetry: %s/metrics, /healthz, /readyz, /progress, /debug/pprof\n", srv.URL())
		}
		p.exec = engine.Options{Workers: *workers, Obs: p.obs}
		var observers []func(engine.Event)
		if *progress {
			observers = append(observers, engine.NewProgress(os.Stderr).Observe)
		}
		// The metrics collector also feeds the SSE latency snapshots and
		// the ledger manifest, so either surface pulls it in.
		if *metrics || p.server != nil || p.manifest != nil {
			p.metrics = engine.NewMetrics()
			observers = append(observers, p.metrics.Observe)
		}
		if p.server != nil {
			observers = append(observers, p.publishEvent)
		}
		// Sharpen the heap-peak watermark at task boundaries — exposition
		// alone would only sample when something scrapes /metrics.
		if p.proc != nil {
			observers = append(observers, func(e engine.Event) {
				if e.Type == engine.TaskFinished || e.Type == engine.TaskFailed {
					p.proc.Sample()
				}
			})
		}
		if len(observers) > 0 {
			p.exec.OnEvent = engine.Tee(observers...)
		}
		if p.cache != nil {
			attachCacheMetrics(p.metrics, p.cache)
		}
		// Register the cache counter family even for a cache-less run (nil
		// *Cache samples as all-zero), so the unified report's schema is
		// stable whether or not -cache-dir was passed.
		p.cache.RegisterMetrics(p.obs.Metrics())
		if *cpuProfile != "" {
			stop, err := obs.StartCPUProfile(*cpuProfile)
			if err != nil {
				return nil, err
			}
			p.stopCPU = stop
		}
		return p, nil
	}
}

// publishEvent forwards one engine event to the telemetry server's
// /progress SSE stream. The first analyze-scope event also flips /readyz:
// the corpus exists and the run is measuring it.
func (p *pipeline) publishEvent(e engine.Event) {
	if e.Scope == "analyze" {
		p.server.SetReady(true)
	}
	if e.Type != engine.TaskFinished && e.Type != engine.TaskFailed {
		return
	}
	ev := progressEvent{
		Scope: e.Scope, Name: e.Name, Done: e.Done, Total: e.Total,
		Seconds: e.Elapsed.Seconds(), Failed: e.Type == engine.TaskFailed,
	}
	if e.Err != nil {
		ev.Err = e.Err.Error()
	}
	p.server.Publish("project", ev)
	if p.metrics != nil && (e.Done == e.Total || e.Done%snapshotEvery == 0) {
		p.server.Publish("snapshot", p.snapshotEvent(e.Scope))
	}
}

// snapshotEvent summarizes the metrics collector for the SSE stream.
func (p *pipeline) snapshotEvent(scope string) snapshotEvent {
	s := p.metrics.Snapshot()
	return snapshotEvent{
		Scope: scope, Done: s.Done, Total: s.Total, Failed: s.Failed,
		P50Seconds: s.P50.Seconds(), P95Seconds: s.P95.Seconds(),
		MaxSeconds: s.Max.Seconds(), ThroughputPerSec: s.Throughput,
	}
}

// recordDataset notes the analyzed corpus in the run manifest: project
// and failure counts plus the per-project failure summary.
func (p *pipeline) recordDataset(d *study.Dataset) {
	if p.manifest == nil || d == nil {
		return
	}
	p.manifest.Projects = d.Size()
	p.manifest.Failed = len(d.Failures)
	for _, f := range d.Failures {
		p.manifest.Failures = append(p.manifest.Failures,
			runlog.FailureSummary{Name: f.Name, Err: f.Err.Error()})
	}
}

// recordStream notes a streaming run's coverage in the run manifest —
// the counterpart of recordDataset for runs that never hold a Dataset.
func (p *pipeline) recordStream(s *study.StreamSummary) {
	if p.manifest == nil || s == nil {
		return
	}
	p.manifest.Projects = s.Projects
	p.manifest.Failed = len(s.Failures)
	for _, f := range s.Failures {
		p.manifest.Failures = append(p.manifest.Failures,
			runlog.FailureSummary{Name: f.Name, Err: f.Err.Error()})
	}
}

// recordSharded notes a coordinated sharded run in the manifest: the
// whole-study coverage, the per-shard run summaries, and the
// across-shard failure, cache and stage sums — so `coevo runs diff` and
// the perf gate compare whole-study numbers, not the coordinator's
// (empty) local view.
func (p *pipeline) recordSharded(res *shard.Result, shards int) {
	if p.manifest == nil || res == nil {
		return
	}
	p.manifest.Projects = res.Projects
	p.manifest.Failed = len(res.Failures)
	for _, f := range res.Failures {
		p.manifest.Failures = append(p.manifest.Failures,
			runlog.FailureSummary{Name: f.Name, Err: f.Err.Error()})
	}
	p.manifest.Shards = shards
	p.manifest.ShardRuns = res.Shards
	p.manifest.TraceID = res.TraceID
	p.manifest.Cache = res.Cache
	p.manifest.StageSeconds = res.StageSeconds
}

// recordProjects notes a project count for runs without a Dataset (gen).
func (p *pipeline) recordProjects(n int) {
	if p.manifest != nil {
		p.manifest.Projects = n
	}
}

// sealManifest fills the manifest's run summary from the metrics
// collector and registry, stamps the outcome, and writes it into the
// ledger directory.
func (p *pipeline) sealManifest(runErr error) error {
	m := p.manifest
	m.Workers = p.exec.Workers
	if p.metrics != nil {
		s := p.metrics.Snapshot()
		m.P50Seconds = s.P50.Seconds()
		m.P95Seconds = s.P95.Seconds()
		m.MaxSeconds = s.Max.Seconds()
		m.ThroughputPerSec = s.Throughput
		// A sharded run records the across-shard stage and cache sums up
		// front (recordSharded); the local collector saw none of that work,
		// so it only fills fields that are still empty.
		if len(s.StageTotals) > 0 && m.StageSeconds == nil {
			m.StageSeconds = make(map[string]float64, len(s.StageTotals))
			for stage, d := range s.StageTotals {
				m.StageSeconds[stage] = d.Seconds()
			}
		}
		if c := s.Cache; c != nil && m.Cache == nil {
			cs := &runlog.CacheStats{
				Hits: c.Hits, Misses: c.Misses, MemoryHits: c.MemoryHits,
				DiskHits: c.DiskHits, RemoteHits: c.RemoteHits,
				RemoteMisses: c.RemoteMisses, Puts: c.Puts, Corrupt: c.Corrupt,
				BytesRead: c.BytesRead, BytesWritten: c.BytesWritten,
				RemoteBytesRead:    c.RemoteBytesRead,
				RemoteBytesWritten: c.RemoteBytesWritten,
			}
			if total := c.Hits + c.Misses; total > 0 {
				cs.HitRate = float64(c.Hits) / float64(total)
			}
			m.Cache = cs
		}
	}
	p.proc.Sample()
	m.PeakHeapBytes = p.proc.Peak()
	m.Metrics = p.obs.Metrics().Snapshot()
	m.Finish(time.Now(), runErr)
	path, err := runlog.Write(p.ledger, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded run %s in %s\n", m.ID, path)
	return nil
}

// parseLogLevel maps the -log-level flag value to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", s)
}

// finish flushes the run's observability artifacts — the CPU profile, the
// unified metrics report, the trace file, the heap profile and the ledger
// manifest — then winds down the telemetry server (after -linger, so CI
// and humans can scrape a finished run before the process exits). It runs
// even when the run itself failed or was interrupted, so a cancelled
// study still leaves a loadable trace, profile and ledger entry behind.
// The first flushing error is returned; runErr only stamps the manifest
// outcome and is not re-returned.
func (p *pipeline) finish(ctx context.Context, runErr error) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if p.stopCPU != nil {
		keep(p.stopCPU())
	}
	if p.showMetrics {
		if p.metrics != nil {
			fmt.Fprintf(os.Stderr, "%s\n", p.metrics.Snapshot())
		}
		fmt.Fprintln(os.Stderr, "metrics registry:")
		keep(p.obs.Metrics().WritePrometheus(os.Stderr))
	}
	if p.tracePath != "" {
		keep(writeFile(p.tracePath, func(w io.Writer) error { return p.obs.WriteTrace(w) }))
		fmt.Fprintf(os.Stderr, "wrote trace (%d spans) to %s\n", p.obs.SpanCount(), p.tracePath)
	}
	if p.memPath != "" {
		keep(obs.WriteHeapProfile(p.memPath))
	}
	// Seal the ledger entry before lingering, so /runs already serves this
	// run while the telemetry server is still up.
	if p.manifest != nil {
		keep(p.sealManifest(runErr))
	}
	if p.server != nil {
		if p.metrics != nil {
			p.server.Publish("done", p.snapshotEvent("run"))
		}
		if p.linger > 0 && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "telemetry server lingering %s at %s (ctrl-c to stop)\n",
				p.linger, p.server.URL())
			select {
			case <-ctx.Done():
			case <-time.After(p.linger):
			}
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		keep(p.server.Shutdown(sctx))
	}
	return firstErr
}
