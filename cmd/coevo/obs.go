package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"coevo/internal/cache"
	"coevo/internal/engine"
	"coevo/internal/obs"
)

// pipeline bundles everything the corpus-wide subcommands (study, gen,
// taxa) thread through a run: the engine options, the optional result
// cache, the optional observer behind -trace/-log-level/-metrics, the
// profiling hooks, and the end-of-run flushing of all of it.
type pipeline struct {
	exec    engine.Options
	cache   *cache.Cache
	obs     *obs.Observer
	metrics *engine.Metrics

	showMetrics        bool
	tracePath, memPath string
	stopCPU            func() error
}

// pipelineFlags registers the shared execution and observability flags on
// fs and returns a builder that assembles the pipeline after parsing.
func pipelineFlags(fs *flag.FlagSet) func() (*pipeline, error) {
	workers := fs.Int("workers", 0, "concurrent analysis workers (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report per-decile progress and failures on stderr")
	metrics := fs.Bool("metrics", false, "print the unified metrics report (engine latency/throughput, stage totals, cache counters) on stderr")
	cacheDir := fs.String("cache-dir", "", "persist and reuse stage results in this content-addressed cache directory")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto) to this path")
	logLevel := fs.String("log-level", "", "enable structured logs on stderr at this level (debug, info, warn, error)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile to this path at the end of the run")
	return func() (*pipeline, error) {
		p := &pipeline{showMetrics: *metrics, tracePath: *tracePath, memPath: *memProfile}
		// Any observability surface — trace, logs, the unified metrics
		// report, profiles — wants the one Observer; without them the
		// pipeline runs with a nil (zero-cost) one.
		if *tracePath != "" || *logLevel != "" || *metrics || *memProfile != "" || *cpuProfile != "" {
			oopts := obs.Options{Trace: *tracePath != ""}
			if *logLevel != "" {
				level, err := parseLogLevel(*logLevel)
				if err != nil {
					return nil, err
				}
				oopts.LogWriter = os.Stderr
				oopts.LogLevel = level
			}
			p.obs = obs.New(oopts)
		}
		p.exec = engine.Options{Workers: *workers, Obs: p.obs}
		var observers []func(engine.Event)
		if *progress {
			observers = append(observers, engine.NewProgress(os.Stderr).Observe)
		}
		if *metrics {
			p.metrics = engine.NewMetrics()
			observers = append(observers, p.metrics.Observe)
		}
		if len(observers) > 0 {
			p.exec.OnEvent = engine.Tee(observers...)
		}
		if *cacheDir != "" {
			c, err := cache.New(cache.Options{Dir: *cacheDir, Obs: p.obs})
			if err != nil {
				return nil, err
			}
			p.cache = c
			attachCacheMetrics(p.metrics, c)
		}
		// Register the cache counter family even for a cache-less run (nil
		// *Cache samples as all-zero), so the unified report's schema is
		// stable whether or not -cache-dir was passed.
		p.cache.RegisterMetrics(p.obs.Metrics())
		if *cpuProfile != "" {
			stop, err := obs.StartCPUProfile(*cpuProfile)
			if err != nil {
				return nil, err
			}
			p.stopCPU = stop
		}
		return p, nil
	}
}

// parseLogLevel maps the -log-level flag value to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", s)
}

// finish flushes the run's observability artifacts: the CPU profile, the
// unified metrics report, the trace file and the heap profile. It runs
// even when the run itself failed or was interrupted, so a cancelled
// study still leaves a loadable trace and profile behind. The first
// flushing error is returned.
func (p *pipeline) finish() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if p.stopCPU != nil {
		keep(p.stopCPU())
	}
	if p.showMetrics {
		if p.metrics != nil {
			fmt.Fprintf(os.Stderr, "%s\n", p.metrics.Snapshot())
		}
		fmt.Fprintln(os.Stderr, "metrics registry:")
		keep(p.obs.Metrics().WritePrometheus(os.Stderr))
	}
	if p.tracePath != "" {
		keep(writeFile(p.tracePath, func(w io.Writer) error { return p.obs.WriteTrace(w) }))
		fmt.Fprintf(os.Stderr, "wrote trace (%d spans) to %s\n", p.obs.SpanCount(), p.tracePath)
	}
	if p.memPath != "" {
		keep(obs.WriteHeapProfile(p.memPath))
	}
	return firstErr
}
