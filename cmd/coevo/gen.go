package main

import (
	"context"
	"fmt"
	"os"
	"strconv"

	"coevo/internal/corpus"
	"coevo/internal/report"
	"coevo/internal/taxa"
)

// runGen generates the corpus and summarizes it per taxon. The default
// streaming mode visits projects in corpus order and releases each one
// after it is counted (and listed), so the whole corpus is never
// resident; -stream=false keeps the collect-all path.
func runGen(ctx context.Context, args []string) error {
	fs := newFlagSet("gen")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	list := fs.Bool("list", false, "list every generated project")
	streamMode := fs.Bool("stream", true, "generate and summarize one project at a time instead of materializing the corpus")
	dialect := dialectFlag(fs)
	buildPipeline := pipelineFlags(fs)
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	// gen only counts raw DDL versions, never parses them: the flag is
	// accepted (and validated) for CLI symmetry with study/taxa/ingest.
	if _, err := resolveDialect(*dialect); err != nil {
		return err
	}
	p, err := buildPipeline()
	if err != nil {
		return err
	}

	cfg := corpus.DefaultConfig(*seed)
	cfg.Exec = p.exec
	cfg.Cache = p.cache
	cfg.Obs = p.obs

	type agg struct {
		projects, commits, schemaVersions int
	}
	perTaxon := map[taxa.Taxon]*agg{}
	for _, taxon := range taxa.All() {
		perTaxon[taxon] = &agg{}
	}
	visit := func(pr *corpus.Project) error {
		a := perTaxon[pr.Taxon]
		a.projects++
		a.commits += pr.Repo.CommitCount()
		a.schemaVersions += len(pr.Repo.FileVersions(pr.DDLPath))
		if *list {
			fmt.Printf("%-24s %-22s %4d commits  ddl=%s\n",
				pr.Name, pr.Taxon, pr.Repo.CommitCount(), pr.DDLPath)
		}
		return nil
	}

	var n int
	if *streamMode {
		n, err = corpus.EachContext(ctx, cfg, visit)
	} else {
		var projects []*corpus.Project
		projects, err = corpus.GenerateContext(ctx, cfg)
		for _, pr := range projects {
			visit(pr) //nolint:errcheck // visit never fails here
		}
		n = len(projects)
	}
	p.recordProjects(n)
	ferr := p.finish(ctx, err)
	if err != nil {
		return err
	}
	if ferr != nil {
		return ferr
	}

	tbl := &report.Table{
		Title:  fmt.Sprintf("Corpus summary (seed %d, %d projects)", *seed, n),
		Header: []string{"Taxon", "Projects", "Commits", "Schema versions"},
	}
	totals := agg{}
	for _, taxon := range taxa.All() {
		a := perTaxon[taxon]
		tbl.AddRow(taxon.String(), strconv.Itoa(a.projects), strconv.Itoa(a.commits), strconv.Itoa(a.schemaVersions))
		totals.projects += a.projects
		totals.commits += a.commits
		totals.schemaVersions += a.schemaVersions
	}
	tbl.AddRow("TOTAL", strconv.Itoa(totals.projects), strconv.Itoa(totals.commits), strconv.Itoa(totals.schemaVersions))
	return tbl.Render(os.Stdout)
}
