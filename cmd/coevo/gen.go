package main

import (
	"context"
	"fmt"
	"os"
	"strconv"

	"coevo/internal/corpus"
	"coevo/internal/report"
	"coevo/internal/taxa"
)

// runGen generates the corpus and summarizes it per taxon.
func runGen(ctx context.Context, args []string) error {
	fs := newFlagSet("gen")
	seed := fs.Int64("seed", 2023, "corpus generation seed")
	list := fs.Bool("list", false, "list every generated project")
	buildPipeline := pipelineFlags(fs)
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	p, err := buildPipeline()
	if err != nil {
		return err
	}

	cfg := corpus.DefaultConfig(*seed)
	cfg.Exec = p.exec
	cfg.Cache = p.cache
	cfg.Obs = p.obs
	projects, err := corpus.GenerateContext(ctx, cfg)
	p.recordProjects(len(projects))
	ferr := p.finish(ctx, err)
	if err != nil {
		return err
	}
	if ferr != nil {
		return ferr
	}

	type agg struct {
		projects, commits, schemaVersions int
	}
	perTaxon := map[taxa.Taxon]*agg{}
	for _, taxon := range taxa.All() {
		perTaxon[taxon] = &agg{}
	}
	for _, p := range projects {
		a := perTaxon[p.Taxon]
		a.projects++
		a.commits += p.Repo.CommitCount()
		a.schemaVersions += len(p.Repo.FileVersions(p.DDLPath))
		if *list {
			fmt.Printf("%-24s %-22s %4d commits  ddl=%s\n",
				p.Name, p.Taxon, p.Repo.CommitCount(), p.DDLPath)
		}
	}

	tbl := &report.Table{
		Title:  fmt.Sprintf("Corpus summary (seed %d, %d projects)", *seed, len(projects)),
		Header: []string{"Taxon", "Projects", "Commits", "Schema versions"},
	}
	totals := agg{}
	for _, taxon := range taxa.All() {
		a := perTaxon[taxon]
		tbl.AddRow(taxon.String(), strconv.Itoa(a.projects), strconv.Itoa(a.commits), strconv.Itoa(a.schemaVersions))
		totals.projects += a.projects
		totals.commits += a.commits
		totals.schemaVersions += a.schemaVersions
	}
	tbl.AddRow("TOTAL", strconv.Itoa(totals.projects), strconv.Itoa(totals.commits), strconv.Itoa(totals.schemaVersions))
	return tbl.Render(os.Stdout)
}
