package main

import (
	"flag"

	"coevo/internal/sqlddl"
)

// dialectFlag registers the -dialect flag shared by every subcommand
// that parses DDL. The value is resolved with resolveDialect after
// parsing, so aliases ("pg", "sqlite3", "tsql", ...) work everywhere.
func dialectFlag(fs *flag.FlagSet) *string {
	return fs.String("dialect", "",
		"SQL dialect adapter for DDL parsing: generic (default), mysql, postgres, sqlite, mssql, or auto (detect per version)")
}

// resolveDialect validates a -dialect value; an unknown name fails the
// subcommand before any work starts.
func resolveDialect(raw string) (sqlddl.Dialect, error) {
	return sqlddl.ParseDialect(raw)
}
