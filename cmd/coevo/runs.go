package main

import (
	"fmt"
	"os"

	"coevo/internal/runlog"
)

// runRuns administers the persistent run ledger: list every recorded
// run, show one manifest, or diff two runs' metrics with regression
// flagging. Run ids resolve as in runlog.Load: exact, unique prefix, or
// the special names "latest" and "previous".
func runRuns(args []string) error {
	fs := newFlagSet("runs")
	dir := fs.String("runlog-dir", "runs", "run-ledger directory to read")
	threshold := fs.Float64("threshold", runlog.DefaultThreshold,
		"relative drift that flags a regression in 'runs diff' (0.10 = 10%)")
	jsonOut := fs.Bool("json", false, "print 'runs list' as a JSON summary array (the /runs document)")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: coevo runs [flags] <operation>

operations:
  list                 list every recorded run, oldest first
  show [id]            print one run's manifest summary (default: latest)
  diff [old] [new]     compare two runs metric by metric and flag
                       regressions beyond -threshold
                       (default: previous latest)

ids resolve exactly, by unique prefix, or as "latest"/"previous".

flags:
`)
		fs.PrintDefaults()
	}
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	op := fs.Arg(0)
	switch op {
	case "list":
		runs, err := runlog.List(*dir)
		if err != nil {
			return err
		}
		if *jsonOut {
			summaries := make([]runlog.Summary, 0, len(runs))
			for _, m := range runs {
				summaries = append(summaries, runlog.Summarize(m))
			}
			return writeIndentedJSON(os.Stdout, summaries)
		}
		return runlog.WriteList(os.Stdout, runs)
	case "show":
		id := fs.Arg(1)
		if id == "" {
			id = "latest"
		}
		m, err := runlog.Load(*dir, id)
		if err != nil {
			return err
		}
		return runlog.WriteManifest(os.Stdout, m)
	case "diff":
		oldID, newID := fs.Arg(1), fs.Arg(2)
		if oldID == "" {
			oldID, newID = "previous", "latest"
		} else if newID == "" {
			newID = "latest"
		}
		oldRun, err := runlog.Load(*dir, oldID)
		if err != nil {
			return err
		}
		newRun, err := runlog.Load(*dir, newID)
		if err != nil {
			return err
		}
		r := runlog.Diff(oldRun, newRun, runlog.DiffOptions{Threshold: *threshold})
		if err := r.Write(os.Stdout); err != nil {
			return err
		}
		if r.Regressions > 0 {
			return fmt.Errorf("%d metric regression(s) between %s and %s", r.Regressions, oldRun.ID, newRun.ID)
		}
		return nil
	case "":
		fs.Usage()
		return fmt.Errorf("runs: missing operation (list, show or diff)")
	default:
		return fmt.Errorf("runs: unknown operation %q (want list, show or diff)", op)
	}
}
