package main

import (
	"encoding/json"
	"fmt"
	"os"

	"coevo/internal/runlog"
)

// runRuns administers the persistent run ledger: list every recorded
// run, show one manifest, or diff two runs' metrics with regression
// flagging. Run ids resolve as in runlog.Load: exact, unique prefix, or
// the special names "latest" and "previous".
func runRuns(args []string) error {
	fs := newFlagSet("runs")
	dir := fs.String("runlog-dir", "runs", "run-ledger directory to read")
	threshold := fs.Float64("threshold", runlog.DefaultThreshold,
		"relative drift that flags a regression in 'runs diff' (0.10 = 10%)")
	jsonOut := fs.Bool("json", false, "print 'runs list' as a JSON summary array (the /runs document) and 'runs diff' as the structured regression report")
	scale := fs.Float64("scale", 1,
		"multiply an imported run's timing/alloc metrics by this factor (used by the perf-gate self-test to fabricate a regressed run)")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: coevo runs [flags] <operation>

operations:
  list                 list every recorded run, oldest first
  show [id]            print one run's manifest summary (default: latest)
  diff [old] [new]     compare two runs metric by metric and flag
                       regressions beyond -threshold
                       (default: previous latest)
  import <file>        copy a run manifest into the ledger, from either a
                       bare manifest JSON or a bench report's embedded
                       "runlog" block; prints the imported run id

ids resolve exactly, by unique prefix, or as "latest"/"previous".

flags:
`)
		fs.PrintDefaults()
	}
	if ok, err := parseFlags(fs, args); !ok {
		return err
	}
	op := fs.Arg(0)
	switch op {
	case "list":
		runs, err := runlog.List(*dir)
		if err != nil {
			return err
		}
		if *jsonOut {
			summaries := make([]runlog.Summary, 0, len(runs))
			for _, m := range runs {
				summaries = append(summaries, runlog.Summarize(m))
			}
			return writeIndentedJSON(os.Stdout, summaries)
		}
		return runlog.WriteList(os.Stdout, runs)
	case "show":
		id := fs.Arg(1)
		if id == "" {
			id = "latest"
		}
		m, err := runlog.Load(*dir, id)
		if err != nil {
			return err
		}
		return runlog.WriteManifest(os.Stdout, m)
	case "diff":
		oldID, newID := fs.Arg(1), fs.Arg(2)
		if oldID == "" {
			oldID, newID = "previous", "latest"
		} else if newID == "" {
			newID = "latest"
		}
		oldRun, err := runlog.Load(*dir, oldID)
		if err != nil {
			return err
		}
		newRun, err := runlog.Load(*dir, newID)
		if err != nil {
			return err
		}
		r := runlog.Diff(oldRun, newRun, runlog.DiffOptions{Threshold: *threshold})
		// -json emits the structured report (what the perf gate parses);
		// either way regressions still fail the command, so exit codes
		// gate CI identically in both modes.
		if *jsonOut {
			if err := writeIndentedJSON(os.Stdout, r); err != nil {
				return err
			}
		} else if err := r.Write(os.Stdout); err != nil {
			return err
		}
		if r.Regressions > 0 {
			return fmt.Errorf("%d metric regression(s) between %s and %s", r.Regressions, oldRun.ID, newRun.ID)
		}
		return nil
	case "import":
		path := fs.Arg(1)
		if path == "" {
			return fmt.Errorf("runs import: missing manifest or bench-report file")
		}
		m, err := readImportable(path)
		if err != nil {
			return err
		}
		if *scale != 1 {
			scaleManifest(m, *scale)
			// A distinct id keeps a scaled copy from overwriting the
			// unscaled entry when both land in one ledger.
			m.ID += "-scaled"
		}
		written, err := runlog.Write(*dir, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "imported %s into %s\n", path, written)
		fmt.Println(m.ID)
		return nil
	case "":
		fs.Usage()
		return fmt.Errorf("runs: missing operation (list, show, diff or import)")
	default:
		return fmt.Errorf("runs: unknown operation %q (want list, show, diff or import)", op)
	}
}

// readImportable loads a run manifest from path, accepting either a bare
// manifest JSON or a bench report that embeds one under "runlog" — the
// shape of a committed BENCH_*.json baseline.
func readImportable(path string) (*runlog.Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report struct {
		Runlog *runlog.Manifest `json:"runlog"`
	}
	if err := json.Unmarshal(raw, &report); err == nil && report.Runlog != nil && report.Runlog.ID != "" {
		return report.Runlog, nil
	}
	var m runlog.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("runs import: %s: %w", path, err)
	}
	if m.ID == "" {
		return nil, fmt.Errorf("runs import: %s carries no run manifest (no \"runlog\" block and no top-level id)", path)
	}
	return &m, nil
}

// scaleManifest multiplies every cost metric by factor, fabricating a
// uniformly slower (factor > 1) or faster run: wall times, per-stage
// seconds, heap peak and the metrics snapshot scale up; throughput
// scales down. The perf-gate self-test uses this to prove the gate
// fails on a known regression.
func scaleManifest(m *runlog.Manifest, factor float64) {
	m.DurationSeconds *= factor
	m.P50Seconds *= factor
	m.P95Seconds *= factor
	m.MaxSeconds *= factor
	m.PeakHeapBytes = uint64(float64(m.PeakHeapBytes) * factor)
	if factor > 0 {
		m.ThroughputPerSec /= factor
	}
	for k, v := range m.StageSeconds {
		m.StageSeconds[k] = v * factor
	}
	for k, v := range m.Metrics {
		m.Metrics[k] = v * factor
	}
}
