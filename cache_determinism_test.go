// Differential acceptance tests for the content-addressed result cache:
// a study run must render byte-identical artifacts with no cache, a cold
// cache, a warm cache, and a deliberately corrupted cache, at any worker
// count. The cache may only ever change how fast an answer arrives,
// never the answer.
package coevo_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"coevo"
	"coevo/internal/corpus"
)

// cacheTestConfig is a small one-project-per-taxon corpus, enough to
// exercise every pipeline stage while staying fast.
func cacheTestConfig(seed int64) coevo.CorpusConfig {
	cfg := coevo.DefaultCorpusConfig(seed)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 2
		if profiles[i].DurationMonths[1] > 30 {
			profiles[i].DurationMonths[1] = 30
		}
	}
	cfg.Profiles = profiles
	return cfg
}

// artifactHashes runs generate + analyze under the given cache and worker
// count and returns the sha256 of every rendered artifact.
func artifactHashes(t *testing.T, seed int64, workers int, c *coevo.Cache) map[string]string {
	t.Helper()
	cfg := cacheTestConfig(seed)
	cfg.Cache = c
	cfg.Exec.Workers = workers
	projects, err := coevo.GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := coevo.DefaultOptions()
	opts.Cache = c
	opts.Exec.Workers = workers
	d, err := coevo.AnalyzeCorpus(projects, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.Failures); n != 0 {
		t.Fatalf("%d projects failed: %+v", n, d.Failures)
	}
	hashes := map[string]string{}
	for name, write := range renderArtifacts(d) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hashes[name] = fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
	}
	return hashes
}

// corruptEveryEntry flips one payload byte in every entry of an on-disk
// cache store, so every subsequent read must take the self-heal path.
func corruptEveryEntry(t *testing.T, dir string) int {
	t.Helper()
	corrupted := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		raw[len(raw)-1] ^= 0xA5
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return err
		}
		corrupted++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no cache entries found to corrupt")
	}
	return corrupted
}

// TestStudyCacheByteIdentical: the golden differential harness. The
// uncached run is the reference; cold-cache, warm-cache and
// corrupted-cache runs must hash identically to it, at one worker and at
// NumCPU workers.
func TestStudyCacheByteIdentical(t *testing.T) {
	const seed = 2023
	reference := artifactHashes(t, seed, 1, nil)

	for _, workers := range []int{1, runtime.NumCPU()} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "cache")

			cold, err := coevo.NewCache(coevo.CacheOptions{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := artifactHashes(t, seed, workers, cold); !hashesEqual(got, reference) {
				t.Errorf("cold cache run differs from uncached reference:\n%v\n%v", got, reference)
			}
			if s := cold.Stats(); s.Puts == 0 {
				t.Fatalf("cold run stored nothing: %s", s)
			}

			warm, err := coevo.NewCache(coevo.CacheOptions{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := artifactHashes(t, seed, workers, warm); !hashesEqual(got, reference) {
				t.Errorf("warm cache run differs from uncached reference:\n%v\n%v", got, reference)
			}
			if s := warm.Stats(); s.Hits == 0 || s.DiskHits == 0 {
				t.Fatalf("warm run never hit the disk store: %s", s)
			}

			corruptEveryEntry(t, dir)
			healed, err := coevo.NewCache(coevo.CacheOptions{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := artifactHashes(t, seed, workers, healed); !hashesEqual(got, reference) {
				t.Errorf("corrupted cache run differs from uncached reference:\n%v\n%v", got, reference)
			}
			s := healed.Stats()
			if s.Corrupt == 0 {
				t.Errorf("corrupted entries never detected: %s", s)
			}
			if s.Hits > 0 && s.MemoryHits < s.Hits {
				t.Errorf("corrupted run should only hit entries it rewrote itself: %s", s)
			}
		})
	}
}

func hashesEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestFullStudyWarmCacheMatchesSerialGolden pins the cached pipeline to
// the pre-engine serial golden hashes over the full 195-project corpus:
// a cold and then a warm cached run must both reproduce the published
// artifacts bit-for-bit.
func TestFullStudyWarmCacheMatchesSerialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus study in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "cache")
	for _, phase := range []string{"cold", "warm"} {
		c, err := coevo.NewCache(coevo.CacheOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		cfg := coevo.DefaultCorpusConfig(2023)
		cfg.Cache = c
		projects, err := coevo.GenerateCorpus(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := coevo.DefaultOptions()
		opts.Cache = c
		d, err := coevo.AnalyzeCorpus(projects, opts)
		if err != nil {
			t.Fatal(err)
		}
		if d.Size() != 195 {
			t.Fatalf("%s: Size = %d, want 195", phase, d.Size())
		}
		for name, write := range renderArtifacts(d) {
			var buf bytes.Buffer
			if err := write(&buf); err != nil {
				t.Fatalf("%s: %s: %v", phase, name, err)
			}
			got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
			if got != serialGolden[name] {
				t.Errorf("%s: %s: hash %s differs from serial golden %s", phase, name, got, serialGolden[name])
			}
		}
		if phase == "warm" {
			if s := c.Stats(); s.Hits == 0 {
				t.Errorf("warm phase never hit: %s", s)
			}
		}
	}
}
