# Build/verify targets for the coevo toolkit.

GO ?= go

.PHONY: build test verify bench race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the full gate: compile everything, vet, and run the test
# suite under the race detector — the execution engine's concurrency must
# stay race-clean.
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
