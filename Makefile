# Build/verify targets for the coevo toolkit.

GO ?= go

.PHONY: build test verify bench microbench race vet fuzz-smoke smoke stream-smoke jobs-smoke trace-smoke shard-smoke parse-health-smoke perf-gate perf-gate-self-test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the full gate: compile everything, vet, and run the test
# suite under the race detector — the execution engine's concurrency must
# stay race-clean.
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

# bench times full study runs — cold and warm cache, workers=1 vs
# NumCPU, batch vs streaming — and writes the machine-readable report
# (per-case peak heap, allocs/project, alloc bytes/project) CI archives
# with every build, plus a ledger manifest 'coevo runs diff' can compare
# across builds. The Go benchmark pass adds the streaming-vs-batch
# allocation profile. BENCH_SHARDS adds the sharded partition/merge
# cell (the perf gate's own bench run omits it so its matrix shape
# matches pre-shard baselines).
BENCH_OUT ?= BENCH_pr7.json
BENCH_SHARDS ?= 3
RUNLOG_DIR ?= runs

bench:
	$(GO) run ./cmd/coevo bench -shards $(BENCH_SHARDS) -out $(BENCH_OUT) -runlog-dir $(RUNLOG_DIR)
	$(GO) test -run NONE -bench BenchmarkStudyStreaming -benchmem .

# perf-gate is the hard CI performance gate: a fresh workers=1 bench run
# is diffed against the baseline manifest embedded in the committed
# BENCH report, and any wall-time / allocs-per-project / peak-heap
# regression past PERF_GATE_THRESHOLD (default 25%) fails the build.
# The self-test fabricates a 1.5x-regressed run and asserts the gate
# catches it.
PERF_BASELINE ?= BENCH_pr7.json

perf-gate:
	./scripts/perf-gate.sh $(PERF_BASELINE)

perf-gate-self-test:
	./scripts/perf-gate.sh --self-test $(PERF_BASELINE)

# smoke runs a full study with the live telemetry plane enabled and
# checks every endpoint of the embedded server answers while the process
# lingers; CI runs this against a random port.
SMOKE_ADDR ?= 127.0.0.1:9188

smoke:
	./scripts/telemetry-smoke.sh $(SMOKE_ADDR) $(RUNLOG_DIR)

# jobs-smoke starts the analysis service, submits a study over the
# /jobs HTTP API, asserts its figures match the same-seed CLI run byte
# for byte, and that a duplicate submission from a second tenant is
# served from the shared result cache.
JOBS_SMOKE_ADDR ?= 127.0.0.1:9288
JOBS_SMOKE_WORK ?= jobs-smoke-work

jobs-smoke:
	./scripts/jobs-smoke.sh $(JOBS_SMOKE_ADDR) $(JOBS_SMOKE_WORK)

# trace-smoke proves end-to-end correlation: one submitted traceparent's
# trace id must surface in the job record, the sealed run manifest, the
# access log and the exported span timeline (queue-wait span included),
# and a forced-failure job must leave a correlated flight-recorder dump.
TRACE_SMOKE_ADDR ?= 127.0.0.1:9289
TRACE_SMOKE_WORK ?= trace-smoke-work

trace-smoke:
	./scripts/trace-smoke.sh $(TRACE_SMOKE_ADDR) $(TRACE_SMOKE_WORK)

# stream-smoke runs a corpus ~10x the paper's through the streaming
# pipeline under a GOMEMLIMIT the batch path cannot fit in, and asserts
# the ledger-recorded peak heap stayed under the cap (CHECK_BATCH=1 also
# proves batch exceeds it).
STREAM_SMOKE_PER_TAXON ?= 334
STREAM_SMOKE_RUNLOG ?= stream-smoke-runs

stream-smoke:
	./scripts/stream-smoke.sh $(STREAM_SMOKE_PER_TAXON) $(STREAM_SMOKE_RUNLOG)

# shard-smoke runs a ~2000-project study across 3 spawned worker
# processes and asserts the merged figures and CSV are byte-identical to
# the single-process reference (cold and warm cache), that the warm run
# hits the remote cache tier, and that every shard manifest carries the
# coordinator's trace id.
SHARD_SMOKE_PER_TAXON ?= 334
SHARD_SMOKE_WORK ?= shard-smoke-work

shard-smoke:
	./scripts/shard-smoke.sh $(SHARD_SMOKE_PER_TAXON) $(SHARD_SMOKE_WORK)

# parse-health-smoke runs `coevo parse` over the messy per-dialect DDL
# fixture corpus: every fixture must yield statements, every diagnostic
# must carry a taxonomy code, and auto-detection must agree with the
# explicit dialect. Reports land in PARSE_HEALTH_OUT for CI upload.
PARSE_HEALTH_OUT ?= parse-health

parse-health-smoke:
	./scripts/parse-health-smoke.sh $(PARSE_HEALTH_OUT)

# microbench runs the per-figure/table and ablation Go benchmarks.
microbench:
	$(GO) test -bench=. -benchmem ./...

# fuzz-smoke gives each fuzz target a short budget — enough to shake out
# shallow regressions in the parser round-trip and diff invariants without
# a dedicated fuzzing box.
FUZZTIME ?= 30s

# FuzzParseLenient sweeps every dialect (plus Auto) per input;
# FuzzParseValueCodec round-trips partial scripts through the versioned
# parse-value codec.
# FuzzPartialFiguresCodec hammers the sharded-study partial-figures
# decoder: no panic on arbitrary bytes, canonical re-encoding idempotent.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzParseLenient -fuzztime $(FUZZTIME) ./internal/sqlddl
	$(GO) test -run NONE -fuzz FuzzParseValueCodec -fuzztime $(FUZZTIME) ./internal/schema
	$(GO) test -run NONE -fuzz FuzzCompare -fuzztime $(FUZZTIME) ./internal/schemadiff
	$(GO) test -run NONE -fuzz FuzzPartialFiguresCodec -fuzztime $(FUZZTIME) ./internal/study
