// Determinism acceptance test for the execution engine: the study's
// rendered figures and CSV export must be byte-identical at any worker
// count, and identical to the golden hashes captured from the pre-engine
// serial implementation — parallelism must never perturb a published
// number.
package coevo_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"coevo"
	"coevo/internal/study"
)

// serialGolden maps artifact name to the sha256 of its rendered bytes for
// seed 2023, captured from the serial (pre-engine) implementation.
var serialGolden = map[string]string{
	"figure4": "242acedabfc89f39ec8cfc30a8cf40e887f5676e8ad388fbf3beab4c89060a68",
	"figure5": "74a1c631ce751feeac37f255518ec804ce82b9c9bf31eaaf09e583e10ef67bea",
	"figure6": "36e3c7aee8a50e745d99c88c6ec774255889237ba848c083530b27e6fe6cc3ef",
	"figure7": "58997b440b12f7cd9d48052e3260663eac9351d1ff365eb5bd5b561066e76eb0",
	"figure8": "e63eb92b2cddfbb558487e465c3f030e01a335090b0ce54711032d5574c7d696",
	"csv":     "805d5e7aef103a10162e4dd7a5e1ac63f780ebf482856904b485776770f1464b",
}

// renderArtifacts produces every golden-checked artifact of a dataset.
func renderArtifacts(d *coevo.Dataset) map[string]func(io.Writer) error {
	return map[string]func(io.Writer) error{
		"figure4": func(w io.Writer) error { return coevo.WriteSyncHistogram(w, d.SynchronicityHistogram(0.10, 5)) },
		"figure5": func(w io.Writer) error { return coevo.WriteScatter(w, d.DurationSynchronicityScatter()) },
		"figure6": func(w io.Writer) error { return coevo.WriteAdvanceTable(w, d.AdvanceBreakdown()) },
		"figure7": func(w io.Writer) error { return coevo.WriteAlwaysAdvance(w, d.AlwaysAdvance()) },
		"figure8": func(w io.Writer) error { return coevo.WriteAttainment(w, d.Attainment()) },
		"csv":     func(w io.Writer) error { return coevo.WriteDatasetCSV(w, d) },
	}
}

// TestStudyDeterministicWithObserver runs the full study with every
// observability surface live — tracing, debug logging, metrics — and
// checks the rendered artifacts against the same serial golden hashes:
// observation must never perturb a published number.
func TestStudyDeterministicWithObserver(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus study in -short mode")
	}
	observer := coevo.NewObserver(coevo.ObserverOptions{
		Trace:     true,
		LogWriter: io.Discard,
		LogLevel:  slog.LevelDebug,
	})
	opts := study.DefaultOptions()
	opts.Exec.Workers = 8
	opts.Obs = observer
	d, err := study.Run(context.Background(), 2023, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(d.Failures) != 0 {
		t.Fatalf("unexpected failures: %+v", d.Failures)
	}
	for name, write := range renderArtifacts(d) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
		if got != serialGolden[name] {
			t.Errorf("%s: hash %s differs from serial golden %s (observer must not perturb output)", name, got, serialGolden[name])
		}
	}

	// The observer must have captured the run: a loadable Chrome trace
	// with spans for both pipeline halves, and engine metrics for the
	// generate and analyze scopes.
	var trace bytes.Buffer
	if err := observer.WriteTrace(&trace); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if observer.SpanCount() < 2*195 {
		t.Errorf("SpanCount = %d, want at least one span per project per pipeline half", observer.SpanCount())
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"run", "generate", "analyze"} {
		if !names[want] {
			t.Errorf("trace lacks the %q span", want)
		}
	}
	var metrics bytes.Buffer
	if err := observer.Metrics().WritePrometheus(&metrics); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{
		`coevo_engine_tasks_total{run="generate"} 195`,
		`coevo_engine_tasks_total{run="analyze"} 195`,
		`coevo_engine_task_seconds_count{run="analyze"} 195`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}
}

// TestStudyDeterministicWithTelemetryServer runs the full study with the
// embedded telemetry server live — /metrics scraped over HTTP mid-run,
// every engine event published to the /progress SSE hub — and checks the
// rendered artifacts against the serial golden hashes: serving telemetry
// must never perturb a published number.
func TestStudyDeterministicWithTelemetryServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus study in -short mode")
	}
	observer := coevo.NewObserver(coevo.ObserverOptions{})
	srv, err := coevo.ServeTelemetry(coevo.TelemetryOptions{
		Addr: "127.0.0.1:0", Registry: observer.Metrics(),
	})
	if err != nil {
		t.Fatalf("ServeTelemetry: %v", err)
	}
	defer srv.Shutdown(context.Background())

	opts := study.DefaultOptions()
	opts.Exec.Workers = 8
	opts.Obs = observer
	opts.Exec.OnEvent = func(e coevo.ExecEvent) {
		if e.Scope == "analyze" {
			srv.SetReady(true)
		}
		srv.Publish("project", map[string]any{"name": e.Name, "done": e.Done})
	}
	d, err := study.Run(context.Background(), 2023, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for name, write := range renderArtifacts(d) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
		if got != serialGolden[name] {
			t.Errorf("%s: hash %s differs from serial golden %s (telemetry server must not perturb output)", name, got, serialGolden[name])
		}
	}

	// The server must expose the finished run's engine series over HTTP.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	exposition, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if want := `coevo_engine_tasks_total{run="analyze"} 195`; !strings.Contains(string(exposition), want) {
		t.Errorf("live /metrics lacks %q", want)
	}
	resp, err = http.Get(srv.URL() + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after analysis = %v, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestStudyDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus study in -short mode")
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := study.DefaultOptions()
			opts.Exec.Workers = workers
			d, err := study.Run(context.Background(), 2023, opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(d.Failures) != 0 {
				t.Fatalf("unexpected failures: %+v", d.Failures)
			}
			if d.Size() != 195 {
				t.Fatalf("Size = %d, want 195", d.Size())
			}
			for name, write := range renderArtifacts(d) {
				var buf bytes.Buffer
				if err := write(&buf); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
				if got != serialGolden[name] {
					t.Errorf("%s: hash %s differs from serial golden %s", name, got, serialGolden[name])
				}
			}
		})
	}
}
