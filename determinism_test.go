// Determinism acceptance test for the execution engine: the study's
// rendered figures and CSV export must be byte-identical at any worker
// count, and identical to the golden hashes captured from the pre-engine
// serial implementation — parallelism must never perturb a published
// number.
package coevo_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"testing"

	"coevo"
	"coevo/internal/study"
)

// serialGolden maps artifact name to the sha256 of its rendered bytes for
// seed 2023, captured from the serial (pre-engine) implementation.
var serialGolden = map[string]string{
	"figure4": "242acedabfc89f39ec8cfc30a8cf40e887f5676e8ad388fbf3beab4c89060a68",
	"figure5": "74a1c631ce751feeac37f255518ec804ce82b9c9bf31eaaf09e583e10ef67bea",
	"figure6": "36e3c7aee8a50e745d99c88c6ec774255889237ba848c083530b27e6fe6cc3ef",
	"figure7": "58997b440b12f7cd9d48052e3260663eac9351d1ff365eb5bd5b561066e76eb0",
	"figure8": "e63eb92b2cddfbb558487e465c3f030e01a335090b0ce54711032d5574c7d696",
	"csv":     "805d5e7aef103a10162e4dd7a5e1ac63f780ebf482856904b485776770f1464b",
}

// renderArtifacts produces every golden-checked artifact of a dataset.
func renderArtifacts(d *coevo.Dataset) map[string]func(io.Writer) error {
	return map[string]func(io.Writer) error{
		"figure4": func(w io.Writer) error { return coevo.WriteSyncHistogram(w, d.SynchronicityHistogram(0.10, 5)) },
		"figure5": func(w io.Writer) error { return coevo.WriteScatter(w, d.DurationSynchronicityScatter()) },
		"figure6": func(w io.Writer) error { return coevo.WriteAdvanceTable(w, d.AdvanceBreakdown()) },
		"figure7": func(w io.Writer) error { return coevo.WriteAlwaysAdvance(w, d.AlwaysAdvance()) },
		"figure8": func(w io.Writer) error { return coevo.WriteAttainment(w, d.Attainment()) },
		"csv":     func(w io.Writer) error { return coevo.WriteDatasetCSV(w, d) },
	}
}

func TestStudyDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus study in -short mode")
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := study.DefaultOptions()
			opts.Exec.Workers = workers
			d, err := study.Run(context.Background(), 2023, opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(d.Failures) != 0 {
				t.Fatalf("unexpected failures: %+v", d.Failures)
			}
			if d.Size() != 195 {
				t.Fatalf("Size = %d, want 195", d.Size())
			}
			for name, write := range renderArtifacts(d) {
				var buf bytes.Buffer
				if err := write(&buf); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
				if got != serialGolden[name] {
					t.Errorf("%s: hash %s differs from serial golden %s", name, got, serialGolden[name])
				}
			}
		})
	}
}
