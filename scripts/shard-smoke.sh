#!/bin/sh
# Sharded scale-out smoke: run a ~2000-project synthetic study (6 taxa x
# PER_TAXON) once single-process and once as `study -shards 3`, which
# spawns three worker processes, streams one residue-class partition of
# the corpus through each, and folds the sealed partial figures on the
# coordinator. The figures directory and per-project CSV must be
# byte-identical to the single-process reference — the merge is exact,
# not approximate. A second sharded run against the same cache directory
# proves the remote cache tier works across processes: the workers'
# remote hits must show up in the combined manifest. Finally, every
# shard manifest must carry the coordinator's trace id, so one trace
# spans the whole fan-out.
#
# Usage: scripts/shard-smoke.sh [per-taxon] [work-dir]
set -eu

PER_TAXON="${1:-334}"
WORK="${2:-shard-smoke-work}"
SHARDS=3

go build -o /tmp/coevo-shard-smoke ./cmd/coevo
rm -rf "$WORK"
mkdir -p "$WORK"

echo "shard-smoke: single-process reference study of $((PER_TAXON * 6)) projects"
/tmp/coevo-shard-smoke study -per-taxon "$PER_TAXON" \
    -csv "$WORK/ref.csv" -out "$WORK/ref-out" \
    -runlog-dir "$WORK/ref-runs" >/dev/null

echo "shard-smoke: same study across $SHARDS worker processes (cold cache)"
/tmp/coevo-shard-smoke study -per-taxon "$PER_TAXON" -shards "$SHARDS" \
    -csv "$WORK/cold.csv" -out "$WORK/cold-out" \
    -cache-dir "$WORK/cache" -runlog-dir "$WORK/cold-runs" >/dev/null

cmp "$WORK/ref.csv" "$WORK/cold.csv" || {
    echo "shard-smoke: FAIL — sharded CSV diverges from the single-process reference" >&2
    exit 1
}
diff -r "$WORK/ref-out" "$WORK/cold-out" >/dev/null || {
    echo "shard-smoke: FAIL — sharded figures diverge from the single-process reference" >&2
    exit 1
}

# combined_of <ledger-dir> prints the coordinator's sealed manifest path.
combined_of() {
    manifest=$(grep -l '"command": "study"' "$1"/*.json | head -1)
    [ -n "$manifest" ] || { echo "no study manifest in $1" >&2; exit 1; }
    grep -q '"outcome": "ok"' "$manifest" || { echo "run in $manifest did not finish ok" >&2; exit 1; }
    echo "$manifest"
}

COMBINED=$(combined_of "$WORK/cold-runs")
grep -q "\"shards\": $SHARDS" "$COMBINED" || {
    echo "shard-smoke: FAIL — combined manifest $COMBINED does not record $SHARDS shards" >&2
    exit 1
}
TRACE=$(sed -n 's/.*"trace_id": *"\([0-9a-f]*\)".*/\1/p' "$COMBINED" | head -1)
[ -n "$TRACE" ] || {
    echo "shard-smoke: FAIL — combined manifest $COMBINED lacks a trace id" >&2
    exit 1
}

# Every spawned worker seals its own shard manifest into the same
# ledger, and each must echo the coordinator's trace id.
SHARD_MANIFESTS=$(grep -l '"command": "shard"' "$WORK/cold-runs"/*.json)
COUNT=0
for m in $SHARD_MANIFESTS; do
    grep -q "\"trace_id\": \"$TRACE\"" "$m" || {
        echo "shard-smoke: FAIL — shard manifest $m does not carry trace id $TRACE" >&2
        exit 1
    }
    COUNT=$((COUNT + 1))
done
if [ "$COUNT" -ne "$SHARDS" ]; then
    echo "shard-smoke: FAIL — expected $SHARDS shard manifests, found $COUNT" >&2
    exit 1
fi
echo "shard-smoke: $COUNT shard manifests share trace id $TRACE"

echo "shard-smoke: sharded study again against the warm cache"
/tmp/coevo-shard-smoke study -per-taxon "$PER_TAXON" -shards "$SHARDS" \
    -csv "$WORK/warm.csv" -out "$WORK/warm-out" \
    -cache-dir "$WORK/cache" -runlog-dir "$WORK/warm-runs" >/dev/null

cmp "$WORK/ref.csv" "$WORK/warm.csv" || {
    echo "shard-smoke: FAIL — warm-cache sharded CSV diverges from the reference" >&2
    exit 1
}
diff -r "$WORK/ref-out" "$WORK/warm-out" >/dev/null || {
    echo "shard-smoke: FAIL — warm-cache sharded figures diverge from the reference" >&2
    exit 1
}

# Warm workers are fresh processes with cold local tiers; every hit they
# get comes over the remote tier from the coordinator's disk cache.
WARM=$(combined_of "$WORK/warm-runs")
REMOTE_HITS=$(sed -n 's/.*"remote_hits": *\([0-9]*\).*/\1/p' "$WARM" | head -1)
if [ -z "$REMOTE_HITS" ] || [ "$REMOTE_HITS" -eq 0 ]; then
    echo "shard-smoke: FAIL — warm manifest $WARM records no remote cache hits" >&2
    exit 1
fi
echo "shard-smoke: warm run served $REMOTE_HITS remote cache hits across shards"

echo "shard-smoke: ok"
