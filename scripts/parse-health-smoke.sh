#!/bin/sh
# Parse-health smoke test: run `coevo parse` over the committed messy
# per-dialect DDL fixture corpus — each fixture with its matching
# -dialect and once more under auto-detection — and fail the build when
# any parse yields zero statements or a diagnostic outside the code
# taxonomy (coevo parse exits nonzero on both). The per-fixture reports
# are collected into an artifact directory for CI upload.
#
# Usage: scripts/parse-health-smoke.sh [artifact-dir]
set -eu

OUT_DIR="${1:-parse-health}"
FIXTURE_DIR="internal/sqlddl/testdata/dialects"

go build -o /tmp/coevo-parse-smoke ./cmd/coevo
mkdir -p "$OUT_DIR"

ran=0
for fixture in "$FIXTURE_DIR"/*.sql; do
    dialect="$(basename "$fixture" .sql)"
    report="$OUT_DIR/$dialect.txt"
    echo "parse-health: $fixture (dialect $dialect)"
    # No pipe to tee: plain sh would swallow the tool's exit code.
    /tmp/coevo-parse-smoke parse -dialect "$dialect" "$fixture" >"$report"
    cat "$report"

    # The fixtures are written to be detectable: auto must resolve to the
    # same dialect and produce the same report minus the source line.
    /tmp/coevo-parse-smoke parse -dialect auto "$fixture" >"$OUT_DIR/$dialect.auto.txt"
    tail -n +2 "$report" >"$OUT_DIR/.explicit.tmp"
    tail -n +2 "$OUT_DIR/$dialect.auto.txt" >"$OUT_DIR/.auto.tmp"
    if ! diff -u "$OUT_DIR/.explicit.tmp" "$OUT_DIR/.auto.tmp"; then
        echo "parse-health: auto-detection diverged for $fixture" >&2
        exit 1
    fi
    rm -f "$OUT_DIR/.explicit.tmp" "$OUT_DIR/.auto.tmp"

    # Belt and braces over the tool's own exit code: the report must show
    # at least one parsed statement and no uncategorized diagnostics.
    grep -q '^stmt: ' "$report" || { echo "parse-health: no statements in $fixture" >&2; exit 1; }
    if grep '^diag: ' "$report" | grep -v -E 'DDL-(LEX|SYN|SEM)-[0-9]{3} \[(lex|syntax|semantic)\]'; then
        echo "parse-health: uncategorized diagnostic in $fixture" >&2
        exit 1
    fi
    ran=$((ran + 1))
done

[ "$ran" -gt 0 ] || { echo "parse-health: no fixtures found in $FIXTURE_DIR" >&2; exit 1; }
echo "parse-health smoke OK: $ran fixtures, reports in $OUT_DIR/"
