#!/bin/sh
# Perf gate: compare a fresh `coevo bench` run against the committed
# baseline report and fail on metric regressions.
#
# The committed BENCH_*.json embeds the baseline run's sealed ledger
# manifest under "runlog". The gate imports that manifest into a throwaway
# ledger, records a fresh bench run (pinned to -workers 1 so per-case
# stage keys match the baseline regardless of the host's core count) into
# the same ledger, and lets `coevo runs diff` flag any wall-time,
# allocs-per-project, alloc-bytes-per-project or peak-heap metric that
# drifted past the threshold in its bad direction. Non-zero exit on any
# regression — this is a hard CI gate, not a report.
#
# Usage: scripts/perf-gate.sh [baseline.json]
#        scripts/perf-gate.sh --self-test [baseline.json]
#
# --self-test proves the gate has teeth without waiting for a real
# regression: it imports the baseline twice, the second copy with every
# cost metric scaled up 1.5x, and asserts the diff FAILS.
#
# PERF_GATE_THRESHOLD tunes the relative drift that trips the gate
# (default 0.25 — generous, because shared CI runners are noisy; the
# alloc budgets in the test suite are the tight screws, this gate catches
# order-of-magnitude slips).
set -eu

SELF_TEST=0
if [ "${1:-}" = "--self-test" ]; then
    SELF_TEST=1
    shift
fi
BASELINE="${1:-BENCH_pr7.json}"
THRESHOLD="${PERF_GATE_THRESHOLD:-0.25}"

[ -f "$BASELINE" ] || { echo "perf-gate: baseline $BASELINE not found" >&2; exit 1; }

go build -o /tmp/coevo-perf-gate ./cmd/coevo

LEDGER=$(mktemp -d)
trap 'rm -rf "$LEDGER"' EXIT

# regressions_in reads the regression count out of a structured `runs
# diff -json` report — the machine-readable contract, instead of
# scraping the human-formatted table.
regressions_in() {
    sed -n 's/^  "regressions": \([0-9][0-9]*\).*$/\1/p' "$1"
}

if [ "$SELF_TEST" = "1" ]; then
    echo "perf-gate: self-test — importing baseline and a 1.5x-regressed copy"
    BASE_ID=$(/tmp/coevo-perf-gate runs -runlog-dir "$LEDGER" import "$BASELINE")
    BAD_ID=$(/tmp/coevo-perf-gate runs -runlog-dir "$LEDGER" -scale 1.5 import "$BASELINE")
    if /tmp/coevo-perf-gate runs -runlog-dir "$LEDGER" -threshold "$THRESHOLD" \
        -json diff "$BASE_ID" "$BAD_ID" >"$LEDGER/diff.json"; then
        echo "perf-gate: SELF-TEST FAIL — a 1.5x uniform regression passed the gate" >&2
        exit 1
    fi
    COUNT=$(regressions_in "$LEDGER/diff.json")
    [ -n "$COUNT" ] && [ "$COUNT" -ge 1 ] || {
        echo "perf-gate: SELF-TEST FAIL — diff report carries no regression count" >&2
        cat "$LEDGER/diff.json" >&2
        exit 1
    }
    echo "perf-gate: self-test ok — the gate fails on a deliberate regression ($COUNT metrics flagged)"
    exit 0
fi

echo "perf-gate: baseline $BASELINE, threshold $THRESHOLD"
/tmp/coevo-perf-gate runs -runlog-dir "$LEDGER" import "$BASELINE" >/dev/null
/tmp/coevo-perf-gate bench -workers 1 -out "$LEDGER/bench-candidate.json" \
    -runlog-dir "$LEDGER"
if ! /tmp/coevo-perf-gate runs -runlog-dir "$LEDGER" -threshold "$THRESHOLD" \
    -json diff previous latest >"$LEDGER/diff.json"; then
    COUNT=$(regressions_in "$LEDGER/diff.json")
    echo "perf-gate: FAIL — ${COUNT:-?} metric regression(s) against $BASELINE" >&2
    cat "$LEDGER/diff.json" >&2
    exit 1
fi
echo "perf-gate: ok"
