#!/bin/sh
# Job-service smoke test: start `coevo serve`, submit a study over the
# HTTP API, wait for it, fetch its sections, and compare them byte for
# byte with the same-seed `coevo study` output. Then submit the identical
# spec as a second tenant and assert the duplicate is served from the
# shared result cache (job reports cache_hit, coevo_cache_hits_total
# grows, coevo_jobs_dedup_hits_total fires) and that every job sealed a
# "job" entry into the run ledger served at /runs.
#
# Usage: scripts/jobs-smoke.sh [addr] [workdir]
set -eu

ADDR="${1:-127.0.0.1:9288}"
WORK="${2:-jobs-smoke-work}"
URL="http://$ADDR"
SEED=7
PER_TAXON=2

go build -o /tmp/coevo-jobs-smoke ./cmd/coevo
rm -rf "$WORK"
mkdir -p "$WORK"

/tmp/coevo-jobs-smoke serve -listen "$ADDR" -jobs-dir "$WORK/jobs" \
    -runlog-dir "$WORK/runs" -cache-dir "$WORK/cache" \
    >"$WORK/serve-stdout.txt" 2>"$WORK/serve-stderr.txt" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
    if curl -fsS "$URL/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$URL/readyz" | grep -q ready || {
    echo "serve never became ready"; cat "$WORK/serve-stderr.txt"; exit 1; }

# 1. Submit over raw HTTP as tenant alice and wait with the CLI client.
SPEC="{\"kind\":\"study\",\"study\":{\"seed\":$SEED,\"per_taxon\":$PER_TAXON}}"
ID=$(curl -fsS -X POST -H 'X-Coevo-Tenant: alice' -d "$SPEC" "$URL/jobs" \
    | sed -n 's/^  "id": "\(.*\)",$/\1/p')
[ -n "$ID" ] || { echo "submission returned no job id"; exit 1; }

/tmp/coevo-jobs-smoke jobs -server "$URL" wait "$ID" >/dev/null
/tmp/coevo-jobs-smoke jobs -server "$URL" -json status "$ID" >"$WORK/status1.json"
grep -q '"state": "done"' "$WORK/status1.json" || {
    echo "job $ID did not finish"; cat "$WORK/status1.json"; exit 1; }
/tmp/coevo-jobs-smoke jobs -server "$URL" -out "$WORK/job-out" result "$ID" >/dev/null

# 2. The acceptance bar: the job's sections must be byte-identical to the
# same-seed CLI study run.
/tmp/coevo-jobs-smoke study -seed "$SEED" -per-taxon "$PER_TAXON" \
    -out "$WORK/cli-out" >/dev/null 2>&1
[ -n "$(ls "$WORK/job-out")" ] || { echo "job result has no sections"; exit 1; }
for f in "$WORK/job-out"/*; do
    name=$(basename "$f")
    cmp -s "$f" "$WORK/cli-out/$name" || {
        echo "section $name differs between the job and the CLI"; exit 1; }
done

# 3. A second tenant submits the identical spec: the shared cache must
# serve it without re-analysis.
HITS_BEFORE=$(curl -fsS "$URL/metrics" | sed -n 's/^coevo_cache_hits_total //p')
ID2=$(curl -fsS -X POST -H 'X-Coevo-Tenant: bob' -d "$SPEC" "$URL/jobs" \
    | sed -n 's/^  "id": "\(.*\)",$/\1/p')
/tmp/coevo-jobs-smoke jobs -server "$URL" wait "$ID2" >/dev/null
/tmp/coevo-jobs-smoke jobs -server "$URL" -json status "$ID2" >"$WORK/status2.json"
grep -q '"state": "done"' "$WORK/status2.json" || {
    echo "duplicate job did not finish"; cat "$WORK/status2.json"; exit 1; }
grep -q '"cache_hit": true' "$WORK/status2.json" || {
    echo "duplicate submission was not served from the cache"; cat "$WORK/status2.json"; exit 1; }

curl -fsS "$URL/metrics" >"$WORK/metrics.txt"
HITS_AFTER=$(sed -n 's/^coevo_cache_hits_total //p' "$WORK/metrics.txt")
awk "BEGIN { exit !($HITS_AFTER > $HITS_BEFORE) }" || {
    echo "coevo_cache_hits_total did not grow ($HITS_BEFORE -> $HITS_AFTER)"; exit 1; }
grep -q '^coevo_jobs_done_total 2' "$WORK/metrics.txt" || {
    echo "metrics lack the finished jobs"; grep '^coevo_jobs' "$WORK/metrics.txt"; exit 1; }
grep -q '^coevo_jobs_dedup_hits_total 1' "$WORK/metrics.txt" || {
    echo "metrics lack the dedup hit"; grep '^coevo_jobs' "$WORK/metrics.txt"; exit 1; }

# 4. Both executions sealed ledger entries visible over /runs and the CLI.
curl -fsS "$URL/runs" | grep -q '"command": "job"' || {
    echo "/runs lacks the job manifests"; exit 1; }
/tmp/coevo-jobs-smoke runs -runlog-dir "$WORK/runs" -json list >"$WORK/runs.json"
JOB_RUNS=$(grep -c '"command": "job"' "$WORK/runs.json")
[ "$JOB_RUNS" -ge 2 ] || { echo "ledger has $JOB_RUNS job runs, want 2"; exit 1; }

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
trap - EXIT

echo "jobs smoke OK: $URL ran $ID and deduped $ID2 from the shared cache"
