#!/bin/sh
# Trace smoke test: prove one trace id travels end to end through the
# analysis service. Start `coevo serve -trace`, submit a study with an
# explicit W3C traceparent, and assert the SAME trace id shows up in the
# job status document, the sealed run manifest served at /runs, and —
# after a graceful shutdown — the exported Chrome trace file, including
# its queue-wait span. Then submit a deliberately broken ingest job and
# assert the failure left a non-empty correlated flight-recorder dump at
# /jobs/{id}/flight (and through `coevo jobs flight`), plus a live
# /api/v1/status summary along the way.
#
# Usage: scripts/trace-smoke.sh [addr] [workdir]
set -eu

ADDR="${1:-127.0.0.1:9289}"
WORK="${2:-trace-smoke-work}"
URL="http://$ADDR"
TRACE="4bf92f3577b34da6a3ce929d0e0e4736"
TRACEPARENT="00-$TRACE-00f067aa0ba902b7-01"

go build -o /tmp/coevo-trace-smoke ./cmd/coevo
rm -rf "$WORK"
mkdir -p "$WORK"

/tmp/coevo-trace-smoke serve -listen "$ADDR" -jobs-dir "$WORK/jobs" \
    -runlog-dir "$WORK/runs" -trace "$WORK/trace.json" \
    >"$WORK/serve-stdout.txt" 2>"$WORK/serve-stderr.txt" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
    if curl -fsS "$URL/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$URL/readyz" | grep -q ready || {
    echo "serve never became ready"; cat "$WORK/serve-stderr.txt"; exit 1; }

# 1. Submit with an explicit traceparent: the job record must adopt the
# caller's trace id, and the response must echo the header.
SPEC='{"kind":"study","study":{"seed":7,"per_taxon":2}}'
curl -fsS -D "$WORK/submit-headers.txt" -X POST \
    -H 'X-Coevo-Tenant: alice' -H "traceparent: $TRACEPARENT" \
    -d "$SPEC" "$URL/jobs" >"$WORK/submit.json"
grep -qi "traceparent: 00-$TRACE-" "$WORK/submit-headers.txt" || {
    echo "response did not echo the traceparent"; cat "$WORK/submit-headers.txt"; exit 1; }
grep -q "\"trace_id\": \"$TRACE\"" "$WORK/submit.json" || {
    echo "job record did not adopt the submitted trace id"; cat "$WORK/submit.json"; exit 1; }
ID=$(sed -n 's/^  "id": "\(.*\)",$/\1/p' "$WORK/submit.json")
[ -n "$ID" ] || { echo "submission returned no job id"; exit 1; }

/tmp/coevo-trace-smoke jobs -server "$URL" wait "$ID" >/dev/null
/tmp/coevo-trace-smoke jobs -server "$URL" -json status "$ID" >"$WORK/status.json"
grep -q '"state": "done"' "$WORK/status.json" || {
    echo "job $ID did not finish"; cat "$WORK/status.json"; exit 1; }
grep -q "\"trace_id\": \"$TRACE\"" "$WORK/status.json" || {
    echo "terminal status lost the trace id"; cat "$WORK/status.json"; exit 1; }

# 2. The sealed run manifest carries the same trace id over /runs.
curl -fsS "$URL/runs" >"$WORK/runs.json"
grep -q "\"trace_id\": \"$TRACE\"" "$WORK/runs.json" || {
    echo "/runs manifest lost the trace id"; cat "$WORK/runs.json"; exit 1; }

# 3. The access log correlates the submission with the same id.
grep -q "trace_id=$TRACE" "$WORK/serve-stderr.txt" || {
    echo "access log lacks the trace id"; tail -20 "$WORK/serve-stderr.txt"; exit 1; }

# 4. The versioned status summary is live and sees tenant alice's work
# and the RED window.
curl -fsS "$URL/api/v1/status" >"$WORK/service-status.json"
grep -q '"uptime_seconds"' "$WORK/service-status.json" || {
    echo "/api/v1/status lacks uptime"; cat "$WORK/service-status.json"; exit 1; }
grep -q '"completed": 1' "$WORK/service-status.json" || {
    echo "/api/v1/status does not count the finished job"; cat "$WORK/service-status.json"; exit 1; }
grep -q '"tenant": "alice"' "$WORK/service-status.json" || {
    echo "/api/v1/status lacks the per-tenant window"; cat "$WORK/service-status.json"; exit 1; }
curl -fsS "$URL/metrics" >"$WORK/metrics.txt"
grep -q 'coevo_http_requests_total{route="/jobs",tenant="alice"}' "$WORK/metrics.txt" || {
    echo "RED metrics lack the per-tenant series"; grep coevo_http "$WORK/metrics.txt" || true; exit 1; }
grep -q 'coevo_jobs_queue_wait_seconds' "$WORK/metrics.txt" || {
    echo "metrics lack the queue-wait histogram"; exit 1; }

# 5. A deliberately broken ingest (garbage git log, valid spec) fails
# deterministically and must leave a correlated flight dump.
BAD='{"kind":"ingest","ingest":{"git_log":"this is not a git log","ddl_versions":{"2020-01-01":"CREATE TABLE t (id INT);"}}}'
ID2=$(curl -fsS -X POST -H 'X-Coevo-Tenant: alice' -d "$BAD" "$URL/jobs" \
    | sed -n 's/^  "id": "\(.*\)",$/\1/p')
[ -n "$ID2" ] || { echo "failure-path submission returned no job id"; exit 1; }
/tmp/coevo-trace-smoke jobs -server "$URL" wait "$ID2" >/dev/null 2>&1 || true
/tmp/coevo-trace-smoke jobs -server "$URL" -json status "$ID2" >"$WORK/status2.json"
grep -q '"state": "failed"' "$WORK/status2.json" || {
    echo "broken ingest did not fail"; cat "$WORK/status2.json"; exit 1; }
curl -fsS "$URL/jobs/$ID2/flight" >"$WORK/flight.json"
grep -q '"kind": "job-failed"' "$WORK/flight.json" || {
    echo "flight dump lacks the failure event"; cat "$WORK/flight.json"; exit 1; }
/tmp/coevo-trace-smoke jobs -server "$URL" flight "$ID2" >"$WORK/flight.txt"
grep -q 'job-failed' "$WORK/flight.txt" || {
    echo "coevo jobs flight shows no failure event"; cat "$WORK/flight.txt"; exit 1; }

# 6. Graceful shutdown writes the trace export; the submitted trace id
# and the queue-wait span must be on the timeline.
kill -INT "$PID"
wait "$PID" 2>/dev/null || true
trap - EXIT
[ -f "$WORK/trace.json" ] || {
    echo "shutdown did not write the trace file"; cat "$WORK/serve-stderr.txt"; exit 1; }
grep -q "$TRACE" "$WORK/trace.json" || {
    echo "trace export lacks the submitted trace id"; exit 1; }
grep -q '"queue-wait"' "$WORK/trace.json" || {
    echo "trace export lacks the queue-wait span"; exit 1; }
grep -q '"sealed"' "$WORK/trace.json" || {
    echo "trace export lacks the sealed span"; exit 1; }

echo "trace smoke OK: trace $TRACE followed $ID from submit to sealed manifest, and $ID2 left a flight dump"
