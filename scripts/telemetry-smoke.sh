#!/bin/sh
# Telemetry smoke test: run a full study with the embedded observability
# server enabled, then — while the server lingers — curl every endpoint
# and assert the run is visible: /healthz and /readyz answer, /metrics
# exposes the engine series, and /runs serves the sealed ledger entry.
#
# Usage: scripts/telemetry-smoke.sh [addr] [runlog-dir]
set -eu

ADDR="${1:-127.0.0.1:9188}"
RUNLOG_DIR="${2:-runs}"
URL="http://$ADDR"

go build -o /tmp/coevo-smoke ./cmd/coevo

/tmp/coevo-smoke study -listen "$ADDR" -linger 60s -runlog-dir "$RUNLOG_DIR" \
    >/tmp/coevo-smoke-stdout.txt 2>/tmp/coevo-smoke-stderr.txt &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Poll liveness until the server binds (it binds before the study runs,
# so this is quick), then wait for readiness: the corpus is loaded and
# analysis has started.
for _ in $(seq 1 100); do
    if curl -fsS "$URL/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$URL/healthz" | grep -q ok || { echo "healthz failed"; exit 1; }

for _ in $(seq 1 300); do
    if curl -fsS "$URL/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$URL/readyz" | grep -q ready || { echo "readyz never flipped"; exit 1; }

# Give the run a moment to finish and seal its ledger entry (the server
# lingers after completion), then check the scrape surfaces.
for _ in $(seq 1 300); do
    if curl -fsS "$URL/runs" 2>/dev/null | grep -q '"outcome": "ok"'; then break; fi
    sleep 0.1
done

curl -fsS "$URL/metrics" >/tmp/coevo-smoke-metrics.txt
grep -q 'coevo_engine_tasks_total{run="analyze"} 195' /tmp/coevo-smoke-metrics.txt \
    || { echo "metrics lack the engine series"; cat /tmp/coevo-smoke-metrics.txt; exit 1; }
curl -fsS "$URL/runs" | grep -q '"command": "study"' \
    || { echo "/runs lacks the recorded study"; exit 1; }
curl -fsS "$URL/debug/pprof/cmdline" >/dev/null || { echo "pprof unreachable"; exit 1; }

# A second recorded run must diff cleanly against the first (no
# regression between two identical-seed runs on the same machine is not
# guaranteed for timings, so just assert the diff renders).
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
trap - EXIT

/tmp/coevo-smoke runs -runlog-dir "$RUNLOG_DIR" list | grep -q 'study' \
    || { echo "runs list lacks the study run"; exit 1; }
/tmp/coevo-smoke runs -runlog-dir "$RUNLOG_DIR" show latest >/dev/null

echo "telemetry smoke OK: $URL served a live study and recorded it in $RUNLOG_DIR"
