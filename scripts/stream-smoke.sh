#!/bin/sh
# Streaming memory smoke: run the study over a corpus roughly 10x the
# paper's (6 taxa x PER_TAXON projects) in the default streaming mode
# under a GOMEMLIMIT the batch pipeline cannot fit in, then assert from
# the run ledger that the recorded live-heap peak stayed under the cap.
# GOMEMLIMIT is a soft limit — the assertion is on the sampled peak in
# the sealed manifest, not on surviving an OOM kill. With CHECK_BATCH=1
# the batch mode runs at the same scale (without the limit) and must
# exceed the cap, proving the cap separates the two modes.
#
# Usage: scripts/stream-smoke.sh [per-taxon] [runlog-dir]
set -eu

PER_TAXON="${1:-334}"
RUNLOG_DIR="${2:-stream-smoke-runs}"
CHECK_BATCH="${CHECK_BATCH:-0}"
# 400 MiB: about 2x the batch peak on the paper's 195-project corpus, and
# far below what batch needs for the ~2000-project corpus used here.
LIMIT="400MiB"
CAP_BYTES=419430400

go build -o /tmp/coevo-stream-smoke ./cmd/coevo

# peak_of <ledger-dir> prints peak_heap_bytes of the newest manifest.
peak_of() {
    manifest=$(ls -t "$1"/*.json | head -1)
    grep -q '"outcome": "ok"' "$manifest" || { echo "run in $manifest did not finish ok" >&2; exit 1; }
    peak=$(sed -n 's/.*"peak_heap_bytes": *\([0-9]*\).*/\1/p' "$manifest" | head -1)
    [ -n "$peak" ] || { echo "manifest $manifest lacks peak_heap_bytes" >&2; exit 1; }
    echo "$peak"
}

echo "stream-smoke: streaming study of $((PER_TAXON * 6)) projects under GOMEMLIMIT=$LIMIT"
GOMEMLIMIT="$LIMIT" /tmp/coevo-stream-smoke study -per-taxon "$PER_TAXON" \
    -runlog-dir "$RUNLOG_DIR/stream" >/dev/null
STREAM_PEAK=$(peak_of "$RUNLOG_DIR/stream")
echo "stream-smoke: streaming peak heap $STREAM_PEAK bytes (cap $CAP_BYTES)"
if [ "$STREAM_PEAK" -ge "$CAP_BYTES" ]; then
    echo "stream-smoke: FAIL — streaming peak heap exceeds the cap" >&2
    exit 1
fi

if [ "$CHECK_BATCH" = "1" ]; then
    echo "stream-smoke: batch study at the same scale (no memory limit)"
    /tmp/coevo-stream-smoke study -stream=false -per-taxon "$PER_TAXON" \
        -runlog-dir "$RUNLOG_DIR/batch" >/dev/null
    BATCH_PEAK=$(peak_of "$RUNLOG_DIR/batch")
    echo "stream-smoke: batch peak heap $BATCH_PEAK bytes"
    if [ "$BATCH_PEAK" -le "$CAP_BYTES" ]; then
        echo "stream-smoke: FAIL — batch fit under the cap; it no longer separates the modes" >&2
        exit 1
    fi
fi

echo "stream-smoke: ok"
