package runlog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Direction classifies how a metric's movement reads.
type Direction int

const (
	// Neutral metrics are reported but never flagged (e.g. task counts).
	Neutral Direction = iota
	// HigherWorse metrics regress upward (latencies, failures, misses).
	HigherWorse
	// HigherBetter metrics regress downward (throughput, hit rate).
	HigherBetter
)

// String names the direction for rendering.
func (d Direction) String() string {
	switch d {
	case HigherWorse:
		return "higher-worse"
	case HigherBetter:
		return "higher-better"
	default:
		return "neutral"
	}
}

// MarshalJSON renders the direction by name, so the structured report
// (`coevo runs diff -json`) is readable without this package's enum.
func (d Direction) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON accepts the named form (and the legacy integer one).
func (d *Direction) UnmarshalJSON(raw []byte) error {
	var name string
	if err := json.Unmarshal(raw, &name); err != nil {
		var n int
		if err := json.Unmarshal(raw, &n); err != nil {
			return err
		}
		*d = Direction(n)
		return nil
	}
	switch name {
	case "higher-worse":
		*d = HigherWorse
	case "higher-better":
		*d = HigherBetter
	default:
		*d = Neutral
	}
	return nil
}

// Delta is one compared metric between two runs.
type Delta struct {
	Metric    string    `json:"metric"`
	Old       float64   `json:"old"`
	New       float64   `json:"new"`
	Diff      float64   `json:"diff"` // New - Old
	Pct       float64   `json:"pct"`  // relative change vs Old (0 when Old is 0)
	Direction Direction `json:"direction"`
	// Regression is set when the metric moved in its bad direction by
	// more than the diff threshold.
	Regression bool `json:"regression,omitempty"`
}

// DiffOptions tunes the regression detector.
type DiffOptions struct {
	// Threshold is the relative drift that flags a regression (0.10 =
	// 10%; <= 0 uses the default 0.10).
	Threshold float64
}

// DefaultThreshold is the relative drift flagged without -threshold.
const DefaultThreshold = 0.10

// DiffReport is the comparison of two ledger entries — the structured
// document behind `coevo runs diff -json`, which the perf gate parses
// instead of scraping the rendered table.
type DiffReport struct {
	OldID       string  `json:"old_id"`
	NewID       string  `json:"new_id"`
	Threshold   float64 `json:"threshold"`
	Deltas      []Delta `json:"deltas"`
	Regressions int     `json:"regressions"`
}

// Diff compares two manifests metric by metric: the latency and
// throughput summary, per-stage wall time, cache effectiveness, and
// every shared series of the final metrics snapshots. Metrics that moved
// in their bad direction beyond the threshold are flagged as
// regressions.
func Diff(oldRun, newRun *Manifest, opts DiffOptions) *DiffReport {
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	r := &DiffReport{OldID: oldRun.ID, NewID: newRun.ID, Threshold: threshold}
	add := func(metric string, oldV, newV float64, dir Direction) {
		d := Delta{Metric: metric, Old: oldV, New: newV, Diff: newV - oldV, Direction: dir}
		if oldV != 0 {
			d.Pct = (newV - oldV) / oldV
		}
		switch dir {
		case HigherWorse:
			if oldV == 0 {
				d.Regression = newV > 0
			} else {
				d.Regression = d.Pct > threshold
			}
		case HigherBetter:
			d.Regression = oldV != 0 && d.Pct < -threshold
		}
		if d.Regression {
			r.Regressions++
		}
		r.Deltas = append(r.Deltas, d)
	}

	add("duration_seconds", oldRun.DurationSeconds, newRun.DurationSeconds, HigherWorse)
	add("p50_seconds", oldRun.P50Seconds, newRun.P50Seconds, HigherWorse)
	add("p95_seconds", oldRun.P95Seconds, newRun.P95Seconds, HigherWorse)
	add("max_seconds", oldRun.MaxSeconds, newRun.MaxSeconds, HigherWorse)
	add("throughput_per_sec", oldRun.ThroughputPerSec, newRun.ThroughputPerSec, HigherBetter)
	add("peak_heap_bytes", float64(oldRun.PeakHeapBytes), float64(newRun.PeakHeapBytes), HigherWorse)
	add("projects", float64(oldRun.Projects), float64(newRun.Projects), Neutral)
	add("failed", float64(oldRun.Failed), float64(newRun.Failed), HigherWorse)

	// Stages compare only where both runs measured them: a stage present
	// in one run only (a renamed stage, or a new bench case against an
	// older baseline) is reported but is not a regression.
	for _, stage := range unionKeys(oldRun.StageSeconds, newRun.StageSeconds) {
		oldV, okOld := oldRun.StageSeconds[stage]
		newV, okNew := newRun.StageSeconds[stage]
		if !okOld || !okNew {
			r.Deltas = append(r.Deltas, Delta{
				Metric: "stage_seconds/" + stage, Old: oldV, New: newV,
				Diff: newV - oldV, Direction: HigherWorse,
			})
			continue
		}
		add("stage_seconds/"+stage, oldV, newV, HigherWorse)
	}
	if oldRun.Cache != nil || newRun.Cache != nil {
		oc, nc := oldRun.Cache, newRun.Cache
		if oc == nil {
			oc = &CacheStats{}
		}
		if nc == nil {
			nc = &CacheStats{}
		}
		add("cache/hit_rate", oc.HitRate, nc.HitRate, HigherBetter)
		add("cache/misses", float64(oc.Misses), float64(nc.Misses), HigherWorse)
		add("cache/corrupt", float64(oc.Corrupt), float64(nc.Corrupt), HigherWorse)
	}
	// The metrics snapshots compare only where both runs have the series
	// (a renamed or new metric is not a regression), and histogram bucket
	// series stay out — the _sum/_count pair already carries the signal.
	for _, name := range unionKeys(oldRun.Metrics, newRun.Metrics) {
		if strings.Contains(name, "_bucket{") || strings.Contains(name, `le="`) {
			continue
		}
		oldV, okOld := oldRun.Metrics[name]
		newV, okNew := newRun.Metrics[name]
		if !okOld || !okNew {
			continue
		}
		add("metrics/"+name, oldV, newV, metricDirection(name))
	}
	return r
}

// metricDirection classifies a registry series by naming convention.
func metricDirection(name string) Direction {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	switch {
	case strings.Contains(base, "failures"), strings.Contains(base, "misses"),
		strings.Contains(base, "corrupt"), strings.Contains(base, "heap_peak"),
		strings.Contains(base, "allocs"), strings.Contains(base, "alloc_bytes"):
		return HigherWorse
	case strings.HasSuffix(base, "_seconds_sum"), strings.HasSuffix(base, "_seconds_total"):
		return HigherWorse
	case strings.Contains(base, "hits"):
		return HigherBetter
	default:
		return Neutral
	}
}

// unionKeys returns the sorted union of two maps' keys.
func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Write renders the report as a text table: every compared metric with
// old/new/delta, regressions marked with a leading '!', and a closing
// verdict line.
func (r *DiffReport) Write(w io.Writer) error {
	fmt.Fprintf(w, "diff %s -> %s (threshold %.0f%%)\n", r.OldID, r.NewID, 100*r.Threshold)
	fmt.Fprintf(w, "  %-52s %14s %14s %10s\n", "metric", "old", "new", "change")
	for _, d := range r.Deltas {
		if d.Old == d.New && !d.Regression {
			continue // unchanged rows are noise at 195-project scale
		}
		mark := " "
		if d.Regression {
			mark = "!"
		}
		change := "new"
		if d.Old != 0 {
			change = fmt.Sprintf("%+.1f%%", 100*d.Pct)
		} else if d.New == 0 {
			change = "0"
		}
		fmt.Fprintf(w, "%s %-52s %14s %14s %10s\n",
			mark, d.Metric, formatValue(d.Old), formatValue(d.New), change)
	}
	if r.Regressions == 0 {
		_, err := fmt.Fprintln(w, "no regressions")
		return err
	}
	_, err := fmt.Fprintf(w, "%d regression(s) beyond %.0f%%\n", r.Regressions, 100*r.Threshold)
	return err
}

// formatValue renders a metric value compactly (integers undecorated).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteList renders the ledger as one line per run, oldest first.
func WriteList(w io.Writer, runs []*Manifest) error {
	fmt.Fprintf(w, "%-24s %-7s %-20s %9s %9s %7s %-12s\n",
		"run", "command", "start (utc)", "duration", "projects", "failed", "outcome")
	for _, m := range runs {
		fmt.Fprintf(w, "%-24s %-7s %-20s %8.2fs %9d %7d %-12s\n",
			m.ID, m.Command, m.Start.UTC().Format("2006-01-02 15:04:05"),
			m.DurationSeconds, m.Projects, m.Failed, m.Outcome)
	}
	_, err := fmt.Fprintf(w, "%d run(s)\n", len(runs))
	return err
}

// WriteManifest renders one manifest human-readably: the provenance and
// summary up top, then stages, cache and failures. The full metrics
// snapshot stays in the JSON — `coevo runs show` is a summary, not a
// dump.
func WriteManifest(w io.Writer, m *Manifest) error {
	fmt.Fprintf(w, "run       %s (%s)\n", m.ID, m.Command)
	fmt.Fprintf(w, "outcome   %s", m.Outcome)
	if m.Error != "" {
		fmt.Fprintf(w, " (%s)", m.Error)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "when      %s, %.2fs\n", m.Start.UTC().Format(time.RFC3339), m.DurationSeconds)
	fmt.Fprintf(w, "build     %s %s", m.GoVersion, m.ModuleVersion)
	if m.VCSRevision != "" {
		rev := m.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(w, " @%s", rev)
		if m.VCSModified {
			fmt.Fprint(w, "+dirty")
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "host      %s, %d cpus (GOMAXPROCS %d)", m.Hostname, m.NumCPU, m.GOMAXPROCS)
	if m.CPUModel != "" {
		fmt.Fprintf(w, ", %s", m.CPUModel)
	}
	fmt.Fprintln(w)
	if len(m.Options) > 0 {
		keys := make([]string, 0, len(m.Options))
		for k := range m.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, "options  ")
		for _, k := range keys {
			fmt.Fprintf(w, " -%s=%s", k, m.Options[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "projects  %d analyzed, %d failed\n", m.Projects, m.Failed)
	if m.P95Seconds > 0 || m.ThroughputPerSec > 0 {
		fmt.Fprintf(w, "latency   p50 %.4fs  p95 %.4fs  max %.4fs  (%.1f tasks/s)\n",
			m.P50Seconds, m.P95Seconds, m.MaxSeconds, m.ThroughputPerSec)
	}
	if m.PeakHeapBytes > 0 {
		fmt.Fprintf(w, "memory    peak heap %.1f MiB\n", float64(m.PeakHeapBytes)/(1<<20))
	}
	if len(m.StageSeconds) > 0 {
		fmt.Fprint(w, "stages   ")
		for _, stage := range unionKeys(m.StageSeconds, nil) {
			fmt.Fprintf(w, " %s=%.3fs", stage, m.StageSeconds[stage])
		}
		fmt.Fprintln(w)
	}
	if c := m.Cache; c != nil {
		fmt.Fprintf(w, "cache     %d hits / %d misses (%.0f%% hit rate), %d puts, %d corrupt healed\n",
			c.Hits, c.Misses, 100*c.HitRate, c.Puts, c.Corrupt)
	}
	for _, f := range m.Failures {
		fmt.Fprintf(w, "  FAIL %s: %s\n", f.Name, f.Err)
	}
	_, err := fmt.Fprintf(w, "metrics   %d series in the snapshot\n", len(m.Metrics))
	return err
}
