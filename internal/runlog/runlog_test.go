package runlog

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coevo/internal/obs"
)

// mkManifest builds a finished manifest with distinguishable values.
func mkManifest(id, command string, start time.Time) *Manifest {
	m := NewManifest(command, start)
	m.ID = id
	m.Finish(start.Add(2*time.Second), nil)
	m.Projects = 195
	m.P50Seconds = 0.010
	m.P95Seconds = 0.050
	m.MaxSeconds = 0.080
	m.ThroughputPerSec = 97.5
	m.StageSeconds = map[string]float64{"extract": 1.2, "measure": 0.6}
	m.Cache = &CacheStats{Hits: 900, Misses: 100, HitRate: 0.9}
	m.Metrics = map[string]float64{
		`coevo_engine_tasks_total{run="analyze"}`:                   195,
		`coevo_engine_task_seconds_sum{run="analyze"}`:              1.8,
		`coevo_engine_task_seconds_count{run="analyze"}`:            195,
		`coevo_engine_task_seconds_bucket{run="analyze",le="+Inf"}`: 195,
	}
	return m
}

func TestManifestLifecycle(t *testing.T) {
	start := time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	m := NewManifest("study", start)
	if m.ID == "" || !strings.HasPrefix(m.ID, "20260805T100000-") {
		t.Errorf("ID = %q, want timestamp-prefixed", m.ID)
	}
	if m.GoVersion == "" || m.NumCPU == 0 || m.GOMAXPROCS == 0 {
		t.Errorf("provenance not stamped: %+v", m)
	}
	m.Finish(start.Add(90*time.Second), nil)
	if m.Outcome != "ok" || m.DurationSeconds != 90 {
		t.Errorf("Finish: outcome %q, duration %v", m.Outcome, m.DurationSeconds)
	}

	failed := NewManifest("study", start)
	failed.Finish(start.Add(time.Second), os.ErrPermission)
	if failed.Outcome != "failed" || failed.Error == "" {
		t.Errorf("failed outcome = %q (%q)", failed.Outcome, failed.Error)
	}
	interrupted := NewManifest("study", start)
	interrupted.Finish(start.Add(time.Second), context_Canceled())
	if interrupted.Outcome != "interrupted" {
		t.Errorf("interrupted outcome = %q", interrupted.Outcome)
	}

	// Distinct runs started the same instant still get distinct ids.
	if NewID(start) == NewID(start) {
		t.Error("NewID collides for identical start times")
	}
}

// context_Canceled builds a wrapped cancellation error without importing
// context into the package under test's test twice — the message is the
// contract isCancellation matches.
func context_Canceled() error {
	return &wrapped{"study: run aborted: context canceled"}
}

type wrapped struct{ msg string }

func (w *wrapped) Error() string { return w.msg }

func TestWriteListLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	base := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	var ids []string
	for i := 0; i < 3; i++ {
		m := mkManifest(NewID(base.Add(time.Duration(i)*time.Minute)), "study", base.Add(time.Duration(i)*time.Minute))
		path, err := Write(dir, m)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		if filepath.Dir(path) != dir || !strings.HasSuffix(path, m.ID+".json") {
			t.Errorf("manifest path = %q", path)
		}
		ids = append(ids, m.ID)
	}
	// A torn entry and a foreign file must not hide the ledger.
	os.WriteFile(filepath.Join(dir, "torn.json"), []byte(`{"id": "to`), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644)

	runs, err := List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("List = %d runs, want 3", len(runs))
	}
	for i, m := range runs {
		if m.ID != ids[i] {
			t.Errorf("run %d = %s, want %s (start-sorted)", i, m.ID, ids[i])
		}
	}

	if m, err := Load(dir, "latest"); err != nil || m.ID != ids[2] {
		t.Errorf("latest = %v, %v", m, err)
	}
	if m, err := Load(dir, "previous"); err != nil || m.ID != ids[1] {
		t.Errorf("previous = %v, %v", m, err)
	}
	if m, err := Load(dir, ids[0]); err != nil || m.ID != ids[0] {
		t.Errorf("exact id = %v, %v", m, err)
	}
	// A unique prefix resolves; the shared timestampless prefix is
	// ambiguous.
	if m, err := Load(dir, ids[1][:len(ids[1])-2]); err != nil || m.ID != ids[1] {
		t.Errorf("prefix = %v, %v", m, err)
	}
	if _, err := Load(dir, "20260805T"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous prefix should fail, got %v", err)
	}
	if _, err := Load(dir, "nope"); err == nil {
		t.Error("unknown id should fail")
	}

	// Missing directory: empty ledger, not an error.
	if runs, err := List(filepath.Join(t.TempDir(), "absent")); err != nil || len(runs) != 0 {
		t.Errorf("missing dir: %v, %v", runs, err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent"), "latest"); err == nil {
		t.Error("latest on empty ledger should fail")
	}
}

func TestDiffFlagsInjectedRegressions(t *testing.T) {
	base := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	oldRun := mkManifest("run-a", "study", base)
	newRun := mkManifest("run-b", "study", base.Add(time.Hour))

	// Inject regressions: p95 doubles, the extract stage grows 50%, the
	// cache hit rate collapses, and two projects start failing.
	newRun.P95Seconds = 0.100
	newRun.StageSeconds["extract"] = 1.8
	newRun.Cache = &CacheStats{Hits: 500, Misses: 500, HitRate: 0.5}
	newRun.Failed = 2
	// And one improvement that must NOT be flagged.
	newRun.ThroughputPerSec = 120
	// A stage only the new run measured (a new bench case against an
	// older baseline) must be reported but never flagged.
	newRun.StageSeconds["study-shard3/cold"] = 0.5

	r := Diff(oldRun, newRun, DiffOptions{Threshold: 0.20})
	flagged := map[string]bool{}
	byName := map[string]Delta{}
	for _, d := range r.Deltas {
		byName[d.Metric] = d
		if d.Regression {
			flagged[d.Metric] = true
		}
	}
	for _, want := range []string{"p95_seconds", "stage_seconds/extract", "cache/hit_rate", "cache/misses", "failed"} {
		if !flagged[want] {
			t.Errorf("regression %s not flagged; report: %+v", want, flagged)
		}
	}
	for _, never := range []string{"throughput_per_sec", "p50_seconds", "projects", "stage_seconds/study-shard3/cold", `metrics/coevo_engine_tasks_total{run="analyze"}`} {
		if flagged[never] {
			t.Errorf("%s wrongly flagged", never)
		}
	}
	if r.Regressions != len(flagged) {
		t.Errorf("Regressions = %d, flagged %d", r.Regressions, len(flagged))
	}
	if d := byName["p95_seconds"]; d.Pct < 0.99 || d.Pct > 1.01 {
		t.Errorf("p95 pct = %v, want ~1.0 (doubled)", d.Pct)
	}
	// Bucket series are excluded from the comparison.
	if _, ok := byName[`metrics/coevo_engine_task_seconds_bucket{run="analyze",le="+Inf"}`]; ok {
		t.Error("bucket series leaked into the diff")
	}

	// Below threshold: the same pair at a huge threshold flags nothing
	// but the zero-to-nonzero failure count.
	loose := Diff(oldRun, newRun, DiffOptions{Threshold: 10})
	for _, d := range loose.Deltas {
		if d.Regression && d.Metric != "failed" {
			t.Errorf("threshold 1000%% still flags %s", d.Metric)
		}
	}

	// Identical runs: no regressions.
	same := Diff(oldRun, oldRun, DiffOptions{})
	if same.Regressions != 0 {
		t.Errorf("self-diff regressions = %d", same.Regressions)
	}

	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "! p95_seconds") || !strings.Contains(out, "+100.0%") {
		t.Errorf("diff rendering missing the flagged p95 row:\n%s", out)
	}
	if !strings.Contains(out, "5 regression(s)") {
		t.Errorf("diff rendering missing the verdict:\n%s", out)
	}
}

func TestRenderers(t *testing.T) {
	m := mkManifest("run-a", "study", time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC))
	m.Failures = []FailureSummary{{Name: "proj-7", Err: "bad parse"}}
	m.Options = map[string]string{"workers": "8", "cache-dir": "/tmp/c"}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"run-a", "195 analyzed", "p95 0.0500s", "extract=1.200s",
		"90% hit rate", "FAIL proj-7", "-workers=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := WriteList(&buf, []*Manifest{m}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "run-a") || !strings.Contains(buf.String(), "1 run(s)") {
		t.Errorf("list output:\n%s", buf.String())
	}
}

func TestHandler(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	a := mkManifest("20260805T090000-aaaa", "study", base)
	b := mkManifest("20260805T100000-bbbb", "bench", base.Add(time.Hour))
	for _, m := range []*Manifest{a, b} {
		if _, err := Write(dir, m); err != nil {
			t.Fatal(err)
		}
	}
	h := Handler(dir)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs", nil))
	if rec.Code != 200 {
		t.Fatalf("/runs = %d", rec.Code)
	}
	var summaries []Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &summaries); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if len(summaries) != 2 || summaries[0].ID != a.ID || summaries[1].Command != "bench" {
		t.Errorf("summaries = %+v", summaries)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/20260805T090000-aaaa", nil))
	var got Manifest
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil || got.ID != a.ID || got.Projects != 195 {
		t.Errorf("single manifest = %+v (%v)", got, err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/latest", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil || got.ID != b.ID {
		t.Errorf("latest = %+v (%v)", got, err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown run = %d, want 404", rec.Code)
	}
}

func TestRegisterMetrics(t *testing.T) {
	dir := t.TempDir()
	m := mkManifest("run-a", "study", time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC))
	m.Failed = 3
	if _, err := Write(dir, m); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	RegisterMetrics(reg, dir)
	snap := reg.Snapshot()
	if snap["coevo_runlog_runs"] != 1 {
		t.Errorf("coevo_runlog_runs = %v", snap["coevo_runlog_runs"])
	}
	if snap["coevo_runlog_last_run_failed_projects"] != 3 {
		t.Errorf("failed gauge = %v", snap["coevo_runlog_last_run_failed_projects"])
	}
	if snap["coevo_runlog_last_run_duration_seconds"] != 2 {
		t.Errorf("duration gauge = %v", snap["coevo_runlog_last_run_duration_seconds"])
	}
}
