package runlog

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"coevo/internal/obs"
)

// Summary is the /runs list view of a manifest: enough to pick a run,
// small enough to list hundreds.
type Summary struct {
	ID              string    `json:"id"`
	Command         string    `json:"command"`
	JobID           string    `json:"job_id,omitempty"`
	Tenant          string    `json:"tenant,omitempty"`
	TraceID         string    `json:"trace_id,omitempty"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Outcome         string    `json:"outcome"`
	Projects        int       `json:"projects"`
	Failed          int       `json:"failed"`
	P95Seconds      float64   `json:"p95_seconds,omitempty"`
}

// Summarize projects a manifest onto its list view.
func Summarize(m *Manifest) Summary {
	return Summary{
		ID: m.ID, Command: m.Command, JobID: m.JobID, Tenant: m.Tenant,
		TraceID: m.TraceID,
		Start:   m.Start, DurationSeconds: m.DurationSeconds, Outcome: m.Outcome,
		Projects: m.Projects, Failed: m.Failed, P95Seconds: m.P95Seconds,
	}
}

// Handler serves the ledger over HTTP, mounted at /runs by the embedded
// observability server: GET /runs lists every run as a JSON summary
// array (newest last, mirroring List), and GET /runs/<id> returns one
// full manifest ("latest" and unique id prefixes resolve like Load).
// The ledger directory is re-read per request, so a long-lived server
// always shows runs recorded after it started.
func Handler(dir string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/runs"), "/")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			runs, err := List(dir)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			summaries := make([]Summary, 0, len(runs))
			for _, m := range runs {
				summaries = append(summaries, Summarize(m))
			}
			enc.Encode(summaries)
			return
		}
		m, err := Load(dir, id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		enc.Encode(m)
	})
}

// RegisterMetrics exposes ledger freshness in a metrics registry — what
// a Prometheus scraping `coevo serve` alerts on: how many runs the
// ledger holds, when the last one finished, how long it took and how
// much of it failed. The directory is re-read at exposition time.
func RegisterMetrics(reg *obs.Registry, dir string) {
	last := func(pick func(*Manifest) float64) func() float64 {
		return func() float64 {
			runs, err := List(dir)
			if err != nil || len(runs) == 0 {
				return 0
			}
			return pick(runs[len(runs)-1])
		}
	}
	reg.GaugeFunc("coevo_runlog_runs", "Manifests in the run ledger.",
		func() float64 {
			runs, _ := List(dir)
			return float64(len(runs))
		})
	reg.GaugeFunc("coevo_runlog_last_run_end_timestamp_seconds",
		"Unix time the most recent run finished.",
		last(func(m *Manifest) float64 { return float64(m.End.Unix()) }))
	reg.GaugeFunc("coevo_runlog_last_run_duration_seconds",
		"Wall time of the most recent run.",
		last(func(m *Manifest) float64 { return m.DurationSeconds }))
	reg.GaugeFunc("coevo_runlog_last_run_failed_projects",
		"Projects the most recent run could not measure.",
		last(func(m *Manifest) float64 { return float64(m.Failed) }))
}
