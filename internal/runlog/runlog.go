// Package runlog is the study toolkit's persistent run ledger: every
// pipeline run (study, gen, taxa, bench) writes one atomic JSON manifest
// — run id, command and options, build provenance, wall time, per-stage
// durations, cache counters, the final metrics-registry snapshot and a
// failure summary — into a ledger directory, so runs survive their
// process and any two of them can be compared for metric regressions
// long after the fact.
//
// The ledger is a plain directory of <run-id>.json files: rsync-able,
// greppable, diff-able with standard tools, and served over HTTP by the
// embedded observability server (internal/obs) at /runs.
package runlog

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Manifest is one recorded run. Every field is filled best-effort: a
// manifest with gaps (no cache, no metrics) is still a valid ledger
// entry.
type Manifest struct {
	// ID is the ledger key: sortable UTC timestamp plus a random suffix.
	ID string `json:"id"`
	// Command is the subcommand that ran ("study", "gen", "taxa", "bench")
	// or "job" for runs executed by the job service.
	Command string `json:"command"`
	// Options records the explicitly-set command-line flags (for CLI runs)
	// or the submitted spec's parameters (for job runs).
	Options map[string]string `json:"options,omitempty"`

	// JobID and Tenant link a manifest to the job-service submission that
	// produced it (empty for CLI runs) — the job→run join key that makes a
	// job's sealed result fetchable and diffable over /runs.
	JobID  string `json:"job_id,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// TraceID is the W3C trace id of the HTTP request that submitted the
	// job — the same id stamped on the job record, its SSE events, the
	// access log line and every exported span, so a manifest joins the
	// full request-scoped trace.
	TraceID string `json:"trace_id,omitempty"`

	Start           time.Time `json:"start"`
	End             time.Time `json:"end"`
	DurationSeconds float64   `json:"duration_seconds"`
	// Outcome is "ok", "failed" or "interrupted".
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`

	// Build and host provenance.
	GoVersion     string `json:"go_version"`
	ModuleVersion string `json:"module_version,omitempty"`
	VCSRevision   string `json:"vcs_revision,omitempty"`
	VCSModified   bool   `json:"vcs_modified,omitempty"`
	Hostname      string `json:"hostname,omitempty"`
	NumCPU        int    `json:"num_cpu"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	CPUModel      string `json:"cpu_model,omitempty"`

	// Run shape and latency summary (from the engine metrics collector).
	Workers          int     `json:"workers,omitempty"`
	Projects         int     `json:"projects"`
	Failed           int     `json:"failed"`
	P50Seconds       float64 `json:"p50_seconds,omitempty"`
	P95Seconds       float64 `json:"p95_seconds,omitempty"`
	MaxSeconds       float64 `json:"max_seconds,omitempty"`
	ThroughputPerSec float64 `json:"throughput_per_sec,omitempty"`
	// PeakHeapBytes is the high-water mark of the sampled live heap over
	// the run (see obs.ProcStats) — the number the streaming pipeline
	// exists to keep flat.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`

	// StageSeconds sums wall time per named pipeline stage across tasks.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	// Cache carries the result-cache counters when a cache was attached.
	Cache *CacheStats `json:"cache,omitempty"`
	// Metrics is the final metrics-registry snapshot (series → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Failures lists the projects the run could not measure.
	Failures []FailureSummary `json:"failures,omitempty"`

	// Shards is the shard count of a scaled-out run (0 for single-process
	// runs); ShardRuns records each worker's contribution, so the combined
	// manifest is the whole-study ledger entry and each shard's own
	// manifest stays reachable through it.
	Shards    int        `json:"shards,omitempty"`
	ShardRuns []ShardRun `json:"shard_runs,omitempty"`
}

// ShardRun summarizes one worker's slice of a sharded study inside the
// coordinator's combined manifest.
type ShardRun struct {
	Shard      int    `json:"shard"`
	Addr       string `json:"addr,omitempty"`
	ManifestID string `json:"manifest_id,omitempty"`
	TraceID    string `json:"trace_id,omitempty"`
	Projects   int    `json:"projects"`
	Failed     int    `json:"failed,omitempty"`
}

// CacheStats mirrors the result cache's counter snapshot, plus the
// derived hit rate the regression detector compares. The remote fields
// cover the optional remote tier of a sharded run; they stay zero (and
// absent from the JSON) for purely local caches.
type CacheStats struct {
	Hits               int64   `json:"hits"`
	Misses             int64   `json:"misses"`
	MemoryHits         int64   `json:"memory_hits"`
	DiskHits           int64   `json:"disk_hits"`
	RemoteHits         int64   `json:"remote_hits,omitempty"`
	RemoteMisses       int64   `json:"remote_misses,omitempty"`
	Puts               int64   `json:"puts"`
	Corrupt            int64   `json:"corrupt"`
	BytesRead          int64   `json:"bytes_read"`
	BytesWritten       int64   `json:"bytes_written"`
	RemoteBytesRead    int64   `json:"remote_bytes_read,omitempty"`
	RemoteBytesWritten int64   `json:"remote_bytes_written,omitempty"`
	HitRate            float64 `json:"hit_rate"`
}

// FailureSummary is one unmeasurable project.
type FailureSummary struct {
	Name string `json:"name"`
	Err  string `json:"err"`
}

// NewID builds a ledger id from the run's start time: a sortable UTC
// timestamp plus four random bytes so concurrent runs never collide.
func NewID(start time.Time) string {
	var suffix [4]byte
	if _, err := rand.Read(suffix[:]); err != nil {
		// Fall back to the sub-second clock; uniqueness degrades only for
		// runs started the same nanosecond.
		return fmt.Sprintf("%s-%09d", start.UTC().Format("20060102T150405"), start.Nanosecond())
	}
	return fmt.Sprintf("%s-%x", start.UTC().Format("20060102T150405"), suffix)
}

// NewManifest starts a manifest for a run beginning now, with the build
// and host provenance already stamped.
func NewManifest(command string, start time.Time) *Manifest {
	m := &Manifest{
		ID:         NewID(start),
		Command:    command,
		Start:      start.UTC(),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
	if host, err := os.Hostname(); err == nil {
		m.Hostname = host
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		m.ModuleVersion = info.Main.Version
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// Finish stamps the end time, duration and outcome. A nil runErr is
// "ok"; a context cancellation reads as "interrupted"; anything else is
// "failed" with the cause recorded.
func (m *Manifest) Finish(end time.Time, runErr error) {
	m.End = end.UTC()
	m.DurationSeconds = end.Sub(m.Start).Seconds()
	switch {
	case runErr == nil:
		m.Outcome = "ok"
	case isCancellation(runErr):
		m.Outcome = "interrupted"
		m.Error = runErr.Error()
	default:
		m.Outcome = "failed"
		m.Error = runErr.Error()
	}
}

// isCancellation reports whether err stems from context cancellation —
// matched by message so runlog does not import context semantics it
// cannot see through wrapping anyway.
func isCancellation(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "context canceled") || strings.Contains(msg, "context deadline exceeded")
}

// cpuModel reads the processor model name, best-effort (Linux only;
// empty elsewhere).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// Write persists the manifest atomically into dir (created if missing):
// the JSON is written to a temp file and renamed into place, so a
// crashed or interrupted writer never leaves a torn ledger entry. It
// returns the manifest's path.
func Write(dir string, m *Manifest) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("runlog: %w", err)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("runlog: marshal %s: %w", m.ID, err)
	}
	raw = append(raw, '\n')
	path := filepath.Join(dir, m.ID+".json")
	tmp, err := os.CreateTemp(dir, ".tmp-"+m.ID+"-*")
	if err != nil {
		return "", fmt.Errorf("runlog: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("runlog: write %s: %w", m.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("runlog: close %s: %w", m.ID, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("runlog: commit %s: %w", m.ID, err)
	}
	return path, nil
}

// List reads every manifest in dir, sorted by start time (ties by id).
// Unreadable or torn entries are skipped — one bad file must not hide
// the rest of the ledger. A missing directory is an empty ledger.
func List(dir string) ([]*Manifest, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	var runs []*Manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		m, err := load(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		runs = append(runs, m)
	}
	sort.Slice(runs, func(a, b int) bool {
		if !runs[a].Start.Equal(runs[b].Start) {
			return runs[a].Start.Before(runs[b].Start)
		}
		return runs[a].ID < runs[b].ID
	})
	return runs, nil
}

// Load resolves one run by exact id, unique id prefix, or the special
// names "latest" and "previous" (the newest and second-newest entries).
func Load(dir, id string) (*Manifest, error) {
	runs, err := List(dir)
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("runlog: ledger %s is empty", dir)
	}
	switch id {
	case "latest":
		return runs[len(runs)-1], nil
	case "previous":
		if len(runs) < 2 {
			return nil, fmt.Errorf("runlog: ledger %s has no previous run", dir)
		}
		return runs[len(runs)-2], nil
	}
	var matches []*Manifest
	for _, m := range runs {
		if m.ID == id {
			return m, nil
		}
		if strings.HasPrefix(m.ID, id) {
			matches = append(matches, m)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return nil, fmt.Errorf("runlog: no run %q in %s", id, dir)
	default:
		ids := make([]string, len(matches))
		for i, m := range matches {
			ids[i] = m.ID
		}
		return nil, fmt.Errorf("runlog: run id %q is ambiguous: %s", id, strings.Join(ids, ", "))
	}
}

// load reads one manifest file.
func load(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("runlog: %s: %w", path, err)
	}
	if m.ID == "" {
		return nil, fmt.Errorf("runlog: %s: manifest without an id", path)
	}
	return &m, nil
}
