package shard

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"coevo/internal/obs"
	"coevo/internal/study"
)

// traceMiddleware mimics obs.Serve's instrument middleware for tests:
// an incoming traceparent becomes the request's TraceContext.
func traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			r = r.WithContext(obs.WithTraceContext(r.Context(), tc))
		}
		next.ServeHTTP(w, r)
	})
}

// newWorkerServer mounts a fresh worker on an httptest server the way
// obs.Serve would: /shard/run with trace propagation.
func newWorkerServer(t *testing.T) *httptest.Server {
	t.Helper()
	w := &Worker{}
	mux := http.NewServeMux()
	mux.Handle("/shard/run", traceMiddleware(w.Handler()))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestShardedRunMatchesSingleShard: coordinating three workers over HTTP
// produces byte-identical figures and CSV to the same protocol run as
// one shard — the merge is exact, not approximate.
func TestShardedRunMatchesSingleShard(t *testing.T) {
	const seed, perTaxon = int64(11), 2
	ctx := context.Background()

	// Reference: the whole corpus as a single partition.
	ref, err := (&Worker{}).Run(ctx, &RunRequest{Seed: seed, PerTaxon: perTaxon, Shard: 0, Of: 1, CSV: true})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	addrs := make([]string, 3)
	for i := range addrs {
		addrs[i] = newWorkerServer(t).URL
	}
	res, err := Run(ctx, addrs, RunRequest{Seed: seed, PerTaxon: perTaxon, CSV: true})
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}

	if res.Projects != ref.Projects {
		t.Fatalf("projects = %d, want %d", res.Projects, ref.Projects)
	}
	if got := res.Figures.EncodePartial(); !bytes.Equal(got, ref.Figures) {
		t.Fatal("merged figures diverge from the single-shard run")
	}

	var merged bytes.Buffer
	if err := res.WriteCSV(&merged); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	var want strings.Builder
	want.WriteString(CSVHeader())
	for _, row := range ref.CSV {
		want.WriteString(row.Line)
	}
	if merged.String() != want.String() {
		t.Fatal("merged CSV diverges from the single-shard run")
	}

	// One trace spans the fan-out: every shard echoes the coordinator's
	// trace id, and the bookkeeping covers every shard in order.
	if len(res.Shards) != 3 {
		t.Fatalf("shard runs = %d, want 3", len(res.Shards))
	}
	for i, sr := range res.Shards {
		if sr.Shard != i {
			t.Errorf("shard run %d records shard %d", i, sr.Shard)
		}
		if sr.TraceID != res.TraceID {
			t.Errorf("shard %d trace id %q, want %q", i, sr.TraceID, res.TraceID)
		}
	}
}

// TestWorkerRejectsBadRequests pins the handler's error mapping.
func TestWorkerRejectsBadRequests(t *testing.T) {
	srv := newWorkerServer(t)
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/shard/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"seed":1,"shard":3,"of":3}`); code != http.StatusBadRequest {
		t.Errorf("out-of-range shard = %d, want 400", code)
	}
	if code := post(`{"seed":1,"shard":0,"of":0}`); code != http.StatusBadRequest {
		t.Errorf("zero shard count = %d, want 400", code)
	}
	if code := post(`{"seed":1,"shard":0,"of":1,"dialect":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown dialect = %d, want 400", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", code)
	}
	resp, err := http.Get(srv.URL + "/shard/run")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET = %d, want 405", resp.StatusCode)
	}
}

// TestRunFailsWhenAShardFails: a failed shard fails the whole run —
// a silently narrowed population is worse than no answer.
func TestRunFailsWhenAShardFails(t *testing.T) {
	good := newWorkerServer(t)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "worker exploded", http.StatusInternalServerError)
	}))
	defer bad.Close()

	_, err := Run(context.Background(), []string{good.URL, bad.URL}, RunRequest{Seed: 3, PerTaxon: 1})
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v, want shard 1 failure", err)
	}
}

// TestRunValidatesShape: the coordinator refuses mismatched shard
// counts and empty worker lists before any network traffic.
func TestRunValidatesShape(t *testing.T) {
	if _, err := Run(context.Background(), nil, RunRequest{Seed: 1}); err == nil {
		t.Error("no workers should fail")
	}
	if _, err := Run(context.Background(), []string{"a", "b"}, RunRequest{Seed: 1, Of: 3}); err == nil {
		t.Error("worker/shard count mismatch should fail")
	}
}

// TestPartialDecodeRejectsGarbage: a corrupted shard response fails the
// merge loudly.
func TestPartialDecodeRejectsGarbage(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"shard":0,"projects":1,"figures":"Z2FyYmFnZQ=="}`))
	}))
	defer garbage.Close()
	_, err := Run(context.Background(), []string{garbage.URL}, RunRequest{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "decode partial") {
		t.Fatalf("err = %v, want decode failure", err)
	}
	if _, err := study.DecodePartialFigures([]byte("garbage")); err == nil {
		t.Fatal("garbage must not decode")
	}
}
