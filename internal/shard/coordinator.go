package shard

// The coordinator side: fan a RunRequest out to one worker per shard,
// decode and fold the partial figures in deterministic shard order, and
// reassemble failures and CSV rows into global corpus order. Because
// every figure is an associative fold keyed by global index, the merged
// result is byte-identical to the single-process run — the coordinator
// asserts nothing weaker.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"coevo/internal/obs"
	"coevo/internal/runlog"
	"coevo/internal/study"
)

// Result is the folded outcome of a sharded run: the combined figures
// (equal to a sequential run's), corpus-ordered failures and CSV rows,
// and the per-shard bookkeeping the coordinator seals into its combined
// manifest.
type Result struct {
	// Figures is the merged accumulator — feed it to report.Figures
	// Artifacts exactly like a single-process run's.
	Figures *study.Figures
	// Projects counts delivered results across every shard.
	Projects int
	// Failures lists unmeasurable projects from every shard, sorted by
	// global corpus index — the order a sequential run reports them in.
	Failures []study.Failure
	// CSVRows holds the dataset rows (when requested), sorted by global
	// index; WriteCSV renders them with the header.
	CSVRows []CSVRow
	// Shards records each worker's contribution for the combined
	// manifest; Cache and StageSeconds are the across-shard sums.
	Shards       []runlog.ShardRun
	Cache        *runlog.CacheStats
	StageSeconds map[string]float64
	// TraceID is the trace every shard request carried.
	TraceID string
}

// WriteCSV renders the combined per-project dataset: the header line
// followed by every captured row in global corpus order — byte-identical
// to the sequential export.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, CSVHeader()); err != nil {
		return err
	}
	for _, row := range r.CSVRows {
		if _, err := io.WriteString(w, row.Line); err != nil {
			return err
		}
	}
	return nil
}

// Run coordinates one sharded study: shard i of len(addrs) goes to
// addrs[i], all shards run concurrently, and the partials fold in shard
// order. The request's Shard field is ignored (set per worker); Of
// defaults to len(addrs) and must match it when set. Each shard request
// carries a child span of ctx's trace context, so the whole fan-out is
// one trace.
//
// A failed shard fails the run: partial figures from a subset of shards
// would silently change the study's population, which is exactly the
// kind of quiet skew the merge laws exist to prevent.
func Run(ctx context.Context, addrs []string, req RunRequest) (*Result, error) {
	n := len(addrs)
	if n == 0 {
		return nil, errors.New("shard: no worker addresses")
	}
	if req.Of == 0 {
		req.Of = n
	}
	if req.Of != n {
		return nil, fmt.Errorf("shard: %d workers for %d shards", n, req.Of)
	}
	tc, ok := obs.TraceContextFrom(ctx)
	if !ok || !tc.Valid() {
		tc = obs.NewTraceContext()
	}

	// No client timeout: a shard runs as long as its partition takes;
	// cancellation comes from ctx through the per-request context.
	client := &http.Client{}
	responses := make([]*RunResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sreq := req
			sreq.Shard = i
			responses[i], errs[i] = post(ctx, client, addrs[i], &sreq, tc.Child())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d (%s): %w", i, addrs[i], err)
		}
	}

	res := &Result{Figures: study.NewFigures(), TraceID: tc.TraceID}
	for i, r := range responses {
		part, err := study.DecodePartialFigures(r.Figures)
		if err != nil {
			return nil, fmt.Errorf("shard %d: decode partial: %w", i, err)
		}
		if err := res.Figures.Merge(part); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		res.Projects += r.Projects
		for _, f := range r.Failures {
			res.Failures = append(res.Failures, study.Failure{Name: f.Name, Index: f.Index, Err: errors.New(f.Err)})
		}
		res.CSVRows = append(res.CSVRows, r.CSV...)
		res.Shards = append(res.Shards, runlog.ShardRun{
			Shard: i, Addr: addrs[i], ManifestID: r.ManifestID,
			TraceID: r.TraceID, Projects: r.Projects, Failed: len(r.Failures),
		})
		if r.Cache != nil {
			res.Cache = sumCacheStats(res.Cache, r.Cache)
		}
		if len(r.StageSeconds) > 0 {
			if res.StageSeconds == nil {
				res.StageSeconds = make(map[string]float64, len(r.StageSeconds))
			}
			for stage, secs := range r.StageSeconds {
				res.StageSeconds[stage] += secs
			}
		}
	}
	// Disjoint partitions mean distinct indices, so index order is total
	// and the sorts reproduce the sequential report exactly.
	sort.Slice(res.Failures, func(a, b int) bool { return res.Failures[a].Index < res.Failures[b].Index })
	sort.Slice(res.CSVRows, func(a, b int) bool { return res.CSVRows[a].Index < res.CSVRows[b].Index })
	return res, nil
}

// sumCacheStats folds one shard's cache delta into the running total,
// recomputing the derived hit rate over the sums.
func sumCacheStats(total, d *runlog.CacheStats) *runlog.CacheStats {
	if total == nil {
		total = &runlog.CacheStats{}
	}
	total.Hits += d.Hits
	total.Misses += d.Misses
	total.MemoryHits += d.MemoryHits
	total.DiskHits += d.DiskHits
	total.RemoteHits += d.RemoteHits
	total.RemoteMisses += d.RemoteMisses
	total.Puts += d.Puts
	total.Corrupt += d.Corrupt
	total.BytesRead += d.BytesRead
	total.BytesWritten += d.BytesWritten
	total.RemoteBytesRead += d.RemoteBytesRead
	total.RemoteBytesWritten += d.RemoteBytesWritten
	if n := total.Hits + total.Misses; n > 0 {
		total.HitRate = float64(total.Hits) / float64(n)
	}
	return total
}

// post sends one shard's run request and decodes the response. addr may
// be a bare host:port or a full base URL.
func post(ctx context.Context, client *http.Client, addr string, req *RunRequest, tc obs.TraceContext) (*RunResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shard/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", tc.Traceparent())
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("worker returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("decode response: %w", err)
	}
	return &rr, nil
}
