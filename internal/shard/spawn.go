package shard

// Local scale-out: spawn N worker processes of this same binary
// (`coevo shard serve`) on loopback ports and scrape each one's
// announced base URL. This is the zero-configuration path behind
// `coevo study -shards N`; pointing at long-lived remote workers via
// -shard-addrs skips spawning entirely.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"
)

// spawnTimeout bounds how long a spawned worker may take to announce
// its listen address before the spawn is abandoned.
const spawnTimeout = 30 * time.Second

// SpawnWorkers starts n worker processes of the current executable
// (`coevo shard serve -listen 127.0.0.1:0` plus extraArgs), waits for
// each to print its base URL, and returns the URLs with a stop function
// that terminates every worker. Worker stderr streams to stderr so
// their logs interleave with the coordinator's. On error, every
// already-started worker is stopped before returning.
func SpawnWorkers(ctx context.Context, n int, extraArgs []string, stderr io.Writer) (addrs []string, stop func(), err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("shard: cannot spawn %d workers", n)
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("shard: locate executable: %w", err)
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	var procs []*exec.Cmd
	stop = func() {
		for _, cmd := range procs {
			if cmd.Process != nil {
				cmd.Process.Kill() //nolint:errcheck // already exited is fine
			}
		}
		for _, cmd := range procs {
			cmd.Wait() //nolint:errcheck // reaping only
		}
	}
	defer func() {
		if err != nil {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		args := append([]string{"shard", "serve", "-listen", "127.0.0.1:0"}, extraArgs...)
		cmd := exec.Command(exe, args...)
		cmd.Stderr = stderr
		out, perr := cmd.StdoutPipe()
		if perr != nil {
			return nil, nil, fmt.Errorf("shard: worker %d: %w", i, perr)
		}
		if serr := cmd.Start(); serr != nil {
			return nil, nil, fmt.Errorf("shard: start worker %d: %w", i, serr)
		}
		procs = append(procs, cmd)
		addr, aerr := readAddr(ctx, out)
		if aerr != nil {
			return nil, nil, fmt.Errorf("shard: worker %d: %w", i, aerr)
		}
		addrs = append(addrs, addr)
	}
	return addrs, stop, nil
}

// readAddr scrapes the worker's first stdout line — its announced base
// URL — bounded by spawnTimeout and ctx.
func readAddr(ctx context.Context, out io.Reader) (string, error) {
	type lineOrErr struct {
		line string
		err  error
	}
	ch := make(chan lineOrErr, 1)
	go func() {
		sc := bufio.NewScanner(out)
		if sc.Scan() {
			ch <- lineOrErr{line: strings.TrimSpace(sc.Text())}
			// Keep draining so the worker never blocks on a full pipe.
			for sc.Scan() {
			}
			return
		}
		err := sc.Err()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		ch <- lineOrErr{err: err}
	}()
	select {
	case <-ctx.Done():
		return "", ctx.Err()
	case <-time.After(spawnTimeout):
		return "", fmt.Errorf("no listen address after %s", spawnTimeout)
	case r := <-ch:
		if r.err != nil {
			return "", fmt.Errorf("read listen address: %w", r.err)
		}
		if !strings.HasPrefix(r.line, "http://") && !strings.HasPrefix(r.line, "https://") {
			return "", fmt.Errorf("unexpected worker banner %q", r.line)
		}
		return r.line, nil
	}
}
