// Package shard is the coordinator/worker protocol that scales a study
// across processes and machines. The corpus is range-partitioned by
// residue class (corpus.Source.Partition), each worker streams its
// partition through the fused generate→analyze pipeline into a
// mergeable study.PartialFigures, and the coordinator folds the sealed
// partials in deterministic shard order — so an N-shard run is
// byte-identical to the single-process study, figures and CSV alike.
//
// The protocol rides the existing observability plane: one POST
// /shard/run per shard on the worker's obs.Serve server, W3C trace
// context propagated on the request so every shard's spans, access-log
// lines and run manifest join the coordinating run's trace, and an
// optional remote cache tier (served by the coordinator, see
// cache.TierHandler) that dedups parse/diff/measure work across every
// worker process.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"coevo/internal/cache"
	"coevo/internal/corpus"
	"coevo/internal/engine"
	"coevo/internal/obs"
	"coevo/internal/report"
	"coevo/internal/runlog"
	"coevo/internal/sqlddl"
	"coevo/internal/study"
)

// RunRequest asks a worker to analyze one partition of the synthetic
// corpus. Every field that shapes the corpus or the analysis (seed,
// scale, dialect) is in the request, so a worker is stateless between
// runs and any worker can serve any shard.
type RunRequest struct {
	// Seed drives corpus generation — the same seed every shard.
	Seed int64 `json:"seed"`
	// PerTaxon overrides the per-taxon project count (0 = the paper's
	// 195-project corpus).
	PerTaxon int `json:"per_taxon,omitempty"`
	// Dialect selects the SQL dialect adapter ("" = generic).
	Dialect string `json:"dialect,omitempty"`
	// Shard and Of select the partition: this worker analyzes exactly the
	// projects whose global corpus index ≡ Shard (mod Of).
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// CSV asks for the partition's per-project CSV rows, each tagged with
	// its global index so the coordinator can reassemble the sequential
	// export byte-for-byte.
	CSV bool `json:"csv,omitempty"`
	// CacheURL, when set, attaches a remote cache tier at this base URL
	// (the coordinator's /cache route) behind the worker's local layers
	// for the duration of the run.
	CacheURL string `json:"cache_url,omitempty"`
}

// FailureInfo is one unmeasurable project in a shard's partition,
// addressed by its global corpus index so the coordinator can interleave
// failures from every shard back into corpus order.
type FailureInfo struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Err   string `json:"err"`
}

// CSVRow is one per-project dataset row tagged with its global corpus
// index. Line is the exact bytes the sequential CSV writer would emit
// (newline included); sorting rows from all shards by Index and
// prepending the header reproduces the single-process export.
type CSVRow struct {
	Index int    `json:"index"`
	Line  string `json:"line"`
}

// RunResponse is a worker's sealed contribution: the partition's
// mergeable figures in the versioned partial-figures codec, plus the
// bookkeeping the coordinator folds into the combined run manifest.
type RunResponse struct {
	Shard    int `json:"shard"`
	Projects int `json:"projects"`
	// Figures is study.EncodePartial output (base64 over JSON).
	Figures  []byte        `json:"figures"`
	Failures []FailureInfo `json:"failures,omitempty"`
	CSV      []CSVRow      `json:"csv,omitempty"`
	// ManifestID and TraceID locate the shard's own ledger entry and the
	// trace it joined (the coordinator's, via the propagated traceparent).
	ManifestID string `json:"manifest_id,omitempty"`
	TraceID    string `json:"trace_id,omitempty"`
	// Cache is this run's cache-counter delta (not the worker's lifetime
	// totals), so the coordinator can sum whole-study cache behaviour.
	Cache        *runlog.CacheStats `json:"cache,omitempty"`
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
}

// errBadRequest marks validation failures the HTTP handler maps to 400;
// everything else is a 500.
var errBadRequest = errors.New("bad request")

// maxRequestBytes bounds a /shard/run request body; run requests are a
// few hundred bytes of parameters, never payloads.
const maxRequestBytes = 1 << 20

// Worker executes shard run requests. One Worker serves every request
// the process receives; its cache and observer are shared across runs
// (the cache deliberately so — it is the worker-local dedup plane).
type Worker struct {
	// Cache, when non-nil, memoizes pipeline stages across runs. When nil
	// and a request carries a CacheURL, a per-run memory cache is created
	// so the remote tier has local layers to front it.
	Cache *cache.Cache
	// Obs observes execution (nil-safe).
	Obs *obs.Observer
	// Workers bounds each run's analysis parallelism (0 = GOMAXPROCS).
	Workers int
	// LedgerDir, when non-empty, seals one "shard" manifest per run.
	LedgerDir string
}

// Handler serves the worker protocol: POST /shard/run with a JSON
// RunRequest, answering a JSON RunResponse. Mount it on the worker's
// obs.Serve server so requests inherit trace propagation, access logs
// and RED metrics.
func (w *Worker) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req RunRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes)).Decode(&req); err != nil {
			http.Error(rw, "decode request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := w.Run(r.Context(), &req)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, errBadRequest) {
				status = http.StatusBadRequest
			}
			http.Error(rw, err.Error(), status)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(resp) //nolint:errcheck // client gone; nothing to do
	})
}

// Run executes one shard: partition the corpus, stream the partition
// through the fused pipeline into a fresh Figures accumulator (plus CSV
// row capture when asked), seal a shard manifest, and return the
// encoded partial. The run's trace identity comes from ctx, so a
// request that arrived with a traceparent reports back into the
// coordinator's trace.
func (w *Worker) Run(ctx context.Context, req *RunRequest) (*RunResponse, error) {
	if req.Of < 1 || req.Shard < 0 || req.Shard >= req.Of {
		return nil, fmt.Errorf("shard: invalid partition %d/%d: %w", req.Shard, req.Of, errBadRequest)
	}
	if req.PerTaxon < 0 {
		return nil, fmt.Errorf("shard: negative per_taxon %d: %w", req.PerTaxon, errBadRequest)
	}
	dial, err := sqlddl.ParseDialect(req.Dialect)
	if err != nil {
		return nil, fmt.Errorf("shard: %v: %w", err, errBadRequest)
	}

	start := time.Now()
	metrics := engine.NewMetrics()
	eopts := engine.Options{Workers: w.Workers, Obs: w.Obs, OnEvent: metrics.Observe}

	c := w.Cache
	if req.CacheURL != "" {
		if c == nil {
			// cache.New with no Dir and default memory bounds never fails.
			c, _ = cache.New(cache.Options{Obs: w.Obs})
		}
		c.SetRemote(cache.NewHTTPTier(req.CacheURL))
		defer c.SetRemote(nil)
	}
	before := c.Stats()

	cfg := corpus.DefaultConfig(req.Seed)
	if req.PerTaxon > 0 {
		for i := range cfg.Profiles {
			cfg.Profiles[i].Count = req.PerTaxon
		}
	}
	cfg.Exec.Workers = w.Workers
	cfg.Cache = c
	cfg.Obs = w.Obs

	opts := study.DefaultOptions()
	opts.Exec = eopts
	opts.Cache = c
	opts.Obs = w.Obs
	opts.History.Dialect = dial

	part, err := corpus.NewSource(cfg).Partition(req.Shard, req.Of)
	if err != nil {
		return nil, fmt.Errorf("shard: %v: %w", err, errBadRequest)
	}

	figs := study.NewFigures()
	sinks := []study.Sink{figs}
	var rows *csvRows
	if req.CSV {
		rows, err = newCSVRows()
		if err != nil {
			return nil, err
		}
		sinks = append(sinks, rows)
	}

	sum, runErr := study.StreamCorpus(ctx, part, study.MultiSink(sinks...), opts)
	delta := statsDelta(before, c.Stats())
	resp := &RunResponse{Shard: req.Shard, TraceID: obs.TraceIDFrom(ctx)}
	if sum != nil {
		resp.Projects = sum.Projects
		for _, f := range sum.Failures {
			resp.Failures = append(resp.Failures, FailureInfo{Index: f.Index, Name: f.Name, Err: f.Err.Error()})
		}
	}
	if s := metrics.Snapshot(); len(s.StageTotals) > 0 {
		resp.StageSeconds = make(map[string]float64, len(s.StageTotals))
		for stage, d := range s.StageTotals {
			resp.StageSeconds[stage] = d.Seconds()
		}
	}
	resp.Cache = cacheStatsDelta(delta)
	resp.ManifestID = w.seal(req, resp, start, runErr)
	if runErr != nil {
		return nil, runErr
	}
	resp.Figures = figs.EncodePartial()
	if rows != nil {
		resp.CSV = rows.rows
	}
	return resp, nil
}

// seal records the shard run in the worker's ledger (when configured).
// Interrupted and failed runs are sealed too, so the ledger is the
// complete shard history; sealing is best-effort and never fails a run.
func (w *Worker) seal(req *RunRequest, resp *RunResponse, start time.Time, runErr error) string {
	if w.LedgerDir == "" {
		return ""
	}
	m := runlog.NewManifest("shard", start)
	m.TraceID = resp.TraceID
	m.Workers = w.Workers
	m.Options = map[string]string{
		"seed":  fmt.Sprint(req.Seed),
		"shard": fmt.Sprint(req.Shard),
		"of":    fmt.Sprint(req.Of),
	}
	if req.PerTaxon > 0 {
		m.Options["per-taxon"] = fmt.Sprint(req.PerTaxon)
	}
	if req.Dialect != "" {
		m.Options["dialect"] = req.Dialect
	}
	m.Shards = req.Of
	m.Projects = resp.Projects
	m.Failed = len(resp.Failures)
	for _, f := range resp.Failures {
		m.Failures = append(m.Failures, runlog.FailureSummary{Name: f.Name, Err: f.Err})
	}
	m.StageSeconds = resp.StageSeconds
	m.Cache = resp.Cache
	m.Finish(time.Now(), runErr)
	if _, err := runlog.Write(w.LedgerDir, m); err != nil {
		w.Obs.Logger().Warn("shard: run manifest not recorded", "err", err)
		return ""
	}
	return m.ID
}

// statsDelta subtracts two cache snapshots, isolating one run's counters
// from a worker cache shared across runs.
func statsDelta(before, after cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:               after.Hits - before.Hits,
		Misses:             after.Misses - before.Misses,
		MemoryHits:         after.MemoryHits - before.MemoryHits,
		DiskHits:           after.DiskHits - before.DiskHits,
		RemoteHits:         after.RemoteHits - before.RemoteHits,
		Puts:               after.Puts - before.Puts,
		Corrupt:            after.Corrupt - before.Corrupt,
		BytesRead:          after.BytesRead - before.BytesRead,
		BytesWritten:       after.BytesWritten - before.BytesWritten,
		MemoryMisses:       after.MemoryMisses - before.MemoryMisses,
		DiskMisses:         after.DiskMisses - before.DiskMisses,
		RemoteMisses:       after.RemoteMisses - before.RemoteMisses,
		RemoteBytesRead:    after.RemoteBytesRead - before.RemoteBytesRead,
		RemoteBytesWritten: after.RemoteBytesWritten - before.RemoteBytesWritten,
	}
}

// cacheStatsDelta converts a snapshot delta to the manifest shape, nil
// when the run touched no cache at all.
func cacheStatsDelta(s cache.Stats) *runlog.CacheStats {
	if s == (cache.Stats{}) {
		return nil
	}
	cs := &runlog.CacheStats{
		Hits: s.Hits, Misses: s.Misses, MemoryHits: s.MemoryHits,
		DiskHits: s.DiskHits, RemoteHits: s.RemoteHits,
		RemoteMisses: s.RemoteMisses, Puts: s.Puts, Corrupt: s.Corrupt,
		BytesRead: s.BytesRead, BytesWritten: s.BytesWritten,
		RemoteBytesRead: s.RemoteBytesRead, RemoteBytesWritten: s.RemoteBytesWritten,
	}
	cs.HitRate = s.HitRate()
	return cs
}

// csvRows captures the per-project CSV export one tagged row at a time.
// It is an index-aware study sink: each row records the project's global
// corpus index, so rows from different shards sort back into the exact
// sequential order. The bytes per row come from the same
// report.DatasetCSVWriter the single-process export uses.
type csvRows struct {
	buf  bytes.Buffer
	w    *report.DatasetCSVWriter
	rows []CSVRow
}

// newCSVRows builds the capture sink, draining the writer's header (the
// coordinator prepends CSVHeader once for the combined file).
func newCSVRows() (*csvRows, error) {
	r := &csvRows{}
	r.w = report.NewDatasetCSVWriter(&r.buf)
	if err := r.w.Flush(); err != nil {
		return nil, err
	}
	r.buf.Reset()
	return r, nil
}

// Add implements study.Sink (local fallback order).
func (r *csvRows) Add(p *study.ProjectResult) error { return r.AddAt(int64(len(r.rows)), p) }

// AddAt implements study.IndexedSink: seq is the global corpus index.
func (r *csvRows) AddAt(seq int64, p *study.ProjectResult) error {
	if err := r.w.Add(p); err != nil {
		return err
	}
	if err := r.w.Flush(); err != nil {
		return err
	}
	r.rows = append(r.rows, CSVRow{Index: int(seq), Line: r.buf.String()})
	r.buf.Reset()
	return nil
}

// CSVHeader returns the dataset export's header line (newline included),
// produced by the same writer that renders it in sequential runs.
func CSVHeader() string {
	var buf bytes.Buffer
	w := report.NewDatasetCSVWriter(&buf)
	w.Flush() //nolint:errcheck // bytes.Buffer writes cannot fail
	return buf.String()
}
