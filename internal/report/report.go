// Package report renders study results for terminals and files: aligned
// text tables, horizontal bar charts, joint progress line charts (the
// paper's Figure 1/3 diagrams), duration/synchronicity scatter plots
// (Figure 5), and CSV export of the per-project data set.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table renders an aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
	// Title is printed above the table when non-empty.
	Title string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders labeled horizontal bars scaled to a maximum width.
type BarChart struct {
	Title  string
	Labels []string
	Values []float64
	// Width is the maximum bar width in characters (default 40).
	Width int
}

// Render writes the chart to w.
func (c *BarChart) Render(w io.Writer) error {
	if len(c.Labels) != len(c.Values) {
		return fmt.Errorf("report: %d labels for %d values", len(c.Labels), len(c.Values))
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	labelWidth := 0
	for i, v := range c.Values {
		if v > maxVal {
			maxVal = v
		}
		if len(c.Labels[i]) > labelWidth {
			labelWidth = len(c.Labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.Values {
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * float64(width))
		}
		if v > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s | %s %g\n", labelWidth, c.Labels[i], strings.Repeat("#", bar), v)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// LineChart renders one or more series over a shared x axis as an ASCII
// plot — the rendering of the paper's joint (cumulative fractional)
// progress diagrams. Series values are expected in [0, 1].
type LineChart struct {
	Title  string
	Series []Series
	// Height is the number of plot rows (default 12); Width the number of
	// columns (default: one per point, capped at 72).
	Height int
	Width  int
}

// Series is one named line of a LineChart.
type Series struct {
	Name   string
	Marker byte
	Values []float64
}

// Render writes the chart to w.
func (c *LineChart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("report: line chart has no series")
	}
	n := 0
	for _, s := range c.Series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	if n == 0 {
		return fmt.Errorf("report: line chart series are empty")
	}
	height := c.Height
	if height <= 0 {
		height = 12
	}
	width := c.Width
	if width <= 0 {
		width = n
		if width > 72 {
			width = 72
		}
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.Series {
		for x := 0; x < width; x++ {
			// Sample the series at the column's fractional position.
			pos := 0
			if width > 1 {
				pos = x * (len(s.Values) - 1) / (width - 1)
			}
			if pos >= len(s.Values) {
				pos = len(s.Values) - 1
			}
			v := s.Values[pos]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			row := int((1 - v) * float64(height-1))
			grid[row][x] = s.Marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		axis := " "
		switch i {
		case 0:
			axis = "1"
		case height - 1:
			axis = "0"
		}
		fmt.Fprintf(&b, "%s |%s\n", axis, string(row))
	}
	fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", width))
	var legend []string
	for _, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "   %s\n", strings.Join(legend, "  "))
	_, err := io.WriteString(w, b.String())
	return err
}

// ScatterPlot renders an x/y point cloud with per-class markers — the
// Figure 5 duration-vs-synchronicity view.
type ScatterPlot struct {
	Title  string
	XLabel string
	YLabel string
	Points []ScatterPoint
	Height int
	Width  int
}

// ScatterPoint is one plotted point; Marker distinguishes classes (taxa).
type ScatterPoint struct {
	X, Y   float64
	Marker byte
}

// Render writes the plot to w.
func (p *ScatterPlot) Render(w io.Writer) error {
	if len(p.Points) == 0 {
		return fmt.Errorf("report: scatter plot has no points")
	}
	height, width := p.Height, p.Width
	if height <= 0 {
		height = 16
	}
	if width <= 0 {
		width = 64
	}
	minX, maxX := p.Points[0].X, p.Points[0].X
	minY, maxY := p.Points[0].Y, p.Points[0].Y
	for _, pt := range p.Points[1:] {
		minX, maxX = minf(minX, pt.X), maxf(maxX, pt.X)
		minY, maxY = minf(minY, pt.Y), maxf(maxY, pt.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, pt := range p.Points {
		x := int((pt.X - minX) / (maxX - minX) * float64(width-1))
		y := int((1 - (pt.Y-minY)/(maxY-minY)) * float64(height-1))
		grid[y][x] = pt.Marker
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for i, row := range grid {
		axis := "      "
		switch i {
		case 0:
			axis = fmt.Sprintf("%6.2f", maxY)
		case height - 1:
			axis = fmt.Sprintf("%6.2f", minY)
		}
		fmt.Fprintf(&b, "%s |%s\n", axis, string(row))
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-8.4g%*s\n", minX, width-8, fmt.Sprintf("%.4g", maxX))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "        x: %s, y: %s\n", p.XLabel, p.YLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
