package report

import (
	"fmt"
	"io"
	"strings"

	"coevo/internal/coevolution"
	"coevo/internal/study"
	"coevo/internal/taxa"
)

// SVG rendering of the study's figures: the joint progress diagram
// (Figures 1/3), the synchronicity histogram (Figure 4) and the
// duration-vs-synchronicity scatter (Figure 5), as self-contained SVG
// documents suitable for papers and web pages.

// svgPalette assigns a colour per taxon (and per joint-diagram series).
var svgPalette = map[taxa.Taxon]string{
	taxa.Frozen:            "#4575b4",
	taxa.AlmostFrozen:      "#74add1",
	taxa.FocusedShotFrozen: "#abd9e9",
	taxa.Moderate:          "#fdae61",
	taxa.FocusedShotLow:    "#f46d43",
	taxa.Active:            "#d73027",
}

const (
	svgSeriesTime    = "#999999"
	svgSeriesProject = "#4575b4"
	svgSeriesSchema  = "#d73027"
)

// svgCanvas accumulates SVG elements with a fixed plot area.
type svgCanvas struct {
	b                        strings.Builder
	width, height            int
	left, right, top, bottom int
}

func newSVGCanvas(width, height int) *svgCanvas {
	c := &svgCanvas{width: width, height: height, left: 50, right: 16, top: 28, bottom: 36}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	return c
}

// plotWidth and plotHeight return the drawable area.
func (c *svgCanvas) plotWidth() float64  { return float64(c.width - c.left - c.right) }
func (c *svgCanvas) plotHeight() float64 { return float64(c.height - c.top - c.bottom) }

// x and y map unit coordinates ([0,1]) into the plot area; y grows upward.
func (c *svgCanvas) x(u float64) float64 { return float64(c.left) + u*c.plotWidth() }
func (c *svgCanvas) y(u float64) float64 { return float64(c.top) + (1-u)*c.plotHeight() }

func (c *svgCanvas) title(text string) {
	fmt.Fprintf(&c.b, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`+"\n",
		c.left, escapeXML(text))
}

func (c *svgCanvas) axes(xLabel, yLabel string) {
	fmt.Fprintf(&c.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		c.x(0), c.y(0), c.x(1), c.y(0))
	fmt.Fprintf(&c.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		c.x(0), c.y(0), c.x(0), c.y(1))
	if xLabel != "" {
		fmt.Fprintf(&c.b, `<text x="%g" y="%d" text-anchor="middle">%s</text>`+"\n",
			c.x(0.5), c.height-8, escapeXML(xLabel))
	}
	if yLabel != "" {
		fmt.Fprintf(&c.b, `<text x="12" y="%g" text-anchor="middle" transform="rotate(-90 12 %g)">%s</text>`+"\n",
			c.y(0.5), c.y(0.5), escapeXML(yLabel))
	}
}

func (c *svgCanvas) polyline(points []float64, color string) {
	// points holds y values in [0,1] spread evenly over x.
	var coords []string
	n := len(points)
	for i, v := range points {
		u := 0.0
		if n > 1 {
			u = float64(i) / float64(n-1)
		}
		coords = append(coords, fmt.Sprintf("%.1f,%.1f", c.x(u), c.y(clamp01(v))))
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
		strings.Join(coords, " "), color)
}

func (c *svgCanvas) circle(ux, uy float64, color string) {
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="3.2" fill="%s" fill-opacity="0.75"/>`+"\n",
		c.x(ux), c.y(uy), color)
}

func (c *svgCanvas) bar(uxLo, uxHi, uy float64, color string) {
	x0, x1 := c.x(uxLo), c.x(uxHi)
	y0, y1 := c.y(0), c.y(clamp01(uy))
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		x0, y1, x1-x0, y0-y1, color)
}

func (c *svgCanvas) label(ux, uy float64, anchor, text string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" text-anchor="%s">%s</text>`+"\n",
		c.x(ux), c.y(uy), anchor, escapeXML(text))
}

func (c *svgCanvas) legend(entries []struct{ Name, Color string }) {
	x := c.left
	for _, e := range entries {
		fmt.Fprintf(&c.b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			x, c.height-22, e.Color)
		fmt.Fprintf(&c.b, `<text x="%d" y="%d">%s</text>`+"\n", x+14, c.height-13, escapeXML(e.Name))
		x += 14 + 8*len(e.Name) + 16
	}
}

func (c *svgCanvas) finish(w io.Writer) error {
	c.b.WriteString("</svg>\n")
	_, err := io.WriteString(w, c.b.String())
	return err
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteJointProgressSVG renders a Figure 1/3-style joint cumulative
// progress diagram as SVG.
func WriteJointProgressSVG(w io.Writer, title string, j *coevolution.JointProgress) error {
	if j.Len() == 0 {
		return fmt.Errorf("report: empty joint progress")
	}
	c := newSVGCanvas(560, 320)
	c.title(title)
	c.axes("project lifetime (months)", "cumulative fraction")
	c.polyline(j.Time, svgSeriesTime)
	c.polyline(j.Project, svgSeriesProject)
	c.polyline(j.Schema, svgSeriesSchema)
	c.label(0, 1.02, "start", "1.0")
	c.label(0, -0.02, "end", "0.0")
	c.legend([]struct{ Name, Color string }{
		{"time", svgSeriesTime}, {"project", svgSeriesProject}, {"schema", svgSeriesSchema},
	})
	return c.finish(w)
}

// WriteScatterSVG renders the Figure 5 duration-vs-synchronicity scatter
// as SVG, colour-coded by taxon.
func WriteScatterSVG(w io.Writer, points []study.ScatterPoint) error {
	if len(points) == 0 {
		return fmt.Errorf("report: no scatter points")
	}
	maxDur := 1
	for _, p := range points {
		if p.Duration > maxDur {
			maxDur = p.Duration
		}
	}
	c := newSVGCanvas(640, 400)
	c.title("Duration vs 10%-synchronicity by taxon")
	c.axes(fmt.Sprintf("duration (months, max %d)", maxDur), "10%-synchronicity")
	for _, p := range points {
		color, ok := svgPalette[p.Taxon]
		if !ok {
			color = "#888888"
		}
		c.circle(float64(p.Duration)/float64(maxDur), clamp01(p.Sync), color)
	}
	var legend []struct{ Name, Color string }
	for _, taxon := range taxa.All() {
		legend = append(legend, struct{ Name, Color string }{taxon.String(), svgPalette[taxon]})
	}
	c.legend(legend[:3]) // first row; the palette is documented in the doc comment
	return c.finish(w)
}

// WriteSyncHistogramSVG renders the Figure 4 histogram as SVG.
func WriteSyncHistogramSVG(w io.Writer, h *study.SyncHistogram) error {
	if len(h.Buckets) == 0 {
		return fmt.Errorf("report: empty histogram")
	}
	maxCount := 1
	for _, count := range h.Buckets {
		if count > maxCount {
			maxCount = count
		}
	}
	c := newSVGCanvas(560, 320)
	c.title(fmt.Sprintf("Projects per %.0f%%-synchronicity range", h.Theta*100))
	c.axes("", "projects")
	n := len(h.Buckets)
	for i, count := range h.Buckets {
		lo := float64(i)/float64(n) + 0.02
		hi := float64(i+1)/float64(n) - 0.02
		c.bar(lo, hi, float64(count)/float64(maxCount), svgSeriesProject)
		c.label((lo+hi)/2, -0.06, "middle", h.Labels[i])
		c.label((lo+hi)/2, float64(count)/float64(maxCount)+0.02, "middle", fmt.Sprint(count))
	}
	return c.finish(w)
}
