package report

// The study's evaluation output as named sections: one shared rendering
// path for every consumer — the CLI's stdout/-out files, the job
// service's fetchable results — so a study run produces byte-identical
// figures no matter which surface requested it.

import (
	"fmt"
	"io"

	"coevo/internal/study"
)

// StudyArtifacts holds every evaluation figure's input, computed either
// by folding a batch Dataset or live by the streaming Figures sink — one
// rendering path for both modes guarantees their output is identical.
type StudyArtifacts struct {
	Hist       *study.SyncHistogram
	Scatter    []study.ScatterPoint
	BandIn     int
	BandOut    int
	Advance    *study.AdvanceTable
	Always     *study.AlwaysAdvanceSummary
	Attainment *study.AttainmentBreakdown
	Stats      func() (*study.StatsReport, error)
	Health     *study.ParseHealthSummary
}

// DatasetArtifacts folds a batch dataset into the figure inputs.
func DatasetArtifacts(d *study.Dataset, seed int64) *StudyArtifacts {
	in, out := d.LongProjectSyncBand(60, 0.2, 0.8)
	return &StudyArtifacts{
		Hist:       d.SynchronicityHistogram(0.10, 5),
		Scatter:    d.DurationSynchronicityScatter(),
		BandIn:     in,
		BandOut:    out,
		Advance:    d.AdvanceBreakdown(),
		Always:     d.AlwaysAdvance(),
		Attainment: d.Attainment(),
		Stats:      func() (*study.StatsReport, error) { return d.Statistics(seed) },
		Health:     d.ParseHealth(),
	}
}

// FiguresArtifacts reads the finished online accumulators.
func FiguresArtifacts(f *study.Figures, seed int64) *StudyArtifacts {
	in, out := f.Band.Band()
	return &StudyArtifacts{
		Hist:       f.Sync.Histogram(),
		Scatter:    f.Scatter.Points(),
		BandIn:     in,
		BandOut:    out,
		Advance:    f.Advance.Table(),
		Always:     f.Always.Summary(),
		Attainment: f.Attainment.Breakdown(),
		Stats:      func() (*study.StatsReport, error) { return f.Stats.Report(seed) },
		Health:     f.Health.Summary(),
	}
}

// StudySection is one named output of the study run.
type StudySection struct {
	Name  string
	Write func(io.Writer) error
}

// StudySections lists the evaluation artifacts in presentation order.
func StudySections(a *StudyArtifacts) []StudySection {
	return []StudySection{
		{"figure4.txt", func(w io.Writer) error {
			return Render(w, a.Hist, Text)
		}},
		{"figure4.svg", func(w io.Writer) error {
			return Render(w, a.Hist, SVG)
		}},
		{"figure5.svg", func(w io.Writer) error {
			return Render(w, a.Scatter, SVG)
		}},
		{"figure5.txt", func(w io.Writer) error {
			if err := Render(w, a.Scatter, Text); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "projects older than 60 months: %d in the (0.2, 0.8) band, %d outside\n", a.BandIn, a.BandOut)
			return err
		}},
		{"figure6.txt", func(w io.Writer) error {
			return Render(w, a.Advance, Text)
		}},
		{"figure7.txt", func(w io.Writer) error {
			return Render(w, a.Always, Text)
		}},
		{"figure8.txt", func(w io.Writer) error {
			return Render(w, a.Attainment, Text)
		}},
		{"section7.txt", func(w io.Writer) error {
			st, err := a.Stats()
			if err != nil {
				return err
			}
			return Render(w, st, Text)
		}},
		{"parsehealth.txt", func(w io.Writer) error {
			return WriteParseHealth(w, a.Health)
		}},
	}
}

// WriteParseHealth renders the corpus-wide parse-health report: how much
// DDL the recovering parser handled cleanly, what it recovered or
// dropped, the diagnostic mix, and the commits the extraction excluded.
func WriteParseHealth(w io.Writer, h *study.ParseHealthSummary) error {
	if h == nil {
		_, err := fmt.Fprintln(w, "parse health: not collected")
		return err
	}
	t := h.Total
	fmt.Fprintf(w, "parse health (dialect %s):\n", orUnknown(t.Dialect))
	fmt.Fprintf(w, "  projects    %d (%d clean)\n", h.Projects, h.CleanProjects)
	fmt.Fprintf(w, "  versions    %d (%d clean)\n", t.Versions, t.CleanVersions)
	fmt.Fprintf(w, "  statements  %d attempted: %d parsed, %d recovered, %d dropped\n",
		t.Stats.Attempted, t.Stats.Parsed, t.Stats.Recovered, t.Stats.Dropped)
	fmt.Fprintf(w, "  diagnostics %d (%d lex, %d syntax, %d semantic, %d uncategorized)\n",
		t.Diagnostics(), t.Lex, t.Syntax, t.Semantic, t.Uncategorized)
	_, err := fmt.Fprintf(w, "  excluded    %d merge commits, %d no-op schema versions\n",
		t.MergesSkipped, t.NoOpCommits)
	return err
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// CaseStudy renders the Section 3.3 single-project deep dive: history
// statistics, the joint progress diagram and the full measure suite —
// the output of `coevo analyze`, `coevo ingest` and ingest jobs.
func CaseStudy(w io.Writer, res *study.ProjectResult) error {
	m := res.Measures
	fmt.Fprintf(w, "project   %s (ddl: %s)\n", res.Name, res.DDLPath)
	fmt.Fprintf(w, "taxon     %s\n", res.Taxon)
	fmt.Fprintf(w, "duration  %d months\n", res.DurationMonths)
	fmt.Fprintf(w, "commits   %d total, %d touching the schema (%d active)\n",
		res.ProjectCommits, res.SchemaCommits, res.ActiveSchemaCommits)
	fmt.Fprintf(w, "activity  %d file updates, %d schema change units\n",
		res.FileUpdates, res.TotalSchemaActivity)
	h := res.ParseHealth
	fmt.Fprintf(w, "parsing   dialect %s: %d versions (%d clean); %d statements (%d parsed, %d recovered, %d dropped)\n",
		orUnknown(h.Dialect), h.Versions, h.CleanVersions,
		h.Stats.Attempted, h.Stats.Parsed, h.Stats.Recovered, h.Stats.Dropped)
	fmt.Fprintf(w, "          %d diagnostics (%d lex, %d syntax, %d semantic); excluded %d merges, %d no-op versions\n\n",
		h.Diagnostics(), h.Lex, h.Syntax, h.Semantic, h.MergesSkipped, h.NoOpCommits)

	fig := JointProgressFigure{Title: "joint cumulative fractional progress", Progress: res.Joint}
	if err := Render(w, fig, Text); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nmeasures:\n")
	fmt.Fprintf(w, "  5%%-synchronicity   %.2f\n", m.Sync5)
	fmt.Fprintf(w, "  10%%-synchronicity  %.2f\n", m.Sync10)
	if m.AdvanceDefined {
		fmt.Fprintf(w, "  advance over time    %.2f  (always: %v)\n", m.AdvanceTime, m.AlwaysAheadOfTime)
		fmt.Fprintf(w, "  advance over source  %.2f  (always: %v)\n", m.AdvanceSource, m.AlwaysAheadOfSource)
	} else {
		fmt.Fprintf(w, "  advance measures undefined (single-month project)\n")
	}
	fmt.Fprintf(w, "  attainment: 50%% @ %.2f of life, 75%% @ %.2f, 80%% @ %.2f, 100%% @ %.2f\n",
		m.Attain50, m.Attain75, m.Attain80, m.Attain100)
	if v, month, err := res.Joint.MaxDivergence(); err == nil {
		fmt.Fprintf(w, "  max divergence %.2f at month %d of %d\n", v, month, res.DurationMonths)
	}
	return nil
}
