package report

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"coevo/internal/coevolution"
	"coevo/internal/study"
	"coevo/internal/taxa"
)

// assertWellFormedSVG checks the output parses as XML and carries the svg
// root element.
func assertWellFormedSVG(t *testing.T, out []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(out))
	sawSVG := false
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, out)
		}
		if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "svg" {
			sawSVG = true
		}
	}
	if !sawSVG {
		t.Fatalf("no <svg> root element:\n%s", out)
	}
}

func TestWriteJointProgressSVG(t *testing.T) {
	j := &coevolution.JointProgress{
		Time:    []float64{0, 0.25, 0.5, 0.75, 1},
		Project: []float64{0.2, 0.4, 0.6, 0.8, 1},
		Schema:  []float64{0.8, 0.8, 1, 1, 1},
	}
	var buf bytes.Buffer
	if err := WriteJointProgressSVG(&buf, `a "titled" <project>`, j); err != nil {
		t.Fatal(err)
	}
	assertWellFormedSVG(t, buf.Bytes())
	out := buf.String()
	if strings.Count(out, "<polyline") != 3 {
		t.Errorf("want 3 polylines, got %d", strings.Count(out, "<polyline"))
	}
	if !strings.Contains(out, "&quot;titled&quot;") {
		t.Error("title not escaped")
	}
	if err := WriteJointProgressSVG(&buf, "x", &coevolution.JointProgress{}); err == nil {
		t.Error("empty joint progress should fail")
	}
}

func TestWriteScatterSVG(t *testing.T) {
	points := []study.ScatterPoint{
		{Name: "a", Taxon: taxa.Frozen, Duration: 10, Sync: 0.4},
		{Name: "b", Taxon: taxa.Active, Duration: 120, Sync: 0.9},
		{Name: "c", Taxon: taxa.Moderate, Duration: 55, Sync: 0.1},
	}
	var buf bytes.Buffer
	if err := WriteScatterSVG(&buf, points); err != nil {
		t.Fatal(err)
	}
	assertWellFormedSVG(t, buf.Bytes())
	if got := strings.Count(buf.String(), "<circle"); got != 3 {
		t.Errorf("want 3 circles, got %d", got)
	}
	if err := WriteScatterSVG(&buf, nil); err == nil {
		t.Error("empty scatter should fail")
	}
}

func TestWriteSyncHistogramSVG(t *testing.T) {
	h := &study.SyncHistogram{
		Theta:   0.10,
		Buckets: []int{40, 30, 35, 30, 60},
		Labels:  []string{"[0%-20%)", "[20%-40%)", "[40%-60%)", "[60%-80%)", "[80%-100%]"},
	}
	var buf bytes.Buffer
	if err := WriteSyncHistogramSVG(&buf, h); err != nil {
		t.Fatal(err)
	}
	assertWellFormedSVG(t, buf.Bytes())
	out := buf.String()
	// One bar per bucket plus the background rect.
	if got := strings.Count(out, "<rect"); got != len(h.Buckets)+1 {
		t.Errorf("want %d rects, got %d", len(h.Buckets)+1, got)
	}
	if !strings.Contains(out, "60") {
		t.Error("bucket count labels missing")
	}
	if err := WriteSyncHistogramSVG(&buf, &study.SyncHistogram{}); err == nil {
		t.Error("empty histogram should fail")
	}
}

func TestSVGOnRealDataset(t *testing.T) {
	d := dataset(t)
	var buf bytes.Buffer
	if err := WriteJointProgressSVG(&buf, d.Projects[0].Name, d.Projects[0].Joint); err != nil {
		t.Fatal(err)
	}
	assertWellFormedSVG(t, buf.Bytes())
	buf.Reset()
	if err := WriteScatterSVG(&buf, d.DurationSynchronicityScatter()); err != nil {
		t.Fatal(err)
	}
	assertWellFormedSVG(t, buf.Bytes())
	buf.Reset()
	if err := WriteSyncHistogramSVG(&buf, d.SynchronicityHistogram(0.10, 5)); err != nil {
		t.Fatal(err)
	}
	assertWellFormedSVG(t, buf.Bytes())
}
