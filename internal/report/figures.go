package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"coevo/internal/coevolution"
	"coevo/internal/study"
	"coevo/internal/taxa"
)

// taxonMarkers assigns a stable plot marker to each taxon.
var taxonMarkers = map[taxa.Taxon]byte{
	taxa.Frozen:            'F',
	taxa.AlmostFrozen:      'a',
	taxa.FocusedShotFrozen: 's',
	taxa.Moderate:          'm',
	taxa.FocusedShotLow:    'l',
	taxa.Active:            'A',
}

// TaxonMarker returns the scatter marker for a taxon.
func TaxonMarker(t taxa.Taxon) byte {
	if m, ok := taxonMarkers[t]; ok {
		return m
	}
	return '?'
}

// WriteSyncHistogram renders the Figure 4 histogram.
func WriteSyncHistogram(w io.Writer, h *study.SyncHistogram) error {
	values := make([]float64, len(h.Buckets))
	for i, c := range h.Buckets {
		values[i] = float64(c)
	}
	chart := &BarChart{
		Title:  fmt.Sprintf("Figure 4 — projects per %.0f%%-synchronicity range", h.Theta*100),
		Labels: h.Labels,
		Values: values,
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	// The paper's default θ never skips; surface the count only when a
	// non-default θ dropped projects, so default output stays unchanged.
	if h.Skipped > 0 {
		_, err := fmt.Fprintf(w, "        (%d projects skipped: synchronicity undefined at this theta)\n", h.Skipped)
		return err
	}
	return nil
}

// WriteScatter renders the Figure 5 duration-vs-synchronicity plot.
func WriteScatter(w io.Writer, points []study.ScatterPoint) error {
	plot := &ScatterPlot{
		Title:  "Figure 5 — duration (months) vs 10%-synchronicity by taxon",
		XLabel: "duration (months)",
		YLabel: "10%-synchronicity",
	}
	for _, p := range points {
		plot.Points = append(plot.Points, ScatterPoint{
			X: float64(p.Duration), Y: p.Sync, Marker: TaxonMarker(p.Taxon),
		})
	}
	if err := plot.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "        markers: F=FROZEN a=ALMOST FROZEN s=FS&FROZEN m=MODERATE l=FS&LOW A=ACTIVE\n")
	return err
}

// WriteAdvanceTable renders the Figure 6 table.
func WriteAdvanceTable(w io.Writer, t *study.AdvanceTable) error {
	table := &Table{
		Title:  "Figure 6 — life percentage of schema advance over source and time",
		Header: []string{"Range", "# Source", "% Source", "% Cum", "# Time", "% Time", "% Cum"},
	}
	for _, r := range t.Rows {
		table.AddRow(
			r.Label,
			strconv.Itoa(r.SourceCount), fmt.Sprintf("%.0f%%", r.SourcePct*100), fmt.Sprintf("%.0f%%", r.SourceCum*100),
			strconv.Itoa(r.TimeCount), fmt.Sprintf("%.0f%%", r.TimePct*100), fmt.Sprintf("%.0f%%", r.TimeCum*100),
		)
	}
	table.AddRow("(blank)",
		strconv.Itoa(t.BlankSource), fmt.Sprintf("%.0f%%", pct(t.BlankSource, t.Total)), "",
		strconv.Itoa(t.BlankTime), fmt.Sprintf("%.0f%%", pct(t.BlankTime, t.Total)), "")
	table.AddRow("Grand Total", strconv.Itoa(t.Total), "100%", "", strconv.Itoa(t.Total), "100%", "")
	return table.Render(w)
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// WriteAlwaysAdvance renders the Figure 7 per-taxon counts.
func WriteAlwaysAdvance(w io.Writer, s *study.AlwaysAdvanceSummary) error {
	table := &Table{
		Title:  "Figure 7 — projects with schema always in advance, per taxon",
		Header: []string{"Taxon", "Projects", "Of time", "Of source", "Of both"},
	}
	for _, cell := range s.PerTaxon {
		table.AddRow(cell.Taxon.String(),
			strconv.Itoa(cell.Projects), strconv.Itoa(cell.Time),
			strconv.Itoa(cell.Source), strconv.Itoa(cell.Both))
	}
	table.AddRow("TOTAL", strconv.Itoa(s.Total), strconv.Itoa(s.Time), strconv.Itoa(s.Source), strconv.Itoa(s.Both))
	if err := table.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "always ahead: time %d (%.0f%%), source %d (%.0f%%), both %d (%.0f%%)\n",
		s.Time, pct(s.Time, s.Total), s.Source, pct(s.Source, s.Total), s.Both, pct(s.Both, s.Total))
	return err
}

// WriteAttainment renders the Figure 8 grouped counts.
func WriteAttainment(w io.Writer, b *study.AttainmentBreakdown) error {
	table := &Table{
		Title:  "Figure 8 — lifetime point of schema evolution attainment",
		Header: []string{"Completed"},
	}
	prev := 0.0
	for _, edge := range b.RangeEdges {
		table.Header = append(table.Header, fmt.Sprintf("%.0f%%-%.0f%% of life", prev*100, edge*100))
		prev = edge
	}
	for ai, alpha := range b.Alphas {
		row := []string{fmt.Sprintf("%.0f%% of activity", alpha*100)}
		for _, c := range b.Counts[ai] {
			row = append(row, strconv.Itoa(c))
		}
		table.AddRow(row...)
	}
	return table.Render(w)
}

// WriteJointProgress renders a Figure 1/3-style joint cumulative progress
// diagram for one project.
func WriteJointProgress(w io.Writer, title string, j *coevolution.JointProgress) error {
	chart := &LineChart{
		Title: title,
		Series: []Series{
			{Name: "time", Marker: '.', Values: j.Time},
			{Name: "project", Marker: 'p', Values: j.Project},
			{Name: "schema", Marker: 'S', Values: j.Schema},
		},
	}
	return chart.Render(w)
}

// WriteStatsReport renders the Section 7 statistics.
func WriteStatsReport(w io.Writer, r *study.StatsReport) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("Section 7 — statistical analysis\n")
	p("Normality (Shapiro-Wilk): max p across attributes = %.3g (paper: all < 0.007)\n", r.MaxNormalityP())
	p("Kruskal-Wallis taxon × 10%%-synchronicity: H=%.2f df=%d p=%.4g (paper p=0.003)\n",
		r.SyncByTaxon.H, r.SyncByTaxon.DF, r.SyncByTaxon.P)
	for i, taxon := range r.TaxaOrder {
		p("  median sync %-22s %.2f\n", taxon, r.SyncByTaxon.GroupMedians[i])
	}
	p("Kruskal-Wallis taxon × 75%%-attainment: H=%.2f df=%d p=%.4g (paper p=0.006)\n",
		r.AttainByTaxon.H, r.AttainByTaxon.DF, r.AttainByTaxon.P)
	for i, taxon := range r.TaxaOrder {
		p("  median attain %-22s %.2f\n", taxon, r.AttainByTaxon.GroupMedians[i])
	}
	p("Lag tests (taxon × always-in-advance):\n")
	p("  time:   chi2 p=%.3f, Fisher p=%.3f (paper: 0.07, n.s.)\n", r.TimeLagChi2.P, r.TimeLagFisher.P)
	p("  source: chi2 p=%.3f, Fisher p=%.3f (paper: 0.02 / 0.01)\n", r.SourceLagChi2.P, r.SourceLagFisher.P)
	p("  both:   chi2 p=%.3f, Fisher p=%.3f (paper: 0.02 / 0.01)\n", r.BothLagChi2.P, r.BothLagFisher.P)
	p("Kendall τ(5%%-sync, 10%%-sync) = %.2f (paper 0.67)\n", r.SyncThetaCorr.Tau)
	p("Kendall τ(advance-over-time, advance-over-source) = %.2f (paper 0.75)\n", r.AdvanceCorr.Tau)
	return err
}

// csvHeader is the column layout of the per-project CSV export.
var csvHeader = []string{
	"name", "taxon", "intended_taxon", "duration_months",
	"schema_commits", "active_schema_commits", "project_commits",
	"file_updates", "total_schema_activity",
	"sync_5", "sync_10", "advance_time", "advance_source",
	"always_time", "always_source", "always_both",
	"attain_50", "attain_75", "attain_80", "attain_100",
}

// DatasetCSVWriter streams the per-project CSV export one row at a time:
// its Add method is a study.Sink, so a streaming run can emit the data
// set while projects are analyzed, without retaining them. The bytes
// produced are identical to WriteDatasetCSV over the same results in the
// same order.
type DatasetCSVWriter struct {
	cw *csv.Writer
}

// NewDatasetCSVWriter writes the header and returns the row writer. A
// header write error surfaces from Close (csv.Writer buffers).
func NewDatasetCSVWriter(w io.Writer) *DatasetCSVWriter {
	cw := csv.NewWriter(w)
	cw.Write(csvHeader) //nolint:errcheck // buffered; surfaced by Close
	return &DatasetCSVWriter{cw: cw}
}

// Add appends one project's row.
func (d *DatasetCSVWriter) Add(p *study.ProjectResult) error {
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	b := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	intended := ""
	if p.IntendedTaxon != nil {
		intended = p.IntendedTaxon.String()
	}
	m := p.Measures
	return d.cw.Write([]string{
		p.Name, p.Taxon.String(), intended, strconv.Itoa(p.DurationMonths),
		strconv.Itoa(p.SchemaCommits), strconv.Itoa(p.ActiveSchemaCommits), strconv.Itoa(p.ProjectCommits),
		strconv.Itoa(p.FileUpdates), strconv.Itoa(p.TotalSchemaActivity),
		f(m.Sync5), f(m.Sync10), f(m.AdvanceTime), f(m.AdvanceSource),
		b(m.AlwaysAheadOfTime), b(m.AlwaysAheadOfSource), b(m.AlwaysAheadOfBoth),
		f(m.Attain50), f(m.Attain75), f(m.Attain80), f(m.Attain100),
	})
}

// Flush forces buffered rows to the underlying writer and reports the
// first buffered error. Shard workers flush after every Add to capture
// each row individually; ordinary streaming runs can rely on Close.
func (d *DatasetCSVWriter) Flush() error {
	d.cw.Flush()
	return d.cw.Error()
}

// Close flushes the writer and reports the first buffered error.
func (d *DatasetCSVWriter) Close() error {
	d.cw.Flush()
	return d.cw.Error()
}

// WriteDatasetCSV exports the per-project measurements — the reproduction's
// equivalent of the published Schema_Evo data set files. It is the
// collect-then-fold face of DatasetCSVWriter.
func WriteDatasetCSV(w io.Writer, d *study.Dataset) error {
	sw := NewDatasetCSVWriter(w)
	for _, p := range d.Projects {
		if err := sw.Add(p); err != nil {
			return err
		}
	}
	return sw.Close()
}
