package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"coevo/internal/coevolution"
	"coevo/internal/corpus"
	"coevo/internal/study"
	"coevo/internal/taxa"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"Name", "Count"}}
	tbl.AddRow("alpha", "3")
	tbl.AddRow("a-much-longer-name", "42")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "Name", "alpha", "a-much-longer-name", "42", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and rows must align to equal widths.
	if len(lines[1]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{Title: "bars", Labels: []string{"a", "bb"}, Values: []float64{10, 5}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "##") {
		t.Errorf("no bars in output:\n%s", out)
	}
	aBar := strings.Count(strings.Split(out, "\n")[1], "#")
	bBar := strings.Count(strings.Split(out, "\n")[2], "#")
	if aBar != 2*bBar {
		t.Errorf("bars not proportional: %d vs %d", aBar, bBar)
	}
}

func TestBarChartMismatch(t *testing.T) {
	c := &BarChart{Labels: []string{"a"}, Values: []float64{1, 2}}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Error("mismatched chart should fail")
	}
}

func TestBarChartTinyValuesVisible(t *testing.T) {
	c := &BarChart{Labels: []string{"big", "tiny"}, Values: []float64{1000, 1}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	tinyLine := strings.Split(buf.String(), "\n")[1]
	if !strings.Contains(tinyLine, "#") {
		t.Errorf("non-zero value rendered with no bar: %q", tinyLine)
	}
}

func TestLineChartRender(t *testing.T) {
	c := &LineChart{
		Title: "joint progress",
		Series: []Series{
			{Name: "time", Marker: '.', Values: []float64{0, 0.25, 0.5, 0.75, 1}},
			{Name: "schema", Marker: 'S', Values: []float64{0.8, 0.8, 1, 1, 1}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"joint progress", ".=time", "S=schema", "1 |", "0 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, ".") {
		t.Error("markers not plotted")
	}
}

func TestLineChartErrors(t *testing.T) {
	if err := (&LineChart{}).Render(&bytes.Buffer{}); err == nil {
		t.Error("empty chart should fail")
	}
	c := &LineChart{Series: []Series{{Name: "x", Marker: 'x'}}}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Error("empty series should fail")
	}
}

func TestScatterPlotRender(t *testing.T) {
	p := &ScatterPlot{
		Title:  "scatter",
		XLabel: "months",
		YLabel: "sync",
		Points: []ScatterPoint{{X: 1, Y: 0.1, Marker: 'F'}, {X: 100, Y: 0.9, Marker: 'A'}},
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "F") || !strings.Contains(out, "A") {
		t.Errorf("points not plotted:\n%s", out)
	}
	if !strings.Contains(out, "months") {
		t.Error("axis labels missing")
	}
	if err := (&ScatterPlot{}).Render(&bytes.Buffer{}); err == nil {
		t.Error("empty scatter should fail")
	}
}

// dataset builds a small analyzed dataset for figure writers.
func dataset(t *testing.T) *study.Dataset {
	t.Helper()
	cfg := corpus.DefaultConfig(3)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 2
		if profiles[i].DurationMonths[1] > 36 {
			profiles[i].DurationMonths[1] = 36
		}
	}
	cfg.Profiles = profiles
	projects, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := study.AnalyzeCorpus(projects, study.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFigureWriters(t *testing.T) {
	d := dataset(t)
	var buf bytes.Buffer

	if err := WriteSyncHistogram(&buf, d.SynchronicityHistogram(0.10, 5)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("Fig4 title missing")
	}

	buf.Reset()
	if err := WriteScatter(&buf, d.DurationSynchronicityScatter()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5") || !strings.Contains(buf.String(), "markers:") {
		t.Error("Fig5 content missing")
	}

	buf.Reset()
	if err := WriteAdvanceTable(&buf, d.AdvanceBreakdown()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0.9-1.0") || !strings.Contains(out, "Grand Total") || !strings.Contains(out, "(blank)") {
		t.Errorf("Fig6 table incomplete:\n%s", out)
	}

	buf.Reset()
	if err := WriteAlwaysAdvance(&buf, d.AlwaysAdvance()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FROZEN") || !strings.Contains(buf.String(), "TOTAL") {
		t.Error("Fig7 table incomplete")
	}

	buf.Reset()
	if err := WriteAttainment(&buf, d.Attainment()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "75% of activity") || !strings.Contains(buf.String(), "0%-20% of life") {
		t.Errorf("Fig8 table incomplete:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteJointProgress(&buf, "project x", d.Projects[0].Joint); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S=schema") {
		t.Error("joint progress legend missing")
	}
}

func TestWriteStatsReport(t *testing.T) {
	d := dataset(t)
	st, err := d.Statistics(7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStatsReport(&buf, st); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Shapiro-Wilk", "Kruskal-Wallis", "Kendall", "Lag tests"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q", want)
		}
	}
}

func TestWriteDatasetCSV(t *testing.T) {
	d := dataset(t)
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != d.Size()+1 {
		t.Fatalf("csv has %d lines, want %d", len(lines), d.Size()+1)
	}
	header := strings.Split(lines[0], ",")
	record := strings.Split(lines[1], ",")
	if len(header) != len(record) {
		t.Errorf("header %d columns, record %d", len(header), len(record))
	}
	if header[0] != "name" || header[len(header)-1] != "attain_100" {
		t.Errorf("unexpected header: %v", header)
	}
}

func TestTaxonMarkersDistinct(t *testing.T) {
	seen := map[byte]bool{}
	for _, taxon := range taxa.All() {
		m := TaxonMarker(taxon)
		if m == '?' || seen[m] {
			t.Errorf("marker for %v = %c not unique", taxon, m)
		}
		seen[m] = true
	}
	if TaxonMarker(taxa.Taxon(99)) != '?' {
		t.Error("unknown taxon should map to ?")
	}
}

func TestWriteJointProgressClampsValues(t *testing.T) {
	j := &coevolution.JointProgress{
		Project: []float64{-0.5, 2, 1},
		Schema:  []float64{0, 0.5, 1},
		Time:    []float64{0, 0.5, 1},
	}
	var buf bytes.Buffer
	if err := WriteJointProgress(&buf, "clamped", j); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(1.0) { // keep math import honest
		t.Fatal("unreachable")
	}
}
