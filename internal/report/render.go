package report

import (
	"errors"
	"fmt"
	"io"

	"coevo/internal/coevolution"
	"coevo/internal/study"
)

// Format selects an encoding for Render. Not every figure supports every
// format; an unsupported combination fails with ErrUnsupportedFormat.
type Format string

// The render formats.
const (
	// Text is the terminal-friendly fixed-width encoding (default).
	Text Format = "text"
	// SVG is the vector-graphics encoding of the chart figures.
	SVG Format = "svg"
	// CSV is the machine-readable export of the per-project dataset.
	CSV Format = "csv"
)

// ErrUnsupportedFormat reports a figure/format combination with no
// encoder. Test with errors.Is.
var ErrUnsupportedFormat = errors.New("report: unsupported format")

// Figure is one renderable study artifact: a value that knows how to
// encode itself in one or more formats. Render accepts either a Figure or
// a raw artifact type it can wrap via AsFigure.
type Figure interface {
	Encode(w io.Writer, f Format) error
}

// JointProgressFigure renders a Figure 1/3-style joint cumulative
// progress diagram (text, svg).
type JointProgressFigure struct {
	Title    string
	Progress *coevolution.JointProgress
}

// Encode implements Figure.
func (f JointProgressFigure) Encode(w io.Writer, fm Format) error {
	switch fm {
	case Text:
		return WriteJointProgress(w, f.Title, f.Progress)
	case SVG:
		return WriteJointProgressSVG(w, f.Title, f.Progress)
	}
	return fmt.Errorf("%w: %q for joint progress", ErrUnsupportedFormat, fm)
}

// SyncHistogramFigure renders the Figure 4 synchronicity histogram
// (text, svg).
type SyncHistogramFigure struct{ Histogram *study.SyncHistogram }

// Encode implements Figure.
func (f SyncHistogramFigure) Encode(w io.Writer, fm Format) error {
	switch fm {
	case Text:
		return WriteSyncHistogram(w, f.Histogram)
	case SVG:
		return WriteSyncHistogramSVG(w, f.Histogram)
	}
	return fmt.Errorf("%w: %q for sync histogram", ErrUnsupportedFormat, fm)
}

// ScatterFigure renders the Figure 5 duration-vs-synchronicity plot
// (text, svg).
type ScatterFigure struct{ Points []study.ScatterPoint }

// Encode implements Figure.
func (f ScatterFigure) Encode(w io.Writer, fm Format) error {
	switch fm {
	case Text:
		return WriteScatter(w, f.Points)
	case SVG:
		return WriteScatterSVG(w, f.Points)
	}
	return fmt.Errorf("%w: %q for scatter", ErrUnsupportedFormat, fm)
}

// AdvanceTableFigure renders the Figure 6 advance table (text).
type AdvanceTableFigure struct{ Table *study.AdvanceTable }

// Encode implements Figure.
func (f AdvanceTableFigure) Encode(w io.Writer, fm Format) error {
	if fm == Text {
		return WriteAdvanceTable(w, f.Table)
	}
	return fmt.Errorf("%w: %q for advance table", ErrUnsupportedFormat, fm)
}

// AlwaysAdvanceFigure renders the Figure 7 per-taxon counts (text).
type AlwaysAdvanceFigure struct{ Summary *study.AlwaysAdvanceSummary }

// Encode implements Figure.
func (f AlwaysAdvanceFigure) Encode(w io.Writer, fm Format) error {
	if fm == Text {
		return WriteAlwaysAdvance(w, f.Summary)
	}
	return fmt.Errorf("%w: %q for always-advance summary", ErrUnsupportedFormat, fm)
}

// AttainmentFigure renders the Figure 8 attainment breakdown (text).
type AttainmentFigure struct{ Breakdown *study.AttainmentBreakdown }

// Encode implements Figure.
func (f AttainmentFigure) Encode(w io.Writer, fm Format) error {
	if fm == Text {
		return WriteAttainment(w, f.Breakdown)
	}
	return fmt.Errorf("%w: %q for attainment breakdown", ErrUnsupportedFormat, fm)
}

// StatsFigure renders the Section 7 statistics (text).
type StatsFigure struct{ Report *study.StatsReport }

// Encode implements Figure.
func (f StatsFigure) Encode(w io.Writer, fm Format) error {
	if fm == Text {
		return WriteStatsReport(w, f.Report)
	}
	return fmt.Errorf("%w: %q for stats report", ErrUnsupportedFormat, fm)
}

// DatasetFigure exports the per-project measurements (csv).
type DatasetFigure struct{ Dataset *study.Dataset }

// Encode implements Figure.
func (f DatasetFigure) Encode(w io.Writer, fm Format) error {
	if fm == CSV {
		return WriteDatasetCSV(w, f.Dataset)
	}
	return fmt.Errorf("%w: %q for dataset export", ErrUnsupportedFormat, fm)
}

// AsFigure wraps a raw study artifact in its Figure, or passes a Figure
// through. Artifacts with no figure encoding are an error.
func AsFigure(artifact any) (Figure, error) {
	switch a := artifact.(type) {
	case Figure:
		return a, nil
	case *coevolution.JointProgress:
		return JointProgressFigure{Progress: a}, nil
	case *study.SyncHistogram:
		return SyncHistogramFigure{Histogram: a}, nil
	case []study.ScatterPoint:
		return ScatterFigure{Points: a}, nil
	case *study.AdvanceTable:
		return AdvanceTableFigure{Table: a}, nil
	case *study.AlwaysAdvanceSummary:
		return AlwaysAdvanceFigure{Summary: a}, nil
	case *study.AttainmentBreakdown:
		return AttainmentFigure{Breakdown: a}, nil
	case *study.StatsReport:
		return StatsFigure{Report: a}, nil
	case *study.Dataset:
		return DatasetFigure{Dataset: a}, nil
	}
	return nil, fmt.Errorf("report: no figure encoding for %T", artifact)
}

// Render encodes artifact — a Figure, or any raw artifact AsFigure
// recognizes — to w in the given format.
func Render(w io.Writer, artifact any, f Format) error {
	fig, err := AsFigure(artifact)
	if err != nil {
		return err
	}
	return fig.Encode(w, f)
}
