// Package dataset produces and serializes the per-history aggregate
// measures of the upstream Schema_Evo data set that this study builds on:
// timing (update periods), schema size at the endpoints (tables,
// attributes), commit volumes, and the full attribute-level change
// breakdown. One HistoryStats record corresponds to one row of the
// published data set's detailed-measures files.
package dataset

import (
	"encoding/json"
	"fmt"
	"io"

	"coevo/internal/heartbeat"
	"coevo/internal/history"
	"coevo/internal/schemadiff"
	"coevo/internal/taxa"
	"coevo/internal/vcs"
)

// HistoryStats is the per-project aggregate record.
type HistoryStats struct {
	Project string `json:"project"`
	DDLPath string `json:"ddl_path"`
	Taxon   string `json:"taxon"`

	// Timing: first/last month of each history and the update periods in
	// months (the paper's Schema/Project Update Period).
	SchemaStart         string `json:"schema_start"`
	SchemaEnd           string `json:"schema_end"`
	SchemaUpdatePeriod  int    `json:"schema_update_period_months"`
	ProjectStart        string `json:"project_start"`
	ProjectEnd          string `json:"project_end"`
	ProjectUpdatePeriod int    `json:"project_update_period_months"`

	// Volumes.
	ProjectCommits      int `json:"project_commits"`
	ProjectFileUpdates  int `json:"project_file_updates"`
	SchemaCommits       int `json:"schema_commits"`
	ActiveSchemaCommits int `json:"active_schema_commits"`

	// Schema size at the endpoints.
	TablesAtStart int `json:"tables_at_start"`
	TablesAtEnd   int `json:"tables_at_end"`
	AttrsAtStart  int `json:"attrs_at_start"`
	AttrsAtEnd    int `json:"attrs_at_end"`

	// Lifetime change breakdown, in the study's attribute units.
	AttrsBornWithTable    int `json:"attrs_born_with_table"`
	AttrsInjected         int `json:"attrs_injected"`
	AttrsDeletedWithTable int `json:"attrs_deleted_with_table"`
	AttrsEjected          int `json:"attrs_ejected"`
	AttrsTypeChanged      int `json:"attrs_type_changed"`
	AttrsPKChanged        int `json:"attrs_pk_changed"`
	TablesCreated         int `json:"tables_created"`
	TablesDropped         int `json:"tables_dropped"`
	TotalActivity         int `json:"total_activity"`
}

// Collect aggregates one project's histories into a record.
func Collect(name string, sh *history.SchemaHistory, ph *history.ProjectHistory, taxon taxa.Taxon) *HistoryStats {
	st := &HistoryStats{
		Project:             name,
		DDLPath:             sh.Path,
		Taxon:               taxon.String(),
		ProjectCommits:      ph.CommitCount(),
		ProjectFileUpdates:  ph.TotalFileUpdates(),
		SchemaCommits:       sh.CommitCount(),
		ActiveSchemaCommits: sh.ActiveCommits(),
		TotalActivity:       sh.TotalActivity(),
	}
	if n := len(sh.Versions); n > 0 {
		first, last := sh.Versions[0].When(), sh.Versions[n-1].When()
		st.SchemaStart = heartbeat.MonthOf(first).String()
		st.SchemaEnd = heartbeat.MonthOf(last).String()
		st.SchemaUpdatePeriod = int(heartbeat.MonthOf(last) - heartbeat.MonthOf(first))
		st.TablesAtStart = sh.Versions[0].Schema.TableCount()
		st.AttrsAtStart = sh.Versions[0].Schema.AttributeCount()
		final := sh.FinalSchema()
		st.TablesAtEnd = final.TableCount()
		st.AttrsAtEnd = final.AttributeCount()
	}
	if ph.CommitCount() > 0 {
		first, last := ph.Span()
		st.ProjectStart = heartbeat.MonthOf(first).String()
		st.ProjectEnd = heartbeat.MonthOf(last).String()
		st.ProjectUpdatePeriod = ph.DurationMonths()
	}
	for _, d := range sh.Deltas {
		st.AttrsBornWithTable += d.AttrsBornWithTable
		st.AttrsInjected += d.AttrsInjected
		st.AttrsDeletedWithTable += d.AttrsDeletedWithTable
		st.AttrsEjected += d.AttrsEjected
		st.AttrsTypeChanged += d.AttrsTypeChanged
		st.AttrsPKChanged += d.AttrsPKChanged
		st.TablesCreated += d.TablesCreated
		st.TablesDropped += d.TablesDropped
	}
	return st
}

// CollectRepository extracts both histories from a repository and
// aggregates them, classifying the taxon on the way.
func CollectRepository(repo *vcs.Repository, ddlPath string, opts history.Options, taxaCfg taxa.Config) (*HistoryStats, error) {
	if ddlPath == "" {
		found, err := history.FindDDLPath(repo)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", repo.Name(), err)
		}
		ddlPath = found
	}
	sh, err := history.ExtractSchemaHistory(repo, ddlPath, opts)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", repo.Name(), err)
	}
	ph, err := history.ExtractProjectHistory(repo)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", repo.Name(), err)
	}
	return Collect(repo.Name(), sh, ph, taxa.ClassifyHistory(sh, taxaCfg)), nil
}

// ActivityBreakdownConsistent verifies the internal invariant that the six
// attribute counters sum to the total when birth counting is on — useful
// as a data-quality check when loading external records.
func (st *HistoryStats) ActivityBreakdownConsistent() bool {
	sum := st.AttrsBornWithTable + st.AttrsInjected + st.AttrsDeletedWithTable +
		st.AttrsEjected + st.AttrsTypeChanged + st.AttrsPKChanged
	return sum == st.TotalActivity
}

// Delta reconstructs the aggregate delta counters of the record.
func (st *HistoryStats) Delta() *schemadiff.Delta {
	return &schemadiff.Delta{
		TablesCreated:         st.TablesCreated,
		TablesDropped:         st.TablesDropped,
		AttrsBornWithTable:    st.AttrsBornWithTable,
		AttrsInjected:         st.AttrsInjected,
		AttrsDeletedWithTable: st.AttrsDeletedWithTable,
		AttrsEjected:          st.AttrsEjected,
		AttrsTypeChanged:      st.AttrsTypeChanged,
		AttrsPKChanged:        st.AttrsPKChanged,
	}
}

// WriteJSON serializes records as indented JSON.
func WriteJSON(w io.Writer, records []*HistoryStats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ReadJSON loads records written by WriteJSON.
func ReadJSON(r io.Reader) ([]*HistoryStats, error) {
	var records []*HistoryStats
	dec := json.NewDecoder(r)
	if err := dec.Decode(&records); err != nil {
		return nil, fmt.Errorf("dataset: decoding: %w", err)
	}
	return records, nil
}
