package dataset

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"coevo/internal/corpus"
	"coevo/internal/history"
	"coevo/internal/taxa"
	"coevo/internal/vcs"
)

func buildRepo(t *testing.T) *vcs.Repository {
	t.Helper()
	r := vcs.NewRepository("acme/app")
	when := func(m int) vcs.Signature {
		return vcs.Signature{Name: "d", Email: "d@e.f",
			When: time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC).AddDate(0, m, 0)}
	}
	r.StageString("schema.sql", "CREATE TABLE a (x INT, y INT); CREATE TABLE b (z TEXT);")
	r.StageString("main.go", "package main")
	if _, err := r.Commit("init", when(0)); err != nil {
		t.Fatal(err)
	}
	r.StageString("schema.sql", "CREATE TABLE a (x BIGINT, y INT, w INT); CREATE TABLE b (z TEXT);")
	if _, err := r.Commit("grow", when(5)); err != nil {
		t.Fatal(err)
	}
	r.StageString("main.go", "package main // v2")
	if _, err := r.Commit("late work", when(9)); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCollectRepository(t *testing.T) {
	r := buildRepo(t)
	st, err := CollectRepository(r, "", history.DefaultOptions(), taxa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Project != "acme/app" || st.DDLPath != "schema.sql" {
		t.Errorf("identity = %q %q", st.Project, st.DDLPath)
	}
	if st.SchemaStart != "2016-03" || st.SchemaEnd != "2016-08" || st.SchemaUpdatePeriod != 5 {
		t.Errorf("schema timing = %s..%s (%d)", st.SchemaStart, st.SchemaEnd, st.SchemaUpdatePeriod)
	}
	if st.ProjectUpdatePeriod != 9 {
		t.Errorf("project period = %d", st.ProjectUpdatePeriod)
	}
	if st.TablesAtStart != 2 || st.AttrsAtStart != 3 {
		t.Errorf("size at start = %d tables / %d attrs", st.TablesAtStart, st.AttrsAtStart)
	}
	if st.TablesAtEnd != 2 || st.AttrsAtEnd != 4 {
		t.Errorf("size at end = %d tables / %d attrs", st.TablesAtEnd, st.AttrsAtEnd)
	}
	// Birth: 3 born; growth: 1 injected + 1 type change.
	if st.AttrsBornWithTable != 3 || st.AttrsInjected != 1 || st.AttrsTypeChanged != 1 {
		t.Errorf("breakdown = %+v", st)
	}
	if st.TotalActivity != 5 || !st.ActivityBreakdownConsistent() {
		t.Errorf("total = %d consistent = %v", st.TotalActivity, st.ActivityBreakdownConsistent())
	}
	if st.Delta().TotalActivity() != 5 {
		t.Errorf("Delta() total = %d", st.Delta().TotalActivity())
	}
	if st.Taxon != taxa.AlmostFrozen.String() {
		t.Errorf("taxon = %s", st.Taxon)
	}
}

func TestCollectRepositoryErrors(t *testing.T) {
	empty := vcs.NewRepository("acme/empty")
	if _, err := CollectRepository(empty, "", history.DefaultOptions(), taxa.DefaultConfig()); err == nil {
		t.Error("empty repo should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := buildRepo(t)
	st, err := CollectRepository(r, "", history.DefaultOptions(), taxa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	records := []*HistoryStats{st, st}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, records); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, loaded) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", records[0], loaded[0])
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestCollectCorpusConsistency(t *testing.T) {
	cfg := corpus.DefaultConfig(17)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 2
		if profiles[i].DurationMonths[1] > 36 {
			profiles[i].DurationMonths[1] = 36
		}
	}
	cfg.Profiles = profiles
	projects, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range projects {
		st, err := CollectRepository(p.Repo, p.DDLPath, history.DefaultOptions(), taxa.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !st.ActivityBreakdownConsistent() {
			t.Errorf("%s: breakdown %d+... != total %d", p.Name,
				st.AttrsBornWithTable, st.TotalActivity)
		}
		if st.SchemaUpdatePeriod > st.ProjectUpdatePeriod {
			// The schema file cannot outlive the project in these corpora.
			t.Errorf("%s: schema period %d > project period %d", p.Name,
				st.SchemaUpdatePeriod, st.ProjectUpdatePeriod)
		}
		if st.ActiveSchemaCommits > st.SchemaCommits {
			t.Errorf("%s: active %d > commits %d", p.Name, st.ActiveSchemaCommits, st.SchemaCommits)
		}
	}
}
