package querydep

import (
	"reflect"
	"testing"
	"testing/quick"

	"coevo/internal/schema"
)

func TestTableRefs(t *testing.T) {
	cases := []struct {
		sql  string
		want []string
	}{
		{"SELECT * FROM users", []string{"users"}},
		{"SELECT u.name FROM users u JOIN orders o ON o.user_id = u.id", []string{"orders", "users"}},
		{"SELECT * FROM a, b WHERE a.x = b.y", []string{"a", "b"}},
		{"INSERT INTO notes (body) VALUES (?)", []string{"notes"}},
		{"REPLACE INTO cache VALUES (?, ?)", []string{"cache"}},
		{"UPDATE accounts SET balance = balance - ?", []string{"accounts"}},
		{"UPDATE LOW_PRIORITY accounts SET x = 1", []string{"accounts"}},
		{"DELETE FROM sessions WHERE expired", []string{"sessions"}},
		{"SELECT * FROM db.schema_things", []string{"schema_things"}},
		{"SELECT * FROM `quoted table` JOIN \"other\"", []string{"other", "quoted table"}},
		{"CREATE TABLE IF NOT EXISTS fresh (a INT)", []string{"fresh"}},
		{"DROP TABLE old_stuff", []string{"old_stuff"}},
		{"TRUNCATE TABLE logs", []string{"logs"}},
		{"SELECT 1", nil},
		{"SELECT * FROM (SELECT * FROM inner_t) x", []string{"inner_t"}},
		{"SELECT * FROM users WHERE name = 'from fake_table'", []string{"users"}},
	}
	for _, tc := range cases {
		got := TableRefs(tc.sql)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("TableRefs(%q) = %v, want %v", tc.sql, got, tc.want)
		}
	}
}

func TestExtractQueries(t *testing.T) {
	src := []byte(`package app

const listQuery = "SELECT id, body FROM notes WHERE user_id = ?"

func save(db DB) {
	db.Exec('INSERT INTO notes (body) VALUES (?)', body)
	log.Print("not a query at all")
	db.Exec(` + "`" + `
		UPDATE notes SET body = ? WHERE id = ?
	` + "`" + `)
}
`)
	queries := ExtractQueries("app/notes.go", src)
	if len(queries) != 3 {
		t.Fatalf("queries = %d: %+v", len(queries), queries)
	}
	verbs := map[string]bool{}
	for _, q := range queries {
		verbs[q.Verb] = true
		if len(q.Tables) != 1 || q.Tables[0] != "notes" {
			t.Errorf("query %q tables = %v", q.Text, q.Tables)
		}
	}
	for _, v := range []string{"SELECT", "INSERT", "UPDATE"} {
		if !verbs[v] {
			t.Errorf("verb %s not extracted", v)
		}
	}
}

func TestExtractQueriesEscapes(t *testing.T) {
	src := []byte(`q := "SELECT * FROM a WHERE s = \"x\""`)
	queries := ExtractQueries("f.go", src)
	if len(queries) != 1 || queries[0].Tables[0] != "a" {
		t.Fatalf("queries = %+v", queries)
	}
}

func TestResolve(t *testing.T) {
	s, errs := schema.ParseAndBuild("CREATE TABLE notes (id INT); CREATE TABLE users (id INT);")
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	src := []byte(`
		a := "SELECT * FROM notes JOIN missing_table ON 1=1"
		b := "DELETE FROM users"
	`)
	dep := Resolve("app.go", src, s)
	if dep.Queries != 2 {
		t.Errorf("Queries = %d", dep.Queries)
	}
	// missing_table is not in the schema and must be filtered out.
	if !reflect.DeepEqual(dep.Tables, []string{"notes", "users"}) {
		t.Errorf("Tables = %v", dep.Tables)
	}
}

func TestResolveNoQueries(t *testing.T) {
	s, _ := schema.ParseAndBuild("CREATE TABLE t (a INT);")
	dep := Resolve("plain.go", []byte(`package plain // nothing here`), s)
	if dep.Queries != 0 || len(dep.Tables) != 0 {
		t.Errorf("dep = %+v", dep)
	}
}

// Property: TableRefs never panics and returns sorted, deduplicated,
// lower-cased names for arbitrary input.
func TestQuickTableRefsRobust(t *testing.T) {
	f := func(s string) bool {
		refs := TableRefs(s)
		for i, r := range refs {
			if r != string([]byte(r)) || r == "" {
				return false
			}
			if i > 0 && refs[i-1] >= r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: ExtractQueries never panics on arbitrary content.
func TestQuickExtractRobust(t *testing.T) {
	f := func(content []byte) bool {
		_ = ExtractQueries("f", content)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
