// Package querydep extracts embedded SQL queries from source code and
// resolves which schema tables they depend on. The paper's implications
// call for tooling that identifies "the parts of the code affected by a
// schema change ... due to the heterogeneity of the application
// architectures and programming languages, as well as due to the dynamic
// nature of queries"; this package supplies the static half of that
// analysis:
//
//  1. find string literals in source files that look like SQL statements;
//  2. parse each statement's table references (FROM/JOIN/INTO/UPDATE/
//     DELETE FROM targets);
//  3. resolve the references against a logical schema, yielding a
//     file → table dependency map that is more precise than bare
//     token scanning.
package querydep

import (
	"sort"
	"strings"

	"coevo/internal/schema"
)

// Query is one embedded SQL statement found in a source file.
type Query struct {
	File string
	// Text is the literal SQL string.
	Text string
	// Verb is the upper-cased leading keyword (SELECT, INSERT, ...).
	Verb string
	// Tables lists the lower-cased table names the statement references.
	Tables []string
}

// Dependency maps a source file to the schema tables its embedded queries
// reference.
type Dependency struct {
	File   string
	Tables []string
	// Queries is the number of embedded statements found in the file.
	Queries int
}

// sqlVerbs are the statement heads that identify an embedded query.
var sqlVerbs = map[string]bool{
	"SELECT": true, "INSERT": true, "UPDATE": true, "DELETE": true,
	"REPLACE": true, "CREATE": true, "ALTER": true, "DROP": true, "TRUNCATE": true,
}

// ExtractQueries finds embedded SQL statements in source content. String
// literals are detected for the common quote styles ('...', "...", `...`);
// a literal qualifies when it starts with a SQL verb.
func ExtractQueries(file string, content []byte) []Query {
	var queries []Query
	for _, lit := range stringLiterals(string(content)) {
		trimmed := strings.TrimSpace(lit)
		if trimmed == "" {
			continue
		}
		verb := leadingWord(trimmed)
		if !sqlVerbs[verb] {
			continue
		}
		queries = append(queries, Query{
			File:   file,
			Text:   trimmed,
			Verb:   verb,
			Tables: TableRefs(trimmed),
		})
	}
	return queries
}

// stringLiterals scans source text for quoted literals in the three common
// styles. Escapes with backslash are honored for single and double quotes.
func stringLiterals(src string) []string {
	var out []string
	for i := 0; i < len(src); i++ {
		q := src[i]
		if q != '\'' && q != '"' && q != '`' {
			continue
		}
		j := i + 1
		var b strings.Builder
		closed := false
		for j < len(src) {
			c := src[j]
			if c == '\\' && q != '`' && j+1 < len(src) {
				b.WriteByte(src[j+1])
				j += 2
				continue
			}
			if c == q {
				closed = true
				break
			}
			b.WriteByte(c)
			j++
		}
		if closed {
			out = append(out, b.String())
			i = j
		}
	}
	return out
}

func leadingWord(s string) string {
	end := 0
	for end < len(s) && isWord(s[end]) {
		end++
	}
	return strings.ToUpper(s[:end])
}

func isWord(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// TableRefs parses the table names a SQL statement references: the targets
// of FROM and JOIN clauses, INSERT INTO / REPLACE INTO, UPDATE, DELETE
// FROM, and the DDL verbs' objects. Subqueries are handled by flat
// scanning — every FROM/JOIN in the text contributes.
func TableRefs(sql string) []string {
	tokens := tokenize(sql)
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		name = strings.ToLower(name)
		// Strip a qualifier: db.table -> table.
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		if name == "" || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, name)
	}

	for i := 0; i < len(tokens); i++ {
		switch strings.ToUpper(tokens[i]) {
		case "FROM", "JOIN":
			// FROM a, b JOIN c — collect the name list.
			j := i + 1
			for j < len(tokens) {
				name, next := tableNameAt(tokens, j)
				if name == "" {
					break
				}
				add(name)
				// Skip an alias (bare identifier right after the name).
				if next < len(tokens) && isIdentToken(tokens[next]) && !isKeyword(tokens[next]) {
					next++
				}
				if next < len(tokens) && tokens[next] == "," {
					j = next + 1
					continue
				}
				break
			}
		case "INTO":
			if name, _ := tableNameAt(tokens, i+1); name != "" {
				add(name)
			}
		case "UPDATE":
			// UPDATE [LOW_PRIORITY|IGNORE] tbl
			j := i + 1
			for j < len(tokens) && (strings.EqualFold(tokens[j], "LOW_PRIORITY") || strings.EqualFold(tokens[j], "IGNORE")) {
				j++
			}
			if name, _ := tableNameAt(tokens, j); name != "" {
				add(name)
			}
		case "TABLE":
			// CREATE/ALTER/DROP/TRUNCATE TABLE [IF [NOT] EXISTS] tbl
			j := i + 1
			for j < len(tokens) && (strings.EqualFold(tokens[j], "IF") || strings.EqualFold(tokens[j], "NOT") || strings.EqualFold(tokens[j], "EXISTS")) {
				j++
			}
			if name, _ := tableNameAt(tokens, j); name != "" {
				add(name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// tableNameAt reads a possibly qualified table name starting at index i,
// returning the full dotted name and the index after it ("" when the token
// is not a name, e.g. a subquery parenthesis or placeholder).
func tableNameAt(tokens []string, i int) (string, int) {
	if i >= len(tokens) || !isIdentToken(tokens[i]) || isKeyword(tokens[i]) {
		return "", i
	}
	name := tokens[i]
	i++
	for i+1 < len(tokens) && tokens[i] == "." && isIdentToken(tokens[i+1]) {
		name += "." + tokens[i+1]
		i += 2
	}
	return name, i
}

// keywords that must not be mistaken for table names after FROM/JOIN.
var refKeywords = map[string]bool{
	"SELECT": true, "WHERE": true, "ON": true, "INNER": true, "LEFT": true,
	"RIGHT": true, "OUTER": true, "FULL": true, "CROSS": true, "JOIN": true,
	"GROUP": true, "ORDER": true, "LIMIT": true, "SET": true, "VALUES": true,
	"AS": true, "USING": true, "UNION": true, "HAVING": true, "DUAL": true,
}

func isKeyword(tok string) bool { return refKeywords[strings.ToUpper(tok)] }

func isIdentToken(tok string) bool {
	if tok == "" {
		return false
	}
	c := tok[0]
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// tokenize splits SQL into identifier and punctuation tokens; quoted
// identifiers are unwrapped, string literals and placeholders skipped.
func tokenize(sql string) []string {
	var tokens []string
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			continue
		case c == '`' || c == '"':
			end := strings.IndexByte(sql[i+1:], c)
			if end < 0 {
				return tokens
			}
			tokens = append(tokens, sql[i+1:i+1+end])
			i += end + 1
		case c == '\'':
			end := strings.IndexByte(sql[i+1:], '\'')
			if end < 0 {
				return tokens
			}
			i += end + 1
		case isWord(c):
			j := i
			for j < len(sql) && isWord(sql[j]) {
				j++
			}
			tokens = append(tokens, sql[i:j])
			i = j - 1
		default:
			tokens = append(tokens, string(c))
		}
	}
	return tokens
}

// Resolve filters a file's query table references down to the tables that
// exist in the schema, producing the dependency record.
func Resolve(file string, content []byte, s *schema.Schema) Dependency {
	queries := ExtractQueries(file, content)
	seen := map[string]bool{}
	var tables []string
	for _, q := range queries {
		for _, t := range q.Tables {
			if seen[t] {
				continue
			}
			if _, ok := s.Table(t); ok {
				seen[t] = true
				tables = append(tables, t)
			}
		}
	}
	sort.Strings(tables)
	return Dependency{File: file, Tables: tables, Queries: len(queries)}
}
