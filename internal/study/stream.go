package study

// The streaming face of the study: generation and analysis fused into
// one engine stream, with per-project results handed to a Sink in corpus
// order and released immediately. Peak memory is O(workers + reorder
// window) repositories instead of O(corpus); output is byte-identical to
// the batch path because the sink observes the same results in the same
// order the batch Dataset would hold them.

import (
	"context"
	"errors"
	"fmt"

	"coevo/internal/corpus"
	"coevo/internal/engine"
)

// StreamSummary reports what a streaming study run covered.
type StreamSummary struct {
	// Projects is the number of results delivered to the sink.
	Projects int
	// Failures lists the projects that could not be analyzed, in corpus
	// order — the streaming counterpart of Dataset.Failures.
	Failures []Failure
}

// DatasetSink collects streamed results into a Dataset — the bridge for
// callers that want the batch aggregation API over the streaming engine,
// and for equivalence tests. It forfeits the streaming path's memory
// bound, since the Dataset retains every result.
type DatasetSink struct{ d Dataset }

// Add implements Sink.
func (s *DatasetSink) Add(p *ProjectResult) error {
	s.d.Projects = append(s.d.Projects, p)
	return nil
}

// Dataset returns the collected results.
func (s *DatasetSink) Dataset() *Dataset { return &s.d }

// StreamCorpus generates and analyzes src's corpus as one fused stream:
// the engine's workers pull projects from the source (generation runs as
// the task's "generate" stage), analyze them, and the re-sequencer hands
// each result to sink in corpus order, after which the project's
// repository is unreferenced and collectable. The reorder window bounds
// how many completed results wait for an earlier straggler, so peak
// memory is O(workers) repositories regardless of corpus size.
//
// Failure semantics match AnalyzeCorpusContext: under the default
// CollectErrors policy a failed project lands in StreamSummary.Failures
// (its slot is skipped, later results still arrive in order) and the
// returned error is non-nil only when the run itself stops — context
// cancellation, FailFast, a generation error, or a sink error. The
// summary always reports what was delivered before the stop.
func StreamCorpus(ctx context.Context, src *corpus.Source, sink Sink, opts Options) (*StreamSummary, error) {
	eopts := opts.Exec
	if eopts.Name == nil {
		// Name by the source, not the package-level convention: a
		// partitioned source's local index i is global index src.
		// GlobalIndex(i), and failure reports must name the real project.
		eopts.Name = src.ProjectName
	}
	eopts.Obs = opts.Obs
	eopts.Scope = "analyze"
	ctx, span := opts.Obs.StartSpan(ctx, "analyze")
	defer span.End()
	span.SetArg("projects", fmt.Sprint(src.Len()))
	log := opts.Obs.Logger()
	log.Info("study: streaming corpus", "projects", src.Len())
	sum := &StreamSummary{}
	failures, err := engine.Stream(ctx, src.Indexed(),
		func(ctx context.Context, _ int, p *corpus.Project) (*ProjectResult, error) {
			res, err := analyzeProjectStaged(ctx, p, opts)
			if err != nil {
				return nil, err
			}
			intended := p.Taxon
			res.IntendedTaxon = &intended
			return res, nil
		},
		func(i int, res *ProjectResult) error {
			sum.Projects++
			// Index-aware sinks see the global corpus index, so shard
			// partials key their order-sensitive state by true corpus
			// position and merge back into the sequential fold.
			return deliver(sink, int64(src.GlobalIndex(i)), res)
		},
		engine.StreamOptions{Options: eopts, Total: src.Len()})
	for _, f := range failures {
		sum.Failures = append(sum.Failures, Failure{Name: f.Name, Index: src.GlobalIndex(f.Index), Err: f.Err})
	}
	if err != nil {
		// Surface the corpus's own (already project-labelled) cause; the
		// engine's wrapping only says how the failure travelled.
		var se *engine.SourceError
		if errors.As(err, &se) {
			return sum, se.Err
		}
		return sum, err
	}
	log.Info("study: corpus streamed", "projects", sum.Projects, "failures", len(sum.Failures))
	return sum, nil
}

// RunStream is the streaming equivalent of Run: it generates the default
// corpus for seed and feeds every analyzed project to sink in corpus
// order, never holding the whole corpus or dataset. A sink built from
// NewFigures reproduces every figure and statistic of the batch run.
func RunStream(ctx context.Context, seed int64, opts Options, sink Sink) (*StreamSummary, error) {
	ctx, span := opts.Obs.StartSpan(ctx, "run")
	defer span.End()
	opts.Obs.Logger().Info("study: streaming run starting", "seed", seed)
	cfg := corpus.DefaultConfig(seed)
	cfg.Cache = opts.effectiveCache()
	cfg.Obs = opts.Obs
	return StreamCorpus(ctx, corpus.NewSource(cfg), sink, opts)
}
