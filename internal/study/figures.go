package study

import (
	"fmt"

	"coevo/internal/stats"
	"coevo/internal/taxa"
)

// SyncHistogram is the Figure 4 aggregation: the distribution of projects
// over equal-width θ-synchronicity buckets.
type SyncHistogram struct {
	Theta   float64
	Buckets []int // len = bucket count, low range first
	Labels  []string
}

// SynchronicityHistogram breaks the data set down by θ-synchronicity into
// n equal buckets ([0-20), [20-40), ..., [80-100] for n = 5), reproducing
// Figure 4.
func (d *Dataset) SynchronicityHistogram(theta float64, n int) *SyncHistogram {
	h := &SyncHistogram{Theta: theta, Buckets: make([]int, n), Labels: make([]string, n)}
	for i := 0; i < n; i++ {
		h.Labels[i] = stats.BucketLabel(i, n)
	}
	for _, p := range d.Projects {
		sync := p.Measures.Sync10
		if theta != 0.10 {
			s, err := p.Joint.Synchronicity(theta)
			if err != nil {
				continue
			}
			sync = s
		}
		h.Buckets[stats.Bucket(sync, n)]++
	}
	return h
}

// ScatterPoint is one project of the Figure 5 duration-vs-synchronicity
// scatter plot.
type ScatterPoint struct {
	Name     string
	Taxon    taxa.Taxon
	Duration int
	Sync     float64
}

// DurationSynchronicityScatter returns the Figure 5 point cloud.
func (d *Dataset) DurationSynchronicityScatter() []ScatterPoint {
	points := make([]ScatterPoint, 0, len(d.Projects))
	for _, p := range d.Projects {
		points = append(points, ScatterPoint{
			Name:     p.Name,
			Taxon:    p.Taxon,
			Duration: p.DurationMonths,
			Sync:     p.Measures.Sync10,
		})
	}
	return points
}

// LongProjectSyncBand summarizes the Figure 5 finding: among projects
// older than the threshold (60 months in the paper), how many fall inside
// vs outside the [lo, hi] synchronicity band. The paper observes that the
// extremes empty out after 5 years.
func (d *Dataset) LongProjectSyncBand(thresholdMonths int, lo, hi float64) (inside, outside int) {
	for _, p := range d.Projects {
		if p.DurationMonths <= thresholdMonths {
			continue
		}
		if p.Measures.Sync10 >= lo && p.Measures.Sync10 <= hi {
			inside++
		} else {
			outside++
		}
	}
	return inside, outside
}

// AdvanceRow is one range row of the Figure 6 table.
type AdvanceRow struct {
	Label       string
	SourceCount int
	SourcePct   float64
	SourceCum   float64 // cumulative share starting from the highest range
	TimeCount   int
	TimePct     float64
	TimeCum     float64
}

// AdvanceTable is the Figure 6 aggregation.
type AdvanceTable struct {
	// Rows are ordered from the highest range ([0.9-1.0]) down, matching
	// the paper's presentation.
	Rows []AdvanceRow
	// BlankSource/BlankTime count the projects whose measure is undefined
	// (single-month projects), the paper's "(blank)" row.
	BlankSource, BlankTime int
	Total                  int
}

// AdvanceBreakdown computes the Figure 6 table: the distribution of the
// life percentage of schema advance over source and over time across ten
// equal ranges.
func (d *Dataset) AdvanceBreakdown() *AdvanceTable {
	const n = 10
	t := &AdvanceTable{Total: len(d.Projects)}
	srcCounts := make([]int, n)
	timeCounts := make([]int, n)
	for _, p := range d.Projects {
		if !p.Measures.AdvanceDefined {
			t.BlankSource++
			t.BlankTime++
			continue
		}
		srcCounts[stats.Bucket(p.Measures.AdvanceSource, n)]++
		timeCounts[stats.Bucket(p.Measures.AdvanceTime, n)]++
	}
	var srcCum, timeCum float64
	for i := n - 1; i >= 0; i-- {
		srcPct := pct(srcCounts[i], t.Total)
		timePct := pct(timeCounts[i], t.Total)
		srcCum += srcPct
		timeCum += timePct
		t.Rows = append(t.Rows, AdvanceRow{
			Label:       advanceLabel(i, n),
			SourceCount: srcCounts[i], SourcePct: srcPct, SourceCum: srcCum,
			TimeCount: timeCounts[i], TimePct: timePct, TimeCum: timeCum,
		})
	}
	return t
}

func advanceLabel(i, n int) string {
	return fmt.Sprintf("%.1f-%.1f", float64(i)/float64(n), float64(i+1)/float64(n))
}

func pct(count, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(count) / float64(total)
}

// AlwaysAdvanceCell counts the projects of one taxon whose schema stayed
// in advance for their entire life.
type AlwaysAdvanceCell struct {
	Taxon    taxa.Taxon
	Projects int
	Time     int
	Source   int
	Both     int
}

// AlwaysAdvanceSummary is the Figure 7 aggregation.
type AlwaysAdvanceSummary struct {
	PerTaxon []AlwaysAdvanceCell // ordered by taxon
	Time     int
	Source   int
	Both     int
	Total    int
}

// AlwaysAdvance computes the Figure 7 counts: per taxon and overall, how
// many projects have the schema always in advance of time, of source, and
// of both.
func (d *Dataset) AlwaysAdvance() *AlwaysAdvanceSummary {
	s := &AlwaysAdvanceSummary{Total: len(d.Projects)}
	cells := make([]AlwaysAdvanceCell, taxa.Count)
	for i, taxon := range taxa.All() {
		cells[i].Taxon = taxon
	}
	for _, p := range d.Projects {
		cell := &cells[int(p.Taxon)]
		cell.Projects++
		if p.Measures.AlwaysAheadOfTime {
			cell.Time++
			s.Time++
		}
		if p.Measures.AlwaysAheadOfSource {
			cell.Source++
			s.Source++
		}
		if p.Measures.AlwaysAheadOfBoth {
			cell.Both++
			s.Both++
		}
	}
	s.PerTaxon = cells
	return s
}

// AttainmentBreakdown is the Figure 8 aggregation: for each α threshold,
// how many projects attained α of their schema evolution within each
// lifetime range.
type AttainmentBreakdown struct {
	Alphas []float64
	// RangeEdges are the upper edges of the lifetime ranges (0.2, 0.5,
	// 0.8, 1.0 in the paper). Counts[a][r] counts projects whose
	// α-attainment fractional timepoint falls in range r.
	RangeEdges []float64
	Counts     [][]int
	Total      int
}

// Attainment computes the Figure 8 breakdown for the paper's α thresholds
// (50%, 75%, 80%, 100%) over the paper's lifetime ranges.
func (d *Dataset) Attainment() *AttainmentBreakdown {
	return d.AttainmentWith([]float64{0.50, 0.75, 0.80, 1.00}, []float64{0.2, 0.5, 0.8, 1.0})
}

// AttainmentWith computes the breakdown for arbitrary thresholds/ranges.
func (d *Dataset) AttainmentWith(alphas, rangeEdges []float64) *AttainmentBreakdown {
	b := &AttainmentBreakdown{Alphas: alphas, RangeEdges: rangeEdges, Total: len(d.Projects)}
	b.Counts = make([][]int, len(alphas))
	for i := range b.Counts {
		b.Counts[i] = make([]int, len(rangeEdges))
	}
	for _, p := range d.Projects {
		for ai, alpha := range alphas {
			frac, err := p.Joint.AttainmentFraction(alpha)
			if err != nil {
				continue
			}
			for ri, edge := range rangeEdges {
				if frac <= edge+1e-12 {
					b.Counts[ai][ri]++
					break
				}
			}
		}
	}
	return b
}

// SynchronicityHistogramByTaxon computes one Figure 4-style histogram per
// taxon — the paper observes "all kinds of behaviors ... both overall and
// within the different taxa".
func (d *Dataset) SynchronicityHistogramByTaxon(theta float64, n int) map[taxa.Taxon]*SyncHistogram {
	out := make(map[taxa.Taxon]*SyncHistogram, taxa.Count)
	for _, taxon := range taxa.All() {
		h := &SyncHistogram{Theta: theta, Buckets: make([]int, n), Labels: make([]string, n)}
		for i := 0; i < n; i++ {
			h.Labels[i] = stats.BucketLabel(i, n)
		}
		out[taxon] = h
	}
	for _, p := range d.Projects {
		sync := p.Measures.Sync10
		if theta != 0.10 {
			s, err := p.Joint.Synchronicity(theta)
			if err != nil {
				continue
			}
			sync = s
		}
		out[p.Taxon].Buckets[stats.Bucket(sync, n)]++
	}
	return out
}

// LocalitySummary aggregates the change-locality finding over the corpus:
// the median share of changes carried by the top-20% most-changed tables,
// and the median share of never-changed tables, computed over projects
// with enough tables for the ratio to be meaningful.
type LocalitySummary struct {
	// MedianTopShare is the median fraction of changes in the top 20% of
	// tables (prior work: 60-90%).
	MedianTopShare float64
	// MedianUnchangedShare is the median fraction of tables that never
	// changed (prior work: ~40%).
	MedianUnchangedShare float64
	// Projects is the number of projects included (≥ MinTables tables and
	// non-zero change volume).
	Projects int
}

// ChangeLocality computes the locality summary over projects with at
// least minTables tables.
func (d *Dataset) ChangeLocality(minTables int) *LocalitySummary {
	var topShares, unchangedShares []float64
	for _, p := range d.Projects {
		loc := p.Locality
		if loc.Tables < minTables || loc.TotalChanges == 0 {
			continue
		}
		topShares = append(topShares, loc.TopShare)
		unchangedShares = append(unchangedShares, loc.UnchangedShare)
	}
	return &LocalitySummary{
		MedianTopShare:       stats.Median(topShares),
		MedianUnchangedShare: stats.Median(unchangedShares),
		Projects:             len(topShares),
	}
}
