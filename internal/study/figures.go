package study

import (
	"fmt"

	"coevo/internal/taxa"
)

// SyncHistogram is the Figure 4 aggregation: the distribution of projects
// over equal-width θ-synchronicity buckets.
type SyncHistogram struct {
	Theta   float64
	Buckets []int // len = bucket count, low range first
	Labels  []string
	// Skipped counts the projects whose θ-synchronicity is undefined
	// (degenerate joint series at a non-default θ) and therefore appear
	// in no bucket. The paper's default θ=0.10 never skips — it reuses
	// the measure computed during analysis.
	Skipped int
}

// SynchronicityHistogram breaks the data set down by θ-synchronicity into
// n equal buckets ([0-20), [20-40), ..., [80-100] for n = 5), reproducing
// Figure 4.
func (d *Dataset) SynchronicityHistogram(theta float64, n int) *SyncHistogram {
	return fold(d, NewSyncHistogramAccumulator(theta, n)).Histogram()
}

// ScatterPoint is one project of the Figure 5 duration-vs-synchronicity
// scatter plot.
type ScatterPoint struct {
	Name     string
	Taxon    taxa.Taxon
	Duration int
	Sync     float64
}

// DurationSynchronicityScatter returns the Figure 5 point cloud.
func (d *Dataset) DurationSynchronicityScatter() []ScatterPoint {
	return fold(d, NewScatterAccumulator()).Points()
}

// LongProjectSyncBand summarizes the Figure 5 finding: among projects
// older than the threshold (60 months in the paper), how many fall inside
// vs outside the [lo, hi] synchronicity band. The paper observes that the
// extremes empty out after 5 years.
func (d *Dataset) LongProjectSyncBand(thresholdMonths int, lo, hi float64) (inside, outside int) {
	return fold(d, NewSyncBandAccumulator(thresholdMonths, lo, hi)).Band()
}

// AdvanceRow is one range row of the Figure 6 table.
type AdvanceRow struct {
	Label       string
	SourceCount int
	SourcePct   float64
	SourceCum   float64 // cumulative share starting from the highest range
	TimeCount   int
	TimePct     float64
	TimeCum     float64
}

// AdvanceTable is the Figure 6 aggregation.
type AdvanceTable struct {
	// Rows are ordered from the highest range ([0.9-1.0]) down, matching
	// the paper's presentation.
	Rows []AdvanceRow
	// BlankSource/BlankTime count the projects whose measure is undefined
	// (single-month projects), the paper's "(blank)" row.
	BlankSource, BlankTime int
	Total                  int
}

// AdvanceBreakdown computes the Figure 6 table: the distribution of the
// life percentage of schema advance over source and over time across ten
// equal ranges.
func (d *Dataset) AdvanceBreakdown() *AdvanceTable {
	return fold(d, NewAdvanceAccumulator()).Table()
}

func advanceLabel(i, n int) string {
	return fmt.Sprintf("%.1f-%.1f", float64(i)/float64(n), float64(i+1)/float64(n))
}

func pct(count, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(count) / float64(total)
}

// AlwaysAdvanceCell counts the projects of one taxon whose schema stayed
// in advance for their entire life.
type AlwaysAdvanceCell struct {
	Taxon    taxa.Taxon
	Projects int
	Time     int
	Source   int
	Both     int
}

// AlwaysAdvanceSummary is the Figure 7 aggregation.
type AlwaysAdvanceSummary struct {
	PerTaxon []AlwaysAdvanceCell // ordered by taxon
	Time     int
	Source   int
	Both     int
	Total    int
}

// AlwaysAdvance computes the Figure 7 counts: per taxon and overall, how
// many projects have the schema always in advance of time, of source, and
// of both.
func (d *Dataset) AlwaysAdvance() *AlwaysAdvanceSummary {
	return fold(d, NewAlwaysAdvanceAccumulator()).Summary()
}

// AttainmentBreakdown is the Figure 8 aggregation: for each α threshold,
// how many projects attained α of their schema evolution within each
// lifetime range.
type AttainmentBreakdown struct {
	Alphas []float64
	// RangeEdges are the upper edges of the lifetime ranges (0.2, 0.5,
	// 0.8, 1.0 in the paper). Counts[a][r] counts projects whose
	// α-attainment fractional timepoint falls in range r.
	RangeEdges []float64
	Counts     [][]int
	Total      int
}

// Attainment computes the Figure 8 breakdown for the paper's α thresholds
// (50%, 75%, 80%, 100%) over the paper's lifetime ranges.
func (d *Dataset) Attainment() *AttainmentBreakdown {
	return d.AttainmentWith([]float64{0.50, 0.75, 0.80, 1.00}, []float64{0.2, 0.5, 0.8, 1.0})
}

// AttainmentWith computes the breakdown for arbitrary thresholds/ranges.
func (d *Dataset) AttainmentWith(alphas, rangeEdges []float64) *AttainmentBreakdown {
	return fold(d, NewAttainmentAccumulator(alphas, rangeEdges)).Breakdown()
}

// SynchronicityHistogramByTaxon computes one Figure 4-style histogram per
// taxon — the paper observes "all kinds of behaviors ... both overall and
// within the different taxa".
func (d *Dataset) SynchronicityHistogramByTaxon(theta float64, n int) map[taxa.Taxon]*SyncHistogram {
	return fold(d, NewTaxonSyncHistogramAccumulator(theta, n)).ByTaxon()
}

// LocalitySummary aggregates the change-locality finding over the corpus:
// the median share of changes carried by the top-20% most-changed tables,
// and the median share of never-changed tables, computed over projects
// with enough tables for the ratio to be meaningful.
type LocalitySummary struct {
	// MedianTopShare is the median fraction of changes in the top 20% of
	// tables (prior work: 60-90%).
	MedianTopShare float64
	// MedianUnchangedShare is the median fraction of tables that never
	// changed (prior work: ~40%).
	MedianUnchangedShare float64
	// Projects is the number of projects included (≥ MinTables tables and
	// non-zero change volume).
	Projects int
}

// ChangeLocality computes the locality summary over projects with at
// least minTables tables.
func (d *Dataset) ChangeLocality(minTables int) *LocalitySummary {
	return fold(d, NewLocalityAccumulator(minTables)).Summary()
}
