// Package study runs the paper's end-to-end pipeline: for every project,
// extract the schema and project histories, build the monthly heartbeats,
// align them into a joint progress diagram, compute the co-evolution
// measures and classify the taxon; then aggregate the per-project results
// into the evaluation's figures and statistical tests.
package study

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"coevo/internal/cache"
	"coevo/internal/coevolution"
	"coevo/internal/corpus"
	"coevo/internal/engine"
	"coevo/internal/heartbeat"
	"coevo/internal/history"
	"coevo/internal/obs"
	"coevo/internal/schemadiff"
	"coevo/internal/taxa"
	"coevo/internal/vcs"
)

// ProjectResult carries everything the study measures for one project.
type ProjectResult struct {
	Name    string
	DDLPath string

	// Taxon is the measured archetype; IntendedTaxon is the generator's
	// target when the project came from the synthetic corpus (nil
	// otherwise) — keeping both makes generator drift visible.
	Taxon         taxa.Taxon
	IntendedTaxon *taxa.Taxon

	// Raw history statistics.
	DurationMonths      int
	SchemaCommits       int
	ActiveSchemaCommits int
	ProjectCommits      int
	FileUpdates         int
	TotalSchemaActivity int

	// Joint is the three-series joint progress diagram.
	Joint *coevolution.JointProgress
	// Measures is the full measure suite over Joint.
	Measures *coevolution.Measures
	// Locality summarizes how concentrated the schema's change was across
	// its tables (the related-work locality finding).
	Locality schemadiff.Locality

	// ParseHealth aggregates what the recovering parser did to every
	// version of the project's DDL file, plus the commits the extraction
	// excluded (merges, byte-identical no-ops).
	ParseHealth history.ParseHealth
}

// Options configures the analysis.
type Options struct {
	History history.Options
	Taxa    taxa.Config
	// Theta values are fixed by the paper (5% and 10%) inside
	// coevolution.ComputeMeasures.

	// Exec configures the execution engine AnalyzeCorpus runs on: worker
	// count (default GOMAXPROCS), failure policy (default CollectErrors —
	// per-project failures are recorded in Dataset.Failures instead of
	// aborting the study), and an optional event observer for progress
	// reporting and metrics.
	Exec engine.Options

	// Cache, when non-nil, memoizes the pipeline's hot stages through the
	// content-addressed result cache: per-version DDL parsing, per-pair
	// schema diffing, and the whole per-project measure bundle. Output is
	// byte-identical with a cold, warm or absent cache; see internal/cache.
	Cache *cache.Cache

	// Obs, when non-nil, observes the run: orchestration spans (run →
	// generate → analyze, with per-project spans from the engine), the
	// unified metrics registry and structured logs. A nil Obs is a
	// zero-cost no-op and study output is byte-identical either way.
	Obs *obs.Observer
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{History: history.DefaultOptions(), Taxa: taxa.DefaultConfig()}
}

// AnalyzeRepository measures one repository. ddlPath may be empty, in
// which case it is located with history.FindDDLPath.
func AnalyzeRepository(repo *vcs.Repository, ddlPath string, opts Options) (*ProjectResult, error) {
	return AnalyzeRepositoryContext(context.Background(), repo, ddlPath, opts)
}

// AnalyzeRepositoryContext is AnalyzeRepository with a caller context: the
// analysis observes cancellation between pipeline stages and the run is
// traced as an "analyze" span when opts.Obs is set.
func AnalyzeRepositoryContext(ctx context.Context, repo *vcs.Repository, ddlPath string, opts Options) (*ProjectResult, error) {
	ctx, span := opts.Obs.StartSpan(ctx, "analyze "+repo.Name())
	defer span.End()
	if ddlPath == "" {
		found, err := history.FindDDLPath(repo)
		if err != nil {
			return nil, fmt.Errorf("study: %s: %w", repo.Name(), err)
		}
		ddlPath = found
	}
	return analyzeRepository(ctx, repo.Name(), ddlPath, repo, opts)
}

// analyzeRepository is the repository entry point of the cached pipeline:
// it lists the DDL file versions and project history once, addresses the
// measure bundle by their content, and only on a miss extracts the schema
// history (itself served by the parse and diff caches) and measures it.
func analyzeRepository(ctx context.Context, name, ddlPath string, repo *vcs.Repository, opts Options) (*ProjectResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if repo.CommitCount() == 0 {
		return nil, fmt.Errorf("study: %s: %w", name, history.ErrEmptyRepo)
	}
	fvs := repo.FileVersions(ddlPath)
	ph, err := history.ExtractProjectHistory(repo)
	if err != nil {
		return nil, fmt.Errorf("study: %s: %w", name, err)
	}
	c := opts.effectiveCache()
	var key cache.Key
	if c != nil {
		engine.Stage(ctx, "cache")
		key = measureKeyFromVersions(fvs, ph, opts)
		if res, ok := loadBundle(c, key); ok {
			res.Name, res.DDLPath = name, ddlPath
			return res, nil
		}
	}
	engine.Stage(ctx, "extract")
	hopts := opts.History
	if hopts.Cache == nil {
		hopts.Cache = c
	}
	sh, err := history.ExtractSchemaHistoryFromVersions(ddlPath, fvs, hopts)
	if err != nil {
		return nil, fmt.Errorf("study: %s: %w", name, err)
	}
	engine.Stage(ctx, "measure")
	res, err := analyze(ctx, name, ddlPath, sh, ph, opts)
	if err != nil {
		return nil, err
	}
	if c != nil {
		storeBundle(c, key, res)
	}
	return res, nil
}

// AnalyzeHistories measures a project given already-extracted histories
// (the entry point for real-git ingestion, where the project history comes
// from a parsed `git log` and the schema history from file versions). With
// a cache configured, the measure bundle is shared with the repository
// entry points: the fingerprint covers the same version content, so an
// ingested history and a replayed repository hit the same entry. The
// schema history must have been extracted with opts.History for the
// fingerprint to be truthful.
func AnalyzeHistories(name, ddlPath string, sh *history.SchemaHistory, ph *history.ProjectHistory, opts Options) (*ProjectResult, error) {
	c := opts.effectiveCache()
	if c == nil {
		return analyze(context.Background(), name, ddlPath, sh, ph, opts)
	}
	key := measureKeyFromHistory(sh, ph, opts)
	if res, ok := loadBundle(c, key); ok {
		res.Name, res.DDLPath = name, ddlPath
		return res, nil
	}
	res, err := analyze(context.Background(), name, ddlPath, sh, ph, opts)
	if err != nil {
		return nil, err
	}
	storeBundle(c, key, res)
	return res, nil
}

// measureScratch holds the per-project working set of analyze() — the
// ever-existed table set and its flattened name list. Both are consumed
// within one analyze call (MeasureLocality does not retain allTables), so
// the scratch is reusable across projects: engine workers each carry a
// private instance via Options.WorkerState, and serial callers fall back
// to a sync.Pool.
type measureScratch struct {
	tableSet  map[string]bool
	allTables []string
}

func newMeasureScratch() *measureScratch {
	return &measureScratch{tableSet: make(map[string]bool, 32)}
}

var measureScratchPool = sync.Pool{New: func() any { return newMeasureScratch() }}

func analyze(ctx context.Context, name, ddlPath string, sh *history.SchemaHistory, ph *history.ProjectHistory, opts Options) (*ProjectResult, error) {
	shb, err := sh.Heartbeat()
	if err != nil {
		return nil, fmt.Errorf("study: %s: schema heartbeat: %w", name, err)
	}
	phb, err := ph.Heartbeat()
	if err != nil {
		return nil, fmt.Errorf("study: %s: project heartbeat: %w", name, err)
	}
	aligned, err := heartbeat.Align(phb, shb)
	if err != nil {
		return nil, fmt.Errorf("study: %s: align: %w", name, err)
	}
	joint := coevolution.FromAligned(aligned)
	measures, err := coevolution.ComputeMeasures(joint)
	if err != nil {
		return nil, fmt.Errorf("study: %s: measures: %w", name, err)
	}
	// Change locality: every table that ever existed in the history,
	// measured over the post-birth deltas only (the initial declaration
	// "changes" every table and would mask the locality of evolution).
	sc, ownedByWorker := engine.State(ctx).(*measureScratch)
	if !ownedByWorker {
		sc = measureScratchPool.Get().(*measureScratch)
	}
	clear(sc.tableSet)
	for _, v := range sh.Versions {
		for _, t := range v.Schema.Tables() {
			sc.tableSet[strings.ToLower(t.Name)] = true
		}
	}
	sc.allTables = sc.allTables[:0]
	for t := range sc.tableSet {
		sc.allTables = append(sc.allTables, t)
	}
	locality := schemadiff.MeasureLocality(postBirthDeltas(sh), sc.allTables)
	if !ownedByWorker {
		measureScratchPool.Put(sc)
	}

	health := sh.ParseHealth()
	health.MergesSkipped = ph.MergesSkipped

	return &ProjectResult{
		Name:                name,
		DDLPath:             ddlPath,
		Taxon:               taxa.ClassifyHistory(sh, opts.Taxa),
		ParseHealth:         health,
		DurationMonths:      measures.DurationMonths,
		SchemaCommits:       sh.CommitCount(),
		ActiveSchemaCommits: sh.ActiveCommits(),
		ProjectCommits:      ph.CommitCount(),
		FileUpdates:         ph.TotalFileUpdates(),
		TotalSchemaActivity: sh.TotalActivity(),
		Joint:               joint,
		Measures:            measures,
		Locality:            locality,
	}, nil
}

// Failure records one project the study could not measure, with the
// wrapped per-project cause (a recovered panic surfaces here as an
// *engine.PanicError).
type Failure struct {
	Name string
	// Index is the project's global corpus index when known (streaming
	// runs fill it; batch paths may leave it zero). Shard coordinators
	// sort merged failure lists by it to restore corpus order.
	Index int
	Err   error
}

// Dataset is the full per-project result collection of one study run.
type Dataset struct {
	Projects []*ProjectResult
	// Failures lists the projects that could not be analyzed, in project
	// order. Aggregations operate over Projects only, so a partial study
	// still yields every figure.
	Failures []Failure
}

// Size returns the number of analyzed projects.
func (d *Dataset) Size() int { return len(d.Projects) }

// ByTaxon groups the projects by measured taxon.
func (d *Dataset) ByTaxon() map[taxa.Taxon][]*ProjectResult {
	groups := make(map[taxa.Taxon][]*ProjectResult, taxa.Count)
	for _, p := range d.Projects {
		groups[p.Taxon] = append(groups[p.Taxon], p)
	}
	return groups
}

// AnalyzeCorpus measures every project of a synthetic corpus. See
// AnalyzeCorpusContext for the execution semantics.
func AnalyzeCorpus(projects []*corpus.Project, opts Options) (*Dataset, error) {
	return AnalyzeCorpusContext(context.Background(), projects, opts)
}

// AnalyzeCorpusContext measures every project of a corpus on the
// execution engine: projects are analyzed concurrently (opts.Exec.Workers
// bounded, default GOMAXPROCS), and the dataset's project order follows
// the corpus order regardless of completion order, so figures and CSV
// exports are byte-identical to a serial run.
//
// Under the default CollectErrors policy a project whose analysis fails —
// or panics — is recorded in Dataset.Failures and the study continues;
// the returned error is non-nil only when the run itself stops (context
// cancellation, or the FailFast policy). Even then the partial dataset
// accumulated so far is returned alongside the error, so an interrupted
// run can still report what it completed.
func AnalyzeCorpusContext(ctx context.Context, projects []*corpus.Project, opts Options) (*Dataset, error) {
	eopts := opts.Exec
	if eopts.Name == nil {
		eopts.Name = func(i int) string { return projects[i].Name }
	}
	eopts.Obs = opts.Obs
	eopts.Scope = "analyze"
	if eopts.WorkerState == nil {
		// Each engine worker carries its own measure scratch: tasks mutate
		// it lock-free and nothing crosses worker boundaries.
		eopts.WorkerState = func() any { return newMeasureScratch() }
	}
	ctx, span := opts.Obs.StartSpan(ctx, "analyze")
	defer span.End()
	span.SetArg("projects", fmt.Sprint(len(projects)))
	log := opts.Obs.Logger()
	log.Info("study: analyzing corpus", "projects", len(projects))
	results, failures, err := engine.Map(ctx, projects,
		func(ctx context.Context, _ int, p *corpus.Project) (*ProjectResult, error) {
			res, err := analyzeProjectStaged(ctx, p, opts)
			if err != nil {
				return nil, err
			}
			intended := p.Taxon
			res.IntendedTaxon = &intended
			return res, nil
		}, eopts)
	d := &Dataset{Projects: make([]*ProjectResult, 0, len(projects))}
	for _, res := range results {
		if res != nil {
			d.Projects = append(d.Projects, res)
		}
	}
	for _, f := range failures {
		d.Failures = append(d.Failures, Failure{Name: f.Name, Err: f.Err})
	}
	if err != nil {
		return d, err
	}
	log.Info("study: corpus analyzed", "projects", len(d.Projects), "failures", len(d.Failures))
	return d, nil
}

// analyzeProjectStaged is the engine task body for one corpus project,
// with the pipeline's phases marked as engine stages so the event stream
// carries per-stage timings (locate, extract, cache, measure).
func analyzeProjectStaged(ctx context.Context, p *corpus.Project, opts Options) (*ProjectResult, error) {
	ddlPath := p.DDLPath
	if ddlPath == "" {
		engine.Stage(ctx, "locate")
		found, err := history.FindDDLPath(p.Repo)
		if err != nil {
			return nil, fmt.Errorf("study: %s: %w", p.Repo.Name(), err)
		}
		ddlPath = found
	}
	engine.Stage(ctx, "extract")
	return analyzeRepository(ctx, p.Repo.Name(), ddlPath, p.Repo, opts)
}

// RunDefault generates the default 195-project corpus with the given seed
// and analyzes it — the one-call entry point used by benchmarks, examples
// and the CLI.
func RunDefault(seed int64) (*Dataset, error) {
	return Run(context.Background(), seed, DefaultOptions())
}

// Run generates the default corpus with the given seed and analyzes it
// under the given options; corpus generation reuses the analysis engine
// configuration (worker count and event observer) and the run's Observer.
func Run(ctx context.Context, seed int64, opts Options) (*Dataset, error) {
	ctx, span := opts.Obs.StartSpan(ctx, "run")
	defer span.End()
	opts.Obs.Logger().Info("study: run starting", "seed", seed)
	cfg := corpus.DefaultConfig(seed)
	cfg.Exec.Workers = opts.Exec.Workers
	cfg.Cache = opts.effectiveCache()
	cfg.Obs = opts.Obs
	projects, err := corpus.GenerateContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return AnalyzeCorpusContext(ctx, projects, opts)
}

// postBirthDeltas returns the delta sequence excluding the schema's birth.
func postBirthDeltas(sh *history.SchemaHistory) []*schemadiff.Delta {
	if len(sh.Deltas) <= 1 {
		return nil
	}
	return sh.Deltas[1:]
}
