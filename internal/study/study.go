// Package study runs the paper's end-to-end pipeline: for every project,
// extract the schema and project histories, build the monthly heartbeats,
// align them into a joint progress diagram, compute the co-evolution
// measures and classify the taxon; then aggregate the per-project results
// into the evaluation's figures and statistical tests.
package study

import (
	"fmt"
	"strings"

	"coevo/internal/coevolution"
	"coevo/internal/corpus"
	"coevo/internal/heartbeat"
	"coevo/internal/history"
	"coevo/internal/schemadiff"
	"coevo/internal/taxa"
	"coevo/internal/vcs"
)

// ProjectResult carries everything the study measures for one project.
type ProjectResult struct {
	Name    string
	DDLPath string

	// Taxon is the measured archetype; IntendedTaxon is the generator's
	// target when the project came from the synthetic corpus (nil
	// otherwise) — keeping both makes generator drift visible.
	Taxon         taxa.Taxon
	IntendedTaxon *taxa.Taxon

	// Raw history statistics.
	DurationMonths      int
	SchemaCommits       int
	ActiveSchemaCommits int
	ProjectCommits      int
	FileUpdates         int
	TotalSchemaActivity int

	// Joint is the three-series joint progress diagram.
	Joint *coevolution.JointProgress
	// Measures is the full measure suite over Joint.
	Measures *coevolution.Measures
	// Locality summarizes how concentrated the schema's change was across
	// its tables (the related-work locality finding).
	Locality schemadiff.Locality
}

// Options configures the analysis.
type Options struct {
	History history.Options
	Taxa    taxa.Config
	// Theta values are fixed by the paper (5% and 10%) inside
	// coevolution.ComputeMeasures.
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{History: history.DefaultOptions(), Taxa: taxa.DefaultConfig()}
}

// AnalyzeRepository measures one repository. ddlPath may be empty, in
// which case it is located with history.FindDDLPath.
func AnalyzeRepository(repo *vcs.Repository, ddlPath string, opts Options) (*ProjectResult, error) {
	if ddlPath == "" {
		found, err := history.FindDDLPath(repo)
		if err != nil {
			return nil, fmt.Errorf("study: %s: %w", repo.Name(), err)
		}
		ddlPath = found
	}
	sh, err := history.ExtractSchemaHistory(repo, ddlPath, opts.History)
	if err != nil {
		return nil, fmt.Errorf("study: %s: %w", repo.Name(), err)
	}
	ph, err := history.ExtractProjectHistory(repo)
	if err != nil {
		return nil, fmt.Errorf("study: %s: %w", repo.Name(), err)
	}
	return analyze(repo.Name(), ddlPath, sh, ph, opts)
}

// AnalyzeHistories measures a project given already-extracted histories
// (the entry point for real-git ingestion, where the project history comes
// from a parsed `git log` and the schema history from file versions).
func AnalyzeHistories(name, ddlPath string, sh *history.SchemaHistory, ph *history.ProjectHistory, opts Options) (*ProjectResult, error) {
	return analyze(name, ddlPath, sh, ph, opts)
}

func analyze(name, ddlPath string, sh *history.SchemaHistory, ph *history.ProjectHistory, opts Options) (*ProjectResult, error) {
	shb, err := sh.Heartbeat()
	if err != nil {
		return nil, fmt.Errorf("study: %s: schema heartbeat: %w", name, err)
	}
	phb, err := ph.Heartbeat()
	if err != nil {
		return nil, fmt.Errorf("study: %s: project heartbeat: %w", name, err)
	}
	aligned, err := heartbeat.Align(phb, shb)
	if err != nil {
		return nil, fmt.Errorf("study: %s: align: %w", name, err)
	}
	joint := coevolution.FromAligned(aligned)
	measures, err := coevolution.ComputeMeasures(joint)
	if err != nil {
		return nil, fmt.Errorf("study: %s: measures: %w", name, err)
	}
	// Change locality: every table that ever existed in the history,
	// measured over the post-birth deltas only (the initial declaration
	// "changes" every table and would mask the locality of evolution).
	tableSet := map[string]bool{}
	for _, v := range sh.Versions {
		for _, t := range v.Schema.Tables() {
			tableSet[strings.ToLower(t.Name)] = true
		}
	}
	allTables := make([]string, 0, len(tableSet))
	for t := range tableSet {
		allTables = append(allTables, t)
	}

	return &ProjectResult{
		Name:                name,
		DDLPath:             ddlPath,
		Taxon:               taxa.ClassifyHistory(sh, opts.Taxa),
		DurationMonths:      measures.DurationMonths,
		SchemaCommits:       sh.CommitCount(),
		ActiveSchemaCommits: sh.ActiveCommits(),
		ProjectCommits:      ph.CommitCount(),
		FileUpdates:         ph.TotalFileUpdates(),
		TotalSchemaActivity: sh.TotalActivity(),
		Joint:               joint,
		Measures:            measures,
		Locality:            schemadiff.MeasureLocality(postBirthDeltas(sh), allTables),
	}, nil
}

// Dataset is the full per-project result collection of one study run.
type Dataset struct {
	Projects []*ProjectResult
}

// Size returns the number of analyzed projects.
func (d *Dataset) Size() int { return len(d.Projects) }

// ByTaxon groups the projects by measured taxon.
func (d *Dataset) ByTaxon() map[taxa.Taxon][]*ProjectResult {
	groups := make(map[taxa.Taxon][]*ProjectResult, taxa.Count)
	for _, p := range d.Projects {
		groups[p.Taxon] = append(groups[p.Taxon], p)
	}
	return groups
}

// AnalyzeCorpus measures every project of a synthetic corpus.
func AnalyzeCorpus(projects []*corpus.Project, opts Options) (*Dataset, error) {
	d := &Dataset{Projects: make([]*ProjectResult, 0, len(projects))}
	for _, p := range projects {
		res, err := AnalyzeRepository(p.Repo, p.DDLPath, opts)
		if err != nil {
			return nil, err
		}
		intended := p.Taxon
		res.IntendedTaxon = &intended
		d.Projects = append(d.Projects, res)
	}
	return d, nil
}

// RunDefault generates the default 195-project corpus with the given seed
// and analyzes it — the one-call entry point used by benchmarks, examples
// and the CLI.
func RunDefault(seed int64) (*Dataset, error) {
	projects, err := corpus.Generate(corpus.DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	return AnalyzeCorpus(projects, DefaultOptions())
}

// postBirthDeltas returns the delta sequence excluding the schema's birth.
func postBirthDeltas(sh *history.SchemaHistory) []*schemadiff.Delta {
	if len(sh.Deltas) <= 1 {
		return nil
	}
	return sh.Deltas[1:]
}
