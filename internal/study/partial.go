package study

// Mergeable figure partials: every accumulator behind Figures is an
// associative fold, so a corpus can be split into disjoint shards, each
// shard folded independently into a PartialFigures, and the partials
// merged back into exactly the state a sequential fold would have built.
//
// Two kinds of state make that work:
//
//   - Commutative counters (histogram buckets, band/advance/attainment
//     counts, parse-health sums) merge by element-wise addition; any
//     merge order yields the same state.
//   - Order-sensitive vectors (the scatter point cloud, the locality
//     share distributions, the Section 7 statistics rows) carry each
//     entry's global corpus sequence number, and merging interleaves
//     them back into ascending sequence order. Any merge order of
//     disjoint partials therefore reproduces the sequential vectors —
//     the merge laws the property tests in partial_test.go check.
//
// Partials travel between processes through a versioned binary codec
// built on the cache codec (internal/cache.Enc/Dec), the same idiom the
// measure-bundle cache uses in cached.go: explicit field order, varint
// framing, fail-stop decoding. Bump partialFiguresMagic whenever the
// field layout changes — a coordinator refuses partials from a worker
// built at a different codec version instead of mis-decoding them.

import (
	"fmt"

	"coevo/internal/cache"
	"coevo/internal/stats"
	"coevo/internal/taxa"
)

// PartialFigures is a Figures built over one shard of a corpus: the
// unit the coordinator/worker protocol ships and folds. It is the same
// type — every Figures is mergeable — the alias just names the role.
type PartialFigures = Figures

// partialFiguresMagic versions the partial-figures wire format. v1:
// initial layout (seq-keyed scatter/locality/stats vectors, commutative
// counter sums, parse-health totals).
const partialFiguresMagic = "coevo/partial-figures/v1"

// decodeCap bounds length-prefixed preallocation while decoding, so a
// corrupt or adversarial length cannot demand gigabytes up front; the
// append loop below it still fail-stops on truncated input.
const decodeCap = 4096

// Merge folds o into f. Both must have been built with the same figure
// configuration (θ, bucket counts, band, α thresholds, locality floor);
// a mismatch is an error, not a silently wrong figure. Merging partials
// built over disjoint corpus shards — in any order — reproduces the
// state of one sequential fold over the union, because commutative
// counters add and sequence-keyed vectors re-interleave into corpus
// order. o is left in an unspecified state and must not be used again.
func (f *Figures) Merge(o *Figures) error {
	if o == nil {
		return nil
	}
	if err := f.Sync.merge(o.Sync); err != nil {
		return fmt.Errorf("study: merge figures: %w", err)
	}
	if err := f.SyncByTaxon.merge(o.SyncByTaxon); err != nil {
		return fmt.Errorf("study: merge figures: %w", err)
	}
	f.Scatter.merge(o.Scatter)
	if err := f.Band.merge(o.Band); err != nil {
		return fmt.Errorf("study: merge figures: %w", err)
	}
	f.Advance.merge(o.Advance)
	f.Always.merge(o.Always)
	if err := f.Attainment.merge(o.Attainment); err != nil {
		return fmt.Errorf("study: merge figures: %w", err)
	}
	if err := f.Locality.merge(o.Locality); err != nil {
		return fmt.Errorf("study: merge figures: %w", err)
	}
	f.Stats.merge(o.Stats)
	f.Health.merge(o.Health)
	f.count += o.count
	return nil
}

// EncodePartial serializes f through the versioned binary codec. The
// result is self-contained: configuration travels with the state, so
// DecodePartialFigures rebuilds an equivalent Figures without any
// out-of-band agreement beyond the codec version.
func (f *Figures) EncodePartial() []byte {
	e := cache.GetEnc()
	defer cache.PutEnc(e)
	e.String(partialFiguresMagic)
	e.Int(int64(f.count))

	// Figure 4 histogram and its per-taxon view.
	e.Float(f.Sync.h.Theta)
	encodeIntsP(e, f.Sync.h.Buckets)
	e.Int(int64(f.Sync.h.Skipped))
	e.Float(f.SyncByTaxon.theta)
	e.Uvarint(uint64(taxa.Count))
	for _, taxon := range taxa.All() {
		h := f.SyncByTaxon.byTax[taxon]
		encodeIntsP(e, h.Buckets)
		e.Int(int64(h.Skipped))
	}

	// Figure 5 point cloud, sequence-keyed.
	e.Uvarint(uint64(len(f.Scatter.points)))
	for i, p := range f.Scatter.points {
		e.Int(f.Scatter.seqs[i])
		e.String(p.Name)
		e.Uvarint(uint64(p.Taxon))
		e.Int(int64(p.Duration))
		e.Float(p.Sync)
	}

	// Figure 5 band.
	e.Int(int64(f.Band.thresholdMonths))
	e.Float(f.Band.lo)
	e.Float(f.Band.hi)
	e.Int(int64(f.Band.inside))
	e.Int(int64(f.Band.outside))

	// Figure 6 advance breakdown.
	encodeIntsP(e, f.Advance.srcCounts)
	encodeIntsP(e, f.Advance.timeCounts)
	e.Int(int64(f.Advance.blankSource))
	e.Int(int64(f.Advance.blankTime))
	e.Int(int64(f.Advance.total))

	// Figure 7 always-in-advance cells.
	e.Uvarint(uint64(len(f.Always.cells)))
	for _, c := range f.Always.cells {
		e.Int(int64(c.Projects))
		e.Int(int64(c.Time))
		e.Int(int64(c.Source))
		e.Int(int64(c.Both))
	}
	e.Int(int64(f.Always.time))
	e.Int(int64(f.Always.source))
	e.Int(int64(f.Always.both))
	e.Int(int64(f.Always.total))

	// Figure 8 attainment breakdown.
	encodeFloats(e, f.Attainment.alphas)
	encodeFloats(e, f.Attainment.rangeEdges)
	for _, row := range f.Attainment.counts {
		encodeIntsP(e, row)
	}
	e.Int(int64(f.Attainment.total))

	// Change locality, sequence-keyed.
	e.Int(int64(f.Locality.minTables))
	e.Uvarint(uint64(len(f.Locality.topShares)))
	for i := range f.Locality.topShares {
		e.Int(f.Locality.seqs[i])
		e.Float(f.Locality.topShares[i])
		e.Float(f.Locality.unchangedShares[i])
	}

	// Section 7 statistics rows, sequence-keyed.
	e.Uvarint(uint64(len(f.Stats.rows)))
	for i := range f.Stats.rows {
		r := &f.Stats.rows[i]
		e.Int(r.seq)
		e.Uvarint(uint64(r.taxon))
		e.Int(int64(r.durationMonths))
		e.Float(r.sync5)
		e.Float(r.sync10)
		e.Float(r.advTime)
		e.Float(r.advSource)
		e.Bool(r.advanceDefined)
		e.Bool(r.aheadTime)
		e.Bool(r.aheadSource)
		e.Bool(r.aheadBoth)
		e.Float(r.attain75)
		e.Int(int64(r.totalSchemaActivity))
		e.Int(int64(r.fileUpdates))
	}

	// Parse health.
	hs := f.Health.summary
	e.String(hs.Total.Dialect)
	e.Int(int64(hs.Total.Versions))
	e.Int(int64(hs.Total.CleanVersions))
	e.Int(int64(hs.Total.Stats.Attempted))
	e.Int(int64(hs.Total.Stats.Parsed))
	e.Int(int64(hs.Total.Stats.Recovered))
	e.Int(int64(hs.Total.Stats.Dropped))
	e.Int(int64(hs.Total.Lex))
	e.Int(int64(hs.Total.Syntax))
	e.Int(int64(hs.Total.Semantic))
	e.Int(int64(hs.Total.Uncategorized))
	e.Int(int64(hs.Total.MergesSkipped))
	e.Int(int64(hs.Total.NoOpCommits))
	e.Int(int64(hs.Projects))
	e.Int(int64(hs.CleanProjects))

	return e.Copy()
}

// DecodePartialFigures rebuilds a PartialFigures from its serialized
// form. Any malformed input — wrong magic, truncated fields, trailing
// bytes, impossible shapes — is an error, never a panic or a silently
// partial decode.
func DecodePartialFigures(data []byte) (*PartialFigures, error) {
	d := cache.NewDec(data)
	if magic := d.String(); magic != partialFiguresMagic {
		return nil, fmt.Errorf("study: partial figures: bad magic %q (want %q)", magic, partialFiguresMagic)
	}
	f := &Figures{count: int(d.Int())}

	theta := d.Float()
	buckets := decodeIntsP(d)
	h := &SyncHistogram{Theta: theta, Buckets: buckets, Labels: bucketLabels(len(buckets)), Skipped: int(d.Int())}
	f.Sync = &SyncHistogramAccumulator{h: h}

	taxTheta := d.Float()
	if n := d.Uvarint(); !d.Failed() && n != uint64(taxa.Count) {
		return nil, fmt.Errorf("study: partial figures: %d taxa histograms (want %d)", n, taxa.Count)
	}
	byTax := make(map[taxa.Taxon]*SyncHistogram, taxa.Count)
	for _, taxon := range taxa.All() {
		tb := decodeIntsP(d)
		byTax[taxon] = &SyncHistogram{Theta: taxTheta, Buckets: tb, Labels: bucketLabels(len(tb)), Skipped: int(d.Int())}
	}
	f.SyncByTaxon = &TaxonSyncHistogramAccumulator{theta: taxTheta, byTax: byTax}

	f.Scatter = NewScatterAccumulator()
	nPoints := d.Uvarint()
	capHint := min(nPoints, decodeCap)
	f.Scatter.seqs = make([]int64, 0, capHint)
	f.Scatter.points = make([]ScatterPoint, 0, capHint)
	for i := uint64(0); i < nPoints && !d.Failed(); i++ {
		f.Scatter.seqs = append(f.Scatter.seqs, d.Int())
		f.Scatter.points = append(f.Scatter.points, ScatterPoint{
			Name:     d.String(),
			Taxon:    taxa.Taxon(d.Uvarint()),
			Duration: int(d.Int()),
			Sync:     d.Float(),
		})
	}

	f.Band = NewSyncBandAccumulator(int(d.Int()), d.Float(), d.Float())
	f.Band.inside = int(d.Int())
	f.Band.outside = int(d.Int())

	f.Advance = NewAdvanceAccumulator()
	src, tim := decodeIntsP(d), decodeIntsP(d)
	if !d.Failed() && (len(src) != f.Advance.n || len(tim) != f.Advance.n) {
		return nil, fmt.Errorf("study: partial figures: advance breakdown has %d/%d ranges (want %d)", len(src), len(tim), f.Advance.n)
	}
	f.Advance.srcCounts, f.Advance.timeCounts = src, tim
	f.Advance.blankSource = int(d.Int())
	f.Advance.blankTime = int(d.Int())
	f.Advance.total = int(d.Int())

	f.Always = NewAlwaysAdvanceAccumulator()
	if n := d.Uvarint(); !d.Failed() && n != uint64(len(f.Always.cells)) {
		return nil, fmt.Errorf("study: partial figures: %d always-advance cells (want %d)", n, len(f.Always.cells))
	}
	for i := range f.Always.cells {
		c := &f.Always.cells[i]
		c.Projects = int(d.Int())
		c.Time = int(d.Int())
		c.Source = int(d.Int())
		c.Both = int(d.Int())
	}
	f.Always.time = int(d.Int())
	f.Always.source = int(d.Int())
	f.Always.both = int(d.Int())
	f.Always.total = int(d.Int())

	alphas, edges := decodeFloats(d), decodeFloats(d)
	f.Attainment = NewAttainmentAccumulator(alphas, edges)
	for i := range f.Attainment.counts {
		row := decodeIntsP(d)
		if !d.Failed() && len(row) != len(edges) {
			return nil, fmt.Errorf("study: partial figures: attainment row has %d ranges (want %d)", len(row), len(edges))
		}
		f.Attainment.counts[i] = row
	}
	f.Attainment.total = int(d.Int())

	f.Locality = NewLocalityAccumulator(int(d.Int()))
	nLoc := d.Uvarint()
	capHint = min(nLoc, decodeCap)
	f.Locality.seqs = make([]int64, 0, capHint)
	f.Locality.topShares = make([]float64, 0, capHint)
	f.Locality.unchangedShares = make([]float64, 0, capHint)
	for i := uint64(0); i < nLoc && !d.Failed(); i++ {
		f.Locality.seqs = append(f.Locality.seqs, d.Int())
		f.Locality.topShares = append(f.Locality.topShares, d.Float())
		f.Locality.unchangedShares = append(f.Locality.unchangedShares, d.Float())
	}

	f.Stats = NewStatsAccumulator()
	nRows := d.Uvarint()
	f.Stats.rows = make([]statsRow, 0, min(nRows, decodeCap))
	for i := uint64(0); i < nRows && !d.Failed(); i++ {
		f.Stats.rows = append(f.Stats.rows, statsRow{
			seq:                 d.Int(),
			taxon:               taxa.Taxon(d.Uvarint()),
			durationMonths:      int(d.Int()),
			sync5:               d.Float(),
			sync10:              d.Float(),
			advTime:             d.Float(),
			advSource:           d.Float(),
			advanceDefined:      d.Bool(),
			aheadTime:           d.Bool(),
			aheadSource:         d.Bool(),
			aheadBoth:           d.Bool(),
			attain75:            d.Float(),
			totalSchemaActivity: int(d.Int()),
			fileUpdates:         int(d.Int()),
		})
	}

	f.Health = NewParseHealthAccumulator()
	hs := &f.Health.summary
	hs.Total.Dialect = d.String()
	hs.Total.Versions = int(d.Int())
	hs.Total.CleanVersions = int(d.Int())
	hs.Total.Stats.Attempted = int(d.Int())
	hs.Total.Stats.Parsed = int(d.Int())
	hs.Total.Stats.Recovered = int(d.Int())
	hs.Total.Stats.Dropped = int(d.Int())
	hs.Total.Lex = int(d.Int())
	hs.Total.Syntax = int(d.Int())
	hs.Total.Semantic = int(d.Int())
	hs.Total.Uncategorized = int(d.Int())
	hs.Total.MergesSkipped = int(d.Int())
	hs.Total.NoOpCommits = int(d.Int())
	hs.Projects = int(d.Int())
	hs.CleanProjects = int(d.Int())

	// Err also rejects trailing bytes, so a value that decoded cleanly is
	// exactly one partial, nothing more.
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("study: partial figures: %w", err)
	}
	return f, nil
}

// bucketLabels rebuilds a histogram's bucket labels from its width.
func bucketLabels(n int) []string {
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = stats.BucketLabel(i, n)
	}
	return labels
}

// ---- per-accumulator merges ----

func (a *SyncHistogramAccumulator) merge(b *SyncHistogramAccumulator) error {
	if a.h.Theta != b.h.Theta || len(a.h.Buckets) != len(b.h.Buckets) {
		return fmt.Errorf("sync histogram config mismatch (θ=%g/%d vs θ=%g/%d)",
			a.h.Theta, len(a.h.Buckets), b.h.Theta, len(b.h.Buckets))
	}
	for i := range a.h.Buckets {
		a.h.Buckets[i] += b.h.Buckets[i]
	}
	a.h.Skipped += b.h.Skipped
	return nil
}

func (a *TaxonSyncHistogramAccumulator) merge(b *TaxonSyncHistogramAccumulator) error {
	if a.theta != b.theta {
		return fmt.Errorf("per-taxon histogram θ mismatch (%g vs %g)", a.theta, b.theta)
	}
	for _, taxon := range taxa.All() {
		ah, bh := a.byTax[taxon], b.byTax[taxon]
		if len(ah.Buckets) != len(bh.Buckets) {
			return fmt.Errorf("per-taxon histogram bucket mismatch for %s (%d vs %d)",
				taxon, len(ah.Buckets), len(bh.Buckets))
		}
		for i := range ah.Buckets {
			ah.Buckets[i] += bh.Buckets[i]
		}
		ah.Skipped += bh.Skipped
	}
	return nil
}

func (a *ScatterAccumulator) merge(b *ScatterAccumulator) {
	if len(b.points) == 0 {
		return
	}
	if len(a.points) == 0 {
		a.seqs = append(a.seqs[:0], b.seqs...)
		a.points = append(a.points[:0], b.points...)
		return
	}
	seqs := make([]int64, 0, len(a.seqs)+len(b.seqs))
	points := make([]ScatterPoint, 0, len(a.points)+len(b.points))
	i, j := 0, 0
	for i < len(a.seqs) || j < len(b.seqs) {
		if j >= len(b.seqs) || (i < len(a.seqs) && a.seqs[i] <= b.seqs[j]) {
			seqs, points = append(seqs, a.seqs[i]), append(points, a.points[i])
			i++
		} else {
			seqs, points = append(seqs, b.seqs[j]), append(points, b.points[j])
			j++
		}
	}
	a.seqs, a.points = seqs, points
}

func (a *SyncBandAccumulator) merge(b *SyncBandAccumulator) error {
	if a.thresholdMonths != b.thresholdMonths || a.lo != b.lo || a.hi != b.hi {
		return fmt.Errorf("sync band config mismatch (%dmo [%g,%g] vs %dmo [%g,%g])",
			a.thresholdMonths, a.lo, a.hi, b.thresholdMonths, b.lo, b.hi)
	}
	a.inside += b.inside
	a.outside += b.outside
	return nil
}

func (a *AdvanceAccumulator) merge(b *AdvanceAccumulator) {
	for i := range a.srcCounts {
		a.srcCounts[i] += b.srcCounts[i]
		a.timeCounts[i] += b.timeCounts[i]
	}
	a.blankSource += b.blankSource
	a.blankTime += b.blankTime
	a.total += b.total
}

func (a *AlwaysAdvanceAccumulator) merge(b *AlwaysAdvanceAccumulator) {
	for i := range a.cells {
		a.cells[i].Projects += b.cells[i].Projects
		a.cells[i].Time += b.cells[i].Time
		a.cells[i].Source += b.cells[i].Source
		a.cells[i].Both += b.cells[i].Both
	}
	a.time += b.time
	a.source += b.source
	a.both += b.both
	a.total += b.total
}

func (a *AttainmentAccumulator) merge(b *AttainmentAccumulator) error {
	if !floatsEqual(a.alphas, b.alphas) || !floatsEqual(a.rangeEdges, b.rangeEdges) {
		return fmt.Errorf("attainment config mismatch (α=%v/%v vs α=%v/%v)",
			a.alphas, a.rangeEdges, b.alphas, b.rangeEdges)
	}
	for i := range a.counts {
		for j := range a.counts[i] {
			a.counts[i][j] += b.counts[i][j]
		}
	}
	a.total += b.total
	return nil
}

func (a *LocalityAccumulator) merge(b *LocalityAccumulator) error {
	if a.minTables != b.minTables {
		return fmt.Errorf("locality floor mismatch (%d vs %d tables)", a.minTables, b.minTables)
	}
	if len(b.topShares) == 0 {
		return nil
	}
	if len(a.topShares) == 0 {
		a.seqs = append(a.seqs[:0], b.seqs...)
		a.topShares = append(a.topShares[:0], b.topShares...)
		a.unchangedShares = append(a.unchangedShares[:0], b.unchangedShares...)
		return nil
	}
	seqs := make([]int64, 0, len(a.seqs)+len(b.seqs))
	tops := make([]float64, 0, len(a.topShares)+len(b.topShares))
	unch := make([]float64, 0, len(a.unchangedShares)+len(b.unchangedShares))
	i, j := 0, 0
	for i < len(a.seqs) || j < len(b.seqs) {
		if j >= len(b.seqs) || (i < len(a.seqs) && a.seqs[i] <= b.seqs[j]) {
			seqs, tops, unch = append(seqs, a.seqs[i]), append(tops, a.topShares[i]), append(unch, a.unchangedShares[i])
			i++
		} else {
			seqs, tops, unch = append(seqs, b.seqs[j]), append(tops, b.topShares[j]), append(unch, b.unchangedShares[j])
			j++
		}
	}
	a.seqs, a.topShares, a.unchangedShares = seqs, tops, unch
	return nil
}

func (a *StatsAccumulator) merge(b *StatsAccumulator) {
	if len(b.rows) == 0 {
		return
	}
	if len(a.rows) == 0 {
		a.rows = append(a.rows[:0], b.rows...)
		return
	}
	rows := make([]statsRow, 0, len(a.rows)+len(b.rows))
	i, j := 0, 0
	for i < len(a.rows) || j < len(b.rows) {
		if j >= len(b.rows) || (i < len(a.rows) && a.rows[i].seq <= b.rows[j].seq) {
			rows = append(rows, a.rows[i])
			i++
		} else {
			rows = append(rows, b.rows[j])
			j++
		}
	}
	a.rows = rows
}

// merge folds b's corpus-wide parse-health aggregate into a. An empty
// side is the fold identity — skipped outright, because
// history.ParseHealth.Add would read an all-zero Total as a project
// with an unknown dialect and degrade the merged dialect to "mixed".
func (a *ParseHealthAccumulator) merge(b *ParseHealthAccumulator) {
	if b.summary.Projects == 0 {
		return
	}
	if a.summary.Projects == 0 {
		a.summary = b.summary
		return
	}
	a.summary.Total.Add(b.summary.Total)
	a.summary.Projects += b.summary.Projects
	a.summary.CleanProjects += b.summary.CleanProjects
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// encodeIntsP and decodeIntsP are the int-slice counterparts of the
// float helpers in cached.go, with the same corrupt-length clamp.
func encodeIntsP(e *cache.Enc, v []int) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Int(int64(x))
	}
}

func decodeIntsP(d *cache.Dec) []int {
	n := d.Uvarint()
	if d.Failed() || n == 0 {
		return nil
	}
	v := make([]int, 0, min(n, decodeCap))
	for i := uint64(0); i < n && !d.Failed(); i++ {
		v = append(v, int(d.Int()))
	}
	return v
}
