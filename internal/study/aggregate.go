package study

// Online figure aggregation: every figure of the evaluation has an
// accumulator that folds one ProjectResult at a time, so a streaming
// study can aggregate the corpus without ever holding it. The batch
// Dataset methods in figures.go and statistics.go are thin collect-then-
// fold wrappers over these same accumulators — one implementation, two
// consumption styles, byte-identical output.

import (
	"fmt"

	"coevo/internal/stats"
	"coevo/internal/taxa"
)

// Aggregator is an online accumulator over per-project results: Add
// folds one project into O(1)-ish aggregate state (the scatter and
// statistics accumulators keep per-project scalars — a few floats per
// project, never the repository or its history).
type Aggregator interface {
	Add(p *ProjectResult)
}

// Sink consumes the per-project results of a streaming study in corpus
// order. A failing Add aborts the stream.
type Sink interface {
	Add(p *ProjectResult) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*ProjectResult) error

// Add implements Sink.
func (f SinkFunc) Add(p *ProjectResult) error { return f(p) }

// IndexedSink is a Sink that also wants each result's global corpus
// index. A streaming study delivers results through AddAt when the sink
// supports it, so order-sensitive aggregates (and shard partials, which
// see only a subsequence of the corpus) can key their state by the true
// corpus position rather than arrival order.
type IndexedSink interface {
	Sink
	AddAt(seq int64, p *ProjectResult) error
}

// deliver routes one result to sink, through AddAt when the sink is
// index-aware.
func deliver(sink Sink, seq int64, p *ProjectResult) error {
	if is, ok := sink.(IndexedSink); ok {
		return is.AddAt(seq, p)
	}
	return sink.Add(p)
}

// AggregatorSink adapts any Aggregator to the (fallible) Sink interface.
func AggregatorSink(a Aggregator) Sink {
	return SinkFunc(func(p *ProjectResult) error { a.Add(p); return nil })
}

// MultiSink fans each result out to every sink in order, stopping at the
// first error. The returned sink is index-aware: members that implement
// IndexedSink receive the corpus index, plain Sinks just the result.
func MultiSink(sinks ...Sink) Sink {
	return multiSink(sinks)
}

type multiSink []Sink

// Add implements Sink.
func (m multiSink) Add(p *ProjectResult) error {
	for _, s := range m {
		if s == nil {
			continue
		}
		if err := s.Add(p); err != nil {
			return err
		}
	}
	return nil
}

// AddAt implements IndexedSink.
func (m multiSink) AddAt(seq int64, p *ProjectResult) error {
	for _, s := range m {
		if s == nil {
			continue
		}
		if err := deliver(s, seq, p); err != nil {
			return err
		}
	}
	return nil
}

// fold replays a collected dataset through an accumulator — how the
// batch Dataset methods reuse the online implementations.
func fold[A Aggregator](d *Dataset, a A) A {
	for _, p := range d.Projects {
		a.Add(p)
	}
	return a
}

// projectSync resolves a project's θ-synchronicity: the precomputed
// Sync10 for the paper's default θ, a fresh (fallible) evaluation of the
// joint progress otherwise.
func projectSync(p *ProjectResult, theta float64) (float64, bool) {
	if theta == 0.10 {
		return p.Measures.Sync10, true
	}
	s, err := p.Joint.Synchronicity(theta)
	if err != nil {
		return 0, false
	}
	return s, true
}

// SyncHistogramAccumulator builds the Figure 4 θ-synchronicity histogram
// online.
type SyncHistogramAccumulator struct {
	h *SyncHistogram
}

// NewSyncHistogramAccumulator prepares an n-bucket histogram at θ.
func NewSyncHistogramAccumulator(theta float64, n int) *SyncHistogramAccumulator {
	h := &SyncHistogram{Theta: theta, Buckets: make([]int, n), Labels: make([]string, n)}
	for i := 0; i < n; i++ {
		h.Labels[i] = stats.BucketLabel(i, n)
	}
	return &SyncHistogramAccumulator{h: h}
}

// Add implements Aggregator. A project whose θ-synchronicity is
// undefined (degenerate joint series at a non-default θ) is counted in
// Skipped instead of being dropped silently.
func (a *SyncHistogramAccumulator) Add(p *ProjectResult) {
	sync, ok := projectSync(p, a.h.Theta)
	if !ok {
		a.h.Skipped++
		return
	}
	a.h.Buckets[stats.Bucket(sync, len(a.h.Buckets))]++
}

// Histogram returns the aggregate.
func (a *SyncHistogramAccumulator) Histogram() *SyncHistogram { return a.h }

// TaxonSyncHistogramAccumulator builds one Figure 4-style histogram per
// taxon online.
type TaxonSyncHistogramAccumulator struct {
	theta float64
	byTax map[taxa.Taxon]*SyncHistogram
}

// NewTaxonSyncHistogramAccumulator prepares per-taxon n-bucket
// histograms at θ.
func NewTaxonSyncHistogramAccumulator(theta float64, n int) *TaxonSyncHistogramAccumulator {
	byTax := make(map[taxa.Taxon]*SyncHistogram, taxa.Count)
	for _, taxon := range taxa.All() {
		h := &SyncHistogram{Theta: theta, Buckets: make([]int, n), Labels: make([]string, n)}
		for i := 0; i < n; i++ {
			h.Labels[i] = stats.BucketLabel(i, n)
		}
		byTax[taxon] = h
	}
	return &TaxonSyncHistogramAccumulator{theta: theta, byTax: byTax}
}

// Add implements Aggregator.
func (a *TaxonSyncHistogramAccumulator) Add(p *ProjectResult) {
	h := a.byTax[p.Taxon]
	sync, ok := projectSync(p, a.theta)
	if !ok {
		h.Skipped++
		return
	}
	h.Buckets[stats.Bucket(sync, len(h.Buckets))]++
}

// ByTaxon returns the aggregate.
func (a *TaxonSyncHistogramAccumulator) ByTaxon() map[taxa.Taxon]*SyncHistogram { return a.byTax }

// ScatterAccumulator collects the Figure 5 point cloud online. Each
// project contributes one point (name, taxon, two scalars); the
// repositories themselves are not retained. Points carry their corpus
// sequence number so partials from disjoint shards merge back into
// corpus order (see partial.go) — the point cloud is the one figure
// whose rendering is order-sensitive.
type ScatterAccumulator struct {
	seqs   []int64
	points []ScatterPoint
}

// NewScatterAccumulator prepares an empty point cloud.
func NewScatterAccumulator() *ScatterAccumulator { return &ScatterAccumulator{} }

// Add implements Aggregator.
func (a *ScatterAccumulator) Add(p *ProjectResult) { a.addAt(int64(len(a.points)), p) }

// addAt folds one project keyed by its corpus sequence number.
func (a *ScatterAccumulator) addAt(seq int64, p *ProjectResult) {
	a.seqs = append(a.seqs, seq)
	a.points = append(a.points, ScatterPoint{
		Name:     p.Name,
		Taxon:    p.Taxon,
		Duration: p.DurationMonths,
		Sync:     p.Measures.Sync10,
	})
}

// Points returns the aggregate in fold (= corpus sequence) order.
func (a *ScatterAccumulator) Points() []ScatterPoint { return a.points }

// SyncBandAccumulator counts the Figure 5 finding online: long-lived
// projects inside vs outside a synchronicity band.
type SyncBandAccumulator struct {
	thresholdMonths int
	lo, hi          float64
	inside, outside int
}

// NewSyncBandAccumulator prepares the band counter.
func NewSyncBandAccumulator(thresholdMonths int, lo, hi float64) *SyncBandAccumulator {
	return &SyncBandAccumulator{thresholdMonths: thresholdMonths, lo: lo, hi: hi}
}

// Add implements Aggregator.
func (a *SyncBandAccumulator) Add(p *ProjectResult) {
	if p.DurationMonths <= a.thresholdMonths {
		return
	}
	if p.Measures.Sync10 >= a.lo && p.Measures.Sync10 <= a.hi {
		a.inside++
	} else {
		a.outside++
	}
}

// Band returns the aggregate counts.
func (a *SyncBandAccumulator) Band() (inside, outside int) { return a.inside, a.outside }

// AdvanceAccumulator builds the Figure 6 advance-breakdown table online.
type AdvanceAccumulator struct {
	n                      int
	srcCounts, timeCounts  []int
	blankSource, blankTime int
	total                  int
}

// NewAdvanceAccumulator prepares the ten-range breakdown.
func NewAdvanceAccumulator() *AdvanceAccumulator {
	const n = 10
	return &AdvanceAccumulator{n: n, srcCounts: make([]int, n), timeCounts: make([]int, n)}
}

// Add implements Aggregator.
func (a *AdvanceAccumulator) Add(p *ProjectResult) {
	a.total++
	if !p.Measures.AdvanceDefined {
		a.blankSource++
		a.blankTime++
		return
	}
	a.srcCounts[stats.Bucket(p.Measures.AdvanceSource, a.n)]++
	a.timeCounts[stats.Bucket(p.Measures.AdvanceTime, a.n)]++
}

// Table renders the aggregate in the paper's presentation order (highest
// range first, with cumulative shares from the top).
func (a *AdvanceAccumulator) Table() *AdvanceTable {
	t := &AdvanceTable{Total: a.total, BlankSource: a.blankSource, BlankTime: a.blankTime}
	var srcCum, timeCum float64
	for i := a.n - 1; i >= 0; i-- {
		srcPct := pct(a.srcCounts[i], t.Total)
		timePct := pct(a.timeCounts[i], t.Total)
		srcCum += srcPct
		timeCum += timePct
		t.Rows = append(t.Rows, AdvanceRow{
			Label:       advanceLabel(i, a.n),
			SourceCount: a.srcCounts[i], SourcePct: srcPct, SourceCum: srcCum,
			TimeCount: a.timeCounts[i], TimePct: timePct, TimeCum: timeCum,
		})
	}
	return t
}

// AlwaysAdvanceAccumulator builds the Figure 7 counts online.
type AlwaysAdvanceAccumulator struct {
	cells              []AlwaysAdvanceCell
	time, source, both int
	total              int
}

// NewAlwaysAdvanceAccumulator prepares the per-taxon cells.
func NewAlwaysAdvanceAccumulator() *AlwaysAdvanceAccumulator {
	cells := make([]AlwaysAdvanceCell, taxa.Count)
	for i, taxon := range taxa.All() {
		cells[i].Taxon = taxon
	}
	return &AlwaysAdvanceAccumulator{cells: cells}
}

// Add implements Aggregator.
func (a *AlwaysAdvanceAccumulator) Add(p *ProjectResult) {
	a.total++
	cell := &a.cells[int(p.Taxon)]
	cell.Projects++
	if p.Measures.AlwaysAheadOfTime {
		cell.Time++
		a.time++
	}
	if p.Measures.AlwaysAheadOfSource {
		cell.Source++
		a.source++
	}
	if p.Measures.AlwaysAheadOfBoth {
		cell.Both++
		a.both++
	}
}

// Summary returns the aggregate.
func (a *AlwaysAdvanceAccumulator) Summary() *AlwaysAdvanceSummary {
	cells := make([]AlwaysAdvanceCell, len(a.cells))
	copy(cells, a.cells)
	return &AlwaysAdvanceSummary{
		PerTaxon: cells,
		Time:     a.time, Source: a.source, Both: a.both,
		Total: a.total,
	}
}

// AttainmentAccumulator builds the Figure 8 breakdown online.
type AttainmentAccumulator struct {
	alphas, rangeEdges []float64
	counts             [][]int
	total              int
}

// NewAttainmentAccumulator prepares the breakdown for the given α
// thresholds over the given lifetime ranges.
func NewAttainmentAccumulator(alphas, rangeEdges []float64) *AttainmentAccumulator {
	counts := make([][]int, len(alphas))
	for i := range counts {
		counts[i] = make([]int, len(rangeEdges))
	}
	return &AttainmentAccumulator{alphas: alphas, rangeEdges: rangeEdges, counts: counts}
}

// Add implements Aggregator.
func (a *AttainmentAccumulator) Add(p *ProjectResult) {
	a.total++
	for ai, alpha := range a.alphas {
		frac, err := p.Joint.AttainmentFraction(alpha)
		if err != nil {
			continue
		}
		for ri, edge := range a.rangeEdges {
			if frac <= edge+1e-12 {
				a.counts[ai][ri]++
				break
			}
		}
	}
}

// Breakdown returns the aggregate.
func (a *AttainmentAccumulator) Breakdown() *AttainmentBreakdown {
	counts := make([][]int, len(a.counts))
	for i, row := range a.counts {
		counts[i] = append([]int(nil), row...)
	}
	return &AttainmentBreakdown{Alphas: a.alphas, RangeEdges: a.rangeEdges, Counts: counts, Total: a.total}
}

// LocalityAccumulator builds the change-locality summary online. It
// keeps two floats per qualifying project (medians need the full
// distributions), never the histories. Shares carry their corpus
// sequence number so merged partials restore the exact sequential
// vectors (the medians themselves are order-free, but byte-identity of
// the serialized partial is not).
type LocalityAccumulator struct {
	minTables                  int
	seqs                       []int64
	topShares, unchangedShares []float64
}

// NewLocalityAccumulator prepares the summary over projects with at
// least minTables tables.
func NewLocalityAccumulator(minTables int) *LocalityAccumulator {
	return &LocalityAccumulator{minTables: minTables}
}

// Add implements Aggregator.
func (a *LocalityAccumulator) Add(p *ProjectResult) { a.addAt(int64(len(a.topShares)), p) }

// addAt folds one project keyed by its corpus sequence number.
func (a *LocalityAccumulator) addAt(seq int64, p *ProjectResult) {
	loc := p.Locality
	if loc.Tables < a.minTables || loc.TotalChanges == 0 {
		return
	}
	a.seqs = append(a.seqs, seq)
	a.topShares = append(a.topShares, loc.TopShare)
	a.unchangedShares = append(a.unchangedShares, loc.UnchangedShare)
}

// Summary returns the aggregate.
func (a *LocalityAccumulator) Summary() *LocalitySummary {
	return &LocalitySummary{
		MedianTopShare:       stats.Median(a.topShares),
		MedianUnchangedShare: stats.Median(a.unchangedShares),
		Projects:             len(a.topShares),
	}
}

// statsRow is the per-project scalar record StatsAccumulator keeps: one
// small fixed-size struct per project instead of a dozen parallel
// vectors. The test-input vectors are materialized in row order at
// Report time, so the Section 7 output is byte-identical to the old
// append-per-attribute fold — and rows keyed by corpus sequence number
// make the accumulator mergeable across shards (see partial.go).
type statsRow struct {
	seq                 int64
	taxon               taxa.Taxon
	durationMonths      int
	sync5, sync10       float64
	advTime, advSource  float64
	advanceDefined      bool
	aheadTime           bool
	aheadSource         bool
	aheadBoth           bool
	attain75            float64
	totalSchemaActivity int
	fileUpdates         int
}

// StatsAccumulator folds the per-project scalars the Section 7 tests
// need — attribute vectors, per-taxon groups, contingency counts,
// correlation pairs — without retaining the projects themselves.
type StatsAccumulator struct {
	// rows hold one scalar record per project, in corpus sequence order.
	rows []statsRow
}

// NewStatsAccumulator prepares the Section 7 state.
func NewStatsAccumulator() *StatsAccumulator {
	return &StatsAccumulator{}
}

// Add implements Aggregator.
func (a *StatsAccumulator) Add(p *ProjectResult) { a.addAt(int64(len(a.rows)), p) }

// addAt folds one project keyed by its corpus sequence number.
func (a *StatsAccumulator) addAt(seq int64, p *ProjectResult) {
	a.rows = append(a.rows, statsRow{
		seq:                 seq,
		taxon:               p.Taxon,
		durationMonths:      p.DurationMonths,
		sync5:               p.Measures.Sync5,
		sync10:              p.Measures.Sync10,
		advTime:             p.Measures.AdvanceTime,
		advSource:           p.Measures.AdvanceSource,
		advanceDefined:      p.Measures.AdvanceDefined,
		aheadTime:           p.Measures.AlwaysAheadOfTime,
		aheadSource:         p.Measures.AlwaysAheadOfSource,
		aheadBoth:           p.Measures.AlwaysAheadOfBoth,
		attain75:            p.Measures.Attain75,
		totalSchemaActivity: p.TotalSchemaActivity,
		fileUpdates:         p.FileUpdates,
	})
}

// Report runs the Section 7 tests over the folded state. seed drives the
// Monte-Carlo Fisher tests, exactly as Dataset.Statistics. The test
// inputs are materialized from the rows in row (= corpus) order, so the
// report matches the pre-refactor per-attribute fold exactly.
func (a *StatsAccumulator) Report(seed int64) (*StatsReport, error) {
	if len(a.rows) < 10 {
		return nil, fmt.Errorf("study: statistics need a populated dataset, have %d projects", len(a.rows))
	}
	n := len(a.rows)
	attrs := map[string][]float64{
		"duration_months":       make([]float64, 0, n),
		"sync_10":               make([]float64, 0, n),
		"sync_5":                make([]float64, 0, n),
		"advance_over_time":     {},
		"advance_over_source":   {},
		"attainment_75":         make([]float64, 0, n),
		"total_schema_activity": make([]float64, 0, n),
		"project_file_updates":  make([]float64, 0, n),
	}
	syncGroups := make([][]float64, taxa.Count)
	attainGroups := make([][]float64, taxa.Count)
	timeTbl := stats.NewTable(taxa.Count, 2)
	srcTbl := stats.NewTable(taxa.Count, 2)
	bothTbl := stats.NewTable(taxa.Count, 2)
	var s5, s10, advT, advS []float64
	for i := range a.rows {
		row := &a.rows[i]
		attrs["duration_months"] = append(attrs["duration_months"], float64(row.durationMonths))
		attrs["sync_10"] = append(attrs["sync_10"], row.sync10)
		attrs["sync_5"] = append(attrs["sync_5"], row.sync5)
		if row.advanceDefined {
			attrs["advance_over_time"] = append(attrs["advance_over_time"], row.advTime)
			attrs["advance_over_source"] = append(attrs["advance_over_source"], row.advSource)
		}
		attrs["attainment_75"] = append(attrs["attainment_75"], row.attain75)
		attrs["total_schema_activity"] = append(attrs["total_schema_activity"], float64(row.totalSchemaActivity))
		attrs["project_file_updates"] = append(attrs["project_file_updates"], float64(row.fileUpdates))

		ti := int(row.taxon)
		syncGroups[ti] = append(syncGroups[ti], row.sync10)
		attainGroups[ti] = append(attainGroups[ti], row.attain75)

		mark := func(t stats.Table, ahead bool) {
			col := 1
			if ahead {
				col = 0
			}
			t[ti][col]++
		}
		mark(timeTbl, row.aheadTime)
		mark(srcTbl, row.aheadSource)
		mark(bothTbl, row.aheadBoth)

		s5 = append(s5, row.sync5)
		s10 = append(s10, row.sync10)
		if row.advanceDefined {
			advT = append(advT, row.advTime)
			advS = append(advS, row.advSource)
		}
	}

	r := &StatsReport{Normality: map[string]stats.ShapiroWilkResult{}, TaxaOrder: taxa.All()}
	for name, xs := range attrs {
		res, err := stats.ShapiroWilk(xs)
		if err != nil {
			return nil, fmt.Errorf("study: shapiro(%s): %w", name, err)
		}
		r.Normality[name] = res
	}

	var err error
	if r.SyncByTaxon, err = stats.KruskalWallis(syncGroups...); err != nil {
		return nil, fmt.Errorf("study: kruskal sync: %w", err)
	}
	if r.AttainByTaxon, err = stats.KruskalWallis(attainGroups...); err != nil {
		return nil, fmt.Errorf("study: kruskal attain: %w", err)
	}

	if r.TimeLagChi2, err = stats.ChiSquareIndependence(timeTbl); err != nil {
		return nil, fmt.Errorf("study: chi2 time lag: %w", err)
	}
	if r.SourceLagChi2, err = stats.ChiSquareIndependence(srcTbl); err != nil {
		return nil, fmt.Errorf("study: chi2 source lag: %w", err)
	}
	if r.BothLagChi2, err = stats.ChiSquareIndependence(bothTbl); err != nil {
		return nil, fmt.Errorf("study: chi2 both lag: %w", err)
	}
	if r.TimeLagFisher, err = stats.FisherExactMC(timeTbl, fisherIterations, seed); err != nil {
		return nil, fmt.Errorf("study: fisher time lag: %w", err)
	}
	if r.SourceLagFisher, err = stats.FisherExactMC(srcTbl, fisherIterations, seed+1); err != nil {
		return nil, fmt.Errorf("study: fisher source lag: %w", err)
	}
	if r.BothLagFisher, err = stats.FisherExactMC(bothTbl, fisherIterations, seed+2); err != nil {
		return nil, fmt.Errorf("study: fisher both lag: %w", err)
	}

	if r.SyncThetaCorr, err = stats.KendallTau(s5, s10); err != nil {
		return nil, fmt.Errorf("study: kendall sync: %w", err)
	}
	if r.AdvanceCorr, err = stats.KendallTau(advT, advS); err != nil {
		return nil, fmt.Errorf("study: kendall advance: %w", err)
	}
	return r, nil
}

// Figures bundles every evaluation aggregate behind one Sink: the
// paper's five figures, the per-taxon views, the locality summary and
// the Section 7 statistics, all fed one streamed ProjectResult at a
// time. It is what `coevo study -stream` and the streaming benchmarks
// aggregate into.
type Figures struct {
	Sync        *SyncHistogramAccumulator      // Figure 4 (θ=0.10, 5 buckets)
	SyncByTaxon *TaxonSyncHistogramAccumulator // per-taxon Figure 4 view
	Scatter     *ScatterAccumulator            // Figure 5
	Band        *SyncBandAccumulator           // Figure 5 long-project band
	Advance     *AdvanceAccumulator            // Figure 6
	Always      *AlwaysAdvanceAccumulator      // Figure 7
	Attainment  *AttainmentAccumulator         // Figure 8
	Locality    *LocalityAccumulator           // change-locality summary
	Stats       *StatsAccumulator              // Section 7
	Health      *ParseHealthAccumulator        // parse-health report
	count       int
}

// NewFigures prepares the full evaluation with the paper's parameters
// (θ=0.10 five-bucket histograms, 60-month/[0.2,0.8] band, α ∈ {50, 75,
// 80, 100}%, locality over ≥5-table projects).
func NewFigures() *Figures {
	return &Figures{
		Sync:        NewSyncHistogramAccumulator(0.10, 5),
		SyncByTaxon: NewTaxonSyncHistogramAccumulator(0.10, 5),
		Scatter:     NewScatterAccumulator(),
		Band:        NewSyncBandAccumulator(60, 0.2, 0.8),
		Advance:     NewAdvanceAccumulator(),
		Always:      NewAlwaysAdvanceAccumulator(),
		Attainment:  NewAttainmentAccumulator([]float64{0.50, 0.75, 0.80, 1.00}, []float64{0.2, 0.5, 0.8, 1.0}),
		Locality:    NewLocalityAccumulator(5),
		Stats:       NewStatsAccumulator(),
		Health:      NewParseHealthAccumulator(),
	}
}

// Add implements Sink, folding p into every aggregate. Standalone use
// numbers projects by arrival order; a streaming study routes through
// AddAt with the true corpus index instead (see IndexedSink).
func (f *Figures) Add(p *ProjectResult) error {
	return f.AddAt(int64(f.count), p)
}

// AddAt implements IndexedSink, folding p into every aggregate keyed by
// its corpus sequence number. The order-sensitive aggregates (scatter,
// locality, statistics rows) record seq so partials built from disjoint
// shards merge back into exactly the sequential fold; the commutative
// counters ignore it.
func (f *Figures) AddAt(seq int64, p *ProjectResult) error {
	f.count++
	f.Sync.Add(p)
	f.SyncByTaxon.Add(p)
	f.Scatter.addAt(seq, p)
	f.Band.Add(p)
	f.Advance.Add(p)
	f.Always.Add(p)
	f.Attainment.Add(p)
	f.Locality.addAt(seq, p)
	f.Stats.addAt(seq, p)
	f.Health.Add(p)
	return nil
}

// Count is how many projects were folded in.
func (f *Figures) Count() int { return f.count }
