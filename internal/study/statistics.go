package study

import (
	"fmt"
	"math"

	"coevo/internal/stats"
	"coevo/internal/taxa"
)

// StatsReport reproduces the paper's Section 7: normality tests on every
// attribute, Kruskal-Wallis tests of taxon effect on synchronicity and
// attainment, contingency tests on the always-in-advance categories, and
// the two Kendall correlations the paper quotes.
type StatsReport struct {
	// Normality maps attribute name to its Shapiro-Wilk result. The paper
	// finds p < 0.007 everywhere (no attribute is normally distributed).
	Normality map[string]stats.ShapiroWilkResult

	// SyncByTaxon tests taxon over 10%-synchronicity; the paper reports
	// p ≈ 0.003 with the focused-shot taxa at the highest medians.
	SyncByTaxon stats.KruskalWallisResult
	// AttainByTaxon tests taxon over 75%-attainment; the paper reports
	// p ≈ 0.006 with frozen taxa attaining earliest.
	AttainByTaxon stats.KruskalWallisResult
	// TaxaOrder names the groups of the two Kruskal-Wallis tests.
	TaxaOrder []taxa.Taxon

	// Lag tests: taxon × always-in-advance contingency for time, source
	// and both (the paper finds time n.s. at p ≈ 0.07 and the other two
	// significant).
	TimeLagChi2, SourceLagChi2, BothLagChi2       stats.ChiSquareResult
	TimeLagFisher, SourceLagFisher, BothLagFisher stats.FisherResult

	// SyncThetaCorr is Kendall τ between 5%- and 10%-synchronicity (paper:
	// 0.67); AdvanceCorr between advance-over-time and advance-over-source
	// (paper: 0.75).
	SyncThetaCorr stats.KendallResult
	AdvanceCorr   stats.KendallResult
}

// fisherIterations is the Monte-Carlo sample count for R×C Fisher tests.
const fisherIterations = 20000

// Statistics computes the full Section 7 report. seed drives the
// Monte-Carlo Fisher tests.
func (d *Dataset) Statistics(seed int64) (*StatsReport, error) {
	if len(d.Projects) < 10 {
		return nil, fmt.Errorf("study: statistics need a populated dataset, have %d projects", len(d.Projects))
	}
	r := &StatsReport{Normality: map[string]stats.ShapiroWilkResult{}, TaxaOrder: taxa.All()}

	// Normality over the study's per-project attributes.
	attrs := map[string][]float64{
		"duration_months":       {},
		"sync_10":               {},
		"sync_5":                {},
		"advance_over_time":     {},
		"advance_over_source":   {},
		"attainment_75":         {},
		"total_schema_activity": {},
		"project_file_updates":  {},
	}
	for _, p := range d.Projects {
		attrs["duration_months"] = append(attrs["duration_months"], float64(p.DurationMonths))
		attrs["sync_10"] = append(attrs["sync_10"], p.Measures.Sync10)
		attrs["sync_5"] = append(attrs["sync_5"], p.Measures.Sync5)
		if p.Measures.AdvanceDefined {
			attrs["advance_over_time"] = append(attrs["advance_over_time"], p.Measures.AdvanceTime)
			attrs["advance_over_source"] = append(attrs["advance_over_source"], p.Measures.AdvanceSource)
		}
		attrs["attainment_75"] = append(attrs["attainment_75"], p.Measures.Attain75)
		attrs["total_schema_activity"] = append(attrs["total_schema_activity"], float64(p.TotalSchemaActivity))
		attrs["project_file_updates"] = append(attrs["project_file_updates"], float64(p.FileUpdates))
	}
	for name, xs := range attrs {
		res, err := stats.ShapiroWilk(xs)
		if err != nil {
			return nil, fmt.Errorf("study: shapiro(%s): %w", name, err)
		}
		r.Normality[name] = res
	}

	// Kruskal-Wallis: taxon over synchronicity and attainment.
	groups := d.ByTaxon()
	var syncGroups, attainGroups [][]float64
	for _, taxon := range taxa.All() {
		var sync, attain []float64
		for _, p := range groups[taxon] {
			sync = append(sync, p.Measures.Sync10)
			attain = append(attain, p.Measures.Attain75)
		}
		syncGroups = append(syncGroups, sync)
		attainGroups = append(attainGroups, attain)
	}
	var err error
	if r.SyncByTaxon, err = stats.KruskalWallis(syncGroups...); err != nil {
		return nil, fmt.Errorf("study: kruskal sync: %w", err)
	}
	if r.AttainByTaxon, err = stats.KruskalWallis(attainGroups...); err != nil {
		return nil, fmt.Errorf("study: kruskal attain: %w", err)
	}

	// Lag contingency tables: taxon × always-in-advance.
	mk := func(pick func(*ProjectResult) bool) stats.Table {
		t := stats.NewTable(taxa.Count, 2)
		for _, p := range d.Projects {
			col := 1
			if pick(p) {
				col = 0
			}
			t[int(p.Taxon)][col]++
		}
		return t
	}
	timeTbl := mk(func(p *ProjectResult) bool { return p.Measures.AlwaysAheadOfTime })
	srcTbl := mk(func(p *ProjectResult) bool { return p.Measures.AlwaysAheadOfSource })
	bothTbl := mk(func(p *ProjectResult) bool { return p.Measures.AlwaysAheadOfBoth })
	if r.TimeLagChi2, err = stats.ChiSquareIndependence(timeTbl); err != nil {
		return nil, fmt.Errorf("study: chi2 time lag: %w", err)
	}
	if r.SourceLagChi2, err = stats.ChiSquareIndependence(srcTbl); err != nil {
		return nil, fmt.Errorf("study: chi2 source lag: %w", err)
	}
	if r.BothLagChi2, err = stats.ChiSquareIndependence(bothTbl); err != nil {
		return nil, fmt.Errorf("study: chi2 both lag: %w", err)
	}
	if r.TimeLagFisher, err = stats.FisherExactMC(timeTbl, fisherIterations, seed); err != nil {
		return nil, fmt.Errorf("study: fisher time lag: %w", err)
	}
	if r.SourceLagFisher, err = stats.FisherExactMC(srcTbl, fisherIterations, seed+1); err != nil {
		return nil, fmt.Errorf("study: fisher source lag: %w", err)
	}
	if r.BothLagFisher, err = stats.FisherExactMC(bothTbl, fisherIterations, seed+2); err != nil {
		return nil, fmt.Errorf("study: fisher both lag: %w", err)
	}

	// Kendall correlations.
	var s5, s10, advT, advS []float64
	for _, p := range d.Projects {
		s5 = append(s5, p.Measures.Sync5)
		s10 = append(s10, p.Measures.Sync10)
		if p.Measures.AdvanceDefined {
			advT = append(advT, p.Measures.AdvanceTime)
			advS = append(advS, p.Measures.AdvanceSource)
		}
	}
	if r.SyncThetaCorr, err = stats.KendallTau(s5, s10); err != nil {
		return nil, fmt.Errorf("study: kendall sync: %w", err)
	}
	if r.AdvanceCorr, err = stats.KendallTau(advT, advS); err != nil {
		return nil, fmt.Errorf("study: kendall advance: %w", err)
	}
	return r, nil
}

// MaxNormalityP returns the largest Shapiro-Wilk p-value across all tested
// attributes — the paper's "all below 0.007" claim is a bound on this.
func (r *StatsReport) MaxNormalityP() float64 {
	max := math.Inf(-1)
	for _, res := range r.Normality {
		if res.P > max {
			max = res.P
		}
	}
	return max
}

// MedianSyncByTaxon returns the per-taxon medians of 10%-synchronicity in
// taxa.All() order (the paper quotes FS&F 0.68, FS&L 0.57, ACTIVE 0.55).
func (r *StatsReport) MedianSyncByTaxon() map[taxa.Taxon]float64 {
	out := make(map[taxa.Taxon]float64, len(r.TaxaOrder))
	for i, taxon := range r.TaxaOrder {
		if i < len(r.SyncByTaxon.GroupMedians) {
			out[taxon] = r.SyncByTaxon.GroupMedians[i]
		}
	}
	return out
}

// MedianAttainByTaxon returns the per-taxon medians of 75%-attainment.
func (r *StatsReport) MedianAttainByTaxon() map[taxa.Taxon]float64 {
	out := make(map[taxa.Taxon]float64, len(r.TaxaOrder))
	for i, taxon := range r.TaxaOrder {
		if i < len(r.AttainByTaxon.GroupMedians) {
			out[taxon] = r.AttainByTaxon.GroupMedians[i]
		}
	}
	return out
}
