package study

import (
	"math"

	"coevo/internal/stats"
	"coevo/internal/taxa"
)

// StatsReport reproduces the paper's Section 7: normality tests on every
// attribute, Kruskal-Wallis tests of taxon effect on synchronicity and
// attainment, contingency tests on the always-in-advance categories, and
// the two Kendall correlations the paper quotes.
type StatsReport struct {
	// Normality maps attribute name to its Shapiro-Wilk result. The paper
	// finds p < 0.007 everywhere (no attribute is normally distributed).
	Normality map[string]stats.ShapiroWilkResult

	// SyncByTaxon tests taxon over 10%-synchronicity; the paper reports
	// p ≈ 0.003 with the focused-shot taxa at the highest medians.
	SyncByTaxon stats.KruskalWallisResult
	// AttainByTaxon tests taxon over 75%-attainment; the paper reports
	// p ≈ 0.006 with frozen taxa attaining earliest.
	AttainByTaxon stats.KruskalWallisResult
	// TaxaOrder names the groups of the two Kruskal-Wallis tests.
	TaxaOrder []taxa.Taxon

	// Lag tests: taxon × always-in-advance contingency for time, source
	// and both (the paper finds time n.s. at p ≈ 0.07 and the other two
	// significant).
	TimeLagChi2, SourceLagChi2, BothLagChi2       stats.ChiSquareResult
	TimeLagFisher, SourceLagFisher, BothLagFisher stats.FisherResult

	// SyncThetaCorr is Kendall τ between 5%- and 10%-synchronicity (paper:
	// 0.67); AdvanceCorr between advance-over-time and advance-over-source
	// (paper: 0.75).
	SyncThetaCorr stats.KendallResult
	AdvanceCorr   stats.KendallResult
}

// fisherIterations is the Monte-Carlo sample count for R×C Fisher tests.
const fisherIterations = 20000

// Statistics computes the full Section 7 report. seed drives the
// Monte-Carlo Fisher tests. It is the collect-then-fold face of
// StatsAccumulator: folding the projects in dataset order reproduces the
// batch per-taxon grouping (ByTaxon preserves dataset order within each
// group), so batch and streaming reports are identical.
func (d *Dataset) Statistics(seed int64) (*StatsReport, error) {
	return fold(d, NewStatsAccumulator()).Report(seed)
}

// MaxNormalityP returns the largest Shapiro-Wilk p-value across all tested
// attributes — the paper's "all below 0.007" claim is a bound on this.
func (r *StatsReport) MaxNormalityP() float64 {
	max := math.Inf(-1)
	for _, res := range r.Normality {
		if res.P > max {
			max = res.P
		}
	}
	return max
}

// MedianSyncByTaxon returns the per-taxon medians of 10%-synchronicity in
// taxa.All() order (the paper quotes FS&F 0.68, FS&L 0.57, ACTIVE 0.55).
func (r *StatsReport) MedianSyncByTaxon() map[taxa.Taxon]float64 {
	out := make(map[taxa.Taxon]float64, len(r.TaxaOrder))
	for i, taxon := range r.TaxaOrder {
		if i < len(r.SyncByTaxon.GroupMedians) {
			out[taxon] = r.SyncByTaxon.GroupMedians[i]
		}
	}
	return out
}

// MedianAttainByTaxon returns the per-taxon medians of 75%-attainment.
func (r *StatsReport) MedianAttainByTaxon() map[taxa.Taxon]float64 {
	out := make(map[taxa.Taxon]float64, len(r.TaxaOrder))
	for i, taxon := range r.TaxaOrder {
		if i < len(r.AttainByTaxon.GroupMedians) {
			out[taxon] = r.AttainByTaxon.GroupMedians[i]
		}
	}
	return out
}
