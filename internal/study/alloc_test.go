package study

import (
	"context"
	"fmt"
	"testing"
	"time"

	"coevo/internal/history"
	"coevo/internal/race"
	"coevo/internal/vcs"
)

// allocProject builds a small but representative project: a DDL file
// evolving over several months alongside source churn, the same shape the
// corpus generator emits.
func allocProject(t testing.TB) (*vcs.Repository, string) {
	t.Helper()
	repo := vcs.NewRepository("alloc/project")
	when := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	sig := func() vcs.Signature {
		return vcs.Signature{Name: "dev", Email: "dev@example.com", When: when}
	}
	const ddlPath = "db/schema.sql"
	ddl := []string{
		"CREATE TABLE users (id INT, email VARCHAR(255));",
		"CREATE TABLE users (id INT, email VARCHAR(255), created_at TIMESTAMP);\nCREATE TABLE orders (id INT, user_id INT);",
		"CREATE TABLE users (id BIGINT, email VARCHAR(320), created_at TIMESTAMP);\nCREATE TABLE orders (id INT, user_id INT, total DECIMAL(10,2));",
	}
	for i, version := range ddl {
		repo.StageString(ddlPath, version)
		repo.StageString("src/app.go", fmt.Sprintf("package app // rev %d", i))
		if _, err := repo.Commit(fmt.Sprintf("rev %d", i), sig()); err != nil {
			t.Fatalf("commit: %v", err)
		}
		when = when.AddDate(0, 1, 3)
	}
	return repo, ddlPath
}

// measureBudget caps the average allocations of measuring one project from
// already-extracted histories: the heartbeats, the aligned joint diagram
// and the measure suite — all retained in the returned ProjectResult —
// plus nothing else; every scratch structure comes from the worker state
// or the fallback pool.
const measureBudget = 40 // measured 25: the retained result object graph

func TestMeasureProjectAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun accounting is distorted under the race detector")
	}
	repo, ddlPath := allocProject(t)
	fvs := repo.FileVersions(ddlPath)
	ph, err := history.ExtractProjectHistory(repo)
	if err != nil {
		t.Fatalf("project history: %v", err)
	}
	sh, err := history.ExtractSchemaHistoryFromVersions(ddlPath, fvs, history.DefaultOptions())
	if err != nil {
		t.Fatalf("schema history: %v", err)
	}
	opts := DefaultOptions()
	ctx := context.Background()
	avg := testing.AllocsPerRun(100, func() {
		res, err := analyze(ctx, "alloc/project", ddlPath, sh, ph, opts)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		if res.Measures == nil {
			t.Fatal("no measures")
		}
	})
	if avg > measureBudget {
		t.Errorf("measuring one project allocates %.1f/op, budget %d", avg, measureBudget)
	}
	t.Logf("measure allocs/op: %.1f", avg)
}
