package study

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"coevo/internal/corpus"
)

// sequentialFigures folds the dataset's results in corpus order with
// their global indices — the reference every partition must reproduce.
func sequentialFigures(t *testing.T, d *Dataset) *Figures {
	t.Helper()
	figs := NewFigures()
	for i, p := range d.Projects {
		if err := figs.AddAt(int64(i), p); err != nil {
			t.Fatalf("AddAt(%d): %v", i, err)
		}
	}
	return figs
}

// TestPartialFiguresMergeReproducesSequential is the merge-law property
// test: for random disjoint partitions of the corpus index space and
// random merge orders, folding each part into its own PartialFigures and
// merging the sealed partials reproduces the sequential fold exactly —
// asserted on the versioned codec bytes, the strictest equality the
// accumulators expose.
func TestPartialFiguresMergeReproducesSequential(t *testing.T) {
	d := smallDataset(t, 11, 4)
	want := sequentialFigures(t, d).EncodePartial()
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 20; trial++ {
		// Random partition: each result lands in one of n parts; with
		// n possibly exceeding the corpus some parts stay empty, which
		// exercises merging zero-value partials too.
		n := 1 + rng.Intn(6)
		parts := make([]*Figures, n)
		for i := range parts {
			parts[i] = NewFigures()
		}
		for i, p := range d.Projects {
			k := rng.Intn(n)
			if err := parts[k].AddAt(int64(i), p); err != nil {
				t.Fatalf("trial %d: AddAt: %v", trial, err)
			}
		}

		// Seal and reload every partial through the codec before merging,
		// exactly as the coordinator receives them.
		sealed := make([]*PartialFigures, n)
		for i, part := range parts {
			dec, err := DecodePartialFigures(part.EncodePartial())
			if err != nil {
				t.Fatalf("trial %d: decode partial %d: %v", trial, i, err)
			}
			sealed[i] = dec
		}

		// Random merge order.
		order := rng.Perm(n)
		merged := NewFigures()
		for _, k := range order {
			if err := merged.Merge(sealed[k]); err != nil {
				t.Fatalf("trial %d: merge: %v", trial, err)
			}
		}
		if got := merged.EncodePartial(); !bytes.Equal(got, want) {
			t.Fatalf("trial %d (n=%d, order=%v): merged encoding diverges from sequential",
				trial, n, order)
		}
	}
}

// TestPartialFiguresResidueClassPartition pins the production partition
// shape — shard k takes indices ≡ k (mod n) — and checks the merged
// report-facing outputs, not just the codec bytes.
func TestPartialFiguresResidueClassPartition(t *testing.T) {
	d := smallDataset(t, 7, 3)
	ref := sequentialFigures(t, d)

	const n = 3
	parts := make([]*Figures, n)
	for i := range parts {
		parts[i] = NewFigures()
	}
	for i, p := range d.Projects {
		if err := parts[i%n].AddAt(int64(i), p); err != nil {
			t.Fatalf("AddAt: %v", err)
		}
	}
	merged := NewFigures()
	for k := 0; k < n; k++ {
		if err := merged.Merge(parts[k]); err != nil {
			t.Fatalf("merge shard %d: %v", k, err)
		}
	}

	if merged.Count() != ref.Count() {
		t.Fatalf("count = %d, want %d", merged.Count(), ref.Count())
	}
	if got, want := merged.Sync.Histogram(), ref.Sync.Histogram(); !reflect.DeepEqual(got, want) {
		t.Errorf("sync histogram differs: %+v != %+v", got, want)
	}
	if got, want := merged.Scatter.Points(), ref.Scatter.Points(); !reflect.DeepEqual(got, want) {
		t.Errorf("scatter points differ")
	}
	if got, want := merged.Health.Summary(), ref.Health.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("parse health differs: %+v != %+v", got, want)
	}
	gotStats, gotErr := merged.Stats.Report(7)
	wantStats, wantErr := ref.Stats.Report(7)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("stats errors diverge: %v vs %v", gotErr, wantErr)
	}
	if gotErr == nil && !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("Section 7 reports differ")
	}
}

// TestPartialFiguresMergeRejectsConfigMismatch: partials folded under
// different accumulator configurations must refuse to merge rather than
// silently mix populations.
func TestPartialFiguresMergeRejectsConfigMismatch(t *testing.T) {
	a := NewFigures()
	b := NewFigures()
	b.Sync = NewSyncHistogramAccumulator(0.20, 5)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched sync thresholds should fail")
	}
	c := NewFigures()
	c.Band = NewSyncBandAccumulator(24, 0.2, 0.8)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging mismatched band configs should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil should be a no-op, got %v", err)
	}
}

// TestDecodePartialFiguresRejectsCorruption: the codec fails loudly on
// version skew and truncation instead of folding garbage.
func TestDecodePartialFiguresRejectsCorruption(t *testing.T) {
	d := smallDataset(t, 5, 2)
	enc := sequentialFigures(t, d).EncodePartial()

	if _, err := DecodePartialFigures(nil); err == nil {
		t.Error("empty payload should fail")
	}
	bad := append([]byte("xx"), enc[2:]...)
	if _, err := DecodePartialFigures(bad); err == nil {
		t.Error("corrupt magic should fail")
	}
	if _, err := DecodePartialFigures(enc[:len(enc)/2]); err == nil {
		t.Error("truncated payload should fail")
	}
	trailing := append(append([]byte{}, enc...), 0x01)
	if _, err := DecodePartialFigures(trailing); err == nil {
		t.Error("trailing bytes should fail")
	}
}

// FuzzPartialFiguresCodec hammers the decoder with arbitrary bytes: it
// must never panic, and any payload it accepts must re-encode into a
// stable canonical form (decode∘encode is idempotent).
func FuzzPartialFiguresCodec(f *testing.F) {
	seedFigs := NewFigures()
	f.Add([]byte{})
	f.Add(seedFigs.EncodePartial())
	d, err := AnalyzeCorpus(smallCorpusF(5, 2), DefaultOptions())
	if err == nil {
		figs := NewFigures()
		for i, p := range d.Projects {
			figs.AddAt(int64(i), p) //nolint:errcheck // seeding only
		}
		f.Add(figs.EncodePartial())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodePartialFigures(data)
		if err != nil {
			return
		}
		canon := dec.EncodePartial()
		again, err := DecodePartialFigures(canon)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
		if !bytes.Equal(again.EncodePartial(), canon) {
			t.Fatal("decode∘encode is not idempotent")
		}
	})
}

// smallCorpusF is smallCorpus without the testing.T, for fuzz seeding.
func smallCorpusF(seed int64, perTaxon int) []*corpus.Project {
	cfg := corpus.DefaultConfig(seed)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = perTaxon
		if profiles[i].DurationMonths[1] > 48 {
			profiles[i].DurationMonths[1] = 48
		}
	}
	cfg.Profiles = profiles
	projects, err := corpus.Generate(cfg)
	if err != nil {
		return nil
	}
	return projects
}
