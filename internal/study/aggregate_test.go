package study

import (
	"errors"
	"reflect"
	"testing"

	"coevo/internal/coevolution"
	"coevo/internal/corpus"
	"coevo/internal/taxa"
)

// brokenJointResult is a project whose joint series is degenerate: the
// default-θ measure exists (computed during analysis), but recomputing
// synchronicity at any other θ fails.
func brokenJointResult(name string, taxon taxa.Taxon) *ProjectResult {
	return &ProjectResult{
		Name:     name,
		Taxon:    taxon,
		Measures: &coevolution.Measures{Sync10: 0.5},
		Joint:    &coevolution.JointProgress{},
	}
}

// TestSyncHistogramSkipped pins the boundary the old implementation
// silently crossed: a project whose synchronicity is undefined at a
// non-default θ must be counted in Skipped, not silently dropped.
func TestSyncHistogramSkipped(t *testing.T) {
	d := smallDataset(t, 8, 3)
	n := d.Size()
	d.Projects = append(d.Projects, brokenJointResult("broken/joint", taxa.Moderate))

	// The default θ reuses the stored measure: nothing skips, the broken
	// project lands in a bucket like any other.
	h10 := d.SynchronicityHistogram(0.10, 5)
	if h10.Skipped != 0 {
		t.Errorf("θ=0.10 Skipped = %d, want 0", h10.Skipped)
	}
	if sum := bucketSum(h10); sum != n+1 {
		t.Errorf("θ=0.10 bucket total = %d, want %d", sum, n+1)
	}

	// A non-default θ recomputes from the joint series: the degenerate
	// project is skipped and accounted for.
	h5 := d.SynchronicityHistogram(0.05, 5)
	if h5.Skipped != 1 {
		t.Errorf("θ=0.05 Skipped = %d, want 1", h5.Skipped)
	}
	if sum := bucketSum(h5); sum != n {
		t.Errorf("θ=0.05 bucket total = %d, want %d (broken project excluded)", sum, n)
	}
	if sum := bucketSum(h5) + h5.Skipped; sum != d.Size() {
		t.Errorf("buckets + skipped = %d, want every project accounted (%d)", sum, d.Size())
	}

	// An out-of-range θ is undefined for every project.
	hBad := d.SynchronicityHistogram(1.5, 5)
	if hBad.Skipped != d.Size() || bucketSum(hBad) != 0 {
		t.Errorf("θ=1.5: buckets %d / skipped %d, want 0 / %d", bucketSum(hBad), hBad.Skipped, d.Size())
	}

	// The per-taxon variant accounts for the skip in the right group.
	byTaxon := d.SynchronicityHistogramByTaxon(0.05, 5)
	if got := byTaxon[taxa.Moderate].Skipped; got != 1 {
		t.Errorf("per-taxon θ=0.05 MODERATE Skipped = %d, want 1", got)
	}
	for taxon, h := range byTaxon {
		if taxon != taxa.Moderate && h.Skipped != 0 {
			t.Errorf("per-taxon θ=0.05 %s Skipped = %d, want 0", taxon, h.Skipped)
		}
	}
}

func bucketSum(h *SyncHistogram) int {
	sum := 0
	for _, c := range h.Buckets {
		sum += c
	}
	return sum
}

// TestAggregatorsMatchDatasetMethods checks the fold equivalence: feeding
// the online accumulators one project at a time reproduces every batch
// Dataset aggregation exactly.
func TestAggregatorsMatchDatasetMethods(t *testing.T) {
	d := smallDataset(t, 11, 4)
	figs := NewFigures()
	for _, p := range d.Projects {
		if err := figs.Add(p); err != nil {
			t.Fatalf("Figures.Add: %v", err)
		}
	}
	if figs.Count() != d.Size() {
		t.Fatalf("Figures.Count = %d, want %d", figs.Count(), d.Size())
	}
	if got, want := figs.Sync.Histogram(), d.SynchronicityHistogram(0.10, 5); !reflect.DeepEqual(got, want) {
		t.Errorf("Sync histogram: %+v != %+v", got, want)
	}
	if got, want := figs.SyncByTaxon.ByTaxon(), d.SynchronicityHistogramByTaxon(0.10, 5); !reflect.DeepEqual(got, want) {
		t.Errorf("per-taxon histograms differ")
	}
	if got, want := figs.Scatter.Points(), d.DurationSynchronicityScatter(); !reflect.DeepEqual(got, want) {
		t.Errorf("scatter points differ")
	}
	gotIn, gotOut := figs.Band.Band()
	wantIn, wantOut := d.LongProjectSyncBand(60, 0.2, 0.8)
	if gotIn != wantIn || gotOut != wantOut {
		t.Errorf("band = (%d, %d), want (%d, %d)", gotIn, gotOut, wantIn, wantOut)
	}
	if got, want := figs.Advance.Table(), d.AdvanceBreakdown(); !reflect.DeepEqual(got, want) {
		t.Errorf("advance table differs")
	}
	if got, want := figs.Always.Summary(), d.AlwaysAdvance(); !reflect.DeepEqual(got, want) {
		t.Errorf("always-advance summary differs")
	}
	if got, want := figs.Attainment.Breakdown(), d.Attainment(); !reflect.DeepEqual(got, want) {
		t.Errorf("attainment breakdown differs")
	}
	if got, want := figs.Locality.Summary(), d.ChangeLocality(5); !reflect.DeepEqual(got, want) {
		t.Errorf("locality summary: %+v != %+v", got, want)
	}
	gotStats, gotErr := figs.Stats.Report(11)
	wantStats, wantErr := d.Statistics(11)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("stats errors diverge: %v vs %v", gotErr, wantErr)
	}
	if gotErr == nil && !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("Section 7 reports differ:\n%+v\n%+v", gotStats, wantStats)
	}
}

// TestSinkComposition covers the sink plumbing: MultiSink fan-out, nil
// tolerance, first-error stop, and the DatasetSink collector.
func TestSinkComposition(t *testing.T) {
	d := smallDataset(t, 8, 2)
	collect := &DatasetSink{}
	var seen []string
	record := SinkFunc(func(p *ProjectResult) error {
		seen = append(seen, p.Name)
		return nil
	})
	ms := MultiSink(collect, nil, record)
	for _, p := range d.Projects {
		if err := ms.Add(p); err != nil {
			t.Fatalf("MultiSink.Add: %v", err)
		}
	}
	if got := collect.Dataset().Size(); got != d.Size() {
		t.Errorf("DatasetSink collected %d, want %d", got, d.Size())
	}
	if len(seen) != d.Size() {
		t.Errorf("SinkFunc saw %d, want %d", len(seen), d.Size())
	}
	boom := errors.New("sink full")
	var after int
	failing := MultiSink(
		SinkFunc(func(*ProjectResult) error { return boom }),
		SinkFunc(func(*ProjectResult) error { after++; return nil }),
	)
	if err := failing.Add(d.Projects[0]); !errors.Is(err, boom) {
		t.Errorf("MultiSink error = %v, want %v", err, boom)
	}
	if after != 0 {
		t.Errorf("MultiSink ran %d sinks after the failing one", after)
	}
}

// TestStreamCorpusMatchesBatch runs the fused stream over a small corpus
// and checks it delivers exactly the batch dataset, in order.
func TestStreamCorpusMatchesBatch(t *testing.T) {
	cfg := corpus.DefaultConfig(8)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 2
		if profiles[i].DurationMonths[1] > 48 {
			profiles[i].DurationMonths[1] = 48
		}
	}
	cfg.Profiles = profiles

	batch, err := AnalyzeCorpus(smallCorpus(t, 8, 2), DefaultOptions())
	if err != nil {
		t.Fatalf("AnalyzeCorpus: %v", err)
	}
	sink := &DatasetSink{}
	sum, err := StreamCorpus(t.Context(), corpus.NewSource(cfg), sink, DefaultOptions())
	if err != nil {
		t.Fatalf("StreamCorpus: %v", err)
	}
	streamed := sink.Dataset()
	if sum.Projects != batch.Size() || streamed.Size() != batch.Size() {
		t.Fatalf("streamed %d projects (summary %d), want %d", streamed.Size(), sum.Projects, batch.Size())
	}
	for i := range batch.Projects {
		if !reflect.DeepEqual(batch.Projects[i], streamed.Projects[i]) {
			t.Errorf("project %d differs between batch and stream", i)
		}
	}
}
