// Measure-bundle caching: the third memoized stage of the pipeline. One
// project's entire analysis result (heartbeats, joint progress, measure
// suite, taxon, locality) is addressed by the content of its two input
// histories — every DDL version's bytes and commit time, every project
// commit's time and churn — plus the analysis configuration. A warm run
// therefore skips parsing, diffing and measuring entirely; the layered
// parse and diff caches below it still serve partially-invalidated
// histories (the append-mostly case: one new version re-parses one file
// and re-diffs one pair, everything else hits).
package study

import (
	"bytes"
	"encoding/gob"

	"coevo/internal/cache"
	"coevo/internal/history"
	"coevo/internal/vcs"
)

// MeasureStage is the measure-bundle stage's cache version. Bump whenever
// analyze()'s observable output changes (new measures, changed
// classification, changed locality rules).
const MeasureStage = "study/measure/v1"

// effectiveCache resolves the cache the pipeline should use: the study
// option, falling back to the history option so callers configuring only
// extraction caching still get it.
func (o Options) effectiveCache() *cache.Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return o.History.Cache
}

// measureConfig folds the configuration that analyze() observes into the
// key: the birth-counting convention and every taxon threshold.
func measureConfig(h *cache.Hasher, opts Options) {
	h.Bool(opts.History.CountBirth)
	h.Float(opts.Taxa.AlmostFrozenMax)
	h.Float(opts.Taxa.ActiveMin)
	h.Float(opts.Taxa.SpikeMin)
	h.Float(opts.Taxa.SingleSpikeShare)
	h.Float(opts.Taxa.DoubleSpikeShare)
}

// measureProjectHistory folds the project history into the key.
func measureProjectHistory(h *cache.Hasher, ph *history.ProjectHistory) {
	h.Int(int64(len(ph.Commits)))
	for _, c := range ph.Commits {
		h.Time(c.When)
		h.Int(int64(c.Files))
		h.Int(int64(c.Lines))
	}
}

// measureKeyFromVersions addresses the bundle by raw file versions — the
// pre-extraction form, so a hit skips parsing and diffing altogether.
func measureKeyFromVersions(fvs []vcs.FileVersion, ph *history.ProjectHistory, opts Options) cache.Key {
	h := cache.NewHasher(MeasureStage)
	measureConfig(h, opts)
	h.Int(int64(len(fvs)))
	for _, fv := range fvs {
		h.Time(fv.Commit.When())
		h.Bool(fv.Deleted)
		h.Bytes(fv.Content)
	}
	measureProjectHistory(h, ph)
	return h.Sum()
}

// measureKeyFromHistory addresses the bundle by an already-extracted
// schema history. The fingerprint is field-for-field the one
// measureKeyFromVersions computes (commit time, deleted flag, raw bytes),
// so the two entry points share cache entries.
func measureKeyFromHistory(sh *history.SchemaHistory, ph *history.ProjectHistory, opts Options) cache.Key {
	h := cache.NewHasher(MeasureStage)
	measureConfig(h, opts)
	h.Int(int64(len(sh.Versions)))
	for _, v := range sh.Versions {
		h.Time(v.When())
		h.Bool(v.Deleted)
		h.Bytes(v.Raw)
	}
	measureProjectHistory(h, ph)
	return h.Sum()
}

// storeBundle persists one analysis result. Identity fields (Name,
// DDLPath, IntendedTaxon) are overwritten on load, so identical-content
// projects share one entry.
func storeBundle(c *cache.Cache, key cache.Key, res *ProjectResult) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return // unencodable results are simply not cached
	}
	c.Put(key, buf.Bytes())
}

// loadBundle retrieves one analysis result; a decode failure (stale or
// foreign value) degrades to a miss.
func loadBundle(c *cache.Cache, key cache.Key) (*ProjectResult, bool) {
	v, ok := c.Get(key)
	if !ok {
		return nil, false
	}
	res := &ProjectResult{}
	if err := gob.NewDecoder(bytes.NewReader(v)).Decode(res); err != nil {
		return nil, false
	}
	res.Name, res.DDLPath, res.IntendedTaxon = "", "", nil
	return res, true
}
