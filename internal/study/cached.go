// Measure-bundle caching: the third memoized stage of the pipeline. One
// project's entire analysis result (heartbeats, joint progress, measure
// suite, taxon, locality) is addressed by the content of its two input
// histories — every DDL version's bytes and commit time, every project
// commit's time and churn — plus the analysis configuration. A warm run
// therefore skips parsing, diffing and measuring entirely; the layered
// parse and diff caches below it still serve partially-invalidated
// histories (the append-mostly case: one new version re-parses one file
// and re-diffs one pair, everything else hits).
package study

import (
	"coevo/internal/cache"
	"coevo/internal/coevolution"
	"coevo/internal/heartbeat"
	"coevo/internal/history"
	"coevo/internal/taxa"
	"coevo/internal/vcs"
)

// MeasureStage is the measure-bundle stage's cache version. Bump whenever
// analyze()'s observable output changes (new measures, changed
// classification, changed locality rules) or the bundle codec changes.
// v2: reflection-free cache.Enc codec replaced encoding/gob.
// v3: the bundle carries the project's parse health and the key folds the
// configured parse dialect.
const MeasureStage = "study/measure/v3"

// effectiveCache resolves the cache the pipeline should use: the study
// option, falling back to the history option so callers configuring only
// extraction caching still get it.
func (o Options) effectiveCache() *cache.Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return o.History.Cache
}

// measureConfig folds the configuration that analyze() observes into the
// key: the birth-counting convention and every taxon threshold.
func measureConfig(h *cache.Hasher, opts Options) {
	h.Bool(opts.History.CountBirth)
	h.Int(int64(opts.History.Dialect))
	h.Float(opts.Taxa.AlmostFrozenMax)
	h.Float(opts.Taxa.ActiveMin)
	h.Float(opts.Taxa.SpikeMin)
	h.Float(opts.Taxa.SingleSpikeShare)
	h.Float(opts.Taxa.DoubleSpikeShare)
}

// measureProjectHistory folds the project history into the key.
func measureProjectHistory(h *cache.Hasher, ph *history.ProjectHistory) {
	h.Int(int64(len(ph.Commits)))
	for _, c := range ph.Commits {
		h.Time(c.When)
		h.Int(int64(c.Files))
		h.Int(int64(c.Lines))
	}
}

// measureKeyFromVersions addresses the bundle by raw file versions — the
// pre-extraction form, so a hit skips parsing and diffing altogether.
func measureKeyFromVersions(fvs []vcs.FileVersion, ph *history.ProjectHistory, opts Options) cache.Key {
	h := cache.NewHasher(MeasureStage)
	measureConfig(h, opts)
	h.Int(int64(len(fvs)))
	for _, fv := range fvs {
		h.Time(fv.Commit.When())
		h.Bool(fv.Deleted)
		h.Bytes(fv.Content)
	}
	measureProjectHistory(h, ph)
	return h.Sum()
}

// measureKeyFromHistory addresses the bundle by an already-extracted
// schema history. The fingerprint is field-for-field the one
// measureKeyFromVersions computes (commit time, deleted flag, raw bytes),
// so the two entry points share cache entries.
func measureKeyFromHistory(sh *history.SchemaHistory, ph *history.ProjectHistory, opts Options) cache.Key {
	h := cache.NewHasher(MeasureStage)
	measureConfig(h, opts)
	h.Int(int64(len(sh.Versions)))
	for _, v := range sh.Versions {
		h.Time(v.When())
		h.Bool(v.Deleted)
		h.Bytes(v.Raw)
	}
	measureProjectHistory(h, ph)
	return h.Sum()
}

// storeBundle persists one analysis result with the explicit cache.Enc
// codec (no reflection, pooled scratch). Identity fields (Name, DDLPath,
// IntendedTaxon) are overwritten on load, so identical-content projects
// share one entry.
func storeBundle(c *cache.Cache, key cache.Key, res *ProjectResult) {
	e := cache.GetEnc()
	defer cache.PutEnc(e)
	e.Uvarint(uint64(res.Taxon))
	e.Int(int64(res.DurationMonths))
	e.Int(int64(res.SchemaCommits))
	e.Int(int64(res.ActiveSchemaCommits))
	e.Int(int64(res.ProjectCommits))
	e.Int(int64(res.FileUpdates))
	e.Int(int64(res.TotalSchemaActivity))

	e.Bool(res.Joint != nil)
	if j := res.Joint; j != nil {
		e.Int(int64(j.Start))
		encodeFloats(e, j.Project)
		encodeFloats(e, j.Schema)
		encodeFloats(e, j.Time)
	}

	e.Bool(res.Measures != nil)
	if m := res.Measures; m != nil {
		e.Int(int64(m.DurationMonths))
		e.Float(m.Sync5)
		e.Float(m.Sync10)
		e.Float(m.AdvanceTime)
		e.Float(m.AdvanceSource)
		e.Bool(m.AdvanceDefined)
		e.Bool(m.AlwaysAheadOfTime)
		e.Bool(m.AlwaysAheadOfSource)
		e.Bool(m.AlwaysAheadOfBoth)
		e.Float(m.Attain50)
		e.Float(m.Attain75)
		e.Float(m.Attain80)
		e.Float(m.Attain100)
	}

	e.Int(int64(res.Locality.Tables))
	e.Int(int64(res.Locality.ChangedTables))
	e.Float(res.Locality.TopShare)
	e.Float(res.Locality.UnchangedShare)
	e.Int(int64(res.Locality.TotalChanges))

	hp := res.ParseHealth
	e.String(hp.Dialect)
	e.Int(int64(hp.Versions))
	e.Int(int64(hp.CleanVersions))
	e.Int(int64(hp.Stats.Attempted))
	e.Int(int64(hp.Stats.Parsed))
	e.Int(int64(hp.Stats.Recovered))
	e.Int(int64(hp.Stats.Dropped))
	e.Int(int64(hp.Lex))
	e.Int(int64(hp.Syntax))
	e.Int(int64(hp.Semantic))
	e.Int(int64(hp.Uncategorized))
	e.Int(int64(hp.MergesSkipped))
	e.Int(int64(hp.NoOpCommits))

	c.Put(key, e.Copy())
}

// loadBundle retrieves one analysis result; a decode failure (stale or
// foreign value) degrades to a miss.
func loadBundle(c *cache.Cache, key cache.Key) (*ProjectResult, bool) {
	v, ok := c.Get(key)
	if !ok {
		return nil, false
	}
	d := cache.NewDec(v)
	res := &ProjectResult{
		Taxon:               taxa.Taxon(d.Uvarint()),
		DurationMonths:      int(d.Int()),
		SchemaCommits:       int(d.Int()),
		ActiveSchemaCommits: int(d.Int()),
		ProjectCommits:      int(d.Int()),
		FileUpdates:         int(d.Int()),
		TotalSchemaActivity: int(d.Int()),
	}
	if d.Bool() {
		res.Joint = &coevolution.JointProgress{
			Start:   heartbeat.Month(d.Int()),
			Project: decodeFloats(d),
			Schema:  decodeFloats(d),
			Time:    decodeFloats(d),
		}
	}
	if d.Bool() {
		res.Measures = &coevolution.Measures{
			DurationMonths:      int(d.Int()),
			Sync5:               d.Float(),
			Sync10:              d.Float(),
			AdvanceTime:         d.Float(),
			AdvanceSource:       d.Float(),
			AdvanceDefined:      d.Bool(),
			AlwaysAheadOfTime:   d.Bool(),
			AlwaysAheadOfSource: d.Bool(),
			AlwaysAheadOfBoth:   d.Bool(),
			Attain50:            d.Float(),
			Attain75:            d.Float(),
			Attain80:            d.Float(),
			Attain100:           d.Float(),
		}
	}
	res.Locality.Tables = int(d.Int())
	res.Locality.ChangedTables = int(d.Int())
	res.Locality.TopShare = d.Float()
	res.Locality.UnchangedShare = d.Float()
	res.Locality.TotalChanges = int(d.Int())
	res.ParseHealth = history.ParseHealth{
		Dialect:       d.String(),
		Versions:      int(d.Int()),
		CleanVersions: int(d.Int()),
	}
	res.ParseHealth.Stats.Attempted = int(d.Int())
	res.ParseHealth.Stats.Parsed = int(d.Int())
	res.ParseHealth.Stats.Recovered = int(d.Int())
	res.ParseHealth.Stats.Dropped = int(d.Int())
	res.ParseHealth.Lex = int(d.Int())
	res.ParseHealth.Syntax = int(d.Int())
	res.ParseHealth.Semantic = int(d.Int())
	res.ParseHealth.Uncategorized = int(d.Int())
	res.ParseHealth.MergesSkipped = int(d.Int())
	res.ParseHealth.NoOpCommits = int(d.Int())
	if d.Err() != nil {
		return nil, false
	}
	return res, true
}

func encodeFloats(e *cache.Enc, v []float64) {
	e.Uvarint(uint64(len(v)))
	for _, f := range v {
		e.Float(f)
	}
}

func decodeFloats(d *cache.Dec) []float64 {
	n := d.Uvarint()
	if d.Failed() || n == 0 {
		return nil
	}
	capHint := n
	if capHint > 4096 { // don't trust a corrupt length for preallocation
		capHint = 4096
	}
	v := make([]float64, 0, capHint)
	for i := uint64(0); i < n && !d.Failed(); i++ {
		v = append(v, d.Float())
	}
	return v
}
