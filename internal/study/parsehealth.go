package study

import (
	"coevo/internal/history"
)

// ParseHealthSummary is the corpus-wide parse-health aggregate: every
// project's per-version statement accounting and diagnostic counts folded
// together, plus project-level cleanliness.
type ParseHealthSummary struct {
	// Total is the element-wise sum of every project's parse health.
	Total history.ParseHealth
	// Projects counts the projects folded in; CleanProjects those whose
	// every version parsed and applied without a diagnostic.
	Projects      int
	CleanProjects int
}

// ParseHealthAccumulator folds per-project parse health online, the same
// one-result-at-a-time shape as the figure accumulators, so a streaming
// study aggregates parse health without holding the corpus.
type ParseHealthAccumulator struct {
	summary ParseHealthSummary
}

// NewParseHealthAccumulator returns an empty accumulator.
func NewParseHealthAccumulator() *ParseHealthAccumulator {
	return &ParseHealthAccumulator{}
}

// Add implements Aggregator.
func (a *ParseHealthAccumulator) Add(p *ProjectResult) {
	a.summary.Total.Add(p.ParseHealth)
	a.summary.Projects++
	if p.ParseHealth.Clean() {
		a.summary.CleanProjects++
	}
}

// Summary returns the aggregate built so far.
func (a *ParseHealthAccumulator) Summary() *ParseHealthSummary {
	s := a.summary
	return &s
}

// ParseHealth aggregates parse health over the whole dataset.
func (d *Dataset) ParseHealth() *ParseHealthSummary {
	return fold(d, NewParseHealthAccumulator()).Summary()
}
