package study

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"coevo/internal/corpus"
	"coevo/internal/engine"
	"coevo/internal/gitlog"
	"coevo/internal/history"
	"coevo/internal/taxa"
	"coevo/internal/vcs"
)

// smallCorpus generates a reduced corpus quickly.
func smallCorpus(t *testing.T, seed int64, perTaxon int) []*corpus.Project {
	t.Helper()
	cfg := corpus.DefaultConfig(seed)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = perTaxon
		if profiles[i].DurationMonths[1] > 48 {
			profiles[i].DurationMonths[1] = 48
		}
	}
	cfg.Profiles = profiles
	projects, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return projects
}

func smallDataset(t *testing.T, seed int64, perTaxon int) *Dataset {
	t.Helper()
	d, err := AnalyzeCorpus(smallCorpus(t, seed, perTaxon), DefaultOptions())
	if err != nil {
		t.Fatalf("AnalyzeCorpus: %v", err)
	}
	return d
}

func TestAnalyzeRepository(t *testing.T) {
	repo := vcs.NewRepository("acme/app")
	when := func(m, d int) vcs.Signature {
		return vcs.Signature{Name: "dev", Email: "d@e.f",
			When: time.Date(2015, 1, 1, 9, 0, 0, 0, time.UTC).AddDate(0, m, d)}
	}
	repo.StageString("schema.sql", "CREATE TABLE t (a INT, b INT);")
	repo.StageString("app.js", "v1")
	if _, err := repo.Commit("init", when(0, 0)); err != nil {
		t.Fatal(err)
	}
	repo.StageString("app.js", "v2")
	if _, err := repo.Commit("work", when(3, 0)); err != nil {
		t.Fatal(err)
	}
	repo.StageString("schema.sql", "CREATE TABLE t (a INT, b INT, c INT);")
	if _, err := repo.Commit("add c", when(6, 0)); err != nil {
		t.Fatal(err)
	}

	res, err := AnalyzeRepository(repo, "", DefaultOptions()) // auto-locate DDL
	if err != nil {
		t.Fatalf("AnalyzeRepository: %v", err)
	}
	if res.DDLPath != "schema.sql" {
		t.Errorf("DDLPath = %q", res.DDLPath)
	}
	if res.DurationMonths != 6 {
		t.Errorf("DurationMonths = %d, want 6", res.DurationMonths)
	}
	if res.SchemaCommits != 2 || res.ProjectCommits != 3 {
		t.Errorf("commits = %d/%d, want 2/3", res.SchemaCommits, res.ProjectCommits)
	}
	if res.TotalSchemaActivity != 3 { // 2 born + 1 injected
		t.Errorf("TotalSchemaActivity = %d, want 3", res.TotalSchemaActivity)
	}
	if res.Joint.Len() != 7 {
		t.Errorf("joint length = %d, want 7", res.Joint.Len())
	}
	if res.Measures == nil || res.Measures.Sync10 < 0 || res.Measures.Sync10 > 1 {
		t.Errorf("measures = %+v", res.Measures)
	}
}

func TestAnalyzeRepositoryErrors(t *testing.T) {
	empty := vcs.NewRepository("acme/empty")
	if _, err := AnalyzeRepository(empty, "", DefaultOptions()); err == nil {
		t.Error("empty repo should fail")
	}
	if _, err := AnalyzeRepository(empty, "schema.sql", DefaultOptions()); err == nil {
		t.Error("missing DDL should fail")
	}
}

func TestAnalyzeHistoriesFromGitLog(t *testing.T) {
	// Real-ingestion path: project history from a textual git log, schema
	// history from a repository.
	repo := vcs.NewRepository("acme/app")
	when := vcs.Signature{Name: "dev", Email: "d@e.f", When: time.Date(2016, 1, 10, 0, 0, 0, 0, time.UTC)}
	repo.StageString("schema.sql", "CREATE TABLE t (a INT);")
	if _, err := repo.Commit("init", when); err != nil {
		t.Fatal(err)
	}
	sh, err := history.ExtractSchemaHistory(repo, "schema.sql", history.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	logText := "commit abc\nAuthor: Dev <d@e.f>\nDate:   2016-01-10 00:00:00 +0000\n\n    init\n\nA\tschema.sql\nA\tmain.go\n"
	entries, err := gitlog.Parse(strings.NewReader(logText))
	if err != nil {
		t.Fatal(err)
	}
	ph, err := history.ProjectHistoryFromLog(entries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeHistories("acme/app", "schema.sql", sh, ph, DefaultOptions())
	if err != nil {
		t.Fatalf("AnalyzeHistories: %v", err)
	}
	if res.FileUpdates != 2 {
		t.Errorf("FileUpdates = %d, want 2", res.FileUpdates)
	}
}

func TestAnalyzeCorpusKeepsIntent(t *testing.T) {
	d := smallDataset(t, 5, 3)
	if d.Size() != 18 {
		t.Fatalf("Size = %d, want 18", d.Size())
	}
	for _, p := range d.Projects {
		if p.IntendedTaxon == nil {
			t.Fatalf("%s: intended taxon not recorded", p.Name)
		}
	}
	groups := d.ByTaxon()
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != d.Size() {
		t.Errorf("ByTaxon loses projects: %d != %d", total, d.Size())
	}
}

// TestAnalyzeCorpusFaultIsolation injects an unanalyzable project (no
// commits) and a poisoned one (nil repository, which panics inside the
// task) into an otherwise healthy corpus: both must surface as recorded
// failures while every healthy project is still measured, in corpus
// order.
func TestAnalyzeCorpusFaultIsolation(t *testing.T) {
	good := smallCorpus(t, 21, 2)
	mixed := append([]*corpus.Project{}, good[:3]...)
	mixed = append(mixed,
		&corpus.Project{Name: "acme/empty", Taxon: taxa.Frozen,
			Repo: vcs.NewRepository("acme/empty"), DDLPath: "schema.sql"},
		&corpus.Project{Name: "acme/poisoned", Taxon: taxa.Frozen, Repo: nil, DDLPath: "schema.sql"},
	)
	mixed = append(mixed, good[3:]...)

	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Exec.Workers = workers
		opts.Exec.Name = func(i int) string { return mixed[i].Name }
		d, err := AnalyzeCorpusContext(context.Background(), mixed, opts)
		if err != nil {
			t.Fatalf("workers=%d: fault must not abort the study: %v", workers, err)
		}
		if d.Size() != len(good) {
			t.Fatalf("workers=%d: analyzed %d, want %d", workers, d.Size(), len(good))
		}
		if len(d.Failures) != 2 {
			t.Fatalf("workers=%d: failures = %+v", workers, d.Failures)
		}
		if d.Failures[0].Name != "acme/empty" || d.Failures[1].Name != "acme/poisoned" {
			t.Errorf("workers=%d: failure order/names wrong: %+v", workers, d.Failures)
		}
		var pe *engine.PanicError
		if !errors.As(d.Failures[1].Err, &pe) {
			t.Errorf("workers=%d: poisoned project should fail with PanicError, got %v",
				workers, d.Failures[1].Err)
		}
		// Healthy results keep corpus order despite the interleaved faults.
		wantIdx := 0
		for _, p := range mixed {
			if p.Name == "acme/empty" || p.Name == "acme/poisoned" {
				continue
			}
			if d.Projects[wantIdx].Name != p.Name {
				t.Fatalf("workers=%d: result %d is %s, want %s",
					workers, wantIdx, d.Projects[wantIdx].Name, p.Name)
			}
			wantIdx++
		}
	}
}

// TestAnalyzeCorpusFailFast opts into the abort-on-first-error policy.
func TestAnalyzeCorpusFailFast(t *testing.T) {
	projects := []*corpus.Project{
		{Name: "acme/empty", Taxon: taxa.Frozen,
			Repo: vcs.NewRepository("acme/empty"), DDLPath: "schema.sql"},
	}
	opts := DefaultOptions()
	opts.Exec.Policy = engine.FailFast
	if _, err := AnalyzeCorpusContext(context.Background(), projects, opts); err == nil {
		t.Fatal("FailFast study with a failing project must return an error")
	}
}

// TestAnalyzeCorpusCancellation stops a study mid-run via its context.
func TestAnalyzeCorpusCancellation(t *testing.T) {
	projects := smallCorpus(t, 22, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeCorpusContext(ctx, projects, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSynchronicityHistogram(t *testing.T) {
	d := smallDataset(t, 8, 3)
	h := d.SynchronicityHistogram(0.10, 5)
	sum := 0
	for _, c := range h.Buckets {
		sum += c
	}
	if sum != d.Size() {
		t.Errorf("histogram total = %d, want %d", sum, d.Size())
	}
	if len(h.Labels) != 5 || h.Labels[0] != "[0%-20%)" || h.Labels[4] != "[80%-100%]" {
		t.Errorf("labels = %v", h.Labels)
	}
	// A different theta changes the histogram via recomputation.
	h5 := d.SynchronicityHistogram(0.05, 5)
	sum5 := 0
	for _, c := range h5.Buckets {
		sum5 += c
	}
	if sum5 != d.Size() {
		t.Errorf("theta=5%% histogram total = %d", sum5)
	}
}

func TestScatterAndLongBand(t *testing.T) {
	d := smallDataset(t, 9, 3)
	points := d.DurationSynchronicityScatter()
	if len(points) != d.Size() {
		t.Fatalf("scatter size = %d", len(points))
	}
	for _, pt := range points {
		if pt.Sync < 0 || pt.Sync > 1 || pt.Duration < 0 {
			t.Errorf("bad point %+v", pt)
		}
	}
	in, out := d.LongProjectSyncBand(0, 0, 1)
	if in != d.Size() || out != 0 {
		t.Errorf("full band should contain everything: %d/%d", in, out)
	}
}

func TestAdvanceBreakdown(t *testing.T) {
	d := smallDataset(t, 10, 3)
	table := d.AdvanceBreakdown()
	if len(table.Rows) != 10 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if table.Rows[0].Label != "0.9-1.0" || table.Rows[9].Label != "0.0-0.1" {
		t.Errorf("row order wrong: %q .. %q", table.Rows[0].Label, table.Rows[9].Label)
	}
	srcSum, timeSum := table.BlankSource, table.BlankTime
	for _, r := range table.Rows {
		srcSum += r.SourceCount
		timeSum += r.TimeCount
	}
	if srcSum != table.Total || timeSum != table.Total {
		t.Errorf("column sums %d/%d != total %d", srcSum, timeSum, table.Total)
	}
	last := table.Rows[len(table.Rows)-1]
	wantCum := 1 - float64(table.BlankSource)/float64(table.Total)
	if diff := last.SourceCum - wantCum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cumulative source share ends at %v, want %v", last.SourceCum, wantCum)
	}
}

func TestAlwaysAdvance(t *testing.T) {
	d := smallDataset(t, 11, 3)
	s := d.AlwaysAdvance()
	if s.Total != d.Size() {
		t.Errorf("total = %d", s.Total)
	}
	if s.Both > s.Time || s.Both > s.Source {
		t.Errorf("both (%d) cannot exceed time (%d) or source (%d)", s.Both, s.Time, s.Source)
	}
	perTaxonTime := 0
	for _, cell := range s.PerTaxon {
		perTaxonTime += cell.Time
		if cell.Both > cell.Time || cell.Both > cell.Source {
			t.Errorf("taxon %v: inconsistent cell %+v", cell.Taxon, cell)
		}
	}
	if perTaxonTime != s.Time {
		t.Errorf("per-taxon time sums to %d, total says %d", perTaxonTime, s.Time)
	}
}

func TestAttainment(t *testing.T) {
	d := smallDataset(t, 12, 3)
	b := d.Attainment()
	if len(b.Alphas) != 4 || len(b.RangeEdges) != 4 {
		t.Fatalf("breakdown dims = %d/%d", len(b.Alphas), len(b.RangeEdges))
	}
	for ai := range b.Alphas {
		sum := 0
		for _, c := range b.Counts[ai] {
			sum += c
		}
		if sum != b.Total {
			t.Errorf("alpha %v: counts sum to %d, want %d", b.Alphas[ai], sum, b.Total)
		}
	}
	// Attainment of a lower alpha can never happen later: the count of
	// projects attaining within the first range must be non-increasing in
	// alpha.
	for ai := 1; ai < len(b.Alphas); ai++ {
		if b.Counts[ai][0] > b.Counts[ai-1][0] {
			t.Errorf("first-range counts increase with alpha: %v", b.Counts)
		}
	}
}

func TestStatisticsSmall(t *testing.T) {
	d := smallDataset(t, 13, 4)
	r, err := d.Statistics(77)
	if err != nil {
		t.Fatalf("Statistics: %v", err)
	}
	if len(r.Normality) == 0 {
		t.Error("no normality results")
	}
	for name, res := range r.Normality {
		if res.P < 0 || res.P > 1 {
			t.Errorf("normality %s p = %v", name, res.P)
		}
	}
	if r.SyncByTaxon.DF < 1 || r.AttainByTaxon.DF < 1 {
		t.Errorf("df = %d/%d", r.SyncByTaxon.DF, r.AttainByTaxon.DF)
	}
	if len(r.MedianSyncByTaxon()) != taxa.Count || len(r.MedianAttainByTaxon()) != taxa.Count {
		t.Error("median maps incomplete")
	}
	if !r.TimeLagFisher.Simulated {
		t.Error("R×C Fisher should be simulated")
	}
	if r.MaxNormalityP() < 0 || r.MaxNormalityP() > 1 {
		t.Errorf("MaxNormalityP = %v", r.MaxNormalityP())
	}
}

func TestStatisticsRequiresData(t *testing.T) {
	d := &Dataset{}
	if _, err := d.Statistics(1); err == nil {
		t.Error("empty dataset should fail")
	}
}

// TestFullStudyShape runs the complete 195-project study and asserts the
// paper's headline findings at the shape level. This is the reproduction's
// core acceptance test.
func TestFullStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus study in -short mode")
	}
	d, err := RunDefault(2023)
	if err != nil {
		t.Fatalf("RunDefault: %v", err)
	}
	if d.Size() != 195 {
		t.Fatalf("Size = %d, want 195", d.Size())
	}

	// RQ1 (Fig. 4): all kinds of behaviours — every synchronicity bucket
	// is populated, and no single bucket dominates with > 60%.
	h := d.SynchronicityHistogram(0.10, 5)
	for i, c := range h.Buckets {
		if c == 0 {
			t.Errorf("Fig4: bucket %s empty", h.Labels[i])
		}
		if c*100 > 60*d.Size() {
			t.Errorf("Fig4: bucket %s dominates with %d", h.Labels[i], c)
		}
	}

	// RQ2 (Fig. 6): the [0.9-1.0] range is the single largest for both
	// source and time; time-advance exceeds source-advance; a majority of
	// projects is ahead for at least half their life.
	adv := d.AdvanceBreakdown()
	top := adv.Rows[0]
	for _, r := range adv.Rows[1:] {
		if r.SourceCount > top.SourceCount || r.TimeCount > top.TimeCount {
			t.Errorf("Fig6: top range not dominant: %+v vs %+v", top, r)
		}
	}
	if top.TimeCount <= top.SourceCount {
		t.Errorf("Fig6: time advance (%d) should exceed source advance (%d)", top.TimeCount, top.SourceCount)
	}
	if adv.Rows[4].SourceCum < 0.60 || adv.Rows[4].TimeCum < 0.65 {
		t.Errorf("Fig6: cumulative advance at 0.5 too low: src %.2f time %.2f", adv.Rows[4].SourceCum, adv.Rows[4].TimeCum)
	}

	// Fig. 7: both ≈ source < time, and the frozen family is more likely
	// to be always ahead than the active family.
	aa := d.AlwaysAdvance()
	if !(aa.Both <= aa.Source && aa.Source < aa.Time) {
		t.Errorf("Fig7: ordering violated: time %d source %d both %d", aa.Time, aa.Source, aa.Both)
	}
	frozenRate, activeRate := alwaysRate(aa, true), alwaysRate(aa, false)
	if frozenRate <= activeRate {
		t.Errorf("Fig7: frozen family rate %.2f should exceed active family rate %.2f", frozenRate, activeRate)
	}

	// RQ3 (Fig. 8): roughly half the projects attain 75% of evolution in
	// the first 20% of life; the first range is the largest.
	att := d.Attainment()
	b75 := att.Counts[1]
	if b75[0]*100 < 40*att.Total || b75[0]*100 > 65*att.Total {
		t.Errorf("Fig8: 75%%@20%% = %d of %d, want roughly half", b75[0], att.Total)
	}
	for _, c := range b75[1:] {
		if c > b75[0] {
			t.Errorf("Fig8: first range must dominate 75%% attainment: %v", b75)
		}
	}
	// Resistance to rigidity exists: some projects attain 100% only after
	// 80% of their life.
	b100 := att.Counts[3]
	if b100[3] == 0 {
		t.Error("Fig8: no late completers at alpha=100%")
	}

	// Section 7: nothing is normal; taxon affects synchronicity and
	// attainment; time lag n.s. but source and both significant; the two
	// Kendall correlations are strong and positive.
	st, err := d.Statistics(99)
	if err != nil {
		t.Fatalf("Statistics: %v", err)
	}
	if st.MaxNormalityP() > 0.007 {
		t.Errorf("Sec7: max normality p = %v, paper bound 0.007", st.MaxNormalityP())
	}
	if st.SyncByTaxon.P > 0.05 {
		t.Errorf("Sec7: taxon×sync p = %v, want significant", st.SyncByTaxon.P)
	}
	if st.AttainByTaxon.P > 0.05 {
		t.Errorf("Sec7: taxon×attain p = %v, want significant", st.AttainByTaxon.P)
	}
	if st.TimeLagFisher.P < 0.05 {
		t.Errorf("Sec7: time lag should be n.s. (paper 0.07), got %v", st.TimeLagFisher.P)
	}
	if st.SourceLagFisher.P > 0.05 || st.BothLagFisher.P > 0.05 {
		t.Errorf("Sec7: source/both lag should be significant: %v / %v",
			st.SourceLagFisher.P, st.BothLagFisher.P)
	}
	if st.SyncThetaCorr.Tau < 0.5 || st.AdvanceCorr.Tau < 0.5 {
		t.Errorf("Sec7: Kendall correlations too weak: %v / %v (paper 0.67 / 0.75)",
			st.SyncThetaCorr.Tau, st.AdvanceCorr.Tau)
	}

	// Taxon medians: focused-shot taxa lead synchronicity; frozen family
	// attains earliest.
	syncMed := st.MedianSyncByTaxon()
	if syncMed[taxa.FocusedShotFrozen] <= syncMed[taxa.Frozen] {
		t.Errorf("Sec7: FS&F median sync %.2f should exceed FROZEN %.2f",
			syncMed[taxa.FocusedShotFrozen], syncMed[taxa.Frozen])
	}
	attMed := st.MedianAttainByTaxon()
	if attMed[taxa.Frozen] >= attMed[taxa.Active] {
		t.Errorf("Sec7: FROZEN should attain earlier than ACTIVE: %.2f vs %.2f",
			attMed[taxa.Frozen], attMed[taxa.Active])
	}
}

// alwaysRate returns the always-ahead-of-time rate of the frozen or active
// taxon family.
func alwaysRate(aa *AlwaysAdvanceSummary, frozenFamily bool) float64 {
	num, den := 0, 0
	for _, cell := range aa.PerTaxon {
		if cell.Taxon.IsFrozenFamily() == frozenFamily {
			num += cell.Time
			den += cell.Projects
		}
	}
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func TestSynchronicityHistogramByTaxon(t *testing.T) {
	d := smallDataset(t, 14, 3)
	perTaxon := d.SynchronicityHistogramByTaxon(0.10, 5)
	if len(perTaxon) != taxa.Count {
		t.Fatalf("taxa = %d", len(perTaxon))
	}
	total := 0
	for _, h := range perTaxon {
		for _, c := range h.Buckets {
			total += c
		}
	}
	if total != d.Size() {
		t.Errorf("per-taxon histograms sum to %d, want %d", total, d.Size())
	}
}

func TestChangeLocality(t *testing.T) {
	d := smallDataset(t, 15, 4)
	loc := d.ChangeLocality(5)
	if loc.Projects == 0 {
		t.Fatal("no projects qualified for locality")
	}
	if loc.MedianTopShare < 0 || loc.MedianTopShare > 1 {
		t.Errorf("MedianTopShare = %v", loc.MedianTopShare)
	}
	if loc.MedianUnchangedShare < 0 || loc.MedianUnchangedShare > 1 {
		t.Errorf("MedianUnchangedShare = %v", loc.MedianUnchangedShare)
	}
	// Per-project locality must be internally consistent.
	for _, p := range d.Projects {
		if p.Locality.ChangedTables > p.Locality.Tables {
			t.Errorf("%s: changed %d > tables %d", p.Name, p.Locality.ChangedTables, p.Locality.Tables)
		}
	}
}
