package obs

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// APIPrefix is the versioned mount point of the HTTP API. Every route —
// built-in telemetry and extra Handlers alike — is reachable both at its
// legacy unversioned path and under this prefix; new clients should use
// the prefixed form, which is the surface future versions will keep
// stable.
const APIPrefix = "/api/v1"

// ServeOptions configures the embedded observability server.
type ServeOptions struct {
	// Addr is the listen address (host:port). A ":0" port picks a free
	// one; read the result from Server.Addr.
	Addr string
	// Registry backs /metrics. A nil registry serves an empty (still
	// valid) exposition.
	Registry *Registry
	// Logger receives the server's lifecycle, access and error logs
	// (nil = drop).
	Logger *slog.Logger
	// Handlers mounts extra routes (e.g. "/runs" → the run-ledger
	// handler) on the server's mux.
	Handlers map[string]http.Handler
	// Tenant, when non-nil, extracts the request's tenant identity for
	// the access log and the RED metrics ("" reads as anonymous).
	Tenant func(*http.Request) string
	// RED, when non-nil, records per-route/per-tenant request metrics
	// for every served request.
	RED *RED
	// Flight, when non-nil, receives an event for every 5xx response —
	// the HTTP layer's contribution to the black box.
	Flight *FlightRecorder
}

// Server is the embedded HTTP observability plane of a run: /metrics in
// the Prometheus text format, /healthz (liveness) and /readyz (flips once
// the corpus is loaded, and back off as soon as draining begins),
// /debug/pprof/* and the /progress SSE stream fed by Publish. Construct
// with Serve; a nil *Server is a valid no-op, so pipeline code can
// publish unconditionally whether or not -listen was given.
//
// Every request passes through one middleware that accepts or mints a
// W3C traceparent, threads the TraceContext through the request
// context, echoes the header on the response, and emits the access log
// line and RED metrics with the trace id attached.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	hub      *sseHub
	log      *slog.Logger
	ready    atomic.Bool
	draining atomic.Bool
	done     chan struct{}
}

// Serve binds opts.Addr and starts serving in a background goroutine.
// The listener is bound synchronously, so a non-nil return means the
// endpoints are already reachable (and Addr reports the real port).
func Serve(opts ServeOptions) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", opts.Addr, err)
	}
	s := newServer(opts)
	s.ln = ln
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal Shutdown signal, not a failure.
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Error("obs: server stopped", "err", err)
		}
	}()
	s.log.Info("obs: serving telemetry", "addr", s.Addr())
	return s, nil
}

// newServer builds the server and its full handler chain without
// binding a listener — the piece tests exercise directly with httptest.
func newServer(opts ServeOptions) *Server {
	log := opts.Logger
	if log == nil {
		log = discardLogger
	}
	s := &Server{hub: newSSEHub(), log: log, done: make(chan struct{})}

	mux := http.NewServeMux()
	// Every route mounts twice: under the versioned /api/v1 prefix — the
	// stable API surface — and at its legacy unversioned path, kept as an
	// alias for existing clients and scrape configs. The versioned mount
	// strips the prefix, so path-parsing handlers (jobs, runs) see the
	// same URL shape either way.
	handle := func(path string, h http.Handler) {
		mux.Handle(path, h)
		mux.Handle(APIPrefix+path, http.StripPrefix(APIPrefix, h))
	}
	handleFunc := func(path string, f http.HandlerFunc) { handle(path, f) }
	handleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	handleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Draining wins over ready: the instant shutdown begins, load
		// balancers must stop routing here, before the listener closes.
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining: shutdown in progress")
			return
		}
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready: corpus still loading")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	handleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := opts.Registry.WritePrometheus(w); err != nil {
			s.log.Warn("obs: /metrics write failed", "err", err)
		}
	})
	handleFunc("/progress", s.handleProgress)
	handleFunc("/debug/pprof/", pprof.Index)
	handleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	handleFunc("/debug/pprof/profile", pprof.Profile)
	handleFunc("/debug/pprof/symbol", pprof.Symbol)
	handleFunc("/debug/pprof/trace", pprof.Trace)
	paths := []string{"/healthz", "/readyz", "/metrics", "/progress", "/debug/pprof/"}
	for path, h := range opts.Handlers {
		handle(path, h)
		paths = append(paths, path)
	}
	sort.Strings(paths)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "coevo observability server")
		for _, p := range paths {
			fmt.Fprintln(w, "  "+p)
		}
		fmt.Fprintf(w, "every route is also mounted under %s (the stable, versioned surface)\n", APIPrefix)
	})

	// Count connected live-progress clients in the unified registry, so a
	// scrape shows who else is watching.
	opts.Registry.GaugeFunc("coevo_obs_sse_clients",
		"Connected /progress SSE clients.",
		func() float64 { return float64(s.hub.clientCount()) })

	s.srv = &http.Server{Handler: s.instrument(opts, mux), ReadHeaderTimeout: 5 * time.Second}
	return s
}

// instrument wraps the mux in the request-scoped observability
// middleware: traceparent in, TraceContext through the context,
// traceparent out, one access-log line and one RED observation per
// request, and a flight-recorder event for every 5xx.
func (s *Server) instrument(opts ServeOptions, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tc, ok := ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tc = NewTraceContext()
		}
		r = r.WithContext(WithTraceContext(r.Context(), tc))
		w.Header().Set("traceparent", tc.Traceparent())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		next.ServeHTTP(sw, r)

		elapsed := time.Since(start)
		route := routeLabel(r.URL.Path)
		tenant := ""
		if opts.Tenant != nil {
			tenant = opts.Tenant(r)
		}
		if tenant == "" {
			tenant = "anonymous"
		}
		opts.RED.Observe(route, tenant, sw.status, elapsed.Seconds())
		// Telemetry scrapes and probes log at debug — they recur every few
		// seconds and would drown the API traffic at info.
		level := slog.LevelInfo
		switch route {
		case "/metrics", "/healthz", "/readyz", "/progress", "/debug/pprof":
			level = slog.LevelDebug
		}
		s.log.Log(r.Context(), level, "obs: http",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"status", sw.status, "duration", elapsed,
			"tenant", tenant, "trace_id", tc.TraceID)
		if sw.status >= http.StatusInternalServerError {
			opts.Flight.Record(FlightEvent{
				Source: "http", Kind: "request-failed", TraceID: tc.TraceID,
				Name: route, Detail: fmt.Sprintf("%s %s -> %d", r.Method, r.URL.Path, sw.status),
			})
		}
	})
}

// statusWriter captures the response status for the access log and RED
// metrics while passing streaming capabilities through.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// Flush keeps SSE streaming working through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routeLabel collapses a request path onto a bounded route template —
// ids become {id}, pprof sub-pages fold together, and anything
// unrecognized lands in "other" — so the per-route metric label can
// never explode with the URL space.
func routeLabel(path string) string {
	p := strings.TrimPrefix(path, APIPrefix)
	if p == "" {
		p = "/"
	}
	switch p {
	case "/", "/healthz", "/readyz", "/metrics", "/progress", "/status", "/jobs", "/runs", "/shard/run":
		return p
	}
	switch {
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	case strings.HasPrefix(p, "/cache/"):
		// Content-addressed cache keys: one label for the whole keyspace.
		return "/cache/{key}"
	case strings.HasPrefix(p, "/jobs/"):
		rest := strings.Trim(strings.TrimPrefix(p, "/jobs/"), "/")
		_, action, _ := strings.Cut(rest, "/")
		switch action {
		case "":
			return "/jobs/{id}"
		case "result", "events", "cancel", "flight":
			return "/jobs/{id}/" + action
		}
		return overflowLabel
	case strings.HasPrefix(p, "/runs/"):
		return "/runs/{id}"
	}
	return overflowLabel
}

// Addr returns the server's bound address (host:port). Safe on nil.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL. Safe on nil.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// SetReady flips /readyz: the pipeline calls it once corpus loading
// completes, so orchestrators can distinguish "process up" from "run
// actually analyzing". Safe on nil.
func (s *Server) SetReady(ready bool) {
	if s == nil {
		return
	}
	s.ready.Store(ready)
}

// BeginDrain flips /readyz to 503 immediately — before the queue stops
// accepting and long before the listener closes — so load balancers
// stop routing new work while in-flight requests finish. Safe on nil
// and idempotent; Shutdown calls it implicitly.
func (s *Server) BeginDrain() {
	if s == nil {
		return
	}
	s.draining.Store(true)
}

// Shutdown gracefully stops the server: SSE clients are disconnected,
// in-flight requests get until ctx to finish, and the listener closes.
// Safe on nil and idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.BeginDrain()
	s.ready.Store(false)
	s.hub.close()
	err := s.srv.Shutdown(ctx)
	if s.ln != nil {
		<-s.done
	}
	s.log.Info("obs: telemetry server stopped", "addr", s.Addr())
	return err
}

// handleProgress streams the run's event feed as server-sent events:
// one "project" event per completion or failure and one "snapshot" event
// per latency-snapshot publish, each carrying a JSON payload. The SSE
// transport itself is the shared WriteSSE, the same one the job service
// uses for per-job streams.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id, ch, ok := s.hub.subscribe()
	if !ok {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	defer s.hub.unsubscribe(id)
	// The comment line confirms the subscription before any event fires,
	// and the retry hint keeps browser reconnects polite.
	WriteSSE(w, r, ": coevo progress stream\nretry: 1000\n\n", ch) //nolint:errcheck // a non-streaming writer already got a 500
}
