package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestLabelGuardCollapsesOverflow(t *testing.T) {
	g := NewLabelGuard(3)
	for _, v := range []string{"a", "b", "c"} {
		if got := g.Resolve(v); got != v {
			t.Errorf("Resolve(%q) under cap = %q", v, got)
		}
	}
	// Re-resolving an admitted value stays stable...
	if got := g.Resolve("b"); got != "b" {
		t.Errorf("Resolve of an admitted value = %q", got)
	}
	// ...but the cap is full: every unknown value lands in "other", and
	// keeps landing there no matter how many distinct names arrive.
	for i := 0; i < 100; i++ {
		v := fmt.Sprintf("hostile-%d", i)
		if got := g.Resolve(v); got != overflowLabel {
			t.Fatalf("Resolve(%q) past cap = %q, want %q", v, got, overflowLabel)
		}
	}
	if g.Seen() != 3 {
		t.Errorf("Seen = %d, want 3", g.Seen())
	}
	// Identity cases: empty and the overflow bucket pass through, nil
	// guard resolves to identity.
	if got := g.Resolve(""); got != "" {
		t.Errorf("Resolve(\"\") = %q", got)
	}
	if got := g.Resolve(overflowLabel); got != overflowLabel {
		t.Errorf("Resolve(%q) = %q", overflowLabel, got)
	}
	var nilGuard *LabelGuard
	if got := nilGuard.Resolve("x"); got != "x" || nilGuard.Seen() != 0 {
		t.Error("nil guard should resolve to identity")
	}
}

func TestREDSeriesAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	red := NewRED(reg, NewLabelGuard(2))

	red.Observe("/jobs", "alice", 200, 0.01)
	red.Observe("/jobs", "alice", 500, 0.02)
	red.Observe("/jobs/{id}", "bob", 200, 0.03)
	red.Observe("/jobs", "", 200, 0.01)       // "" reads as anonymous -> collapses past cap
	red.Observe("/jobs", "mallory", 200, 0.5) // past cap -> other

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`coevo_http_requests_total{route="/jobs",tenant="alice"} 2`,
		`coevo_http_errors_total{route="/jobs",tenant="alice"} 1`,
		`coevo_http_requests_total{route="/jobs/{id}",tenant="bob"} 1`,
		`coevo_http_requests_total{route="/jobs",tenant="other"} 2`,
		`coevo_http_request_seconds`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "mallory") || strings.Contains(text, "anonymous") {
		t.Errorf("over-cap tenant leaked into the registry:\n%s", text)
	}

	snap := red.Snapshot()
	if snap.WindowSeconds != redWindowSeconds {
		t.Errorf("WindowSeconds = %d", snap.WindowSeconds)
	}
	if snap.Requests != 5 || snap.Errors != 1 {
		t.Errorf("window totals = %d req / %d err, want 5 / 1", snap.Requests, snap.Errors)
	}
	if want := 1.0 / 5.0; snap.ErrorRate != want {
		t.Errorf("ErrorRate = %v, want %v", snap.ErrorRate, want)
	}
	// Tenants come back bounded and sorted: alice, bob, other.
	var names []string
	for _, tr := range snap.Tenants {
		names = append(names, tr.Tenant)
	}
	if got, want := strings.Join(names, ","), "alice,bob,other"; got != want {
		t.Errorf("snapshot tenants = %q, want %q", got, want)
	}
	for _, tr := range snap.Tenants {
		if tr.Tenant == "alice" {
			if tr.Requests != 2 || tr.Errors != 1 || tr.ErrorRate != 0.5 {
				t.Errorf("alice rate = %+v", tr)
			}
		}
	}
}

func TestREDNilSafe(t *testing.T) {
	var red *RED
	red.Observe("/jobs", "a", 200, 0.1) // must not panic
	if red.Snapshot() != nil {
		t.Error("nil RED snapshot should be nil")
	}
	if red.Tenants() != nil {
		t.Error("nil RED Tenants should be nil")
	}
	// Registry-less RED still windows.
	r := NewRED(nil, nil)
	r.Observe("/x", "t", 200, 0.1)
	if s := r.Snapshot(); s.Requests != 1 {
		t.Errorf("registry-less RED window = %+v", s)
	}
}
