package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTestServer boots a server on a free port and tears it down with
// the test.
func startTestServer(t *testing.T, opts ServeOptions) *Server {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s, err := Serve(opts)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// get fetches a path and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("coevo_engine_tasks_total", "Tasks.").Add(7)
	extra := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ledger here")
	})
	s := startTestServer(t, ServeOptions{
		Registry: reg,
		Handlers: map[string]http.Handler{"/runs": extra},
	})

	if code, body := get(t, s.URL()+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// Readiness flips with SetReady — the corpus-loaded transition.
	if code, _ := get(t, s.URL()+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", code)
	}
	s.SetReady(true)
	if code, body := get(t, s.URL()+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz after ready = %d %q", code, body)
	}

	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(string(raw), "coevo_engine_tasks_total 7") {
		t.Errorf("/metrics missing registry series:\n%s", raw)
	}
	if !strings.Contains(string(raw), "coevo_obs_sse_clients 0") {
		t.Errorf("/metrics missing the SSE client gauge:\n%s", raw)
	}

	if code, body := get(t, s.URL()+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profiles") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, body := get(t, s.URL()+"/runs"); code != http.StatusOK || body != "ledger here" {
		t.Errorf("/runs = %d %q", code, body)
	}
	if code, body := get(t, s.URL()+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, s.URL()+"/definitely-not-a-route"); code != http.StatusNotFound {
		t.Errorf("unknown route = %d, want 404", code)
	}
}

// TestAPIVersionedAliases asserts every route is mounted under /api/v1
// with the prefix stripped before path-parsing handlers see the URL, and
// that the legacy unversioned paths answer identically.
func TestAPIVersionedAliases(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("coevo_engine_tasks_total", "Tasks.").Add(3)
	extra := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Echo the path the handler observed: the versioned mount must
		// deliver the same legacy shape ("/runs/...") after stripping.
		fmt.Fprint(w, "path="+r.URL.Path)
	})
	s := startTestServer(t, ServeOptions{
		Registry: reg,
		Handlers: map[string]http.Handler{"/runs": extra, "/runs/": extra},
	})
	s.SetReady(true)

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		legacyCode, legacyBody := get(t, s.URL()+path)
		v1Code, v1Body := get(t, s.URL()+APIPrefix+path)
		if v1Code != legacyCode || v1Body != legacyBody {
			t.Errorf("%s: versioned (%d, %q) != legacy (%d, %q)", path, v1Code, v1Body, legacyCode, legacyBody)
		}
	}
	if code, body := get(t, s.URL()+APIPrefix+"/runs/abc"); code != http.StatusOK || body != "path=/runs/abc" {
		t.Errorf("%s/runs/abc = %d %q, want the stripped legacy path", APIPrefix, code, body)
	}
	if code, _ := get(t, s.URL()+APIPrefix+"/nope"); code != http.StatusNotFound {
		t.Errorf("%s/nope = %d, want 404", APIPrefix, code)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the /progress stream until the connection closes or n
// events arrived, whichever is first.
func readSSE(t *testing.T, body io.Reader, n int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.data != "":
			events = append(events, cur)
			cur = sseEvent{}
			if len(events) >= n {
				return events
			}
		}
	}
	return events
}

func TestProgressSSE(t *testing.T) {
	s := startTestServer(t, ServeOptions{Registry: NewRegistry()})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", s.URL()+"/progress", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Wait until the hub sees the subscriber, then publish through the
	// public API, including an unmarshallable payload that must be
	// dropped without wedging the stream.
	deadline := time.Now().Add(5 * time.Second)
	for s.hub.clientCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Publish("project", map[string]any{"name": "p-001", "done": 1, "total": 2})
	s.Publish("broken", func() {}) // not marshallable: dropped
	s.Publish("snapshot", map[string]any{"p50_ms": 1.5})

	events := readSSE(t, resp.Body, 2)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(events), events)
	}
	if events[0].name != "project" || events[1].name != "snapshot" {
		t.Errorf("event order = %q, %q", events[0].name, events[1].name)
	}
	var payload struct {
		Name string `json:"name"`
		Done int    `json:"done"`
	}
	if err := json.Unmarshal([]byte(events[0].data), &payload); err != nil || payload.Name != "p-001" || payload.Done != 1 {
		t.Errorf("project payload = %q (%v)", events[0].data, err)
	}

	// Shutdown closes the stream: the body drains to EOF rather than
	// hanging, and later publishes are no-ops.
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(io.Discard, resp.Body)
	}()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not close on shutdown")
	}
	s.Publish("late", map[string]int{"x": 1}) // must not panic
}

// TestSSESlowClientDoesNotBlock floods the hub far past the client
// buffer without reading: publish must stay non-blocking and drop the
// overflow.
func TestSSESlowClientDoesNotBlock(t *testing.T) {
	hub := newSSEHub()
	_, ch, ok := hub.subscribe()
	if !ok {
		t.Fatal("subscribe failed")
	}
	donePublishing := make(chan struct{})
	go func() {
		defer close(donePublishing)
		for i := 0; i < clientBuffer*4; i++ {
			hub.publish("e", []byte(`{}`))
		}
	}()
	select {
	case <-donePublishing:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow client")
	}
	if got := len(ch); got != clientBuffer {
		t.Errorf("buffered %d events, want full buffer %d", got, clientBuffer)
	}
	hub.close()
}

// TestHubConcurrent subscribes, publishes and unsubscribes from many
// goroutines; run under -race by make verify.
func TestHubConcurrent(t *testing.T) {
	hub := newSSEHub()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id, ch, ok := hub.subscribe()
				if !ok {
					return
				}
				hub.publish("e", []byte(`1`))
				select {
				case <-ch:
				default:
				}
				hub.unsubscribe(id)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			hub.publish("e", []byte(`2`))
		}
	}()
	wg.Wait()
	hub.close()
	hub.close() // idempotent
	if _, _, ok := hub.subscribe(); ok {
		t.Error("subscribe after close should fail")
	}
}

func TestNilServerIsSafe(t *testing.T) {
	var s *Server
	if s.Addr() != "" || s.URL() != "" {
		t.Error("nil server should report empty addresses")
	}
	s.SetReady(true)
	s.Publish("event", map[string]int{"x": 1})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("nil shutdown: %v", err)
	}
}

// TestReadyzFlipsOnDrain exercises the drain transition against the
// real handler chain via httptest: ready serves 200, and the moment
// BeginDrain is called — before any listener closes — /readyz answers
// 503 so load balancers stop routing.
func TestReadyzFlipsOnDrain(t *testing.T) {
	s := newServer(ServeOptions{Registry: NewRegistry()})
	ts := httptest.NewServer(s.srv.Handler)
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", code)
	}
	s.SetReady(true)
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz ready = %d %q", code, body)
	}

	s.BeginDrain()
	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/readyz draining = %d %q, want 503 draining", code, body)
	}
	// Draining wins even while ready is still set, and on the versioned
	// mount too; liveness keeps answering 200 throughout the drain.
	if code, _ := get(t, ts.URL+APIPrefix+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("%s/readyz draining = %d, want 503", APIPrefix, code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", code)
	}
	s.BeginDrain() // idempotent
}

// TestInstrumentTraceparent asserts the middleware accepts a valid
// incoming traceparent (same trace id through the request context and
// the response header) and mints one otherwise.
func TestInstrumentTraceparent(t *testing.T) {
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	var seenTraceID string
	echo := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenTraceID = TraceIDFrom(r.Context())
	})
	flight := NewFlightRecorder(64)
	red := NewRED(NewRegistry(), nil)
	s := newServer(ServeOptions{
		Registry: NewRegistry(),
		Handlers: map[string]http.Handler{"/runs": echo},
		Tenant:   func(r *http.Request) string { return r.Header.Get("X-Coevo-Tenant") },
		RED:      red,
		Flight:   flight,
	})
	ts := httptest.NewServer(s.srv.Handler)
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/runs", nil)
	req.Header.Set("traceparent", "00-"+trace+"-00f067aa0ba902b7-01")
	req.Header.Set("X-Coevo-Tenant", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seenTraceID != trace {
		t.Errorf("handler saw trace id %q, want %q", seenTraceID, trace)
	}
	echoed, ok := ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || echoed.TraceID != trace {
		t.Errorf("response traceparent = %q, want trace %s", resp.Header.Get("traceparent"), trace)
	}

	// No (or malformed) header: a fresh valid trace is minted.
	req2, _ := http.NewRequest("GET", ts.URL+"/runs", nil)
	req2.Header.Set("traceparent", "not-a-traceparent")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	minted, ok := ParseTraceparent(resp2.Header.Get("traceparent"))
	if !ok || minted.TraceID == trace {
		t.Errorf("minted traceparent = %q", resp2.Header.Get("traceparent"))
	}
	if seenTraceID != minted.TraceID {
		t.Errorf("handler saw %q, response says %q", seenTraceID, minted.TraceID)
	}

	// RED observed the tenant; no 5xx happened, so the flight ring stays
	// free of request-failed events.
	snap := red.Snapshot()
	if snap.Requests < 2 {
		t.Errorf("RED window = %+v, want >= 2 requests", snap)
	}
	found := false
	for _, tr := range snap.Tenants {
		if tr.Tenant == "alice" {
			found = true
		}
	}
	if !found {
		t.Errorf("RED snapshot missing tenant alice: %+v", snap.Tenants)
	}
	if evs := flight.Correlated(trace, ""); len(evs) != 0 {
		t.Errorf("2xx request left flight events: %+v", evs)
	}
}

// TestInstrumentRecordsServerErrors asserts a 5xx response lands in the
// flight ring, correlated by the request's trace id.
func TestInstrumentRecordsServerErrors(t *testing.T) {
	const trace = "aaaabbbbccccddddeeeeffff00001111"
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	flight := NewFlightRecorder(64)
	s := newServer(ServeOptions{
		Registry: NewRegistry(),
		Handlers: map[string]http.Handler{"/runs": boom},
		Flight:   flight,
	})
	ts := httptest.NewServer(s.srv.Handler)
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/runs", nil)
	req.Header.Set("traceparent", "00-"+trace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	evs := flight.Correlated(trace, "")
	if len(evs) != 1 || evs[0].Source != "http" || evs[0].Kind != "request-failed" {
		t.Fatalf("flight events for failed request = %+v, want one http/request-failed", evs)
	}
}

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/":                          "/",
		"/healthz":                   "/healthz",
		"/metrics":                   "/metrics",
		"/status":                    "/status",
		"/jobs":                      "/jobs",
		"/jobs/abc123":               "/jobs/{id}",
		"/jobs/abc123/result":        "/jobs/{id}/result",
		"/jobs/abc123/events":        "/jobs/{id}/events",
		"/jobs/abc123/cancel":        "/jobs/{id}/cancel",
		"/jobs/abc123/flight":        "/jobs/{id}/flight",
		"/jobs/abc123/nonsense":      overflowLabel,
		"/runs":                      "/runs",
		"/runs/2024-01-01T00":        "/runs/{id}",
		"/debug/pprof/":              "/debug/pprof",
		"/debug/pprof/heap":          "/debug/pprof",
		"/anything/else":             overflowLabel,
		APIPrefix + "/jobs/x/result": "/jobs/{id}/result",
		APIPrefix + "/status":        "/status",
		APIPrefix:                    "/",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
