package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling hooks: thin wrappers over runtime/pprof that own the file
// lifecycle, so the CLI's -cpuprofile/-memprofile flags are two calls.
// Profiling is process-global; the hooks live here so every observability
// switch is reachable through one package.

// StartCPUProfile begins a CPU profile writing to path and returns a stop
// function that ends the profile and closes the file. The stop function
// is idempotent.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path, running a GC first so
// the profile reflects live memory rather than garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
