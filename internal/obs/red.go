package obs

// Per-tenant RED (rate / errors / duration) metrics for the HTTP
// surface, plus the bounded-cardinality label guard that keeps a
// hostile or misconfigured client from minting unbounded labelled
// series: after the cap, unknown tenants collapse into one "other"
// bucket. The registry series are what a Prometheus scrapes; the
// in-process sliding window backs the /status endpoint's "recent
// error rate" summary without needing a scraper in the loop.

import (
	"net/http"
	"sync"
	"time"
)

// DefaultTenantLabelCap bounds distinct tenant label values (the cap
// counts real tenants; the "other" overflow bucket is free).
const DefaultTenantLabelCap = 32

// overflowLabel is the bucket unknown values collapse into once the
// guard's cap is reached.
const overflowLabel = "other"

// LabelGuard bounds the cardinality of one label dimension. Resolve
// returns the value itself while capacity remains and the shared
// overflow bucket afterwards, so the set of labelled series a client
// can create is finite whatever it sends.
type LabelGuard struct {
	mu   sync.Mutex
	cap  int
	seen map[string]bool
}

// NewLabelGuard builds a guard admitting at most cap distinct values
// (cap <= 0 uses DefaultTenantLabelCap).
func NewLabelGuard(cap int) *LabelGuard {
	if cap <= 0 {
		cap = DefaultTenantLabelCap
	}
	return &LabelGuard{cap: cap, seen: make(map[string]bool, cap)}
}

// Resolve maps v onto its bounded label value. Safe on nil (identity).
func (g *LabelGuard) Resolve(v string) string {
	if g == nil || v == "" || v == overflowLabel {
		return v
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seen[v] {
		return v
	}
	if len(g.seen) >= g.cap {
		return overflowLabel
	}
	g.seen[v] = true
	return v
}

// Seen reports how many distinct values the guard has admitted.
func (g *LabelGuard) Seen() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.seen)
}

// redWindowSeconds is the sliding window the recent-error-rate summary
// covers: one slot per second, summed at snapshot time.
const redWindowSeconds = 60

// redCounts is one (requests, errors) tally.
type redCounts struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// redSlot is one second of the sliding window.
type redSlot struct {
	sec       int64
	total     redCounts
	perTenant map[string]redCounts
}

// RED records per-route, per-tenant request metrics: request and error
// counters plus a latency histogram in the registry, and a sliding
// one-minute window for the /status summary. Construct with NewRED; a
// nil *RED is a valid no-op.
type RED struct {
	reg     *Registry
	tenants *LabelGuard

	mu    sync.Mutex
	slots [redWindowSeconds]redSlot
}

// NewRED builds the recorder. The guard bounds the tenant label; nil
// creates one with the default cap. The registry may be nil (window
// only).
func NewRED(reg *Registry, tenants *LabelGuard) *RED {
	if tenants == nil {
		tenants = NewLabelGuard(0)
	}
	return &RED{reg: reg, tenants: tenants}
}

// Tenants exposes the guard, so other per-tenant series (queue wait,
// execution time) bound their labels identically.
func (r *RED) Tenants() *LabelGuard {
	if r == nil {
		return nil
	}
	return r.tenants
}

// Observe records one served request. route must already be a bounded
// template (see the server's routeLabel); tenant is bounded here. Safe
// on nil.
func (r *RED) Observe(route, tenant string, status int, seconds float64) {
	if r == nil {
		return
	}
	if tenant == "" {
		tenant = "anonymous"
	}
	tenant = r.tenants.Resolve(tenant)
	isErr := status >= http.StatusInternalServerError
	if r.reg != nil {
		r.reg.Counter(Label("coevo_http_requests_total", "route", route, "tenant", tenant),
			"HTTP requests served, by route template and tenant.").Inc()
		if isErr {
			r.reg.Counter(Label("coevo_http_errors_total", "route", route, "tenant", tenant),
				"HTTP responses with a 5xx status, by route template and tenant.").Inc()
		}
		r.reg.Histogram(Label("coevo_http_request_seconds", "route", route, "tenant", tenant),
			"HTTP request latency in seconds, by route template and tenant.",
			DurationBuckets).Observe(seconds)
	}

	now := time.Now().Unix()
	r.mu.Lock()
	slot := &r.slots[now%redWindowSeconds]
	if slot.sec != now {
		slot.sec = now
		slot.total = redCounts{}
		slot.perTenant = nil
	}
	slot.total.Requests++
	if isErr {
		slot.total.Errors++
	}
	if slot.perTenant == nil {
		slot.perTenant = map[string]redCounts{}
	}
	c := slot.perTenant[tenant]
	c.Requests++
	if isErr {
		c.Errors++
	}
	slot.perTenant[tenant] = c
	r.mu.Unlock()
}

// TenantRate is one tenant's recent-window summary.
type TenantRate struct {
	Tenant    string  `json:"tenant"`
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
}

// REDSnapshot summarizes the recent window for /status.
type REDSnapshot struct {
	WindowSeconds int          `json:"window_seconds"`
	Requests      uint64       `json:"requests"`
	Errors        uint64       `json:"errors"`
	ErrorRate     float64      `json:"error_rate"`
	Tenants       []TenantRate `json:"tenants,omitempty"`
}

// Snapshot sums the live window. Safe on nil.
func (r *RED) Snapshot() *REDSnapshot {
	if r == nil {
		return nil
	}
	now := time.Now().Unix()
	snap := &REDSnapshot{WindowSeconds: redWindowSeconds}
	byTenant := map[string]redCounts{}
	r.mu.Lock()
	for i := range r.slots {
		slot := &r.slots[i]
		if slot.sec == 0 || now-slot.sec >= redWindowSeconds {
			continue
		}
		snap.Requests += slot.total.Requests
		snap.Errors += slot.total.Errors
		for tenant, c := range slot.perTenant {
			agg := byTenant[tenant]
			agg.Requests += c.Requests
			agg.Errors += c.Errors
			byTenant[tenant] = agg
		}
	}
	r.mu.Unlock()
	if snap.Requests > 0 {
		snap.ErrorRate = float64(snap.Errors) / float64(snap.Requests)
	}
	for tenant, c := range byTenant {
		tr := TenantRate{Tenant: tenant, Requests: c.Requests, Errors: c.Errors}
		if c.Requests > 0 {
			tr.ErrorRate = float64(c.Errors) / float64(c.Requests)
		}
		snap.Tenants = append(snap.Tenants, tr)
	}
	// Deterministic order for the JSON document and its tests.
	for i := 1; i < len(snap.Tenants); i++ {
		for k := i; k > 0 && snap.Tenants[k].Tenant < snap.Tenants[k-1].Tenant; k-- {
			snap.Tenants[k], snap.Tenants[k-1] = snap.Tenants[k-1], snap.Tenants[k]
		}
	}
	return snap
}
