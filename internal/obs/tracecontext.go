package obs

// W3C trace context: the correlation identity that links an HTTP
// submission, its queued job, the engine workers that stream it, and the
// sealed runlog manifest into one trace. The server accepts an incoming
// `traceparent` header (or mints one), the job queue persists the trace
// id with the job record, and every span recorded on the job's behalf
// carries it — so "what happened to this request" is one grep, one
// Perfetto timeline, one flight-recorder slice.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceContext is one request's correlation identity in the W3C trace
// context model: a 32-hex-digit trace id shared by every participant,
// and a 16-hex-digit span id naming the current hop.
type TraceContext struct {
	TraceID string
	SpanID  string
	Flags   byte
}

// Valid reports whether the context carries a well-formed, non-zero
// trace id and span id.
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// Traceparent renders the context as a version-00 traceparent header
// value: 00-<trace-id>-<span-id>-<flags>.
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceID, tc.SpanID, tc.Flags)
}

// Child returns a context in the same trace with a fresh span id — the
// identity of the next hop (handler → job → executor).
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: randHex(8), Flags: tc.Flags}
}

// NewTraceContext mints a fresh sampled trace.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8), Flags: 0x01}
}

// ResumeTrace rebuilds a context from a stored trace id (a persisted
// job record, say) with a fresh span id. An invalid or empty id starts
// a new trace instead, so resuming never produces an unusable identity.
func ResumeTrace(traceID string) TraceContext {
	if !isHexID(traceID, 32) {
		return NewTraceContext()
	}
	return TraceContext{TraceID: traceID, SpanID: randHex(8), Flags: 0x01}
}

// ParseTraceparent parses a traceparent header value. It accepts any
// non-ff version whose first four fields are well-formed (per the spec,
// higher versions must be readable as version 00) and rejects all-zero
// ids, which the spec reserves as "no trace".
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isHex(version) || version == "ff" {
		return TraceContext{}, false
	}
	if !isHexID(traceID, 32) || !isHexID(spanID, 16) {
		return TraceContext{}, false
	}
	if len(flags) != 2 || !isHex(flags) {
		return TraceContext{}, false
	}
	var f byte
	raw, err := hex.DecodeString(flags)
	if err != nil {
		return TraceContext{}, false
	}
	f = raw[0]
	return TraceContext{TraceID: traceID, SpanID: spanID, Flags: f}, true
}

// isHexID reports whether s is exactly n lowercase hex digits and not
// all zeros.
func isHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

// isHex reports whether s is entirely lowercase hex digits.
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// randHex returns 2n cryptographically random hex digits, never all
// zero (the spec's reserved value).
func randHex(n int) string {
	buf := make([]byte, n)
	for {
		if _, err := rand.Read(buf); err != nil {
			// The clock-free fallback: a fixed pattern beats an invalid id.
			for i := range buf {
				buf[i] = byte(i + 1)
			}
		}
		for _, b := range buf {
			if b != 0 {
				return hex.EncodeToString(buf)
			}
		}
	}
}

// traceCtxKey carries the TraceContext through a context.Context.
type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context, if any.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// TraceIDFrom returns the context's trace id, or "" — the cheap form
// for call sites that only stamp the id into telemetry.
func TraceIDFrom(ctx context.Context) string {
	if tc, ok := TraceContextFrom(ctx); ok {
		return tc.TraceID
	}
	return ""
}
