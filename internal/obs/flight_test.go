package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestFlightRecorderOrderAndWraparound(t *testing.T) {
	f := NewFlightRecorder(64)
	if f.Cap() != 64 {
		t.Fatalf("Cap = %d, want 64", f.Cap())
	}
	// Overfill by 2x: the ring must retain exactly the newest window, in
	// sequence order.
	for i := 0; i < 128; i++ {
		f.Record(FlightEvent{Source: "test", Kind: "tick", Name: fmt.Sprintf("e%03d", i)})
	}
	if f.Len() != 128 {
		t.Errorf("Len = %d, want 128 (total recorded, not occupancy)", f.Len())
	}
	snap := f.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("Snapshot holds %d events, want 64", len(snap))
	}
	for i, e := range snap {
		if want := uint64(65 + i); e.Seq != want {
			t.Fatalf("snap[%d].Seq = %d, want %d (newest window, ordered)", i, e.Seq, want)
		}
		if want := fmt.Sprintf("e%03d", 64+i); e.Name != want {
			t.Fatalf("snap[%d].Name = %q, want %q", i, e.Name, want)
		}
		if e.When.IsZero() {
			t.Fatalf("snap[%d] missing timestamp", i)
		}
	}
}

func TestFlightRecorderSizing(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 64}, {-5, 64}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := NewFlightRecorder(tc.ask).Cap(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestFlightRecorderCorrelated(t *testing.T) {
	f := NewFlightRecorder(64)
	f.Record(FlightEvent{Source: "http", Kind: "request-failed", TraceID: "aaa"})
	f.Record(FlightEvent{Source: "jobs", Kind: "job-started", TraceID: "aaa", JobID: "j1"})
	f.Record(FlightEvent{Source: "jobs", Kind: "job-started", TraceID: "bbb", JobID: "j2"})
	f.Record(FlightEvent{Source: "engine", Kind: "task-failed", JobID: "j1"})
	f.Record(FlightEvent{Source: "engine", Kind: "task-finished"}) // uncorrelated

	byTrace := f.Correlated("aaa", "")
	if len(byTrace) != 2 {
		t.Errorf("Correlated(trace aaa) = %d events, want 2: %+v", len(byTrace), byTrace)
	}
	// Either key matching suffices: trace aaa OR job j1 covers three events.
	both := f.Correlated("aaa", "j1")
	if len(both) != 3 {
		t.Errorf("Correlated(aaa, j1) = %d events, want 3: %+v", len(both), both)
	}
	for i := 1; i < len(both); i++ {
		if both[i].Seq <= both[i-1].Seq {
			t.Errorf("correlated slice out of order: %+v", both)
		}
	}
	// Empty keys never match, so "" does not sweep up unkeyed events.
	if got := f.Correlated("", ""); len(got) != 0 {
		t.Errorf("Correlated(\"\", \"\") = %d events, want 0", len(got))
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{Kind: "x"}) // must not panic
	if f.Len() != 0 || f.Cap() != 0 {
		t.Error("nil recorder should report zero")
	}
	if s := f.Snapshot(); s != nil {
		t.Errorf("nil Snapshot = %v", s)
	}
	if c := f.Correlated("a", "b"); len(c) != 0 {
		t.Errorf("nil Correlated = %v", c)
	}
}

// TestFlightRecorderConcurrent hammers the ring from many writers with
// readers snapshotting mid-flight; run under -race by make verify.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(FlightEvent{Source: "test", Kind: "tick", TraceID: fmt.Sprintf("t%d", w)})
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, e := range f.Snapshot() {
					if e.Seq == 0 || e.Kind != "tick" {
						t.Errorf("torn event observed: %+v", e)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if f.Len() != 8*500 {
		t.Errorf("Len = %d, want %d", f.Len(), 8*500)
	}
	if got := len(f.Snapshot()); got != 256 {
		t.Errorf("final snapshot = %d events, want full ring 256", got)
	}
}
