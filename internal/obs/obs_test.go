package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilObserverIsSafe exercises every observer surface on nil: the
// whole point of the no-op contract is that pipeline code never branches.
func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Tracing() {
		t.Error("nil observer must not trace")
	}
	o.Logger().Info("dropped", "k", "v")
	ctx, span := o.StartSpan(context.Background(), "root")
	if span != nil {
		t.Error("nil observer must hand out a nil span")
	}
	span.SetArg("k", "v")
	span.End()
	o.RecordSpan("post-hoc", 3, time.Now(), time.Millisecond)
	if SpanFromContext(ctx) != nil {
		t.Error("nil observer must not attach spans to the context")
	}

	reg := o.Metrics()
	if reg != nil {
		t.Fatal("nil observer should return a nil registry")
	}
	reg.Counter("c", "help").Inc()
	reg.Counter("c", "help").Add(2)
	reg.Gauge("g", "help").Set(4)
	reg.Gauge("g", "help").Add(-1)
	reg.Histogram("h", "help", DurationBuckets).Observe(0.5)
	reg.CounterFunc("cf", "help", func() float64 { return 1 })
	reg.GaugeFunc("gf", "help", func() float64 { return 1 })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry exposition: %q, %v", buf.String(), err)
	}
	if err := o.WriteTrace(&buf); err != nil {
		t.Errorf("nil observer trace export: %v", err)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{LogWriter: &buf, LogLevel: slog.LevelWarn})
	o.Logger().Info("hidden")
	o.Logger().Warn("visible", "cause", "test")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %q", out)
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "cause=test") {
		t.Errorf("warn line missing: %q", out)
	}

	// No LogWriter: logging disabled entirely, but Logger() still works.
	quiet := New(Options{})
	quiet.Logger().Error("dropped")
	if quiet.Logger().Enabled(context.Background(), slog.LevelError) {
		t.Error("log-less observer should reject every level")
	}
}

func TestSpansNestAndExport(t *testing.T) {
	o := New(Options{Trace: true})
	ctx, run := o.StartSpan(context.Background(), "run")
	if SpanFromContext(ctx) != run {
		t.Fatal("context does not carry the open span")
	}
	_, child := o.StartSpan(ctx, "generate")
	child.SetArg("projects", "195")
	child.End()
	run.End()
	run.End() // idempotent
	o.RecordSpan("project-000", 2, time.Now().Add(-time.Millisecond), time.Millisecond, "stage", "extract")
	if got := o.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3", got)
	}

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	lanes := map[int]string{}
	for _, e := range trace.TraceEvents {
		byName[e.Name]++
		switch e.Ph {
		case "M":
			lanes[e.Tid] = e.Args["name"]
		case "X":
			if e.Pid != 1 || e.Ts < 0 || e.Dur < 0 {
				t.Errorf("bad complete event: %+v", e)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	for _, name := range []string{"run", "generate", "project-000"} {
		if byName[name] != 1 {
			t.Errorf("span %q exported %d times", name, byName[name])
		}
	}
	if lanes[0] != "orchestration" || lanes[2] != "worker-02" {
		t.Errorf("lane metadata = %v", lanes)
	}
	// The child span inherited the parent's lane (0), the explicit record
	// went to lane 2.
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		wantTid := 0
		if e.Name == "project-000" {
			wantTid = 2
			if e.Args["stage"] != "extract" {
				t.Errorf("recorded span args = %v", e.Args)
			}
		}
		if e.Tid != wantTid {
			t.Errorf("span %q on lane %d, want %d", e.Name, e.Tid, wantTid)
		}
	}
}

func TestTracingDisabledIsInert(t *testing.T) {
	o := New(Options{})
	ctx, span := o.StartSpan(context.Background(), "run")
	if span != nil || SpanFromContext(ctx) != nil {
		t.Error("tracing off must not allocate spans")
	}
	o.RecordSpan("x", 1, time.Now(), time.Second)
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("disabled trace should export empty events: %s", buf.String())
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("coevo_tasks_total", "Tasks completed.").Add(3)
	reg.Counter(Label("coevo_stage_seconds_total", "stage", "extract"), "Per-stage seconds.").Add(1.5)
	reg.Counter(Label("coevo_stage_seconds_total", "stage", "measure"), "Per-stage seconds.").Add(0.25)
	reg.Gauge("coevo_workers", "Worker pool size.").Set(8)
	reg.CounterFunc("coevo_cache_hits_total", "Cache hits.", func() float64 { return 42 })
	h := reg.Histogram("coevo_task_seconds", "Task latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	// A labelled histogram merges le into its own label set.
	reg.Histogram(Label("coevo_run_seconds", "run", "analyze"), "Run latency.", []float64{1}).Observe(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE coevo_tasks_total counter",
		"coevo_tasks_total 3",
		`coevo_stage_seconds_total{stage="extract"} 1.5`,
		`coevo_stage_seconds_total{stage="measure"} 0.25`,
		"# TYPE coevo_workers gauge",
		"coevo_workers 8",
		"coevo_cache_hits_total 42",
		"# TYPE coevo_task_seconds histogram",
		`coevo_task_seconds_bucket{le="0.1"} 1`,
		`coevo_task_seconds_bucket{le="1"} 2`,
		`coevo_task_seconds_bucket{le="+Inf"} 3`,
		"coevo_task_seconds_sum 5.55",
		"coevo_task_seconds_count 3",
		"# TYPE coevo_run_seconds histogram",
		`coevo_run_seconds_bucket{run="analyze",le="1"} 0`,
		`coevo_run_seconds_bucket{run="analyze",le="+Inf"} 1`,
		`coevo_run_seconds_sum{run="analyze"} 2`,
		`coevo_run_seconds_count{run="analyze"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic output: a second exposition is byte-identical.
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("exposition is not stable across calls")
	}
	// HELP/TYPE emitted once per family even with many labelled series.
	if n := strings.Count(out, "# TYPE coevo_stage_seconds_total counter"); n != 1 {
		t.Errorf("TYPE emitted %d times for the labelled family", n)
	}
	// Buckets list in ascending le order, +Inf last — not lexically.
	ordered := []string{`le="0.1"`, `le="1"`, `le="+Inf"`}
	last := -1
	for _, le := range ordered {
		at := strings.Index(out, "coevo_task_seconds_bucket{"+le)
		if at < 0 || at < last {
			t.Errorf("bucket %s out of order (at %d, prev %d)", le, at, last)
		}
		last = at
	}
}

// TestExpositionConformance pins the Prometheus text-format contract:
// label values escape exactly \, " and newline (not Go %q escaping),
// families list in sorted order, and histogram buckets expose ascending
// with a final +Inf.
func TestExpositionConformance(t *testing.T) {
	reg := NewRegistry()
	// Hostile label values: a backslash, a quote, a newline, and a tab.
	// The first three must escape per the exposition format; the tab must
	// pass through raw (Go's %q would corrupt it into a \t escape the
	// format does not define).
	reg.Counter(Label("coevo_stage_seconds_total", "stage", `load\dir`), "h").Add(1)
	reg.Counter(Label("coevo_stage_seconds_total", "stage", `say "hi"`), "h").Add(2)
	reg.Counter(Label("coevo_stage_seconds_total", "stage", "two\nlines"), "h").Add(3)
	reg.Counter(Label("coevo_stage_seconds_total", "stage", "tab\there"), "h").Add(4)
	reg.Gauge("coevo_alpha", "first family").Set(1)
	reg.Counter("coevo_zeta_total", "last family").Inc()
	reg.Histogram("coevo_lat_seconds", "latency", []float64{0.5, 10, 2}).Observe(1)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`coevo_stage_seconds_total{stage="load\\dir"} 1`,
		`coevo_stage_seconds_total{stage="say \"hi\""} 2`,
		`coevo_stage_seconds_total{stage="two\nlines"} 3`,
		"coevo_stage_seconds_total{stage=\"tab\there\"} 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// No sample line may contain a raw newline inside its label part:
	// every non-comment line must be "<series> <value>".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") == 0 {
			t.Errorf("torn sample line (unescaped newline upstream?): %q", line)
		}
	}
	// Families appear in sorted order.
	var fams []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(fams) {
		t.Errorf("families not sorted: %v", fams)
	}
	// Buckets ascend and end with +Inf even though the bounds were
	// registered unsorted-looking lexically ("10" < "2" as strings).
	idx := func(sub string) int { return strings.Index(out, sub) }
	b05 := idx(`coevo_lat_seconds_bucket{le="0.5"}`)
	b2 := idx(`coevo_lat_seconds_bucket{le="2"}`)
	b10 := idx(`coevo_lat_seconds_bucket{le="10"}`)
	bInf := idx(`coevo_lat_seconds_bucket{le="+Inf"}`)
	if b05 < 0 || b2 < 0 || b10 < 0 || bInf < 0 || !(b05 < b2 && b2 < b10 && b10 < bInf) {
		t.Errorf("bucket order wrong (offsets %d %d %d %d):\n%s", b05, b2, b10, bInf, out)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(3)
	reg.Gauge("g", "").Set(7)
	reg.CounterFunc("s_total", "", func() float64 { return 11 })
	reg.Histogram("h_seconds", "", []float64{1}).Observe(0.5)

	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"c_total":                     3,
		"g":                           7,
		"s_total":                     11,
		"h_seconds_sum":               0.5,
		"h_seconds_count":             1,
		`h_seconds_bucket{le="1"}`:    1,
		`h_seconds_bucket{le="+Inf"}`: 1,
	} {
		if got, ok := snap[name]; !ok || got != want {
			t.Errorf("snapshot[%q] = %v (present %v), want %v", name, got, ok, want)
		}
	}
	var nilReg *Registry
	if snap := nilReg.Snapshot(); len(snap) != 0 {
		t.Errorf("nil registry snapshot = %v", snap)
	}
}

// TestInstrumentsConcurrent hammers the shared instruments from many
// goroutines; run under -race (make verify does) this pins the lock-free
// paths.
func TestInstrumentsConcurrent(t *testing.T) {
	o := New(Options{Trace: true})
	reg := o.Metrics()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_seconds", "", DurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				o.RecordSpan("task", w+1, time.Now(), time.Microsecond)
				// Interleave get-or-create with updates.
				reg.Counter("c_total", "").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if got := g.Value(); got != 4000 {
		t.Errorf("gauge = %v, want 4000", got)
	}
	if got := h.Count(); got != 4000 {
		t.Errorf("histogram count = %v, want 4000", got)
	}
	if got := o.SpanCount(); got != 4000 {
		t.Errorf("spans = %d, want 4000", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestProfilingHooks(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i % 7
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil {
		t.Errorf("stop must be idempotent: %v", err)
	}
	if st, err := os.Stat(cpu); err != nil || st.Size() == 0 {
		t.Errorf("cpu profile not written: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatalf("WriteHeapProfile: %v", err)
	}
	if st, err := os.Stat(heap); err != nil || st.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}

	if _, err := StartCPUProfile(filepath.Join(dir, "missing", "cpu.pprof")); err == nil {
		t.Error("unwritable cpu profile path should fail")
	}
	if err := WriteHeapProfile(filepath.Join(dir, "missing", "heap.pprof")); err == nil {
		t.Error("unwritable heap profile path should fail")
	}
}
