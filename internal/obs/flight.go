package obs

// The flight recorder: a fixed-size, lock-free ring of recent events —
// the service's black box. Producers (the HTTP layer, the job queue,
// the engine workers) append with one atomic counter bump and one
// atomic pointer store; there is no lock to contend on and a slow
// reader can never stall a writer. When a job fails, the correlated
// slice of the ring (same trace id or job id) is dumped next to the
// job record, so the diagnosis ships with the failure instead of
// having to be reconstructed from logs.

import (
	"sort"
	"sync/atomic"
	"time"
)

// FlightEvent is one ring entry.
type FlightEvent struct {
	// Seq is the event's global sequence number (1-based, assigned by
	// Record); the ring holds the highest-Seq window.
	Seq  uint64    `json:"seq"`
	When time.Time `json:"when"`
	// Source names the producing subsystem: "http", "jobs" or "engine".
	Source string `json:"source"`
	// Kind classifies the event ("job-started", "task-failed", ...).
	Kind    string `json:"kind"`
	TraceID string `json:"trace_id,omitempty"`
	JobID   string `json:"job_id,omitempty"`
	// Name labels the unit of work (a task name, a route).
	Name string `json:"name,omitempty"`
	// Detail carries the payload (an error message, a status code).
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is the ring. Construct with NewFlightRecorder; a nil
// *FlightRecorder is a valid no-op, so producers record unconditionally
// and an unobserved process pays one nil check.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEvent]
	mask  uint64
	head  atomic.Uint64
}

// DefaultFlightEvents is the ring capacity used when none is given.
const DefaultFlightEvents = 4096

// NewFlightRecorder builds a ring holding the most recent size events
// (rounded up to a power of two, minimum 64).
func NewFlightRecorder(size int) *FlightRecorder {
	n := 64
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEvent], n), mask: uint64(n - 1)}
}

// Record appends one event, overwriting the oldest entry once the ring
// is full. The sequence number and (when unset) timestamp are stamped
// here. Safe on nil and for concurrent use.
func (f *FlightRecorder) Record(e FlightEvent) {
	if f == nil {
		return
	}
	if e.When.IsZero() {
		e.When = time.Now().UTC()
	}
	seq := f.head.Add(1)
	e.Seq = seq
	f.slots[(seq-1)&f.mask].Store(&e)
}

// Len reports how many events have ever been recorded (not the ring's
// current occupancy). Safe on nil.
func (f *FlightRecorder) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.head.Load()
}

// Cap reports the ring capacity. Safe on nil.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Snapshot returns the ring's current contents in sequence order. The
// copy is taken slot by slot with atomic loads, so it is safe against
// concurrent writers; an entry being overwritten mid-snapshot appears
// as either its old or new value, never torn. Safe on nil.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Correlated returns the snapshot filtered to events matching the given
// trace id or job id (either match suffices; empty arguments never
// match). Safe on nil.
func (f *FlightRecorder) Correlated(traceID, jobID string) []FlightEvent {
	all := f.Snapshot()
	out := make([]FlightEvent, 0, len(all))
	for _, e := range all {
		if (traceID != "" && e.TraceID == traceID) || (jobID != "" && e.JobID == jobID) {
			out = append(out, e)
		}
	}
	return out
}
