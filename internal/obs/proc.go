package obs

import (
	"runtime"
	"sync/atomic"
)

// ProcStats tracks the process's heap through sampled
// runtime.ReadMemStats reads: the live heap at the last sample, a
// high-water mark across samples, and the completed GC cycle count. The
// peak is only as fine-grained as the sampling — callers sample at task
// boundaries and exposition time, so short intra-task spikes between
// samples can go unrecorded.
//
// All methods are safe for concurrent use and no-ops on a nil *ProcStats,
// matching the zero-cost contract of a nil Observer.
type ProcStats struct {
	alloc atomic.Uint64 // live heap bytes at last sample
	peak  atomic.Uint64 // max sampled live heap bytes
	gc    atomic.Uint64 // completed GC cycles at last sample
}

// Sample reads the runtime memory statistics, updates the tracked
// values and returns the live heap size in bytes.
func (p *ProcStats) Sample() uint64 {
	if p == nil {
		return 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.alloc.Store(ms.HeapAlloc)
	p.gc.Store(uint64(ms.NumGC))
	for {
		cur := p.peak.Load()
		if ms.HeapAlloc <= cur || p.peak.CompareAndSwap(cur, ms.HeapAlloc) {
			break
		}
	}
	return ms.HeapAlloc
}

// Alloc returns the live heap bytes recorded by the last Sample.
func (p *ProcStats) Alloc() uint64 {
	if p == nil {
		return 0
	}
	return p.alloc.Load()
}

// Peak returns the largest live heap any Sample has observed since start
// (or the last Reset).
func (p *ProcStats) Peak() uint64 {
	if p == nil {
		return 0
	}
	return p.peak.Load()
}

// GCCycles returns the completed GC cycle count at the last Sample.
func (p *ProcStats) GCCycles() uint64 {
	if p == nil {
		return 0
	}
	return p.gc.Load()
}

// Reset re-arms the peak watermark at the current live heap and returns
// it — how a benchmark isolates one phase's peak from the previous
// phase's residue (typically after a runtime.GC()).
func (p *ProcStats) Reset() uint64 {
	if p == nil {
		return 0
	}
	p.peak.Store(0)
	return p.Sample()
}

// RegisterProcMetrics registers the process-memory metrics on reg —
// coevo_proc_heap_alloc_bytes, coevo_proc_heap_peak_bytes and
// coevo_proc_gc_total — and returns the ProcStats feeding them. The
// gauges re-sample at exposition time, so a /metrics scrape always sees
// the live heap, while callers may also Sample at their own cadence
// (e.g. per completed task) to sharpen the peak. A nil registry returns
// a nil ProcStats, on which every method is a no-op.
func RegisterProcMetrics(reg *Registry) *ProcStats {
	if reg == nil {
		return nil
	}
	p := &ProcStats{}
	p.Sample()
	reg.GaugeFunc("coevo_proc_heap_alloc_bytes",
		"Live heap bytes at the most recent sample (re-sampled at scrape).",
		func() float64 { return float64(p.Sample()) })
	reg.GaugeFunc("coevo_proc_heap_peak_bytes",
		"High-water mark of sampled live heap bytes.",
		func() float64 { p.Sample(); return float64(p.Peak()) })
	reg.CounterFunc("coevo_proc_gc_total",
		"Completed garbage-collection cycles at the most recent sample.",
		func() float64 { p.Sample(); return float64(p.GCCycles()) })
	return p
}
