// Package obs is the study pipeline's unified observability layer: one
// Observer bundling hierarchical spans with a Chrome trace-event JSON
// exporter, a metrics registry of counters, gauges and histograms with
// Prometheus-style text exposition, structured logging on log/slog, and
// CPU/heap profiling hooks.
//
// The package sits below every other internal package (it imports only
// the standard library), so the engine, the cache, the corpus generator
// and the study can all report into the same Observer without layering
// cycles. A single *Observer threads through study.Options, corpus.Config,
// cache.Options and engine.Options; the CLI surfaces it as -trace,
// -log-level, -cpuprofile/-memprofile and the unified -metrics report.
//
// Every method is safe on a nil *Observer (and on the nil Span, Registry,
// Counter, Gauge and Histogram it hands out), degrading to a no-op —
// mirroring the nil-cache idiom, so instrumented pipeline code runs
// unconditionally and an unobserved run pays only a nil check. Observability
// never touches study output: artifacts are byte-identical with the
// Observer on or off.
package obs

import (
	"context"
	"io"
	"log/slog"
	"time"
)

// Options configures an Observer. The zero value enables the metrics
// registry only (no logging, no tracing).
type Options struct {
	// LogWriter, when non-nil, enables structured logging to it (a
	// slog.TextHandler at LogLevel). Ignored when Logger is set.
	LogWriter io.Writer
	// LogLevel is the minimum level for LogWriter (default slog.LevelInfo).
	LogLevel slog.Leveler
	// Logger, when non-nil, is used verbatim for structured logging.
	Logger *slog.Logger
	// Trace enables span recording for WriteTrace.
	Trace bool
	// FlightEvents, when > 0, enables the flight recorder with a ring of
	// (at least) that many recent events.
	FlightEvents int
}

// Observer is the unified observability handle: spans, metrics, logs and
// profiles behind one type. Construct with New; a nil *Observer is a
// valid zero-cost no-op observer.
type Observer struct {
	logger *slog.Logger
	reg    *Registry
	tracer *tracer
	flight *FlightRecorder
}

// New builds an Observer from opts.
func New(opts Options) *Observer {
	o := &Observer{reg: NewRegistry()}
	switch {
	case opts.Logger != nil:
		o.logger = opts.Logger
	case opts.LogWriter != nil:
		level := opts.LogLevel
		if level == nil {
			level = slog.LevelInfo
		}
		o.logger = slog.New(slog.NewTextHandler(opts.LogWriter, &slog.HandlerOptions{Level: level}))
	default:
		o.logger = discardLogger
	}
	if opts.Trace {
		o.tracer = newTracer(time.Now())
	}
	if opts.FlightEvents > 0 {
		o.flight = NewFlightRecorder(opts.FlightEvents)
	}
	return o
}

// discardHandler drops every record without formatting it.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var discardLogger = slog.New(discardHandler{})

// Logger returns the structured logger. Never nil: a nil (or log-less)
// Observer returns a logger whose handler rejects every level before any
// formatting happens.
func (o *Observer) Logger() *slog.Logger {
	if o == nil || o.logger == nil {
		return discardLogger
	}
	return o.logger
}

// Metrics returns the metrics registry. A nil Observer returns a nil
// *Registry, whose every method is itself a safe no-op.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracing reports whether spans are being recorded — callers can skip
// building span metadata when they are not.
func (o *Observer) Tracing() bool { return o != nil && o.tracer != nil }

// Flight returns the flight recorder, or nil when none was enabled.
// Callers on hot paths should keep the returned pointer and nil-check
// it before building event payloads.
func (o *Observer) Flight() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight
}
