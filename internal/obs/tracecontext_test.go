package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const span = "00f067aa0ba902b7"
	valid := "00-" + trace + "-" + span + "-01"

	tc, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", valid)
	}
	if tc.TraceID != trace || tc.SpanID != span || tc.Flags != 0x01 {
		t.Errorf("parsed %+v", tc)
	}
	if got := tc.Traceparent(); got != valid {
		t.Errorf("roundtrip = %q, want %q", got, valid)
	}

	// Per the spec, higher versions must still be readable as version 00,
	// and may carry trailing fields.
	if _, ok := ParseTraceparent("cc-" + trace + "-" + span + "-01-extra-stuff"); !ok {
		t.Error("future version with extra fields should parse")
	}
	if tc, ok := ParseTraceparent("  " + valid + "  "); !ok || tc.TraceID != trace {
		t.Error("surrounding whitespace should be tolerated")
	}

	invalid := []string{
		"",
		"garbage",
		"00-" + trace + "-" + span,         // missing flags
		"ff-" + trace + "-" + span + "-01", // version ff reserved
		"00-" + strings.Repeat("0", 32) + "-" + span + "-01",  // all-zero trace id
		"00-" + trace + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"00-" + strings.ToUpper(trace) + "-" + span + "-01",   // uppercase hex
		"00-" + trace[:31] + "-" + span + "-01",               // short trace id
		"00-" + trace + "-" + span + "-1",                     // short flags
		"0-" + trace + "-" + span + "-01",                     // short version
	}
	for _, s := range invalid {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted an invalid header", s)
		}
	}
}

func TestNewChildResume(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("NewTraceContext produced invalid context %+v", tc)
	}
	if other := NewTraceContext(); other.TraceID == tc.TraceID {
		t.Error("two fresh traces share a trace id")
	}

	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("Child changed the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Error("Child kept the parent span id")
	}
	if !child.Valid() {
		t.Errorf("child invalid: %+v", child)
	}

	resumed := ResumeTrace(tc.TraceID)
	if resumed.TraceID != tc.TraceID || !resumed.Valid() {
		t.Errorf("ResumeTrace(%q) = %+v", tc.TraceID, resumed)
	}
	// An unusable stored id must still yield a working identity.
	if fresh := ResumeTrace("not-a-trace-id"); !fresh.Valid() {
		t.Errorf("ResumeTrace on garbage = %+v, want a fresh valid trace", fresh)
	}
}

func TestTraceContextThroughContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceContextFrom(ctx); ok {
		t.Error("empty context should carry no trace")
	}
	if got := TraceIDFrom(ctx); got != "" {
		t.Errorf("TraceIDFrom(empty) = %q", got)
	}
	tc := NewTraceContext()
	ctx = WithTraceContext(ctx, tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Errorf("TraceContextFrom = %+v, %v", got, ok)
	}
	if id := TraceIDFrom(ctx); id != tc.TraceID {
		t.Errorf("TraceIDFrom = %q, want %q", id, tc.TraceID)
	}
}
