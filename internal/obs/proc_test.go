package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestProcStatsNilSafe(t *testing.T) {
	var p *ProcStats
	if p.Sample() != 0 || p.Alloc() != 0 || p.Peak() != 0 || p.GCCycles() != 0 || p.Reset() != 0 {
		t.Fatal("nil ProcStats methods must be zero no-ops")
	}
	if got := RegisterProcMetrics(nil); got != nil {
		t.Fatalf("RegisterProcMetrics(nil) = %v, want nil", got)
	}
}

func TestProcStatsSampleAndPeak(t *testing.T) {
	p := &ProcStats{}
	a := p.Sample()
	if a == 0 {
		t.Fatal("Sample returned 0 live heap")
	}
	if p.Alloc() != a {
		t.Fatalf("Alloc = %d, want last sample %d", p.Alloc(), a)
	}
	if p.Peak() < a {
		t.Fatalf("Peak = %d < sampled %d", p.Peak(), a)
	}
	// Grow the heap and re-sample: the peak must ratchet up.
	ballast := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		ballast = append(ballast, make([]byte, 1<<20))
	}
	grown := p.Sample()
	if grown <= a {
		t.Skipf("heap did not grow under ballast (%d -> %d)", a, grown)
	}
	if p.Peak() < grown {
		t.Fatalf("Peak = %d did not track grown heap %d", p.Peak(), grown)
	}
	_ = ballast
	// Reset re-arms the watermark at the current live heap.
	cur := p.Reset()
	if p.Peak() != cur {
		t.Fatalf("after Reset, Peak = %d, want current %d", p.Peak(), cur)
	}
}

func TestProcStatsConcurrentSample(t *testing.T) {
	p := &ProcStats{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				p.Sample()
			}
		}()
	}
	wg.Wait()
	if p.Peak() < p.Alloc() && p.Alloc() != 0 {
		// Peak may lag a very recent alloc sample, but never stays below
		// a value some Sample call stored as both alloc and peak candidate.
		t.Logf("peak %d, alloc %d", p.Peak(), p.Alloc())
	}
	if p.Peak() == 0 {
		t.Fatal("no sample recorded a peak")
	}
}

func TestRegisterProcMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	p := RegisterProcMetrics(reg)
	if p == nil {
		t.Fatal("RegisterProcMetrics returned nil for a live registry")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"coevo_proc_heap_alloc_bytes",
		"coevo_proc_heap_peak_bytes",
		"coevo_proc_gc_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
	snap := reg.Snapshot()
	if snap["coevo_proc_heap_alloc_bytes"] <= 0 {
		t.Errorf("snapshot heap_alloc = %v, want > 0", snap["coevo_proc_heap_alloc_bytes"])
	}
	if snap["coevo_proc_heap_peak_bytes"] <= 0 {
		t.Errorf("snapshot heap_peak = %v, want > 0", snap["coevo_proc_heap_peak_bytes"])
	}
	// The two gauges sample independently during a snapshot, so the peak
	// captured first may trail an alloc sampled later; the peak ≥ alloc
	// invariant holds on the ProcStats state after any single sample.
	p.Sample()
	if p.Peak() < p.Alloc() {
		t.Errorf("after sample, peak %d < alloc %d", p.Peak(), p.Alloc())
	}
}
