package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a metrics registry of counters, gauges and histograms,
// exposed in the Prometheus text format. Metric names follow the
// Prometheus conventions (snake_case, unit-suffixed, optional {label="v"}
// pairs built with Label); instruments are get-or-create, so independent
// subsystems can share one registry without coordination.
//
// All methods are safe for concurrent use and safe on a nil *Registry —
// a nil registry hands out nil instruments whose operations are no-ops,
// keeping the zero-cost contract of a nil Observer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]sampledMetric
	help     map[string]string // metric family -> HELP text
	types    map[string]string // metric family -> TYPE
}

// sampledMetric is a metric read through a callback at exposition time —
// how the cache's atomic counters join the registry without double
// bookkeeping.
type sampledMetric struct {
	kind string // "counter" or "gauge"
	f    func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]sampledMetric{},
		help:     map[string]string{},
		types:    map[string]string{},
	}
}

// Label renders name{k1="v1",k2="v2"} from key/value pairs — the one way
// labelled series are named in this registry. Label values are escaped
// per the Prometheus text exposition format, so stage and scope names
// containing backslashes, quotes or newlines produce scrapeable output.
func Label(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value for the Prometheus text
// exposition format, whose only escape sequences are \\, \" and \n.
// (Go's %q is not a substitute: it emits escapes like \t and \x{7f} forms
// that exposition parsers reject.)
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// histSeries names one exposition series of a histogram whose registered
// name may itself carry labels: the suffix attaches to the base name, and
// a non-empty le bound merges into the existing label set.
func histSeries(name, suffix, le string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
	}
	switch {
	case le == "":
		return base + suffix + labels
	case labels == "":
		return Label(base+suffix, "le", le)
	default:
		return base + suffix + labels[:len(labels)-1] + `,le="` + le + `"}`
	}
}

// family strips the label part of a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// describe records HELP/TYPE for a family on first registration.
func (r *Registry) describe(name, typ, help string) {
	fam := family(name)
	if _, ok := r.types[fam]; !ok {
		r.types[fam] = typ
		r.help[fam] = help
	}
}

// Counter returns the named monotonically-increasing counter, creating it
// on first use. help is recorded on creation and ignored afterwards.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.describe(name, "counter", help)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.describe(name, "gauge", help)
	}
	return g
}

// Histogram returns the named histogram with the given upper bucket
// bounds, creating it on first use (later bounds are ignored). Bounds are
// sorted ascending at registration, so exposition's cumulative bucket
// counts are correct regardless of the order the caller listed them in.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), buckets...)}
		sort.Float64s(h.bounds)
		h.counts = make([]uint64, len(h.bounds))
		r.hists[name] = h
		r.describe(name, "histogram", help)
	}
	return h
}

// CounterFunc registers a counter sampled through f at exposition time.
// Registering the same name again replaces the callback.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = sampledMetric{kind: "counter", f: f}
	r.describe(name, "counter", help)
}

// GaugeFunc registers a gauge sampled through f at exposition time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = sampledMetric{kind: "gauge", f: f}
	r.describe(name, "gauge", help)
}

// Counter is a float64 counter with atomic lock-free Add.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v (negative v is ignored). Safe on nil.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 gauge with atomic Set/Add.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Safe on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (which may be negative). Safe on nil.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets plus a
// +Inf overflow, tracking sum and count for Prometheus exposition.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	inf    uint64
	sum    float64
	count  uint64
}

// Observe records one value. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// from 1ms to 30s.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// series is one exposable (name, value) pair. Bucket series of one
// histogram share a sort key and order by their le bound, so exposition
// lists buckets ascending rather than lexically ("0.5" before "10").
type series struct {
	name  string
	key   string  // sort group; bucket series share their histogram's
	order float64 // ascending within a group (the le bound for buckets)
	value float64
}

// gather flattens every registered metric into sorted (name, value)
// series — the shared core of WritePrometheus and Snapshot. Sampled
// metrics (CounterFunc/GaugeFunc) are read at call time, outside the
// registry lock. help and types map metric families to their metadata.
func (r *Registry) gather() (flat []series, help, types map[string]string) {
	r.mu.Lock()
	plain := func(name string, v float64) series { return series{name: name, key: name, value: v} }
	for name, c := range r.counters {
		flat = append(flat, plain(name, c.Value()))
	}
	for name, g := range r.gauges {
		flat = append(flat, plain(name, g.Value()))
	}
	type histCopy struct {
		name   string
		bounds []float64
		counts []uint64
		inf    uint64
		sum    float64
		count  uint64
	}
	var hists []histCopy
	for name, h := range r.hists {
		h.mu.Lock()
		hists = append(hists, histCopy{name, h.bounds, append([]uint64(nil), h.counts...), h.inf, h.sum, h.count})
		h.mu.Unlock()
	}
	sampled := make(map[string]sampledMetric, len(r.funcs))
	for name, sm := range r.funcs {
		sampled[name] = sm
	}
	help = make(map[string]string, len(r.help))
	types = make(map[string]string, len(r.types))
	for k, v := range r.help {
		help[k] = v
	}
	for k, v := range r.types {
		types[k] = v
	}
	r.mu.Unlock()

	// Sample the callbacks outside the registry lock: they may themselves
	// take locks (e.g. a cache snapshot).
	for name, sm := range sampled {
		flat = append(flat, plain(name, sm.f()))
	}
	for _, h := range hists {
		bucketKey := histSeries(h.name, "_bucket", "")
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			flat = append(flat, series{histSeries(h.name, "_bucket", formatFloat(b)), bucketKey, b, float64(cum)})
		}
		flat = append(flat, series{histSeries(h.name, "_bucket", "+Inf"), bucketKey, math.Inf(1), float64(cum + h.inf)})
		flat = append(flat, plain(histSeries(h.name, "_sum", ""), h.sum))
		flat = append(flat, plain(histSeries(h.name, "_count", ""), float64(h.count)))
	}
	sort.Slice(flat, func(a, b int) bool {
		if flat[a].key != flat[b].key {
			return flat[a].key < flat[b].key
		}
		return flat[a].order < flat[b].order
	})
	return flat, help, types
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format, sorted by series name so output is stable. Sampled
// metrics (CounterFunc/GaugeFunc) are read at call time. Safe on nil
// (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	flat, help, types := r.gather()

	var b strings.Builder
	seen := map[string]bool{}
	for _, s := range flat {
		fam := family(s.name)
		// Histogram series share the family of their base name.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, suffix); base != fam {
				if _, ok := types[base]; ok {
					fam = base
					break
				}
			}
		}
		if !seen[fam] {
			seen[fam] = true
			if h := help[fam]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", fam, h)
			}
			if t := types[fam]; t != "" {
				fmt.Fprintf(&b, "# TYPE %s %s\n", fam, t)
			}
		}
		fmt.Fprintf(&b, "%s %s\n", s.name, formatFloat(s.value))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot reads every registered series — counters, gauges, sampled
// callbacks, and each histogram's _bucket/_sum/_count expansion — into a
// flat series-name → value map: the registry's final state as the run
// ledger persists it. Safe on nil (returns an empty map).
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	if r == nil {
		return out
	}
	flat, _, _ := r.gather()
	for _, s := range flat {
		out[s.name] = s.value
	}
	return out
}

// formatFloat renders a metric value the way Prometheus text format
// expects: integral values without an exponent or trailing zeros.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
