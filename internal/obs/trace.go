package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// The span model: a trace is a set of lanes (Chrome trace "threads").
// Lane 0 is the orchestration lane carrying the run-level phase spans
// (run → generate/analyze/render); the execution engine puts each worker
// on its own lane, so a project's task span and its nested stage spans
// (parse/diff/measure, extract, cache...) stack up inside the worker lane
// exactly the way chrome://tracing and Perfetto nest overlapping
// durations on one thread.

// tracer accumulates completed spans for the Chrome trace export.
type tracer struct {
	epoch time.Time

	mu      sync.Mutex
	events  []spanEvent
	maxLane int
}

// spanEvent is one completed span.
type spanEvent struct {
	name  string
	lane  int
	start time.Time
	dur   time.Duration
	args  map[string]string
}

func newTracer(epoch time.Time) *tracer { return &tracer{epoch: epoch} }

func (t *tracer) record(e spanEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, e)
	if e.lane > t.maxLane {
		t.maxLane = e.lane
	}
}

// Span is one open interval of work. Obtain one from StartSpan and close
// it with End; a nil Span is a valid no-op.
type Span struct {
	o     *Observer
	name  string
	lane  int
	start time.Time
	args  map[string]string
	ended bool
}

// spanKey carries the innermost open span through the context.
type spanKey struct{}

// SpanFromContext returns the innermost open span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name as a child of the span in ctx (same
// lane; lane 0 when ctx carries none) and returns a derived context
// carrying it. With tracing disabled it returns ctx unchanged and a nil
// Span, so callers always pay at most a nil check.
func (o *Observer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !o.Tracing() {
		return ctx, nil
	}
	lane := 0
	if parent := SpanFromContext(ctx); parent != nil {
		lane = parent.lane
	}
	s := &Span{o: o, name: name, lane: lane, start: time.Now()}
	// Correlated requests stamp their trace id on every span, so the
	// exported timeline can be filtered down to one submission.
	if id := TraceIDFrom(ctx); id != "" {
		s.SetArg("trace_id", id)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetArg attaches a key/value pair shown in the trace viewer's args pane.
func (s *Span) SetArg(key, value string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[key] = value
}

// End closes the span and records it. Safe on nil and idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.o.tracer.record(spanEvent{name: s.name, lane: s.lane, start: s.start,
		dur: time.Since(s.start), args: s.args})
}

// RecordSpan records an already-measured interval on an explicit lane —
// the post-hoc path the execution engine uses to convert its per-task
// stage timings into nested spans. kv lists args as key/value pairs.
func (o *Observer) RecordSpan(name string, lane int, start time.Time, d time.Duration, kv ...string) {
	if !o.Tracing() {
		return
	}
	var args map[string]string
	if len(kv) >= 2 {
		args = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			args[kv[i]] = kv[i+1]
		}
	}
	o.tracer.record(spanEvent{name: name, lane: lane, start: start, dur: d, args: args})
}

// chromeEvent is one entry of the exported trace-event JSON.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteTrace exports every recorded span as Chrome trace-event JSON
// (loadable by chrome://tracing and Perfetto). Timestamps are
// microseconds relative to the Observer's creation; lanes become
// named threads of one process. With tracing disabled it writes an
// empty (still loadable) trace.
func (o *Observer) WriteTrace(w io.Writer) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if o.Tracing() {
		t := o.tracer
		t.mu.Lock()
		events := append([]spanEvent(nil), t.events...)
		maxLane := t.maxLane
		t.mu.Unlock()
		sort.SliceStable(events, func(a, b int) bool {
			if !events[a].start.Equal(events[b].start) {
				return events[a].start.Before(events[b].start)
			}
			return events[a].lane < events[b].lane
		})
		for lane := 0; lane <= maxLane; lane++ {
			name := "orchestration"
			if lane > 0 {
				name = fmt.Sprintf("worker-%02d", lane)
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
				Args: map[string]string{"name": name},
			})
		}
		for _, e := range events {
			// Clamp to the epoch: a span whose measured start predates the
			// Observer would otherwise render at a negative timestamp, which
			// trace viewers handle poorly.
			ts := float64(e.start.Sub(t.epoch).Nanoseconds()) / 1e3
			if ts < 0 {
				ts = 0
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: e.name, Cat: "coevo", Ph: "X", Pid: 1, Tid: e.lane,
				Ts:   ts,
				Dur:  float64(e.dur.Nanoseconds()) / 1e3,
				Args: e.args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// SpanCount returns the number of spans recorded so far (0 when tracing
// is off) — a cheap liveness probe for tests and progress reporting.
func (o *Observer) SpanCount() int {
	if !o.Tracing() {
		return 0
	}
	o.tracer.mu.Lock()
	defer o.tracer.mu.Unlock()
	return len(o.tracer.events)
}
