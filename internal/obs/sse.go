package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// SSEEvent is one server-sent event: an event name (empty = the unnamed
// "message" event) and one JSON document as its data line.
type SSEEvent struct {
	Event string
	Data  []byte
}

// WriteSSE streams events to w as server-sent events until the request's
// context is done or the channel closes — the transport shared by the
// run-wide /progress feed and the job service's per-job event streams.
// The preamble (a comment line and retry hint, may be empty) is written
// before the first event so clients see the subscription confirmed
// immediately. Senders must never block: pair the channel with a
// bounded, drop-on-full producer (see sseHub).
func WriteSSE(w http.ResponseWriter, r *http.Request, preamble string, events <-chan SSEEvent) error {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return fmt.Errorf("obs: response writer cannot stream")
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	if preamble != "" {
		fmt.Fprint(w, preamble)
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return nil
		case msg, open := <-events:
			if !open {
				return nil // producer closed: stream over, disconnect the client
			}
			if msg.Event != "" {
				fmt.Fprintf(w, "event: %s\n", msg.Event)
			}
			fmt.Fprintf(w, "data: %s\n\n", msg.Data)
			flusher.Flush()
		}
	}
}

// sseHub fans published events out to every connected /progress client.
// Each client owns a buffered channel; a client that cannot keep up has
// events dropped (counted per client) rather than stalling the engine's
// event stream — live telemetry must never slow the run it watches.
type sseHub struct {
	mu      sync.Mutex
	closed  bool
	nextID  int
	clients map[int]*sseClient
}

// sseClient is one subscribed /progress connection.
type sseClient struct {
	ch      chan SSEEvent
	dropped int
}

// clientBuffer is the per-client event backlog; 256 events hold an entire
// 195-project study, so even a client that connects early and reads late
// sees every completion.
const clientBuffer = 256

func newSSEHub() *sseHub {
	return &sseHub{clients: map[int]*sseClient{}}
}

// subscribe registers a new client and returns its id and channel. The
// returned channel is closed when the hub shuts down.
func (h *sseHub) subscribe() (int, <-chan SSEEvent, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, nil, false
	}
	id := h.nextID
	h.nextID++
	c := &sseClient{ch: make(chan SSEEvent, clientBuffer)}
	h.clients[id] = c
	return id, c.ch, true
}

// unsubscribe removes a client; its channel is left to the garbage
// collector (the handler is the only reader).
func (h *sseHub) unsubscribe(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.clients, id)
}

// publish broadcasts one event, dropping it for clients whose buffer is
// full. It never blocks.
func (h *sseHub) publish(event string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	msg := SSEEvent{Event: event, Data: data}
	for _, c := range h.clients {
		select {
		case c.ch <- msg:
		default:
			c.dropped++
		}
	}
}

// close shuts the hub down: every client channel is closed (handlers
// drain and return) and later publishes become no-ops.
func (h *sseHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, c := range h.clients {
		close(c.ch)
		delete(h.clients, id)
	}
}

// clientCount reports the number of connected clients (a /metrics gauge).
func (h *sseHub) clientCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clients)
}

// Publish marshals payload to JSON and broadcasts it to every connected
// /progress client under the given SSE event name. Safe on a nil Server
// and never blocks: slow clients lose events instead of stalling the run.
func (s *Server) Publish(event string, payload any) {
	if s == nil {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		s.log.Warn("obs: SSE payload not marshallable", "event", event, "err", err)
		return
	}
	s.hub.publish(event, data)
}
