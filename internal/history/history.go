// Package history extracts the two raw histories the study compares for
// every project: the schema history (every version of the project's DDL
// file, parsed and diffed) and the project history (the number of files
// updated in every non-merge commit, as reported by
// `git log --name-status --no-merges --date=iso`).
package history

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"coevo/internal/cache"
	"coevo/internal/gitlog"
	"coevo/internal/heartbeat"
	"coevo/internal/schema"
	"coevo/internal/schemadiff"
	"coevo/internal/sqlddl"
	"coevo/internal/textdiff"
	"coevo/internal/vcs"
)

// Errors returned by the extractors.
var (
	ErrNoDDLFile = errors.New("history: no DDL file found")
	ErrEmptyRepo = errors.New("history: repository has no commits")
	ErrManyDDL   = errors.New("history: multiple candidate DDL files")
	ErrNoCreates = errors.New("history: DDL file never contains a CREATE TABLE")
)

// Options configures schema-history extraction.
type Options struct {
	// CountBirth treats the first version of the DDL file as activity (its
	// tables' attributes are born then). This is the study's convention: a
	// frozen schema completes 100% of its evolution at its birth month.
	// Disabling it reproduces the raw pairwise heartbeat of the upstream
	// data set, where only version-to-version change counts.
	CountBirth bool

	// Cache, when non-nil, memoizes the two hot extraction stages through
	// the content-addressed result cache: parsing a DDL version (keyed by
	// its raw bytes) and diffing a version pair (keyed by the two logical
	// schemas). Results are byte-identical with and without a cache.
	Cache *cache.Cache

	// Dialect selects the SQL dialect adapter used to parse every version.
	// The zero value (Generic) reproduces the historical pipeline exactly;
	// sqlddl.Auto detects the dialect per version from its content.
	Dialect sqlddl.Dialect
}

// DefaultOptions returns the study's configuration.
func DefaultOptions() Options { return Options{CountBirth: true} }

// SchemaVersion is one committed state of the DDL file.
type SchemaVersion struct {
	Commit *vcs.Commit
	// Raw is the file content at the commit (nil when Deleted).
	Raw []byte
	// Schema is the logical schema reconstructed from Raw (an empty schema
	// for a deleted or unparseable file).
	Schema *schema.Schema
	// Diagnostics collects lenient-parse and build warnings in their
	// legacy error form; Report carries the same problems structured.
	Diagnostics []error
	// Report is the structured parse outcome: resolved dialect, statement
	// accounting and coded diagnostics. Zero for deleted versions.
	Report schema.ParseReport
	// Deleted marks the version where the file was removed.
	Deleted bool
}

// When returns the commit time of the version.
func (v *SchemaVersion) When() time.Time { return v.Commit.When() }

// SchemaHistory is the parsed, diffed history of a project's DDL file.
type SchemaHistory struct {
	Path     string
	Versions []SchemaVersion
	// Deltas is aligned with Versions: Deltas[0] is the birth delta (from
	// the empty schema) and Deltas[i] compares version i-1 to i.
	Deltas []*schemadiff.Delta
	// NoOpCommits counts versions whose content was byte-identical to the
	// previous one — commits the substrate or the parser would otherwise
	// absorb silently. Surfaced in the parse-health report.
	NoOpCommits int
	opts        Options
}

// Activity returns the study's Activity for version i: attribute-level
// change volume relative to the previous version (or to the empty schema
// for i == 0 when birth counting is enabled).
func (h *SchemaHistory) Activity(i int) int {
	if i == 0 && !h.opts.CountBirth {
		return 0
	}
	return h.Deltas[i].TotalActivity()
}

// TotalActivity returns the lifetime Total Activity of the schema.
func (h *SchemaHistory) TotalActivity() int {
	total := 0
	for i := range h.Deltas {
		total += h.Activity(i)
	}
	return total
}

// ActiveCommits counts the versions whose delta carries logical change —
// the "active commits" of the paper's case study.
func (h *SchemaHistory) ActiveCommits() int {
	n := 0
	for i := range h.Deltas {
		if h.Activity(i) > 0 {
			n++
		}
	}
	return n
}

// CommitCount returns the number of versions (commits touching the file).
func (h *SchemaHistory) CommitCount() int { return len(h.Versions) }

// Events renders the history as dated activity events for heartbeat
// construction.
func (h *SchemaHistory) Events() []heartbeat.Event {
	events := make([]heartbeat.Event, 0, len(h.Versions))
	for i, v := range h.Versions {
		events = append(events, heartbeat.Event{When: v.When(), Amount: float64(h.Activity(i))})
	}
	return events
}

// Heartbeat builds the Monthly Schema Activity heartbeat spanning the
// schema's own lifetime.
func (h *SchemaHistory) Heartbeat() (*heartbeat.Heartbeat, error) {
	return heartbeat.FromEvents(h.Events())
}

// FinalSchema returns the last non-deleted schema state.
func (h *SchemaHistory) FinalSchema() *schema.Schema {
	for i := len(h.Versions) - 1; i >= 0; i-- {
		if !h.Versions[i].Deleted {
			return h.Versions[i].Schema
		}
	}
	return schema.New()
}

// ExtractSchemaHistory follows path through the repository's history,
// parsing every version leniently and diffing successive versions.
func ExtractSchemaHistory(repo *vcs.Repository, path string, opts Options) (*SchemaHistory, error) {
	if repo.CommitCount() == 0 {
		return nil, ErrEmptyRepo
	}
	return ExtractSchemaHistoryFromVersions(path, repo.FileVersions(path), opts)
}

// ExtractSchemaHistoryFromVersions builds the schema history from already
// listed file versions — the entry point for callers that walk the file
// history themselves (the study's cached pipeline lists versions once to
// address its result bundle, then extracts only on a cache miss).
func ExtractSchemaHistoryFromVersions(path string, fileVersions []vcs.FileVersion, opts Options) (*SchemaHistory, error) {
	if len(fileVersions) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoDDLFile, path)
	}
	h := &SchemaHistory{Path: path, opts: opts}
	schemas := make([]*schema.Schema, 0, len(fileVersions)+1)
	schemas = append(schemas, schema.New()) // the pre-birth empty schema
	anyCreate := false
	var prevRaw []byte
	havePrev := false
	for _, fv := range fileVersions {
		sv := SchemaVersion{Commit: fv.Commit, Raw: fv.Content, Deleted: fv.Deleted}
		if fv.Deleted {
			sv.Schema = schema.New()
		} else {
			if havePrev && bytes.Equal(prevRaw, fv.Content) {
				h.NoOpCommits++
			}
			prevRaw, havePrev = fv.Content, true
			s, rep := schema.ParseAndBuildCachedDialect(fv.Content, opts.Dialect, opts.Cache)
			sv.Schema = s
			sv.Report = rep
			sv.Diagnostics = rep.Errors()
			if s.TableCount() > 0 {
				anyCreate = true
			}
		}
		h.Versions = append(h.Versions, sv)
		schemas = append(schemas, sv.Schema)
	}
	if !anyCreate {
		return nil, fmt.Errorf("%w: %s", ErrNoCreates, path)
	}
	h.Deltas = schemadiff.SequenceCached(schemas, opts.Cache)
	return h, nil
}

// FindDDLPath locates the project's schema file: the unique .sql path ever
// committed. Multiple .sql files are resolved by preferring the one whose
// content contains CREATE TABLE in its first version; if that is still
// ambiguous, ErrManyDDL reports the candidates (the data set's elicitation
// keeps only single-file schema projects, so this mirrors its filter).
func FindDDLPath(repo *vcs.Repository) (string, error) {
	paths := map[string]bool{}
	for _, e := range repo.Log(vcs.LogOptions{Reverse: true}) {
		for _, ch := range e.Changes {
			if strings.HasSuffix(strings.ToLower(ch.Path), ".sql") {
				paths[ch.Path] = true
				if ch.OldPath != "" {
					delete(paths, ch.OldPath)
				}
			}
		}
	}
	switch len(paths) {
	case 0:
		return "", ErrNoDDLFile
	case 1:
		for p := range paths {
			return p, nil
		}
	}
	// Disambiguate by CREATE TABLE content.
	var withCreate []string
	for p := range paths {
		versions := repo.FileVersions(p)
		if len(versions) == 0 {
			continue
		}
		if firstVersionHasCreate(versions) {
			withCreate = append(withCreate, p)
		}
	}
	if len(withCreate) == 1 {
		return withCreate[0], nil
	}
	return "", fmt.Errorf("%w: %d candidates", ErrManyDDL, len(paths))
}

func firstVersionHasCreate(versions []vcs.FileVersion) bool {
	for _, v := range versions {
		if v.Deleted {
			continue
		}
		s, _ := schema.ParseAndBuild(string(v.Content))
		return s.TableCount() > 0
	}
	return false
}

// ProjectCommit is one non-merge commit with its file-update count and,
// when extracted with line counting, its line churn.
type ProjectCommit struct {
	Hash  vcs.Hash
	When  time.Time
	Files int
	// Lines is the added+removed line churn of the commit; zero unless the
	// history was extracted with ExtractProjectHistoryWithLines.
	Lines int
}

// ProjectHistory is the file-update history of the whole project.
type ProjectHistory struct {
	Commits []ProjectCommit
	// MergesSkipped counts the merge commits excluded from the history.
	// They used to vanish silently; the parse-health report surfaces them
	// so a project's commit accounting is auditable.
	MergesSkipped int
}

// CommitCount returns the number of non-merge commits.
func (p *ProjectHistory) CommitCount() int { return len(p.Commits) }

// TotalFileUpdates sums the per-commit changed-file counts.
func (p *ProjectHistory) TotalFileUpdates() int {
	total := 0
	for _, c := range p.Commits {
		total += c.Files
	}
	return total
}

// Span returns the first and last commit times.
func (p *ProjectHistory) Span() (first, last time.Time) {
	if len(p.Commits) == 0 {
		return
	}
	return p.Commits[0].When, p.Commits[len(p.Commits)-1].When
}

// DurationMonths returns the project's lifetime in whole months (the
// paper's Project Update Period, expressed as last month minus first
// month).
func (p *ProjectHistory) DurationMonths() int {
	if len(p.Commits) == 0 {
		return 0
	}
	first, last := p.Span()
	return int(heartbeat.MonthOf(last) - heartbeat.MonthOf(first))
}

// Events renders the history as dated activity events.
func (p *ProjectHistory) Events() []heartbeat.Event {
	events := make([]heartbeat.Event, 0, len(p.Commits))
	for _, c := range p.Commits {
		events = append(events, heartbeat.Event{When: c.When, Amount: float64(c.Files)})
	}
	return events
}

// Heartbeat builds the Monthly Project Activity heartbeat.
func (p *ProjectHistory) Heartbeat() (*heartbeat.Heartbeat, error) {
	return heartbeat.FromEvents(p.Events())
}

// ExtractProjectHistory reads the repository's non-merge commit log and
// counts updated files per commit, oldest first.
func ExtractProjectHistory(repo *vcs.Repository) (*ProjectHistory, error) {
	if repo.CommitCount() == 0 {
		return nil, ErrEmptyRepo
	}
	entries := repo.Log(vcs.LogOptions{NoMerges: true, Reverse: true})
	p := &ProjectHistory{
		Commits:       make([]ProjectCommit, 0, len(entries)),
		MergesSkipped: repo.CommitCount() - len(entries),
	}
	for _, e := range entries {
		p.Commits = append(p.Commits, ProjectCommit{
			Hash:  e.Commit.Hash,
			When:  e.Commit.When(),
			Files: len(e.Changes),
		})
	}
	return p, nil
}

// ProjectHistoryFromLog builds a project history from parsed `git log`
// entries (newest-first, as git emits them), enabling ingestion of real
// repositories via their textual log. Merge entries are skipped.
func ProjectHistoryFromLog(entries []gitlog.Entry) (*ProjectHistory, error) {
	if len(entries) == 0 {
		return nil, ErrEmptyRepo
	}
	p := &ProjectHistory{}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if e.IsMerge() {
			p.MergesSkipped++
			continue
		}
		p.Commits = append(p.Commits, ProjectCommit{
			Hash:  vcs.Hash(e.Hash),
			When:  e.Date,
			Files: len(e.Changes),
		})
	}
	if len(p.Commits) == 0 {
		return nil, ErrEmptyRepo
	}
	return p, nil
}

// DatedContent is one externally-supplied version of a DDL file: its
// commit date and raw content. It feeds SchemaHistoryFromContents, the
// ingestion path for real repositories (export each version with
// `git show <commit>:<path>` into dated files).
type DatedContent struct {
	When    time.Time
	Content []byte
}

// SchemaHistoryFromContents builds a schema history from externally
// extracted file versions. Versions are sorted by date; identical
// consecutive contents are retained (they become inactive commits, exactly
// as a cosmetic edit would).
func SchemaHistoryFromContents(path string, versions []DatedContent, opts Options) (*SchemaHistory, error) {
	if len(versions) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoDDLFile, path)
	}
	sorted := append([]DatedContent(nil), versions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].When.Before(sorted[j].When) })

	// Count byte-identical consecutive versions up front: the replay below
	// perturbs their content to keep the substrate from absorbing them, so
	// the extraction itself can no longer see that they were no-ops.
	noOps := 0
	for i := 1; i < len(sorted); i++ {
		if bytes.Equal(sorted[i-1].Content, sorted[i].Content) {
			noOps++
		}
	}

	// Replay the versions into a throwaway repository so the extraction
	// path is byte-for-byte the one used for real repositories.
	repo := vcs.NewRepository("ingest")
	prev := []byte(nil)
	for i, v := range sorted {
		content := v.Content
		if prev != nil && string(prev) == string(content) {
			// The substrate skips no-op commits; force a distinct blob by
			// appending a newline so the version count is preserved, then
			// rely on the parser ignoring trailing whitespace.
			content = append(append([]byte(nil), content...), '\n')
		}
		repo.Stage(path, content)
		if _, err := repo.Commit(fmt.Sprintf("version %d", i), vcs.Signature{
			Name: "ingest", Email: "ingest@localhost", When: v.When,
		}); err != nil {
			return nil, fmt.Errorf("history: replaying version %d: %w", i, err)
		}
		prev = content
	}
	h, err := ExtractSchemaHistory(repo, path, opts)
	if err != nil {
		return nil, err
	}
	h.NoOpCommits = noOps
	return h, nil
}

// ExtractProjectHistoryWithLines reads the non-merge commit log and counts
// both updated files and line churn (lines added + removed) per commit —
// the "more precise unit of change" the paper's future work calls for.
// Line counting requires content access, so it only works against a vcs
// repository (not a textual git log).
func ExtractProjectHistoryWithLines(repo *vcs.Repository) (*ProjectHistory, error) {
	if repo.CommitCount() == 0 {
		return nil, ErrEmptyRepo
	}
	entries := repo.Log(vcs.LogOptions{NoMerges: true, Reverse: true})
	p := &ProjectHistory{
		Commits:       make([]ProjectCommit, 0, len(entries)),
		MergesSkipped: repo.CommitCount() - len(entries),
	}
	for _, e := range entries {
		lines := 0
		for _, ch := range e.Changes {
			var oldContent, newContent []byte
			if len(e.Commit.Parents) > 0 {
				oldPath := ch.Path
				if ch.Status == vcs.Renamed {
					oldPath = ch.OldPath
				}
				if c, err := repo.FileAt(e.Commit.Parents[0], oldPath); err == nil {
					oldContent = c
				}
			}
			if ch.Status != vcs.Deleted {
				if c, err := repo.FileAt(e.Commit.Hash, ch.Path); err == nil {
					newContent = c
				}
			}
			lines += textdiff.Diff(oldContent, newContent).Total()
		}
		p.Commits = append(p.Commits, ProjectCommit{
			Hash:  e.Commit.Hash,
			When:  e.Commit.When(),
			Files: len(e.Changes),
			Lines: lines,
		})
	}
	return p, nil
}

// LineEvents renders the history as line-churn events. Commits extracted
// without line counting contribute zero.
func (p *ProjectHistory) LineEvents() []heartbeat.Event {
	events := make([]heartbeat.Event, 0, len(p.Commits))
	for _, c := range p.Commits {
		events = append(events, heartbeat.Event{When: c.When, Amount: float64(c.Lines)})
	}
	return events
}

// LineHeartbeat builds the line-weighted Monthly Project Activity
// heartbeat.
func (p *ProjectHistory) LineHeartbeat() (*heartbeat.Heartbeat, error) {
	return heartbeat.FromEvents(p.LineEvents())
}

// TotalLineChurn sums the per-commit line churn.
func (p *ProjectHistory) TotalLineChurn() int {
	total := 0
	for _, c := range p.Commits {
		total += c.Lines
	}
	return total
}
