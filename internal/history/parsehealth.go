// Parse health: the per-project aggregate of what the recovering parser
// did to every version of the DDL file. The study folds these into a
// corpus-wide accumulator and renders them as a report section, so a
// mining run can audit exactly how much input it parsed cleanly, how much
// it recovered, and how much it had to drop.
package history

import (
	"coevo/internal/sqlddl"
)

// ParseHealth aggregates parse outcomes across one project's schema
// history, plus the commit-accounting counters the extraction used to
// drop silently (merge commits, byte-identical no-op versions).
type ParseHealth struct {
	// Dialect is the dialect the extraction was configured with ("auto"
	// when per-version detection was requested).
	Dialect string
	// Versions counts the parsed (non-deleted) versions of the DDL file;
	// CleanVersions those that produced no diagnostic at all.
	Versions      int
	CleanVersions int
	// Stats sums statement accounting over all versions.
	Stats sqlddl.ParseStats
	// Lex, Syntax and Semantic count diagnostics by category;
	// Uncategorized counts codes outside the taxonomy (always zero unless
	// a decoder or future code drifts — surfaced so it cannot hide).
	Lex, Syntax, Semantic, Uncategorized int
	// MergesSkipped and NoOpCommits surface the commits excluded from the
	// histories (see ProjectHistory.MergesSkipped and
	// SchemaHistory.NoOpCommits).
	MergesSkipped int
	NoOpCommits   int
}

// Add accumulates other into h. The dialect is kept when consistent and
// degrades to "mixed" when projects disagree, which keeps corpus-level
// aggregation honest.
func (h *ParseHealth) Add(other ParseHealth) {
	switch {
	case h.Versions == 0 && h.Dialect == "":
		h.Dialect = other.Dialect
	case h.Dialect != other.Dialect:
		h.Dialect = "mixed"
	}
	h.Versions += other.Versions
	h.CleanVersions += other.CleanVersions
	h.Stats.Add(other.Stats)
	h.Lex += other.Lex
	h.Syntax += other.Syntax
	h.Semantic += other.Semantic
	h.Uncategorized += other.Uncategorized
	h.MergesSkipped += other.MergesSkipped
	h.NoOpCommits += other.NoOpCommits
}

// Diagnostics returns the total diagnostic count.
func (h ParseHealth) Diagnostics() int {
	return h.Lex + h.Syntax + h.Semantic + h.Uncategorized
}

// Clean reports whether every version parsed and applied without a
// single diagnostic.
func (h ParseHealth) Clean() bool {
	return h.Stats.Clean() && h.Diagnostics() == 0
}

// countDiag files one diagnostic under its category.
func (h *ParseHealth) countDiag(d sqlddl.Diagnostic) {
	switch d.Category {
	case sqlddl.CategoryLex:
		h.Lex++
	case sqlddl.CategorySyntax:
		h.Syntax++
	case sqlddl.CategorySemantic:
		h.Semantic++
	default:
		h.Uncategorized++
	}
}

// ParseHealth aggregates the history's per-version parse reports. The
// MergesSkipped counter lives on the project history, not here; callers
// assembling a project-level report fold it in afterwards.
func (h *SchemaHistory) ParseHealth() ParseHealth {
	ph := ParseHealth{
		Dialect:     h.opts.Dialect.String(),
		NoOpCommits: h.NoOpCommits,
	}
	for i := range h.Versions {
		v := &h.Versions[i]
		if v.Deleted {
			continue
		}
		ph.Versions++
		ph.Stats.Add(v.Report.Stats)
		if v.Report.Clean() {
			ph.CleanVersions++
		}
		for _, d := range v.Report.Diags {
			ph.countDiag(d)
		}
	}
	return ph
}
