package history

import (
	"errors"
	"strings"
	"testing"
	"time"

	"coevo/internal/gitlog"
	"coevo/internal/vcs"
)

func sig(monthOffset, day int) vcs.Signature {
	return vcs.Signature{
		Name:  "dev",
		Email: "dev@example.com",
		When:  time.Date(2015, time.January, 1, 10, 0, 0, 0, time.UTC).AddDate(0, monthOffset, day),
	}
}

// buildRepo creates a small project: schema born in month 0, grown in
// month 2, a table dropped in month 4, steady source churn throughout.
func buildRepo(t *testing.T) *vcs.Repository {
	t.Helper()
	r := vcs.NewRepository("acme/app")
	commit := func(msg string, s vcs.Signature) {
		t.Helper()
		if _, err := r.Commit(msg, s); err != nil {
			t.Fatalf("commit %q: %v", msg, err)
		}
	}
	r.StageString("schema.sql", "CREATE TABLE users (id INT, email TEXT);")
	r.StageString("main.go", "package main")
	commit("initial", sig(0, 0))

	r.StageString("main.go", "package main // v2")
	r.StageString("handler.go", "package main")
	commit("feature", sig(1, 3))

	r.StageString("schema.sql", `CREATE TABLE users (id INT, email TEXT, name TEXT);
		CREATE TABLE posts (id INT, body TEXT);`)
	r.StageString("handler.go", "package main // v2")
	commit("grow schema", sig(2, 5))

	r.StageString("schema.sql", `CREATE TABLE users (id INT, email TEXT, name TEXT);`)
	commit("drop posts", sig(4, 2))

	return r
}

func TestExtractSchemaHistory(t *testing.T) {
	r := buildRepo(t)
	h, err := ExtractSchemaHistory(r, "schema.sql", DefaultOptions())
	if err != nil {
		t.Fatalf("ExtractSchemaHistory: %v", err)
	}
	if h.CommitCount() != 3 {
		t.Fatalf("CommitCount = %d, want 3", h.CommitCount())
	}
	// Birth: 2 attrs born. Growth: 1 injected + table with 2 born = 3.
	// Drop: table with 2 attrs deleted = 2. Total = 7.
	if got := h.Activity(0); got != 2 {
		t.Errorf("Activity(0) = %d, want 2 (birth)", got)
	}
	if got := h.Activity(1); got != 3 {
		t.Errorf("Activity(1) = %d, want 3", got)
	}
	if got := h.Activity(2); got != 2 {
		t.Errorf("Activity(2) = %d, want 2", got)
	}
	if h.TotalActivity() != 7 {
		t.Errorf("TotalActivity = %d, want 7", h.TotalActivity())
	}
	if h.ActiveCommits() != 3 {
		t.Errorf("ActiveCommits = %d, want 3", h.ActiveCommits())
	}
	final := h.FinalSchema()
	if final.TableCount() != 1 {
		t.Errorf("final schema tables = %d, want 1", final.TableCount())
	}
}

func TestCountBirthDisabled(t *testing.T) {
	r := buildRepo(t)
	h, err := ExtractSchemaHistory(r, "schema.sql", Options{CountBirth: false})
	if err != nil {
		t.Fatal(err)
	}
	if h.Activity(0) != 0 {
		t.Errorf("Activity(0) = %d, want 0 without birth counting", h.Activity(0))
	}
	if h.TotalActivity() != 5 {
		t.Errorf("TotalActivity = %d, want 5", h.TotalActivity())
	}
}

func TestSchemaHeartbeat(t *testing.T) {
	r := buildRepo(t)
	h, _ := ExtractSchemaHistory(r, "schema.sql", DefaultOptions())
	hb, err := h.Heartbeat()
	if err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if hb.Len() != 5 { // Jan..May 2015
		t.Fatalf("heartbeat len = %d, want 5", hb.Len())
	}
	if hb.Values[0] != 2 || hb.Values[2] != 3 || hb.Values[4] != 2 {
		t.Errorf("heartbeat = %v", hb.Values)
	}
	if hb.Values[1] != 0 || hb.Values[3] != 0 {
		t.Errorf("inactive months should be zero: %v", hb.Values)
	}
}

func TestInactiveSchemaCommit(t *testing.T) {
	r := vcs.NewRepository("acme/app")
	r.StageString("schema.sql", "CREATE TABLE t (a INT);")
	if _, err := r.Commit("init", sig(0, 0)); err != nil {
		t.Fatal(err)
	}
	// Comment-only edit: a version with no logical change.
	r.StageString("schema.sql", "-- now with a comment\nCREATE TABLE t (a INT);")
	if _, err := r.Commit("cosmetic", sig(1, 0)); err != nil {
		t.Fatal(err)
	}
	h, err := ExtractSchemaHistory(r, "schema.sql", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.CommitCount() != 2 || h.ActiveCommits() != 1 {
		t.Errorf("commits = %d active = %d, want 2/1", h.CommitCount(), h.ActiveCommits())
	}
}

func TestDeletedDDLFile(t *testing.T) {
	r := vcs.NewRepository("acme/app")
	r.StageString("schema.sql", "CREATE TABLE t (a INT, b INT);")
	if _, err := r.Commit("init", sig(0, 0)); err != nil {
		t.Fatal(err)
	}
	r.Remove("schema.sql")
	if _, err := r.Commit("drop db", sig(2, 0)); err != nil {
		t.Fatal(err)
	}
	h, err := ExtractSchemaHistory(r, "schema.sql", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Versions[1].Deleted {
		t.Error("second version should be the deletion")
	}
	// Birth 2 + deletion of table with 2 attrs = 4.
	if h.TotalActivity() != 4 {
		t.Errorf("TotalActivity = %d, want 4", h.TotalActivity())
	}
}

func TestExtractErrors(t *testing.T) {
	empty := vcs.NewRepository("acme/empty")
	if _, err := ExtractSchemaHistory(empty, "schema.sql", DefaultOptions()); !errors.Is(err, ErrEmptyRepo) {
		t.Errorf("empty repo err = %v", err)
	}
	if _, err := ExtractProjectHistory(empty); !errors.Is(err, ErrEmptyRepo) {
		t.Errorf("empty project err = %v", err)
	}

	r := vcs.NewRepository("acme/app")
	r.StageString("main.go", "package main")
	if _, err := r.Commit("init", sig(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractSchemaHistory(r, "schema.sql", DefaultOptions()); !errors.Is(err, ErrNoDDLFile) {
		t.Errorf("missing file err = %v", err)
	}

	r.StageString("notes.sql", "-- no tables here, just notes")
	if _, err := r.Commit("notes", sig(1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractSchemaHistory(r, "notes.sql", DefaultOptions()); !errors.Is(err, ErrNoCreates) {
		t.Errorf("no-creates err = %v", err)
	}
}

func TestFindDDLPath(t *testing.T) {
	r := buildRepo(t)
	path, err := FindDDLPath(r)
	if err != nil || path != "schema.sql" {
		t.Errorf("FindDDLPath = %q, %v", path, err)
	}

	empty := vcs.NewRepository("acme/empty")
	empty.StageString("main.go", "package main")
	if _, err := empty.Commit("init", sig(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := FindDDLPath(empty); !errors.Is(err, ErrNoDDLFile) {
		t.Errorf("no sql err = %v", err)
	}
}

func TestFindDDLPathDisambiguatesByContent(t *testing.T) {
	r := vcs.NewRepository("acme/app")
	r.StageString("db/schema.sql", "CREATE TABLE t (a INT);")
	r.StageString("db/seed.sql", "INSERT INTO t VALUES (1);")
	if _, err := r.Commit("init", sig(0, 0)); err != nil {
		t.Fatal(err)
	}
	path, err := FindDDLPath(r)
	if err != nil || path != "db/schema.sql" {
		t.Errorf("FindDDLPath = %q, %v", path, err)
	}
}

func TestFindDDLPathFollowsRename(t *testing.T) {
	r := vcs.NewRepository("acme/app")
	r.StageString("old.sql", "CREATE TABLE t (a INT);")
	if _, err := r.Commit("init", sig(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Move("old.sql", "db/schema.sql"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit("move", sig(1, 0)); err != nil {
		t.Fatal(err)
	}
	path, err := FindDDLPath(r)
	if err != nil || path != "db/schema.sql" {
		t.Errorf("FindDDLPath after rename = %q, %v", path, err)
	}
}

func TestExtractProjectHistory(t *testing.T) {
	r := buildRepo(t)
	p, err := ExtractProjectHistory(r)
	if err != nil {
		t.Fatal(err)
	}
	if p.CommitCount() != 4 {
		t.Fatalf("CommitCount = %d, want 4", p.CommitCount())
	}
	// initial: 2 files; feature: 2; grow: 2; drop: 1.
	if p.TotalFileUpdates() != 7 {
		t.Errorf("TotalFileUpdates = %d, want 7", p.TotalFileUpdates())
	}
	if p.DurationMonths() != 4 {
		t.Errorf("DurationMonths = %d, want 4", p.DurationMonths())
	}
	hb, err := p.Heartbeat()
	if err != nil {
		t.Fatal(err)
	}
	if hb.Len() != 5 || hb.Values[0] != 2 || hb.Values[4] != 1 {
		t.Errorf("project heartbeat = %v", hb.Values)
	}
}

func TestProjectHistoryExcludesMerges(t *testing.T) {
	r := vcs.NewRepository("acme/app")
	r.StageString("a.txt", "1")
	base, err := r.Commit("base", sig(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	r.StageString("b.txt", "2")
	if _, err := r.CommitMerge("merge", sig(1, 0), base.Hash); err != nil {
		t.Fatal(err)
	}
	p, err := ExtractProjectHistory(r)
	if err != nil {
		t.Fatal(err)
	}
	if p.CommitCount() != 1 {
		t.Errorf("CommitCount = %d, want 1 (merge excluded)", p.CommitCount())
	}
}

func TestProjectHistoryFromLog(t *testing.T) {
	logText := strings.Join([]string{
		"commit bbb",
		"Author: Dev <d@e.f>",
		"Date:   2016-02-01 10:00:00 +0000",
		"",
		"    second",
		"",
		"M\tschema.sql",
		"A\tnew.js",
		"",
		"commit aaa",
		"Author: Dev <d@e.f>",
		"Date:   2016-01-01 10:00:00 +0000",
		"",
		"    first",
		"",
		"A\tschema.sql",
		"",
	}, "\n")
	entries, err := gitlog.Parse(strings.NewReader(logText))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProjectHistoryFromLog(entries)
	if err != nil {
		t.Fatal(err)
	}
	if p.CommitCount() != 2 {
		t.Fatalf("CommitCount = %d", p.CommitCount())
	}
	if p.Commits[0].Hash != "aaa" || p.Commits[1].Files != 2 {
		t.Errorf("commits = %+v", p.Commits)
	}
	if _, err := ProjectHistoryFromLog(nil); !errors.Is(err, ErrEmptyRepo) {
		t.Errorf("empty log err = %v", err)
	}
}

func TestSchemaAndProjectHeartbeatsAlignable(t *testing.T) {
	r := buildRepo(t)
	sh, _ := ExtractSchemaHistory(r, "schema.sql", DefaultOptions())
	ph, _ := ExtractProjectHistory(r)
	shb, err1 := sh.Heartbeat()
	phb, err2 := ph.Heartbeat()
	if err1 != nil || err2 != nil {
		t.Fatalf("heartbeats: %v %v", err1, err2)
	}
	if shb.Start != phb.Start {
		t.Errorf("heartbeat starts differ: %s vs %s", shb.Start, phb.Start)
	}
}

func TestExtractProjectHistoryWithLines(t *testing.T) {
	r := vcs.NewRepository("acme/lines")
	commit := func(msg string, s vcs.Signature) {
		t.Helper()
		if _, err := r.Commit(msg, s); err != nil {
			t.Fatal(err)
		}
	}
	r.StageString("a.txt", "one\ntwo\nthree\n")
	commit("init", sig(0, 0)) // 3 lines added

	r.StageString("a.txt", "one\nTWO\nthree\nfour\n") // 1 replaced (1+1) + 1 added
	r.StageString("b.txt", "x\ny\n")                  // 2 added
	commit("edit", sig(1, 0))

	r.Remove("b.txt") // 2 removed
	commit("drop b", sig(2, 0))

	p, err := ExtractProjectHistoryWithLines(r)
	if err != nil {
		t.Fatal(err)
	}
	if p.CommitCount() != 3 {
		t.Fatalf("commits = %d", p.CommitCount())
	}
	wantLines := []int{3, 5, 2}
	for i, want := range wantLines {
		if p.Commits[i].Lines != want {
			t.Errorf("commit %d lines = %d, want %d", i, p.Commits[i].Lines, want)
		}
	}
	if p.TotalLineChurn() != 10 {
		t.Errorf("TotalLineChurn = %d, want 10", p.TotalLineChurn())
	}
	hb, err := p.LineHeartbeat()
	if err != nil {
		t.Fatal(err)
	}
	if hb.Total() != 10 {
		t.Errorf("line heartbeat total = %v", hb.Total())
	}
	// The file-count view is still present.
	if p.Commits[1].Files != 2 {
		t.Errorf("files of edit commit = %d, want 2", p.Commits[1].Files)
	}
}

func TestLineChurnFollowsRenames(t *testing.T) {
	r := vcs.NewRepository("acme/rename-lines")
	r.StageString("old.txt", "a\nb\nc\n")
	if _, err := r.Commit("init", sig(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Move("old.txt", "new.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit("rename", sig(1, 0)); err != nil {
		t.Fatal(err)
	}
	p, err := ExtractProjectHistoryWithLines(r)
	if err != nil {
		t.Fatal(err)
	}
	// A pure rename moves content without churn.
	if p.Commits[1].Lines != 0 {
		t.Errorf("pure rename churn = %d, want 0", p.Commits[1].Lines)
	}
}

func TestSchemaHistoryFromContents(t *testing.T) {
	versions := []DatedContent{
		{When: time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC), Content: []byte("CREATE TABLE t (a INT, b INT);")},
		{When: time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC), Content: []byte("CREATE TABLE t (a INT);")},
		{When: time.Date(2016, 9, 1, 0, 0, 0, 0, time.UTC), Content: []byte("CREATE TABLE t (a INT);")},
	}
	sh, err := SchemaHistoryFromContents("schema.sql", versions, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Versions must have been sorted: Jan (1 attr), May (2 attrs), Sep
	// (back to 1 attr).
	if sh.CommitCount() != 3 {
		t.Fatalf("commits = %d", sh.CommitCount())
	}
	if sh.Activity(0) != 1 || sh.Activity(1) != 1 || sh.Activity(2) != 1 {
		t.Errorf("activities = %d %d %d", sh.Activity(0), sh.Activity(1), sh.Activity(2))
	}
	if _, err := SchemaHistoryFromContents("x.sql", nil, DefaultOptions()); err == nil {
		t.Error("empty content list should fail")
	}
}

func TestSchemaHistoryFromContentsIdenticalVersions(t *testing.T) {
	ddl := []byte("CREATE TABLE t (a INT);")
	versions := []DatedContent{
		{When: time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC), Content: ddl},
		{When: time.Date(2016, 2, 1, 0, 0, 0, 0, time.UTC), Content: ddl},
	}
	sh, err := SchemaHistoryFromContents("schema.sql", versions, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both versions survive; the second is an inactive commit.
	if sh.CommitCount() != 2 || sh.ActiveCommits() != 1 {
		t.Errorf("commits = %d active = %d", sh.CommitCount(), sh.ActiveCommits())
	}
}
