// Package schematest generates small random schemas for property-based
// tests. The same generator drives the schemadiff property suite and the
// cache codec round-trip tests, so both explore the same shape space:
// 0–6 tables, 1–8 typed attributes each, optional column flags and
// single- or multi-column primary keys.
//
// Generation goes through DDL text and the real parser (RandomSchema is
// ParseAndBuild of RandomDDL), so every generated schema is one the
// pipeline could actually encounter.
package schematest

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"coevo/internal/schema"
)

// attrTypes spans the type zoo the parser normalizes, including
// multi-word and parameterized types.
var attrTypes = []string{
	"INT", "BIGINT", "SMALLINT", "VARCHAR(32)", "VARCHAR(255)", "TEXT",
	"TIMESTAMP", "DATE", "DOUBLE PRECISION", "BOOLEAN", "DECIMAL(10,2)",
	"CHARACTER VARYING(64)",
}

// RandomDDL emits a random CREATE TABLE script. Table and attribute
// names are drawn from small pools so that two independently generated
// schemas overlap with high probability — the interesting regime for
// diffing (shared tables with injected/ejected/retyped attributes).
func RandomDDL(rng *rand.Rand) string {
	var b strings.Builder
	nTables := rng.Intn(7) // 0 tables is a valid, empty schema
	for t := 0; t < nTables; t++ {
		name := fmt.Sprintf("table_%d", rng.Intn(10))
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", name)
		nAttrs := 1 + rng.Intn(8)
		attrs := make([]string, 0, nAttrs)
		seen := map[string]bool{}
		for a := 0; a < nAttrs; a++ {
			attr := fmt.Sprintf("col_%d", rng.Intn(16))
			if seen[attr] {
				continue
			}
			seen[attr] = true
			line := "  " + attr + " " + attrTypes[rng.Intn(len(attrTypes))]
			if rng.Intn(4) == 0 {
				line += " NOT NULL"
			}
			if rng.Intn(5) == 0 {
				line += " DEFAULT 0"
			}
			attrs = append(attrs, line)
		}
		// Optional primary key over a random prefix of the attributes.
		if rng.Intn(2) == 0 {
			nPK := 1 + rng.Intn(2)
			if nPK > len(attrs) {
				nPK = len(attrs)
			}
			cols := make([]string, 0, nPK)
			for _, line := range attrs[:nPK] {
				cols = append(cols, strings.Fields(line)[0])
			}
			attrs = append(attrs, "  PRIMARY KEY ("+strings.Join(cols, ", ")+")")
		}
		b.WriteString(strings.Join(attrs, ",\n"))
		b.WriteString("\n);\n")
	}
	return b.String()
}

// RandomSchema parses a RandomDDL script into a logical schema. The
// generator only emits well-formed DDL; a diagnostic therefore means the
// generator and parser disagree, which is a bug worth a loud stop.
func RandomSchema(rng *rand.Rand) *schema.Schema {
	src := RandomDDL(rng)
	s, errs := schema.ParseAndBuild(src)
	for _, err := range errs {
		// Duplicate CREATE TABLE of one name is legal lenient input (the
		// builder reports it and keeps the first definition); anything
		// else is a generator bug.
		if !errors.Is(err, schema.ErrTableExists) {
			panic(fmt.Sprintf("schematest: generated DDL rejected: %v\n%s", err, src))
		}
	}
	return s
}
