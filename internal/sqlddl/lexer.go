// Package sqlddl parses the subset of SQL data-definition language needed
// to reconstruct the logical schema of a project's DDL file: CREATE TABLE,
// ALTER TABLE, DROP TABLE and RENAME TABLE in the MySQL and PostgreSQL
// dialects (the two vendors the study's data set selects).
//
// Real-world .sql files in FOSS repositories interleave DDL with INSERTs,
// SETs, vendor directives and comments, so the parser is deliberately
// forgiving: statements it does not understand are preserved as
// SkippedStatement values rather than failing the whole script, mirroring
// how the original extraction tooling must behave to survive 195 projects'
// worth of hand-written SQL.
package sqlddl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokQuotedIdent
	tokNumber
	tokString
	tokSymbol
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokQuotedIdent:
		return "quoted identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	default:
		return "unknown"
	}
}

// token is one lexical unit. For quoted identifiers and strings, Text holds
// the unquoted value.
type token struct {
	kind tokenKind
	text string
	line int
	pos  int // byte offset of token start
}

// keywordIs reports whether the token is the given bare keyword,
// case-insensitively.
func (t token) keywordIs(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (t token) symbolIs(s string) bool {
	return t.kind == tokSymbol && t.text == s
}

// LexError reports a lexical problem with its line number. Pos is the
// byte offset of the offending construct and Code its diagnostic code;
// Error keeps the historical "sqlddl: line N: msg" shape.
type LexError struct {
	Line int
	Msg  string
	Pos  int
	Code string
}

func (e *LexError) Error() string { return fmt.Sprintf("sqlddl: line %d: %s", e.Line, e.Msg) }

// lexer tokenizes SQL text. Comments are skipped; strings and quoted
// identifiers are decoded. The dialect adapts the few lexical rules that
// differ between vendors; the zero value (Generic) is the permissive
// union.
type lexer struct {
	src     string
	off     int
	line    int
	dialect Dialect
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// next returns the next token, or a tokEOF token at end of input.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.off >= len(l.src) {
		return token{kind: tokEOF, line: l.line, pos: l.off}, nil
	}
	start, startLine := l.off, l.line
	c := l.src[l.off]

	switch {
	case c == '`':
		text, err := l.quoted('`', '`')
		if err != nil {
			return token{}, err
		}
		return token{kind: tokQuotedIdent, text: text, line: startLine, pos: start}, nil
	case c == '"':
		if l.dialect.doubleQuoteIsString() {
			// MySQL without ANSI_QUOTES: '"' delimits a string literal
			// with the same escape conventions as '...'.
			text, err := l.sqlString('"')
			if err != nil {
				return token{}, err
			}
			return token{kind: tokString, text: text, line: startLine, pos: start}, nil
		}
		text, err := l.quoted('"', '"')
		if err != nil {
			return token{}, err
		}
		return token{kind: tokQuotedIdent, text: text, line: startLine, pos: start}, nil
	case c == '[':
		// SQL Server style bracket quoting appears in a few histories;
		// accept it when the content looks like an identifier, otherwise
		// treat '[' as a symbol (Postgres array types use bare brackets).
		if text, ok := l.tryBracketIdent(); ok {
			return token{kind: tokQuotedIdent, text: text, line: startLine, pos: start}, nil
		}
		l.off++
		return token{kind: tokSymbol, text: "[", line: startLine, pos: start}, nil
	case c == '\'':
		text, err := l.sqlString('\'')
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: text, line: startLine, pos: start}, nil
	case c == '$':
		if text, ok, err := l.tryDollarString(); err != nil {
			return token{}, err
		} else if ok {
			return token{kind: tokString, text: text, line: startLine, pos: start}, nil
		}
		l.off++
		return token{kind: tokSymbol, text: "$", line: startLine, pos: start}, nil
	case isDigit(c) || (c == '.' && l.off+1 < len(l.src) && isDigit(l.src[l.off+1])):
		return token{kind: tokNumber, text: l.number(), line: startLine, pos: start}, nil
	case isIdentStart(c):
		return token{kind: tokIdent, text: l.ident(), line: startLine, pos: start}, nil
	default:
		// Multi-character operators that matter for expression skipping.
		// Matched against constants so lexing a symbol never allocates.
		if l.off+1 < len(l.src) {
			var op string
			switch c2 := l.src[l.off+1]; {
			case c == ':' && c2 == ':':
				op = "::"
			case c == '<' && c2 == '=':
				op = "<="
			case c == '>' && c2 == '=':
				op = ">="
			case c == '<' && c2 == '>':
				op = "<>"
			case c == '!' && c2 == '=':
				op = "!="
			case c == '|' && c2 == '|':
				op = "||"
			}
			if op != "" {
				l.off += 2
				return token{kind: tokSymbol, text: op, line: startLine, pos: start}, nil
			}
		}
		l.off++
		return token{kind: tokSymbol, text: l.src[start:l.off], line: startLine, pos: start}, nil
	}
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == '\n':
			l.line++
			l.off++
		case c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v':
			l.off++
		case c == '-' && l.off+1 < len(l.src) && l.src[l.off+1] == '-':
			l.skipToLineEnd()
		case c == '#' && l.dialect.hashComments():
			l.skipToLineEnd()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			if err := l.skipBlockComment(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) skipToLineEnd() {
	for l.off < len(l.src) && l.src[l.off] != '\n' {
		l.off++
	}
}

func (l *lexer) skipBlockComment() error {
	startLine, startPos := l.line, l.off
	l.off += 2
	for l.off+1 < len(l.src) {
		if l.src[l.off] == '\n' {
			l.line++
		}
		if l.src[l.off] == '*' && l.src[l.off+1] == '/' {
			l.off += 2
			return nil
		}
		l.off++
	}
	return &LexError{Line: startLine, Msg: "unterminated block comment", Pos: startPos, Code: CodeLexComment}
}

// quoted reads a delimiter-quoted identifier, honoring doubled delimiters
// as escapes (“ a“b “ and "a""b"). The common escape-free case returns a
// zero-copy slice of the input buffer; only escaped identifiers build a
// decoded copy.
func (l *lexer) quoted(open, close byte) (string, error) {
	startLine, startPos := l.line, l.off
	l.off++ // consume opening quote
	start := l.off
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '\n' {
			l.line++
		}
		if c == close {
			if l.off+1 < len(l.src) && l.src[l.off+1] == close {
				return l.quotedSlow(open, close, startLine, startPos, l.src[start:l.off])
			}
			text := l.src[start:l.off]
			l.off++
			return text, nil
		}
		l.off++
	}
	return "", &LexError{Line: startLine, Msg: fmt.Sprintf("unterminated quoted identifier (%c)", open), Pos: startPos, Code: CodeLexQuoted}
}

// quotedSlow continues a quoted identifier from the first doubled
// delimiter, building the decoded text. The cursor sits on the doubled
// delimiter pair.
func (l *lexer) quotedSlow(open, close byte, startLine, startPos int, prefix string) (string, error) {
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteByte(close)
	l.off += 2
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '\n' {
			l.line++
		}
		if c == close {
			if l.off+1 < len(l.src) && l.src[l.off+1] == close {
				b.WriteByte(close)
				l.off += 2
				continue
			}
			l.off++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.off++
	}
	return "", &LexError{Line: startLine, Msg: fmt.Sprintf("unterminated quoted identifier (%c)", open), Pos: startPos, Code: CodeLexQuoted}
}

// tryBracketIdent attempts to read a [bracketed] identifier; it backtracks
// and reports false if the bracket does not close on the same line without
// nested brackets (in which case '[' is punctuation, e.g. an array type).
func (l *lexer) tryBracketIdent() (string, bool) {
	end := l.off + 1
	// Array dimensions like INT[3] and bare INT[] are punctuation, not
	// quoting: a bracket identifier must start like an identifier.
	if end >= len(l.src) || !isIdentStart(l.src[end]) {
		return "", false
	}
	for end < len(l.src) {
		c := l.src[end]
		if c == ']' {
			text := l.src[l.off+1 : end]
			if text == "" {
				return "", false
			}
			l.off = end + 1
			return text, true
		}
		if c == '\n' || c == '[' {
			return "", false
		}
		end++
	}
	return "", false
}

// sqlString reads a quote-delimited string literal with both doubled
// quote and backslash escape conventions (MySQL accepts backslash
// escapes; Postgres the doubled-quote form). The quote is '\'' for every
// dialect, plus '"' when the dialect treats double quotes as strings.
// Escape-free literals — the overwhelmingly common case — return a
// zero-copy slice of the input buffer.
func (l *lexer) sqlString(quote byte) (string, error) {
	startLine, startPos := l.line, l.off
	l.off++ // consume opening quote
	start := l.off
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch c {
		case '\n':
			l.line++
			l.off++
		case '\\':
			return l.sqlStringSlow(quote, startLine, startPos, l.src[start:l.off])
		case quote:
			if l.off+1 < len(l.src) && l.src[l.off+1] == quote {
				return l.sqlStringSlow(quote, startLine, startPos, l.src[start:l.off])
			}
			text := l.src[start:l.off]
			l.off++
			return text, nil
		default:
			l.off++
		}
	}
	return "", &LexError{Line: startLine, Msg: "unterminated string literal", Pos: startPos, Code: CodeLexString}
}

// sqlStringSlow continues a string literal from the first escape
// sequence, building the decoded text. The cursor sits on the escape's
// first byte ('\\' or the first of a doubled quote).
func (l *lexer) sqlStringSlow(quote byte, startLine, startPos int, prefix string) (string, error) {
	var b strings.Builder
	b.WriteString(prefix)
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch c {
		case '\n':
			l.line++
			b.WriteByte(c)
			l.off++
		case '\\':
			if l.off+1 < len(l.src) {
				b.WriteByte(l.src[l.off+1])
				l.off += 2
				continue
			}
			l.off++
		case quote:
			if l.off+1 < len(l.src) && l.src[l.off+1] == quote {
				b.WriteByte(quote)
				l.off += 2
				continue
			}
			l.off++
			return b.String(), nil
		default:
			b.WriteByte(c)
			l.off++
		}
	}
	return "", &LexError{Line: startLine, Msg: "unterminated string literal", Pos: startPos, Code: CodeLexString}
}

// tryDollarString reads a Postgres dollar-quoted string ($$...$$ or
// $tag$...$tag$). Reports ok=false when '$' does not open a valid tag.
func (l *lexer) tryDollarString() (string, bool, error) {
	rest := l.src[l.off:]
	end := strings.IndexByte(rest[1:], '$')
	if end < 0 {
		return "", false, nil
	}
	tag := rest[:end+2] // includes both '$'s
	for _, r := range tag[1 : len(tag)-1] {
		if !isIdentStart(byte(r)) && !unicode.IsDigit(r) {
			return "", false, nil
		}
	}
	body := rest[len(tag):]
	closeIdx := strings.Index(body, tag)
	if closeIdx < 0 {
		return "", false, &LexError{Line: l.line, Msg: "unterminated dollar-quoted string", Pos: l.off, Code: CodeLexDollar}
	}
	content := body[:closeIdx]
	l.line += strings.Count(rest[:len(tag)+closeIdx+len(tag)], "\n")
	l.off += len(tag) + closeIdx + len(tag)
	return content, true, nil
}

func (l *lexer) number() string {
	start := l.off
	for l.off < len(l.src) {
		c := l.src[l.off]
		if isDigit(c) || c == '.' || c == 'e' || c == 'E' ||
			((c == '+' || c == '-') && l.off > start && (l.src[l.off-1] == 'e' || l.src[l.off-1] == 'E')) {
			l.off++
			continue
		}
		break
	}
	return l.src[start:l.off]
}

func (l *lexer) ident() string {
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.src[l.off]) {
		l.off++
	}
	return l.src[start:l.off]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == '$'
}
