package sqlddl

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	script, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return script
}

func onlyCreate(t *testing.T, src string) *CreateTable {
	t.Helper()
	script := mustParse(t, src)
	cts := script.CreateTables()
	if len(cts) != 1 {
		t.Fatalf("want exactly 1 CREATE TABLE, got %d in %q", len(cts), src)
	}
	return cts[0]
}

func TestCreateTableBasic(t *testing.T) {
	ct := onlyCreate(t, `CREATE TABLE users (
		id INT NOT NULL AUTO_INCREMENT,
		name VARCHAR(255) NOT NULL DEFAULT 'anon',
		balance DECIMAL(10,2) UNSIGNED,
		created TIMESTAMP DEFAULT CURRENT_TIMESTAMP,
		PRIMARY KEY (id)
	);`)
	if ct.Name.Name != "users" {
		t.Errorf("name = %q", ct.Name.Name)
	}
	if len(ct.Columns) != 4 {
		t.Fatalf("columns = %d, want 4", len(ct.Columns))
	}
	id := ct.Columns[0]
	if id.Name != "id" || id.Type.Name != "INT" || !id.NotNull || !id.AutoIncrement {
		t.Errorf("id column = %+v", id)
	}
	name := ct.Columns[1]
	if name.Type.Name != "VARCHAR" || !reflect.DeepEqual(name.Type.Args, []string{"255"}) {
		t.Errorf("name type = %+v", name.Type)
	}
	if !name.HasDefault || name.Default != "'anon'" {
		t.Errorf("name default = %q (has=%v)", name.Default, name.HasDefault)
	}
	bal := ct.Columns[2]
	if bal.Type.Name != "DECIMAL" || !bal.Type.Unsigned || !reflect.DeepEqual(bal.Type.Args, []string{"10", "2"}) {
		t.Errorf("balance type = %+v", bal.Type)
	}
	created := ct.Columns[3]
	if created.Default != "CURRENT_TIMESTAMP" {
		t.Errorf("created default = %q", created.Default)
	}
	if len(ct.Constraints) != 1 || ct.Constraints[0].Kind != ConstraintPrimaryKey {
		t.Fatalf("constraints = %+v", ct.Constraints)
	}
	if !reflect.DeepEqual(ct.Constraints[0].Columns, []string{"id"}) {
		t.Errorf("pk columns = %v", ct.Constraints[0].Columns)
	}
}

func TestCreateTableQuotingStyles(t *testing.T) {
	cases := []string{
		"CREATE TABLE `my table` (`weird col` int);",
		`CREATE TABLE "my table" ("weird col" int);`,
		"CREATE TABLE [my table] ([weird col] int);",
	}
	for _, src := range cases {
		ct := onlyCreate(t, src)
		if ct.Name.Name != "my table" {
			t.Errorf("%q: table name = %q", src, ct.Name.Name)
		}
		if len(ct.Columns) != 1 || ct.Columns[0].Name != "weird col" {
			t.Errorf("%q: columns = %+v", src, ct.Columns)
		}
	}
}

func TestCreateTableQualifiedName(t *testing.T) {
	ct := onlyCreate(t, "CREATE TABLE public.users (id int);")
	if ct.Name.Schema != "public" || ct.Name.Name != "users" {
		t.Errorf("name = %+v", ct.Name)
	}
}

func TestCreateTableIfNotExistsAndTemporary(t *testing.T) {
	ct := onlyCreate(t, "CREATE TEMPORARY TABLE IF NOT EXISTS t (a int);")
	if !ct.IfNotExists || !ct.Temporary {
		t.Errorf("flags = ifNotExists:%v temporary:%v", ct.IfNotExists, ct.Temporary)
	}
}

func TestCreateTableInlineConstraints(t *testing.T) {
	ct := onlyCreate(t, `CREATE TABLE orders (
		id SERIAL PRIMARY KEY,
		code CHAR(8) UNIQUE,
		user_id INT REFERENCES users(id) ON DELETE CASCADE ON UPDATE SET NULL,
		note TEXT CHECK (length(note) > 0)
	);`)
	if !ct.Columns[0].PrimaryKey {
		t.Error("id should be inline primary key")
	}
	if !ct.Columns[1].Unique {
		t.Error("code should be unique")
	}
	ref := ct.Columns[2].References
	if ref == nil || ref.Table.Name != "users" || !reflect.DeepEqual(ref.Columns, []string{"id"}) {
		t.Fatalf("references = %+v", ref)
	}
	if ref.OnDelete != "CASCADE" || ref.OnUpdate != "SET NULL" {
		t.Errorf("actions = %q/%q", ref.OnDelete, ref.OnUpdate)
	}
}

func TestCreateTableTableConstraints(t *testing.T) {
	ct := onlyCreate(t, `CREATE TABLE t (
		a INT,
		b INT,
		c VARCHAR(40),
		CONSTRAINT pk_t PRIMARY KEY (a, b),
		UNIQUE KEY uniq_c (c),
		KEY idx_b (b),
		CONSTRAINT fk_b FOREIGN KEY (b) REFERENCES other (x) ON DELETE RESTRICT,
		CHECK (a > 0)
	);`)
	if len(ct.Constraints) != 5 {
		t.Fatalf("constraints = %d: %+v", len(ct.Constraints), ct.Constraints)
	}
	pk := ct.Constraints[0]
	if pk.Kind != ConstraintPrimaryKey || pk.Name != "pk_t" || !reflect.DeepEqual(pk.Columns, []string{"a", "b"}) {
		t.Errorf("pk = %+v", pk)
	}
	uq := ct.Constraints[1]
	if uq.Kind != ConstraintUnique || uq.Name != "uniq_c" || !reflect.DeepEqual(uq.Columns, []string{"c"}) {
		t.Errorf("unique = %+v", uq)
	}
	if ct.Constraints[2].Kind != ConstraintIndex {
		t.Errorf("index = %+v", ct.Constraints[2])
	}
	fk := ct.Constraints[3]
	if fk.Kind != ConstraintForeignKey || fk.Ref == nil || fk.Ref.Table.Name != "other" || fk.Ref.OnDelete != "RESTRICT" {
		t.Errorf("fk = %+v", fk)
	}
	ck := ct.Constraints[4]
	if ck.Kind != ConstraintCheck || !strings.Contains(ck.Check, "a") {
		t.Errorf("check = %+v", ck)
	}
}

func TestColumnNamedKey(t *testing.T) {
	// "key" used as a column name must not be mistaken for an index.
	ct := onlyCreate(t, "CREATE TABLE kv (key VARCHAR(9), value TEXT);")
	if len(ct.Columns) != 2 || ct.Columns[0].Name != "key" {
		t.Errorf("columns = %+v", ct.Columns)
	}
	if len(ct.Constraints) != 0 {
		t.Errorf("constraints = %+v", ct.Constraints)
	}
}

func TestMultiWordTypes(t *testing.T) {
	cases := map[string]string{
		"CREATE TABLE t (a DOUBLE PRECISION);":            "DOUBLE PRECISION",
		"CREATE TABLE t (a CHARACTER VARYING(10));":       "CHARACTER VARYING",
		"CREATE TABLE t (a TIMESTAMP WITH TIME ZONE);":    "TIMESTAMP WITH TIME ZONE",
		"CREATE TABLE t (a TIME(3) WITHOUT TIME ZONE);":   "TIME WITHOUT TIME ZONE",
		"CREATE TABLE t (a NATIONAL CHARACTER VARYING);":  "NATIONAL CHARACTER VARYING",
		"CREATE TABLE t (a timestamp without time zone);": "TIMESTAMP WITHOUT TIME ZONE",
	}
	for src, wantType := range cases {
		ct := onlyCreate(t, src)
		if got := ct.Columns[0].Type.Name; got != wantType {
			t.Errorf("%q: type = %q, want %q", src, got, wantType)
		}
	}
}

func TestEnumAndSetTypes(t *testing.T) {
	ct := onlyCreate(t, "CREATE TABLE t (status ENUM('open','closed','don''t'), flags SET('a','b'));")
	status := ct.Columns[0].Type
	if status.Name != "ENUM" || !reflect.DeepEqual(status.Args, []string{"'open'", "'closed'", "'don't'"}) {
		t.Errorf("enum = %+v", status)
	}
}

func TestArrayTypes(t *testing.T) {
	ct := onlyCreate(t, "CREATE TABLE t (tags TEXT[], nums INT ARRAY, grid INT[3]);")
	for i, col := range ct.Columns {
		if !col.Type.Array {
			t.Errorf("column %d (%s) should be array: %+v", i, col.Name, col.Type)
		}
	}
}

func TestPostgresDollarQuotedDefaultsSkipped(t *testing.T) {
	// Dollar-quoted strings appear in function bodies; the statement is
	// skipped but must not derail statement splitting.
	script := mustParse(t, `CREATE FUNCTION f() RETURNS trigger AS $$
		BEGIN RETURN NEW; END; -- has ; inside? no, dollar-quote protects nothing here
	$$ LANGUAGE plpgsql;
	CREATE TABLE t (a int);`)
	if len(script.CreateTables()) != 1 {
		t.Fatalf("CREATE TABLE after function not found: %d statements", len(script.Statements))
	}
}

func TestCommentsEverywhere(t *testing.T) {
	ct := onlyCreate(t, `-- leading comment
	# mysql comment
	/* block
	   comment */
	CREATE TABLE t ( -- trailing
		a int, /* inline */ b int
	);`)
	if len(ct.Columns) != 2 {
		t.Errorf("columns = %+v", ct.Columns)
	}
}

func TestSkippedStatements(t *testing.T) {
	script := mustParse(t, `SET NAMES utf8;
	INSERT INTO t VALUES (1, 'a;b');
	CREATE INDEX idx ON t (a);
	CREATE TABLE t2 (x int);
	DROP PROCEDURE IF EXISTS p;`)
	var skipped []string
	for _, st := range script.Statements {
		if s, ok := st.(*SkippedStatement); ok {
			skipped = append(skipped, s.Keyword)
		}
	}
	want := []string{"SET", "INSERT", "CREATE", "DROP"}
	if !reflect.DeepEqual(skipped, want) {
		t.Errorf("skipped = %v, want %v", skipped, want)
	}
	if len(script.CreateTables()) != 1 {
		t.Errorf("CreateTables = %d, want 1", len(script.CreateTables()))
	}
}

func TestStatementWithSemicolonInString(t *testing.T) {
	script := mustParse(t, `INSERT INTO t VALUES ('a;b;c'); CREATE TABLE x (y int);`)
	if len(script.Statements) != 2 {
		t.Fatalf("statements = %d, want 2", len(script.Statements))
	}
}

func TestDropTable(t *testing.T) {
	script := mustParse(t, "DROP TABLE IF EXISTS a, b CASCADE;")
	dt, ok := script.Statements[0].(*DropTable)
	if !ok {
		t.Fatalf("statement = %T", script.Statements[0])
	}
	if !dt.IfExists || len(dt.Names) != 2 || dt.Names[0].Name != "a" || dt.Names[1].Name != "b" {
		t.Errorf("drop = %+v", dt)
	}
}

func TestRenameTable(t *testing.T) {
	script := mustParse(t, "RENAME TABLE old1 TO new1, old2 TO new2;")
	rt, ok := script.Statements[0].(*RenameTable)
	if !ok {
		t.Fatalf("statement = %T", script.Statements[0])
	}
	if len(rt.Renames) != 2 || rt.Renames[0].From.Name != "old1" || rt.Renames[1].To.Name != "new2" {
		t.Errorf("renames = %+v", rt.Renames)
	}
}

func TestAlterTableAddDropColumns(t *testing.T) {
	script := mustParse(t, `ALTER TABLE t
		ADD COLUMN a INT NOT NULL DEFAULT 0,
		ADD b VARCHAR(10) AFTER a,
		DROP COLUMN c,
		DROP d CASCADE;`)
	at := script.Statements[0].(*AlterTable)
	if len(at.Actions) != 4 {
		t.Fatalf("actions = %d: %+v", len(at.Actions), at.Actions)
	}
	add1 := at.Actions[0].(AddColumn)
	if add1.Column.Name != "a" || !add1.Column.NotNull || add1.Column.Default != "0" {
		t.Errorf("add1 = %+v", add1)
	}
	add2 := at.Actions[1].(AddColumn)
	if add2.Column.Name != "b" {
		t.Errorf("add2 = %+v", add2)
	}
	if d, ok := at.Actions[2].(DropColumn); !ok || d.Name != "c" {
		t.Errorf("drop1 = %+v", at.Actions[2])
	}
	if d, ok := at.Actions[3].(DropColumn); !ok || d.Name != "d" {
		t.Errorf("drop2 = %+v", at.Actions[3])
	}
}

func TestAlterTableModifyChangeRename(t *testing.T) {
	script := mustParse(t, `ALTER TABLE t
		MODIFY COLUMN a BIGINT UNSIGNED,
		CHANGE COLUMN b b2 TEXT,
		RENAME COLUMN c TO c2,
		RENAME TO t2;`)
	at := script.Statements[0].(*AlterTable)
	m := at.Actions[0].(ModifyColumn)
	if m.Column.Name != "a" || m.Column.Type.Name != "BIGINT" || !m.Column.Type.Unsigned {
		t.Errorf("modify = %+v", m)
	}
	ch := at.Actions[1].(ChangeColumn)
	if ch.OldName != "b" || ch.Column.Name != "b2" || ch.Column.Type.Name != "TEXT" {
		t.Errorf("change = %+v", ch)
	}
	rc := at.Actions[2].(RenameColumn)
	if rc.OldName != "c" || rc.NewName != "c2" {
		t.Errorf("rename col = %+v", rc)
	}
	rt := at.Actions[3].(RenameTo)
	if rt.NewName.Name != "t2" {
		t.Errorf("rename to = %+v", rt)
	}
}

func TestAlterTablePostgresColumnForms(t *testing.T) {
	script := mustParse(t, `ALTER TABLE ONLY public.t
		ALTER COLUMN a TYPE NUMERIC(12,4),
		ALTER COLUMN b SET NOT NULL,
		ALTER COLUMN c DROP NOT NULL,
		ALTER COLUMN d SET DEFAULT now(),
		ALTER COLUMN e DROP DEFAULT;`)
	at := script.Statements[0].(*AlterTable)
	ty := at.Actions[0].(AlterColumnType)
	if ty.Name != "a" || ty.Type.Name != "NUMERIC" || !reflect.DeepEqual(ty.Type.Args, []string{"12", "4"}) {
		t.Errorf("type = %+v", ty)
	}
	if n := at.Actions[1].(AlterColumnNullability); !n.NotNull || n.Name != "b" {
		t.Errorf("set not null = %+v", n)
	}
	if n := at.Actions[2].(AlterColumnNullability); n.NotNull || n.Name != "c" {
		t.Errorf("drop not null = %+v", n)
	}
	if d := at.Actions[3].(AlterColumnDefault); d.Drop || d.Name != "d" || d.Default != "NOW()" {
		t.Errorf("set default = %+v", d)
	}
	if d := at.Actions[4].(AlterColumnDefault); !d.Drop || d.Name != "e" {
		t.Errorf("drop default = %+v", d)
	}
}

func TestAlterTableConstraints(t *testing.T) {
	script := mustParse(t, `ALTER TABLE t
		ADD CONSTRAINT pk PRIMARY KEY (id),
		ADD UNIQUE (code),
		ADD CONSTRAINT fk FOREIGN KEY (uid) REFERENCES users (id),
		DROP PRIMARY KEY,
		DROP FOREIGN KEY fk_old,
		DROP CONSTRAINT chk,
		DROP INDEX idx;`)
	at := script.Statements[0].(*AlterTable)
	if len(at.Actions) != 7 {
		t.Fatalf("actions = %d", len(at.Actions))
	}
	if a := at.Actions[0].(AddConstraint); a.Constraint.Kind != ConstraintPrimaryKey || a.Constraint.Name != "pk" {
		t.Errorf("add pk = %+v", a)
	}
	if a := at.Actions[1].(AddConstraint); a.Constraint.Kind != ConstraintUnique {
		t.Errorf("add unique = %+v", a)
	}
	if a := at.Actions[2].(AddConstraint); a.Constraint.Kind != ConstraintForeignKey || a.Constraint.Ref.Table.Name != "users" {
		t.Errorf("add fk = %+v", a)
	}
	if d := at.Actions[3].(DropConstraint); d.Kind != ConstraintPrimaryKey {
		t.Errorf("drop pk = %+v", d)
	}
	if d := at.Actions[4].(DropConstraint); d.Kind != ConstraintForeignKey || d.Name != "fk_old" {
		t.Errorf("drop fk = %+v", d)
	}
	if d := at.Actions[5].(DropConstraint); d.Name != "chk" {
		t.Errorf("drop constraint = %+v", d)
	}
	if d := at.Actions[6].(DropConstraint); d.Kind != ConstraintIndex || d.Name != "idx" {
		t.Errorf("drop index = %+v", d)
	}
}

func TestAlterTableUnknownActionPreserved(t *testing.T) {
	script := mustParse(t, "ALTER TABLE t ENGINE=InnoDB, ADD COLUMN a int;")
	at := script.Statements[0].(*AlterTable)
	if len(at.Actions) != 2 {
		t.Fatalf("actions = %+v", at.Actions)
	}
	if _, ok := at.Actions[0].(UnknownAction); !ok {
		t.Errorf("first action = %T, want UnknownAction", at.Actions[0])
	}
	if _, ok := at.Actions[1].(AddColumn); !ok {
		t.Errorf("second action = %T, want AddColumn", at.Actions[1])
	}
}

func TestCreateTableAsSelect(t *testing.T) {
	ct := onlyCreate(t, "CREATE TABLE t AS SELECT * FROM other;")
	if !ct.AsSelect {
		t.Error("AsSelect not set")
	}
}

func TestGeneratedColumns(t *testing.T) {
	ct := onlyCreate(t, `CREATE TABLE t (
		id INT GENERATED ALWAYS AS IDENTITY,
		total NUMERIC GENERATED ALWAYS AS (a + b) STORED
	);`)
	if !ct.Columns[0].AutoIncrement {
		t.Error("identity column should be auto-increment")
	}
	if len(ct.Columns) != 2 {
		t.Errorf("columns = %+v", ct.Columns)
	}
}

func TestMySQLDumpTableOptions(t *testing.T) {
	ct := onlyCreate(t, "CREATE TABLE t (a int) ENGINE=InnoDB AUTO_INCREMENT=5 DEFAULT CHARSET=utf8mb4 COLLATE=utf8mb4_unicode_ci COMMENT='the table';")
	if len(ct.Columns) != 1 {
		t.Errorf("columns = %+v", ct.Columns)
	}
}

func TestParseStrictErrors(t *testing.T) {
	cases := []string{
		"CREATE TABLE (a int);",           // missing table name
		"CREATE TABLE t (a int",           // unterminated element list
		"ALTER TABLE t ADD CONSTRAINT;",   // dangling constraint
		"DROP TABLE;",                     // missing name
		"CREATE TABLE t (PRIMARY KEY a);", // malformed pk
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("Parse(%q) err = %T, want *ParseError", src, err)
			}
		}
	}
}

func TestParseLenientDemotesBrokenStatements(t *testing.T) {
	script, errs := ParseLenient("CREATE TABLE broken (a int; CREATE TABLE ok (b int);")
	if len(errs) == 0 {
		t.Fatal("expected diagnostics")
	}
	// The broken statement is demoted; the well-formed one survives.
	var kept int
	for _, st := range script.Statements {
		if _, ok := st.(*CreateTable); ok {
			kept++
		}
	}
	if kept != 1 {
		t.Errorf("kept %d CREATE TABLEs, want 1", kept)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"CREATE TABLE t (a int) /* unterminated",
		"INSERT INTO t VALUES ('unterminated",
		"CREATE TABLE `unterminated (a int);",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail with lex error", src)
		}
	}
}

func TestRawPreserved(t *testing.T) {
	src := "CREATE TABLE t (a int)"
	script := mustParse(t, src+";")
	if got := script.Statements[0].Raw(); got != src {
		t.Errorf("Raw() = %q, want %q", got, src)
	}
}

func TestDataTypeString(t *testing.T) {
	cases := []struct {
		dt   DataType
		want string
	}{
		{DataType{Name: "INT"}, "INT"},
		{DataType{Name: "VARCHAR", Args: []string{"255"}}, "VARCHAR(255)"},
		{DataType{Name: "DECIMAL", Args: []string{"10", "2"}, Unsigned: true}, "DECIMAL(10,2) UNSIGNED"},
		{DataType{Name: "TEXT", Array: true}, "TEXT[]"},
	}
	for _, tc := range cases {
		if got := tc.dt.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestDefaultExpressions(t *testing.T) {
	cases := map[string]string{
		"CREATE TABLE t (a INT DEFAULT -1);":                         "-1",
		"CREATE TABLE t (a INT DEFAULT (1+2));":                      "(1 + 2)",
		"CREATE TABLE t (a BIT DEFAULT b'0');":                       "B'0'",
		"CREATE TABLE t (a TEXT DEFAULT 'x'::character varying);":    "'x'::CHARACTER VARYING",
		"CREATE TABLE t (a TIMESTAMP DEFAULT CURRENT_TIMESTAMP(6));": "CURRENT_TIMESTAMP(6)",
		"CREATE TABLE t (a UUID DEFAULT uuid_generate_v4());":        "UUID_GENERATE_V4()",
	}
	for src, want := range cases {
		ct := onlyCreate(t, src)
		if got := ct.Columns[0].Default; got != want {
			t.Errorf("%q: default = %q, want %q", src, got, want)
		}
	}
}

// Property: a synthesized CREATE TABLE with n generated columns always
// parses back with exactly n columns, for arbitrary column counts and type
// picks.
func TestQuickCreateTableRoundTrip(t *testing.T) {
	types := []string{"INT", "BIGINT", "VARCHAR(255)", "TEXT", "DECIMAL(10,2)", "TIMESTAMP", "BOOLEAN", "DOUBLE PRECISION"}
	f := func(n uint8, pick uint16) bool {
		count := int(n%20) + 1
		var b strings.Builder
		b.WriteString("CREATE TABLE gen_table (\n")
		for i := 0; i < count; i++ {
			if i > 0 {
				b.WriteString(",\n")
			}
			fmt.Fprintf(&b, "  col_%d %s", i, types[(int(pick)+i)%len(types)])
			if i%3 == 0 {
				b.WriteString(" NOT NULL")
			}
		}
		b.WriteString("\n);")
		script, err := Parse(b.String())
		if err != nil {
			return false
		}
		cts := script.CreateTables()
		return len(cts) == 1 && len(cts[0].Columns) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ParseLenient never panics and never returns a nil script, no
// matter how garbled the input.
func TestQuickLenientNeverPanics(t *testing.T) {
	f := func(src string) bool {
		script, _ := ParseLenient(src)
		return script != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestASTAccessors(t *testing.T) {
	if (TableName{Schema: "public", Name: "Users"}).String() != "public.Users" {
		t.Error("qualified String")
	}
	if (TableName{Name: "Users"}).Key() != "users" {
		t.Error("Key should case-fold")
	}
	if !(DataType{}).IsZero() || (DataType{Name: "INT"}).IsZero() {
		t.Error("IsZero")
	}
	kinds := []ConstraintKind{ConstraintPrimaryKey, ConstraintUnique, ConstraintForeignKey, ConstraintCheck, ConstraintIndex}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "UNKNOWN" || seen[s] {
			t.Errorf("constraint kind %d string %q", k, s)
		}
		seen[s] = true
	}
	if ConstraintKind(99).String() != "UNKNOWN" {
		t.Error("out-of-range kind")
	}
}

func TestErrorStrings(t *testing.T) {
	le := &LexError{Line: 3, Msg: "boom"}
	if !strings.Contains(le.Error(), "line 3") || !strings.Contains(le.Error(), "boom") {
		t.Errorf("LexError = %q", le.Error())
	}
	pe := &ParseError{Line: 7, Msg: "bad"}
	if !strings.Contains(pe.Error(), "line 7") {
		t.Errorf("ParseError = %q", pe.Error())
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	cases := map[string]string{
		`CREATE TABLE t (a TEXT DEFAULT 'it''s');`:     "'it's'",
		`CREATE TABLE t (a TEXT DEFAULT 'back\'s');`:   "'back's'",
		`CREATE TABLE t (a TEXT DEFAULT 'tab\there');`: "'tabthere'",
	}
	for src, want := range cases {
		ct := onlyCreate(t, src)
		if got := ct.Columns[0].Default; got != want {
			t.Errorf("%q: default = %q, want %q", src, got, want)
		}
	}
}

func TestMultilineStringLiteral(t *testing.T) {
	ct := onlyCreate(t, "CREATE TABLE t (a TEXT DEFAULT 'line1\nline2');")
	if !strings.Contains(ct.Columns[0].Default, "\n") {
		t.Errorf("default = %q", ct.Columns[0].Default)
	}
}

func TestColumnOptionEdgeCases(t *testing.T) {
	// Exercise the long tail of column options in one definition.
	ct := onlyCreate(t, `CREATE TABLE t (
		a VARCHAR(20) CHARACTER SET utf8 COLLATE utf8_bin NULL,
		b INT CONSTRAINT positive CHECK (b > 0),
		c TIMESTAMP ON UPDATE CURRENT_TIMESTAMP COMMENT 'audit',
		d INT STORAGE MEMORY,
		e INT FIRST,
		f INT AFTER e,
		g BIGINT ZEROFILL
	);`)
	if len(ct.Columns) != 7 {
		t.Fatalf("columns = %d: %+v", len(ct.Columns), ct.Columns)
	}
	if !ct.Columns[0].Null {
		t.Error("explicit NULL not recorded")
	}
	if ct.Columns[2].Comment != "audit" {
		t.Errorf("comment = %q", ct.Columns[2].Comment)
	}
	if !ct.Columns[6].Type.Zerofill {
		t.Error("zerofill lost")
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokenKind{tokEOF, tokIdent, tokQuotedIdent, tokNumber, tokString, tokSymbol}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("token kind %d string %q", k, s)
		}
		seen[s] = true
	}
	if tokenKind(42).String() != "unknown" {
		t.Error("out-of-range token kind")
	}
}

func TestGeneratedVirtualColumn(t *testing.T) {
	ct := onlyCreate(t, "CREATE TABLE t (a INT, b INT GENERATED ALWAYS AS (a * 2) VIRTUAL, c INT GENERATED BY DEFAULT AS IDENTITY (START WITH 10));")
	if len(ct.Columns) != 3 {
		t.Fatalf("columns = %+v", ct.Columns)
	}
	if !ct.Columns[2].AutoIncrement {
		t.Error("identity with options should be auto-increment")
	}
}

func TestDoubleQuoteEscapeInIdentifier(t *testing.T) {
	ct := onlyCreate(t, "CREATE TABLE `odd``name` (a INT);")
	if ct.Name.Name != "odd`name" {
		t.Errorf("name = %q", ct.Name.Name)
	}
}
