package sqlddl

import (
	"strings"
	"testing"
)

// Realistic dump excerpts in the styles the corpus projects actually used
// (MySQL and Postgres, per the data set's vendor filter). The parser must
// reconstruct the logical schema from each without strict-mode errors.

const mysqlDumpSample = "-- MySQL dump 10.13  Distrib 5.7.33\n" +
	"--\n" +
	"-- Host: localhost    Database: shop\n" +
	"-- ------------------------------------------------------\n" +
	"/*!40101 SET @OLD_CHARACTER_SET_CLIENT=@@CHARACTER_SET_CLIENT */;\n" +
	"/*!40101 SET NAMES utf8 */;\n" +
	"SET FOREIGN_KEY_CHECKS=0;\n" +
	"\n" +
	"DROP TABLE IF EXISTS `wp_posts`;\n" +
	"CREATE TABLE `wp_posts` (\n" +
	"  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,\n" +
	"  `post_author` bigint(20) unsigned NOT NULL DEFAULT '0',\n" +
	"  `post_date` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',\n" +
	"  `post_content` longtext NOT NULL,\n" +
	"  `post_title` text NOT NULL,\n" +
	"  `post_status` varchar(20) NOT NULL DEFAULT 'publish',\n" +
	"  `comment_count` bigint(20) NOT NULL DEFAULT '0',\n" +
	"  PRIMARY KEY (`ID`),\n" +
	"  KEY `post_name` (`post_status`(10)),\n" +
	"  KEY `type_status_date` (`post_status`,`post_date`,`ID`)\n" +
	") ENGINE=MyISAM AUTO_INCREMENT=4 DEFAULT CHARSET=utf8;\n" +
	"\n" +
	"LOCK TABLES `wp_posts` WRITE;\n" +
	"INSERT INTO `wp_posts` VALUES (1,1,'2019-01-01','hello; world','t1','publish',0);\n" +
	"UNLOCK TABLES;\n" +
	"\n" +
	"CREATE TABLE `wp_users` (\n" +
	"  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,\n" +
	"  `user_login` varchar(60) COLLATE utf8mb4_unicode_ci NOT NULL DEFAULT '',\n" +
	"  `user_registered` datetime NOT NULL,\n" +
	"  `user_status` int(11) NOT NULL DEFAULT 0 COMMENT 'deprecated',\n" +
	"  PRIMARY KEY (`ID`),\n" +
	"  UNIQUE KEY `user_login_key` (`user_login`)\n" +
	") ENGINE=InnoDB;\n"

func TestMySQLDumpStyle(t *testing.T) {
	script, errs := ParseLenient(mysqlDumpSample)
	for _, err := range errs {
		t.Errorf("diagnostic: %v", err)
	}
	cts := script.CreateTables()
	if len(cts) != 2 {
		t.Fatalf("CREATE TABLEs = %d, want 2", len(cts))
	}
	posts := cts[0]
	if posts.Name.Name != "wp_posts" || len(posts.Columns) != 7 {
		t.Errorf("wp_posts = %s with %d columns", posts.Name, len(posts.Columns))
	}
	id := posts.Columns[0]
	if id.Type.Name != "BIGINT" || !id.Type.Unsigned || !id.AutoIncrement {
		t.Errorf("ID column = %+v", id)
	}
	var pk, key, uniq int
	for _, c := range posts.Constraints {
		switch c.Kind {
		case ConstraintPrimaryKey:
			pk++
		case ConstraintIndex:
			key++
		}
	}
	if pk != 1 || key != 2 {
		t.Errorf("posts constraints pk=%d key=%d", pk, key)
	}
	users := cts[1]
	for _, c := range users.Constraints {
		if c.Kind == ConstraintUnique {
			uniq++
		}
	}
	if uniq != 1 {
		t.Errorf("users unique constraints = %d", uniq)
	}
}

const pgDumpSample = `--
-- PostgreSQL database dump
--
SET statement_timeout = 0;
SET client_encoding = 'UTF8';
SELECT pg_catalog.set_config('search_path', '', false);

CREATE TABLE public.accounts (
    id integer NOT NULL,
    email character varying(255) NOT NULL,
    balance numeric(12,2) DEFAULT 0.00,
    created_at timestamp with time zone DEFAULT now() NOT NULL,
    settings jsonb,
    tags text[]
);

ALTER TABLE public.accounts OWNER TO app;

CREATE SEQUENCE public.accounts_id_seq
    START WITH 1
    INCREMENT BY 1;

ALTER TABLE ONLY public.accounts
    ADD CONSTRAINT accounts_pkey PRIMARY KEY (id);

ALTER TABLE ONLY public.accounts
    ALTER COLUMN id SET DEFAULT nextval('public.accounts_id_seq'::regclass);

CREATE TABLE public.transfers (
    id bigserial PRIMARY KEY,
    from_account integer REFERENCES public.accounts(id) ON DELETE RESTRICT,
    amount numeric(12,2) NOT NULL CHECK (amount > 0)
);

COPY public.accounts (id, email) FROM stdin;
\.
`

func TestPostgresDumpStyle(t *testing.T) {
	script, errs := ParseLenient(pgDumpSample)
	for _, err := range errs {
		t.Errorf("diagnostic: %v", err)
	}
	cts := script.CreateTables()
	if len(cts) != 2 {
		t.Fatalf("CREATE TABLEs = %d, want 2", len(cts))
	}
	accounts := cts[0]
	if accounts.Name.Schema != "public" || accounts.Name.Name != "accounts" {
		t.Errorf("name = %+v", accounts.Name)
	}
	byName := map[string]ColumnDef{}
	for _, c := range accounts.Columns {
		byName[c.Name] = c
	}
	if byName["email"].Type.Name != "CHARACTER VARYING" {
		t.Errorf("email type = %+v", byName["email"].Type)
	}
	if byName["created_at"].Type.Name != "TIMESTAMP WITH TIME ZONE" {
		t.Errorf("created_at type = %+v", byName["created_at"].Type)
	}
	if !byName["tags"].Type.Array {
		t.Errorf("tags should be an array: %+v", byName["tags"].Type)
	}

	// The ALTER ... ADD CONSTRAINT and SET DEFAULT statements parse as
	// AlterTable.
	var alters int
	for _, st := range script.Statements {
		if _, ok := st.(*AlterTable); ok {
			alters++
		}
	}
	// OWNER TO parses as an AlterTable with an unknown action; pkey and
	// set-default are modeled.
	if alters != 3 {
		t.Errorf("ALTER TABLE count = %d, want 3", alters)
	}
}

func TestSQLiteStyleSchema(t *testing.T) {
	// A few histories carry SQLite-flavoured DDL; the core subset must
	// still parse.
	src := `
	PRAGMA foreign_keys=OFF;
	BEGIN TRANSACTION;
	CREATE TABLE IF NOT EXISTS "migrations" (
		"id" INTEGER PRIMARY KEY AUTOINCREMENT,
		"name" TEXT UNIQUE,
		"applied_at" DATETIME DEFAULT CURRENT_TIMESTAMP
	);
	COMMIT;`
	script, errs := ParseLenient(src)
	for _, err := range errs {
		t.Errorf("diagnostic: %v", err)
	}
	cts := script.CreateTables()
	if len(cts) != 1 || len(cts[0].Columns) != 3 {
		t.Fatalf("tables = %+v", cts)
	}
	if !cts[0].Columns[0].AutoIncrement || !cts[0].Columns[0].PrimaryKey {
		t.Errorf("id column = %+v", cts[0].Columns[0])
	}
}

func TestMultiStatementAlterChains(t *testing.T) {
	// Migration-style files chain many ALTERs; none may leak into the
	// next statement.
	var b strings.Builder
	b.WriteString("CREATE TABLE m (id INT);\n")
	for i := 0; i < 50; i++ {
		b.WriteString("ALTER TABLE m ADD COLUMN c")
		b.WriteByte(byte('0' + i%10))
		b.WriteByte(byte('0' + i/10))
		b.WriteString(" TEXT;\n")
	}
	script, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Statements) != 51 {
		t.Errorf("statements = %d", len(script.Statements))
	}
}
