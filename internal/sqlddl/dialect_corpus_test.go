package sqlddl

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite the dialect corpus golden files")

// TestDialectFixtureCorpus runs the deliberately messy per-dialect DDL
// fixtures through the recovering parser and compares the full parse
// report — statement outcomes, stats and categorized diagnostics — with
// committed goldens. The fixtures seed truncated statements, mixed
// quoting, vendor comments and GO separators; every seeded error must
// come back as a coded Diagnostic while the rest of the file survives.
func TestDialectFixtureCorpus(t *testing.T) {
	for _, d := range Dialects() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			src := readFixture(t, d)
			golden := filepath.Join("testdata", "dialects", d.String()+".golden")
			got := formatParseReport(src, d)
			if *updateGoldens {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("parse report drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestDialectFixtureHealth asserts the corpus-wide invariants the
// parse-health smoke script also checks: every fixture yields statements,
// every diagnostic is categorized with a position, and the stats add up.
func TestDialectFixtureHealth(t *testing.T) {
	for _, d := range Dialects() {
		src := readFixture(t, d)
		script, diags := ParseWithDiagnostics(src, d)
		if script == nil || len(script.Statements) == 0 {
			t.Fatalf("%s: no statements survived", d)
		}
		st := script.Stats
		if st.Attempted != st.Parsed+st.Recovered+st.Dropped {
			t.Errorf("%s: stats don't add up: %+v", d, st)
		}
		if st.Recovered+st.Dropped == 0 {
			t.Errorf("%s: fixture seeded errors but stats report a clean parse", d)
		}
		if len(diags) == 0 {
			t.Errorf("%s: fixture seeded errors but no diagnostics came back", d)
		}
		for _, diag := range diags {
			if diag.Category == "" || CategoryOf(diag.Code) == "" {
				t.Errorf("%s: uncategorized diagnostic %+v", d, diag)
			}
			if diag.Line < 1 || diag.Col < 1 {
				t.Errorf("%s: diagnostic without position %+v", d, diag)
			}
		}
		if detected := DetectDialect(src); detected != d {
			t.Errorf("DetectDialect(%s fixture) = %s", d, detected)
		}
	}
}

func readFixture(t *testing.T, d Dialect) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "dialects", d.String()+".sql"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// formatParseReport renders a parse the way the goldens store it: the
// resolved dialect, per-statement outcome kinds, the stats line and each
// diagnostic in line:col order.
func formatParseReport(src string, d Dialect) string {
	script, diags := ParseWithDiagnostics(src, d)
	var b strings.Builder
	fmt.Fprintf(&b, "dialect: %s\n", script.Dialect)
	st := script.Stats
	fmt.Fprintf(&b, "stats: attempted=%d parsed=%d recovered=%d dropped=%d\n",
		st.Attempted, st.Parsed, st.Recovered, st.Dropped)
	for _, stmt := range script.Statements {
		fmt.Fprintf(&b, "stmt: line=%d %s\n", stmt.StartLine(), statementKind(stmt))
	}
	for _, diag := range diags {
		fmt.Fprintf(&b, "diag: %s\n", diag)
	}
	return b.String()
}

func statementKind(stmt Statement) string {
	switch s := stmt.(type) {
	case *CreateTable:
		return "CREATE TABLE " + s.Name.String()
	case *AlterTable:
		return "ALTER TABLE " + s.Name.String()
	case *DropTable:
		return "DROP TABLE"
	case *RenameTable:
		return "RENAME TABLE"
	case *SkippedStatement:
		if s.Keyword == "" {
			return "skipped"
		}
		return "skipped " + s.Keyword
	default:
		return fmt.Sprintf("%T", stmt)
	}
}

func TestMSSQLGoSeparator(t *testing.T) {
	src := "CREATE TABLE a ([Id] INT)\nGO\nCREATE TABLE b ([Id] INT)\n  go  \nSELECT [Id] FROM go" // trailing "go" is an identifier
	script, diags := ParseWithDiagnostics(src, MSSQL)
	if len(diags) != 0 {
		t.Fatalf("diagnostics: %v", diags)
	}
	if n := len(script.CreateTables()); n != 2 {
		t.Fatalf("CREATE TABLEs = %d, want 2", n)
	}
	if n := len(script.Statements); n != 3 {
		t.Fatalf("statements = %d, want 3 (two tables + skipped SELECT)", n)
	}
	// Under every other dialect GO is just an identifier, so the two
	// INSERTs below stay one statement instead of splitting at GO.
	script, _ = ParseWithDiagnostics("INSERT INTO a VALUES (1)\nGO\nINSERT INTO b VALUES (2)\n", Generic)
	if n := len(script.Statements); n != 1 {
		t.Fatalf("generic parse treated GO as separator: %+v", script.Statements)
	}
}

func TestMySQLDoubleQuotedString(t *testing.T) {
	src := `CREATE TABLE t (a VARCHAR(10) DEFAULT "x");`
	ct := func(d Dialect) *CreateTable {
		script, diags := ParseWithDiagnostics(src, d)
		if len(diags) != 0 {
			t.Fatalf("%s: diagnostics: %v", d, diags)
		}
		cts := script.CreateTables()
		if len(cts) != 1 {
			t.Fatalf("%s: CREATE TABLEs = %d", d, len(cts))
		}
		return cts[0]
	}
	if got := ct(MySQL).Columns[0].Default; got != "'x'" {
		t.Errorf("mysql default = %q, want string literal 'x'", got)
	}
	if got := ct(Generic).Columns[0].Default; got != "X" {
		t.Errorf("generic default = %q, want identifier X", got)
	}
}

func TestLexRecoveryResynchronizes(t *testing.T) {
	src := "CREATE TABLE a (x INT);\nINSERT INTO t VALUES ('broken);\nCREATE TABLE b (y INT);\n"
	script, diags := ParseWithDiagnostics(src, Generic)
	if n := len(script.CreateTables()); n != 2 {
		t.Fatalf("CREATE TABLEs = %d, want 2 (statement after lex error must survive)", n)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want one lex diagnostic", diags)
	}
	d := diags[0]
	if d.Code != CodeLexString || d.Category != CategoryLex {
		t.Errorf("diagnostic = %+v, want %s/%s", d, CodeLexString, CategoryLex)
	}
	if d.Line != 2 || d.Col != 23 {
		t.Errorf("position = %d:%d, want 2:23", d.Line, d.Col)
	}
	if script.Stats.Dropped != 1 || script.Stats.Parsed != 2 {
		t.Errorf("stats = %+v", script.Stats)
	}
}

func TestParseDialectRoundTrip(t *testing.T) {
	for _, d := range append(Dialects(), Auto) {
		got, err := ParseDialect(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDialect(%q) = %v, %v", d.String(), got, err)
		}
	}
	if d, err := ParseDialect(""); err != nil || d != Generic {
		t.Errorf("ParseDialect(\"\") = %v, %v", d, err)
	}
	if _, err := ParseDialect("oracle"); err == nil {
		t.Error("ParseDialect(\"oracle\") should fail")
	}
}

func TestAutoDialectResolves(t *testing.T) {
	script, _ := ParseWithDiagnostics("CREATE TABLE `t` (a INT) ENGINE=InnoDB;", Auto)
	if script.Dialect != MySQL {
		t.Errorf("resolved dialect = %s, want mysql", script.Dialect)
	}
}
