# MySQL-style hash comment
/*!40101 SET @OLD_CHARACTER_SET_CLIENT=@@CHARACTER_SET_CLIENT */;
CREATE TABLE `posts` (
  `id` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `title` varchar(200) NOT NULL DEFAULT "untitled",
  `status` enum('draft','live') DEFAULT 'draft',
  PRIMARY KEY (`id`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

ALTER TABLE `posts` ADD COLUMN `views` int NOT NULL DEFAULT 0;

CREATE TABLE ok_after (id INT);

CREATE TABLE `broken (id INT);
