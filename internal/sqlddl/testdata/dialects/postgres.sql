CREATE TABLE accounts (
    id BIGSERIAL PRIMARY KEY,
    email TEXT NOT NULL UNIQUE,
    meta JSONB DEFAULT '{}'::jsonb,
    created TIMESTAMP WITH TIME ZONE DEFAULT now()
);

CREATE FUNCTION noop() RETURNS void AS $$ BEGIN END; $$ LANGUAGE plpgsql;

CREATE TABLE broken (
    id INT,
    CHECK (id > 0
);

ALTER TABLE accounts ALTER COLUMN email SET DEFAULT 'unknown';
