-- generic messy fixture: vendor noise, truncated DDL, a stray quote
CREATE TABLE users (
  id INT NOT NULL,
  name VARCHAR(100) DEFAULT 'n/a',
  PRIMARY KEY (id)
);

INSERT INTO users VALUES (1, 'it''s fine');

CREATE TABLE broken (
  id INT,
  label VARCHAR(10;

ALTER TABLE users ADD COLUMN bio TEXT;

INSERT INTO notes VALUES (1, 'oops unterminated);

CREATE TABLE after_recovery (id INT);

DROP TABLE old_stuff;
