CREATE TABLE [dbo].[Employees] (
    [Id] INT IDENTITY(1,1) NOT NULL,
    [FullName] NVARCHAR(200) NOT NULL,
    [HiredAt] DATETIME2 DEFAULT GETDATE(),
    CONSTRAINT [PK_Employees] PRIMARY KEY ([Id])
)
GO

CREATE TABLE [dbo].[Depts] (
    [Id] INT NOT NULL,
    [Name] NVARCHAR(100)
)
GO

ALTER TABLE [dbo].[Employees] ADD [DeptId] INT
GO

CREATE TABLE [dbo].[Broken] (
    [Id] INT,
    [Notes] NVARCHAR(MAX,
)
GO
