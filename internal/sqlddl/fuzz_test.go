package sqlddl

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// fuzzParser is one Parser shared across every fuzz iteration — exactly
// the reuse pattern of the mining hot path. The mutex serializes access
// so the target stays safe if the harness ever runs iterations in
// parallel within one process.
var (
	fuzzParserMu sync.Mutex
	fuzzParser   = NewParser()
)

// FuzzParseLenient asserts the mining pipeline's hard requirement: no SQL
// input — however garbled — may panic the lenient parser or return a nil
// script. Run with `go test -fuzz=FuzzParseLenient ./internal/sqlddl`.
func FuzzParseLenient(f *testing.F) {
	seeds := []string{
		"",
		"CREATE TABLE t (a INT);",
		"CREATE TABLE `weird``name` (a ENUM('x','y''z'), b INT UNSIGNED);",
		"ALTER TABLE t ADD COLUMN c TEXT, DROP PRIMARY KEY;",
		"INSERT INTO t VALUES ('a;b', \"c\");",
		"/* unterminated",
		"CREATE TABLE t (a int",
		"'unterminated string",
		"$tag$ body $tag$;",
		"SELECT 1; CREATE TABLE x (y int); DROP TABLE x;",
		"CREATE TABLE t (a TIMESTAMP WITH TIME ZONE DEFAULT now());",
		"RENAME TABLE a TO b, c TO d;",
		"\x00\x01\x02 CREATE TABLE t (a INT);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, errs := ParseLenient(src)
		if script == nil {
			t.Fatal("ParseLenient returned nil script")
		}
		// Differential: the reusable parser — the same instance across all
		// fuzz iterations, slabs loaded with whatever earlier inputs left
		// behind — must reproduce the fresh parse exactly.
		fuzzParserMu.Lock()
		pooled, pooledErrs := fuzzParser.ParseLenient(src)
		if pooled == nil {
			fuzzParserMu.Unlock()
			t.Fatal("reused Parser returned nil script")
		}
		if len(pooledErrs) != len(errs) {
			fuzzParserMu.Unlock()
			t.Fatalf("reused Parser error count %d, fresh %d", len(pooledErrs), len(errs))
		}
		for i := range errs {
			if errs[i].Error() != pooledErrs[i].Error() {
				fuzzParserMu.Unlock()
				t.Fatalf("reused Parser error %d diverged: %v vs %v", i, pooledErrs[i], errs[i])
			}
		}
		if len(pooled.Statements) != len(script.Statements) {
			fuzzParserMu.Unlock()
			t.Fatalf("reused Parser yielded %d statements, fresh %d", len(pooled.Statements), len(script.Statements))
		}
		for i := range script.Statements {
			if !reflect.DeepEqual(script.Statements[i], pooled.Statements[i]) {
				fuzzParserMu.Unlock()
				t.Fatalf("reused Parser statement %d diverged:\nfresh:  %#v\npooled: %#v",
					i, script.Statements[i], pooled.Statements[i])
			}
		}
		fuzzParserMu.Unlock()
		// Dialect sweep: the recovering parser must survive every adapter
		// (quoting rules, GO separators, hash-comment gating) on arbitrary
		// input — never panicking, never dropping the script, always
		// accounting for every statement and categorizing every
		// diagnostic. Auto additionally exercises dialect detection.
		for _, d := range append(Dialects(), Auto) {
			dialectScript, diags := ParseWithDiagnostics(src, d)
			if dialectScript == nil {
				t.Fatalf("ParseWithDiagnostics(%s) returned nil script", d)
			}
			st := dialectScript.Stats
			if st.Attempted != st.Parsed+st.Recovered+st.Dropped {
				t.Fatalf("ParseWithDiagnostics(%s) stats don't add up: %+v", d, st)
			}
			if st.Parsed+st.Recovered < len(dialectScript.Statements) {
				t.Fatalf("ParseWithDiagnostics(%s) returned %d statements but accounted for %d",
					d, len(dialectScript.Statements), st.Parsed+st.Recovered)
			}
			for _, diag := range diags {
				if diag.Category == "" {
					t.Fatalf("ParseWithDiagnostics(%s) uncategorized diagnostic %+v", d, diag)
				}
				if diag.Line < 1 || diag.Col < 1 {
					t.Fatalf("ParseWithDiagnostics(%s) diagnostic without position: %+v", d, diag)
				}
			}
		}
		// Round-trip invariant: every statement carries its raw text, and
		// re-parsing that text alone reproduces a single statement of the
		// same kind. This is what lets cached results be keyed by
		// statement bytes: the text is a faithful, self-contained
		// representation of what was parsed.
		for i, stmt := range script.Statements {
			raw := stmt.Raw()
			if raw == "" {
				t.Fatalf("statement %d (%T) has empty raw text", i, stmt)
			}
			again, _ := ParseLenient(raw)
			if again == nil {
				t.Fatalf("re-parse of statement %d returned nil script", i)
			}
			if len(again.Statements) != 1 {
				t.Fatalf("re-parse of statement %d (%T) yielded %d statements from %q",
					i, stmt, len(again.Statements), raw)
			}
			if got, want := fmt.Sprintf("%T", again.Statements[0]), fmt.Sprintf("%T", stmt); got != want {
				t.Fatalf("re-parse of statement %d changed kind: %s -> %s for %q", i, want, got, raw)
			}
		}
	})
}
