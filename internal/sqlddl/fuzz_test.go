package sqlddl

import "testing"

// FuzzParseLenient asserts the mining pipeline's hard requirement: no SQL
// input — however garbled — may panic the lenient parser or return a nil
// script. Run with `go test -fuzz=FuzzParseLenient ./internal/sqlddl`.
func FuzzParseLenient(f *testing.F) {
	seeds := []string{
		"",
		"CREATE TABLE t (a INT);",
		"CREATE TABLE `weird``name` (a ENUM('x','y''z'), b INT UNSIGNED);",
		"ALTER TABLE t ADD COLUMN c TEXT, DROP PRIMARY KEY;",
		"INSERT INTO t VALUES ('a;b', \"c\");",
		"/* unterminated",
		"CREATE TABLE t (a int",
		"'unterminated string",
		"$tag$ body $tag$;",
		"SELECT 1; CREATE TABLE x (y int); DROP TABLE x;",
		"CREATE TABLE t (a TIMESTAMP WITH TIME ZONE DEFAULT now());",
		"RENAME TABLE a TO b, c TO d;",
		"\x00\x01\x02 CREATE TABLE t (a INT);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, _ := ParseLenient(src)
		if script == nil {
			t.Fatal("ParseLenient returned nil script")
		}
		// Statements the parser accepts must carry their raw text.
		for _, stmt := range script.Statements {
			_ = stmt.Raw()
		}
	})
}
