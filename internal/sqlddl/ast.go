package sqlddl

import "strings"

// Statement is the interface implemented by every parsed SQL statement.
type Statement interface {
	stmtNode()
	// Raw returns the original SQL text of the statement.
	Raw() string
	// StartLine returns the 1-based source line the statement starts on.
	StartLine() int
}

// stmtBase carries the original SQL text for every statement type.
type stmtBase struct {
	RawSQL string
	Line   int
}

func (s stmtBase) Raw() string { return s.RawSQL }

// StartLine returns the 1-based source line the statement starts on,
// letting downstream layers (schema application) anchor their own
// diagnostics to the statement.
func (s stmtBase) StartLine() int { return s.Line }

// TableName is a possibly schema-qualified table name.
type TableName struct {
	Schema string // optional qualifier ("public" in public.users)
	Name   string
}

// String renders the qualified name.
func (t TableName) String() string {
	if t.Schema != "" {
		return t.Schema + "." + t.Name
	}
	return t.Name
}

// Key returns the case-folded lookup key for the table. The study treats
// identifiers case-insensitively, as both MySQL (on the default file
// systems of FOSS projects) and unquoted Postgres identifiers fold case.
func (t TableName) Key() string {
	for i := 0; i < len(t.Name); i++ {
		c := t.Name[i]
		if c >= 0x80 || ('A' <= c && c <= 'Z') {
			return strings.ToLower(t.Name)
		}
	}
	return t.Name // already folded, no copy needed
}

// DataType is a parsed SQL data type, e.g. VARCHAR(255) or NUMERIC(10,2)
// UNSIGNED or TIMESTAMP WITH TIME ZONE.
type DataType struct {
	// Name is the upper-cased, space-normalized type name, possibly
	// multi-word ("DOUBLE PRECISION", "TIMESTAMP WITH TIME ZONE").
	Name string
	// Args holds the literal argument texts inside parentheses, e.g.
	// ["255"] or ["10", "2"] or enum values.
	Args []string
	// Unsigned and Zerofill are the MySQL numeric modifiers.
	Unsigned bool
	Zerofill bool
	// Array marks Postgres array types (INT[] or INT ARRAY).
	Array bool
}

// IsZero reports whether the type is unset.
func (d DataType) IsZero() bool { return d.Name == "" }

// String renders the type in canonical form. The common bare-name case
// (no arguments or modifiers) returns the name without allocating.
func (d DataType) String() string {
	if len(d.Args) == 0 && !d.Unsigned && !d.Zerofill && !d.Array {
		return d.Name
	}
	var b strings.Builder
	b.WriteString(d.Name)
	if len(d.Args) > 0 {
		b.WriteByte('(')
		b.WriteString(strings.Join(d.Args, ","))
		b.WriteByte(')')
	}
	if d.Unsigned {
		b.WriteString(" UNSIGNED")
	}
	if d.Zerofill {
		b.WriteString(" ZEROFILL")
	}
	if d.Array {
		b.WriteString("[]")
	}
	return b.String()
}

// ColumnDef is one column definition inside CREATE TABLE or an ALTER
// action.
type ColumnDef struct {
	Name          string
	Type          DataType
	NotNull       bool
	Null          bool // explicit NULL was written
	Default       string
	HasDefault    bool
	AutoIncrement bool
	PrimaryKey    bool // inline PRIMARY KEY
	Unique        bool // inline UNIQUE
	References    *ForeignKeyRef
	Comment       string
}

// ForeignKeyRef is the REFERENCES part of an inline or table-level foreign
// key.
type ForeignKeyRef struct {
	Table   TableName
	Columns []string
	// OnDelete and OnUpdate hold the referential action keywords when
	// present (e.g. "CASCADE", "SET NULL").
	OnDelete string
	OnUpdate string
}

// TableConstraint is a table-level constraint inside CREATE TABLE or an
// ALTER TABLE ... ADD action.
type TableConstraint struct {
	Kind    ConstraintKind
	Name    string   // optional constraint/index name
	Columns []string // key columns (index expressions reduced to the column)
	Ref     *ForeignKeyRef
	Check   string // raw text of a CHECK body
}

// ConstraintKind enumerates the table-level constraint kinds.
type ConstraintKind int

// The supported constraint kinds.
const (
	ConstraintPrimaryKey ConstraintKind = iota
	ConstraintUnique
	ConstraintForeignKey
	ConstraintCheck
	ConstraintIndex // plain KEY/INDEX (MySQL), kept for completeness
)

// String names the constraint kind.
func (k ConstraintKind) String() string {
	switch k {
	case ConstraintPrimaryKey:
		return "PRIMARY KEY"
	case ConstraintUnique:
		return "UNIQUE"
	case ConstraintForeignKey:
		return "FOREIGN KEY"
	case ConstraintCheck:
		return "CHECK"
	case ConstraintIndex:
		return "INDEX"
	default:
		return "UNKNOWN"
	}
}

// CreateTable is a parsed CREATE TABLE statement.
type CreateTable struct {
	stmtBase
	Name        TableName
	IfNotExists bool
	Temporary   bool
	Columns     []ColumnDef
	Constraints []TableConstraint
	// AsSelect marks CREATE TABLE ... AS SELECT forms, whose column list
	// cannot be derived statically; the statement is retained with no
	// columns.
	AsSelect bool
}

func (*CreateTable) stmtNode() {}

// DropTable is a parsed DROP TABLE statement (possibly multi-table).
type DropTable struct {
	stmtBase
	Names    []TableName
	IfExists bool
}

func (*DropTable) stmtNode() {}

// RenameTable is MySQL's RENAME TABLE a TO b[, c TO d].
type RenameTable struct {
	stmtBase
	Renames []TableRename
}

// TableRename is one FROM→TO pair of a RenameTable.
type TableRename struct {
	From, To TableName
}

func (*RenameTable) stmtNode() {}

// AlterTable is a parsed ALTER TABLE with its action list.
type AlterTable struct {
	stmtBase
	Name     TableName
	IfExists bool
	Actions  []AlterAction
}

func (*AlterTable) stmtNode() {}

// AlterAction is one comma-separated action of an ALTER TABLE.
type AlterAction interface{ alterNode() }

// AddColumn adds a column (ALTER TABLE ... ADD [COLUMN] def).
type AddColumn struct {
	Column ColumnDef
	// IfNotExists is the Postgres ADD COLUMN IF NOT EXISTS form.
	IfNotExists bool
}

func (AddColumn) alterNode() {}

// DropColumn removes a column.
type DropColumn struct {
	Name     string
	IfExists bool
}

func (DropColumn) alterNode() {}

// ModifyColumn redefines a column in place (MySQL MODIFY COLUMN, or the
// merged effect of Postgres ALTER COLUMN ... TYPE).
type ModifyColumn struct {
	Column ColumnDef
}

func (ModifyColumn) alterNode() {}

// ChangeColumn renames and redefines a column (MySQL CHANGE COLUMN).
type ChangeColumn struct {
	OldName string
	Column  ColumnDef
}

func (ChangeColumn) alterNode() {}

// RenameColumn renames a column (standard RENAME COLUMN old TO new).
type RenameColumn struct {
	OldName, NewName string
}

func (RenameColumn) alterNode() {}

// AlterColumnType is Postgres ALTER COLUMN name TYPE type.
type AlterColumnType struct {
	Name string
	Type DataType
}

func (AlterColumnType) alterNode() {}

// AlterColumnNullability is Postgres ALTER COLUMN name SET/DROP NOT NULL.
type AlterColumnNullability struct {
	Name    string
	NotNull bool
}

func (AlterColumnNullability) alterNode() {}

// AlterColumnDefault is Postgres ALTER COLUMN name SET DEFAULT expr or DROP
// DEFAULT.
type AlterColumnDefault struct {
	Name    string
	Default string
	Drop    bool
}

func (AlterColumnDefault) alterNode() {}

// AddConstraint adds a table constraint.
type AddConstraint struct {
	Constraint TableConstraint
}

func (AddConstraint) alterNode() {}

// DropConstraint removes a named constraint, a primary key, a foreign key
// or an index, depending on Kind.
type DropConstraint struct {
	Kind ConstraintKind
	Name string // empty for DROP PRIMARY KEY
}

func (DropConstraint) alterNode() {}

// RenameTo renames the table (ALTER TABLE ... RENAME TO new).
type RenameTo struct {
	NewName TableName
}

func (RenameTo) alterNode() {}

// UnknownAction preserves an ALTER action the parser does not model
// (engine options, tablespace moves, trigger toggles, ...).
type UnknownAction struct {
	Text string
}

func (UnknownAction) alterNode() {}

// SkippedStatement preserves a whole statement outside the modeled DDL
// subset (INSERT, SET, CREATE INDEX, vendor directives, ...). Keyword is
// the upper-cased leading keyword, or "" for fragments.
type SkippedStatement struct {
	stmtBase
	Keyword string
}

func (*SkippedStatement) stmtNode() {}

// Script is a parsed SQL file.
type Script struct {
	Statements []Statement
	// Dialect is the dialect the script was parsed under (the resolved
	// dialect when Auto was requested).
	Dialect Dialect
	// Stats counts what happened to each statement of the parse.
	Stats ParseStats
}

// CreateTables returns the CREATE TABLE statements of the script, a
// convenience for the data set's "has at least one CREATE TABLE" filter.
func (s *Script) CreateTables() []*CreateTable {
	var out []*CreateTable
	for _, st := range s.Statements {
		if ct, ok := st.(*CreateTable); ok {
			out = append(out, ct)
		}
	}
	return out
}
