package sqlddl

import (
	"fmt"
	"strings"
	"testing"
)

// benchSchema synthesizes a DDL script with n tables of 8 columns each,
// table constraints, and interleaved non-DDL noise, approximating a real
// dump.
func benchSchema(n int) string {
	var b strings.Builder
	b.WriteString("SET NAMES utf8;\n-- generated dump\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "CREATE TABLE `table_%03d` (\n", i)
		fmt.Fprintf(&b, "  `id` INT NOT NULL AUTO_INCREMENT,\n")
		fmt.Fprintf(&b, "  `name` VARCHAR(255) NOT NULL DEFAULT 'x',\n")
		fmt.Fprintf(&b, "  `price` DECIMAL(10,2) UNSIGNED,\n")
		fmt.Fprintf(&b, "  `created` TIMESTAMP DEFAULT CURRENT_TIMESTAMP,\n")
		fmt.Fprintf(&b, "  `status` ENUM('a','b','c'),\n")
		fmt.Fprintf(&b, "  `payload` TEXT,\n")
		fmt.Fprintf(&b, "  `owner_id` INT REFERENCES owners(id) ON DELETE CASCADE,\n")
		fmt.Fprintf(&b, "  `flags` BIGINT,\n")
		fmt.Fprintf(&b, "  PRIMARY KEY (`id`),\n")
		fmt.Fprintf(&b, "  UNIQUE KEY uniq_name (`name`),\n")
		fmt.Fprintf(&b, "  KEY idx_owner (`owner_id`)\n")
		fmt.Fprintf(&b, ") ENGINE=InnoDB DEFAULT CHARSET=utf8;\n")
		fmt.Fprintf(&b, "INSERT INTO `table_%03d` VALUES (1, 'seed; row', 9.99, NOW(), 'a', NULL, 1, 0);\n", i)
	}
	return b.String()
}

func BenchmarkParse20Tables(b *testing.B) {
	src := benchSchema(20)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLenient100Tables(b *testing.B) {
	src := benchSchema(100)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		script, _ := ParseLenient(src)
		if len(script.CreateTables()) != 100 {
			b.Fatal("lost tables")
		}
	}
}

func BenchmarkParseAlterHeavy(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE t (a INT);\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "ALTER TABLE t ADD COLUMN c%d VARCHAR(%d) NOT NULL DEFAULT 'v';\n", i, i%40+1)
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
