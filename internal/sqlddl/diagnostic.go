package sqlddl

import (
	"fmt"
	"strings"
)

// Diagnostic is one categorized parse problem with its source position.
// It is the structured form of the errors ParseLenient returns: every
// recovering parse records one Diagnostic per problem it survived, so a
// mining pipeline can report parse health instead of dropping input
// silently.
type Diagnostic struct {
	// Code is the stable machine-readable code, e.g. "DDL-SYN-001". The
	// taxonomy is documented in DESIGN.md; codes never change meaning.
	Code string
	// Category is the code's family: "lex" (tokenization failed and the
	// parser resynchronized at the next statement boundary), "syntax"
	// (one statement was malformed and demoted to SkippedStatement) or
	// "semantic" (the statement parsed but could not be applied to the
	// schema — produced by internal/schema, not by this package).
	Category string
	// Line and Col locate the problem (1-based; Col is a byte column).
	Line, Col int
	// Msg is the human-readable description.
	Msg string
	// Snippet is the trimmed source line the problem sits on, truncated
	// for report display.
	Snippet string
}

// String renders the diagnostic in the file:line:col style used by
// `coevo parse`.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s [%s] %s", d.Line, d.Col, d.Code, d.Category, d.Msg)
}

// The diagnostic code taxonomy. Lex codes mean the tokenizer lost its
// footing and the parser dropped source up to the next statement
// boundary; syntax codes mean a single statement was demoted; semantic
// codes are reserved for schema application (see internal/schema).
const (
	CodeLexString  = "DDL-LEX-001" // unterminated string literal
	CodeLexQuoted  = "DDL-LEX-002" // unterminated quoted identifier
	CodeLexComment = "DDL-LEX-003" // unterminated block comment
	CodeLexDollar  = "DDL-LEX-004" // unterminated dollar-quoted string
	CodeSynToken   = "DDL-SYN-001" // unexpected or missing token
	CodeSynList    = "DDL-SYN-002" // unterminated list / unbalanced parentheses
	CodeSynTrail   = "DDL-SYN-003" // trailing tokens after a complete statement
	CodeSemApply   = "DDL-SEM-001" // statement could not be applied to the schema
)

// Diagnostic categories, derived from the code prefix.
const (
	CategoryLex      = "lex"
	CategorySyntax   = "syntax"
	CategorySemantic = "semantic"
)

// CategoryOf maps a diagnostic code to its category. Unknown codes map
// to "" so report layers can flag them instead of misfiling them.
func CategoryOf(code string) string {
	switch {
	case strings.HasPrefix(code, "DDL-LEX-"):
		return CategoryLex
	case strings.HasPrefix(code, "DDL-SYN-"):
		return CategorySyntax
	case strings.HasPrefix(code, "DDL-SEM-"):
		return CategorySemantic
	default:
		return ""
	}
}

// ParseStats counts what happened to each statement of one parse. The
// invariant is Attempted == Parsed + Recovered + Dropped.
type ParseStats struct {
	// Attempted counts non-empty statements the parser saw, including
	// regions lost to lexical resynchronization.
	Attempted int
	// Parsed counts statements that came back as modeled DDL or as a
	// deliberately tolerated SkippedStatement (non-DDL such as INSERTs).
	Parsed int
	// Recovered counts malformed DDL statements demoted to
	// SkippedStatement with a syntax Diagnostic.
	Recovered int
	// Dropped counts statements abandoned during lexical recovery: their
	// tokens could not be trusted, so only a Diagnostic remains.
	Dropped int
}

// Add accumulates other into s.
func (s *ParseStats) Add(other ParseStats) {
	s.Attempted += other.Attempted
	s.Parsed += other.Parsed
	s.Recovered += other.Recovered
	s.Dropped += other.Dropped
}

// Clean reports whether every statement parsed without recovery.
func (s ParseStats) Clean() bool { return s.Recovered == 0 && s.Dropped == 0 }

// maxSnippet bounds the snippet length carried in a Diagnostic.
const maxSnippet = 120

// diagnosticFromError builds the structured diagnostic for a *ParseError
// or *LexError produced while parsing src. Other error types (there are
// none today) degrade to an uncoded syntax diagnostic.
func diagnosticFromError(src string, err error) Diagnostic {
	var line, pos int
	var code, msg string
	switch e := err.(type) {
	case *ParseError:
		line, pos, code, msg = e.Line, e.Pos, e.Code, e.Msg
	case *LexError:
		line, pos, code, msg = e.Line, e.Pos, e.Code, e.Msg
	default:
		return Diagnostic{Code: CodeSynToken, Category: CategorySyntax, Line: 1, Col: 1, Msg: err.Error()}
	}
	if code == "" {
		code = CodeSynToken
	}
	col, snippet := locate(src, pos)
	return Diagnostic{
		Code:     code,
		Category: CategoryOf(code),
		Line:     line,
		Col:      col,
		Msg:      msg,
		Snippet:  snippet,
	}
}

// diagnosticsFromErrors converts the parser's internal error list to
// structured diagnostics. A clean parse returns nil, keeping the happy
// path allocation-free.
func diagnosticsFromErrors(src string, errs []error) []Diagnostic {
	if len(errs) == 0 {
		return nil
	}
	out := make([]Diagnostic, len(errs))
	for i, err := range errs {
		out[i] = diagnosticFromError(src, err)
	}
	return out
}

// locate converts a byte offset into a 1-based column and extracts the
// trimmed source line around it.
func locate(src string, pos int) (col int, snippet string) {
	if pos < 0 {
		pos = 0
	}
	if pos > len(src) {
		pos = len(src)
	}
	lineStart := strings.LastIndexByte(src[:pos], '\n') + 1
	col = pos - lineStart + 1
	lineEnd := strings.IndexByte(src[pos:], '\n')
	if lineEnd < 0 {
		lineEnd = len(src)
	} else {
		lineEnd += pos
	}
	snippet = strings.Trim(src[lineStart:lineEnd], lexWhitespace)
	if len(snippet) > maxSnippet {
		snippet = snippet[:maxSnippet] + "..."
	}
	return col, snippet
}
