package sqlddl

import (
	"strings"
	"sync"
)

// Parser is a reusable DDL parser. A single Parser amortizes every
// internal buffer across calls: the token slab, statement spans, the
// statement cursor and arena-style slabs for the AST node types a script
// produces in bulk. After the first few calls a steady-state Parse
// performs almost no allocation beyond the strings retained in the AST
// (and those are zero-copy slices of the input buffer whenever the
// source text needs no unescaping).
//
// Ownership contract: the *Script returned by Parse/ParseLenient — and
// everything reachable from it — is valid only until the next call to
// Parse, ParseLenient or Reset on the same Parser. Callers that retain
// AST nodes past that point must either copy what they keep or use the
// package-level Parse/ParseLenient functions, which dedicate a fresh
// Parser per call and therefore return fully retainable scripts.
// Identifier and literal strings inside the AST alias the input buffer;
// they remain valid for the life of the Go string passed in (strings are
// immutable), independent of parser reuse.
//
// A Parser is not safe for concurrent use; use one per goroutine or the
// package-level pooled helpers.
type Parser struct {
	toks    []token
	spans   []stmtSpan
	out     []Statement
	sp      stmtParser
	dialect Dialect

	ctSlab  []CreateTable
	atSlab  []AlterTable
	dtSlab  []DropTable
	rtSlab  []RenameTable
	skSlab  []SkippedStatement
	colSlab []ColumnDef

	script Script
}

// stmtSpan is one statement's raw text plus its token range inside the
// parser's flat token slab.
type stmtSpan struct {
	text       string
	line       int
	start, end int
}

// NewParser returns an empty reusable parser.
func NewParser() *Parser { return &Parser{} }

// Reset recycles every internal buffer. Scripts returned by earlier
// calls become invalid.
func (p *Parser) Reset() {
	p.toks = p.toks[:0]
	p.spans = p.spans[:0]
	p.out = p.out[:0]
	p.ctSlab = p.ctSlab[:0]
	p.atSlab = p.atSlab[:0]
	p.dtSlab = p.dtSlab[:0]
	p.rtSlab = p.rtSlab[:0]
	p.skSlab = p.skSlab[:0]
	p.colSlab = p.colSlab[:0]
	p.script = Script{}
}

// Parse parses src strictly, like the package-level Parse, reusing the
// parser's buffers. See the type comment for the ownership contract.
func (p *Parser) Parse(src string) (*Script, error) {
	script, errs := p.parse(src, Generic, true)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return script, nil
}

// ParseLenient parses src leniently, like the package-level
// ParseLenient, reusing the parser's buffers. See the type comment for
// the ownership contract.
//
// Deprecated: use ParseWithDiagnostics, which adds dialect selection and
// returns structured, categorized diagnostics instead of bare errors.
func (p *Parser) ParseLenient(src string) (*Script, []error) {
	return p.parse(src, Generic, false)
}

// ParseWithDiagnostics parses src leniently in the given dialect, like
// the package-level ParseWithDiagnostics, reusing the parser's buffers.
// See the type comment for the ownership contract.
func (p *Parser) ParseWithDiagnostics(src string, d Dialect) (*Script, []Diagnostic) {
	script, errs := p.parse(src, d, false)
	return script, diagnosticsFromErrors(src, errs)
}

// Arena constructors: statement nodes are appended to per-type slabs and
// handed out as pointers. Slab growth may leave earlier nodes in an
// abandoned backing array — harmless, every node is fully written before
// the next one is allocated and only ever read through its pointer.

func (p *Parser) newCreateTable(raw string, line int) *CreateTable {
	p.ctSlab = append(p.ctSlab, CreateTable{stmtBase: stmtBase{RawSQL: raw, Line: line}})
	return &p.ctSlab[len(p.ctSlab)-1]
}

func (p *Parser) newAlterTable(raw string, line int) *AlterTable {
	p.atSlab = append(p.atSlab, AlterTable{stmtBase: stmtBase{RawSQL: raw, Line: line}})
	return &p.atSlab[len(p.atSlab)-1]
}

func (p *Parser) newDropTable(raw string, line int) *DropTable {
	p.dtSlab = append(p.dtSlab, DropTable{stmtBase: stmtBase{RawSQL: raw, Line: line}})
	return &p.dtSlab[len(p.dtSlab)-1]
}

func (p *Parser) newRenameTable(raw string, line int) *RenameTable {
	p.rtSlab = append(p.rtSlab, RenameTable{stmtBase: stmtBase{RawSQL: raw, Line: line}})
	return &p.rtSlab[len(p.rtSlab)-1]
}

func (p *Parser) newSkipped(raw string, line int, keyword string) *SkippedStatement {
	p.skSlab = append(p.skSlab, SkippedStatement{stmtBase: stmtBase{RawSQL: raw, Line: line}, Keyword: keyword})
	return &p.skSlab[len(p.skSlab)-1]
}

// parserPool backs the pooled parse helpers used by per-version hot
// paths (schema reconstruction under the result cache).
var parserPool = sync.Pool{New: func() any { return NewParser() }}

// ParseLenientPooled parses src with a pooled reusable parser and hands
// the parser back to the pool via the returned release function. The
// script is valid only until release is called; callers must finish
// consuming (or copy) the AST first, then release.
func ParseLenientPooled(src string) (script *Script, errs []error, release func()) {
	p := parserPool.Get().(*Parser)
	script, errs = p.parse(src, Generic, false)
	return script, errs, func() { parserPool.Put(p) }
}

// ParseWithDiagnosticsPooled parses src in the given dialect with a
// pooled reusable parser, returning structured diagnostics. The script
// is valid only until release is called; callers must finish consuming
// (or copy) the AST first, then release.
func ParseWithDiagnosticsPooled(src string, d Dialect) (script *Script, diags []Diagnostic, release func()) {
	p := parserPool.Get().(*Parser)
	script, errs := p.parse(src, d, false)
	return script, diagnosticsFromErrors(src, errs), func() { parserPool.Put(p) }
}

// upperASCII returns strings.ToUpper(s), but without allocating when s
// is pure ASCII with no lower-case letters — the overwhelmingly common
// case for SQL keywords and type names. Any non-ASCII byte defers to
// strings.ToUpper so behaviour matches exactly.
func upperASCII(s string) string {
	i := 0
	for ; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			return strings.ToUpper(s)
		}
		if 'a' <= c && c <= 'z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		c := b[i]
		if c >= 0x80 {
			return strings.ToUpper(s)
		}
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
