package sqlddl_test

import (
	"fmt"

	"coevo/internal/sqlddl"
)

// ExampleParse shows the basic parse of a DDL script into typed
// statements.
func ExampleParse() {
	script, err := sqlddl.Parse(`
		CREATE TABLE users (
			id INT NOT NULL AUTO_INCREMENT,
			email VARCHAR(255) NOT NULL,
			PRIMARY KEY (id)
		);
		ALTER TABLE users ADD COLUMN created_at TIMESTAMP;`)
	if err != nil {
		panic(err)
	}
	for _, stmt := range script.Statements {
		switch st := stmt.(type) {
		case *sqlddl.CreateTable:
			fmt.Printf("create %s with %d columns\n", st.Name, len(st.Columns))
		case *sqlddl.AlterTable:
			fmt.Printf("alter %s with %d action(s)\n", st.Name, len(st.Actions))
		}
	}
	// Output:
	// create users with 2 columns
	// alter users with 1 action(s)
}

// ExampleParseLenient shows how non-DDL statements are preserved instead
// of failing the parse — the tolerance the mining pipeline requires.
func ExampleParseLenient() {
	script, diags := sqlddl.ParseLenient(`
		SET NAMES utf8;
		INSERT INTO t VALUES (1);
		CREATE TABLE t2 (x INT);`)
	fmt.Printf("%d statements, %d diagnostics, %d tables\n",
		len(script.Statements), len(diags), len(script.CreateTables()))
	// Output:
	// 3 statements, 0 diagnostics, 1 tables
}
