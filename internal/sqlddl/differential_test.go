// Differential determinism tests for the reusable-parser hot path: one
// Parser reused across many generated inputs must produce exactly the AST
// that a fresh, fully-retained parse of the same input produces. Any slab
// state leaking between calls shows up as a divergence here.
package sqlddl_test

import (
	"math/rand"
	"reflect"
	"testing"

	"coevo/internal/schematest"
	"coevo/internal/sqlddl"
)

// assertScriptsMatch compares a pooled-parser result against the fresh
// reference parse of the same source.
func assertScriptsMatch(t *testing.T, src string, fresh, pooled *sqlddl.Script, freshErrs, pooledErrs []error) {
	t.Helper()
	if len(freshErrs) != len(pooledErrs) {
		t.Fatalf("error count diverged: fresh %d, pooled %d\nsource:\n%s", len(freshErrs), len(pooledErrs), src)
	}
	for i := range freshErrs {
		if freshErrs[i].Error() != pooledErrs[i].Error() {
			t.Fatalf("error %d diverged:\nfresh:  %v\npooled: %v\nsource:\n%s", i, freshErrs[i], pooledErrs[i], src)
		}
	}
	if len(fresh.Statements) != len(pooled.Statements) {
		t.Fatalf("statement count diverged: fresh %d, pooled %d\nsource:\n%s", len(fresh.Statements), len(pooled.Statements), src)
	}
	for i := range fresh.Statements {
		if !reflect.DeepEqual(fresh.Statements[i], pooled.Statements[i]) {
			t.Fatalf("statement %d diverged:\nfresh:  %#v\npooled: %#v\nsource:\n%s", i, fresh.Statements[i], pooled.Statements[i], src)
		}
	}
}

func TestReusableParserMatchesFreshParser(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := sqlddl.NewParser()
	for i := 0; i < 300; i++ {
		src := schematest.RandomDDL(rng)
		fresh, freshErrs := sqlddl.ParseLenient(src)
		pooled, pooledErrs := p.ParseLenient(src)
		assertScriptsMatch(t, src, fresh, pooled, freshErrs, pooledErrs)
	}
}

// TestReusableParserNoStateLeak interleaves wildly different inputs
// through one parser — large scripts shrinking to tiny ones is where
// stale slab contents would surface if any reslice were missing.
func TestReusableParserNoStateLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := sqlddl.NewParser()
	big := schematest.RandomDDL(rng)
	inputs := []string{
		big,
		"CREATE TABLE t (a INT);",
		"",
		"-- only a comment\n",
		big,
		"DROP TABLE t;",
		"CREATE TABLE u (b VARCHAR(10), c DECIMAL(8,3), PRIMARY KEY (b));",
	}
	for round := 0; round < 5; round++ {
		for _, src := range inputs {
			fresh, freshErrs := sqlddl.ParseLenient(src)
			pooled, pooledErrs := p.ParseLenient(src)
			assertScriptsMatch(t, src, fresh, pooled, freshErrs, pooledErrs)
		}
	}
}

// TestPooledHelperMatchesFreshParser drives the package's own pool the
// way the mining pipeline does: parse, consume, release, repeat.
func TestPooledHelperMatchesFreshParser(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		src := schematest.RandomDDL(rng)
		fresh, freshErrs := sqlddl.ParseLenient(src)
		pooled, pooledErrs, release := sqlddl.ParseLenientPooled(src)
		assertScriptsMatch(t, src, fresh, pooled, freshErrs, pooledErrs)
		release()
	}
}
