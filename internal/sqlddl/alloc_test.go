package sqlddl

import (
	"testing"

	"coevo/internal/race"
)

// allocDDL is a representative corpus-style schema version: several CREATE
// TABLEs with mixed types, constraints, and a trailing ALTER/DROP — the
// statement mix the mining hot path parses thousands of times per study.
const allocDDL = `CREATE TABLE users (
  id BIGINT NOT NULL,
  email VARCHAR(255) NOT NULL,
  created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP,
  PRIMARY KEY (id)
);

CREATE TABLE orders (
  id BIGINT NOT NULL,
  user_id BIGINT NOT NULL,
  total DECIMAL(10,2),
  status VARCHAR(32) DEFAULT 'open',
  PRIMARY KEY (id),
  FOREIGN KEY (user_id) REFERENCES users (id)
);

CREATE INDEX idx_orders_user ON orders (user_id);

ALTER TABLE orders ADD COLUMN note TEXT;
ALTER TABLE users MODIFY COLUMN email VARCHAR(320) NOT NULL;

DROP TABLE IF EXISTS legacy_audit;
`

// The allocation budgets of the reusable hot path, in average allocations
// per operation after warm-up. Lexing into the token slab must be
// allocation-free; a steady-state parse may only allocate the per-column
// argument slices that the AST retains (they alias nothing reusable).
const (
	lexBudget   = 0
	parseBudget = 30 // measured 25: retained AST slices + action boxing
)

// warm runs the parser until every internal slab has reached its
// steady-state capacity.
func warm(p *Parser, src string) {
	for i := 0; i < 4; i++ {
		p.ParseLenient(src)
	}
}

func TestLexStatementAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun accounting is distorted under the race detector")
	}
	p := NewParser()
	warm(p, allocDDL)
	avg := testing.AllocsPerRun(200, func() {
		p.Reset()
		if _, errs := p.split(allocDDL); len(errs) > 0 {
			t.Fatalf("split: %v", errs)
		}
	})
	if avg > lexBudget {
		t.Errorf("lexing one statement batch allocates %.1f/op, budget %d", avg, lexBudget)
	}
}

func TestParseDDLAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun accounting is distorted under the race detector")
	}
	p := NewParser()
	warm(p, allocDDL)
	avg := testing.AllocsPerRun(200, func() {
		script, errs := p.ParseLenient(allocDDL)
		if len(errs) > 0 {
			t.Fatalf("parse errors: %v", errs)
		}
		if len(script.Statements) == 0 {
			t.Fatal("no statements")
		}
	})
	if avg > parseBudget {
		t.Errorf("parsing one DDL version allocates %.1f/op, budget %d", avg, parseBudget)
	}
	t.Logf("parse allocs/op: %.1f", avg)
}

func BenchmarkParseReuse(b *testing.B) {
	p := NewParser()
	warm(p, allocDDL)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ParseLenient(allocDDL)
	}
}
