package sqlddl

import (
	"fmt"
	"strings"
)

// ParseError reports a syntactic problem inside one statement. Pos is
// the byte offset of the offending token and Code its diagnostic code;
// Error keeps the historical "sqlddl: line N: msg" shape.
type ParseError struct {
	Line int
	Msg  string
	Pos  int
	Code string
}

func (e *ParseError) Error() string { return fmt.Sprintf("sqlddl: line %d: %s", e.Line, e.Msg) }

// Parse parses src strictly: any malformed DDL statement yields an error.
// Statements outside the DDL subset (INSERTs, SETs, ...) are still accepted
// and preserved as SkippedStatement values — that is tolerance by design,
// not an error condition. The returned script uses a dedicated parser and
// is safe to retain indefinitely; see Parser for the reusable variant.
func Parse(src string) (*Script, error) {
	var p Parser
	return p.Parse(src)
}

// ParseLenient parses src, demoting malformed DDL statements to
// SkippedStatement and collecting their diagnostics. The returned script
// uses a dedicated parser and is safe to retain indefinitely; see Parser
// for the reusable variant.
//
// Deprecated: use ParseWithDiagnostics, which adds dialect selection and
// returns structured, categorized diagnostics instead of bare errors.
func ParseLenient(src string) (*Script, []error) {
	var p Parser
	return p.ParseLenient(src)
}

// ParseWithDiagnostics parses src leniently in the given dialect,
// demoting malformed DDL statements to SkippedStatement values and
// resynchronizing past lexical errors at the next statement boundary, so
// a partial *Script always comes back. Every problem survived is
// reported as a categorized Diagnostic with line/column information;
// per-statement accounting is on the script's Stats. Auto resolves the
// dialect via DetectDialect first. This is the mode the mining pipeline
// uses: one broken statement must not discard a schema version. The
// returned script uses a dedicated parser and is safe to retain
// indefinitely; see Parser for the reusable variant.
func ParseWithDiagnostics(src string, d Dialect) (*Script, []Diagnostic) {
	var p Parser
	return p.ParseWithDiagnostics(src, d)
}

func (p *Parser) parse(src string, d Dialect, strict bool) (*Script, []error) {
	p.Reset()
	if d == Auto {
		d = DetectDialect(src)
	}
	p.dialect = d
	dropped, errs := p.split(src)
	if strict && len(errs) > 0 {
		return nil, errs[:1]
	}
	stats := ParseStats{Dropped: dropped}
	out := p.out[:0]
	for _, st := range p.spans {
		parsed, err := p.parseStatement(st)
		if err != nil {
			if strict {
				return nil, []error{err}
			}
			errs = append(errs, err)
			out = append(out, p.newSkipped(st.text, st.line, leadingKeyword(p.toks[st.start:st.end])))
			stats.Recovered++
			continue
		}
		if parsed != nil {
			out = append(out, parsed)
			stats.Parsed++
		}
	}
	stats.Attempted = stats.Parsed + stats.Recovered + stats.Dropped
	p.out = out
	p.script = Script{Statements: out, Dialect: d, Stats: stats}
	return &p.script, errs
}

// lexWhitespace is exactly the byte set the lexer skips between tokens.
// Statement raw text is trimmed with this set — not unicode.IsSpace — so
// Raw() never trims a byte the lexer treated as token content (e.g. a
// non-breaking space), keeping raw text a faithful re-parseable record
// of what was lexed.
const lexWhitespace = " \t\r\n\f\v"

// split tokenizes src into the parser's flat token slab and cuts it at
// top-level semicolons, recording one span per statement. A lexical
// error (unterminated string/comment) no longer poisons the rest of the
// file: the statement being tokenized is dropped, the error collected,
// and lexing resumes after the next semicolon — statement-level
// recovery, so one stray quote costs one statement, not the file. The
// returned dropped count is the number of such abandoned statements.
func (p *Parser) split(src string) (dropped int, errs []error) {
	lex := lexer{src: src, line: 1, dialect: p.dialect}
	toks := p.toks[:0]
	spans := p.spans[:0]
	start := 0
	stmtStart := 0 // index into toks of the current statement's first token
	flush := func(end int) {
		if len(toks) == stmtStart {
			start = end
			return
		}
		spans = append(spans, stmtSpan{
			text:  strings.Trim(src[start:end], lexWhitespace),
			line:  toks[stmtStart].line,
			start: stmtStart,
			end:   len(toks),
		})
		stmtStart = len(toks)
		start = end
	}
	for {
		tok, err := lex.next()
		if err != nil {
			errs = append(errs, err)
			dropped++
			toks = toks[:stmtStart] // the statement's tokens cannot be trusted
			le, ok := err.(*LexError)
			resume := len(src)
			if ok && le.Pos+1 < len(src) {
				if idx := strings.IndexByte(src[le.Pos+1:], ';'); idx >= 0 {
					resume = le.Pos + 1 + idx + 1
				}
			}
			if resume >= len(src) {
				p.toks, p.spans = toks, spans
				return dropped, errs
			}
			line := 1
			if ok {
				line = le.Line + strings.Count(src[le.Pos:resume], "\n")
			}
			lex = lexer{src: src, off: resume, line: line, dialect: p.dialect}
			start = resume
			continue
		}
		if tok.kind == tokEOF {
			flush(len(src))
			p.toks, p.spans = toks, spans
			return dropped, errs
		}
		if tok.symbolIs(";") {
			flush(tok.pos)
			start = tok.pos + 1
			continue
		}
		if p.dialect.goSeparators() && tok.kind == tokIdent && len(tok.text) == 2 &&
			tok.text[0]|0x20 == 'g' && tok.text[1]|0x20 == 'o' && goSeparatorAt(src, tok.pos) {
			// An MSSQL batch separator ends the statement like ';' does.
			flush(tok.pos)
			start = tok.pos + 2
			continue
		}
		if len(toks) == stmtStart {
			start = tok.pos
		}
		toks = append(toks, tok)
	}
}

func leadingKeyword(toks []token) string {
	if len(toks) == 0 {
		return ""
	}
	if toks[0].kind == tokIdent {
		return upperASCII(toks[0].text)
	}
	return ""
}

// parseStatement dispatches one statement. A nil, nil return means the
// statement was empty. Statements outside the DDL subset come back as
// *SkippedStatement, never as an error.
func (ps *Parser) parseStatement(st stmtSpan) (Statement, error) {
	toks := ps.toks[st.start:st.end]
	if len(toks) == 0 {
		return nil, nil
	}
	p := &ps.sp
	*p = stmtParser{toks: toks, raw: st.text, line: st.line, arena: ps}
	head := p.peek()
	switch {
	case head.keywordIs("CREATE"):
		if p.lookaheadIsTable(1) {
			return p.parseCreateTable()
		}
		return p.skipped("CREATE"), nil
	case head.keywordIs("ALTER"):
		if p.peekAt(1).keywordIs("TABLE") {
			return p.parseAlterTable()
		}
		return p.skipped("ALTER"), nil
	case head.keywordIs("DROP"):
		if p.peekAt(1).keywordIs("TABLE") {
			return p.parseDropTable()
		}
		return p.skipped("DROP"), nil
	case head.keywordIs("RENAME"):
		if p.peekAt(1).keywordIs("TABLE") {
			return p.parseRenameTable()
		}
		return p.skipped("RENAME"), nil
	default:
		return p.skipped(leadingKeyword(toks)), nil
	}
}

// stmtParser walks the token list of a single statement. Its arena is
// the owning Parser, whose slabs provide statement and column storage.
type stmtParser struct {
	toks  []token
	pos   int
	raw   string
	line  int
	arena *Parser
}

var eofToken = token{kind: tokEOF}

func (p *stmtParser) peek() token { return p.peekAt(0) }
func (p *stmtParser) done() bool  { return p.pos >= len(p.toks) }
func (p *stmtParser) advance() token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *stmtParser) peekAt(i int) token {
	if p.pos+i >= len(p.toks) {
		return eofToken
	}
	return p.toks[p.pos+i]
}

// lookaheadIsTable reports whether TABLE appears at offset i, optionally
// preceded by CREATE-statement modifiers (TEMPORARY, GLOBAL, LOCAL,
// UNLOGGED, OR REPLACE).
func (p *stmtParser) lookaheadIsTable(i int) bool {
	for off := i; off < i+4; off++ {
		t := p.peekAt(off)
		switch {
		case t.keywordIs("TABLE"):
			return true
		case t.keywordIs("TEMPORARY"), t.keywordIs("TEMP"), t.keywordIs("UNLOGGED"),
			t.keywordIs("GLOBAL"), t.keywordIs("LOCAL"):
			continue
		case t.keywordIs("OR"), t.keywordIs("REPLACE"):
			continue
		default:
			return false
		}
	}
	return false
}

func (p *stmtParser) skipped(keyword string) *SkippedStatement {
	return p.arena.newSkipped(p.raw, p.line, keyword)
}

func (p *stmtParser) errf(format string, args ...any) error {
	return p.errc(CodeSynToken, format, args...)
}

// errc builds a coded ParseError at the cursor. At end of statement the
// position points just past the last token — where input ran out.
func (p *stmtParser) errc(code, format string, args ...any) error {
	line, pos := p.line, 0
	switch {
	case !p.done():
		t := p.peek()
		line, pos = t.line, t.pos
	case len(p.toks) > 0:
		t := p.toks[len(p.toks)-1]
		line, pos = t.line, t.pos+len(t.text)
	}
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...), Pos: pos, Code: code}
}

// acceptKeyword consumes the next token if it is the given keyword.
func (p *stmtParser) acceptKeyword(kw string) bool {
	if p.peek().keywordIs(kw) {
		p.advance()
		return true
	}
	return false
}

// acceptKeywords consumes the exact keyword sequence if fully present.
func (p *stmtParser) acceptKeywords(kws ...string) bool {
	for i, kw := range kws {
		if !p.peekAt(i).keywordIs(kw) {
			return false
		}
	}
	p.pos += len(kws)
	return true
}

func (p *stmtParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s %q", kw, p.peek().kind, p.peek().text)
	}
	return nil
}

func (p *stmtParser) acceptSymbol(s string) bool {
	if p.peek().symbolIs(s) {
		p.advance()
		return true
	}
	return false
}

func (p *stmtParser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %s %q", s, p.peek().kind, p.peek().text)
	}
	return nil
}

// parseIdent accepts a bare or quoted identifier.
func (p *stmtParser) parseIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokQuotedIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errf("expected identifier, found %s %q", t.kind, t.text)
}

// parseTableName parses a possibly qualified (and possibly over-qualified,
// db.schema.table) name, keeping the last qualifier as Schema.
func (p *stmtParser) parseTableName() (TableName, error) {
	first, err := p.parseIdent()
	if err != nil {
		return TableName{}, err
	}
	name := TableName{Name: first}
	for p.acceptSymbol(".") {
		part, err := p.parseIdent()
		if err != nil {
			return TableName{}, err
		}
		name.Schema = name.Name
		name.Name = part
	}
	return name, nil
}

// --- CREATE TABLE ---

func (p *stmtParser) parseCreateTable() (Statement, error) {
	ct := p.arena.newCreateTable(p.raw, p.line)
	p.advance() // CREATE
	for {
		switch {
		case p.acceptKeyword("TEMPORARY"), p.acceptKeyword("TEMP"):
			ct.Temporary = true
		case p.acceptKeyword("UNLOGGED"), p.acceptKeyword("GLOBAL"), p.acceptKeyword("LOCAL"):
		case p.acceptKeywords("OR", "REPLACE"):
		default:
			goto table
		}
	}
table:
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	if p.acceptKeywords("IF", "NOT", "EXISTS") {
		ct.IfNotExists = true
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ct.Name = name

	if p.peek().keywordIs("AS") || p.peek().keywordIs("SELECT") || p.peek().keywordIs("LIKE") {
		ct.AsSelect = true
		p.pos = len(p.toks)
		return ct, nil
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	// Columns accumulate in the arena's shared ColumnDef slab; the
	// table's span is capped off once the element list closes.
	colStart := len(p.arena.colSlab)
	for {
		if p.acceptSymbol(")") {
			break
		}
		if p.done() {
			return nil, p.errc(CodeSynList, "unterminated CREATE TABLE element list for %s", ct.Name)
		}
		if isConstraintStart(p) {
			c, ok, err := p.parseTableConstraint()
			if err != nil {
				return nil, err
			}
			if ok {
				ct.Constraints = append(ct.Constraints, c)
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			p.arena.colSlab = append(p.arena.colSlab, col)
		}
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		break
	}
	// An empty element list leaves Columns nil — not an empty slice into
	// the slab — so a reused parser's output is structurally identical to
	// a fresh parser's (where the untouched slab is nil).
	if colEnd := len(p.arena.colSlab); colEnd > colStart {
		ct.Columns = p.arena.colSlab[colStart:colEnd:colEnd]
	}
	// Everything after the element list is table options (ENGINE=...,
	// charset, partitioning); irrelevant at the logical level.
	p.pos = len(p.toks)
	return ct, nil
}

// isConstraintStart reports whether the cursor begins a table-level
// constraint rather than a column definition.
func isConstraintStart(p *stmtParser) bool {
	t := p.peek()
	for _, kw := range []string{"CONSTRAINT", "PRIMARY", "FOREIGN", "CHECK", "EXCLUDE", "FULLTEXT", "SPATIAL", "LIKE"} {
		if t.keywordIs(kw) {
			return true
		}
	}
	// UNIQUE / KEY / INDEX open a constraint only when not used as a column
	// name; a following identifier or '(' disambiguates. "KEY (id)" and
	// "UNIQUE idx_name (a)" are constraints; "key VARCHAR(9)" is a column.
	if t.keywordIs("UNIQUE") || t.keywordIs("KEY") || t.keywordIs("INDEX") {
		nxt := p.peekAt(1)
		if nxt.symbolIs("(") {
			return true
		}
		if nxt.keywordIs("KEY") || nxt.keywordIs("INDEX") {
			return true
		}
		if nxt.kind == tokIdent || nxt.kind == tokQuotedIdent {
			// "UNIQUE name (col..." / "KEY name (col..." name an index, but
			// "key VARCHAR(9)" is a column whose type takes numeric
			// arguments: a key-column list must start with an identifier or
			// an expression, never a number.
			after := p.peekAt(2)
			if after.keywordIs("USING") {
				return true
			}
			if after.symbolIs("(") {
				inner := p.peekAt(3)
				return inner.kind == tokIdent || inner.kind == tokQuotedIdent || inner.symbolIs("(")
			}
		}
	}
	return false
}

// parseColumnDef parses one column definition (used by CREATE TABLE and the
// ALTER actions).
func (p *stmtParser) parseColumnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.parseIdent()
	if err != nil {
		return col, err
	}
	col.Name = name
	typ, err := p.parseDataType()
	if err != nil {
		return col, err
	}
	col.Type = typ
	if err := p.parseColumnOptions(&col); err != nil {
		return col, err
	}
	return col, nil
}

// multiWordTypes maps a leading type word to its possible continuations.
var multiWordTypes = map[string][][]string{
	"DOUBLE":    {{"PRECISION"}},
	"CHARACTER": {{"VARYING"}},
	"CHAR":      {{"VARYING"}},
	"BIT":       {{"VARYING"}},
	"LONG":      {{"VARBINARY"}, {"VARCHAR"}},
	"NATIONAL":  {{"CHARACTER", "VARYING"}, {"CHARACTER"}, {"CHAR", "VARYING"}, {"CHAR"}, {"VARCHAR"}},
}

// parseDataType parses a SQL type with optional arguments and modifiers.
func (p *stmtParser) parseDataType() (DataType, error) {
	var dt DataType
	first, err := p.parseIdent()
	if err != nil {
		return dt, p.errf("expected data type: %v", err)
	}
	dt.Name = upperASCII(first)
	if conts, ok := multiWordTypes[dt.Name]; ok {
		for _, cont := range conts {
			if p.acceptKeywords(cont...) {
				dt.Name += " " + strings.Join(cont, " ")
				break
			}
		}
	}
	if p.acceptSymbol("(") {
		args, err := p.parseTypeArgs()
		if err != nil {
			return dt, err
		}
		dt.Args = args
	}
	// TIMESTAMP/TIME WITH/WITHOUT TIME ZONE takes its qualifier after the
	// precision argument.
	if dt.Name == "TIMESTAMP" || dt.Name == "TIME" {
		if p.acceptKeywords("WITH", "TIME", "ZONE") {
			dt.Name += " WITH TIME ZONE"
		} else if p.acceptKeywords("WITHOUT", "TIME", "ZONE") {
			dt.Name += " WITHOUT TIME ZONE"
		}
	}
	for {
		switch {
		case p.acceptKeyword("UNSIGNED"):
			dt.Unsigned = true
		case p.acceptKeyword("SIGNED"):
		case p.acceptKeyword("ZEROFILL"):
			dt.Zerofill = true
		case p.acceptKeyword("ARRAY"):
			dt.Array = true
		case p.peek().symbolIs("["):
			p.advance()
			// optional dimension
			if p.peek().kind == tokNumber {
				p.advance()
			}
			if err := p.expectSymbol("]"); err != nil {
				return dt, err
			}
			dt.Array = true
		default:
			return dt, nil
		}
	}
}

// parseTypeArgs reads the comma-separated literal arguments of a type up to
// the closing parenthesis. Strings are re-quoted so ENUM values compare
// stably.
func (p *stmtParser) parseTypeArgs() ([]string, error) {
	var args []string
	var current strings.Builder
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return nil, p.errc(CodeSynList, "unterminated type argument list")
		case t.symbolIs(")"):
			p.advance()
			if current.Len() > 0 {
				args = append(args, current.String())
			}
			return args, nil
		case t.symbolIs(","):
			p.advance()
			args = append(args, current.String())
			current.Reset()
		case t.kind == tokString:
			p.advance()
			current.WriteByte('\'')
			current.WriteString(t.text)
			current.WriteByte('\'')
		default:
			p.advance()
			current.WriteString(t.text)
		}
	}
}

// parseColumnOptions consumes the option clauses after a column's type
// until a top-level ',' or ')' or end of action.
func (p *stmtParser) parseColumnOptions(col *ColumnDef) error {
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF, t.symbolIs(","), t.symbolIs(")"):
			return nil
		case p.acceptKeywords("NOT", "NULL"):
			col.NotNull = true
		case p.acceptKeyword("NULL"):
			col.Null = true
		case p.acceptKeyword("DEFAULT"):
			expr, err := p.parseExprText()
			if err != nil {
				return err
			}
			col.Default, col.HasDefault = expr, true
		case p.acceptKeyword("AUTO_INCREMENT"), p.acceptKeyword("AUTOINCREMENT"):
			col.AutoIncrement = true
		case p.acceptKeywords("PRIMARY", "KEY"):
			col.PrimaryKey = true
		case p.acceptKeyword("UNIQUE"):
			p.acceptKeyword("KEY")
			col.Unique = true
		case p.acceptKeyword("REFERENCES"):
			ref, err := p.parseForeignKeyRef()
			if err != nil {
				return err
			}
			col.References = ref
		case p.acceptKeyword("CHECK"):
			if _, err := p.parseBalancedText(); err != nil {
				return err
			}
		case p.acceptKeyword("COMMENT"):
			if p.peek().kind == tokString {
				col.Comment = p.advance().text
			} else {
				p.advance()
			}
		case p.acceptKeyword("COLLATE"):
			p.advance()
		case p.acceptKeywords("CHARACTER", "SET"), p.acceptKeyword("CHARSET"):
			p.advance()
		case p.acceptKeywords("ON", "UPDATE"), p.acceptKeywords("ON", "DELETE"):
			if _, err := p.parseExprText(); err != nil {
				return err
			}
		case p.acceptKeyword("GENERATED"):
			if err := p.parseGenerated(col); err != nil {
				return err
			}
		case p.acceptKeyword("CONSTRAINT"):
			// Named inline constraint: consume the name, the constraint
			// body follows and is handled by the next iteration.
			if _, err := p.parseIdent(); err != nil {
				return err
			}
		case p.acceptKeyword("FIRST"):
		case p.acceptKeyword("AFTER"):
			if _, err := p.parseIdent(); err != nil {
				return err
			}
		default:
			// Unknown option word (STORAGE, SRID, vendor noise): consume a
			// single token — and its parenthesized payload, if any — so we
			// always make progress.
			p.advance()
			if p.peek().symbolIs("(") {
				p.advance()
				if _, err := p.parseBalancedTail(); err != nil {
					return err
				}
			}
		}
	}
}

// parseGenerated handles GENERATED {ALWAYS|BY DEFAULT} AS {IDENTITY|(expr)}
// [STORED|VIRTUAL].
func (p *stmtParser) parseGenerated(col *ColumnDef) error {
	p.acceptKeyword("ALWAYS")
	p.acceptKeywords("BY", "DEFAULT")
	if err := p.expectKeyword("AS"); err != nil {
		return err
	}
	if p.acceptKeyword("IDENTITY") {
		col.AutoIncrement = true
		if p.peek().symbolIs("(") {
			p.advance()
			if _, err := p.parseBalancedTail(); err != nil {
				return err
			}
		}
		return nil
	}
	if p.acceptKeyword("CHECK") { // rare vendor form
		_, err := p.parseBalancedText()
		return err
	}
	if _, err := p.parseBalancedText(); err != nil {
		return err
	}
	p.acceptKeyword("STORED")
	p.acceptKeyword("VIRTUAL")
	return nil
}

// parseExprText consumes one scalar expression (a DEFAULT value, an ON
// UPDATE expression) and returns its canonical text.
func (p *stmtParser) parseExprText() (string, error) {
	var b strings.Builder
	t := p.peek()
	switch {
	case t.kind == tokEOF:
		return "", p.errf("expected expression")
	case t.symbolIs("("):
		p.advance()
		inner, err := p.parseBalancedTail()
		if err != nil {
			return "", err
		}
		b.WriteByte('(')
		b.WriteString(inner)
		b.WriteByte(')')
	case t.symbolIs("-") || t.symbolIs("+"):
		p.advance()
		rest, err := p.parseExprText()
		if err != nil {
			return "", err
		}
		b.WriteString(t.text)
		b.WriteString(rest)
		return b.String(), nil
	case t.kind == tokString:
		p.advance()
		b.WriteByte('\'')
		b.WriteString(t.text)
		b.WriteByte('\'')
	case t.kind == tokNumber:
		p.advance()
		b.WriteString(t.text)
	case t.kind == tokIdent || t.kind == tokQuotedIdent:
		p.advance()
		b.WriteString(upperASCII(t.text))
		// b'0' / x'ff' typed literals and function calls.
		if p.peek().kind == tokString && (strings.EqualFold(t.text, "b") || strings.EqualFold(t.text, "x") || strings.EqualFold(t.text, "n")) {
			b.WriteByte('\'')
			b.WriteString(p.advance().text)
			b.WriteByte('\'')
		} else if p.peek().symbolIs("(") {
			p.advance()
			inner, err := p.parseBalancedTail()
			if err != nil {
				return "", err
			}
			b.WriteByte('(')
			b.WriteString(inner)
			b.WriteByte(')')
		}
	default:
		p.advance()
		b.WriteString(t.text)
	}
	// Postgres cast suffixes: 'x'::character varying.
	for p.acceptSymbol("::") {
		name, err := p.parseIdent()
		if err != nil {
			return "", err
		}
		b.WriteString("::")
		b.WriteString(upperASCII(name))
		for p.peek().kind == tokIdent {
			b.WriteByte(' ')
			b.WriteString(upperASCII(p.advance().text))
		}
		if p.peek().symbolIs("(") {
			p.advance()
			inner, err := p.parseBalancedTail()
			if err != nil {
				return "", err
			}
			b.WriteByte('(')
			b.WriteString(inner)
			b.WriteByte(')')
		}
	}
	return b.String(), nil
}

// parseBalancedText expects '(' and consumes through the matching ')',
// returning the inner text.
func (p *stmtParser) parseBalancedText() (string, error) {
	if err := p.expectSymbol("("); err != nil {
		return "", err
	}
	return p.parseBalancedTail()
}

// parseBalancedTail consumes tokens through the ')' matching an already
// consumed '(' and returns the inner text.
func (p *stmtParser) parseBalancedTail() (string, error) {
	depth := 1
	var b strings.Builder
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return "", p.errc(CodeSynList, "unbalanced parentheses")
		case t.symbolIs("("):
			depth++
		case t.symbolIs(")"):
			depth--
			if depth == 0 {
				p.advance()
				return strings.TrimSpace(b.String()), nil
			}
		}
		p.advance()
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if t.kind == tokString {
			b.WriteByte('\'')
			b.WriteString(t.text)
			b.WriteByte('\'')
		} else {
			b.WriteString(t.text)
		}
	}
}

// parseForeignKeyRef parses REFERENCES table [(cols)] [MATCH ...]
// [ON DELETE action] [ON UPDATE action].
func (p *stmtParser) parseForeignKeyRef() (*ForeignKeyRef, error) {
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ref := &ForeignKeyRef{Table: table}
	if p.acceptSymbol("(") {
		cols, err := p.parseKeyColumns()
		if err != nil {
			return nil, err
		}
		ref.Columns = cols
	}
	for {
		switch {
		case p.acceptKeyword("MATCH"):
			p.advance()
		case p.acceptKeywords("ON", "DELETE"):
			action, err := p.parseRefAction()
			if err != nil {
				return nil, err
			}
			ref.OnDelete = action
		case p.acceptKeywords("ON", "UPDATE"):
			action, err := p.parseRefAction()
			if err != nil {
				return nil, err
			}
			ref.OnUpdate = action
		case p.acceptKeyword("DEFERRABLE"), p.acceptKeywords("NOT", "DEFERRABLE"):
		case p.acceptKeywords("INITIALLY", "DEFERRED"), p.acceptKeywords("INITIALLY", "IMMEDIATE"):
		default:
			return ref, nil
		}
	}
}

func (p *stmtParser) parseRefAction() (string, error) {
	switch {
	case p.acceptKeyword("CASCADE"):
		return "CASCADE", nil
	case p.acceptKeyword("RESTRICT"):
		return "RESTRICT", nil
	case p.acceptKeywords("SET", "NULL"):
		return "SET NULL", nil
	case p.acceptKeywords("SET", "DEFAULT"):
		return "SET DEFAULT", nil
	case p.acceptKeywords("NO", "ACTION"):
		return "NO ACTION", nil
	default:
		return "", p.errf("expected referential action, found %q", p.peek().text)
	}
}

// parseKeyColumns reads "a, b(10) DESC, (lower(c))" style key column lists
// through the closing ')', reducing each entry to a column name (or a
// "<expr>" placeholder for expression indexes).
func (p *stmtParser) parseKeyColumns() ([]string, error) {
	var cols []string
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return nil, p.errc(CodeSynList, "unterminated key column list")
		case t.symbolIs("("):
			p.advance()
			if _, err := p.parseBalancedTail(); err != nil {
				return nil, err
			}
			cols = append(cols, "<expr>")
		case t.kind == tokIdent || t.kind == tokQuotedIdent:
			p.advance()
			name := t.text
			if p.acceptSymbol("(") { // prefix length
				if _, err := p.parseBalancedTail(); err != nil {
					return nil, err
				}
			}
			p.acceptKeyword("ASC")
			p.acceptKeyword("DESC")
			cols = append(cols, name)
		default:
			return nil, p.errf("expected key column, found %s %q", t.kind, t.text)
		}
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return cols, nil
	}
}

// parseTableConstraint parses one table-level constraint element.
func (p *stmtParser) parseTableConstraint() (TableConstraint, bool, error) {
	var c TableConstraint
	if p.acceptKeyword("CONSTRAINT") {
		name, err := p.parseIdent()
		if err != nil {
			return TableConstraint{}, false, err
		}
		c.Name = name
	}
	switch {
	case p.acceptKeywords("PRIMARY", "KEY"):
		c.Kind = ConstraintPrimaryKey
		p.skipIndexOptions()
		cols, err := p.openKeyColumns()
		if err != nil {
			return TableConstraint{}, false, err
		}
		c.Columns = cols
	case p.acceptKeyword("UNIQUE"):
		c.Kind = ConstraintUnique
		p.acceptKeyword("KEY")
		p.acceptKeyword("INDEX")
		if name := p.optionalIndexName(); name != "" && c.Name == "" {
			c.Name = name
		}
		p.skipIndexOptions()
		cols, err := p.openKeyColumns()
		if err != nil {
			return TableConstraint{}, false, err
		}
		c.Columns = cols
	case p.acceptKeywords("FOREIGN", "KEY"):
		c.Kind = ConstraintForeignKey
		if name := p.optionalIndexName(); name != "" && c.Name == "" {
			c.Name = name
		}
		cols, err := p.openKeyColumns()
		if err != nil {
			return TableConstraint{}, false, err
		}
		c.Columns = cols
		if err := p.expectKeyword("REFERENCES"); err != nil {
			return TableConstraint{}, false, err
		}
		ref, err := p.parseForeignKeyRef()
		if err != nil {
			return TableConstraint{}, false, err
		}
		c.Ref = ref
	case p.acceptKeyword("CHECK"):
		c.Kind = ConstraintCheck
		body, err := p.parseBalancedText()
		if err != nil {
			return TableConstraint{}, false, err
		}
		c.Check = body
		p.acceptKeywords("NOT", "ENFORCED")
		p.acceptKeyword("ENFORCED")
	case p.acceptKeyword("KEY"), p.acceptKeyword("INDEX"):
		c.Kind = ConstraintIndex
		if name := p.optionalIndexName(); name != "" && c.Name == "" {
			c.Name = name
		}
		p.skipIndexOptions()
		cols, err := p.openKeyColumns()
		if err != nil {
			return TableConstraint{}, false, err
		}
		c.Columns = cols
	case p.acceptKeyword("FULLTEXT"), p.acceptKeyword("SPATIAL"):
		c.Kind = ConstraintIndex
		p.acceptKeyword("KEY")
		p.acceptKeyword("INDEX")
		if name := p.optionalIndexName(); name != "" && c.Name == "" {
			c.Name = name
		}
		cols, err := p.openKeyColumns()
		if err != nil {
			return TableConstraint{}, false, err
		}
		c.Columns = cols
	case p.acceptKeyword("EXCLUDE"), p.acceptKeyword("LIKE"):
		// Postgres EXCLUDE constraints and LIKE clauses: consume through
		// the element's end; they carry no attribute-level information.
		p.skipElement()
		return TableConstraint{}, false, nil
	default:
		return TableConstraint{}, false, p.errf("expected table constraint, found %q", p.peek().text)
	}
	// Trailing constraint attributes (USING BTREE, DEFERRABLE, comments).
	p.skipIndexOptions()
	for {
		switch {
		case p.acceptKeyword("DEFERRABLE"), p.acceptKeywords("NOT", "DEFERRABLE"),
			p.acceptKeywords("INITIALLY", "DEFERRED"), p.acceptKeywords("INITIALLY", "IMMEDIATE"):
		case p.acceptKeyword("COMMENT"):
			p.advance()
		default:
			return c, true, nil
		}
	}
}

// optionalIndexName consumes an identifier when it is followed by '(' or
// USING (i.e. it names an index rather than starting the column list).
func (p *stmtParser) optionalIndexName() string {
	t := p.peek()
	if (t.kind == tokIdent || t.kind == tokQuotedIdent) &&
		(p.peekAt(1).symbolIs("(") || p.peekAt(1).keywordIs("USING")) {
		p.advance()
		return t.text
	}
	return ""
}

// skipIndexOptions consumes USING BTREE/HASH/GIN-style clauses.
func (p *stmtParser) skipIndexOptions() {
	for p.acceptKeyword("USING") {
		p.advance()
	}
}

// openKeyColumns expects '(' and parses the key column list.
func (p *stmtParser) openKeyColumns() ([]string, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	return p.parseKeyColumns()
}

// skipElement consumes tokens until the enclosing element's ',' or ')' at
// depth zero.
func (p *stmtParser) skipElement() {
	depth := 0
	for !p.done() {
		t := p.peek()
		switch {
		case t.symbolIs("("):
			depth++
		case t.symbolIs(")"):
			if depth == 0 {
				return
			}
			depth--
		case t.symbolIs(","):
			if depth == 0 {
				return
			}
		}
		p.advance()
	}
}

// --- DROP TABLE ---

func (p *stmtParser) parseDropTable() (Statement, error) {
	dt := p.arena.newDropTable(p.raw, p.line)
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	if p.acceptKeywords("IF", "EXISTS") {
		dt.IfExists = true
	}
	for {
		name, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		dt.Names = append(dt.Names, name)
		if !p.acceptSymbol(",") {
			break
		}
	}
	p.acceptKeyword("CASCADE")
	p.acceptKeyword("RESTRICT")
	if !p.done() {
		return nil, p.errc(CodeSynTrail, "unexpected trailing tokens in DROP TABLE: %q", p.peek().text)
	}
	return dt, nil
}

// --- RENAME TABLE ---

func (p *stmtParser) parseRenameTable() (Statement, error) {
	rt := p.arena.newRenameTable(p.raw, p.line)
	p.advance() // RENAME
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	for {
		from, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("TO") && !p.acceptKeyword("AS") {
			return nil, p.errf("expected TO in RENAME TABLE")
		}
		to, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		rt.Renames = append(rt.Renames, TableRename{From: from, To: to})
		if !p.acceptSymbol(",") {
			break
		}
	}
	return rt, nil
}

// --- ALTER TABLE ---

func (p *stmtParser) parseAlterTable() (Statement, error) {
	at := p.arena.newAlterTable(p.raw, p.line)
	p.advance() // ALTER
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	if p.acceptKeywords("IF", "EXISTS") {
		at.IfExists = true
	}
	p.acceptKeyword("ONLY")
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	at.Name = name
	for {
		if p.done() {
			break
		}
		action, err := p.parseAlterAction()
		if err != nil {
			return nil, err
		}
		if action != nil {
			at.Actions = append(at.Actions, action)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if !p.done() {
		return nil, p.errc(CodeSynTrail, "unexpected trailing tokens in ALTER TABLE: %q", p.peek().text)
	}
	return at, nil
}

func (p *stmtParser) parseAlterAction() (AlterAction, error) {
	switch {
	case p.acceptKeyword("ADD"):
		return p.parseAddAction()
	case p.acceptKeyword("DROP"):
		return p.parseDropAction()
	case p.acceptKeyword("MODIFY"):
		p.acceptKeyword("COLUMN")
		col, err := p.parseAlterColumnDef()
		if err != nil {
			return nil, err
		}
		return ModifyColumn{Column: col}, nil
	case p.acceptKeyword("CHANGE"):
		p.acceptKeyword("COLUMN")
		oldName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		col, err := p.parseAlterColumnDef()
		if err != nil {
			return nil, err
		}
		return ChangeColumn{OldName: oldName, Column: col}, nil
	case p.acceptKeyword("ALTER"):
		p.acceptKeyword("COLUMN")
		return p.parseAlterColumnAction()
	case p.acceptKeyword("RENAME"):
		switch {
		case p.acceptKeyword("COLUMN"):
			oldName, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("TO"); err != nil {
				return nil, err
			}
			newName, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return RenameColumn{OldName: oldName, NewName: newName}, nil
		case p.acceptKeyword("TO"), p.acceptKeyword("AS"):
			newName, err := p.parseTableName()
			if err != nil {
				return nil, err
			}
			return RenameTo{NewName: newName}, nil
		default:
			// RENAME INDEX old TO new and friends.
			return p.unknownAction("RENAME"), nil
		}
	default:
		t := p.peek()
		return p.unknownAction(upperASCII(t.text)), nil
	}
}

// parseAlterColumnDef parses the column definition of an ADD/MODIFY/CHANGE
// action, tolerating the position suffix (FIRST / AFTER col).
func (p *stmtParser) parseAlterColumnDef() (ColumnDef, error) {
	col, err := p.parseColumnDefUntilActionEnd()
	return col, err
}

// parseColumnDefUntilActionEnd is parseColumnDef, but option parsing stops
// at a top-level ',' (the next ALTER action) as well as ')' and EOF —
// which parseColumnOptions already does.
func (p *stmtParser) parseColumnDefUntilActionEnd() (ColumnDef, error) {
	return p.parseColumnDef()
}

func (p *stmtParser) parseAddAction() (AlterAction, error) {
	if isConstraintStart(p) {
		c, ok, err := p.parseTableConstraint()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return AddConstraint{Constraint: c}, nil
	}
	p.acceptKeyword("COLUMN")
	var ifNotExists bool
	if p.acceptKeywords("IF", "NOT", "EXISTS") {
		ifNotExists = true
	}
	col, err := p.parseAlterColumnDef()
	if err != nil {
		return nil, err
	}
	return AddColumn{Column: col, IfNotExists: ifNotExists}, nil
}

func (p *stmtParser) parseDropAction() (AlterAction, error) {
	switch {
	case p.acceptKeywords("PRIMARY", "KEY"):
		return DropConstraint{Kind: ConstraintPrimaryKey}, nil
	case p.acceptKeywords("FOREIGN", "KEY"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return DropConstraint{Kind: ConstraintForeignKey, Name: name}, nil
	case p.acceptKeyword("CONSTRAINT"):
		p.acceptKeywords("IF", "EXISTS")
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		p.acceptKeyword("CASCADE")
		p.acceptKeyword("RESTRICT")
		return DropConstraint{Kind: ConstraintCheck, Name: name}, nil
	case p.acceptKeyword("INDEX"), p.acceptKeyword("KEY"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return DropConstraint{Kind: ConstraintIndex, Name: name}, nil
	default:
		p.acceptKeyword("COLUMN")
		var ifExists bool
		if p.acceptKeywords("IF", "EXISTS") {
			ifExists = true
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		p.acceptKeyword("CASCADE")
		p.acceptKeyword("RESTRICT")
		return DropColumn{Name: name, IfExists: ifExists}, nil
	}
}

// parseAlterColumnAction handles the Postgres ALTER COLUMN forms.
func (p *stmtParser) parseAlterColumnAction() (AlterAction, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TYPE"), p.acceptKeywords("SET", "DATA", "TYPE"):
		typ, err := p.parseDataType()
		if err != nil {
			return nil, err
		}
		// USING conversion expressions are irrelevant logically.
		if p.acceptKeyword("USING") {
			p.skipActionRest()
		}
		return AlterColumnType{Name: name, Type: typ}, nil
	case p.acceptKeywords("SET", "NOT", "NULL"):
		return AlterColumnNullability{Name: name, NotNull: true}, nil
	case p.acceptKeywords("DROP", "NOT", "NULL"):
		return AlterColumnNullability{Name: name, NotNull: false}, nil
	case p.acceptKeywords("SET", "DEFAULT"):
		expr, err := p.parseExprText()
		if err != nil {
			return nil, err
		}
		return AlterColumnDefault{Name: name, Default: expr}, nil
	case p.acceptKeywords("DROP", "DEFAULT"):
		return AlterColumnDefault{Name: name, Drop: true}, nil
	default:
		return p.unknownAction("ALTER COLUMN " + name), nil
	}
}

// unknownAction records and consumes an unmodeled ALTER action through the
// next top-level comma.
func (p *stmtParser) unknownAction(label string) UnknownAction {
	start := p.pos
	p.skipActionRest()
	var b strings.Builder
	b.WriteString(label)
	for i := start; i < p.pos; i++ {
		b.WriteByte(' ')
		b.WriteString(p.toks[i].text)
	}
	return UnknownAction{Text: strings.TrimSpace(b.String())}
}

// skipActionRest consumes tokens until a top-level ',' or the end of the
// statement.
func (p *stmtParser) skipActionRest() {
	depth := 0
	for !p.done() {
		t := p.peek()
		switch {
		case t.symbolIs("("):
			depth++
		case t.symbolIs(")"):
			depth--
		case t.symbolIs(","):
			if depth == 0 {
				return
			}
		}
		p.advance()
	}
}
