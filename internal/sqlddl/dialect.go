package sqlddl

import (
	"fmt"
	"strings"
)

// Dialect selects the SQL dialect the lexer and parser adapt to. The zero
// value is Generic — the permissive union grammar every prior release
// spoke — so existing call sites and encoded cache entries keep their
// meaning. A Dialect owns the lexical rules that genuinely differ between
// vendors (quoting, comment syntax, batch separators); grammar the
// dialects share stays in the common parser.
type Dialect int

// The supported dialects. Generic accepts the union of all vendor syntax
// the parser knows, which is what mining unlabeled FOSS repositories
// needs; the named dialects tighten or extend the lexical rules:
//
//	MySQL    — '"' quotes a string literal (ANSI_QUOTES off), '#' comments
//	Postgres — '#' is an operator, not a comment; dollar quoting, '::'
//	SQLite   — double-quoted identifiers, AUTOINCREMENT, WITHOUT ROWID
//	MSSQL    — [bracket] identifiers, GO batch separators, N'...' strings
//
// Auto is a sentinel meaning "detect from the source text"; it never
// reaches the lexer (ParseWithDiagnostics resolves it via DetectDialect).
const (
	Generic Dialect = iota
	MySQL
	Postgres
	SQLite
	MSSQL
	Auto
)

// String names the dialect in the lower-case form ParseDialect accepts.
func (d Dialect) String() string {
	switch d {
	case Generic:
		return "generic"
	case MySQL:
		return "mysql"
	case Postgres:
		return "postgres"
	case SQLite:
		return "sqlite"
	case MSSQL:
		return "mssql"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("dialect(%d)", int(d))
	}
}

// ParseDialect maps a flag or payload value to a Dialect. The empty
// string is Generic, keeping "no dialect given" backward compatible.
func ParseDialect(s string) (Dialect, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "generic":
		return Generic, nil
	case "mysql", "mariadb":
		return MySQL, nil
	case "postgres", "postgresql", "pg":
		return Postgres, nil
	case "sqlite", "sqlite3":
		return SQLite, nil
	case "mssql", "sqlserver", "tsql":
		return MSSQL, nil
	case "auto":
		return Auto, nil
	default:
		return Generic, fmt.Errorf("sqlddl: unknown dialect %q (want generic, mysql, postgres, sqlite, mssql or auto)", s)
	}
}

// Dialects lists the concrete (non-Auto) dialects, for tests and fuzzing
// that want to sweep every adapter.
func Dialects() []Dialect { return []Dialect{Generic, MySQL, Postgres, SQLite, MSSQL} }

// doubleQuoteIsString reports whether '"' opens a string literal rather
// than a quoted identifier. Only MySQL (with the default SQL mode, no
// ANSI_QUOTES) treats it that way.
func (d Dialect) doubleQuoteIsString() bool { return d == MySQL }

// hashComments reports whether '#' starts a line comment. MySQL and the
// permissive Generic mode say yes; Postgres uses '#' as an operator and
// MSSQL/SQLite have no hash comments.
func (d Dialect) hashComments() bool { return d == Generic || d == MySQL }

// goSeparators reports whether a bare GO alone on a line separates
// batches (the sqlcmd/SSMS convention in MSSQL scripts).
func (d Dialect) goSeparators() bool { return d == MSSQL }

// DetectDialect guesses the dialect of a DDL source from vendor-specific
// lexical fingerprints, for ingest paths where the user gave no explicit
// -dialect. The heuristics are ordered from most to least distinctive;
// sources with no vendor tell stay Generic, which parses everything the
// named dialects do.
func DetectDialect(src string) Dialect {
	upper := strings.ToUpper(src)
	switch {
	case containsAny(upper, "NVARCHAR", "[DBO].", "IDENTITY(") || hasGOSeparator(src):
		return MSSQL
	case strings.ContainsRune(src, '`') ||
		containsAny(upper, "ENGINE=", "ENGINE =", "AUTO_INCREMENT"):
		return MySQL
	case containsAny(upper, "WITHOUT ROWID", "AUTOINCREMENT", "PRAGMA "):
		return SQLite
	case strings.Contains(src, "$$") || strings.Contains(src, "::") ||
		containsAny(upper, " SERIAL", "BIGSERIAL", "SMALLSERIAL"):
		return Postgres
	default:
		return Generic
	}
}

// containsAny reports whether s contains any of the needles.
func containsAny(s string, needles ...string) bool {
	for _, n := range needles {
		if strings.Contains(s, n) {
			return true
		}
	}
	return false
}

// hasGOSeparator reports whether src contains a GO batch separator alone
// on a line — the strongest MSSQL script fingerprint.
func hasGOSeparator(src string) bool {
	for off := 0; off < len(src); {
		end := strings.IndexByte(src[off:], '\n')
		if end < 0 {
			end = len(src)
		} else {
			end += off
		}
		line := strings.Trim(src[off:end], " \t\r")
		if len(line) == 2 && (line[0] == 'G' || line[0] == 'g') && (line[1] == 'O' || line[1] == 'o') {
			return true
		}
		off = end + 1
	}
	return false
}

// goSeparatorAt reports whether the GO token at pos sits alone on its
// line (possibly followed by a comment), which is what makes it a batch
// separator rather than an identifier named "go".
func goSeparatorAt(src string, pos int) bool {
	for i := pos - 1; i >= 0; i-- {
		c := src[i]
		if c == '\n' {
			break
		}
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	for i := pos + 2; i < len(src); i++ {
		switch c := src[i]; {
		case c == '\n':
			return true
		case c == ' ' || c == '\t' || c == '\r':
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			return true
		default:
			return false
		}
	}
	return true
}
