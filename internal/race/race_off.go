//go:build !race

// Package race exposes whether the race detector is compiled in, so
// allocation-budget tests can skip themselves under -race (the detector's
// instrumentation allocates shadow state and breaks testing.AllocsPerRun
// accounting) while still running everywhere else.
package race

// Enabled reports whether the build has the race detector enabled.
const Enabled = false
