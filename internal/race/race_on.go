//go:build race

package race

// Enabled reports whether the build has the race detector enabled.
const Enabled = true
