package coevolution

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"coevo/internal/heartbeat"
)

// jp builds a JointProgress directly from series (all must share a length).
func jp(project, schema, timeSeries []float64) *JointProgress {
	return &JointProgress{Project: project, Schema: schema, Time: timeSeries}
}

// mk builds a JointProgress from raw monthly activity via the real
// alignment path.
func mk(t *testing.T, projectActivity, schemaActivity []float64) *JointProgress {
	t.Helper()
	p := heartbeat.New(0, len(projectActivity))
	copy(p.Values, projectActivity)
	s := heartbeat.New(0, len(schemaActivity))
	copy(s.Values, schemaActivity)
	j, err := New(p, s)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return j
}

func TestSynchronicityPerfect(t *testing.T) {
	j := mk(t, []float64{10, 10, 10, 10}, []float64{1, 1, 1, 1})
	sync, err := j.Synchronicity(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if sync != 1 {
		t.Errorf("identical progressions: sync = %v, want 1", sync)
	}
}

func TestSynchronicityDiverged(t *testing.T) {
	// Schema completes everything at month 0; project grows linearly over
	// 10 months. The progressions only meet inside the band near the end.
	j := mk(t, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, []float64{5, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	sync, err := j.Synchronicity(0.10)
	if err != nil {
		t.Fatal(err)
	}
	// project cum: .1,.2,...,1.0; schema cum: 1 everywhere. |diff|<=0.1 at
	// the last two points (0.9 and 1.0).
	if math.Abs(sync-0.2) > 1e-9 {
		t.Errorf("sync = %v, want 0.2", sync)
	}
}

func TestSynchronicityThetaMonotone(t *testing.T) {
	j := mk(t, []float64{3, 1, 4, 1, 5, 9, 2, 6}, []float64{2, 7, 1, 8, 2, 8, 1, 8})
	s5, _ := j.Synchronicity(0.05)
	s10, _ := j.Synchronicity(0.10)
	s100, _ := j.Synchronicity(1.0)
	if s5 > s10 || s10 > s100 {
		t.Errorf("synchronicity must grow with theta: %v %v %v", s5, s10, s100)
	}
	if s100 != 1 {
		t.Errorf("theta=1 must accept everything, got %v", s100)
	}
}

func TestSynchronicityErrors(t *testing.T) {
	j := mk(t, []float64{1, 1}, []float64{1, 1})
	if _, err := j.Synchronicity(-0.1); !errors.Is(err, ErrBadTheta) {
		t.Errorf("negative theta err = %v", err)
	}
	if _, err := j.Synchronicity(1.5); !errors.Is(err, ErrBadTheta) {
		t.Errorf("theta > 1 err = %v", err)
	}
	empty := jp(nil, nil, nil)
	if _, err := empty.Synchronicity(0.1); !errors.Is(err, ErrEmptySeries) {
		t.Errorf("empty err = %v", err)
	}
}

func TestAdvanceEarlySchema(t *testing.T) {
	// Schema finishes at month 0; it is ahead of both time and source for
	// every subsequent month.
	j := mk(t, []float64{1, 1, 1, 1, 1}, []float64{7, 0, 0, 0, 0})
	at, err := j.AdvanceOverTime()
	if err != nil || at != 1 {
		t.Errorf("AdvanceOverTime = %v, %v; want 1", at, err)
	}
	as, err := j.AdvanceOverSource()
	if err != nil || as != 1 {
		t.Errorf("AdvanceOverSource = %v, %v; want 1", as, err)
	}
	ot, os, ob := j.AlwaysAdvance()
	if !ot || !os || !ob {
		t.Errorf("AlwaysAdvance = %v %v %v, want all true", ot, os, ob)
	}
}

func TestAdvanceLateSchema(t *testing.T) {
	// Schema changes only in the final month; it lags everywhere except
	// the terminal point where all series converge at 1.
	j := mk(t, []float64{1, 1, 1, 1, 1}, []float64{0, 0, 0, 0, 3})
	at, err := j.AdvanceOverTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(at-0.25) > 1e-9 { // only the last of 4 post-creation months
		t.Errorf("AdvanceOverTime = %v, want 0.25", at)
	}
	ot, os, ob := j.AlwaysAdvance()
	if ot || os || ob {
		t.Errorf("late schema should never be always-ahead: %v %v %v", ot, os, ob)
	}
}

func TestAdvanceUndefinedForSingleMonth(t *testing.T) {
	j := mk(t, []float64{5}, []float64{2})
	if _, err := j.AdvanceOverTime(); !errors.Is(err, ErrUndefined) {
		t.Errorf("single-month advance err = %v", err)
	}
	ot, os, ob := j.AlwaysAdvance()
	if ot || os || ob {
		t.Error("undefined advance must not report always-ahead")
	}
}

func TestAttainment(t *testing.T) {
	// The paper's worked example: cumulative fractional schema activity
	// [20%, 47%, 85%, 95%, 100%, 100%, 100%] over months M0..M6. The
	// 45%-attainment timepoint is M1 and the fractional timepoint 1/6.
	schemaCum := []float64{0.20, 0.47, 0.85, 0.95, 1.00, 1.00, 1.00}
	n := len(schemaCum)
	j := jp(make([]float64, n), schemaCum, heartbeat.TimeProgress(n))
	for i := range j.Project {
		j.Project[i] = float64(i+1) / float64(n)
	}
	idx, err := j.Attainment(0.45)
	if err != nil || idx != 1 {
		t.Errorf("Attainment(45%%) = %d, %v; want 1", idx, err)
	}
	frac, err := j.AttainmentFraction(0.45)
	if err != nil || math.Abs(frac-1.0/6.0) > 1e-9 {
		t.Errorf("AttainmentFraction(45%%) = %v, %v; want 1/6", frac, err)
	}
	if idx, _ := j.Attainment(1.0); idx != 4 {
		t.Errorf("Attainment(100%%) = %d, want 4", idx)
	}
}

func TestAttainmentErrors(t *testing.T) {
	j := mk(t, []float64{1, 1}, []float64{1, 1})
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := j.Attainment(alpha); !errors.Is(err, ErrBadAlpha) {
			t.Errorf("alpha %v err = %v", alpha, err)
		}
	}
}

func TestAttainmentSingleMonth(t *testing.T) {
	j := mk(t, []float64{5}, []float64{2})
	frac, err := j.AttainmentFraction(0.75)
	if err != nil || frac != 0 {
		t.Errorf("single-month attainment = %v, %v; want 0", frac, err)
	}
}

func TestComputeMeasures(t *testing.T) {
	j := mk(t,
		[]float64{10, 5, 5, 5, 5, 10}, // project
		[]float64{8, 0, 2, 0, 0, 0},   // schema: early-heavy
	)
	m, err := ComputeMeasures(j)
	if err != nil {
		t.Fatal(err)
	}
	if m.DurationMonths != 5 {
		t.Errorf("DurationMonths = %d, want 5", m.DurationMonths)
	}
	if !m.AdvanceDefined {
		t.Error("advance should be defined")
	}
	// Schema cum: .8,.8,1,1,1,1 — ahead of time everywhere, and ahead of
	// project cum (.25,.375,.5,.625,.75,1) everywhere.
	if m.AdvanceTime != 1 || m.AdvanceSource != 1 {
		t.Errorf("advance = %v/%v, want 1/1", m.AdvanceTime, m.AdvanceSource)
	}
	if !m.AlwaysAheadOfBoth {
		t.Error("AlwaysAheadOfBoth should hold")
	}
	if m.Attain50 != 0 || m.Attain75 != 0 {
		t.Errorf("early attainments = %v/%v, want 0/0", m.Attain50, m.Attain75)
	}
	if math.Abs(m.Attain100-0.4) > 1e-9 { // month 2 of 5
		t.Errorf("Attain100 = %v, want 0.4", m.Attain100)
	}
	if m.Sync10 <= 0 || m.Sync10 > 1 {
		t.Errorf("Sync10 = %v out of range", m.Sync10)
	}
}

func TestComputeMeasuresSingleMonth(t *testing.T) {
	j := mk(t, []float64{3}, []float64{2})
	m, err := ComputeMeasures(j)
	if err != nil {
		t.Fatal(err)
	}
	if m.AdvanceDefined || !math.IsNaN(m.AdvanceTime) || !math.IsNaN(m.AdvanceSource) {
		t.Errorf("single-month advance should be NaN/undefined: %+v", m)
	}
	if m.Sync10 != 1 { // both series are [1]
		t.Errorf("Sync10 = %v, want 1", m.Sync10)
	}
}

func TestFromAligned(t *testing.T) {
	p := heartbeat.New(10, 3)
	p.Values[0], p.Values[2] = 1, 1
	s := heartbeat.New(10, 3)
	s.Values[0] = 1
	a, err := heartbeat.Align(p, s)
	if err != nil {
		t.Fatal(err)
	}
	j := FromAligned(a)
	if j.Start != 10 || j.Len() != 3 {
		t.Errorf("FromAligned = %+v", j)
	}
}

// Property: for any non-degenerate progression pair, synchronicity is in
// [0, 1], advance measures are in [0, 1], and attainment fractions are
// non-decreasing in alpha.
func TestQuickMeasureInvariants(t *testing.T) {
	f := func(pRaw, sRaw []uint8) bool {
		n := len(pRaw)
		if n < 2 || len(sRaw) < n {
			return true
		}
		p := heartbeat.New(0, n)
		s := heartbeat.New(0, n)
		pNonzero, sNonzero := false, false
		for i := 0; i < n; i++ {
			p.Values[i] = float64(pRaw[i])
			s.Values[i] = float64(sRaw[i])
			if pRaw[i] != 0 {
				pNonzero = true
			}
			if sRaw[i] != 0 {
				sNonzero = true
			}
		}
		if !pNonzero || !sNonzero {
			return true
		}
		j, err := New(p, s)
		if err != nil {
			return false
		}
		m, err := ComputeMeasures(j)
		if err != nil {
			return false
		}
		in01 := func(v float64) bool { return v >= 0 && v <= 1 }
		if !in01(m.Sync5) || !in01(m.Sync10) || m.Sync5 > m.Sync10+1e-12 {
			return false
		}
		if m.AdvanceDefined && (!in01(m.AdvanceTime) || !in01(m.AdvanceSource)) {
			return false
		}
		return m.Attain50 <= m.Attain75+1e-12 &&
			m.Attain75 <= m.Attain80+1e-12 &&
			m.Attain80 <= m.Attain100+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: always-ahead-of-both implies both individual flags, and
// always-ahead flags imply advance == 1.
func TestQuickAlwaysAdvanceConsistency(t *testing.T) {
	f := func(pRaw, sRaw []uint8) bool {
		n := len(pRaw)
		if n < 2 || len(sRaw) < n {
			return true
		}
		p := heartbeat.New(0, n)
		s := heartbeat.New(0, n)
		ok := false
		for i := 0; i < n; i++ {
			p.Values[i] = float64(pRaw[i]%16) + 0.001 // ensure nonzero totals
			s.Values[i] = float64(sRaw[i] % 16)
			if sRaw[i]%16 != 0 {
				ok = true
			}
		}
		if !ok {
			return true
		}
		j, err := New(p, s)
		if err != nil {
			return false
		}
		ot, os, ob := j.AlwaysAdvance()
		if ob && (!ot || !os) {
			return false
		}
		if ot {
			if v, err := j.AdvanceOverTime(); err != nil || v < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewPropagatesAlignmentErrors(t *testing.T) {
	frozen := heartbeat.New(0, 3) // all-zero schema
	project := heartbeat.New(0, 3)
	project.Values[0] = 1
	if _, err := New(project, frozen); err == nil {
		t.Error("zero-total schema should fail")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("nil heartbeats should fail")
	}
}

func TestComputeMeasuresMismatchedSeries(t *testing.T) {
	j := jp([]float64{0.5, 1}, []float64{1}, []float64{0, 1})
	if _, err := ComputeMeasures(j); err == nil {
		t.Error("mismatched series should fail")
	}
	if _, err := ComputeMeasures(jp(nil, nil, nil)); err == nil {
		t.Error("empty series should fail")
	}
}

func TestAttainmentMalformedSeries(t *testing.T) {
	// A schema series that never reaches alpha (malformed: should end at
	// 1) must report an error rather than a bogus index.
	j := jp([]float64{0.5, 1}, []float64{0.1, 0.2}, []float64{0, 1})
	if _, err := j.Attainment(0.9); !errors.Is(err, ErrUndefined) {
		t.Errorf("err = %v, want ErrUndefined", err)
	}
}

func TestGapAndMaxDivergence(t *testing.T) {
	j := mk(t, []float64{1, 1, 1, 1}, []float64{3, 0, 0, 1})
	gap, err := j.Gap()
	if err != nil {
		t.Fatal(err)
	}
	// schema cum: .75,.75,.75,1 ; project cum: .25,.5,.75,1
	want := []float64{-0.5, -0.25, 0, 0}
	for i := range want {
		if math.Abs(gap[i]-want[i]) > 1e-9 {
			t.Fatalf("gap = %v, want %v", gap, want)
		}
	}
	v, m, err := j.MaxDivergence()
	if err != nil || math.Abs(v-0.5) > 1e-9 || m != 0 {
		t.Errorf("MaxDivergence = %v @ %d, %v; want 0.5 @ 0", v, m, err)
	}
	if _, err := jp(nil, nil, nil).Gap(); err == nil {
		t.Error("empty gap should fail")
	}
	if _, _, err := jp(nil, nil, nil).MaxDivergence(); err == nil {
		t.Error("empty divergence should fail")
	}
}
