package coevolution_test

import (
	"fmt"

	"coevo/internal/coevolution"
	"coevo/internal/heartbeat"
)

// ExampleJointProgress_Synchronicity computes the paper's three measure
// families over a small joint progression.
func ExampleJointProgress_Synchronicity() {
	// Monthly activity: the schema is early-heavy, the project steady.
	project := heartbeat.New(0, 6)
	copy(project.Values, []float64{10, 5, 5, 5, 5, 10})
	schemaHB := heartbeat.New(0, 6)
	copy(schemaHB.Values, []float64{8, 0, 2, 0, 0, 0})

	j, err := coevolution.New(project, schemaHB)
	if err != nil {
		panic(err)
	}
	sync, _ := j.Synchronicity(0.10)
	advTime, _ := j.AdvanceOverTime()
	attain75, _ := j.AttainmentFraction(0.75)
	fmt.Printf("10%%-synchronicity: %.2f\n", sync)
	fmt.Printf("advance over time: %.2f\n", advTime)
	fmt.Printf("75%% attained at %.0f%% of life\n", attain75*100)
	// Output:
	// 10%-synchronicity: 0.17
	// advance over time: 1.00
	// 75% attained at 0% of life
}
