// Package coevolution implements the paper's measurement framework for
// joint source and schema evolution:
//
//   - θ-synchronicity (RQ1): for which fraction of the project's monthly
//     timepoints were the cumulative fractional progressions of schema and
//     project within an acceptance band θ of each other;
//   - life percentage of schema advance over time and over source (RQ2):
//     for which fraction of the months after creation was the schema's
//     cumulative progression ahead of time progress (resp. project
//     progress);
//   - α-attainment fractional timepoints (RQ3): how far into the project's
//     life the schema first reached α percent of its total evolution.
//
// All measures operate on a JointProgress — the three aligned cumulative
// fractional series of Figure 1's joint progress diagram.
package coevolution

import (
	"errors"
	"fmt"
	"math"

	"coevo/internal/heartbeat"
)

// Errors returned by the measures.
var (
	ErrEmptySeries = errors.New("coevolution: empty series")
	ErrUndefined   = errors.New("coevolution: measure undefined for this history")
	ErrBadTheta    = errors.New("coevolution: theta must be in [0, 1]")
	ErrBadAlpha    = errors.New("coevolution: alpha must be in (0, 1]")
)

// JointProgress bundles the three cumulative fractional series of a
// project over its monthly lifetime axis: project activity, schema
// activity, and time.
type JointProgress struct {
	Start   heartbeat.Month
	Project []float64
	Schema  []float64
	Time    []float64
}

// New builds a JointProgress from the two heartbeats (project activity and
// schema activity), aligning them over the project's lifetime.
func New(project, schema *heartbeat.Heartbeat) (*JointProgress, error) {
	a, err := heartbeat.Align(project, schema)
	if err != nil {
		return nil, err
	}
	return &JointProgress{Start: a.Start, Project: a.Project, Schema: a.Schema, Time: a.Time}, nil
}

// FromAligned wraps an already aligned triple.
func FromAligned(a *heartbeat.Aligned) *JointProgress {
	return &JointProgress{Start: a.Start, Project: a.Project, Schema: a.Schema, Time: a.Time}
}

// Len returns the number of monthly timepoints.
func (j *JointProgress) Len() int { return len(j.Project) }

// validate checks series consistency.
func (j *JointProgress) validate() error {
	if j.Len() == 0 {
		return ErrEmptySeries
	}
	if len(j.Schema) != j.Len() || len(j.Time) != j.Len() {
		return fmt.Errorf("%w: project %d, schema %d, time %d points",
			heartbeat.ErrMisjoined, len(j.Project), len(j.Schema), len(j.Time))
	}
	return nil
}

// Synchronicity returns the θ-synchronicity of the project and schema
// progressions: the fraction of timepoints t where |project(t) − schema(t)|
// ≤ θ. θ is an acceptance band for "hand-in-hand" co-evolution, not a lag
// measure; the paper reports θ = 10% (with θ = 5% as a robustness check).
func (j *JointProgress) Synchronicity(theta float64) (float64, error) {
	if err := j.validate(); err != nil {
		return 0, err
	}
	if theta < 0 || theta > 1 {
		return 0, fmt.Errorf("%w: %v", ErrBadTheta, theta)
	}
	inBand := 0
	for i := range j.Project {
		if math.Abs(j.Project[i]-j.Schema[i]) <= theta+1e-12 {
			inBand++
		}
	}
	return float64(inBand) / float64(j.Len()), nil
}

// AdvanceOverSource returns the life percentage of schema advance over
// source: the fraction of months after the project's creation where the
// schema's cumulative fractional activity was greater than or equal to the
// project's. It is undefined (ErrUndefined) for single-month projects,
// which have no months after creation — the "(blank)" rows of Figure 6.
func (j *JointProgress) AdvanceOverSource() (float64, error) {
	return j.advanceOver(j.Project)
}

// AdvanceOverTime returns the life percentage of schema advance over time:
// the fraction of months after creation where the schema's cumulative
// fractional activity was greater than or equal to the time progression.
func (j *JointProgress) AdvanceOverTime() (float64, error) {
	return j.advanceOver(j.Time)
}

func (j *JointProgress) advanceOver(other []float64) (float64, error) {
	if err := j.validate(); err != nil {
		return 0, err
	}
	n := j.Len() - 1 // months after creation
	if n == 0 {
		return 0, fmt.Errorf("%w: single-month project", ErrUndefined)
	}
	ahead := 0
	for i := 1; i < j.Len(); i++ {
		if j.Schema[i]-other[i] >= -1e-12 {
			ahead++
		}
	}
	return float64(ahead) / float64(n), nil
}

// AlwaysAdvance reports whether the schema was in advance of time, of
// source, and of both, for every month after creation. Projects where the
// measures are undefined report false on all three.
func (j *JointProgress) AlwaysAdvance() (overTime, overSource, overBoth bool) {
	t, errT := j.AdvanceOverTime()
	s, errS := j.AdvanceOverSource()
	overTime = errT == nil && t >= 1
	overSource = errS == nil && s >= 1
	overBoth = overTime && overSource
	return overTime, overSource, overBoth
}

// Attainment returns the index of the first timepoint at which the
// schema's cumulative fractional activity reached or exceeded alpha.
func (j *JointProgress) Attainment(alpha float64) (int, error) {
	if err := j.validate(); err != nil {
		return 0, err
	}
	if alpha <= 0 || alpha > 1 {
		return 0, fmt.Errorf("%w: %v", ErrBadAlpha, alpha)
	}
	for i, v := range j.Schema {
		if v >= alpha-1e-12 {
			return i, nil
		}
	}
	// The schema series terminates at 1, so alpha ≤ 1 is always attained;
	// reaching here means the series was malformed.
	return 0, fmt.Errorf("%w: schema series never reaches %v", ErrUndefined, alpha)
}

// AttainmentFraction returns the α-attainment fractional timepoint: the
// attainment month index divided by the project's duration in months. A
// single-month project attains everything at fraction 0.
func (j *JointProgress) AttainmentFraction(alpha float64) (float64, error) {
	idx, err := j.Attainment(alpha)
	if err != nil {
		return 0, err
	}
	n := j.Len() - 1
	if n == 0 {
		return 0, nil
	}
	return float64(idx) / float64(n), nil
}

// Measures aggregates every per-project quantity the study reports. Values
// whose measure is undefined for the project carry NaN and a false flag.
type Measures struct {
	// DurationMonths is the project's lifetime in months (timepoints - 1).
	DurationMonths int

	// Sync5 and Sync10 are the 5%- and 10%-synchronicity.
	Sync5, Sync10 float64

	// AdvanceTime and AdvanceSource are the life percentages of schema
	// advance; Defined reports whether they exist (multi-month project).
	AdvanceTime, AdvanceSource float64
	AdvanceDefined             bool

	// AlwaysAheadOfTime/Source/Both are the Figure 7 flags.
	AlwaysAheadOfTime   bool
	AlwaysAheadOfSource bool
	AlwaysAheadOfBoth   bool

	// Attain50..Attain100 are the α-attainment fractional timepoints.
	Attain50, Attain75, Attain80, Attain100 float64
}

// ComputeMeasures evaluates the full measure suite on one joint progress.
func ComputeMeasures(j *JointProgress) (*Measures, error) {
	if err := j.validate(); err != nil {
		return nil, err
	}
	m := &Measures{DurationMonths: j.Len() - 1}
	var err error
	if m.Sync5, err = j.Synchronicity(0.05); err != nil {
		return nil, err
	}
	if m.Sync10, err = j.Synchronicity(0.10); err != nil {
		return nil, err
	}
	at, errT := j.AdvanceOverTime()
	as, errS := j.AdvanceOverSource()
	switch {
	case errT == nil && errS == nil:
		m.AdvanceTime, m.AdvanceSource, m.AdvanceDefined = at, as, true
	case errors.Is(errT, ErrUndefined) || errors.Is(errS, ErrUndefined):
		m.AdvanceTime, m.AdvanceSource = math.NaN(), math.NaN()
	default:
		if errT != nil {
			return nil, errT
		}
		return nil, errS
	}
	m.AlwaysAheadOfTime, m.AlwaysAheadOfSource, m.AlwaysAheadOfBoth = j.AlwaysAdvance()
	for _, a := range []struct {
		alpha float64
		dst   *float64
	}{
		{0.50, &m.Attain50}, {0.75, &m.Attain75}, {0.80, &m.Attain80}, {1.00, &m.Attain100},
	} {
		v, err := j.AttainmentFraction(a.alpha)
		if err != nil {
			return nil, err
		}
		*a.dst = v
	}
	return m, nil
}

// Gap returns the per-month difference series project − schema. Positive
// values mean the source's cumulative progression is ahead of the
// schema's; negative values mean the schema leads. This is the lag curve
// underneath both the θ-synchronicity band and the advance measures.
func (j *JointProgress) Gap() ([]float64, error) {
	if err := j.validate(); err != nil {
		return nil, err
	}
	gap := make([]float64, j.Len())
	for i := range gap {
		gap[i] = j.Project[i] - j.Schema[i]
	}
	return gap, nil
}

// MaxDivergence returns the largest absolute project/schema gap and the
// timepoint index where it occurs — "how far out of sync did this project
// ever get".
func (j *JointProgress) MaxDivergence() (value float64, month int, err error) {
	gap, err := j.Gap()
	if err != nil {
		return 0, 0, err
	}
	for i, g := range gap {
		if a := math.Abs(g); a > value {
			value, month = a, i
		}
	}
	return value, month, nil
}
