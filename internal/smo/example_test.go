package smo_test

import (
	"fmt"

	"coevo/internal/schema"
	"coevo/internal/smo"
)

// ExampleDerive turns a schema diff into an executable, invertible
// migration.
func ExampleDerive() {
	old, _ := schema.ParseAndBuild("CREATE TABLE t (a INT, b VARCHAR(10));")
	target, _ := schema.ParseAndBuild("CREATE TABLE t (a BIGINT, c TEXT);")

	seq := smo.Derive(old, target)
	fmt.Println(seq)
	fmt.Println("--")
	fmt.Println(seq.SQL())
	// Output:
	// RETYPE(t.a: INT -> BIGINT)
	// ADD(t.c: TEXT)
	// EJECT(t.b: VARCHAR(10))
	// --
	// ALTER TABLE t ALTER COLUMN a TYPE BIGINT;
	// ALTER TABLE t ADD COLUMN c TEXT;
	// ALTER TABLE t DROP COLUMN b;
}
