package smo

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"coevo/internal/schema"
	"coevo/internal/schemadiff"
	"coevo/internal/sqlddl"
)

func mustSchema(t *testing.T, src string) *schema.Schema {
	t.Helper()
	s, errs := schema.ParseAndBuild(src)
	if len(errs) > 0 {
		t.Fatalf("ParseAndBuild(%q): %v", src, errs)
	}
	return s
}

func TestDeriveAndApplyRoundTrip(t *testing.T) {
	old := mustSchema(t, `
		CREATE TABLE users (id INT, email VARCHAR(255), nickname TEXT, PRIMARY KEY (id));
		CREATE TABLE sessions (token CHAR(32), user_id INT);`)
	new_ := mustSchema(t, `
		CREATE TABLE users (id BIGINT, email VARCHAR(255), created TIMESTAMP, PRIMARY KEY (id));
		CREATE TABLE audit (id INT, entry TEXT, PRIMARY KEY (id));`)

	seq := Derive(old, new_)
	if len(seq) == 0 {
		t.Fatal("expected a non-empty sequence")
	}
	applied, err := Apply(old, seq)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !Equal(applied, new_) {
		t.Errorf("apply(derive) != target:\nseq:\n%s\ndiff: %s",
			seq, schemadiff.Compare(applied, new_))
	}
}

func TestDeriveActivityMatchesDiff(t *testing.T) {
	old := mustSchema(t, "CREATE TABLE a (x INT, y TEXT); CREATE TABLE b (p INT);")
	new_ := mustSchema(t, "CREATE TABLE a (x BIGINT, z TEXT); CREATE TABLE c (q INT, r INT);")
	seq := Derive(old, new_)
	want := schemadiff.Compare(old, new_).TotalActivity()
	if got := seq.Activity(); got != want {
		t.Errorf("sequence activity %d != diff activity %d\nseq:\n%s", got, want, seq)
	}
}

func TestInvertRestoresOriginal(t *testing.T) {
	old := mustSchema(t, "CREATE TABLE t (a INT, b VARCHAR(10), PRIMARY KEY (a));")
	new_ := mustSchema(t, "CREATE TABLE t (a INT, c TEXT, PRIMARY KEY (a, c)); CREATE TABLE u (x INT);")
	seq := Derive(old, new_)
	forward, err := Apply(old, seq)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Apply(forward, seq.Invert())
	if err != nil {
		t.Fatalf("Apply(invert): %v", err)
	}
	if !Equal(back, old) {
		t.Errorf("invert did not restore original:\n%s", schemadiff.Compare(back, old))
	}
}

func TestDeriveFromNilIsCreation(t *testing.T) {
	s := mustSchema(t, "CREATE TABLE t (a INT, b INT);")
	seq := Derive(nil, s)
	if len(seq) != 1 {
		t.Fatalf("seq = %v", seq)
	}
	ct, ok := seq[0].(CreateTable)
	if !ok || len(ct.Columns) != 2 {
		t.Errorf("op = %+v", seq[0])
	}
	applied, err := Apply(nil, seq)
	if err != nil || !Equal(applied, s) {
		t.Errorf("creation from nil failed: %v", err)
	}
}

func TestDeriveIdenticalIsEmpty(t *testing.T) {
	s := mustSchema(t, "CREATE TABLE t (a INT, PRIMARY KEY (a));")
	if seq := Derive(s, s.Clone()); len(seq) != 0 {
		t.Errorf("self-derive produced %v", seq)
	}
}

func TestSQLRenderingReparses(t *testing.T) {
	old := mustSchema(t, "CREATE TABLE t (a INT, b VARCHAR(10), PRIMARY KEY (a));")
	new_ := mustSchema(t, `
		CREATE TABLE t (a INT, b TEXT, d DECIMAL(8,2), PRIMARY KEY (a));
		CREATE TABLE fresh (x INT, PRIMARY KEY (x));`)
	seq := Derive(old, new_)
	script := seq.SQL()

	// The rendered migration, applied as plain SQL to the old schema, must
	// land on the new one — forward engineering through the real parser.
	parsed, err := sqlddl.Parse(script)
	if err != nil {
		t.Fatalf("rendered SQL does not parse: %v\n%s", err, script)
	}
	combined := old.Clone()
	for _, stmt := range parsed.Statements {
		if errs := combined.Apply(stmt); len(errs) > 0 {
			t.Fatalf("rendered SQL does not apply: %v\n%s", errs[0], script)
		}
	}
	if !Equal(combined, new_) {
		t.Errorf("migration script did not reproduce target:\n%s\ndiff: %s",
			script, schemadiff.Compare(combined, new_))
	}
}

func TestOpStringsAndSQL(t *testing.T) {
	ops := []Op{
		CreateTable{Table: "t", Columns: []Column{{"a", "INT"}}, PrimaryKey: []string{"a"}},
		DropTable{Table: "t", Columns: []Column{{"a", "INT"}}},
		AddColumn{Table: "t", Column: Column{"b", "TEXT"}},
		DropColumn{Table: "t", Column: Column{"b", "TEXT"}},
		ChangeType{Table: "t", Column: "a", OldType: "INT", NewType: "BIGINT"},
		SetPrimaryKey{Table: "t", Old: []string{"a"}, New: []string{"a", "b"}},
		SetPrimaryKey{Table: "t", Old: []string{"a"}, New: nil},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("%T has empty String", op)
		}
		if !strings.Contains(SQL(op), "t") {
			t.Errorf("%T SQL missing table: %q", op, SQL(op))
		}
		if op.Activity() < 0 {
			t.Errorf("%T negative activity", op)
		}
		// Double inversion is identity at the behavioural level.
		twice := op.Invert().Invert()
		if twice.String() != op.String() {
			t.Errorf("%T double-invert drifted: %s vs %s", op, op, twice)
		}
	}
}

func TestSetPrimaryKeyActivity(t *testing.T) {
	op := SetPrimaryKey{Old: []string{"a", "b"}, New: []string{"b", "c"}}
	if op.Activity() != 2 { // a left, c joined
		t.Errorf("Activity = %d, want 2", op.Activity())
	}
	noop := SetPrimaryKey{Old: []string{"a"}, New: []string{"a"}}
	if noop.Activity() != 0 {
		t.Errorf("identical keys activity = %d", noop.Activity())
	}
}

// Property: for arbitrary generated schema pairs, Apply(old, Derive(old,
// new)) == new, the inverse restores old, and the sequence activity equals
// the diff activity.
func TestQuickDeriveApplyInvert(t *testing.T) {
	gen := func(seed uint32) *schema.Schema {
		var b strings.Builder
		nt := int(seed%3) + 1
		for i := 0; i < nt; i++ {
			fmt.Fprintf(&b, "CREATE TABLE t%d (", i)
			na := int(seed/3)%4 + 1
			for j := 0; j < na; j++ {
				if j > 0 {
					b.WriteString(", ")
				}
				ty := []string{"INT", "TEXT", "VARCHAR(7)", "BOOLEAN"}[(int(seed)+i+j)%4]
				fmt.Fprintf(&b, "c%d %s", j, ty)
			}
			if seed%2 == 0 {
				b.WriteString(", PRIMARY KEY (c0)")
			}
			b.WriteString(");")
		}
		s, _ := schema.ParseAndBuild(b.String())
		return s
	}
	f := func(a, b uint32) bool {
		old, target := gen(a), gen(b)
		seq := Derive(old, target)
		if seq.Activity() != schemadiff.Compare(old, target).TotalActivity() {
			return false
		}
		forward, err := Apply(old, seq)
		if err != nil || !Equal(forward, target) {
			return false
		}
		back, err := Apply(forward, seq.Invert())
		return err == nil && Equal(back, old)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
