// Package smo provides a Schema Modification Operation algebra over the
// logical schema model: the diff between two schema versions expressed as
// an explicit, invertible, SQL-renderable operation sequence.
//
// The paper's related-work section points at SMO algebras as the device
// for describing change sequences in both forward- and reverse-engineering
// settings; this package supplies that device for the reproduction's
// schemata. A Sequence derived from two versions can be applied to the
// older one to obtain the newer, inverted to roll back, rendered as ALTER
// statements to produce a migration script, and measured in exactly the
// study's Activity units.
package smo

import (
	"fmt"
	"strings"

	"coevo/internal/schema"
	"coevo/internal/schemadiff"
	"coevo/internal/sqlddl"
)

// Column is the (name, canonical type) pair SMOs carry. Types use the
// normalized comparison form of the schema package.
type Column struct {
	Name string
	Type string
}

// Op is one schema modification operation.
type Op interface {
	// Invert returns the operation that undoes this one.
	Invert() Op
	// Statement renders the operation as a parsed DDL statement.
	Statement() sqlddl.Statement
	// Activity returns the operation's volume in the study's
	// attribute-level units.
	Activity() int
	fmt.Stringer
}

// CreateTable creates a table with the given columns and primary key.
type CreateTable struct {
	Table      string
	Columns    []Column
	PrimaryKey []string
}

// DropTable drops a table; the columns and key are retained so the
// operation stays invertible.
type DropTable struct {
	Table      string
	Columns    []Column
	PrimaryKey []string
}

// AddColumn injects a column into an existing table.
type AddColumn struct {
	Table  string
	Column Column
}

// DropColumn ejects a column; the type is retained for invertibility.
type DropColumn struct {
	Table  string
	Column Column
}

// ChangeType changes a column's data type.
type ChangeType struct {
	Table   string
	Column  string
	OldType string
	NewType string
}

// SetPrimaryKey replaces a table's primary key.
type SetPrimaryKey struct {
	Table string
	Old   []string
	New   []string
}

// String renders each op in a compact algebra notation.

func (op CreateTable) String() string {
	return fmt.Sprintf("CREATE(%s: %d columns)", op.Table, len(op.Columns))
}
func (op DropTable) String() string {
	return fmt.Sprintf("DROP(%s: %d columns)", op.Table, len(op.Columns))
}
func (op AddColumn) String() string {
	return fmt.Sprintf("ADD(%s.%s: %s)", op.Table, op.Column.Name, op.Column.Type)
}
func (op DropColumn) String() string {
	return fmt.Sprintf("EJECT(%s.%s: %s)", op.Table, op.Column.Name, op.Column.Type)
}
func (op ChangeType) String() string {
	return fmt.Sprintf("RETYPE(%s.%s: %s -> %s)", op.Table, op.Column, op.OldType, op.NewType)
}
func (op SetPrimaryKey) String() string {
	return fmt.Sprintf("REKEY(%s: (%s) -> (%s))", op.Table, strings.Join(op.Old, ","), strings.Join(op.New, ","))
}

// Invert implementations: every op's undo.

func (op CreateTable) Invert() Op {
	return DropTable{Table: op.Table, Columns: op.Columns, PrimaryKey: op.PrimaryKey}
}
func (op DropTable) Invert() Op {
	return CreateTable{Table: op.Table, Columns: op.Columns, PrimaryKey: op.PrimaryKey}
}
func (op AddColumn) Invert() Op { return DropColumn{Table: op.Table, Column: op.Column} }
func (op DropColumn) Invert() Op {
	return AddColumn{Table: op.Table, Column: op.Column}
}
func (op ChangeType) Invert() Op {
	return ChangeType{Table: op.Table, Column: op.Column, OldType: op.NewType, NewType: op.OldType}
}
func (op SetPrimaryKey) Invert() Op {
	return SetPrimaryKey{Table: op.Table, Old: op.New, New: op.Old}
}

// Activity implementations: the study's attribute-level unit volumes.

func (op CreateTable) Activity() int   { return len(op.Columns) }
func (op DropTable) Activity() int     { return len(op.Columns) }
func (op AddColumn) Activity() int     { return 1 }
func (op DropColumn) Activity() int    { return 1 }
func (op ChangeType) Activity() int    { return 1 }
func (op SetPrimaryKey) Activity() int { return symmetricDiffLen(op.Old, op.New) }

func symmetricDiffLen(a, b []string) int {
	inA := map[string]bool{}
	for _, s := range a {
		inA[s] = true
	}
	n := 0
	for _, s := range b {
		if !inA[s] {
			n++
		}
		delete(inA, s)
	}
	return n + len(inA)
}

// Statement implementations: every op as DDL.

func (op CreateTable) Statement() sqlddl.Statement {
	ct := &sqlddl.CreateTable{Name: sqlddl.TableName{Name: op.Table}}
	for _, c := range op.Columns {
		ct.Columns = append(ct.Columns, sqlddl.ColumnDef{Name: c.Name, Type: parseType(c.Type)})
	}
	if len(op.PrimaryKey) > 0 {
		ct.Constraints = append(ct.Constraints, sqlddl.TableConstraint{
			Kind: sqlddl.ConstraintPrimaryKey, Columns: op.PrimaryKey,
		})
	}
	return ct
}

func (op DropTable) Statement() sqlddl.Statement {
	return &sqlddl.DropTable{Names: []sqlddl.TableName{{Name: op.Table}}}
}

func (op AddColumn) Statement() sqlddl.Statement {
	return &sqlddl.AlterTable{
		Name: sqlddl.TableName{Name: op.Table},
		Actions: []sqlddl.AlterAction{sqlddl.AddColumn{
			Column: sqlddl.ColumnDef{Name: op.Column.Name, Type: parseType(op.Column.Type)},
		}},
	}
}

func (op DropColumn) Statement() sqlddl.Statement {
	return &sqlddl.AlterTable{
		Name:    sqlddl.TableName{Name: op.Table},
		Actions: []sqlddl.AlterAction{sqlddl.DropColumn{Name: op.Column.Name}},
	}
}

func (op ChangeType) Statement() sqlddl.Statement {
	return &sqlddl.AlterTable{
		Name: sqlddl.TableName{Name: op.Table},
		Actions: []sqlddl.AlterAction{sqlddl.AlterColumnType{
			Name: op.Column, Type: parseType(op.NewType),
		}},
	}
}

func (op SetPrimaryKey) Statement() sqlddl.Statement {
	at := &sqlddl.AlterTable{Name: sqlddl.TableName{Name: op.Table}}
	if len(op.New) == 0 {
		at.Actions = []sqlddl.AlterAction{sqlddl.DropConstraint{Kind: sqlddl.ConstraintPrimaryKey}}
	} else {
		at.Actions = []sqlddl.AlterAction{sqlddl.AddConstraint{Constraint: sqlddl.TableConstraint{
			Kind: sqlddl.ConstraintPrimaryKey, Columns: op.New,
		}}}
	}
	return at
}

// parseType reconstructs a DataType from its canonical text by parsing a
// tiny synthetic column definition. The canonical form always re-parses:
// it was produced by DataType.String.
func parseType(canon string) sqlddl.DataType {
	script, err := sqlddl.Parse("CREATE TABLE _t (_c " + canon + ");")
	if err == nil {
		if cts := script.CreateTables(); len(cts) == 1 && len(cts[0].Columns) == 1 {
			return cts[0].Columns[0].Type
		}
	}
	return sqlddl.DataType{Name: canon}
}

// SQL renders the op as executable DDL text (MySQL-compatible spelling,
// which the schema builder also accepts).
func SQL(op Op) string {
	switch o := op.(type) {
	case CreateTable:
		var b strings.Builder
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", o.Table)
		for i, c := range o.Columns {
			if i > 0 {
				b.WriteString(",\n")
			}
			fmt.Fprintf(&b, "  %s %s", c.Name, c.Type)
		}
		if len(o.PrimaryKey) > 0 {
			fmt.Fprintf(&b, ",\n  PRIMARY KEY (%s)", strings.Join(o.PrimaryKey, ", "))
		}
		b.WriteString("\n);")
		return b.String()
	case DropTable:
		return fmt.Sprintf("DROP TABLE %s;", o.Table)
	case AddColumn:
		return fmt.Sprintf("ALTER TABLE %s ADD COLUMN %s %s;", o.Table, o.Column.Name, o.Column.Type)
	case DropColumn:
		return fmt.Sprintf("ALTER TABLE %s DROP COLUMN %s;", o.Table, o.Column.Name)
	case ChangeType:
		return fmt.Sprintf("ALTER TABLE %s ALTER COLUMN %s TYPE %s;", o.Table, o.Column, o.NewType)
	case SetPrimaryKey:
		if len(o.New) == 0 {
			return fmt.Sprintf("ALTER TABLE %s DROP PRIMARY KEY;", o.Table)
		}
		return fmt.Sprintf("ALTER TABLE %s ADD PRIMARY KEY (%s);", o.Table, strings.Join(o.New, ", "))
	default:
		return fmt.Sprintf("-- unknown op %T", op)
	}
}

// Sequence is an ordered operation list.
type Sequence []Op

// String renders the sequence one op per line.
func (seq Sequence) String() string {
	parts := make([]string, len(seq))
	for i, op := range seq {
		parts[i] = op.String()
	}
	return strings.Join(parts, "\n")
}

// SQL renders the whole sequence as a migration script.
func (seq Sequence) SQL() string {
	parts := make([]string, len(seq))
	for i, op := range seq {
		parts[i] = SQL(op)
	}
	return strings.Join(parts, "\n")
}

// Activity sums the sequence's volume in the study's units.
func (seq Sequence) Activity() int {
	total := 0
	for _, op := range seq {
		total += op.Activity()
	}
	return total
}

// Invert returns the reversed sequence of inverted operations, so that
// Apply(Apply(s, seq), seq.Invert()) restores s.
func (seq Sequence) Invert() Sequence {
	out := make(Sequence, len(seq))
	for i, op := range seq {
		out[len(seq)-1-i] = op.Invert()
	}
	return out
}

// Derive computes a Sequence transforming old into new. Both arguments may
// be nil (treated as empty schemata). The derived sequence's Activity
// equals the schemadiff TotalActivity of the same pair.
func Derive(old, new *schema.Schema) Sequence {
	if old == nil {
		old = schema.New()
	}
	if new == nil {
		new = schema.New()
	}
	var seq Sequence
	seen := map[string]bool{}
	for _, nt := range new.Tables() {
		seen[strings.ToLower(nt.Name)] = true
		ot, existed := old.Table(nt.Name)
		if !existed {
			seq = append(seq, CreateTable{
				Table:      nt.Name,
				Columns:    columnsOf(nt),
				PrimaryKey: append([]string(nil), nt.PrimaryKey()...),
			})
			continue
		}
		seq = append(seq, deriveTable(ot, nt)...)
	}
	for _, ot := range old.Tables() {
		if !seen[strings.ToLower(ot.Name)] {
			seq = append(seq, DropTable{
				Table:      ot.Name,
				Columns:    columnsOf(ot),
				PrimaryKey: append([]string(nil), ot.PrimaryKey()...),
			})
		}
	}
	return seq
}

func columnsOf(t *schema.Table) []Column {
	cols := make([]Column, 0, len(t.Attributes()))
	for _, a := range t.Attributes() {
		cols = append(cols, Column{Name: a.Name, Type: a.Type})
	}
	return cols
}

func deriveTable(ot, nt *schema.Table) Sequence {
	var seq Sequence
	for _, na := range nt.Attributes() {
		oa, existed := ot.Attribute(na.Name)
		switch {
		case !existed:
			seq = append(seq, AddColumn{Table: nt.Name, Column: Column{Name: na.Name, Type: na.Type}})
		case oa.Type != na.Type:
			seq = append(seq, ChangeType{Table: nt.Name, Column: na.Name, OldType: oa.Type, NewType: na.Type})
		}
	}
	for _, oa := range ot.Attributes() {
		if _, survives := nt.Attribute(oa.Name); !survives {
			seq = append(seq, DropColumn{Table: nt.Name, Column: Column{Name: oa.Name, Type: oa.Type}})
		}
	}
	if !equalKeys(ot.PrimaryKey(), nt.PrimaryKey()) {
		seq = append(seq, SetPrimaryKey{
			Table: nt.Name,
			Old:   append([]string(nil), ot.PrimaryKey()...),
			New:   append([]string(nil), nt.PrimaryKey()...),
		})
	}
	return seq
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply executes the sequence against a clone of s and returns the result.
// The input schema is never mutated.
func Apply(s *schema.Schema, seq Sequence) (*schema.Schema, error) {
	if s == nil {
		s = schema.New()
	}
	out := s.Clone()
	for i, op := range seq {
		if errs := out.Apply(op.Statement()); len(errs) > 0 {
			return nil, fmt.Errorf("smo: op %d (%s): %w", i, op, errs[0])
		}
	}
	return out, nil
}

// Equal reports whether two schemata are logically identical — the diff
// between them is empty.
func Equal(a, b *schema.Schema) bool {
	return schemadiff.Compare(a, b).IsEmpty() && samePrimaryKeys(a, b)
}

// samePrimaryKeys compares primary keys exactly; the Activity measure only
// counts per-attribute membership changes, but SMO equality is stricter
// (key column order matters for round-tripping).
func samePrimaryKeys(a, b *schema.Schema) bool {
	if a == nil || b == nil {
		return a == b
	}
	for _, ta := range a.Tables() {
		tb, ok := b.Table(ta.Name)
		if !ok {
			return false
		}
		ka, kb := ta.PrimaryKey(), tb.PrimaryKey()
		if len(ka) != len(kb) {
			return false
		}
		seen := map[string]bool{}
		for _, k := range ka {
			seen[k] = true
		}
		for _, k := range kb {
			if !seen[k] {
				return false
			}
		}
	}
	return true
}
