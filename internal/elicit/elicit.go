// Package elicit reproduces the data-set construction methodology of
// Section 3.1: the filters that reduce a raw crop of candidate
// repositories to the study corpus. The published pipeline:
//
//  1. collection — candidate repositories carrying .sql files;
//  2. elicitation — keep single-file schema-DDL projects, drop projects
//     whose path contains 'example', 'demo', 'test' or 'migrate', and
//     prefer MySQL over Postgres when several vendors are supported;
//  3. post-processing — drop projects with fewer than two versions of the
//     DDL file or with no CREATE TABLE statement in it.
//
// Applying these filters to a raw repository set yields the accepted
// corpus plus a per-rejection audit trail, mirroring how the published
// data set kept 195 of 327 candidate histories.
package elicit

import (
	"fmt"
	"strings"

	"coevo/internal/history"
	"coevo/internal/schema"
	"coevo/internal/vcs"
)

// RejectReason classifies why a candidate was filtered out.
type RejectReason int

// The rejection reasons, in the order the pipeline applies them.
const (
	// RejectNoDDL: the repository has no .sql file at all.
	RejectNoDDL RejectReason = iota
	// RejectMultiFile: more than one candidate schema file and no way to
	// pick a single one.
	RejectMultiFile
	// RejectPathTerm: the DDL path contains a disqualifying term
	// (example, demo, test, migrate).
	RejectPathTerm
	// RejectSingleVersion: the DDL file has fewer than two versions.
	RejectSingleVersion
	// RejectNoCreate: no version of the DDL file declares a table.
	RejectNoCreate
)

// String names the reason.
func (r RejectReason) String() string {
	switch r {
	case RejectNoDDL:
		return "no DDL file"
	case RejectMultiFile:
		return "multiple schema files"
	case RejectPathTerm:
		return "disqualified path term"
	case RejectSingleVersion:
		return "fewer than two versions"
	case RejectNoCreate:
		return "no CREATE TABLE"
	default:
		return "unknown"
	}
}

// Rejection records one filtered-out candidate.
type Rejection struct {
	Repo   *vcs.Repository
	Reason RejectReason
	Detail string
}

// Accepted records one candidate that passed all filters.
type Accepted struct {
	Repo    *vcs.Repository
	DDLPath string
	// Vendor is the detected dialect family of the DDL file ("mysql",
	// "postgres" or "unknown"), used by the vendor-preference rule.
	Vendor string
}

// Result is the outcome of running the elicitation pipeline.
type Result struct {
	Accepted []Accepted
	Rejected []Rejection
}

// disqualifyingTerms are the paper's path filters.
var disqualifyingTerms = []string{"example", "demo", "test", "migrate"}

// Run applies the elicitation pipeline to the candidate repositories.
func Run(candidates []*vcs.Repository) *Result {
	res := &Result{}
	for _, repo := range candidates {
		acc, rej := elicitOne(repo)
		if rej != nil {
			res.Rejected = append(res.Rejected, *rej)
			continue
		}
		res.Accepted = append(res.Accepted, *acc)
	}
	return res
}

func elicitOne(repo *vcs.Repository) (*Accepted, *Rejection) {
	paths := sqlPaths(repo)
	if len(paths) == 0 {
		return nil, &Rejection{Repo: repo, Reason: RejectNoDDL}
	}

	// Vendor preference: when several schema files exist, prefer MySQL
	// over Postgres (the paper's rule), and require a single winner.
	candidates := schemaCandidates(repo, paths)
	if len(candidates) == 0 {
		return nil, &Rejection{Repo: repo, Reason: RejectNoCreate}
	}
	path := pickByVendor(candidates)
	if path == "" {
		return nil, &Rejection{Repo: repo, Reason: RejectMultiFile,
			Detail: fmt.Sprintf("%d candidates", len(candidates))}
	}

	if term := disqualifiedTerm(path); term != "" {
		return nil, &Rejection{Repo: repo, Reason: RejectPathTerm, Detail: term}
	}

	versions := repo.FileVersions(path)
	live := 0
	for _, v := range versions {
		if !v.Deleted {
			live++
		}
	}
	if live < 2 {
		return nil, &Rejection{Repo: repo, Reason: RejectSingleVersion,
			Detail: fmt.Sprintf("%d version(s)", live)}
	}

	vendor := "unknown"
	for _, c := range candidates {
		if c.path == path {
			vendor = c.vendor
		}
	}
	return &Accepted{Repo: repo, DDLPath: path, Vendor: vendor}, nil
}

// sqlPaths lists every .sql path ever committed, following renames.
func sqlPaths(repo *vcs.Repository) []string {
	seen := map[string]bool{}
	for _, e := range repo.Log(vcs.LogOptions{Reverse: true}) {
		for _, ch := range e.Changes {
			if strings.HasSuffix(strings.ToLower(ch.Path), ".sql") {
				seen[ch.Path] = true
				if ch.OldPath != "" {
					delete(seen, ch.OldPath)
				}
			}
		}
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	return out
}

type candidate struct {
	path   string
	vendor string
}

// schemaCandidates keeps the .sql files whose latest content declares at
// least one table, detecting the vendor on the way.
func schemaCandidates(repo *vcs.Repository, paths []string) []candidate {
	var out []candidate
	for _, p := range paths {
		versions := repo.FileVersions(p)
		var content []byte
		for i := len(versions) - 1; i >= 0; i-- {
			if !versions[i].Deleted {
				content = versions[i].Content
				break
			}
		}
		if content == nil {
			continue
		}
		s, _ := schema.ParseAndBuild(string(content))
		if s.TableCount() == 0 {
			continue
		}
		out = append(out, candidate{path: p, vendor: DetectVendor(content)})
	}
	return out
}

// pickByVendor returns the single winning path: a lone candidate, or the
// lone MySQL file, or the lone Postgres file; "" when still ambiguous.
func pickByVendor(cands []candidate) string {
	if len(cands) == 1 {
		return cands[0].path
	}
	for _, vendor := range []string{"mysql", "postgres"} {
		var matches []string
		for _, c := range cands {
			if c.vendor == vendor {
				matches = append(matches, c.path)
			}
		}
		if len(matches) == 1 {
			return matches[0]
		}
		if len(matches) > 1 {
			return ""
		}
	}
	return ""
}

// disqualifiedTerm returns the first disqualifying term found in the path
// (case-insensitively), or "".
func disqualifiedTerm(path string) string {
	lower := strings.ToLower(path)
	for _, term := range disqualifyingTerms {
		if strings.Contains(lower, term) {
			return term
		}
	}
	return ""
}

// DetectVendor guesses the SQL dialect family of a DDL file from its
// vendor-specific constructs.
func DetectVendor(content []byte) string {
	text := strings.ToLower(string(content))
	mysqlScore, pgScore := 0, 0
	for _, marker := range []string{"engine=", "auto_increment", "`", "unsigned", "tinyint", "mediumtext", "charset="} {
		if strings.Contains(text, marker) {
			mysqlScore++
		}
	}
	for _, marker := range []string{"serial", "bigserial", " text[]", "to_tsvector", "::", "with time zone", "nextval(", "jsonb"} {
		if strings.Contains(text, marker) {
			pgScore++
		}
	}
	switch {
	case mysqlScore > pgScore:
		return "mysql"
	case pgScore > mysqlScore:
		return "postgres"
	default:
		return "unknown"
	}
}

// Histories extracts the schema and project histories of every accepted
// project, the handoff into the study pipeline.
func (r *Result) Histories(opts history.Options) (map[string]*history.SchemaHistory, error) {
	out := make(map[string]*history.SchemaHistory, len(r.Accepted))
	for _, a := range r.Accepted {
		sh, err := history.ExtractSchemaHistory(a.Repo, a.DDLPath, opts)
		if err != nil {
			return nil, fmt.Errorf("elicit: %s: %w", a.Repo.Name(), err)
		}
		out[a.Repo.Name()] = sh
	}
	return out, nil
}
