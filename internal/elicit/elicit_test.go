package elicit

import (
	"fmt"
	"testing"
	"time"

	"coevo/internal/corpus"
	"coevo/internal/history"
	"coevo/internal/vcs"
)

func sig(day int) vcs.Signature {
	return vcs.Signature{Name: "d", Email: "d@e.f",
		When: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, day)}
}

func mustCommit(t *testing.T, r *vcs.Repository, msg string, day int) {
	t.Helper()
	if _, err := r.Commit(msg, sig(day)); err != nil {
		t.Fatal(err)
	}
}

// repoWith builds a repo with the given DDL path and n schema versions.
func repoWith(t *testing.T, name, path string, versions int) *vcs.Repository {
	t.Helper()
	r := vcs.NewRepository(name)
	for v := 0; v < versions; v++ {
		var ddl string
		ddl = "CREATE TABLE t (a INT"
		for i := 0; i < v; i++ {
			ddl += fmt.Sprintf(", c%d INT", i)
		}
		ddl += ");"
		r.StageString(path, ddl)
		mustCommit(t, r, fmt.Sprintf("v%d", v), v*10)
	}
	return r
}

func TestRunAcceptsCleanProject(t *testing.T) {
	good := repoWith(t, "org/good", "db/schema.sql", 3)
	res := Run([]*vcs.Repository{good})
	if len(res.Accepted) != 1 || len(res.Rejected) != 0 {
		t.Fatalf("accepted %d rejected %d", len(res.Accepted), len(res.Rejected))
	}
	if res.Accepted[0].DDLPath != "db/schema.sql" {
		t.Errorf("path = %q", res.Accepted[0].DDLPath)
	}
}

func TestRunRejections(t *testing.T) {
	noSQL := vcs.NewRepository("org/nosql")
	noSQL.StageString("main.go", "package main")
	mustCommit(t, noSQL, "init", 0)

	demoPath := repoWith(t, "org/demo-path", "examples/schema.sql", 3)
	testPath := repoWith(t, "org/test-path", "sql/test_fixtures.sql", 3)
	migratePath := repoWith(t, "org/migrations", "db/migrate/001.sql", 3)
	single := repoWith(t, "org/single", "schema.sql", 1)

	noCreate := vcs.NewRepository("org/nocreate")
	noCreate.StageString("notes.sql", "-- thoughts about SQL\nSET NAMES utf8;")
	mustCommit(t, noCreate, "init", 0)
	noCreate.StageString("notes.sql", "-- more thoughts")
	mustCommit(t, noCreate, "more", 5)

	res := Run([]*vcs.Repository{noSQL, demoPath, testPath, migratePath, single, noCreate})
	if len(res.Accepted) != 0 {
		t.Fatalf("accepted %d, want 0", len(res.Accepted))
	}
	reasons := map[string]RejectReason{}
	for _, rej := range res.Rejected {
		reasons[rej.Repo.Name()] = rej.Reason
	}
	want := map[string]RejectReason{
		"org/nosql":      RejectNoDDL,
		"org/demo-path":  RejectPathTerm,
		"org/test-path":  RejectPathTerm,
		"org/migrations": RejectPathTerm,
		"org/single":     RejectSingleVersion,
		"org/nocreate":   RejectNoCreate,
	}
	for name, reason := range want {
		if reasons[name] != reason {
			t.Errorf("%s: reason = %v, want %v", name, reasons[name], reason)
		}
	}
}

func TestVendorPreferenceMySQLOverPostgres(t *testing.T) {
	r := vcs.NewRepository("org/dual-vendor")
	r.StageString("db/mysql.sql", "CREATE TABLE `t` (`id` INT AUTO_INCREMENT, PRIMARY KEY(`id`)) ENGINE=InnoDB;")
	r.StageString("db/pg.sql", "CREATE TABLE t (id SERIAL PRIMARY KEY, payload JSONB);")
	mustCommit(t, r, "init", 0)
	r.StageString("db/mysql.sql", "CREATE TABLE `t` (`id` INT AUTO_INCREMENT, `x` INT, PRIMARY KEY(`id`)) ENGINE=InnoDB;")
	r.StageString("db/pg.sql", "CREATE TABLE t (id SERIAL PRIMARY KEY, payload JSONB, y INT);")
	mustCommit(t, r, "grow", 10)

	res := Run([]*vcs.Repository{r})
	if len(res.Accepted) != 1 {
		t.Fatalf("accepted = %d (%+v)", len(res.Accepted), res.Rejected)
	}
	if res.Accepted[0].DDLPath != "db/mysql.sql" || res.Accepted[0].Vendor != "mysql" {
		t.Errorf("accepted = %+v, want the MySQL file", res.Accepted[0])
	}
}

func TestAmbiguousMultiFileRejected(t *testing.T) {
	r := vcs.NewRepository("org/two-mysql")
	r.StageString("a.sql", "CREATE TABLE `a` (`id` INT) ENGINE=InnoDB;")
	r.StageString("b.sql", "CREATE TABLE `b` (`id` INT) ENGINE=InnoDB;")
	mustCommit(t, r, "init", 0)
	res := Run([]*vcs.Repository{r})
	if len(res.Rejected) != 1 || res.Rejected[0].Reason != RejectMultiFile {
		t.Errorf("result = %+v", res)
	}
}

func TestDetectVendor(t *testing.T) {
	cases := []struct {
		content string
		want    string
	}{
		{"CREATE TABLE `t` (`a` INT UNSIGNED) ENGINE=InnoDB DEFAULT CHARSET=utf8;", "mysql"},
		{"CREATE TABLE t (id BIGSERIAL, ts TIMESTAMP WITH TIME ZONE, doc JSONB);", "postgres"},
		{"CREATE TABLE t (a INT);", "unknown"},
	}
	for _, tc := range cases {
		if got := DetectVendor([]byte(tc.content)); got != tc.want {
			t.Errorf("DetectVendor(%q) = %q, want %q", tc.content, got, tc.want)
		}
	}
}

func TestRejectReasonStrings(t *testing.T) {
	reasons := []RejectReason{RejectNoDDL, RejectMultiFile, RejectPathTerm, RejectSingleVersion, RejectNoCreate}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := r.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("reason %d string %q", r, s)
		}
		seen[s] = true
	}
	if RejectReason(42).String() != "unknown" {
		t.Error("out-of-range reason")
	}
}

func TestElicitedCorpusFeedsHistories(t *testing.T) {
	// The generated corpus passes elicitation end to end and the result
	// hands off into history extraction.
	cfg := corpus.DefaultConfig(19)
	profiles := corpus.DefaultProfiles()
	for i := range profiles {
		profiles[i].Count = 2
		// The ≥2-versions rule needs room for a post-birth cosmetic edit.
		if profiles[i].DurationMonths[0] < 3 {
			profiles[i].DurationMonths[0] = 3
		}
		if profiles[i].DurationMonths[1] > 24 {
			profiles[i].DurationMonths[1] = 24
		}
	}
	cfg.Profiles = profiles
	projects, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repos := make([]*vcs.Repository, 0, len(projects))
	for _, p := range projects {
		repos = append(repos, p.Repo)
	}
	res := Run(repos)
	if len(res.Accepted) != len(repos) {
		t.Fatalf("accepted %d of %d: %+v", len(res.Accepted), len(repos), res.Rejected)
	}
	histories, err := res.Histories(history.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(histories) != len(repos) {
		t.Errorf("histories = %d", len(histories))
	}
}
