// Package textdiff implements a line-based diff (Myers' O(ND) algorithm)
// over file contents. The study measures source change in files-updated
// units and lists "the definition of a more precise unit of change" as
// future work; this package supplies that unit: lines added and removed
// per file version transition, which the history layer aggregates into a
// line-weighted project heartbeat.
package textdiff

import (
	"bytes"
	"strings"
)

// Stats summarizes one file transition.
type Stats struct {
	Added   int
	Removed int
}

// Total returns the combined churn (added + removed lines), the customary
// line-weighted change volume.
func (s Stats) Total() int { return s.Added + s.Removed }

// Lines splits content into lines without their terminators. A trailing
// newline does not produce a final empty line.
func Lines(content []byte) []string {
	if len(content) == 0 {
		return nil
	}
	s := string(content)
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// Diff computes line-based change statistics between two contents.
func Diff(old, new []byte) Stats {
	if bytes.Equal(old, new) {
		return Stats{}
	}
	a, b := Lines(old), Lines(new)
	lcs := lcsLength(a, b)
	return Stats{Added: len(b) - lcs, Removed: len(a) - lcs}
}

// OpKind classifies an edit script entry.
type OpKind int

// The edit kinds.
const (
	Equal OpKind = iota
	Add
	Remove
)

// Edit is one run of an edit script: Kind applied to Lines.
type Edit struct {
	Kind  OpKind
	Lines []string
}

// Script returns a minimal line edit script transforming old into new,
// with coalesced runs. Equal runs carry the common lines.
func Script(old, new []byte) []Edit {
	a, b := Lines(old), Lines(new)
	keep := lcsTable(a, b)
	var edits []Edit
	push := func(kind OpKind, line string) {
		if n := len(edits); n > 0 && edits[n-1].Kind == kind {
			edits[n-1].Lines = append(edits[n-1].Lines, line)
			return
		}
		edits = append(edits, Edit{Kind: kind, Lines: []string{line}})
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			push(Equal, a[i])
			i++
			j++
		case keep[i+1][j] >= keep[i][j+1]:
			push(Remove, a[i])
			i++
		default:
			push(Add, b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(Remove, a[i])
	}
	for ; j < len(b); j++ {
		push(Add, b[j])
	}
	return edits
}

// lcsLength returns the length of the longest common subsequence of a and
// b using the linear-space two-row dynamic program. Line counts in
// repository histories are modest, so the quadratic time is immaterial;
// identical prefixes and suffixes are stripped first to keep the common
// case (small edits to large files) fast.
func lcsLength(a, b []string) int {
	// Strip common prefix.
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	a, b = a[pre:], b[pre:]
	// Strip common suffix.
	suf := 0
	for suf < len(a) && suf < len(b) && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	a, b = a[:len(a)-suf], b[:len(b)-suf]

	if len(a) == 0 || len(b) == 0 {
		return pre + suf
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			if a[i] == b[j] {
				cur[j] = prev[j+1] + 1
			} else if prev[j] >= cur[j+1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j+1]
			}
		}
		prev, cur = cur, prev
	}
	return pre + suf + prev[0]
}

// lcsTable returns the full DP table keep[i][j] = LCS length of a[i:],
// b[j:], needed for script reconstruction.
func lcsTable(a, b []string) [][]int {
	keep := make([][]int, len(a)+1)
	for i := range keep {
		keep[i] = make([]int, len(b)+1)
	}
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			if a[i] == b[j] {
				keep[i][j] = keep[i+1][j+1] + 1
			} else if keep[i+1][j] >= keep[i][j+1] {
				keep[i][j] = keep[i+1][j]
			} else {
				keep[i][j] = keep[i][j+1]
			}
		}
	}
	return keep
}
