package textdiff

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLines(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a\n", []string{"a"}},
		{"a\nb", []string{"a", "b"}},
		{"a\nb\n", []string{"a", "b"}},
		{"\n", []string{""}},
		{"a\n\nb\n", []string{"a", "", "b"}},
	}
	for _, tc := range cases {
		if got := Lines([]byte(tc.in)); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Lines(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestDiffBasic(t *testing.T) {
	cases := []struct {
		name     string
		old, new string
		want     Stats
	}{
		{"identical", "a\nb\nc\n", "a\nb\nc\n", Stats{0, 0}},
		{"pure addition", "a\n", "a\nb\nc\n", Stats{2, 0}},
		{"pure removal", "a\nb\nc\n", "c\n", Stats{0, 2}},
		{"replacement", "a\nOLD\nc\n", "a\nNEW\nc\n", Stats{1, 1}},
		{"from empty", "", "x\ny\n", Stats{2, 0}},
		{"to empty", "x\ny\n", "", Stats{0, 2}},
		{"move counts twice", "a\nb\nc\n", "b\nc\na\n", Stats{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Diff([]byte(tc.old), []byte(tc.new)); got != tc.want {
				t.Errorf("Diff = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestDiffMinimality(t *testing.T) {
	// A one-line edit inside a large file must cost exactly 1+1 no matter
	// the file size.
	var lines []string
	for i := 0; i < 500; i++ {
		lines = append(lines, strings.Repeat("x", i%40)+"line")
	}
	old := strings.Join(lines, "\n")
	lines[250] = "CHANGED"
	new := strings.Join(lines, "\n")
	if got := Diff([]byte(old), []byte(new)); got != (Stats{1, 1}) {
		t.Errorf("single-line edit cost = %+v", got)
	}
}

func TestScript(t *testing.T) {
	edits := Script([]byte("a\nb\nc\n"), []byte("a\nX\nc\nd\n"))
	want := []Edit{
		{Equal, []string{"a"}},
		{Remove, []string{"b"}},
		{Add, []string{"X"}},
		{Equal, []string{"c"}},
		{Add, []string{"d"}},
	}
	if !reflect.DeepEqual(edits, want) {
		t.Errorf("Script = %+v, want %+v", edits, want)
	}
}

func TestScriptReplay(t *testing.T) {
	old := []byte("one\ntwo\nthree\nfour\n")
	new := []byte("zero\none\nthree\nfour\nfive\n")
	edits := Script(old, new)
	var rebuilt []string
	removed, added := 0, 0
	for _, e := range edits {
		switch e.Kind {
		case Equal, Add:
			rebuilt = append(rebuilt, e.Lines...)
			if e.Kind == Add {
				added += len(e.Lines)
			}
		case Remove:
			removed += len(e.Lines)
		}
	}
	if got := strings.Join(rebuilt, "\n"); got != strings.TrimSuffix(string(new), "\n") {
		t.Errorf("replay = %q", got)
	}
	stats := Diff(old, new)
	if stats.Added != added || stats.Removed != removed {
		t.Errorf("script counts %d/%d != Diff %+v", added, removed, stats)
	}
}

// Property: diff stats are consistent — len(new) - len(old) == added -
// removed, and both are non-negative and bounded by the line counts.
func TestQuickDiffInvariants(t *testing.T) {
	mk := func(seed []byte) []byte {
		var b strings.Builder
		for _, c := range seed {
			b.WriteString(string('a' + rune(c%6)))
			b.WriteByte('\n')
		}
		return []byte(b.String())
	}
	f := func(oldSeed, newSeed []byte) bool {
		old, new := mk(oldSeed), mk(newSeed)
		s := Diff(old, new)
		la, lb := len(Lines(old)), len(Lines(new))
		if s.Added < 0 || s.Removed < 0 || s.Added > lb || s.Removed > la {
			return false
		}
		return lb-la == s.Added-s.Removed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: replaying any script reproduces the target content, and the
// edit costs match Diff exactly (the script is minimal).
func TestQuickScriptReplay(t *testing.T) {
	mk := func(seed []byte) []byte {
		var b strings.Builder
		for _, c := range seed {
			b.WriteString(string('a' + rune(c%4)))
			b.WriteByte('\n')
		}
		return []byte(b.String())
	}
	f := func(oldSeed, newSeed []byte) bool {
		old, new := mk(oldSeed), mk(newSeed)
		edits := Script(old, new)
		var rebuilt []string
		added, removed := 0, 0
		for _, e := range edits {
			switch e.Kind {
			case Equal, Add:
				rebuilt = append(rebuilt, e.Lines...)
				if e.Kind == Add {
					added += len(e.Lines)
				}
			case Remove:
				removed += len(e.Lines)
			}
		}
		want := Lines(new)
		if len(rebuilt) != len(want) {
			return false
		}
		for i := range want {
			if rebuilt[i] != want[i] {
				return false
			}
		}
		s := Diff(old, new)
		return s.Added == added && s.Removed == removed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDiffSmallEditLargeFile(b *testing.B) {
	var lines []string
	for i := 0; i < 2000; i++ {
		lines = append(lines, strings.Repeat("y", i%60))
	}
	old := []byte(strings.Join(lines, "\n"))
	lines[1000] = "edited"
	new := []byte(strings.Join(lines, "\n"))
	b.SetBytes(int64(len(old)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diff(old, new)
	}
}

func BenchmarkDiffRewrite(b *testing.B) {
	mk := func(offset int) []byte {
		var sb strings.Builder
		for i := 0; i < 400; i++ {
			sb.WriteString(strings.Repeat("z", (i+offset)%50))
			sb.WriteByte('\n')
		}
		return []byte(sb.String())
	}
	old, new := mk(0), mk(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diff(old, new)
	}
}
