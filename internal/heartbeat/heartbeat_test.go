package heartbeat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}

func TestMonthRoundTrip(t *testing.T) {
	cases := []time.Time{
		date(2015, time.January, 1),
		date(2015, time.December, 31),
		date(1999, time.June, 15),
		time.Date(2020, time.March, 1, 0, 0, 0, 0, time.UTC),
	}
	for _, ts := range cases {
		m := MonthOf(ts)
		if m.Time().Year() != ts.Year() || m.Time().Month() != ts.Month() {
			t.Errorf("MonthOf(%v).Time() = %v", ts, m.Time())
		}
		parsed, err := ParseMonth(m.String())
		if err != nil || parsed != m {
			t.Errorf("ParseMonth(%q) = %v, %v", m.String(), parsed, err)
		}
	}
	if _, err := ParseMonth("not-a-month"); err == nil {
		t.Error("ParseMonth should reject garbage")
	}
}

func TestMonthTimezoneNormalization(t *testing.T) {
	// 2015-01-31 23:00 -05:00 is 2015-02-01 04:00 UTC: February.
	loc := time.FixedZone("EST", -5*3600)
	ts := time.Date(2015, time.January, 31, 23, 0, 0, 0, loc)
	if MonthOf(ts).String() != "2015-02" {
		t.Errorf("MonthOf = %s, want 2015-02", MonthOf(ts))
	}
}

func TestMonthArithmetic(t *testing.T) {
	m, _ := ParseMonth("2015-11")
	if m.Add(2).String() != "2016-01" {
		t.Errorf("Add crossed year badly: %s", m.Add(2))
	}
	if m.Add(-11).String() != "2014-12" {
		t.Errorf("negative Add: %s", m.Add(-11))
	}
}

func TestFromEvents(t *testing.T) {
	events := []Event{
		{date(2015, time.March, 10), 5},
		{date(2015, time.March, 20), 3},
		{date(2015, time.June, 1), 2},
	}
	h, err := FromEvents(events)
	if err != nil {
		t.Fatalf("FromEvents: %v", err)
	}
	if h.Len() != 4 { // Mar, Apr, May, Jun
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	if h.Values[0] != 8 || h.Values[1] != 0 || h.Values[2] != 0 || h.Values[3] != 2 {
		t.Errorf("Values = %v", h.Values)
	}
	if h.Total() != 10 {
		t.Errorf("Total = %v", h.Total())
	}
	if h.ActiveMonths() != 2 {
		t.Errorf("ActiveMonths = %d", h.ActiveMonths())
	}
	idx, v := h.MaxMonth()
	if idx != 0 || v != 8 {
		t.Errorf("MaxMonth = %d, %v", idx, v)
	}
	if _, err := FromEvents(nil); !errors.Is(err, ErrNoEvents) {
		t.Errorf("empty events err = %v", err)
	}
}

func TestFromEventsSpanningFoldsOutliers(t *testing.T) {
	start, _ := ParseMonth("2015-03")
	end, _ := ParseMonth("2015-05")
	events := []Event{
		{date(2015, time.January, 1), 1}, // before span -> folded to March
		{date(2015, time.April, 1), 2},
		{date(2015, time.December, 1), 4}, // after span -> folded to May
	}
	h, err := FromEventsSpanning(events, start, end)
	if err != nil {
		t.Fatalf("FromEventsSpanning: %v", err)
	}
	if h.Values[0] != 1 || h.Values[1] != 2 || h.Values[2] != 4 {
		t.Errorf("Values = %v", h.Values)
	}
	if h.Total() != 7 {
		t.Errorf("no activity may be lost: total = %v", h.Total())
	}
	if _, err := FromEventsSpanning(events, end, start); !errors.Is(err, ErrBadSpan) {
		t.Errorf("inverted span err = %v", err)
	}
}

func TestAtOutsideSpanIsZero(t *testing.T) {
	h := New(100, 3)
	h.Values[1] = 5
	if h.At(99) != 0 || h.At(103) != 0 || h.At(101) != 5 {
		t.Error("At boundary behaviour wrong")
	}
}

func TestRespan(t *testing.T) {
	h := New(100, 3)
	copy(h.Values, []float64{1, 2, 3})
	wider, err := h.Respan(98, 104)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 2, 3, 0, 0}
	for i, v := range want {
		if wider.Values[i] != v {
			t.Fatalf("wider = %v, want %v", wider.Values, want)
		}
	}
	narrower, err := h.Respan(101, 101)
	if err != nil || narrower.Len() != 1 || narrower.Values[0] != 2 {
		t.Errorf("narrower = %+v, %v", narrower, err)
	}
}

func TestCumulativeFraction(t *testing.T) {
	h := New(0, 4)
	copy(h.Values, []float64{40, 25, 20, 15})
	cum, err := h.CumulativeFraction()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.40, 0.65, 0.85, 1.00}
	for i := range want {
		if math.Abs(cum[i]-want[i]) > 1e-9 {
			t.Errorf("cum = %v, want %v (the paper's Eq. 1 example)", cum, want)
			break
		}
	}
}

func TestCumulativeFractionZeroTotal(t *testing.T) {
	h := New(0, 5)
	if _, err := h.CumulativeFraction(); !errors.Is(err, ErrNoTotal) {
		t.Errorf("zero-total err = %v, want ErrNoTotal", err)
	}
}

func TestTimeProgress(t *testing.T) {
	if got := TimeProgress(0); got != nil {
		t.Errorf("TimeProgress(0) = %v", got)
	}
	if got := TimeProgress(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("TimeProgress(1) = %v", got)
	}
	got := TimeProgress(5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("TimeProgress(5) = %v", got)
			break
		}
	}
}

func TestAlign(t *testing.T) {
	// Project active Jan..Jun 2015; schema file appears in March.
	project, _ := FromEvents([]Event{
		{date(2015, time.January, 5), 10},
		{date(2015, time.June, 5), 10},
	})
	schemaHB, _ := FromEvents([]Event{
		{date(2015, time.March, 5), 4},
		{date(2015, time.April, 5), 4},
	})
	a, err := Align(project, schemaHB)
	if err != nil {
		t.Fatalf("Align: %v", err)
	}
	if a.Len() != 6 {
		t.Fatalf("Len = %d, want 6", a.Len())
	}
	// Schema cumulative stays 0 before its birth month.
	if a.Schema[0] != 0 || a.Schema[1] != 0 {
		t.Errorf("schema progression before birth = %v", a.Schema[:2])
	}
	if a.Schema[2] != 0.5 || a.Schema[3] != 1 {
		t.Errorf("schema progression = %v", a.Schema)
	}
	if a.Project[0] != 0.5 || a.Project[5] != 1 {
		t.Errorf("project progression = %v", a.Project)
	}
	if a.Time[0] != 0 || a.Time[5] != 1 {
		t.Errorf("time progression = %v", a.Time)
	}
	if a.Start.String() != "2015-01" {
		t.Errorf("Start = %s", a.Start)
	}
}

func TestAlignSchemaOutlivesProjectAxis(t *testing.T) {
	project, _ := FromEvents([]Event{{date(2015, time.January, 5), 1}})
	schemaHB, _ := FromEvents([]Event{
		{date(2015, time.January, 10), 1},
		{date(2015, time.April, 10), 1},
	})
	a, err := Align(project, schemaHB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Errorf("axis should extend to schema end: len = %d", a.Len())
	}
}

func TestAlignErrors(t *testing.T) {
	if _, err := Align(nil, nil); err == nil {
		t.Error("nil heartbeats should fail")
	}
	frozen := New(0, 3) // all-zero schema
	project := New(0, 3)
	project.Values[0] = 1
	if _, err := Align(project, frozen); !errors.Is(err, ErrNoTotal) {
		t.Errorf("frozen schema err = %v", err)
	}
}

// Property: cumulative fractions are monotone non-decreasing, within
// [0, 1], and terminal at exactly 1 for any non-zero series.
func TestQuickCumulativeInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := New(0, len(raw))
		nonzero := false
		for i, v := range raw {
			h.Values[i] = float64(v)
			if v != 0 {
				nonzero = true
			}
		}
		cum, err := h.CumulativeFraction()
		if !nonzero {
			return errors.Is(err, ErrNoTotal)
		}
		if err != nil {
			return false
		}
		prev := 0.0
		for _, c := range cum {
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		return cum[len(cum)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Respan never loses interior activity — the respanned total over
// a superset span equals the original total.
func TestQuickRespanPreservesTotal(t *testing.T) {
	f := func(raw []uint8, padBefore, padAfter uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := New(1000, len(raw))
		for i, v := range raw {
			h.Values[i] = float64(v)
		}
		wider, err := h.Respan(h.Start.Add(-int(padBefore%10)), h.End().Add(int(padAfter%10)))
		if err != nil {
			return false
		}
		return wider.Total() == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
