// Package heartbeat provides the monthly time-series machinery of the
// study. Time is quantized into calendar months (the study's chronon); a
// Heartbeat is the per-month activity series of a schema or a project, and
// its cumulative fractional form (Eq. 1 of the paper) is the monotone
// progression the co-evolution measures compare.
package heartbeat

import (
	"errors"
	"fmt"
	"time"
)

// Month is a calendar month, encoded as year*12 + (month-1) so that
// arithmetic and ordering are plain integer operations. All conversions
// use UTC.
type Month int

// MonthOf returns the Month containing t.
func MonthOf(t time.Time) Month {
	t = t.UTC()
	return Month(t.Year()*12 + int(t.Month()) - 1)
}

// ParseMonth parses "YYYY-MM".
func ParseMonth(s string) (Month, error) {
	t, err := time.Parse("2006-01", s)
	if err != nil {
		return 0, fmt.Errorf("heartbeat: bad month %q: %w", s, err)
	}
	return MonthOf(t), nil
}

// Time returns midnight UTC on the first day of the month.
func (m Month) Time() time.Time {
	return time.Date(int(m)/12, time.Month(int(m)%12+1), 1, 0, 0, 0, 0, time.UTC)
}

// String renders the month as "YYYY-MM".
func (m Month) String() string { return m.Time().Format("2006-01") }

// Add returns the month n months later.
func (m Month) Add(n int) Month { return m + Month(n) }

// Event is one dated quantum of activity (a commit's file-update count, or
// a schema version's Total Activity).
type Event struct {
	When   time.Time
	Amount float64
}

// Heartbeat is a dense monthly activity series starting at Start. Months
// without activity hold zero, exactly as the study's heartbeats do.
type Heartbeat struct {
	Start  Month
	Values []float64
}

// Errors returned by heartbeat constructors.
var (
	ErrNoEvents  = errors.New("heartbeat: no events")
	ErrBadSpan   = errors.New("heartbeat: end month precedes start month")
	ErrNoTotal   = errors.New("heartbeat: zero total activity")
	ErrMisjoined = errors.New("heartbeat: series have different lengths")
)

// New creates a zero-filled heartbeat covering n months from start.
func New(start Month, n int) *Heartbeat {
	return &Heartbeat{Start: start, Values: make([]float64, n)}
}

// FromEvents buckets events into months, spanning from the earliest to the
// latest event month.
func FromEvents(events []Event) (*Heartbeat, error) {
	if len(events) == 0 {
		return nil, ErrNoEvents
	}
	lo, hi := MonthOf(events[0].When), MonthOf(events[0].When)
	for _, e := range events[1:] {
		m := MonthOf(e.When)
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	return FromEventsSpanning(events, lo, hi)
}

// FromEventsSpanning buckets events into months over an explicit [start,
// end] span. Events outside the span are folded into the nearest edge
// month, so no activity is ever silently lost.
func FromEventsSpanning(events []Event, start, end Month) (*Heartbeat, error) {
	if end < start {
		return nil, fmt.Errorf("%w: %s..%s", ErrBadSpan, start, end)
	}
	h := New(start, int(end-start)+1)
	for _, e := range events {
		i := int(MonthOf(e.When) - start)
		if i < 0 {
			i = 0
		}
		if i >= len(h.Values) {
			i = len(h.Values) - 1
		}
		h.Values[i] += e.Amount
	}
	return h, nil
}

// Len returns the number of months covered.
func (h *Heartbeat) Len() int { return len(h.Values) }

// End returns the last covered month.
func (h *Heartbeat) End() Month { return h.Start.Add(len(h.Values) - 1) }

// At returns the activity in month m (zero outside the span).
func (h *Heartbeat) At(m Month) float64 {
	i := int(m - h.Start)
	if i < 0 || i >= len(h.Values) {
		return 0
	}
	return h.Values[i]
}

// Total returns the lifetime activity.
func (h *Heartbeat) Total() float64 {
	t := 0.0
	for _, v := range h.Values {
		t += v
	}
	return t
}

// ActiveMonths counts the months with non-zero activity.
func (h *Heartbeat) ActiveMonths() int {
	n := 0
	for _, v := range h.Values {
		if v != 0 {
			n++
		}
	}
	return n
}

// MaxMonth returns the largest monthly value and its index.
func (h *Heartbeat) MaxMonth() (idx int, value float64) {
	for i, v := range h.Values {
		if v > value {
			value, idx = v, i
		}
	}
	return idx, value
}

// Respan returns a copy covering [start, end], zero-padding months outside
// the original span and dropping months outside the new one.
func (h *Heartbeat) Respan(start, end Month) (*Heartbeat, error) {
	if end < start {
		return nil, fmt.Errorf("%w: %s..%s", ErrBadSpan, start, end)
	}
	out := New(start, int(end-start)+1)
	for i := range out.Values {
		out.Values[i] = h.At(start.Add(i))
	}
	return out, nil
}

// CumulativeFraction returns the cumulative fractional activity series
// (Eq. 1): cumPct[i] = sum(values[0..i]) / Total. The series is monotone
// non-decreasing and ends at 1. It fails with ErrNoTotal for an all-zero
// heartbeat (a completely frozen history has no defined progression —
// these are the "(blank)" rows of the paper's Figure 6).
func (h *Heartbeat) CumulativeFraction() ([]float64, error) {
	total := h.Total()
	if total == 0 {
		return nil, ErrNoTotal
	}
	out := make([]float64, len(h.Values))
	run := 0.0
	for i, v := range h.Values {
		run += v
		out[i] = run / total
	}
	// Guard against floating-point drift at the terminal point.
	out[len(out)-1] = 1
	return out, nil
}

// TimeProgress returns the cumulative fractional time series for n monthly
// timepoints: progress[i] = i/(n-1). A single-point series is complete at
// its only point.
func TimeProgress(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		out[i] = float64(i) / float64(n-1)
	}
	return out
}

// Aligned carries the three series of a joint progress diagram over a
// common monthly axis: the project's lifetime.
type Aligned struct {
	Start Month
	// Project, Schema and Time are cumulative fractional series of equal
	// length (one point per month of the project's life).
	Project []float64
	Schema  []float64
	Time    []float64
}

// Len returns the number of timepoints.
func (a *Aligned) Len() int { return len(a.Project) }

// Align joins a project heartbeat and a schema heartbeat over the project's
// lifetime axis and returns their cumulative fractional series plus time
// progress. The schema heartbeat is respanned onto the project axis: months
// before the DDL file existed contribute zero, so the schema's cumulative
// fraction stays at 0 until its birth.
//
// The project axis spans from the project's first month to the later of the
// two series' ends (a schema commit after the last project commit would
// otherwise be truncated; in practice the project log subsumes schema
// commits, but the corpus generator and real ingestion must not rely on
// it).
func Align(project, schema *Heartbeat) (*Aligned, error) {
	if project == nil || schema == nil {
		return nil, ErrNoEvents
	}
	start := project.Start
	end := project.End()
	if schema.End() > end {
		end = schema.End()
	}
	p, err := project.Respan(start, end)
	if err != nil {
		return nil, err
	}
	s, err := schema.Respan(start, end)
	if err != nil {
		return nil, err
	}
	pc, err := p.CumulativeFraction()
	if err != nil {
		return nil, fmt.Errorf("project heartbeat: %w", err)
	}
	sc, err := s.CumulativeFraction()
	if err != nil {
		return nil, fmt.Errorf("schema heartbeat: %w", err)
	}
	return &Aligned{
		Start:   start,
		Project: pc,
		Schema:  sc,
		Time:    TimeProgress(p.Len()),
	}, nil
}
