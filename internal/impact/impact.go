// Package impact analyzes how schema change relates to the surrounding
// source code — the two analyses the paper performs by hand in its case
// study and calls for automating in its implications:
//
//   - reference scanning: which source files mention which schema elements
//     (tables, attributes), so the blast radius of a schema change can be
//     estimated ("the parts of the code affected by a schema change");
//   - windowed co-change: around each active schema commit, how much
//     source churn lands in the same commit and in a window of
//     neighbouring commits, per change kind — the measurements prior work
//     reports as "a table addition resulted in N changes in the source".
package impact

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"coevo/internal/history"
	"coevo/internal/querydep"
	"coevo/internal/schema"
	"coevo/internal/schemadiff"
	"coevo/internal/vcs"
)

// ElementKind distinguishes referenced schema element kinds.
type ElementKind int

// The element kinds.
const (
	TableElement ElementKind = iota
	AttributeElement
)

// String names the kind.
func (k ElementKind) String() string {
	if k == TableElement {
		return "table"
	}
	return "attribute"
}

// Reference counts the mentions of one schema element in one file.
type Reference struct {
	File    string
	Element string // lower-cased element name
	Kind    ElementKind
	Count   int
}

// Options configures reference scanning.
type Options struct {
	// MinNameLength suppresses elements whose names are too short to match
	// meaningfully ("id" would light up everywhere). Default 3.
	MinNameLength int
	// SkipPaths excludes files (the DDL file itself is always excluded).
	SkipPaths map[string]bool
}

// DefaultOptions returns the scanning defaults.
func DefaultOptions() Options { return Options{MinNameLength: 3} }

// ErrNoSchema reports a scan against an empty schema.
var ErrNoSchema = errors.New("impact: schema has no elements to scan for")

// elementIndex maps lower-cased element names to their kind. Attribute
// names shared with a table name resolve to the table (the coarser
// element).
func elementIndex(s *schema.Schema, minLen int) map[string]ElementKind {
	idx := make(map[string]ElementKind)
	for _, t := range s.Tables() {
		for _, a := range t.Attributes() {
			name := strings.ToLower(a.Name)
			if len(name) >= minLen {
				idx[name] = AttributeElement
			}
		}
	}
	for _, t := range s.Tables() {
		name := strings.ToLower(t.Name)
		if len(name) >= minLen {
			idx[name] = TableElement
		}
	}
	return idx
}

// ScanContent finds references to the schema's elements in one file's
// content. Matching is token-based: identifiers are [A-Za-z0-9_]+ runs,
// compared case-insensitively, so `SELECT * FROM users` and
// `db.query("users")` both count while `trousers` does not.
func ScanContent(file string, content []byte, s *schema.Schema, opts Options) ([]Reference, error) {
	if opts.MinNameLength <= 0 {
		opts.MinNameLength = 3
	}
	idx := elementIndex(s, opts.MinNameLength)
	if len(idx) == 0 {
		return nil, ErrNoSchema
	}
	counts := map[string]int{}
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		token := strings.ToLower(string(content[start:end]))
		if _, ok := idx[token]; ok {
			counts[token]++
		}
		start = -1
	}
	for i, c := range content {
		if isWordByte(c) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(content))

	refs := make([]Reference, 0, len(counts))
	for name, n := range counts {
		refs = append(refs, Reference{File: file, Element: name, Kind: idx[name], Count: n})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Element < refs[j].Element })
	return refs, nil
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Index is the repository-wide reference index: element → files that
// mention it.
type Index struct {
	// Refs lists every (file, element) reference.
	Refs []Reference
	// byElement maps element name to the referencing files.
	byElement map[string][]string
}

// FilesReferencing returns the files mentioning the element.
func (ix *Index) FilesReferencing(element string) []string {
	return ix.byElement[strings.ToLower(element)]
}

// ScanRepository scans every file of the repository head (except the DDL
// file and opts.SkipPaths) against the given schema.
func ScanRepository(repo *vcs.Repository, ddlPath string, s *schema.Schema, opts Options) (*Index, error) {
	head := repo.Head()
	if head == nil {
		return nil, fmt.Errorf("impact: %s: empty repository", repo.Name())
	}
	ix := &Index{byElement: map[string][]string{}}
	paths := make([]string, 0, len(head.Tree()))
	for path := range head.Tree() {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if path == ddlPath || opts.SkipPaths[path] {
			continue
		}
		content, err := repo.FileAt(head.Hash, path)
		if err != nil {
			return nil, err
		}
		refs, err := ScanContent(path, content, s, opts)
		if err != nil {
			return nil, err
		}
		for _, r := range refs {
			ix.Refs = append(ix.Refs, r)
			ix.byElement[r.Element] = append(ix.byElement[r.Element], r.File)
		}
	}
	return ix, nil
}

// AffectedFiles estimates the blast radius of a schema delta: the distinct
// files referencing any element the delta touches.
func (ix *Index) AffectedFiles(delta *schemadiff.Delta) []string {
	seen := map[string]bool{}
	var out []string
	add := func(element string) {
		for _, f := range ix.byElement[strings.ToLower(element)] {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	for _, ch := range delta.Changes {
		add(ch.Attribute)
		add(ch.Table)
	}
	sort.Strings(out)
	return out
}

// KindImpact accumulates the windowed co-change volume for one change
// kind.
type KindImpact struct {
	// Changes is the number of attribute-level changes of this kind.
	Changes int
	// SourceFileUpdates is the total source-file churn observed in the
	// windows around those changes.
	SourceFileUpdates int
}

// Avg returns source file updates per change, the unit of prior work's
// "a table addition resulted in 19 changes in the surrounding code".
func (k KindImpact) Avg() float64 {
	if k.Changes == 0 {
		return 0
	}
	return float64(k.SourceFileUpdates) / float64(k.Changes)
}

// CoChangeStats aggregates the windowed co-change analysis of one project.
type CoChangeStats struct {
	// PerKind breaks the impact down by change kind.
	PerKind map[schemadiff.ChangeKind]*KindImpact
	// ActiveSchemaCommits is the number of schema commits with logical
	// change.
	ActiveSchemaCommits int
	// SameCommitShare is the fraction of active schema commits whose own
	// commit also touches source files (prior work: only about half of
	// code adaptations ship in the same revision).
	SameCommitShare float64
	// WindowCommits is the window radius used (commits on each side).
	WindowCommits int
}

// CoChange measures source churn around each active schema commit: the
// distinct source files updated by the schema commit itself plus the
// `window` non-merge commits on each side. Every attribute-level change in
// the commit's delta is attributed that churn.
func CoChange(repo *vcs.Repository, sh *history.SchemaHistory, window int) (*CoChangeStats, error) {
	if window < 0 {
		return nil, fmt.Errorf("impact: negative window %d", window)
	}
	log := repo.Log(vcs.LogOptions{NoMerges: true, Reverse: true})
	if len(log) == 0 {
		return nil, fmt.Errorf("impact: %s: empty repository", repo.Name())
	}
	posByHash := make(map[vcs.Hash]int, len(log))
	for i, e := range log {
		posByHash[e.Commit.Hash] = i
	}

	stats := &CoChangeStats{
		PerKind:       map[schemadiff.ChangeKind]*KindImpact{},
		WindowCommits: window,
	}
	sameCommit := 0
	for i, v := range sh.Versions {
		delta := sh.Deltas[i]
		if delta.TotalActivity() == 0 {
			continue
		}
		stats.ActiveSchemaCommits++
		pos, ok := posByHash[v.Commit.Hash]
		if !ok {
			// A schema commit that is a merge would be absent from the
			// no-merges log; skip it, as the extraction pipeline does.
			continue
		}
		files := map[string]bool{}
		selfTouchesSource := false
		lo, hi := pos-window, pos+window
		if lo < 0 {
			lo = 0
		}
		if hi >= len(log) {
			hi = len(log) - 1
		}
		for w := lo; w <= hi; w++ {
			for _, ch := range log[w].Changes {
				if ch.Path == sh.Path {
					continue
				}
				files[ch.Path] = true
				if w == pos {
					selfTouchesSource = true
				}
			}
		}
		if selfTouchesSource {
			sameCommit++
		}
		for _, ch := range delta.Changes {
			ki := stats.PerKind[ch.Kind]
			if ki == nil {
				ki = &KindImpact{}
				stats.PerKind[ch.Kind] = ki
			}
			ki.Changes++
			ki.SourceFileUpdates += len(files)
		}
	}
	if stats.ActiveSchemaCommits > 0 {
		stats.SameCommitShare = float64(sameCommit) / float64(stats.ActiveSchemaCommits)
	}
	return stats, nil
}

// ScanRepositoryQueries builds a reference index from embedded SQL queries
// instead of bare token scanning: each source file's string literals are
// parsed for SQL statements and their table references resolved against
// the schema. Query-based references are table-granular but far more
// precise — a file mentioning "users" in a comment does not count, a file
// running `SELECT ... FROM users` does.
func ScanRepositoryQueries(repo *vcs.Repository, ddlPath string, s *schema.Schema, opts Options) (*Index, error) {
	head := repo.Head()
	if head == nil {
		return nil, fmt.Errorf("impact: %s: empty repository", repo.Name())
	}
	ix := &Index{byElement: map[string][]string{}}
	paths := make([]string, 0, len(head.Tree()))
	for path := range head.Tree() {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if path == ddlPath || opts.SkipPaths[path] {
			continue
		}
		content, err := repo.FileAt(head.Hash, path)
		if err != nil {
			return nil, err
		}
		dep := querydep.Resolve(path, content, s)
		for _, table := range dep.Tables {
			ix.Refs = append(ix.Refs, Reference{File: path, Element: table, Kind: TableElement, Count: dep.Queries})
			ix.byElement[table] = append(ix.byElement[table], path)
		}
	}
	return ix, nil
}
