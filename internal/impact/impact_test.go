package impact

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"coevo/internal/history"
	"coevo/internal/schema"
	"coevo/internal/schemadiff"
	"coevo/internal/vcs"
)

func mustSchema(t *testing.T, src string) *schema.Schema {
	t.Helper()
	s, errs := schema.ParseAndBuild(src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	return s
}

func TestScanContent(t *testing.T) {
	s := mustSchema(t, "CREATE TABLE users (id INT, email TEXT, nickname TEXT);")
	code := []byte(`
		// load a user by email
		db.query("SELECT email, nickname FROM users WHERE email = ?", addr)
		var trousers = "not a table reference"
		const EMAIL = "also counts case-insensitively"
	`)
	refs, err := ScanContent("app.go", code, s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	kinds := map[string]ElementKind{}
	for _, r := range refs {
		got[r.Element] = r.Count
		kinds[r.Element] = r.Kind
	}
	if got["users"] != 1 {
		t.Errorf("users count = %d, want 1 (trousers must not match)", got["users"])
	}
	if got["email"] != 4 {
		t.Errorf("email count = %d, want 4", got["email"])
	}
	if got["nickname"] != 1 {
		t.Errorf("nickname count = %d", got["nickname"])
	}
	if kinds["users"] != TableElement || kinds["email"] != AttributeElement {
		t.Errorf("kinds = %v", kinds)
	}
	// "id" is below the minimum name length and must not appear.
	if _, ok := got["id"]; ok {
		t.Error("short element names should be suppressed")
	}
}

func TestScanContentEmptySchema(t *testing.T) {
	if _, err := ScanContent("a.go", []byte("x"), schema.New(), DefaultOptions()); !errors.Is(err, ErrNoSchema) {
		t.Errorf("err = %v, want ErrNoSchema", err)
	}
}

func buildImpactRepo(t *testing.T) (*vcs.Repository, *history.SchemaHistory) {
	t.Helper()
	r := vcs.NewRepository("acme/app")
	when := func(m, c int) vcs.Signature {
		return vcs.Signature{Name: "d", Email: "d@e.f",
			When: time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, m, c)}
	}
	commit := func(msg string, s vcs.Signature) {
		t.Helper()
		if _, err := r.Commit(msg, s); err != nil {
			t.Fatal(err)
		}
	}

	r.StageString("schema.sql", "CREATE TABLE orders (id INT, total INT); CREATE TABLE customers (id INT, fullname TEXT);")
	r.StageString("app/orders.go", "package app // talks to orders and total")
	r.StageString("app/customers.go", "package app // customers fullname")
	r.StageString("app/util.go", "package app // nothing schema-ish")
	commit("init", when(0, 0))

	r.StageString("app/util.go", "package app // v2")
	commit("pre-change work", when(1, 0))

	// Active schema commit touching source in the same revision.
	r.StageString("schema.sql", "CREATE TABLE orders (id INT, total INT, discount INT); CREATE TABLE customers (id INT, fullname TEXT);")
	r.StageString("app/orders.go", "package app // now with discount on orders total")
	commit("add discount", when(2, 0))

	r.StageString("app/customers.go", "package app // post-change adaptation")
	commit("post-change work", when(2, 1))

	// Active schema commit with no co-located source change.
	r.StageString("schema.sql", "CREATE TABLE orders (id INT, total INT, discount INT);")
	commit("drop customers", when(4, 0))

	sh, err := history.ExtractSchemaHistory(r, "schema.sql", history.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r, sh
}

func TestScanRepositoryAndAffectedFiles(t *testing.T) {
	r, sh := buildImpactRepo(t)
	ix, err := ScanRepository(r, "schema.sql", sh.FinalSchema(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	files := ix.FilesReferencing("orders")
	if !reflect.DeepEqual(files, []string{"app/orders.go"}) {
		t.Errorf("orders referenced by %v", files)
	}
	// The delta that added orders.discount affects the files referencing
	// the table/attribute.
	var discountDelta *schemadiff.Delta
	for _, d := range sh.Deltas {
		for _, ch := range d.Changes {
			if ch.Attribute == "discount" {
				discountDelta = d
			}
		}
	}
	if discountDelta == nil {
		t.Fatal("discount delta not found")
	}
	affected := ix.AffectedFiles(discountDelta)
	if !reflect.DeepEqual(affected, []string{"app/orders.go"}) {
		t.Errorf("affected = %v", affected)
	}
}

func TestCoChange(t *testing.T) {
	r, sh := buildImpactRepo(t)
	stats, err := CoChange(r, sh, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ActiveSchemaCommits != 3 { // birth + discount + drop
		t.Fatalf("ActiveSchemaCommits = %d, want 3", stats.ActiveSchemaCommits)
	}
	// Birth and discount commits touch source files themselves; the drop
	// commit does not: 2/3.
	if stats.SameCommitShare < 0.66 || stats.SameCommitShare > 0.67 {
		t.Errorf("SameCommitShare = %v, want 2/3", stats.SameCommitShare)
	}
	inj := stats.PerKind[schemadiff.AttrInjected]
	if inj == nil || inj.Changes != 1 {
		t.Fatalf("injected impact = %+v", inj)
	}
	// Window 1 around the discount commit: pre-change work (util.go),
	// itself (orders.go), post-change work (customers.go) = 3 files.
	if inj.SourceFileUpdates != 3 || inj.Avg() != 3 {
		t.Errorf("injected churn = %d (avg %v), want 3", inj.SourceFileUpdates, inj.Avg())
	}
	del := stats.PerKind[schemadiff.AttrDeletedWithTable]
	if del == nil || del.Changes != 2 {
		t.Errorf("deleted-with-table impact = %+v", del)
	}
}

func TestCoChangeZeroWindow(t *testing.T) {
	r, sh := buildImpactRepo(t)
	stats, err := CoChange(r, sh, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj := stats.PerKind[schemadiff.AttrInjected]
	if inj.SourceFileUpdates != 1 { // only the commit's own source change
		t.Errorf("zero-window churn = %d, want 1", inj.SourceFileUpdates)
	}
	if _, err := CoChange(r, sh, -1); err == nil {
		t.Error("negative window should fail")
	}
}

func TestCoChangeEmptyRepo(t *testing.T) {
	r := vcs.NewRepository("acme/empty")
	if _, err := CoChange(r, &history.SchemaHistory{}, 1); err == nil {
		t.Error("empty repo should fail")
	}
}

// Property: scanning is insensitive to content case and to how tokens are
// delimited, and counts are always positive.
func TestQuickScanTokenization(t *testing.T) {
	s := mustSchema(t, "CREATE TABLE widgets (serial INT, label TEXT);")
	delims := []string{" ", "\n", "(", ")", ".", ",", "\"", "'", ";", "\t"}
	f := func(pre, post uint8, upper bool) bool {
		d1 := delims[int(pre)%len(delims)]
		d2 := delims[int(post)%len(delims)]
		token := "widgets"
		if upper {
			token = "WIDGETS"
		}
		content := []byte("x" + d1 + token + d2 + "y")
		refs, err := ScanContent("f.go", content, s, DefaultOptions())
		if err != nil {
			return false
		}
		for _, r := range refs {
			if r.Element == "widgets" && r.Count == 1 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScanRepositoryQueries(t *testing.T) {
	r := vcs.NewRepository("acme/queries")
	when := vcs.Signature{Name: "d", Email: "d@e.f", When: time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)}
	r.StageString("schema.sql", "CREATE TABLE orders (id INT); CREATE TABLE customers (id INT);")
	r.StageString("app/orders.go", `package app
var q = "SELECT * FROM orders WHERE id = ?"`)
	r.StageString("app/readme.md", "This documents the orders concept without querying it.")
	if _, err := r.Commit("init", when); err != nil {
		t.Fatal(err)
	}
	sh, err := history.ExtractSchemaHistory(r, "schema.sql", history.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ScanRepositoryQueries(r, "schema.sql", sh.FinalSchema(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Only the file actually querying the table counts — not the prose.
	if got := ix.FilesReferencing("orders"); !reflect.DeepEqual(got, []string{"app/orders.go"}) {
		t.Errorf("orders refs = %v", got)
	}
	if got := ix.FilesReferencing("customers"); len(got) != 0 {
		t.Errorf("customers refs = %v", got)
	}
	empty := vcs.NewRepository("acme/empty")
	if _, err := ScanRepositoryQueries(empty, "x.sql", sh.FinalSchema(), DefaultOptions()); err == nil {
		t.Error("empty repo should fail")
	}
}
