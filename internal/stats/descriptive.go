package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance; NaN for fewer than two
// points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median; NaN for empty input.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics (type 7, the R default); NaN for empty input or
// q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the extremes; NaNs for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Ranks returns the 1-based ranks of xs with ties assigned their average
// rank (midranks), as required by the rank tests.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+2) / 2 // average of 1-based ranks i+1..j+1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// TieGroups returns the sizes of the tie groups in xs (groups of equal
// values), used by tie corrections.
func TieGroups(xs []float64) []int {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var groups []int
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		if j > i {
			groups = append(groups, j-i+1)
		}
		i = j + 1
	}
	return groups
}

// Bucket assigns value v (expected in [0, 1]) to one of n equal-width
// buckets [0, 1/n), [1/n, 2/n), ..., with the final bucket closed at 1.
// Out-of-range values clamp to the edge buckets.
func Bucket(v float64, n int) int {
	if n <= 0 {
		return 0
	}
	i := int(v * float64(n))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// BucketLabel renders the half-open range label of bucket i of n, e.g.
// "[20%-40%)" or "[80%-100%]" for the final closed bucket.
func BucketLabel(i, n int) string {
	lo := 100 * i / n
	hi := 100 * (i + 1) / n
	if i == n-1 {
		return fmt.Sprintf("[%d%%-%d%%]", lo, hi)
	}
	return fmt.Sprintf("[%d%%-%d%%)", lo, hi)
}
