package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Table is an R×C contingency table of non-negative counts.
type Table [][]int

// NewTable allocates an r×c table of zeros.
func NewTable(r, c int) Table {
	t := make(Table, r)
	for i := range t {
		t[i] = make([]int, c)
	}
	return t
}

// validate checks rectangularity, non-negativity and a positive total.
func (t Table) validate() (rows, cols, total int, err error) {
	rows = len(t)
	if rows == 0 {
		return 0, 0, 0, fmt.Errorf("%w: empty table", ErrBadInput)
	}
	cols = len(t[0])
	for _, row := range t {
		if len(row) != cols {
			return 0, 0, 0, fmt.Errorf("%w: ragged table", ErrBadInput)
		}
		for _, v := range row {
			if v < 0 {
				return 0, 0, 0, fmt.Errorf("%w: negative count", ErrBadInput)
			}
			total += v
		}
	}
	if cols == 0 || total == 0 {
		return 0, 0, 0, fmt.Errorf("%w: table has no observations", ErrBadInput)
	}
	return rows, cols, total, nil
}

// margins returns row and column sums.
func (t Table) margins() (rowSums, colSums []int) {
	rowSums = make([]int, len(t))
	colSums = make([]int, len(t[0]))
	for i, row := range t {
		for j, v := range row {
			rowSums[i] += v
			colSums[j] += v
		}
	}
	return rowSums, colSums
}

// ChiSquareResult holds the test statistic, degrees of freedom and
// p-value of a chi-square independence test.
type ChiSquareResult struct {
	Chi2 float64
	DF   int
	P    float64
}

// ChiSquareIndependence tests independence of rows and columns of an R×C
// contingency table via Pearson's chi-square statistic. Rows or columns
// whose margin is zero are dropped (they carry no information).
func ChiSquareIndependence(t Table) (ChiSquareResult, error) {
	if _, _, _, err := t.validate(); err != nil {
		return ChiSquareResult{}, err
	}
	t = dropEmptyMargins(t)
	rows, cols := len(t), len(t[0])
	if rows < 2 || cols < 2 {
		return ChiSquareResult{}, fmt.Errorf("%w: need >= 2 informative rows and columns", ErrBadInput)
	}
	rowSums, colSums := t.margins()
	total := 0
	for _, s := range rowSums {
		total += s
	}
	chi2 := 0.0
	for i := range t {
		for j := range t[i] {
			expected := float64(rowSums[i]) * float64(colSums[j]) / float64(total)
			d := float64(t[i][j]) - expected
			chi2 += d * d / expected
		}
	}
	df := (rows - 1) * (cols - 1)
	return ChiSquareResult{Chi2: chi2, DF: df, P: ChiSquareSF(chi2, df)}, nil
}

func dropEmptyMargins(t Table) Table {
	rowSums, colSums := t.margins()
	var out Table
	for i, row := range t {
		if rowSums[i] == 0 {
			continue
		}
		var newRow []int
		for j, v := range row {
			if colSums[j] == 0 {
				continue
			}
			newRow = append(newRow, v)
		}
		out = append(out, newRow)
	}
	return out
}

// FisherResult holds the two-sided p-value of a Fisher exact test.
type FisherResult struct {
	P float64
	// Simulated reports whether P was estimated by Monte Carlo (R×C
	// tables) rather than exact enumeration (2×2).
	Simulated bool
	// Iterations is the Monte Carlo sample count when Simulated.
	Iterations int
}

// FisherExact2x2 computes the two-sided Fisher exact test for a 2×2 table
// using the standard "sum of probabilities ≤ observed" definition.
func FisherExact2x2(a, b, c, d int) (FisherResult, error) {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return FisherResult{}, fmt.Errorf("%w: negative count", ErrBadInput)
	}
	n := a + b + c + d
	if n == 0 {
		return FisherResult{}, fmt.Errorf("%w: empty table", ErrBadInput)
	}
	r1 := a + b
	c1 := a + c
	logDenom := LogChoose(n, c1)
	logP := func(x int) float64 {
		return LogChoose(r1, x) + LogChoose(n-r1, c1-x) - logDenom
	}
	observed := logP(a)
	lo := max(0, c1-(n-r1))
	hi := min(r1, c1)
	p := 0.0
	const slack = 1e-7 // tolerate float noise when comparing probabilities
	for x := lo; x <= hi; x++ {
		if lp := logP(x); lp <= observed+slack {
			p += math.Exp(lp)
		}
	}
	if p > 1 {
		p = 1
	}
	return FisherResult{P: p}, nil
}

// FisherExactMC estimates the two-sided Fisher exact test p-value for an
// R×C table (the Freeman-Halton generalization) by Monte Carlo sampling of
// tables with the observed margins, using the permutation construction.
// The estimate is (1 + #{T : P(T) ≤ P(obs)}) / (iters + 1). A fixed seed
// makes runs reproducible.
func FisherExactMC(t Table, iters int, seed int64) (FisherResult, error) {
	rows, cols, total, err := t.validate()
	if err != nil {
		return FisherResult{}, err
	}
	if iters <= 0 {
		return FisherResult{}, fmt.Errorf("%w: iterations must be positive", ErrBadInput)
	}
	if rows == 2 && cols == 2 {
		return FisherExact2x2(t[0][0], t[0][1], t[1][0], t[1][1])
	}
	rowSums, colSums := t.margins()
	observed := logTableProb(t, rowSums, colSums, total)

	// Expand the row labels of every observation; shuffling them against
	// the fixed column layout samples uniformly from tables with the given
	// margins.
	labels := make([]int, 0, total)
	for i, s := range rowSums {
		for k := 0; k < s; k++ {
			labels = append(labels, i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	sample := NewTable(rows, cols)
	extreme := 0
	const slack = 1e-7
	for it := 0; it < iters; it++ {
		rng.Shuffle(len(labels), func(a, b int) { labels[a], labels[b] = labels[b], labels[a] })
		for i := range sample {
			for j := range sample[i] {
				sample[i][j] = 0
			}
		}
		pos := 0
		for j, s := range colSums {
			for k := 0; k < s; k++ {
				sample[labels[pos]][j]++
				pos++
			}
		}
		if logTableProb(sample, rowSums, colSums, total) <= observed+slack {
			extreme++
		}
	}
	p := float64(1+extreme) / float64(iters+1)
	return FisherResult{P: p, Simulated: true, Iterations: iters}, nil
}

// logTableProb returns the log-probability of a table under the
// fixed-margins hypergeometric distribution.
func logTableProb(t Table, rowSums, colSums []int, total int) float64 {
	lp := 0.0
	for _, s := range rowSums {
		lg, _ := math.Lgamma(float64(s + 1))
		lp += lg
	}
	for _, s := range colSums {
		lg, _ := math.Lgamma(float64(s + 1))
		lp += lg
	}
	lgT, _ := math.Lgamma(float64(total + 1))
	lp -= lgT
	for i := range t {
		for j := range t[i] {
			lg, _ := math.Lgamma(float64(t[i][j] + 1))
			lp -= lg
		}
	}
	return lp
}
