package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", label, got, want, tol)
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Φ(0)")
	approx(t, NormalCDF(1.959963985), 0.975, 1e-6, "Φ(1.96)")
	approx(t, NormalCDF(-1.959963985), 0.025, 1e-6, "Φ(-1.96)")
	approx(t, NormalSF(1.644853627), 0.05, 1e-6, "SF(1.645)")
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959963985,
		0.025: -1.959963985,
		0.95:  1.644853627,
		0.001: -3.090232306,
		0.999: 3.090232306,
	}
	for p, want := range cases {
		approx(t, NormalQuantile(p), want, 1e-7, "Φ⁻¹")
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile edges should be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) {
		t.Error("out-of-range quantile should be NaN")
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		z := NormalQuantile(p)
		approx(t, NormalCDF(z), p, 1e-10, "Φ(Φ⁻¹(p))")
	}
}

func TestChiSquareSF(t *testing.T) {
	// Reference values (R: pchisq(x, df, lower.tail=FALSE)).
	approx(t, ChiSquareSF(3.841459, 1), 0.05, 1e-6, "χ²(1) @3.84")
	approx(t, ChiSquareSF(11.0705, 5), 0.05, 1e-5, "χ²(5) @11.07")
	approx(t, ChiSquareSF(15.0863, 5), 0.01, 1e-5, "χ²(5) @15.09")
	approx(t, ChiSquareSF(0, 3), 1, 1e-12, "χ² at 0")
	if !math.IsNaN(ChiSquareSF(1, 0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestGammaRegComplementarity(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 50} {
		for _, x := range []float64{0.1, 1, 5, 20, 100} {
			p, q := GammaRegP(a, x), GammaRegQ(a, x)
			approx(t, p+q, 1, 1e-10, "P+Q")
			if p < 0 || p > 1 {
				t.Errorf("P(%v,%v) = %v out of range", a, x, p)
			}
		}
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "Mean")
	approx(t, StdDev(xs), 2.13809, 1e-4, "StdDev") // sample sd
	approx(t, Median(xs), 4.5, 1e-12, "Median")
	approx(t, Quantile(xs, 0.25), 4, 1e-12, "Q1")
	min, max := MinMax(xs)
	if min != 2 || max != 9 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestRanksWithTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
	groups := TieGroups([]float64{1, 2, 2, 3, 3, 3})
	if len(groups) != 2 || groups[0] != 2 || groups[1] != 3 {
		t.Errorf("TieGroups = %v", groups)
	}
}

func TestBucket(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.19, 0}, {0.2, 1}, {0.55, 2}, {0.99, 4}, {1.0, 4}, {-1, 0}, {2, 4},
	}
	for _, tc := range cases {
		if got := Bucket(tc.v, 5); got != tc.want {
			t.Errorf("Bucket(%v, 5) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if BucketLabel(0, 5) != "[0%-20%)" || BucketLabel(4, 5) != "[80%-100%]" {
		t.Errorf("labels: %q %q", BucketLabel(0, 5), BucketLabel(4, 5))
	}
}

func TestShapiroWilkNormalData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	res, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.W < 0.97 {
		t.Errorf("W = %v for normal data, want close to 1", res.W)
	}
	if res.P < 0.05 {
		t.Errorf("p = %v for normal data, should not reject", res.P)
	}
}

func TestShapiroWilkSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 195)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 2) // heavily log-normal
	}
	res, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.001 {
		t.Errorf("p = %v for log-normal data, should strongly reject", res.P)
	}
}

func TestShapiroWilkKnownValue(t *testing.T) {
	// R: shapiro.test(c(148,154,158,160,161,162,166,170,182,195,236))
	// gives W = 0.79, p = 0.0072.
	xs := []float64{148, 154, 158, 160, 161, 162, 166, 170, 182, 195, 236}
	res, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.W, 0.79, 0.01, "W")
	approx(t, res.P, 0.0072, 0.003, "p")
}

func TestShapiroWilkErrors(t *testing.T) {
	if _, err := ShapiroWilk([]float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Errorf("n=2 err = %v", err)
	}
	if _, err := ShapiroWilk([]float64{5, 5, 5, 5}); !errors.Is(err, ErrBadInput) {
		t.Errorf("constant err = %v", err)
	}
}

func TestKruskalWallisKnownValue(t *testing.T) {
	// R: kruskal.test(list(c(2.9,3.0,2.5,2.6,3.2), c(3.8,2.7,4.0,2.4),
	// c(2.8,3.4,3.7,2.2,2.0))) gives H = 0.77143, df = 2, p = 0.68.
	g1 := []float64{2.9, 3.0, 2.5, 2.6, 3.2}
	g2 := []float64{3.8, 2.7, 4.0, 2.4}
	g3 := []float64{2.8, 3.4, 3.7, 2.2, 2.0}
	res, err := KruskalWallis(g1, g2, g3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.H, 0.77143, 1e-4, "H")
	if res.DF != 2 {
		t.Errorf("DF = %d", res.DF)
	}
	approx(t, res.P, 0.68, 0.01, "p")
	if len(res.GroupMedians) != 3 {
		t.Errorf("medians = %v", res.GroupMedians)
	}
}

func TestKruskalWallisSeparatedGroups(t *testing.T) {
	g1 := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	g2 := []float64{101, 102, 103, 104, 105, 106, 107, 108}
	res, err := KruskalWallis(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Errorf("fully separated groups: p = %v, want tiny", res.P)
	}
}

func TestKruskalWallisErrors(t *testing.T) {
	if _, err := KruskalWallis([]float64{1, 2, 3}); !errors.Is(err, ErrBadInput) {
		t.Errorf("single group err = %v", err)
	}
	if _, err := KruskalWallis([]float64{5, 5}, []float64{5, 5}); !errors.Is(err, ErrBadInput) {
		t.Errorf("all tied err = %v", err)
	}
	if _, err := KruskalWallis([]float64{1}, []float64{2}); !errors.Is(err, ErrBadInput) {
		t.Errorf("n<3 err = %v", err)
	}
	// Empty groups are tolerated as long as two are non-empty.
	if _, err := KruskalWallis([]float64{1, 2}, nil, []float64{3, 4}); err != nil {
		t.Errorf("empty-group handling: %v", err)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// R: cor.test(x, y, method="kendall") on these data gives tau = 0.733.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{1, 3, 2, 4, 6, 5}
	res, err := KendallTau(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Tau, 0.7333333, 1e-6, "tau")
}

func TestKendallTauPerfectAndInverse(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	res, _ := KendallTau(x, x)
	approx(t, res.Tau, 1, 1e-12, "tau perfect")
	y := []float64{5, 4, 3, 2, 1}
	res, _ = KendallTau(x, y)
	approx(t, res.Tau, -1, 1e-12, "tau inverse")
	if res.P > 0.05 {
		t.Errorf("perfect inverse correlation p = %v", res.P)
	}
}

func TestKendallTauWithTies(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	y := []float64{1, 2, 1, 2, 3, 4, 3, 4}
	res, err := KendallTau(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau <= 0 || res.Tau > 1 {
		t.Errorf("tied tau = %v", res.Tau)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := KendallTau([]float64{3, 3, 3}, []float64{1, 2, 3}); !errors.Is(err, ErrBadInput) {
		t.Errorf("constant err = %v", err)
	}
}

func TestChiSquareIndependenceKnownValue(t *testing.T) {
	// R: chisq.test(matrix(c(30,10,20,40),2,2), correct=FALSE) gives
	// X² = 16.667, df = 1, p = 4.5e-05.
	tbl := Table{{30, 20}, {10, 40}}
	res, err := ChiSquareIndependence(tbl)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Chi2, 16.6667, 1e-3, "chi2")
	if res.DF != 1 {
		t.Errorf("DF = %d", res.DF)
	}
	if res.P > 1e-4 {
		t.Errorf("p = %v", res.P)
	}
}

func TestChiSquareDropsEmptyMargins(t *testing.T) {
	tbl := Table{{30, 20, 0}, {10, 40, 0}, {0, 0, 0}}
	res, err := ChiSquareIndependence(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 1 {
		t.Errorf("DF after dropping empty margins = %d, want 1", res.DF)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquareIndependence(Table{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := ChiSquareIndependence(Table{{1, 2}, {3}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("ragged err = %v", err)
	}
	if _, err := ChiSquareIndependence(Table{{1, -2}, {3, 4}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative err = %v", err)
	}
	if _, err := ChiSquareIndependence(Table{{1, 2}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("single row err = %v", err)
	}
}

func TestFisherExact2x2KnownValue(t *testing.T) {
	// R: fisher.test(matrix(c(3,1,1,3),2,2)) two-sided p = 0.4857.
	res, err := FisherExact2x2(3, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.P, 0.4857143, 1e-6, "fisher p")
	if res.Simulated {
		t.Error("2x2 should be exact")
	}

	// Tea-tasting: fisher.test(matrix(c(8,2,2,8),2,2)) p = 0.02301;
	// exactly 2*(2025 + 100 + 1)/184756.
	res, err = FisherExact2x2(8, 2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.P, 2*float64(2025+100+1)/184756, 1e-9, "tea p")
}

func TestFisherExactMCAgreesWith2x2(t *testing.T) {
	tbl := Table{{8, 2}, {2, 8}}
	exact, _ := FisherExact2x2(8, 2, 2, 8)
	mc, err := FisherExactMC(tbl, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 input short-circuits to the exact path.
	approx(t, mc.P, exact.P, 1e-9, "MC short-circuit")
}

func TestFisherExactMCOnRxC(t *testing.T) {
	// A strongly associated 3x2 table: the simulated p must be small.
	assoc := Table{{20, 1}, {2, 18}, {15, 0}}
	res, err := FisherExactMC(assoc, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Simulated || res.Iterations != 20000 {
		t.Errorf("result = %+v", res)
	}
	if res.P > 0.01 {
		t.Errorf("associated table p = %v, want < 0.01", res.P)
	}

	// A near-independent table: p must be large.
	indep := Table{{10, 10}, {11, 9}, {9, 11}}
	res, err = FisherExactMC(indep, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.3 {
		t.Errorf("independent table p = %v, want large", res.P)
	}
}

func TestFisherExactMCDeterministic(t *testing.T) {
	tbl := Table{{5, 3, 2}, {1, 4, 7}}
	a, err := FisherExactMC(tbl, 5000, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FisherExactMC(tbl, 5000, 99)
	if a.P != b.P {
		t.Errorf("same seed, different p: %v vs %v", a.P, b.P)
	}
}

func TestFisherErrors(t *testing.T) {
	if _, err := FisherExact2x2(-1, 1, 1, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative err = %v", err)
	}
	if _, err := FisherExact2x2(0, 0, 0, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := FisherExactMC(Table{{1, 2}, {3, 4}}, 0, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero iters err = %v", err)
	}
}

// Property: ranks are a permutation-weighted sequence summing to
// n(n+1)/2, regardless of ties.
func TestQuickRankSum(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v % 16)
		}
		sum := 0.0
		for _, r := range Ranks(xs) {
			sum += r
		}
		n := float64(len(xs))
		return math.Abs(sum-n*(n+1)/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Kendall tau is always within [-1, 1] and symmetric in its
// arguments.
func TestQuickKendallBounds(t *testing.T) {
	f := func(xr, yr []uint8) bool {
		n := len(xr)
		if n < 3 || len(yr) < n {
			return true
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		constX, constY := true, true
		for i := 0; i < n; i++ {
			xs[i] = float64(xr[i] % 8)
			ys[i] = float64(yr[i] % 8)
			if xs[i] != xs[0] {
				constX = false
			}
			if ys[i] != ys[0] {
				constY = false
			}
		}
		if constX || constY {
			return true
		}
		ab, err := KendallTau(xs, ys)
		if err != nil {
			return false
		}
		ba, err := KendallTau(ys, xs)
		if err != nil {
			return false
		}
		return ab.Tau >= -1-1e-12 && ab.Tau <= 1+1e-12 && math.Abs(ab.Tau-ba.Tau) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: chi-square p-values live in [0, 1] for arbitrary tables with
// informative margins.
func TestQuickChiSquareRange(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		tbl := Table{{int(a) + 1, int(b) + 1}, {int(c) + 1, int(d) + 1}}
		res, err := ChiSquareIndependence(tbl)
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1 && res.Chi2 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
