package stats

import (
	"math/rand"
	"testing"
)

func benchSample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*5 + float64(i%7)
	}
	return xs
}

func BenchmarkShapiroWilk195(b *testing.B) {
	xs := benchSample(195, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ShapiroWilk(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKruskalWallis6Groups(b *testing.B) {
	groups := make([][]float64, 6)
	for i := range groups {
		groups[i] = benchSample(33, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KruskalWallis(groups...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKendallTau195(b *testing.B) {
	xs := benchSample(195, 3)
	ys := benchSample(195, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KendallTau(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFisherExactMC6x2(b *testing.B) {
	tbl := Table{{20, 13}, {40, 25}, {25, 5}, {10, 20}, {5, 12}, {8, 12}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FisherExactMC(tbl, 2000, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChiSquare6x2(b *testing.B) {
	tbl := Table{{20, 13}, {40, 25}, {25, 5}, {10, 20}, {5, 12}, {8, 12}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquareIndependence(tbl); err != nil {
			b.Fatal(err)
		}
	}
}
