package stats

import (
	"fmt"
	"math"
)

// KruskalWallisResult holds the H statistic, degrees of freedom, and
// chi-square-approximated p-value.
type KruskalWallisResult struct {
	H  float64
	DF int
	P  float64
	// GroupMedians holds the per-group medians, convenient for the paper's
	// per-taxon reporting.
	GroupMedians []float64
}

// KruskalWallis tests whether the k groups come from the same distribution
// (the non-parametric one-way ANOVA on ranks the paper uses to test taxa
// against synchronicity and attainment). Ties are corrected for. At least
// two non-empty groups with a combined n ≥ 3 are required.
func KruskalWallis(groups ...[]float64) (KruskalWallisResult, error) {
	var nonEmpty int
	var all []float64
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty++
		}
		all = append(all, g...)
	}
	if nonEmpty < 2 {
		return KruskalWallisResult{}, fmt.Errorf("%w: Kruskal-Wallis needs >= 2 non-empty groups", ErrBadInput)
	}
	n := len(all)
	if n < 3 {
		return KruskalWallisResult{}, fmt.Errorf("%w: Kruskal-Wallis needs n >= 3, have %d", ErrBadInput, n)
	}

	ranks := Ranks(all)
	h := 0.0
	offset := 0
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		var rsum float64
		for i := range g {
			rsum += ranks[offset+i]
		}
		h += rsum * rsum / float64(len(g))
		offset += len(g)
	}
	fn := float64(n)
	h = 12/(fn*(fn+1))*h - 3*(fn+1)

	// Tie correction.
	ties := TieGroups(all)
	correction := 0.0
	for _, t := range ties {
		ft := float64(t)
		correction += ft*ft*ft - ft
	}
	denom := 1 - correction/(fn*fn*fn-fn)
	if denom <= 0 {
		return KruskalWallisResult{}, fmt.Errorf("%w: all observations tied", ErrBadInput)
	}
	h /= denom

	df := nonEmpty - 1
	res := KruskalWallisResult{H: h, DF: df, P: ChiSquareSF(h, df)}
	for _, g := range groups {
		res.GroupMedians = append(res.GroupMedians, Median(g))
	}
	return res, nil
}

// KendallResult holds Kendall's τ-b and its normal-approximation p-value
// (two-sided).
type KendallResult struct {
	Tau float64
	Z   float64
	P   float64
}

// KendallTau computes Kendall's τ-b rank correlation between paired
// samples, with tie-corrected variance for the significance test. O(n²) —
// ample for corpus-sized inputs.
func KendallTau(xs, ys []float64) (KendallResult, error) {
	n := len(xs)
	if n != len(ys) {
		return KendallResult{}, fmt.Errorf("%w: length mismatch %d vs %d", ErrBadInput, n, len(ys))
	}
	if n < 2 {
		return KendallResult{}, fmt.Errorf("%w: Kendall tau needs n >= 2", ErrBadInput)
	}
	var concordant, discordant int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(xs[j] - xs[i])
			dy := sign(ys[j] - ys[i])
			s := dx * dy
			switch {
			case s > 0:
				concordant++
			case s < 0:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	n1 := tiePairSum(xs)
	n2 := tiePairSum(ys)
	denom := math.Sqrt((n0 - n1) * (n0 - n2))
	if denom == 0 {
		return KendallResult{}, fmt.Errorf("%w: a sample is constant", ErrBadInput)
	}
	tau := float64(concordant-discordant) / denom

	// Normal approximation with tie correction:
	//   var(S) = (v0 − vt − vu)/18
	//          + Σt(t−1)·Σu(u−1) / (2n(n−1))
	//          + Σt(t−1)(t−2)·Σu(u−1)(u−2) / (9n(n−1)(n−2)).
	v0 := float64(n*(n-1)) * float64(2*n+5)
	vt := tieVarianceTerm(xs)
	vu := tieVarianceTerm(ys)
	variance := (v0 - vt - vu) / 18
	variance += (2 * n1) * (2 * n2) / (2 * float64(n) * float64(n-1))
	if n > 2 {
		variance += tieTripleSum(xs) * tieTripleSum(ys) /
			(9 * float64(n) * float64(n-1) * float64(n-2))
	}
	if variance <= 0 {
		return KendallResult{Tau: tau, Z: 0, P: 1}, nil
	}
	z := float64(concordant-discordant) / math.Sqrt(variance)
	p := 2 * NormalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return KendallResult{Tau: tau, Z: z, P: p}, nil
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// tiePairSum returns Σ t(t−1)/2 over tie groups.
func tiePairSum(xs []float64) float64 {
	s := 0.0
	for _, t := range TieGroups(xs) {
		s += float64(t*(t-1)) / 2
	}
	return s
}

// tieVarianceTerm returns Σ t(t−1)(2t+5) over tie groups.
func tieVarianceTerm(xs []float64) float64 {
	s := 0.0
	for _, t := range TieGroups(xs) {
		s += float64(t*(t-1)) * float64(2*t+5)
	}
	return s
}

// tieTripleSum returns Σ t(t−1)(t−2) over tie groups.
func tieTripleSum(xs []float64) float64 {
	s := 0.0
	for _, t := range TieGroups(xs) {
		s += float64(t * (t - 1) * (t - 2))
	}
	return s
}
