package stats

import (
	"fmt"
	"math"
	"sort"
)

// ShapiroWilkResult holds the W statistic and its p-value.
type ShapiroWilkResult struct {
	W float64
	P float64
	N int
}

// ShapiroWilk tests the null hypothesis that xs is drawn from a normal
// distribution, using Royston's 1995 approximation (algorithm AS R94),
// valid for 3 ≤ n ≤ 5000. Small p-values reject normality — the paper
// reports p < 0.007 for every attribute, i.e. nothing is normal.
func ShapiroWilk(xs []float64) (ShapiroWilkResult, error) {
	n := len(xs)
	if n < 3 {
		return ShapiroWilkResult{}, fmt.Errorf("%w: Shapiro-Wilk needs n >= 3, have %d", ErrBadInput, n)
	}
	if n > 5000 {
		return ShapiroWilkResult{}, fmt.Errorf("%w: Shapiro-Wilk approximation valid to n = 5000, have %d", ErrBadInput, n)
	}
	x := append([]float64(nil), xs...)
	sort.Float64s(x)
	if x[0] == x[n-1] {
		return ShapiroWilkResult{}, fmt.Errorf("%w: all values identical", ErrBadInput)
	}

	// Expected values of normal order statistics (Blom scores).
	m := make([]float64, n)
	var ssm float64
	for i := 0; i < n; i++ {
		m[i] = NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		ssm += m[i] * m[i]
	}
	rsn := math.Sqrt(ssm)
	c := make([]float64, n)
	for i := range m {
		c[i] = m[i] / rsn
	}

	// Royston's polynomial-adjusted weights for the extreme order
	// statistics.
	a := make([]float64, n)
	u := 1 / math.Sqrt(float64(n))
	switch {
	case n == 3:
		a[0] = math.Sqrt(0.5)
		a[2] = -a[0]
	default:
		an := -2.706056*pow5(u) + 4.434685*pow4(u) - 2.071190*pow3(u) - 0.147981*pow2(u) + 0.221157*u + c[n-1]
		var phi float64
		if n > 5 {
			an1 := -3.582633*pow5(u) + 5.682633*pow4(u) - 1.752461*pow3(u) - 0.293762*pow2(u) + 0.042981*u + c[n-2]
			phi = (ssm - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) / (1 - 2*an*an - 2*an1*an1)
			a[n-1], a[0] = an, -an
			a[n-2], a[1] = an1, -an1
			for i := 2; i < n-2; i++ {
				a[i] = m[i] / math.Sqrt(phi)
			}
		} else {
			phi = (ssm - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
			a[n-1], a[0] = an, -an
			for i := 1; i < n-1; i++ {
				a[i] = m[i] / math.Sqrt(phi)
			}
		}
	}

	// W statistic.
	mean := Mean(x)
	var num, den float64
	for i := 0; i < n; i++ {
		num += a[i] * x[i]
		d := x[i] - mean
		den += d * d
	}
	w := num * num / den
	if w > 1 {
		w = 1
	}

	// P-value via Royston's normalizing transformations.
	var p float64
	switch {
	case n == 3:
		// Exact for n = 3.
		p = 6 / math.Pi * (math.Asin(math.Sqrt(w)) - math.Asin(math.Sqrt(0.75)))
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
	case n <= 11:
		fn := float64(n)
		g := -2.273 + 0.459*fn
		mu := 0.5440 - 0.39978*fn + 0.025054*fn*fn - 0.0006714*fn*fn*fn
		sigma := math.Exp(1.3822 - 0.77857*fn + 0.062767*fn*fn - 0.0020322*fn*fn*fn)
		wPrime := -math.Log(g - math.Log(1-w))
		p = NormalSF((wPrime - mu) / sigma)
	default:
		ln := math.Log(float64(n))
		mu := 0.0038915*pow3(ln) - 0.083751*pow2(ln) - 0.31082*ln - 1.5861
		sigma := math.Exp(0.0030302*pow2(ln) - 0.082676*ln - 0.4803)
		p = NormalSF((math.Log(1-w) - mu) / sigma)
	}
	return ShapiroWilkResult{W: w, P: p, N: n}, nil
}

func pow2(x float64) float64 { return x * x }
func pow3(x float64) float64 { return x * x * x }
func pow4(x float64) float64 { return x * x * x * x }
func pow5(x float64) float64 { return x * x * x * x * x }
