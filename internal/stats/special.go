// Package stats implements the statistical procedures of the paper's
// Section 7 from scratch on the standard library: Shapiro-Wilk normality
// tests, Kruskal-Wallis rank tests, Kendall rank correlation, chi-square
// independence tests and Fisher exact tests, plus the descriptive
// machinery (ranks with ties, quantiles) they need.
package stats

import (
	"errors"
	"math"
)

// ErrBadInput reports invalid arguments to a statistical procedure.
var ErrBadInput = errors.New("stats: invalid input")

// NormalCDF returns P(Z ≤ z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSF returns the survival function P(Z > z).
func NormalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) via Acklam's rational approximation
// (relative error below 1.15e-9 over the full domain), refined with one
// Halley step against the exact CDF.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// GammaRegP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a), computed by series expansion for x < a+1 and by
// the continued fraction of Q otherwise.
func GammaRegP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaSeriesP(a, x)
	default:
		return 1 - gammaContinuedQ(a, x)
	}
}

// GammaRegQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func GammaRegQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaSeriesP(a, x)
	default:
		return gammaContinuedQ(a, x)
	}
}

// gammaSeriesP evaluates P(a, x) by its power series.
func gammaSeriesP(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedQ evaluates Q(a, x) by Lentz's continued fraction.
func gammaContinuedQ(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareSF returns the survival function of the chi-square distribution
// with df degrees of freedom at value x: P(X² > x).
func ChiSquareSF(x float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 1
	}
	return GammaRegQ(float64(df)/2, x/2)
}

// LogChoose returns ln(n choose k).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}
