package schemadiff_test

import (
	"fmt"

	"coevo/internal/schema"
	"coevo/internal/schemadiff"
)

// ExampleCompare diffs two schema versions into the study's attribute-level
// change taxonomy.
func ExampleCompare() {
	v1, _ := schema.ParseAndBuild("CREATE TABLE users (id INT, email TEXT);")
	v2, _ := schema.ParseAndBuild(`
		CREATE TABLE users (id BIGINT, email TEXT, name TEXT);
		CREATE TABLE posts (id INT, body TEXT);`)

	delta := schemadiff.Compare(v1, v2)
	fmt.Println(delta)
	fmt.Println("total activity:", delta.TotalActivity())
	// Output:
	// 1 tables created, 2 attrs born, 1 attrs injected, 1 type changes
	// total activity: 4
}
