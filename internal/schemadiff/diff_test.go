package schemadiff

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"coevo/internal/schema"
)

func mustSchema(t *testing.T, src string) *schema.Schema {
	t.Helper()
	s, errs := schema.ParseAndBuild(src)
	if len(errs) > 0 {
		t.Fatalf("ParseAndBuild(%q): %v", src, errs)
	}
	return s
}

func TestCompareBirth(t *testing.T) {
	s := mustSchema(t, "CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a));")
	d := Compare(nil, s)
	if d.TablesCreated != 1 || d.AttrsBornWithTable != 2 {
		t.Errorf("birth delta = %+v", d)
	}
	if d.TotalActivity() != 2 {
		t.Errorf("TotalActivity = %d, want 2", d.TotalActivity())
	}
}

func TestCompareIdentical(t *testing.T) {
	a := mustSchema(t, "CREATE TABLE t (a INT, b TEXT);")
	b := mustSchema(t, "create table T (A integer, B text);") // case + synonym
	d := Compare(a, b)
	if !d.IsEmpty() {
		t.Errorf("identical schemas produced delta: %v (changes %v)", d, d.Changes)
	}
	if d.String() != "no change" {
		t.Errorf("String() = %q", d.String())
	}
}

func TestCompareTableCreationAndDrop(t *testing.T) {
	old := mustSchema(t, "CREATE TABLE keep (a INT); CREATE TABLE gone (x INT, y INT, z INT);")
	new_ := mustSchema(t, "CREATE TABLE keep (a INT); CREATE TABLE fresh (p INT, q INT);")
	d := Compare(old, new_)
	if d.TablesCreated != 1 || d.TablesDropped != 1 {
		t.Errorf("tables: %+v", d)
	}
	if d.AttrsBornWithTable != 2 || d.AttrsDeletedWithTable != 3 {
		t.Errorf("attrs born/deleted = %d/%d, want 2/3", d.AttrsBornWithTable, d.AttrsDeletedWithTable)
	}
	if d.TotalActivity() != 5 {
		t.Errorf("TotalActivity = %d, want 5", d.TotalActivity())
	}
}

func TestCompareInjectionEjection(t *testing.T) {
	old := mustSchema(t, "CREATE TABLE t (a INT, b INT);")
	new_ := mustSchema(t, "CREATE TABLE t (a INT, c INT, d INT);")
	d := Compare(old, new_)
	if d.AttrsInjected != 2 || d.AttrsEjected != 1 {
		t.Errorf("injected/ejected = %d/%d, want 2/1", d.AttrsInjected, d.AttrsEjected)
	}
	if d.TablesCreated != 0 || d.TablesDropped != 0 {
		t.Errorf("surviving table miscounted: %+v", d)
	}
}

func TestCompareTypeChange(t *testing.T) {
	old := mustSchema(t, "CREATE TABLE t (a VARCHAR(10), b INT);")
	new_ := mustSchema(t, "CREATE TABLE t (a VARCHAR(20), b INTEGER);")
	d := Compare(old, new_)
	// VARCHAR(10)->VARCHAR(20) is a change; INT->INTEGER is a synonym.
	if d.AttrsTypeChanged != 1 {
		t.Errorf("type changes = %d, want 1; changes: %v", d.AttrsTypeChanged, d.Changes)
	}
	var found bool
	for _, c := range d.Changes {
		if c.Kind == AttrTypeChanged {
			found = true
			if c.OldType != "VARCHAR(10)" || c.NewType != "VARCHAR(20)" {
				t.Errorf("types = %q -> %q", c.OldType, c.NewType)
			}
			if !strings.Contains(c.String(), "->") {
				t.Errorf("String() = %q", c.String())
			}
		}
	}
	if !found {
		t.Error("AttrTypeChanged record missing")
	}
}

func TestComparePKChange(t *testing.T) {
	old := mustSchema(t, "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a));")
	new_ := mustSchema(t, "CREATE TABLE t (a INT, b INT, PRIMARY KEY (b));")
	d := Compare(old, new_)
	// Both a (left the key) and b (joined the key) changed participation.
	if d.AttrsPKChanged != 2 {
		t.Errorf("pk changes = %d, want 2; %v", d.AttrsPKChanged, d.Changes)
	}
}

func TestCompareToEmpty(t *testing.T) {
	s := mustSchema(t, "CREATE TABLE t (a INT);")
	d := Compare(s, nil)
	if d.TablesDropped != 1 || d.AttrsDeletedWithTable != 1 {
		t.Errorf("delta to empty = %+v", d)
	}
}

func TestSequence(t *testing.T) {
	v1 := mustSchema(t, "CREATE TABLE t (a INT);")
	v2 := mustSchema(t, "CREATE TABLE t (a INT, b INT);")
	v3 := mustSchema(t, "CREATE TABLE t (a INT, b INT); CREATE TABLE u (x INT);")
	deltas := Sequence([]*schema.Schema{v1, v2, v3})
	if len(deltas) != 2 {
		t.Fatalf("len(deltas) = %d, want 2", len(deltas))
	}
	if deltas[0].AttrsInjected != 1 {
		t.Errorf("delta1 = %+v", deltas[0])
	}
	if deltas[1].TablesCreated != 1 || deltas[1].AttrsBornWithTable != 1 {
		t.Errorf("delta2 = %+v", deltas[1])
	}
	if TotalActivity(deltas) != 2 {
		t.Errorf("TotalActivity = %d, want 2", TotalActivity(deltas))
	}
	if Sequence([]*schema.Schema{v1}) != nil {
		t.Error("single version should yield nil deltas")
	}
}

func TestChangeKindStrings(t *testing.T) {
	kinds := []ChangeKind{AttrBornWithTable, AttrInjected, AttrDeletedWithTable, AttrEjected, AttrTypeChanged, AttrPKChanged}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("kind %d has bad string %q", k, s)
		}
		seen[s] = true
	}
}

// Property: Compare(a, b) and Compare(b, a) are symmetric — births become
// deletions, injections become ejections, and TotalActivity is preserved.
func TestQuickSymmetry(t *testing.T) {
	gen := func(tables, attrs int) *schema.Schema {
		var b strings.Builder
		for i := 0; i < tables; i++ {
			fmt.Fprintf(&b, "CREATE TABLE t%d (", i)
			for j := 0; j <= (attrs+i)%5; j++ {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "c%d INT", j)
			}
			b.WriteString(");")
		}
		s, _ := schema.ParseAndBuild(b.String())
		return s
	}
	f := func(ta, aa, tb, ab uint8) bool {
		a := gen(int(ta%4)+1, int(aa))
		b := gen(int(tb%4)+1, int(ab))
		fwd := Compare(a, b)
		rev := Compare(b, a)
		if fwd.TotalActivity() != rev.TotalActivity() {
			return false
		}
		return fwd.TablesCreated == rev.TablesDropped &&
			fwd.TablesDropped == rev.TablesCreated &&
			fwd.AttrsBornWithTable == rev.AttrsDeletedWithTable &&
			fwd.AttrsInjected == rev.AttrsEjected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a self-diff is always empty, for arbitrary generated schemas.
func TestQuickSelfDiffEmpty(t *testing.T) {
	f := func(tables uint8, attrs uint8, withPK bool) bool {
		var b strings.Builder
		for i := 0; i <= int(tables%6); i++ {
			fmt.Fprintf(&b, "CREATE TABLE t%d (", i)
			n := int(attrs%7) + 1
			for j := 0; j < n; j++ {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "c%d VARCHAR(%d)", j, j+1)
			}
			if withPK {
				b.WriteString(", PRIMARY KEY (c0)")
			}
			b.WriteString(");")
		}
		s, _ := schema.ParseAndBuild(b.String())
		return Compare(s, s).IsEmpty() && Compare(s, s.Clone()).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the Changes list is always consistent with the counters.
func TestQuickChangesMatchCounters(t *testing.T) {
	f := func(seedA, seedB uint16) bool {
		mk := func(seed uint16) *schema.Schema {
			var b strings.Builder
			nt := int(seed%3) + 1
			for i := 0; i < nt; i++ {
				fmt.Fprintf(&b, "CREATE TABLE t%d (", i)
				na := int(seed/3)%4 + 1
				for j := 0; j < na; j++ {
					if j > 0 {
						b.WriteString(", ")
					}
					ty := []string{"INT", "TEXT", "VARCHAR(5)"}[(int(seed)+i+j)%3]
					fmt.Fprintf(&b, "c%d %s", j, ty)
				}
				b.WriteString(");")
			}
			s, _ := schema.ParseAndBuild(b.String())
			return s
		}
		d := Compare(mk(seedA), mk(seedB))
		counts := map[ChangeKind]int{}
		for _, c := range d.Changes {
			counts[c.Kind]++
		}
		return counts[AttrBornWithTable] == d.AttrsBornWithTable &&
			counts[AttrInjected] == d.AttrsInjected &&
			counts[AttrDeletedWithTable] == d.AttrsDeletedWithTable &&
			counts[AttrEjected] == d.AttrsEjected &&
			counts[AttrTypeChanged] == d.AttrsTypeChanged &&
			counts[AttrPKChanged] == d.AttrsPKChanged &&
			len(d.Changes) == d.TotalActivity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableChangeCounts(t *testing.T) {
	v1 := mustSchema(t, "CREATE TABLE hot (a INT); CREATE TABLE cold (x INT);")
	v2 := mustSchema(t, "CREATE TABLE hot (a INT, b INT); CREATE TABLE cold (x INT);")
	v3 := mustSchema(t, "CREATE TABLE hot (a INT, b INT, c INT); CREATE TABLE cold (x INT);")
	deltas := Sequence([]*schema.Schema{v1, v2, v3})
	counts := TableChangeCounts(deltas)
	if counts["hot"] != 2 || counts["cold"] != 0 {
		t.Errorf("counts = %v", counts)
	}
}

func TestMeasureLocality(t *testing.T) {
	// 10 tables; all 8 changes land in two of them: the top-20% cutoff of
	// the 2 changed tables is 1 table (t1, carrying 5 of 8 changes), and
	// 8 of 10 tables never change.
	deltas := []*Delta{{
		Changes: []AttributeChange{
			{Kind: AttrInjected, Table: "t1", Attribute: "a"},
			{Kind: AttrInjected, Table: "t1", Attribute: "b"},
			{Kind: AttrInjected, Table: "t1", Attribute: "c"},
			{Kind: AttrInjected, Table: "t1", Attribute: "d"},
			{Kind: AttrInjected, Table: "t1", Attribute: "e"},
			{Kind: AttrInjected, Table: "t2", Attribute: "f"},
			{Kind: AttrInjected, Table: "t2", Attribute: "g"},
			{Kind: AttrInjected, Table: "t2", Attribute: "h"},
		},
	}}
	all := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10"}
	loc := MeasureLocality(deltas, all)
	if loc.Tables != 10 || loc.ChangedTables != 2 || loc.TotalChanges != 8 {
		t.Fatalf("locality = %+v", loc)
	}
	if loc.TopShare != 5.0/8.0 {
		t.Errorf("TopShare = %v, want 5/8", loc.TopShare)
	}
	if loc.UnchangedShare != 0.8 {
		t.Errorf("UnchangedShare = %v, want 0.8", loc.UnchangedShare)
	}
}

// TestMeasureLocalityBoundaries pins the cutoff boundary cases of the
// changed-table-based TopShare.
func TestMeasureLocalityBoundaries(t *testing.T) {
	change := func(table string, n int) *Delta {
		d := &Delta{}
		for i := 0; i < n; i++ {
			d.Changes = append(d.Changes, AttributeChange{Kind: AttrInjected, Table: table, Attribute: fmt.Sprintf("a%d", i)})
		}
		return d
	}
	cases := []struct {
		name           string
		deltas         []*Delta
		allTables      []string
		tables         int
		changedTables  int
		topShare       float64
		unchangedShare float64
	}{
		{name: "zero tables", deltas: nil, allTables: nil,
			tables: 0, changedTables: 0, topShare: 0, unchangedShare: 0},
		{name: "all unchanged", deltas: nil, allTables: []string{"a", "b", "c"},
			tables: 3, changedTables: 0, topShare: 0, unchangedShare: 1},
		{name: "one changed table", deltas: []*Delta{change("a", 4)}, allTables: []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"},
			tables: 10, changedTables: 1, topShare: 1, unchangedShare: 0.9},
		{name: "six changed tables take top two", // ceil(20% of 6) = 2
			deltas:    []*Delta{change("a", 6), change("b", 5), change("c", 1), change("d", 1), change("e", 1), change("f", 1)},
			allTables: []string{"a", "b", "c", "d", "e", "f"},
			tables:    6, changedTables: 6, topShare: 11.0 / 15.0, unchangedShare: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loc := MeasureLocality(tc.deltas, tc.allTables)
			if loc.Tables != tc.tables || loc.ChangedTables != tc.changedTables {
				t.Fatalf("Tables/Changed = %d/%d, want %d/%d", loc.Tables, loc.ChangedTables, tc.tables, tc.changedTables)
			}
			if loc.TopShare != tc.topShare {
				t.Errorf("TopShare = %v, want %v", loc.TopShare, tc.topShare)
			}
			if loc.UnchangedShare != tc.unchangedShare {
				t.Errorf("UnchangedShare = %v, want %v", loc.UnchangedShare, tc.unchangedShare)
			}
		})
	}
}

func TestMeasureLocalityEdgeCases(t *testing.T) {
	empty := MeasureLocality(nil, nil)
	if empty.Tables != 0 || empty.TopShare != 0 {
		t.Errorf("empty locality = %+v", empty)
	}
	noChange := MeasureLocality(nil, []string{"a", "b"})
	if noChange.Tables != 2 || noChange.UnchangedShare != 1 {
		t.Errorf("no-change locality = %+v", noChange)
	}
	// Changed tables absent from the supplied list are still counted.
	deltas := []*Delta{{Changes: []AttributeChange{{Kind: AttrInjected, Table: "ghost", Attribute: "x"}}}}
	withGhost := MeasureLocality(deltas, []string{"a"})
	if withGhost.Tables != 2 || withGhost.ChangedTables != 1 {
		t.Errorf("ghost locality = %+v", withGhost)
	}
}
