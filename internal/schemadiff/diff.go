// Package schemadiff computes attribute-level deltas between successive
// versions of a logical schema. It reproduces the change taxonomy of the
// Schema_Evo_2019 toolchain that the study builds on: attributes born with
// a new table, attributes injected into an existing table, attributes
// deleted with a removed table, attributes ejected from a surviving table,
// attributes with a changed data type, and attributes whose participation
// in the primary key changed. The sum of these six counters is the Total
// Activity measure — the study's central quantity.
package schemadiff

import (
	"fmt"
	"sort"
	"strings"

	"coevo/internal/schema"
)

// ChangeKind classifies one attribute-level change.
type ChangeKind int

// The attribute-level change kinds of the study's taxonomy.
const (
	AttrBornWithTable ChangeKind = iota
	AttrInjected
	AttrDeletedWithTable
	AttrEjected
	AttrTypeChanged
	AttrPKChanged
)

// String names the change kind as the paper does.
func (k ChangeKind) String() string {
	switch k {
	case AttrBornWithTable:
		return "born with table"
	case AttrInjected:
		return "injected"
	case AttrDeletedWithTable:
		return "deleted with table"
	case AttrEjected:
		return "ejected"
	case AttrTypeChanged:
		return "type changed"
	case AttrPKChanged:
		return "key changed"
	default:
		return "unknown"
	}
}

// AttributeChange is one attribute-level change record, retained so case
// studies can inspect exactly what happened between two versions.
type AttributeChange struct {
	Kind      ChangeKind
	Table     string
	Attribute string
	// OldType and NewType are set for AttrTypeChanged.
	OldType, NewType string
}

// String renders the change for human inspection.
func (c AttributeChange) String() string {
	if c.Kind == AttrTypeChanged {
		return fmt.Sprintf("%s.%s: %s (%s -> %s)", c.Table, c.Attribute, c.Kind, c.OldType, c.NewType)
	}
	return fmt.Sprintf("%s.%s: %s", c.Table, c.Attribute, c.Kind)
}

// Delta aggregates the changes between two successive schema versions.
type Delta struct {
	// Table-level counters.
	TablesCreated int
	TablesDropped int

	// The six attribute-level counters of the study (all in attributes).
	AttrsBornWithTable    int
	AttrsInjected         int
	AttrsDeletedWithTable int
	AttrsEjected          int
	AttrsTypeChanged      int
	AttrsPKChanged        int

	// Changes lists every attribute-level change behind the counters.
	Changes []AttributeChange
}

// TotalActivity is the sum of all attribute-level updates — the study's
// Activity measure for one version transition.
func (d *Delta) TotalActivity() int {
	return d.AttrsBornWithTable + d.AttrsInjected + d.AttrsDeletedWithTable +
		d.AttrsEjected + d.AttrsTypeChanged + d.AttrsPKChanged
}

// IsEmpty reports whether the delta carries no logical change. A commit
// whose delta is empty is an inactive schema commit (e.g. a whitespace or
// comment edit of the DDL file).
func (d *Delta) IsEmpty() bool {
	return d.TotalActivity() == 0 && d.TablesCreated == 0 && d.TablesDropped == 0
}

// String summarizes the counters.
func (d *Delta) String() string {
	var parts []string
	add := func(n int, label string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, label))
		}
	}
	add(d.TablesCreated, "tables created")
	add(d.TablesDropped, "tables dropped")
	add(d.AttrsBornWithTable, "attrs born")
	add(d.AttrsInjected, "attrs injected")
	add(d.AttrsDeletedWithTable, "attrs deleted with table")
	add(d.AttrsEjected, "attrs ejected")
	add(d.AttrsTypeChanged, "type changes")
	add(d.AttrsPKChanged, "key changes")
	if len(parts) == 0 {
		return "no change"
	}
	return strings.Join(parts, ", ")
}

// emptySchema is the shared read-only stand-in for a nil side of Compare.
var emptySchema = schema.New()

// Compare diffs two schema versions (old may be nil for the birth of the
// schema, in which case every attribute of new is born with its table).
func Compare(old, new *schema.Schema) *Delta {
	d := &Delta{}
	if old == nil {
		old = emptySchema
	}
	if new == nil {
		new = emptySchema
	}

	for _, nt := range new.Tables() {
		ot, existed := old.Table(nt.Name)
		if !existed {
			d.TablesCreated++
			for _, a := range nt.Attributes() {
				d.AttrsBornWithTable++
				d.Changes = append(d.Changes, AttributeChange{Kind: AttrBornWithTable, Table: nt.Name, Attribute: a.Name})
			}
			continue
		}
		compareTables(d, ot, nt)
	}
	for _, ot := range old.Tables() {
		// Membership in new doubles as the "already diffed above" set, so
		// no scratch map is needed: both sides fold names identically.
		if _, survives := new.Table(ot.Name); survives {
			continue
		}
		d.TablesDropped++
		for _, a := range ot.Attributes() {
			d.AttrsDeletedWithTable++
			d.Changes = append(d.Changes, AttributeChange{Kind: AttrDeletedWithTable, Table: ot.Name, Attribute: a.Name})
		}
	}
	return d
}

// compareTables diffs the attributes of a surviving table.
func compareTables(d *Delta, ot, nt *schema.Table) {
	for _, na := range nt.Attributes() {
		oa, existed := ot.Attribute(na.Name)
		if !existed {
			d.AttrsInjected++
			d.Changes = append(d.Changes, AttributeChange{Kind: AttrInjected, Table: nt.Name, Attribute: na.Name})
			continue
		}
		if oa.Type != na.Type {
			d.AttrsTypeChanged++
			d.Changes = append(d.Changes, AttributeChange{
				Kind: AttrTypeChanged, Table: nt.Name, Attribute: na.Name,
				OldType: oa.Type, NewType: na.Type,
			})
		}
		if ot.InPrimaryKey(na.Name) != nt.InPrimaryKey(na.Name) {
			d.AttrsPKChanged++
			d.Changes = append(d.Changes, AttributeChange{Kind: AttrPKChanged, Table: nt.Name, Attribute: na.Name})
		}
	}
	for _, oa := range ot.Attributes() {
		if _, survives := nt.Attribute(oa.Name); !survives {
			d.AttrsEjected++
			d.Changes = append(d.Changes, AttributeChange{Kind: AttrEjected, Table: nt.Name, Attribute: oa.Name})
		}
	}
}

// Sequence diffs a whole version list pairwise: versions[i] against
// versions[i+1]. A nil element is treated as an empty schema (a version
// whose DDL failed to parse entirely, or a deleted file). The result has
// len(versions)-1 deltas; an empty or single-version history yields nil.
func Sequence(versions []*schema.Schema) []*Delta {
	if len(versions) < 2 {
		return nil
	}
	deltas := make([]*Delta, 0, len(versions)-1)
	for i := 1; i < len(versions); i++ {
		deltas = append(deltas, Compare(versions[i-1], versions[i]))
	}
	return deltas
}

// TotalActivity sums the activity of a delta sequence — the lifetime Total
// Activity of a schema history.
func TotalActivity(deltas []*Delta) int {
	total := 0
	for _, d := range deltas {
		total += d.TotalActivity()
	}
	return total
}

// foldLower lower-cases a table name for counting keys, skipping the
// copy when the name is already lower-case ASCII.
func foldLower(name string) string {
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 0x80 || ('A' <= c && c <= 'Z') {
			return strings.ToLower(name)
		}
	}
	return name
}

// TableChangeCounts aggregates, over a delta sequence, how many attribute-
// level changes each table attracted (keyed by lower-cased table name).
func TableChangeCounts(deltas []*Delta) map[string]int {
	counts := map[string]int{}
	for _, d := range deltas {
		for _, ch := range d.Changes {
			counts[foldLower(ch.Table)]++
		}
	}
	return counts
}

// Locality summarizes how concentrated change is across tables — prior
// work reports that 60-90% of changes hit 20% of the tables while ~40% of
// tables never change at all.
type Locality struct {
	// Tables is the number of tables ever seen (changed or supplied).
	Tables int
	// ChangedTables is the number of tables with at least one change.
	ChangedTables int
	// TopShare is the fraction of all changes carried by the most-changed
	// ceil(20%) of the changed tables. The cutoff counts changed tables
	// only: never-changed tables would otherwise inflate the cutoff and
	// saturate the share at 1.0 for sparsely-changed schemata.
	TopShare float64
	// UnchangedShare is the fraction of tables with zero changes.
	UnchangedShare float64
	// TotalChanges is the change volume across all tables.
	TotalChanges int
}

// MeasureLocality computes change locality over a delta sequence. allTables
// lists every table name that ever existed in the history (so tables that
// never changed are counted); change-bearing tables missing from the list
// are added automatically.
func MeasureLocality(deltas []*Delta, allTables []string) Locality {
	counts := TableChangeCounts(deltas)
	seen := map[string]bool{}
	for _, t := range allTables {
		seen[foldLower(t)] = true
	}
	for t := range counts {
		seen[t] = true
	}
	loc := Locality{Tables: len(seen)}
	if loc.Tables == 0 {
		return loc
	}
	volumes := make([]int, 0, len(counts))
	for _, n := range counts {
		loc.TotalChanges += n
		volumes = append(volumes, n)
		loc.ChangedTables++
	}
	loc.UnchangedShare = float64(loc.Tables-loc.ChangedTables) / float64(loc.Tables)
	if loc.TotalChanges == 0 {
		return loc
	}
	sort.Sort(sort.Reverse(sort.IntSlice(volumes)))
	top := (loc.ChangedTables + 4) / 5 // ceil(20%) of the changed tables
	sum := 0
	for i := 0; i < top && i < len(volumes); i++ {
		sum += volumes[i]
	}
	loc.TopShare = float64(sum) / float64(loc.TotalChanges)
	return loc
}
