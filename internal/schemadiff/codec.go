// Binary codec and cache adapters for deltas — the persistence format of
// the diff stage in the content-addressed result cache. A version pair is
// addressed by the binary encodings of the two schemas, so any logical
// change to either side changes the key; byte-identical pairs (the
// append-mostly common case across study re-runs) hit.
package schemadiff

import (
	"coevo/internal/cache"
	"coevo/internal/schema"
)

// CompareStage is the diff stage's cache version. Bump whenever Compare's
// observable output or the delta codec changes.
const CompareStage = "schemadiff/compare/v1"

// EncodeDelta serializes a delta: the eight counters followed by the full
// change list.
func EncodeDelta(d *Delta) []byte {
	e := cache.GetEnc()
	defer cache.PutEnc(e)
	e.Int(int64(d.TablesCreated))
	e.Int(int64(d.TablesDropped))
	e.Int(int64(d.AttrsBornWithTable))
	e.Int(int64(d.AttrsInjected))
	e.Int(int64(d.AttrsDeletedWithTable))
	e.Int(int64(d.AttrsEjected))
	e.Int(int64(d.AttrsTypeChanged))
	e.Int(int64(d.AttrsPKChanged))
	e.Uvarint(uint64(len(d.Changes)))
	for _, ch := range d.Changes {
		e.Uvarint(uint64(ch.Kind))
		e.String(ch.Table)
		e.String(ch.Attribute)
		e.String(ch.OldType)
		e.String(ch.NewType)
	}
	return e.Copy()
}

// DecodeDelta reconstructs a delta encoded by EncodeDelta.
func DecodeDelta(p []byte) (*Delta, error) {
	dec := cache.NewDec(p)
	d := &Delta{
		TablesCreated:         int(dec.Int()),
		TablesDropped:         int(dec.Int()),
		AttrsBornWithTable:    int(dec.Int()),
		AttrsInjected:         int(dec.Int()),
		AttrsDeletedWithTable: int(dec.Int()),
		AttrsEjected:          int(dec.Int()),
		AttrsTypeChanged:      int(dec.Int()),
		AttrsPKChanged:        int(dec.Int()),
	}
	n := dec.Uvarint()
	for i := uint64(0); i < n && !dec.Failed(); i++ {
		d.Changes = append(d.Changes, AttributeChange{
			Kind:      ChangeKind(dec.Uvarint()),
			Table:     dec.String(),
			Attribute: dec.String(),
			OldType:   dec.String(),
			NewType:   dec.String(),
		})
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// CompareCached is Compare memoized through c, keyed by the two schemas'
// binary encodings. The encodings must be supplied by the caller so a
// sequence walk encodes each schema once, not twice (as both the new side
// of one pair and the old side of the next).
func CompareCached(old, new *schema.Schema, oldEnc, newEnc []byte, c *cache.Cache) *Delta {
	if c == nil {
		return Compare(old, new)
	}
	key := cache.NewHasher(CompareStage).Bytes(oldEnc).Bytes(newEnc).Sum()
	if v, ok := c.Get(key); ok {
		if d, err := DecodeDelta(v); err == nil {
			return d
		}
	}
	d := Compare(old, new)
	c.Put(key, EncodeDelta(d))
	return d
}

// SequenceCached is Sequence with every pairwise Compare memoized through
// c. A nil cache is exactly Sequence.
func SequenceCached(versions []*schema.Schema, c *cache.Cache) []*Delta {
	if c == nil {
		return Sequence(versions)
	}
	if len(versions) < 2 {
		return nil
	}
	// Each version's encoding is needed exactly twice — as the new side of
	// one pair and the old side of the next — so two pooled encoders
	// ping-ponged through the walk replace a per-version [][]byte.
	encode := func(e *cache.Enc, s *schema.Schema) {
		e.Reset()
		if s == nil {
			s = emptySchema
		}
		schema.AppendBinary(e, s)
	}
	prev, cur := cache.GetEnc(), cache.GetEnc()
	defer cache.PutEnc(prev)
	defer cache.PutEnc(cur)
	encode(prev, versions[0])
	deltas := make([]*Delta, 0, len(versions)-1)
	for i := 1; i < len(versions); i++ {
		encode(cur, versions[i])
		deltas = append(deltas, CompareCached(versions[i-1], versions[i], prev.Bytes(), cur.Bytes(), c))
		prev, cur = cur, prev
	}
	return deltas
}
