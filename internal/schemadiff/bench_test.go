package schemadiff

import (
	"fmt"
	"strings"
	"testing"

	"coevo/internal/schema"
)

func benchSchemaOf(b *testing.B, tables, attrs, skew int) *schema.Schema {
	b.Helper()
	var sb strings.Builder
	for i := 0; i < tables; i++ {
		fmt.Fprintf(&sb, "CREATE TABLE t%d (", i+skew/2)
		for j := 0; j < attrs; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			ty := "INT"
			if (i+j+skew)%3 == 0 {
				ty = "VARCHAR(40)"
			}
			fmt.Fprintf(&sb, "c%d %s", j+skew%2, ty)
		}
		sb.WriteString(", PRIMARY KEY (c0));") // c0 may not exist with skew; fine for benches
	}
	s, _ := schema.ParseAndBuild(sb.String())
	return s
}

func BenchmarkCompare50Tables(b *testing.B) {
	old := benchSchemaOf(b, 50, 12, 0)
	new_ := benchSchemaOf(b, 50, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(old, new_)
	}
}

func BenchmarkSequence50Versions(b *testing.B) {
	versions := make([]*schema.Schema, 50)
	for i := range versions {
		versions[i] = benchSchemaOf(b, 10, 8, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deltas := Sequence(versions)
		if len(deltas) != 49 {
			b.Fatal("bad sequence length")
		}
	}
}
