package schemadiff_test

import (
	"math/rand"
	"testing"

	"coevo/internal/cache"
	"coevo/internal/schema"
	"coevo/internal/schemadiff"
	"coevo/internal/schematest"
)

// TestCompareSelfIsEmpty: diffing any schema against itself yields no
// change at all.
func TestCompareSelfIsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		s := schematest.RandomSchema(rng)
		d := schemadiff.Compare(s, s)
		if !d.IsEmpty() {
			t.Fatalf("Compare(s, s) not empty: %s", d)
		}
		if len(d.Changes) != 0 {
			t.Fatalf("Compare(s, s) recorded %d changes", len(d.Changes))
		}
	}
}

// TestTotalActivityEqualsCounterSum: TotalActivity is exactly the sum of
// the six attribute-level counters, and every counter agrees with the
// per-change record list.
func TestTotalActivityEqualsCounterSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a, b := schematest.RandomSchema(rng), schematest.RandomSchema(rng)
		d := schemadiff.Compare(a, b)
		sum := d.AttrsBornWithTable + d.AttrsInjected + d.AttrsDeletedWithTable +
			d.AttrsEjected + d.AttrsTypeChanged + d.AttrsPKChanged
		if d.TotalActivity() != sum {
			t.Fatalf("TotalActivity %d != counter sum %d", d.TotalActivity(), sum)
		}
		perKind := map[schemadiff.ChangeKind]int{}
		for _, ch := range d.Changes {
			perKind[ch.Kind]++
		}
		wantPerKind := map[schemadiff.ChangeKind]int{
			schemadiff.AttrBornWithTable:    d.AttrsBornWithTable,
			schemadiff.AttrInjected:         d.AttrsInjected,
			schemadiff.AttrDeletedWithTable: d.AttrsDeletedWithTable,
			schemadiff.AttrEjected:          d.AttrsEjected,
			schemadiff.AttrTypeChanged:      d.AttrsTypeChanged,
			schemadiff.AttrPKChanged:        d.AttrsPKChanged,
		}
		for kind, want := range wantPerKind {
			if perKind[kind] != want {
				t.Fatalf("counter for %s is %d but %d changes recorded", kind, want, perKind[kind])
			}
		}
	}
}

// TestBornDeletedSymmetry: swapping the arguments turns births into
// deaths and vice versa, both at the table and at the attribute level.
func TestBornDeletedSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a, b := schematest.RandomSchema(rng), schematest.RandomSchema(rng)
		fwd, rev := schemadiff.Compare(a, b), schemadiff.Compare(b, a)
		if fwd.TablesCreated != rev.TablesDropped || fwd.TablesDropped != rev.TablesCreated {
			t.Fatalf("table birth/death not symmetric: fwd %s / rev %s", fwd, rev)
		}
		if fwd.AttrsBornWithTable != rev.AttrsDeletedWithTable ||
			fwd.AttrsDeletedWithTable != rev.AttrsBornWithTable {
			t.Fatalf("attr birth/death not symmetric: fwd %s / rev %s", fwd, rev)
		}
		if fwd.AttrsInjected != rev.AttrsEjected || fwd.AttrsEjected != rev.AttrsInjected {
			t.Fatalf("injected/ejected not symmetric: fwd %s / rev %s", fwd, rev)
		}
		// Type and key changes are direction-independent sets.
		if fwd.AttrsTypeChanged != rev.AttrsTypeChanged || fwd.AttrsPKChanged != rev.AttrsPKChanged {
			t.Fatalf("type/key changes not symmetric: fwd %s / rev %s", fwd, rev)
		}
	}
}

// TestCompareCachedMatchesCompare: the cached comparison returns deltas
// indistinguishable from the plain one, with either a hit or a miss.
func TestCompareCachedMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := cache.NewMemory()
	for i := 0; i < 200; i++ {
		a, b := schematest.RandomSchema(rng), schematest.RandomSchema(rng)
		aEnc, bEnc := schema.EncodeBinary(a), schema.EncodeBinary(b)
		want := schemadiff.Compare(a, b)
		for round := 0; round < 2; round++ { // miss, then hit
			got := schemadiff.CompareCached(a, b, aEnc, bEnc, c)
			if got.String() != want.String() || got.TotalActivity() != want.TotalActivity() {
				t.Fatalf("round %d: cached delta %s != %s", round, got, want)
			}
			if len(got.Changes) != len(want.Changes) {
				t.Fatalf("round %d: %d changes != %d", round, len(got.Changes), len(want.Changes))
			}
			for j := range got.Changes {
				if got.Changes[j] != want.Changes[j] {
					t.Fatalf("round %d: change %d: %v != %v", round, j, got.Changes[j], want.Changes[j])
				}
			}
		}
	}
	if s := c.Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Errorf("expected both hits and misses, got %s", s)
	}
}

// TestSequenceCachedMatchesSequence: the cached pairwise walk equals the
// plain one, including nil (unparseable/deleted) versions.
func TestSequenceCachedMatchesSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := cache.NewMemory()
	for i := 0; i < 50; i++ {
		versions := make([]*schema.Schema, 2+rng.Intn(6))
		for j := range versions {
			if rng.Intn(8) == 0 {
				continue // nil version
			}
			versions[j] = schematest.RandomSchema(rng)
		}
		want := schemadiff.Sequence(versions)
		got := schemadiff.SequenceCached(versions, c)
		if len(got) != len(want) {
			t.Fatalf("length %d != %d", len(got), len(want))
		}
		for j := range got {
			if got[j].String() != want[j].String() {
				t.Fatalf("delta %d: %s != %s", j, got[j], want[j])
			}
		}
	}
}
