package schemadiff

import (
	"testing"

	"coevo/internal/race"
	"coevo/internal/schema"
)

const allocOldDDL = `CREATE TABLE users (
  id BIGINT NOT NULL,
  email VARCHAR(255) NOT NULL,
  created_at TIMESTAMP,
  PRIMARY KEY (id)
);
CREATE TABLE orders (
  id BIGINT NOT NULL,
  user_id BIGINT NOT NULL,
  total DECIMAL(10,2),
  PRIMARY KEY (id)
);
CREATE TABLE legacy_audit (id INT, note TEXT);
`

const allocNewDDL = `CREATE TABLE users (
  id BIGINT NOT NULL,
  email VARCHAR(320) NOT NULL,
  created_at TIMESTAMP,
  last_seen TIMESTAMP,
  PRIMARY KEY (id)
);
CREATE TABLE orders (
  id BIGINT NOT NULL,
  user_id BIGINT NOT NULL,
  total DECIMAL(12,2),
  status VARCHAR(32),
  PRIMARY KEY (id)
);
CREATE TABLE payments (id BIGINT, order_id BIGINT);
`

// diffBudget caps the average allocations of one Compare over two
// moderately-sized schemas. Compare's working set (the survivor scan and
// per-table attribute matching) is allocation-free; what remains is the
// returned Delta and its retained change slices.
const diffBudget = 8 // measured 5: the Delta and its change slices

func mustBuild(t testing.TB, ddl string) *schema.Schema {
	t.Helper()
	s, errs := schema.ParseAndBuild(ddl)
	if len(errs) > 0 {
		t.Fatalf("build: %v", errs)
	}
	return s
}

func TestDiffAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun accounting is distorted under the race detector")
	}
	old := mustBuild(t, allocOldDDL)
	new := mustBuild(t, allocNewDDL)
	avg := testing.AllocsPerRun(200, func() {
		d := Compare(old, new)
		if len(d.Changes) == 0 {
			t.Fatal("expected changes")
		}
	})
	if avg > diffBudget {
		t.Errorf("diffing two schemas allocates %.1f/op, budget %d", avg, diffBudget)
	}
	t.Logf("diff allocs/op: %.1f", avg)
}

func BenchmarkCompareReuse(b *testing.B) {
	old := mustBuild(b, allocOldDDL)
	new := mustBuild(b, allocNewDDL)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(old, new)
	}
}
