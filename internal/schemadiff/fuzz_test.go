package schemadiff_test

import (
	"bytes"
	"testing"

	"coevo/internal/cache"
	"coevo/internal/schema"
	"coevo/internal/schemadiff"
)

// fuzzCache is shared across fuzz iterations so the cached diff path is
// exercised with a store progressively filled by earlier inputs.
var fuzzCache, _ = cache.New(cache.Options{})

// FuzzCompare asserts the diff engine's safety net over arbitrary —
// including unparseable — DDL pairs: Compare never panics, every counter
// is non-negative, TotalActivity is the counter sum, and self-comparison
// is empty. Run with `go test -fuzz=FuzzCompare ./internal/schemadiff`.
func FuzzCompare(f *testing.F) {
	seeds := [][2]string{
		{"", ""},
		{"CREATE TABLE t (a INT);", "CREATE TABLE t (a BIGINT);"},
		{"CREATE TABLE t (a INT, PRIMARY KEY (a));", "CREATE TABLE t (a INT);"},
		{"CREATE TABLE a (x INT); CREATE TABLE b (y INT);", "CREATE TABLE b (y INT);"},
		{"garbage not sql", "CREATE TABLE t (a INT);"},
		{"CREATE TABLE t (a int", "CREATE TABLE t (a int);"},
		{"CREATE TABLE `T` (a INT);", "CREATE TABLE t (A varchar(3));"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, oldSrc, newSrc string) {
		oldSchema, _ := schema.ParseAndBuild(oldSrc)
		newSchema, _ := schema.ParseAndBuild(newSrc)
		d := schemadiff.Compare(oldSchema, newSchema)
		counts := []int{
			d.TablesCreated, d.TablesDropped,
			d.AttrsBornWithTable, d.AttrsInjected, d.AttrsDeletedWithTable,
			d.AttrsEjected, d.AttrsTypeChanged, d.AttrsPKChanged,
		}
		sum := 0
		for _, n := range counts {
			if n < 0 {
				t.Fatalf("negative counter in %s", d)
			}
		}
		for _, n := range counts[2:] {
			sum += n
		}
		if d.TotalActivity() != sum || d.TotalActivity() < 0 {
			t.Fatalf("TotalActivity %d != counter sum %d", d.TotalActivity(), sum)
		}
		if len(d.Changes) != sum {
			t.Fatalf("%d change records for activity %d", len(d.Changes), sum)
		}
		for _, s := range []*schema.Schema{oldSchema, newSchema} {
			if self := schemadiff.Compare(s, s); !self.IsEmpty() {
				t.Fatalf("Compare(s, s) not empty: %s", self)
			}
		}
		// Differential: the pooled-codec cached path (and ParseAndBuild's
		// internal reusable parser) must agree byte-for-byte with the
		// direct Compare, both on first sight and when served from cache.
		for i := 0; i < 2; i++ {
			cached := schemadiff.SequenceCached([]*schema.Schema{oldSchema, newSchema}, fuzzCache)
			if len(cached) != 1 {
				t.Fatalf("SequenceCached yielded %d deltas, want 1", len(cached))
			}
			if !bytes.Equal(schemadiff.EncodeDelta(cached[0]), schemadiff.EncodeDelta(d)) {
				t.Fatalf("cached diff diverged (pass %d):\ncached: %s\ndirect: %s", i, cached[0], d)
			}
		}
	})
}
