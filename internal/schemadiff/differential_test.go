package schemadiff

import (
	"bytes"
	"math/rand"
	"testing"

	"coevo/internal/cache"
	"coevo/internal/schema"
	"coevo/internal/schematest"
)

// TestSequenceCachedMatchesPlainSequence is the differential test of the
// pooled-codec diff path: SequenceCached (ping-ponged pooled encoders,
// cache round-trips) must produce deltas byte-identical to the naive
// Sequence over the same version list, on a cold and then a warm cache.
func TestSequenceCachedMatchesPlainSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatalf("cache: %v", err)
	}
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		vs := make([]*schema.Schema, n)
		for i := range vs {
			vs[i] = schematest.RandomSchema(rng)
		}
		want := Sequence(vs)
		for _, label := range []string{"cold", "warm"} {
			got := SequenceCached(vs, c)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: delta count %d, want %d", trial, label, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(EncodeDelta(got[i]), EncodeDelta(want[i])) {
					t.Fatalf("trial %d %s: delta %d diverged:\ncached: %v\nplain:  %v", trial, label, i, got[i], want[i])
				}
			}
		}
	}
}
